// "Less is More" in action: given profiles of candidate sources (accuracy,
// coverage, acquisition cost), decide how many — and which — to integrate.
// Prints the marginal-gain curve so the stopping point is visible.
#include <cstdio>

#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/select/source_selection.h"
#include "bdi/synth/world.h"

int main() {
  using namespace bdi;
  using namespace bdi::select;

  // Profile a synthetic market of 18 feeds: a few excellent ones, a broad
  // middle, and a junk tail; cost grows for the high-coverage feeds.
  std::vector<SourceProfile> profiles;
  Rng rng(5);
  for (int s = 0; s < 18; ++s) {
    SourceProfile profile;
    profile.id = s;
    if (s < 3) {
      profile.accuracy = rng.UniformDouble(0.9, 0.97);
      profile.coverage = rng.UniformDouble(0.5, 0.8);
      profile.cost = 3.0;
    } else if (s < 10) {
      profile.accuracy = rng.UniformDouble(0.7, 0.88);
      profile.coverage = rng.UniformDouble(0.1, 0.4);
      profile.cost = 1.0;
    } else {
      profile.accuracy = rng.UniformDouble(0.3, 0.55);
      profile.coverage = rng.UniformDouble(0.05, 0.2);
      profile.cost = 0.5;
    }
    profiles.push_back(profile);
  }

  SelectionConfig config;
  config.cost_weight = 0.01;
  SelectionResult greedy = GreedySelect(profiles, config);

  TextTable table({"k", "added source", "accuracy", "coverage",
                   "est quality", "cum cost", "net gain"});
  for (size_t k = 0; k < greedy.order.size(); ++k) {
    const SourceProfile& added = profiles[greedy.order[k]];
    std::string marker =
        k + 1 == greedy.best_prefix ? "  <-- stop here" : "";
    table.AddRow({std::to_string(k + 1) + marker,
                  "feed" + std::to_string(added.id),
                  FormatDouble(added.accuracy, 2),
                  FormatDouble(added.coverage, 2),
                  FormatDouble(greedy.quality[k], 3),
                  FormatDouble(greedy.cost[k], 1),
                  FormatDouble(greedy.gain[k], 3)});
  }
  table.Print("greedy marginal-gain source selection");
  std::printf("optimal subscription: the first %zu feeds "
              "(integrating all %zu would cost quality AND money)\n",
              greedy.best_prefix, profiles.size());
  return 0;
}
