// Velocity in practice: pages keep arriving (and occasionally vanish), and
// the integrated entity view must keep up without re-linking the world.
// Demonstrates the IncrementalLinker ingesting a stream of crawl batches,
// including a source that appears mid-stream.
#include <cstdio>

#include "bdi/linkage/incremental.h"
#include "bdi/synth/world.h"

int main() {
  using namespace bdi;
  using namespace bdi::linkage;

  // Pre-generate the "full crawl" and replay it as a stream.
  synth::WorldConfig config;
  config.seed = 77;
  config.category = "headphone";
  config.num_entities = 300;
  config.num_sources = 10;
  synth::SyntheticWorld full = synth::GenerateWorld(config);

  Dataset live;
  for (const SourceInfo& source : full.dataset.sources()) {
    live.AddSource(source.name);
  }
  std::vector<EntityId> truth;
  size_t cursor = 0;
  auto feed = [&](size_t count) {
    size_t fed = 0;
    for (; fed < count && cursor < full.dataset.num_records();
         ++fed, ++cursor) {
      const Record& record =
          full.dataset.record(static_cast<RecordIdx>(cursor));
      std::vector<std::pair<std::string, std::string>> fields;
      for (const Field& field : record.fields) {
        fields.emplace_back(full.dataset.attr_name(field.attr), field.value);
      }
      live.AddRecord(record.source, fields);
      truth.push_back(full.truth.entity_of_record[cursor]);
    }
    return fed;
  };

  feed(full.dataset.num_records() / 3);
  IncrementalLinker linker(&live, {});
  size_t comparisons = linker.AddNewRecords();
  std::printf("bootstrap: %zu pages indexed (%zu comparisons)\n",
              linker.num_indexed(), comparisons);

  for (int batch = 1; batch <= 4; ++batch) {
    size_t fed = feed(full.dataset.num_records() / 6);
    comparisons = linker.AddNewRecords();
    EntityClusters clusters = linker.Clusters();
    LinkageQuality quality =
        EvaluateClusters(clusters.label_of_record, truth);
    std::printf(
        "batch %d: +%zu pages, %zu comparisons -> %zu entities "
        "(P=%.3f R=%.3f)\n",
        batch, fed, comparisons, clusters.num_clusters, quality.precision,
        quality.recall);
  }

  // A page retires (tombstoned); the cluster view follows immediately.
  linker.RemoveRecords({0, 1, 2});
  EntityClusters after = linker.Clusters();
  std::printf("after retiring 3 pages: %zu entities\n", after.num_clusters);
  return 0;
}
