// Quickstart: generate a small synthetic multi-source product corpus, run
// the full integration pipeline (schema alignment -> record linkage ->
// data fusion), and print the integrated entities plus quality against the
// generator's ground truth — and, as the last step, the pipeline's own
// metrics snapshot (stage wall times, candidate-pair counts, EM
// iterations; see docs/OBSERVABILITY.md).
#include <cstdio>

#include "bdi/common/metrics.h"
#include "bdi/common/table.h"
#include "bdi/core/integrator.h"
#include "bdi/fusion/evaluation.h"
#include "bdi/linkage/clustering.h"
#include "bdi/schema/mediated_schema.h"
#include "bdi/synth/world.h"

int main() {
  // 0. Observability: turn the (default-off) metrics registry on so the
  // run below is traced. The pipeline output is identical either way.
  bdi::metrics::SetEnabled(true);

  // 1. A world: 200 camera-like entities published by 12 heterogeneous
  // sources (synonymous attribute names, unit differences, honest errors).
  bdi::synth::WorldConfig config;
  config.seed = 1;
  config.category = "camera";
  config.num_entities = 200;
  config.num_sources = 12;
  config.source_accuracy_min = 0.75;
  config.source_accuracy_max = 0.95;
  bdi::synth::SyntheticWorld world = bdi::synth::GenerateWorld(config);
  std::printf("corpus: %zu sources, %zu records, %zu raw attribute names\n",
              world.dataset.num_sources(), world.dataset.num_records(),
              world.dataset.num_attrs());

  // 2. Integrate.
  bdi::core::Integrator integrator;
  bdi::core::IntegrationReport report = integrator.Run(world.dataset);
  std::printf("%s\n\n", report.Summary().c_str());

  // 3. Browse the three biggest integrated entities.
  auto entities =
      bdi::core::MaterializeEntities(report, world.dataset, /*max=*/3);
  for (const auto& entity : entities) {
    std::printf("entity #%d (%zu records)\n", entity.cluster,
                entity.num_records);
    for (const auto& [attr, value] : entity.values) {
      std::printf("  %-20s %s\n", attr.c_str(), value.c_str());
    }
  }

  // 4. Score every stage against ground truth.
  bdi::schema::SchemaQuality schema_quality = bdi::schema::EvaluateSchema(
      report.schema, world.truth.canonical_of_source_attr);
  bdi::linkage::LinkageQuality linkage_quality =
      bdi::linkage::EvaluateClusters(
          report.linkage.clusters.label_of_record,
          world.truth.entity_of_record);
  bdi::fusion::PipelineMappings mappings = bdi::fusion::MapPipelineToTruth(
      report.linkage.clusters, report.schema, world.truth);
  bdi::fusion::FusionQuality fusion_quality =
      bdi::fusion::EvaluateFusionMapped(report.claims, report.fusion,
                                        mappings, world.truth);

  bdi::TextTable table({"stage", "precision", "recall", "f1"});
  table.AddRow("schema alignment",
               {schema_quality.precision, schema_quality.recall,
                schema_quality.f1});
  table.AddRow("record linkage",
               {linkage_quality.precision, linkage_quality.recall,
                linkage_quality.f1});
  table.AddRow("data fusion", {fusion_quality.precision});
  std::printf("\n");
  table.Print("pipeline quality vs ground truth");

  // 5. What the pipeline observed about itself: the Integrator filled
  // report.metrics_json with a registry snapshot because metrics were on.
  std::printf("\nmetrics snapshot:\n%s\n", report.metrics_json.c_str());
  return 0;
}
