// Pay-as-you-go question answering over the integrated dataspace: ask
// "<attribute> of <product>" and get the fused value with provenance —
// which sources agree, which dissent, and how confident the truth model
// is. One of the applications the tutorial's introduction motivates.
#include <cstdio>

#include "bdi/core/query.h"
#include "bdi/synth/world.h"

int main() {
  using namespace bdi;

  synth::WorldConfig config;
  config.seed = 33;
  config.category = "headphone";
  config.num_entities = 150;
  config.num_sources = 12;
  config.num_copiers = 2;
  synth::SyntheticWorld world = synth::GenerateWorld(config);

  core::Integrator integrator;
  core::IntegrationReport report = integrator.Run(world.dataset);
  core::QueryEngine engine(&report, &world.dataset);
  std::printf("%s\n\n", report.Summary().c_str());

  // Ask about the three best-covered products.
  auto entities = core::MaterializeEntities(report, world.dataset, 3);
  const char* questions[] = {"impedance", "weight", "color", "type"};
  for (const auto& entity : entities) {
    // Use a representative record name as the entity keywords.
    std::string name;
    for (const Record& record : world.dataset.records()) {
      if (report.linkage.clusters.label_of_record[record.idx] ==
              entity.cluster &&
          !record.fields.empty()) {
        name = record.fields[0].value;
        break;
      }
    }
    std::printf("Q: tell me about \"%s\"\n", name.c_str());
    for (const char* question : questions) {
      core::Answer answer = engine.Ask(question, name);
      if (!answer.found()) {
        std::printf("   %-10s (no answer)\n", question);
        continue;
      }
      size_t agree = 0;
      for (const auto& support : answer.support) {
        if (support.agrees) ++agree;
      }
      std::printf("   %-10s = %-16s (confidence %.2f; %zu/%zu sources"
                  " agree)\n",
                  question, answer.value.c_str(), answer.confidence, agree,
                  answer.support.size());
    }
    std::printf("\n");
  }

  // Show dissent in detail for one contested answer.
  std::string name;
  for (const Record& record : world.dataset.records()) {
    if (!record.fields.empty()) {
      name = record.fields[0].value;
      break;
    }
  }
  core::Answer answer = engine.Ask("impedance", name);
  if (answer.found()) {
    std::printf("provenance for impedance of \"%s\" -> %s:\n", name.c_str(),
                answer.value.c_str());
    for (const auto& support : answer.support) {
      std::printf("   %-24s said %-14s %s\n", support.source_name.c_str(),
                  support.value.c_str(),
                  support.agrees ? "(agrees)" : "(dissents)");
    }
  }
  return 0;
}
