// The whole journey: specification *pages* (HTML-ish, one template per
// site, some sites with no template at all) -> wrapper induction ->
// extracted records -> schema alignment -> linkage -> fusion -> catalog.
// This is the tutorial's end-to-end pipeline starting from the web, not
// from a clean dataset.
#include <cstdio>

#include "bdi/core/integrator.h"
#include "bdi/extract/extractor.h"
#include "bdi/extract/renderer.h"
#include "bdi/linkage/clustering.h"
#include "bdi/synth/world.h"

int main() {
  using namespace bdi;
  using namespace bdi::extract;

  // 1. The "web": a world rendered into per-site page collections.
  synth::WorldConfig config;
  config.seed = 21;
  config.category = "tv";
  config.num_entities = 200;
  config.num_sources = 10;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  RendererConfig renderer_config;
  renderer_config.weak_template_prob = 0.2;  // some sites are hopeless
  PageRenderer renderer(renderer_config);
  std::vector<SourcePages> sites = renderer.RenderAll(world.dataset);
  size_t total_pages = 0;
  for (const SourcePages& site : sites) total_pages += site.pages.size();
  std::printf("crawled %zu pages from %zu sites\n", total_pages,
              sites.size());

  // 2. Wrapper induction per site (local homogeneity at work).
  ExtractionReport extraction = ExtractAll(sites);
  for (const SourceDiagnostics& d : extraction.sources) {
    std::printf("  %-22s layout=%-15s %s (%zu records, %zu labels, "
                "%zu boilerplate rows dropped)\n",
                sites[d.source].source_name.c_str(),
                PageLayoutName(d.detected_layout),
                d.usable ? "wrapped" : "SKIPPED (weak template)",
                d.extracted_records, d.kept_labels, d.dropped_labels);
  }
  ExtractionQuality quality =
      EvaluateExtraction(world.dataset, sites, extraction);
  std::printf("extraction: field precision %.3f, recall %.3f\n\n",
              quality.field_precision, quality.field_recall);

  // 3. Integrate the extracted corpus.
  core::Integrator integrator;
  core::IntegrationReport report = integrator.Run(extraction.dataset);
  std::printf("%s\n\n", report.Summary().c_str());

  // 4. Catalog sample.
  auto catalog = core::MaterializeEntities(report, extraction.dataset, 3);
  for (const auto& entity : catalog) {
    std::printf("entity from %zu pages:\n", entity.num_records);
    for (const auto& [attr, value] : entity.values) {
      std::printf("  %-18s %s\n", attr.c_str(), value.c_str());
    }
  }
  return 0;
}
