// Deep-Web style truth discovery: many stock-data sources publish
// conflicting numbers, some of them copying a mediocre aggregator. The
// example resolves the conflicts with each fusion model and shows how copy
// detection changes both the chosen values and the source-accuracy
// estimates (the veracity story of the tutorial).
#include <cstdio>

#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/fusion/accu.h"
#include "bdi/fusion/accu_copy.h"
#include "bdi/fusion/evaluation.h"
#include "bdi/synth/world.h"

int main() {
  using namespace bdi;
  using namespace bdi::fusion;

  synth::WorldConfig config;
  config.seed = 9;
  config.category = "stock";
  config.num_entities = 300;      // tickers
  config.num_sources = 16;
  config.num_copiers = 6;         // re-publishers of the aggregator
  config.copier_original = 0;
  config.source0_accuracy = 0.6;  // the big aggregator is mediocre
  config.copy_rate = 0.9;
  config.format_variation_prob = 0.0;
  synth::SyntheticWorld world = synth::GenerateWorld(config);

  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());
  std::printf("deep-web stock corpus: %zu sources, %zu data items, "
              "%zu claims\n",
              db.num_sources(), db.items().size(), db.num_claims());
  std::printf("(6 sources copy the big aggregator source0, which is only "
              "60%% accurate)\n\n");

  // Resolve with copy-blind and copy-aware fusion.
  FusionResult accu = AccuFusion().Resolve(db);
  AccuCopyFusion accucopy_method;
  FusionResult accucopy = accucopy_method.Resolve(db);

  TextTable quality({"model", "precision vs truth", "accuracy-est MAE"});
  quality.AddRow({"vote", FormatDouble(EvaluateFusion(db, VoteFusion().Resolve(db),
                                                      world.truth)
                                           .precision,
                                       3),
                  "-"});
  quality.AddRow({"accu (copy-blind)",
                  FormatDouble(EvaluateFusion(db, accu, world.truth).precision, 3),
                  FormatDouble(AccuracyEstimationError(accu, world.truth), 3)});
  quality.AddRow({"accucopy (copy-aware)",
                  FormatDouble(
                      EvaluateFusion(db, accucopy, world.truth).precision, 3),
                  FormatDouble(AccuracyEstimationError(accucopy, world.truth),
                               3)});
  quality.Print("fusion quality");

  // Where did the models disagree? Show a few items.
  std::printf("items where copy-awareness changed the verdict:\n");
  int shown = 0;
  for (size_t i = 0; i < db.items().size() && shown < 5; ++i) {
    if (accu.chosen[i] == accucopy.chosen[i]) continue;
    const DataItem& item = db.items()[i];
    const std::string& truth =
        world.truth.true_values[item.entity][item.attr];
    std::printf("  %s of ticker#%d: accu said %-8s accucopy said %-8s "
                "(truth %s)\n",
                world.truth.canonical_attrs[item.attr].c_str(), item.entity,
                accu.chosen[i].c_str(), accucopy.chosen[i].c_str(),
                truth.c_str());
    ++shown;
  }

  // The detected dependence structure.
  std::printf("\ndetected copying (P >= 0.5):\n");
  for (const SourceDependence& d : accucopy_method.last_dependencies()) {
    if (d.probability < 0.5) continue;
    std::printf("  %s <-> %s  P(dep)=%.2f  shared-false=%zu\n",
                world.dataset.source(d.a).name.c_str(),
                world.dataset.source(d.b).name.c_str(), d.probability,
                d.shared_false);
  }
  return 0;
}
