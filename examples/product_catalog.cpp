// Product-catalog integration: the scenario from the tutorial's motivating
// domain. Crawled camera pages from heterogeneous sources are aligned
// bottom-up (no target schema given), linked via published identifiers,
// and fused into one browsable catalog. Along the way the example surfaces
// the "variety" statistics: the long tail of raw attribute names and what
// the mediated schema compresses them into.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bdi/common/table.h"
#include "bdi/core/integrator.h"
#include "bdi/schema/attribute_stats.h"
#include "bdi/synth/world.h"

int main() {
  using namespace bdi;

  // A mid-sized crawl: 25 sources of very different sizes publishing
  // cameras with synonymous attribute names, mixed units and typos.
  synth::WorldConfig config;
  config.seed = 7;
  config.category = "camera";
  config.num_entities = 400;
  config.num_sources = 25;
  config.synonym_prob = 0.6;
  config.decoration_prob = 0.3;
  config.format_variation_prob = 0.5;
  synth::SyntheticWorld world = synth::GenerateWorld(config);

  std::printf("crawled %zu pages from %zu sources\n",
              world.dataset.num_records(), world.dataset.num_sources());

  // Variety: how scattered are the raw attribute names?
  schema::AttributeStatistics stats =
      schema::AttributeStatistics::Compute(world.dataset);
  size_t rare = 0;
  for (const auto& [name, sources] : stats.name_source_counts()) {
    if (sources <= 2) ++rare;
  }
  std::printf("raw attribute names: %zu (%zu appear in <=2 sources)\n\n",
              stats.name_source_counts().size(), rare);

  // Integrate.
  core::Integrator integrator;
  core::IntegrationReport report = integrator.Run(world.dataset);
  std::printf("pipeline: %s\n\n", report.Summary().c_str());

  // The mediated schema: what the scattered names were reconciled into.
  TextTable schema_table({"mediated attribute", "#source attrs",
                          "example raw names"});
  std::vector<size_t> order(report.schema.clusters.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return report.schema.clusters[a].size() >
           report.schema.clusters[b].size();
  });
  for (size_t i = 0; i < std::min<size_t>(8, order.size()); ++i) {
    size_t c = order[i];
    std::string examples;
    for (size_t m = 0; m < std::min<size_t>(3, report.schema.clusters[c].size());
         ++m) {
      const SourceAttr& sa = report.schema.clusters[c][m];
      const schema::AttrProfile* profile = report.stats.Find(sa);
      if (profile == nullptr) continue;
      if (!examples.empty()) examples += " | ";
      examples += profile->raw_name;
    }
    schema_table.AddRow({report.schema.cluster_names[c],
                         std::to_string(report.schema.clusters[c].size()),
                         examples});
  }
  schema_table.Print("mediated schema (largest clusters)");

  // Browse the catalog: the best-covered products with their fused specs.
  auto catalog = core::MaterializeEntities(report, world.dataset, 5);
  std::printf("top integrated products:\n");
  for (const auto& entity : catalog) {
    std::printf("\n  product (from %zu pages):\n", entity.num_records);
    for (const auto& [attr, value] : entity.values) {
      std::printf("    %-18s %s\n", attr.c_str(), value.c_str());
    }
  }
  return 0;
}
