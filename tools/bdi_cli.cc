// bdi — command-line front end for the Big Data Integration library.
//
//   bdi generate  --out corpus.csv [--truth labels.csv] [--category camera]
//                 [--entities 300] [--sources 12] [--copiers 0] [--seed 42]
//   bdi stats     --in corpus.csv
//   bdi integrate --in corpus.csv [--fusion vote|accu|accusim|truthfinder|
//                 accucopy] [--top 5] [--labels labels.csv]
//                 [--budget N|P%]   (progressive comparison budget)
//                 [--save-dir saved/]   (persist the integrated view)
//   bdi link      --in corpus.csv [--labels labels.csv] [--budget N|P%]
//                 (--budget caps the full-kernel comparisons matching may
//                 spend: an absolute count like 25000 or a percentage like
//                 25% of what an unbudgeted run would pay; the bound-ranked
//                 scheduler spends it on the likeliest pairs first)
//   bdi ask       --in corpus.csv --attribute weight --entity "Zorix QX-12"
//                 [--load-dir saved/]   (reuse a saved integration)
//   bdi evolve    --out-prefix snap --months 6 [--entities 300]
//                 [--sources 12] [--seed 42]   (velocity snapshot series)
//   bdi diff      --old snap_0.csv --new snap_3.csv   (change feed)
//   bdi trust     --in corpus.csv   (source quality audit: accuracies,
//                 copying, systematic bias)
//   bdi validate  <corpus.csv|corpus.bds> [--labels labels.csv]   (scan
//                 ingestion files for structural problems; prints every
//                 issue with its row instead of stopping at the first;
//                 .bds files take the checksum fast path — CRC-32C over
//                 every row group, no text re-parsing)
//   bdi convert   <in> <out>   (csv -> columnar .bds, or .bds -> csv;
//                 direction follows the input format; [--group-records N])
//   bdi head      <corpus.csv|corpus.bds> [--records 10]   (print the
//                 leading records as long CSV; reads only the row groups /
//                 CSV chunks that cover them, never the whole file)
//   bdi inspect   <corpus.bds>   (footer-level tour of a .bds file: counts,
//                 dictionaries, per-row-group table with encodings)
//   bdi serve     --in corpus.csv [--shards 8] [--threads 0]
//                 [--budget N|P%] [--budget-ms M] [--port P]
//                 [--wal path] [--wal-rotate-mb 64]
//                 [--max-pending-batches 32] [--max-pending-records 200000]
//                 (resident entity store: bootstraps the pipeline once,
//                 then serves JSON-lines requests — ask/find/stats/update/
//                 shutdown, see docs/SERVING.md — over stdin/stdout, or
//                 over TCP with --port; --port 0 picks an ephemeral port
//                 and prints it. --budget/--budget-ms cap each live update
//                 batch's linkage comparisons / wall-clock milliseconds.
//                 --wal makes accepted updates durable: every batch is
//                 fsynced to the log before it is applied, the log
//                 compacts into a .bds checkpoint past --wal-rotate-mb,
//                 and a restart with the same --wal replays to the exact
//                 pre-crash state. --max-pending-batches/-records bound
//                 admitted-but-unapplied update work; excess batches are
//                 shed with the structured `overloaded` error and a
//                 retry_after_ms hint instead of queueing unboundedly;
//                 0 means unlimited)
//
// `link` and `integrate` also accept `--budget-ms M`: a wall-clock
// deadline (milliseconds) on the matching stage, composable with
// `--budget` — whichever limit is hit first stops comparing.
//
// `generate` writes a synthetic multi-source corpus (and optionally its
// record->entity ground truth); the other commands work on any corpus in
// the long CSV format (source,record,attribute,value) or its columnar
// binary twin `.bds` (docs/FILE_FORMAT.md) — every `--in` sniffs the
// format by magic bytes.
//
// Every command additionally accepts `--metrics-out <path>` (or
// `--metrics-out=<path>`): it enables the metrics registry for the run and
// writes the JSON snapshot — per-stage wall times, candidate-pair counts,
// fusion EM iterations, executor task counts — to <path> on success. See
// docs/OBSERVABILITY.md for the schema and the full metric list.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bdi/common/csv.h"
#include "bdi/common/flags.h"
#include "bdi/common/metrics.h"
#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/core/integrator.h"
#include "bdi/core/query.h"
#include "bdi/core/diff.h"
#include "bdi/fusion/accu_copy.h"
#include "bdi/fusion/bias.h"
#include "bdi/core/report_io.h"
#include "bdi/linkage/linkage.h"
#include "bdi/linkage/progressive.h"
#include "bdi/model/dataset_io.h"
#include "bdi/model/validate.h"
#include "bdi/serve/server.h"
#include "bdi/schema/attribute_stats.h"
#include "bdi/storage/bds_reader.h"
#include "bdi/storage/bds_writer.h"
#include "bdi/storage/dataset_reader.h"
#include "bdi/storage/format.h"
#include "bdi/synth/world.h"

namespace {

using namespace bdi;

int Usage() {
  std::fprintf(
      stderr,
      "usage: bdi <generate|stats|integrate|link|ask|serve|evolve|diff|"
      "trust|validate|convert|head|inspect> [--flag value]...\n"
      "see the header of tools/bdi_cli.cc for the flag list\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Pulls an integer flag; a malformed value prints the error and returns
// false so the command can exit with a usage failure.
bool GetIntFlag(const Flags& flags, const char* name, int fallback,
                int* out) {
  Result<int> value = flags.GetInt(name, fallback);
  if (!value.ok()) {
    std::fprintf(stderr, "error: %s\n", value.status().ToString().c_str());
    return false;
  }
  *out = value.value();
  return true;
}

// Pulls the --budget flag (comparison count or percentage, see
// linkage::ParseComparisonBudget); absent means unlimited. A malformed
// spec prints the error and returns false so the command can exit with a
// usage failure before any pipeline work starts.
bool GetBudgetFlag(const Flags& flags, double* out) {
  *out = 0.0;
  if (!flags.Has("budget")) return true;
  Result<double> budget =
      linkage::ParseComparisonBudget(flags.Get("budget", ""));
  if (!budget.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 budget.status().ToString().c_str());
    return false;
  }
  *out = budget.value();
  return true;
}

// Pulls the --budget-ms flag (wall-clock matching deadline in whole
// milliseconds; absent or 0 means none). Validated eagerly like every
// integer flag; negatives are usage failures.
bool GetBudgetMsFlag(const Flags& flags, double* out) {
  int budget_ms = 0;
  if (!GetIntFlag(flags, "budget-ms", 0, &budget_ms)) return false;
  if (budget_ms < 0) {
    std::fprintf(stderr, "error: --budget-ms must be non-negative\n");
    return false;
  }
  *out = static_cast<double>(budget_ms);
  return true;
}

int CmdGenerate(const Flags& flags) {
  if (!flags.Has("out")) {
    std::fprintf(stderr, "generate: --out is required\n");
    return 2;
  }
  int entities = 0;
  int sources = 0;
  int copiers = 0;
  int seed = 0;
  if (!GetIntFlag(flags, "entities", 300, &entities) ||
      !GetIntFlag(flags, "sources", 12, &sources) ||
      !GetIntFlag(flags, "copiers", 0, &copiers) ||
      !GetIntFlag(flags, "seed", 42, &seed)) {
    return 2;
  }
  synth::WorldConfig config;
  config.category = flags.Get("category", "camera");
  config.num_entities = entities;
  config.num_sources = sources;
  config.num_copiers = copiers;
  config.seed = static_cast<uint64_t>(seed);
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  Status status = WriteDatasetCsv(world.dataset, flags.Get("out", ""));
  if (!status.ok()) return Fail(status);
  std::printf("wrote %zu records from %zu sources to %s\n",
              world.dataset.num_records(), world.dataset.num_sources(),
              flags.Get("out", "").c_str());
  if (flags.Has("truth")) {
    status = WriteLabelsCsv(world.truth.entity_of_record,
                            flags.Get("truth", ""));
    if (!status.ok()) return Fail(status);
    std::printf("wrote ground-truth labels to %s\n",
                flags.Get("truth", "").c_str());
  }
  return 0;
}

int CmdStats(const Flags& flags) {
  Result<Dataset> dataset = storage::ReadDatasetAuto(flags.Get("in", ""));
  if (!dataset.ok()) return Fail(dataset.status());
  schema::AttributeStatistics stats =
      schema::AttributeStatistics::Compute(dataset.value());
  TextTable sources({"source", "records"});
  for (const SourceInfo& source : dataset->sources()) {
    sources.AddRow({source.name, std::to_string(source.records.size())});
  }
  sources.Print("sources");
  TextTable names({"attribute name", "#sources"});
  std::multimap<size_t, std::string, std::greater<>> by_count;
  for (const auto& [name, count] : stats.name_source_counts()) {
    by_count.emplace(count, name);
  }
  int shown = 0;
  for (const auto& [count, name] : by_count) {
    if (shown++ >= 15) break;
    names.AddRow({name, std::to_string(count)});
  }
  names.Print("most widespread attribute names (top 15 of " +
              std::to_string(stats.name_source_counts().size()) + ")");
  return 0;
}

int CmdIntegrate(const Flags& flags) {
  int top = 0;  // checked before the pipeline runs, not at print time
  double budget = 0.0;
  double budget_ms = 0.0;
  if (!GetIntFlag(flags, "top", 5, &top)) return 2;
  if (!GetBudgetFlag(flags, &budget)) return 2;
  if (!GetBudgetMsFlag(flags, &budget_ms)) return 2;
  Result<Dataset> dataset = storage::ReadDatasetAuto(flags.Get("in", ""));
  if (!dataset.ok()) return Fail(dataset.status());

  core::IntegratorConfig config;
  config.linker.comparison_budget = budget;
  config.linker.budget_ms = budget_ms;
  std::string fusion = flags.Get("fusion", "accucopy");
  if (fusion == "vote") {
    config.fusion = core::FusionKind::kVote;
  } else if (fusion == "accu") {
    config.fusion = core::FusionKind::kAccu;
  } else if (fusion == "accusim") {
    config.fusion = core::FusionKind::kAccuSim;
  } else if (fusion == "truthfinder") {
    config.fusion = core::FusionKind::kTruthFinder;
  } else if (fusion == "accucopy") {
    config.fusion = core::FusionKind::kAccuCopy;
  } else {
    std::fprintf(stderr, "unknown --fusion '%s'\n", fusion.c_str());
    return 2;
  }

  core::Integrator integrator(config);
  core::IntegrationReport report = integrator.Run(dataset.value());
  std::printf("%s\n\n", report.Summary().c_str());

  if (flags.Has("save-dir")) {
    Status saved =
        core::SaveIntegration(report, dataset.value(), flags.Get("save-dir", ""));
    if (!saved.ok()) return Fail(saved);
    std::printf("saved integrated view to %s\n\n",
                flags.Get("save-dir", "").c_str());
  }

  if (flags.Has("labels")) {
    Result<std::vector<EntityId>> labels =
        ReadLabelsCsv(flags.Get("labels", ""));
    if (!labels.ok()) return Fail(labels.status());
    linkage::LinkageQuality quality = linkage::EvaluateClusters(
        report.linkage.clusters.label_of_record, labels.value());
    std::printf("linkage vs labels: P=%.3f R=%.3f F1=%.3f\n\n",
                quality.precision, quality.recall, quality.f1);
  }

  for (const auto& entity : core::MaterializeEntities(
           report, dataset.value(), static_cast<size_t>(top))) {
    std::printf("entity #%d (%zu records)\n", entity.cluster,
                entity.num_records);
    for (const auto& [attr, value] : entity.values) {
      std::printf("  %-20s %s\n", attr.c_str(), value.c_str());
    }
  }
  return 0;
}

int CmdLink(const Flags& flags) {
  double budget = 0.0;  // checked before the pipeline runs
  double budget_ms = 0.0;
  if (!GetBudgetFlag(flags, &budget)) return 2;
  if (!GetBudgetMsFlag(flags, &budget_ms)) return 2;
  Result<Dataset> dataset = storage::ReadDatasetAuto(flags.Get("in", ""));
  if (!dataset.ok()) return Fail(dataset.status());
  linkage::LinkerConfig config;
  config.comparison_budget = budget;
  config.budget_ms = budget_ms;
  linkage::Linker linker(&dataset.value(), config);
  linkage::LinkageResult result = linker.Run();
  std::printf("%zu records -> %zu entities (%zu candidates, %zu matches)\n",
              dataset->num_records(), result.clusters.num_clusters,
              result.num_candidates, result.num_matches);
  if (budget > 0.0 || budget_ms > 0.0) {
    std::string limits;
    if (budget > 0.0) limits = flags.Get("budget", "");
    if (budget_ms > 0.0) {
      if (!limits.empty()) limits += " + ";
      limits += flags.Get("budget-ms", "") + "ms";
    }
    std::printf(
        "budget %s: %zu comparisons spent, %zu candidates deferred\n",
        limits.c_str(), result.num_scheduled, result.num_deferred);
  }
  if (flags.Has("labels")) {
    Result<std::vector<EntityId>> labels =
        ReadLabelsCsv(flags.Get("labels", ""));
    if (!labels.ok()) return Fail(labels.status());
    linkage::LinkageQuality quality = linkage::EvaluateClusters(
        result.clusters.label_of_record, labels.value());
    std::printf("vs labels: P=%.3f R=%.3f F1=%.3f\n", quality.precision,
                quality.recall, quality.f1);
  }
  return 0;
}

int CmdTrust(const Flags& flags) {
  Result<Dataset> dataset = storage::ReadDatasetAuto(flags.Get("in", ""));
  if (!dataset.ok()) return Fail(dataset.status());
  core::Integrator integrator;
  core::IntegrationReport report = integrator.Run(dataset.value());

  // Copy-aware re-resolution for the dependence estimates.
  fusion::AccuCopyFusion accucopy;
  fusion::FusionResult result = accucopy.Resolve(report.claims);

  TextTable accuracy_table({"source", "estimated accuracy", "claims"});
  std::vector<size_t> claims_per_source(dataset->num_sources(), 0);
  for (const fusion::DataItem& item : report.claims.items()) {
    for (const fusion::Claim& claim : item.claims) {
      ++claims_per_source[claim.source];
    }
  }
  for (size_t s = 0; s < dataset->num_sources(); ++s) {
    accuracy_table.AddRow({dataset->source(s).name,
                           FormatDouble(result.source_accuracy[s], 3),
                           std::to_string(claims_per_source[s])});
  }
  accuracy_table.Print("estimated source accuracies");

  bool any_dependence = false;
  for (const fusion::SourceDependence& d : accucopy.last_dependencies()) {
    if (d.probability < 0.5) continue;
    if (!any_dependence) {
      std::printf("probable copying:\n");
      any_dependence = true;
    }
    std::printf("  %s <-> %s  P=%.2f (shared false values: %zu)\n",
                dataset->source(d.a).name.c_str(),
                dataset->source(d.b).name.c_str(), d.probability,
                d.shared_false);
  }
  if (!any_dependence) std::printf("no copying detected\n");

  std::vector<fusion::SourceBias> biases =
      fusion::DetectBias(report.claims, result);
  if (biases.empty()) {
    std::printf("no systematic bias detected\n");
  } else {
    std::printf("systematic biases:\n");
    int shown = 0;
    for (const fusion::SourceBias& bias : biases) {
      if (shown++ >= 10) break;
      std::string attr =
          bias.attr >= 0 &&
                  static_cast<size_t>(bias.attr) <
                      report.schema.cluster_names.size()
              ? report.schema.cluster_names[bias.attr]
              : "?";
      std::printf("  %s / %s: %+0.1f%% (over %zu items)\n",
                  dataset->source(bias.source).name.c_str(), attr.c_str(),
                  100.0 * bias.relative_bias, bias.items);
    }
  }
  return 0;
}

int CmdDiff(const Flags& flags) {
  int limit = 0;  // checked before the two pipeline runs, not at print time
  if (!GetIntFlag(flags, "limit", 40, &limit)) return 2;
  Result<Dataset> old_dataset = storage::ReadDatasetAuto(flags.Get("old", ""));
  if (!old_dataset.ok()) return Fail(old_dataset.status());
  Result<Dataset> new_dataset = storage::ReadDatasetAuto(flags.Get("new", ""));
  if (!new_dataset.ok()) return Fail(new_dataset.status());
  core::Integrator integrator;
  core::IntegrationReport old_report = integrator.Run(old_dataset.value());
  core::IntegrationReport new_report = integrator.Run(new_dataset.value());
  core::IntegrationDiff diff = core::DiffIntegrations(
      old_report, old_dataset.value(), new_report, new_dataset.value());
  std::printf("%zu entities matched; %zu changes\n\n",
              diff.entities_matched, diff.changes.size());
  int shown = 0;
  for (const core::IntegrationChange& change : diff.changes) {
    if (shown++ >= limit) break;
    using Kind = core::IntegrationChange::Kind;
    switch (change.kind) {
      case Kind::kEntityAppeared:
        std::printf("+ entity  %s\n", change.entity_name.c_str());
        break;
      case Kind::kEntityDisappeared:
        std::printf("- entity  %s\n", change.entity_name.c_str());
        break;
      case Kind::kValueChanged:
        std::printf("~ %s / %s: %s -> %s\n", change.entity_name.c_str(),
                    change.attribute.c_str(), change.old_value.c_str(),
                    change.new_value.c_str());
        break;
      case Kind::kValueAppeared:
        std::printf("+ %s / %s = %s\n", change.entity_name.c_str(),
                    change.attribute.c_str(), change.new_value.c_str());
        break;
      case Kind::kValueDisappeared:
        std::printf("- %s / %s (was %s)\n", change.entity_name.c_str(),
                    change.attribute.c_str(), change.old_value.c_str());
        break;
    }
  }
  return 0;
}

int CmdEvolve(const Flags& flags) {
  if (!flags.Has("out-prefix")) {
    std::fprintf(stderr, "evolve: --out-prefix is required\n");
    return 2;
  }
  int entities = 0;
  int sources = 0;
  int seed = 0;
  int months = 0;
  if (!GetIntFlag(flags, "entities", 300, &entities) ||
      !GetIntFlag(flags, "sources", 12, &sources) ||
      !GetIntFlag(flags, "seed", 42, &seed) ||
      !GetIntFlag(flags, "months", 6, &months)) {
    return 2;
  }
  synth::WorldConfig config;
  config.category = flags.Get("category", "camera");
  config.num_entities = entities;
  config.num_sources = sources;
  config.seed = static_cast<uint64_t>(seed);
  synth::TemporalConfig temporal;
  synth::WorldSimulator simulator(config);
  for (int month = 0; month <= months; ++month) {
    synth::SyntheticWorld snapshot = simulator.Snapshot();
    std::string base =
        flags.Get("out-prefix", "snap") + "_" + std::to_string(month);
    Status status = WriteDatasetCsv(snapshot.dataset, base + ".csv");
    if (!status.ok()) return Fail(status);
    status = WriteLabelsCsv(snapshot.truth.entity_of_record,
                            base + ".labels.csv");
    if (!status.ok()) return Fail(status);
    std::printf("month %d: %zu records, %zu sources -> %s.csv\n", month,
                snapshot.dataset.num_records(),
                snapshot.dataset.num_sources(), base.c_str());
    if (month < months) simulator.Step(temporal);
  }
  return 0;
}

int CmdAsk(const Flags& flags) {
  if (!flags.Has("attribute") || !flags.Has("entity")) {
    std::fprintf(stderr, "ask: --attribute and --entity are required\n");
    return 2;
  }
  Result<Dataset> dataset = storage::ReadDatasetAuto(flags.Get("in", ""));
  if (!dataset.ok()) return Fail(dataset.status());
  core::IntegrationReport report;
  if (flags.Has("load-dir")) {
    Result<core::IntegrationReport> loaded =
        core::LoadIntegration(dataset.value(), flags.Get("load-dir", ""));
    if (!loaded.ok()) return Fail(loaded.status());
    report = std::move(loaded).value();
  } else {
    report = core::Integrator().Run(dataset.value());
  }
  core::QueryEngine engine(&report, &dataset.value());
  core::Answer answer =
      engine.Ask(flags.Get("attribute", ""), flags.Get("entity", ""));
  if (!answer.found()) {
    std::printf("no answer\n");
    return 0;
  }
  std::printf("%s of \"%s\" = %s  (confidence %.2f)\n",
              answer.attribute.c_str(), answer.entity_name.c_str(),
              answer.value.c_str(), answer.confidence);
  for (const core::AnswerSupport& support : answer.support) {
    std::printf("  %-24s %-16s %s\n", support.source_name.c_str(),
                support.value.c_str(),
                support.agrees ? "agrees" : "dissents");
  }
  return 0;
}

// Prints one file's validation report: a summary line, then every issue
// with its row. Returns true when the file is clean.
bool PrintValidation(const std::string& path,
                     const ValidationReport& report, bool dataset) {
  if (dataset) {
    std::printf("%s: %zu rows, %zu records, %zu sources, %zu attributes\n",
                path.c_str(), report.rows, report.records, report.sources,
                report.attributes);
  } else {
    std::printf("%s: %zu rows, %zu records\n", path.c_str(), report.rows,
                report.records);
  }
  if (report.ok()) {
    std::printf("%s: OK\n", path.c_str());
    return true;
  }
  std::printf("%s: %zu issue%s%s\n", path.c_str(), report.issues.size(),
              report.issues.size() == 1 ? "" : "s",
              report.truncated ? " (more suppressed)" : "");
  for (const ValidationIssue& issue : report.issues) {
    if (issue.row == 0) {
      std::printf("  file: %s\n", issue.message.c_str());
    } else {
      std::printf("  row %zu: %s\n", issue.row, issue.message.c_str());
    }
  }
  return false;
}

int CmdValidate(const Flags& flags, const std::string& positional) {
  std::string path =
      positional.empty() ? flags.Get("in", "") : positional;
  if (path.empty()) {
    std::fprintf(stderr,
                 "validate: a dataset path (positional or --in) is "
                 "required\n");
    return 2;
  }
  // `.bds` files take the checksum fast path: CRC-32C over every row
  // group and dictionary, no text parsing at all. Anything else goes
  // through the row-by-row CSV validator.
  Result<storage::DatasetFormat> format = storage::SniffDatasetFormat(path);
  bool clean;
  if (format.ok() && format.value() == storage::DatasetFormat::kBds) {
    clean = PrintValidation(path, storage::ValidateBdsFile(path), true);
  } else {
    clean = PrintValidation(path, ValidateDatasetCsv(path), true);
  }
  if (flags.Has("labels")) {
    std::string labels = flags.Get("labels", "");
    clean = PrintValidation(labels, ValidateLabelsCsv(labels), false) &&
            clean;
  }
  return clean ? 0 : 1;
}

int CmdConvert(const Flags& flags,
               const std::vector<std::string>& positionals) {
  if (positionals.size() != 2) {
    std::fprintf(stderr, "convert: usage: bdi convert <in> <out>\n");
    return 2;
  }
  const std::string& in = positionals[0];
  const std::string& out = positionals[1];
  int group_records = 0;
  if (!GetIntFlag(flags, "group-records", 4096, &group_records)) return 2;
  if (group_records <= 0) {
    std::fprintf(stderr, "convert: --group-records must be positive\n");
    return 2;
  }
  Result<storage::DatasetFormat> format = storage::SniffDatasetFormat(in);
  if (!format.ok()) return Fail(format.status());
  if (format.value() == storage::DatasetFormat::kCsv) {
    storage::BdsWriterOptions options;
    options.records_per_group = static_cast<uint32_t>(group_records);
    Result<storage::ConvertStats> stats =
        storage::ConvertCsvToBds(in, out, options);
    if (!stats.ok()) return Fail(stats.status());
    std::printf("converted %s -> %s\n", in.c_str(), out.c_str());
    std::printf(
        "%llu records, %llu fields, %llu row group%s\n",
        static_cast<unsigned long long>(stats->records),
        static_cast<unsigned long long>(stats->fields),
        static_cast<unsigned long long>(stats->row_groups),
        stats->row_groups == 1 ? "" : "s");
    double ratio =
        stats->bds_bytes > 0
            ? static_cast<double>(stats->csv_bytes) /
                  static_cast<double>(stats->bds_bytes)
            : 0.0;
    std::printf("%llu CSV bytes -> %llu bds bytes (%.2fx)\n",
                static_cast<unsigned long long>(stats->csv_bytes),
                static_cast<unsigned long long>(stats->bds_bytes), ratio);
    return 0;
  }
  // .bds input: decode and re-export as canonical long CSV (the same bytes
  // `WriteDatasetCsv(ReadDatasetCsv(original))` would produce).
  Result<storage::BdsReader> reader = storage::BdsReader::Open(in);
  if (!reader.ok()) return Fail(reader.status());
  Result<Dataset> dataset = reader->ReadAll();
  if (!dataset.ok()) return Fail(dataset.status());
  Status written = WriteDatasetCsv(dataset.value(), out);
  if (!written.ok()) return Fail(written);
  std::printf("converted %s -> %s (%zu records, %zu sources)\n", in.c_str(),
              out.c_str(), dataset->num_records(), dataset->num_sources());
  return 0;
}

int CmdHead(const Flags& flags,
            const std::vector<std::string>& positionals) {
  std::string path =
      positionals.empty() ? flags.Get("in", "") : positionals[0];
  if (path.empty()) {
    std::fprintf(stderr,
                 "head: a dataset path (positional or --in) is required\n");
    return 2;
  }
  int records = 0;
  if (!GetIntFlag(flags, "records", 10, &records)) return 2;
  if (records < 0) {
    std::fprintf(stderr, "head: --records must be non-negative\n");
    return 2;
  }
  Result<storage::DatasetReader> reader = storage::DatasetReader::Open(path);
  if (!reader.ok()) return Fail(reader.status());
  Result<Dataset> dataset =
      reader->ReadHead(static_cast<size_t>(records));
  if (!dataset.ok()) return Fail(dataset.status());
  // Long-CSV rows on stdout, exactly like the corresponding prefix of a
  // `bdi convert`ed CSV export, so `bdi head x.bds | bdi validate
  // /dev/stdin` style plumbing works.
  std::printf("%s\n",
              EncodeCsvRow({"source", "record", "attribute", "value"})
                  .c_str());
  for (const Record& record : dataset->records()) {
    for (const Field& field : record.fields) {
      std::printf("%s\n",
                  EncodeCsvRow({dataset->source(record.source).name,
                                std::to_string(record.idx),
                                dataset->attr_name(field.attr), field.value})
                      .c_str());
    }
  }
  return 0;
}

// Decodes the segment headers of one row group for `bdi inspect` without
// decoding any payloads: returns "source=rle attr=delta ..." or "?" when
// the group bytes are malformed (inspect never fails on a corrupt body —
// that is `bdi validate`'s job).
std::string GroupEncodingSummary(std::string_view group) {
  size_t offset = 0;
  Result<uint32_t> magic = storage::GetU32(group, &offset);
  if (!magic.ok() || magic.value() != storage::kRowGroupMagic) return "?";
  offset = storage::kRowGroupHeaderBytes - 4;  // skip record/field counts
  Result<uint32_t> num_segments = storage::GetU32(group, &offset);
  if (!num_segments.ok()) return "?";
  std::string summary;
  for (uint32_t s = 0; s < num_segments.value(); ++s) {
    if (offset + storage::kSegmentHeaderBytes > group.size()) return "?";
    uint8_t column = static_cast<uint8_t>(group[offset]);
    uint8_t encoding = static_cast<uint8_t>(group[offset + 1]);
    size_t header_rest = offset + 8;
    Result<uint64_t> payload = storage::GetU64(group, &header_rest);
    if (!payload.ok()) return "?";
    if (!summary.empty()) summary += " ";
    summary += std::string(storage::ColumnIdName(column)) + "=" +
               std::string(storage::ColumnEncodingName(encoding));
    offset = header_rest + payload.value();
    if (offset > group.size()) return "?";
  }
  return summary.empty() ? "(no segments)" : summary;
}

int CmdInspect(const Flags& flags,
               const std::vector<std::string>& positionals) {
  std::string path =
      positionals.empty() ? flags.Get("in", "") : positionals[0];
  if (path.empty()) {
    std::fprintf(stderr,
                 "inspect: a .bds path (positional or --in) is required\n");
    return 2;
  }
  Result<storage::BdsReader> reader = storage::BdsReader::Open(path);
  if (!reader.ok()) return Fail(reader.status());
  std::printf("%s: bds format version %u, %zu bytes\n", path.c_str(),
              reader->format_version(), reader->file_bytes());
  std::printf(
      "records: %llu  fields: %llu  row groups: %zu (%u records/group)\n",
      static_cast<unsigned long long>(reader->num_records()),
      static_cast<unsigned long long>(reader->num_fields()),
      reader->row_groups().size(), reader->records_per_group());
  std::printf(
      "dictionaries: %u sources (%llu B), %u attributes (%llu B), "
      "%u values (%llu B)\n",
      reader->source_dict().count,
      static_cast<unsigned long long>(reader->source_dict().bytes),
      reader->attr_dict().count,
      static_cast<unsigned long long>(reader->attr_dict().bytes),
      reader->value_dict().count,
      static_cast<unsigned long long>(reader->value_dict().bytes));
  TextTable groups(
      {"group", "offset", "bytes", "records", "fields", "crc32c",
       "encodings"});
  for (size_t g = 0; g < reader->row_groups().size(); ++g) {
    const storage::BdsRowGroupMeta& meta = reader->row_groups()[g];
    char crc[16];
    std::snprintf(crc, sizeof(crc), "%08x", meta.crc);
    groups.AddRow({std::to_string(g), std::to_string(meta.offset),
                   std::to_string(meta.bytes),
                   std::to_string(meta.num_records),
                   std::to_string(meta.num_fields), crc,
                   GroupEncodingSummary(reader->group_bytes(meta))});
  }
  groups.Print("row groups");
  if (reader->num_fields() > 0) {
    std::printf("bytes/field: %.2f\n",
                static_cast<double>(reader->file_bytes()) /
                    static_cast<double>(reader->num_fields()));
  }
  return 0;
}

int CmdServe(const Flags& flags) {
  // Every flag is validated before the bootstrap corpus is read, so a
  // typo fails in milliseconds instead of after a full integration run.
  int shards = 0;
  int threads = 0;
  int port = 0;
  int rotate_mb = 0;
  int max_pending_batches = 0;
  int max_pending_records = 0;
  double budget = 0.0;
  double budget_ms = 0.0;
  if (!GetIntFlag(flags, "shards", 8, &shards) ||
      !GetIntFlag(flags, "threads", 0, &threads) ||
      !GetIntFlag(flags, "port", 0, &port) ||
      !GetIntFlag(flags, "wal-rotate-mb", 64, &rotate_mb) ||
      !GetIntFlag(flags, "max-pending-batches", 32, &max_pending_batches) ||
      !GetIntFlag(flags, "max-pending-records", 200000,
                  &max_pending_records) ||
      !GetBudgetFlag(flags, &budget) ||
      !GetBudgetMsFlag(flags, &budget_ms)) {
    return 2;
  }
  if (shards < 1) {
    std::fprintf(stderr, "error: --shards must be at least 1\n");
    return 2;
  }
  if (threads < 0) {
    std::fprintf(stderr, "error: --threads must be non-negative\n");
    return 2;
  }
  if (flags.Has("port") && (port < 0 || port > 65535)) {
    std::fprintf(stderr, "error: --port must be in [0, 65535]\n");
    return 2;
  }
  if (rotate_mb < 0) {
    std::fprintf(stderr, "error: --wal-rotate-mb must be non-negative\n");
    return 2;
  }
  if (max_pending_batches < 0 || max_pending_records < 0) {
    std::fprintf(stderr,
                 "error: --max-pending-batches/--max-pending-records must "
                 "be non-negative\n");
    return 2;
  }
  Result<Dataset> dataset = storage::ReadDatasetAuto(flags.Get("in", ""));
  if (!dataset.ok()) return Fail(dataset.status());

  serve::StoreConfig store_config;
  store_config.num_shards = static_cast<size_t>(shards);
  store_config.comparison_budget = budget;
  store_config.budget_ms = budget_ms;
  store_config.num_threads = static_cast<size_t>(threads);
  store_config.wal.path = flags.Get("wal", "");
  store_config.wal.rotate_bytes = static_cast<uint64_t>(rotate_mb) << 20;
  store_config.max_pending_batches =
      static_cast<uint64_t>(max_pending_batches);
  store_config.max_pending_records =
      static_cast<uint64_t>(max_pending_records);
  Result<std::unique_ptr<serve::EntityStore>> store =
      serve::EntityStore::Create(std::move(dataset.value()), store_config);
  if (!store.ok()) return Fail(store.status());
  if (!store_config.wal.path.empty()) {
    std::fprintf(
        stderr,
        "bdi serve: WAL %s (base seq %llu, %llu batches replayed)\n",
        store_config.wal.path.c_str(),
        static_cast<unsigned long long>(store.value()->wal_base_sequence()),
        static_cast<unsigned long long>(store.value()->replayed_batches()));
  }

  // A client dropping its connection mid-response must never kill the
  // process: socket sends use MSG_NOSIGNAL, and SIGPIPE from the stdio
  // path is ignored process-wide.
  std::signal(SIGPIPE, SIG_IGN);

  std::shared_ptr<const serve::Snapshot> snapshot =
      store.value()->snapshot();
  // The ready banner goes to stderr: stdout is the response channel in
  // stdio mode and must carry nothing but JSON lines.
  std::fprintf(stderr,
               "bdi serve: %zu entities from %zu records across %zu "
               "shards (snapshot v%llu)\n",
               snapshot->num_entities(), snapshot->num_records(),
               snapshot->num_shards(),
               static_cast<unsigned long long>(snapshot->version()));

  serve::ServerConfig server_config;
  server_config.num_threads = static_cast<size_t>(threads);
  serve::Server server(store.value().get(), server_config);
  Status status = flags.Has("port")
                      ? server.ServeTcp(port, std::cout)
                      : server.ServeStream(std::cin, std::cout);
  if (!status.ok()) return Fail(status);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  // `validate`, `head`, and `inspect` take the file as a positional
  // argument, `convert` takes two; the remaining commands are flag-only.
  size_t max_positionals = 0;
  if (command == "validate" || command == "head" || command == "inspect") {
    max_positionals = 1;
  } else if (command == "convert") {
    max_positionals = 2;
  }
  std::vector<std::string> positionals;
  int first_flag = 2;
  while (positionals.size() < max_positionals && first_flag < argc &&
         std::strncmp(argv[first_flag], "--", 2) != 0) {
    positionals.emplace_back(argv[first_flag]);
    ++first_flag;
  }
  Flags flags(argc, argv, first_flag);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return Usage();
  }
  std::string metrics_out = flags.Get("metrics-out", "");
  if (!metrics_out.empty()) bdi::metrics::SetEnabled(true);
  int rc;
  if (command == "generate") {
    rc = CmdGenerate(flags);
  } else if (command == "stats") {
    rc = CmdStats(flags);
  } else if (command == "integrate") {
    rc = CmdIntegrate(flags);
  } else if (command == "link") {
    rc = CmdLink(flags);
  } else if (command == "ask") {
    rc = CmdAsk(flags);
  } else if (command == "serve") {
    rc = CmdServe(flags);
  } else if (command == "evolve") {
    rc = CmdEvolve(flags);
  } else if (command == "diff") {
    rc = CmdDiff(flags);
  } else if (command == "trust") {
    rc = CmdTrust(flags);
  } else if (command == "validate") {
    rc = CmdValidate(flags, positionals.empty() ? "" : positionals[0]);
  } else if (command == "convert") {
    rc = CmdConvert(flags, positionals);
  } else if (command == "head") {
    rc = CmdHead(flags, positionals);
  } else if (command == "inspect") {
    rc = CmdInspect(flags, positionals);
  } else {
    return Usage();
  }
  if (rc == 0 && !metrics_out.empty()) {
    Status written =
        bdi::metrics::Registry::Get().WriteJsonFile(metrics_out);
    if (!written.ok()) return Fail(written);
    std::printf("wrote metrics snapshot to %s\n", metrics_out.c_str());
  }
  return rc;
}
