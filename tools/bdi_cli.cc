// bdi — command-line front end for the Big Data Integration library.
//
//   bdi generate  --out corpus.csv [--truth labels.csv] [--category camera]
//                 [--entities 300] [--sources 12] [--copiers 0] [--seed 42]
//   bdi stats     --in corpus.csv
//   bdi integrate --in corpus.csv [--fusion vote|accu|accusim|truthfinder|
//                 accucopy] [--top 5] [--labels labels.csv]
//                 [--save-dir saved/]   (persist the integrated view)
//   bdi link      --in corpus.csv [--labels labels.csv]
//   bdi ask       --in corpus.csv --attribute weight --entity "Zorix QX-12"
//                 [--load-dir saved/]   (reuse a saved integration)
//   bdi evolve    --out-prefix snap --months 6 [--entities 300]
//                 [--sources 12] [--seed 42]   (velocity snapshot series)
//   bdi diff      --old snap_0.csv --new snap_3.csv   (change feed)
//   bdi trust     --in corpus.csv   (source quality audit: accuracies,
//                 copying, systematic bias)
//   bdi validate  <corpus.csv> [--labels labels.csv]   (scan ingestion
//                 files for structural problems; prints every issue with
//                 its row instead of stopping at the first)
//
// `generate` writes a synthetic multi-source corpus (and optionally its
// record->entity ground truth); the other commands work on any corpus in
// the long CSV format (source,record,attribute,value).
//
// Every command additionally accepts `--metrics-out <path>` (or
// `--metrics-out=<path>`): it enables the metrics registry for the run and
// writes the JSON snapshot — per-stage wall times, candidate-pair counts,
// fusion EM iterations, executor task counts — to <path> on success. See
// docs/OBSERVABILITY.md for the schema and the full metric list.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "bdi/common/flags.h"
#include "bdi/common/metrics.h"
#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/core/integrator.h"
#include "bdi/core/query.h"
#include "bdi/core/diff.h"
#include "bdi/fusion/accu_copy.h"
#include "bdi/fusion/bias.h"
#include "bdi/core/report_io.h"
#include "bdi/linkage/linkage.h"
#include "bdi/model/dataset_io.h"
#include "bdi/model/validate.h"
#include "bdi/schema/attribute_stats.h"
#include "bdi/synth/world.h"

namespace {

using namespace bdi;

int Usage() {
  std::fprintf(
      stderr,
      "usage: bdi <generate|stats|integrate|link|ask|evolve|diff|trust|"
      "validate> [--flag value]...\n"
      "see the header of tools/bdi_cli.cc for the flag list\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Pulls an integer flag; a malformed value prints the error and returns
// false so the command can exit with a usage failure.
bool GetIntFlag(const Flags& flags, const char* name, int fallback,
                int* out) {
  Result<int> value = flags.GetInt(name, fallback);
  if (!value.ok()) {
    std::fprintf(stderr, "error: %s\n", value.status().ToString().c_str());
    return false;
  }
  *out = value.value();
  return true;
}

int CmdGenerate(const Flags& flags) {
  if (!flags.Has("out")) {
    std::fprintf(stderr, "generate: --out is required\n");
    return 2;
  }
  int entities = 0;
  int sources = 0;
  int copiers = 0;
  int seed = 0;
  if (!GetIntFlag(flags, "entities", 300, &entities) ||
      !GetIntFlag(flags, "sources", 12, &sources) ||
      !GetIntFlag(flags, "copiers", 0, &copiers) ||
      !GetIntFlag(flags, "seed", 42, &seed)) {
    return 2;
  }
  synth::WorldConfig config;
  config.category = flags.Get("category", "camera");
  config.num_entities = entities;
  config.num_sources = sources;
  config.num_copiers = copiers;
  config.seed = static_cast<uint64_t>(seed);
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  Status status = WriteDatasetCsv(world.dataset, flags.Get("out", ""));
  if (!status.ok()) return Fail(status);
  std::printf("wrote %zu records from %zu sources to %s\n",
              world.dataset.num_records(), world.dataset.num_sources(),
              flags.Get("out", "").c_str());
  if (flags.Has("truth")) {
    status = WriteLabelsCsv(world.truth.entity_of_record,
                            flags.Get("truth", ""));
    if (!status.ok()) return Fail(status);
    std::printf("wrote ground-truth labels to %s\n",
                flags.Get("truth", "").c_str());
  }
  return 0;
}

int CmdStats(const Flags& flags) {
  Result<Dataset> dataset = ReadDatasetCsv(flags.Get("in", ""));
  if (!dataset.ok()) return Fail(dataset.status());
  schema::AttributeStatistics stats =
      schema::AttributeStatistics::Compute(dataset.value());
  TextTable sources({"source", "records"});
  for (const SourceInfo& source : dataset->sources()) {
    sources.AddRow({source.name, std::to_string(source.records.size())});
  }
  sources.Print("sources");
  TextTable names({"attribute name", "#sources"});
  std::multimap<size_t, std::string, std::greater<>> by_count;
  for (const auto& [name, count] : stats.name_source_counts()) {
    by_count.emplace(count, name);
  }
  int shown = 0;
  for (const auto& [count, name] : by_count) {
    if (shown++ >= 15) break;
    names.AddRow({name, std::to_string(count)});
  }
  names.Print("most widespread attribute names (top 15 of " +
              std::to_string(stats.name_source_counts().size()) + ")");
  return 0;
}

int CmdIntegrate(const Flags& flags) {
  int top = 0;  // checked before the pipeline runs, not at print time
  if (!GetIntFlag(flags, "top", 5, &top)) return 2;
  Result<Dataset> dataset = ReadDatasetCsv(flags.Get("in", ""));
  if (!dataset.ok()) return Fail(dataset.status());

  core::IntegratorConfig config;
  std::string fusion = flags.Get("fusion", "accucopy");
  if (fusion == "vote") {
    config.fusion = core::FusionKind::kVote;
  } else if (fusion == "accu") {
    config.fusion = core::FusionKind::kAccu;
  } else if (fusion == "accusim") {
    config.fusion = core::FusionKind::kAccuSim;
  } else if (fusion == "truthfinder") {
    config.fusion = core::FusionKind::kTruthFinder;
  } else if (fusion == "accucopy") {
    config.fusion = core::FusionKind::kAccuCopy;
  } else {
    std::fprintf(stderr, "unknown --fusion '%s'\n", fusion.c_str());
    return 2;
  }

  core::Integrator integrator(config);
  core::IntegrationReport report = integrator.Run(dataset.value());
  std::printf("%s\n\n", report.Summary().c_str());

  if (flags.Has("save-dir")) {
    Status saved =
        core::SaveIntegration(report, dataset.value(), flags.Get("save-dir", ""));
    if (!saved.ok()) return Fail(saved);
    std::printf("saved integrated view to %s\n\n",
                flags.Get("save-dir", "").c_str());
  }

  if (flags.Has("labels")) {
    Result<std::vector<EntityId>> labels =
        ReadLabelsCsv(flags.Get("labels", ""));
    if (!labels.ok()) return Fail(labels.status());
    linkage::LinkageQuality quality = linkage::EvaluateClusters(
        report.linkage.clusters.label_of_record, labels.value());
    std::printf("linkage vs labels: P=%.3f R=%.3f F1=%.3f\n\n",
                quality.precision, quality.recall, quality.f1);
  }

  for (const auto& entity : core::MaterializeEntities(
           report, dataset.value(), static_cast<size_t>(top))) {
    std::printf("entity #%d (%zu records)\n", entity.cluster,
                entity.num_records);
    for (const auto& [attr, value] : entity.values) {
      std::printf("  %-20s %s\n", attr.c_str(), value.c_str());
    }
  }
  return 0;
}

int CmdLink(const Flags& flags) {
  Result<Dataset> dataset = ReadDatasetCsv(flags.Get("in", ""));
  if (!dataset.ok()) return Fail(dataset.status());
  linkage::Linker linker(&dataset.value(), {});
  linkage::LinkageResult result = linker.Run();
  std::printf("%zu records -> %zu entities (%zu candidates, %zu matches)\n",
              dataset->num_records(), result.clusters.num_clusters,
              result.num_candidates, result.num_matches);
  if (flags.Has("labels")) {
    Result<std::vector<EntityId>> labels =
        ReadLabelsCsv(flags.Get("labels", ""));
    if (!labels.ok()) return Fail(labels.status());
    linkage::LinkageQuality quality = linkage::EvaluateClusters(
        result.clusters.label_of_record, labels.value());
    std::printf("vs labels: P=%.3f R=%.3f F1=%.3f\n", quality.precision,
                quality.recall, quality.f1);
  }
  return 0;
}

int CmdTrust(const Flags& flags) {
  Result<Dataset> dataset = ReadDatasetCsv(flags.Get("in", ""));
  if (!dataset.ok()) return Fail(dataset.status());
  core::Integrator integrator;
  core::IntegrationReport report = integrator.Run(dataset.value());

  // Copy-aware re-resolution for the dependence estimates.
  fusion::AccuCopyFusion accucopy;
  fusion::FusionResult result = accucopy.Resolve(report.claims);

  TextTable accuracy_table({"source", "estimated accuracy", "claims"});
  std::vector<size_t> claims_per_source(dataset->num_sources(), 0);
  for (const fusion::DataItem& item : report.claims.items()) {
    for (const fusion::Claim& claim : item.claims) {
      ++claims_per_source[claim.source];
    }
  }
  for (size_t s = 0; s < dataset->num_sources(); ++s) {
    accuracy_table.AddRow({dataset->source(s).name,
                           FormatDouble(result.source_accuracy[s], 3),
                           std::to_string(claims_per_source[s])});
  }
  accuracy_table.Print("estimated source accuracies");

  bool any_dependence = false;
  for (const fusion::SourceDependence& d : accucopy.last_dependencies()) {
    if (d.probability < 0.5) continue;
    if (!any_dependence) {
      std::printf("probable copying:\n");
      any_dependence = true;
    }
    std::printf("  %s <-> %s  P=%.2f (shared false values: %zu)\n",
                dataset->source(d.a).name.c_str(),
                dataset->source(d.b).name.c_str(), d.probability,
                d.shared_false);
  }
  if (!any_dependence) std::printf("no copying detected\n");

  std::vector<fusion::SourceBias> biases =
      fusion::DetectBias(report.claims, result);
  if (biases.empty()) {
    std::printf("no systematic bias detected\n");
  } else {
    std::printf("systematic biases:\n");
    int shown = 0;
    for (const fusion::SourceBias& bias : biases) {
      if (shown++ >= 10) break;
      std::string attr =
          bias.attr >= 0 &&
                  static_cast<size_t>(bias.attr) <
                      report.schema.cluster_names.size()
              ? report.schema.cluster_names[bias.attr]
              : "?";
      std::printf("  %s / %s: %+0.1f%% (over %zu items)\n",
                  dataset->source(bias.source).name.c_str(), attr.c_str(),
                  100.0 * bias.relative_bias, bias.items);
    }
  }
  return 0;
}

int CmdDiff(const Flags& flags) {
  int limit = 0;  // checked before the two pipeline runs, not at print time
  if (!GetIntFlag(flags, "limit", 40, &limit)) return 2;
  Result<Dataset> old_dataset = ReadDatasetCsv(flags.Get("old", ""));
  if (!old_dataset.ok()) return Fail(old_dataset.status());
  Result<Dataset> new_dataset = ReadDatasetCsv(flags.Get("new", ""));
  if (!new_dataset.ok()) return Fail(new_dataset.status());
  core::Integrator integrator;
  core::IntegrationReport old_report = integrator.Run(old_dataset.value());
  core::IntegrationReport new_report = integrator.Run(new_dataset.value());
  core::IntegrationDiff diff = core::DiffIntegrations(
      old_report, old_dataset.value(), new_report, new_dataset.value());
  std::printf("%zu entities matched; %zu changes\n\n",
              diff.entities_matched, diff.changes.size());
  int shown = 0;
  for (const core::IntegrationChange& change : diff.changes) {
    if (shown++ >= limit) break;
    using Kind = core::IntegrationChange::Kind;
    switch (change.kind) {
      case Kind::kEntityAppeared:
        std::printf("+ entity  %s\n", change.entity_name.c_str());
        break;
      case Kind::kEntityDisappeared:
        std::printf("- entity  %s\n", change.entity_name.c_str());
        break;
      case Kind::kValueChanged:
        std::printf("~ %s / %s: %s -> %s\n", change.entity_name.c_str(),
                    change.attribute.c_str(), change.old_value.c_str(),
                    change.new_value.c_str());
        break;
      case Kind::kValueAppeared:
        std::printf("+ %s / %s = %s\n", change.entity_name.c_str(),
                    change.attribute.c_str(), change.new_value.c_str());
        break;
      case Kind::kValueDisappeared:
        std::printf("- %s / %s (was %s)\n", change.entity_name.c_str(),
                    change.attribute.c_str(), change.old_value.c_str());
        break;
    }
  }
  return 0;
}

int CmdEvolve(const Flags& flags) {
  if (!flags.Has("out-prefix")) {
    std::fprintf(stderr, "evolve: --out-prefix is required\n");
    return 2;
  }
  int entities = 0;
  int sources = 0;
  int seed = 0;
  int months = 0;
  if (!GetIntFlag(flags, "entities", 300, &entities) ||
      !GetIntFlag(flags, "sources", 12, &sources) ||
      !GetIntFlag(flags, "seed", 42, &seed) ||
      !GetIntFlag(flags, "months", 6, &months)) {
    return 2;
  }
  synth::WorldConfig config;
  config.category = flags.Get("category", "camera");
  config.num_entities = entities;
  config.num_sources = sources;
  config.seed = static_cast<uint64_t>(seed);
  synth::TemporalConfig temporal;
  synth::WorldSimulator simulator(config);
  for (int month = 0; month <= months; ++month) {
    synth::SyntheticWorld snapshot = simulator.Snapshot();
    std::string base =
        flags.Get("out-prefix", "snap") + "_" + std::to_string(month);
    Status status = WriteDatasetCsv(snapshot.dataset, base + ".csv");
    if (!status.ok()) return Fail(status);
    status = WriteLabelsCsv(snapshot.truth.entity_of_record,
                            base + ".labels.csv");
    if (!status.ok()) return Fail(status);
    std::printf("month %d: %zu records, %zu sources -> %s.csv\n", month,
                snapshot.dataset.num_records(),
                snapshot.dataset.num_sources(), base.c_str());
    if (month < months) simulator.Step(temporal);
  }
  return 0;
}

int CmdAsk(const Flags& flags) {
  if (!flags.Has("attribute") || !flags.Has("entity")) {
    std::fprintf(stderr, "ask: --attribute and --entity are required\n");
    return 2;
  }
  Result<Dataset> dataset = ReadDatasetCsv(flags.Get("in", ""));
  if (!dataset.ok()) return Fail(dataset.status());
  core::IntegrationReport report;
  if (flags.Has("load-dir")) {
    Result<core::IntegrationReport> loaded =
        core::LoadIntegration(dataset.value(), flags.Get("load-dir", ""));
    if (!loaded.ok()) return Fail(loaded.status());
    report = std::move(loaded).value();
  } else {
    report = core::Integrator().Run(dataset.value());
  }
  core::QueryEngine engine(&report, &dataset.value());
  core::Answer answer =
      engine.Ask(flags.Get("attribute", ""), flags.Get("entity", ""));
  if (!answer.found()) {
    std::printf("no answer\n");
    return 0;
  }
  std::printf("%s of \"%s\" = %s  (confidence %.2f)\n",
              answer.attribute.c_str(), answer.entity_name.c_str(),
              answer.value.c_str(), answer.confidence);
  for (const core::AnswerSupport& support : answer.support) {
    std::printf("  %-24s %-16s %s\n", support.source_name.c_str(),
                support.value.c_str(),
                support.agrees ? "agrees" : "dissents");
  }
  return 0;
}

// Prints one file's validation report: a summary line, then every issue
// with its row. Returns true when the file is clean.
bool PrintValidation(const std::string& path,
                     const ValidationReport& report, bool dataset) {
  if (dataset) {
    std::printf("%s: %zu rows, %zu records, %zu sources, %zu attributes\n",
                path.c_str(), report.rows, report.records, report.sources,
                report.attributes);
  } else {
    std::printf("%s: %zu rows, %zu records\n", path.c_str(), report.rows,
                report.records);
  }
  if (report.ok()) {
    std::printf("%s: OK\n", path.c_str());
    return true;
  }
  std::printf("%s: %zu issue%s%s\n", path.c_str(), report.issues.size(),
              report.issues.size() == 1 ? "" : "s",
              report.truncated ? " (more suppressed)" : "");
  for (const ValidationIssue& issue : report.issues) {
    if (issue.row == 0) {
      std::printf("  file: %s\n", issue.message.c_str());
    } else {
      std::printf("  row %zu: %s\n", issue.row, issue.message.c_str());
    }
  }
  return false;
}

int CmdValidate(const Flags& flags, const std::string& positional) {
  std::string path =
      positional.empty() ? flags.Get("in", "") : positional;
  if (path.empty()) {
    std::fprintf(stderr,
                 "validate: a dataset path (positional or --in) is "
                 "required\n");
    return 2;
  }
  bool clean = PrintValidation(path, ValidateDatasetCsv(path), true);
  if (flags.Has("labels")) {
    std::string labels = flags.Get("labels", "");
    clean = PrintValidation(labels, ValidateLabelsCsv(labels), false) &&
            clean;
  }
  return clean ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  // `validate` takes the dataset as a positional argument (the other
  // commands are flag-only): bdi validate corpus.csv [--labels l.csv].
  std::string positional;
  int first_flag = 2;
  if (command == "validate" && argc > 2 &&
      std::strncmp(argv[2], "--", 2) != 0) {
    positional = argv[2];
    first_flag = 3;
  }
  Flags flags(argc, argv, first_flag);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return Usage();
  }
  std::string metrics_out = flags.Get("metrics-out", "");
  if (!metrics_out.empty()) bdi::metrics::SetEnabled(true);
  int rc;
  if (command == "generate") {
    rc = CmdGenerate(flags);
  } else if (command == "stats") {
    rc = CmdStats(flags);
  } else if (command == "integrate") {
    rc = CmdIntegrate(flags);
  } else if (command == "link") {
    rc = CmdLink(flags);
  } else if (command == "ask") {
    rc = CmdAsk(flags);
  } else if (command == "evolve") {
    rc = CmdEvolve(flags);
  } else if (command == "diff") {
    rc = CmdDiff(flags);
  } else if (command == "trust") {
    rc = CmdTrust(flags);
  } else if (command == "validate") {
    rc = CmdValidate(flags, positional);
  } else {
    return Usage();
  }
  if (rc == 0 && !metrics_out.empty()) {
    Status written =
        bdi::metrics::Registry::Get().WriteJsonFile(metrics_out);
    if (!written.ok()) return Fail(written);
    std::printf("wrote metrics snapshot to %s\n", metrics_out.c_str());
  }
  return rc;
}
