#!/usr/bin/env python3
"""Checks that public declarations in headers carry /// doc comments.

Usage: check_public_docs.py <header.h> [<header.h> ...]

The repo's style (see docs/DEVELOPMENT.md) requires a /// doxygen comment
on every public item in a public header. This is a line-based heuristic
checker, not a C++ parser; it is tuned for the Google-style headers under
src/bdi/ and errs on the side of not flagging:

  * Only namespace-scope declarations and `public:` members of classes and
    structs are checked (structs default to public, classes to private).
  * A /// block covers the run of consecutive declarations that follows it,
    until a blank line — so a documented overload set needs one comment.
  * A trailing doc comment on the declaration line itself (`int x;  ///<
    meaning`) also counts, matching the aggregate-member style of the
    storage headers.
  * Exempt: access specifiers, constructors/destructors and operators that
    are `= default` / `= delete`, friend declarations, `using` aliases of
    injected names, macros, include guards, and anything inside a
    `namespace internal`.

Exit status is the number of undocumented declarations (0 = clean), so it
slots directly under a CMake custom target; see the `docs-check` target.
"""

import re
import sys


DECL_START = re.compile(r"[A-Za-z_~]")
ACCESS_SPEC = re.compile(r"^(public|protected|private)\s*:$")
SCOPE_OPEN = re.compile(
    r"^(?:template\s*<[^<>]*>\s*)?"
    r"(?P<kind>namespace|class|struct|enum|union)\b(?P<rest>.*)$"
)
EXEMPT = re.compile(
    r"^(?:friend\b|BDI_|#|\}|static_assert\b)"
    r"|=\s*(?:default|delete)\s*;"
)


class Scope:
    def __init__(self, kind, name, access):
        self.kind = kind          # namespace | class | struct | other
        self.name = name
        self.access = access      # public | private (what members get now)


def strip_strings_and_comments(line, in_block_comment):
    """Removes // and /* */ comment bodies and string/char literals so brace
    counting is not fooled by them. Returns (code, still_in_block)."""
    out = []
    i = 0
    state = "code"  # code | str | chr
    if in_block_comment:
        end = line.find("*/")
        if end < 0:
            return "", True
        i = end + 2
    while i < len(line):
        c = line[i]
        nxt = line[i + 1] if i + 1 < len(line) else ""
        if state == "code":
            if c == "/" and nxt == "/":
                break
            if c == "/" and nxt == "*":
                end = line.find("*/", i + 2)
                if end < 0:
                    return "".join(out), True
                i = end + 2
                continue
            if c == '"':
                state = "str"
            elif c == "'":
                state = "chr"
            else:
                out.append(c)
        elif state in ("str", "chr"):
            if c == "\\":
                i += 2
                continue
            if (state == "str" and c == '"') or (state == "chr" and c == "'"):
                state = "code"
        i += 1
    return "".join(out), False


def check_header(path):
    with open(path, encoding="utf-8") as f:
        raw_lines = f.read().splitlines()

    problems = []
    scopes = []  # innermost last; empty = file scope
    in_block_comment = False
    covered = False      # a /// block covers the current declaration run
    pending_decl = None  # (lineno, text) of a decl awaiting its '{' or ';'
    pending_covered = False
    pending_depth = 0    # unbalanced parens/braces carried by the pending decl

    def current_checkable():
        """True when declarations here are public API."""
        for scope in scopes:
            if scope.kind == "namespace" and scope.name.startswith("internal"):
                return False
            if scope.kind == "other":
                return False
            if scope.kind in ("class", "struct") and scope.access != "public":
                return False
        return True

    in_macro_continuation = False
    for lineno, raw in enumerate(raw_lines, start=1):
        stripped = raw.strip()
        if in_macro_continuation:
            in_macro_continuation = raw.rstrip().endswith("\\")
            continue
        if stripped.startswith("#") and raw.rstrip().endswith("\\"):
            in_macro_continuation = True
            continue
        code, in_block_comment = strip_strings_and_comments(
            stripped, in_block_comment)
        code = code.strip()

        is_doc = stripped.startswith("///")
        # A trailing `///` or `///<` doc comment documents this line's own
        # declaration (but does not start a covered run).
        has_trailing_doc = not is_doc and "///" in stripped
        is_comment_only = not code and (
            stripped.startswith("//") or stripped.startswith("*")
            or stripped.startswith("/*") or in_block_comment)

        if is_doc:
            covered = True
            continue
        if is_comment_only:
            continue
        if not code:
            if pending_decl is None:
                covered = False  # blank line ends a documented run
            continue
        if code.startswith("#"):
            continue

        # Continuation of a multi-line declaration: only track nesting.
        if pending_decl is not None:
            pending_depth += code.count("(") - code.count(")")
            pending_depth += code.count("{") - code.count("}")
            if pending_depth <= 0 and (";" in code or "{" in code):
                if "{" in code:
                    scopes.append(Scope("other", "", "private"))
                    depth_after = code.count("{") - code.count("}")
                    if depth_after <= 0:
                        scopes.pop()
                pending_decl = None
            continue

        m = ACCESS_SPEC.match(code)
        if m:
            if scopes and scopes[-1].kind in ("class", "struct"):
                scopes[-1].access = m.group(1)
            covered = False
            continue

        # Scope closes.
        if code.startswith("}"):
            closes = code.count("}") - code.count("{")
            for _ in range(max(closes, 0)):
                if scopes:
                    scopes.pop()
            covered = False
            continue

        checkable = current_checkable()

        # Scope opens: namespace / class / struct / enum.
        m = SCOPE_OPEN.match(code)
        if m and not code.endswith(";"):
            kind = m.group("kind")
            rest = m.group("rest")
            name_match = re.match(r"\s*([A-Za-z_][A-Za-z0-9_:]*)", rest)
            name = name_match.group(1) if name_match else ""
            if (kind in ("class", "struct") and checkable and not covered
                    and not has_trailing_doc):
                problems.append((lineno, code))
            if "{" in code:
                if kind == "namespace":
                    scope = Scope("namespace", name, "public")
                elif kind == "class":
                    scope = Scope("class", name, "private")
                elif kind == "struct":
                    scope = Scope("struct", name, "public")
                else:
                    scope = Scope("other", name, "public")
                scopes.append(scope)
            else:
                pending_decl = (lineno, code)
                pending_covered = covered
                pending_depth = 0
            covered = kind == "namespace" and covered
            continue

        depth = code.count("(") - code.count(")")
        opens_brace = "{" in code

        if EXEMPT.search(code) or not DECL_START.match(code):
            if opens_brace and code.count("{") > code.count("}"):
                scopes.append(Scope("other", "", "private"))
            covered = False if code.endswith(";") else covered
            continue

        if checkable and not covered and not has_trailing_doc:
            problems.append((lineno, code))

        if depth > 0 or (not code.endswith(";") and not opens_brace):
            pending_decl = (lineno, code)
            pending_covered = covered
            pending_depth = depth + code.count("{") - code.count("}")
        elif opens_brace and code.count("{") > code.count("}"):
            scopes.append(Scope("other", "", "private"))

    return problems


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    total = 0
    for path in argv[1:]:
        for lineno, code in check_header(path):
            print(f"{path}:{lineno}: undocumented public declaration: "
                  f"{code[:90]}")
            total += 1
    if total:
        print(f"docs-check: {total} undocumented public declaration(s)")
    else:
        print("docs-check: all public declarations documented")
    return min(total, 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
