file(REMOVE_RECURSE
  "CMakeFiles/bench_velocity.dir/bench_velocity.cc.o"
  "CMakeFiles/bench_velocity.dir/bench_velocity.cc.o.d"
  "bench_velocity"
  "bench_velocity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_velocity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
