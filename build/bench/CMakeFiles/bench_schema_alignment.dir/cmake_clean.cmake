file(REMOVE_RECURSE
  "CMakeFiles/bench_schema_alignment.dir/bench_schema_alignment.cc.o"
  "CMakeFiles/bench_schema_alignment.dir/bench_schema_alignment.cc.o.d"
  "bench_schema_alignment"
  "bench_schema_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schema_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
