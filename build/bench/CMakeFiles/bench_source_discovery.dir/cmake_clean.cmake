file(REMOVE_RECURSE
  "CMakeFiles/bench_source_discovery.dir/bench_source_discovery.cc.o"
  "CMakeFiles/bench_source_discovery.dir/bench_source_discovery.cc.o.d"
  "bench_source_discovery"
  "bench_source_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_source_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
