# Empty dependencies file for bench_source_discovery.
# This may be replaced when dependencies are built.
