file(REMOVE_RECURSE
  "CMakeFiles/bench_domain_stats.dir/bench_domain_stats.cc.o"
  "CMakeFiles/bench_domain_stats.dir/bench_domain_stats.cc.o.d"
  "bench_domain_stats"
  "bench_domain_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_domain_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
