# Empty compiler generated dependencies file for bench_domain_stats.
# This may be replaced when dependencies are built.
