# Empty compiler generated dependencies file for bench_accu_convergence.
# This may be replaced when dependencies are built.
