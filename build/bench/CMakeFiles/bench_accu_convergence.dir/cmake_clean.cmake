file(REMOVE_RECURSE
  "CMakeFiles/bench_accu_convergence.dir/bench_accu_convergence.cc.o"
  "CMakeFiles/bench_accu_convergence.dir/bench_accu_convergence.cc.o.d"
  "bench_accu_convergence"
  "bench_accu_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_accu_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
