file(REMOVE_RECURSE
  "CMakeFiles/bench_online_fusion.dir/bench_online_fusion.cc.o"
  "CMakeFiles/bench_online_fusion.dir/bench_online_fusion.cc.o.d"
  "bench_online_fusion"
  "bench_online_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
