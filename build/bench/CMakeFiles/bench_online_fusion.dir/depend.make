# Empty dependencies file for bench_online_fusion.
# This may be replaced when dependencies are built.
