
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_primitives.cc" "bench/CMakeFiles/bench_micro_primitives.dir/bench_micro_primitives.cc.o" "gcc" "bench/CMakeFiles/bench_micro_primitives.dir/bench_micro_primitives.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bdi/core/CMakeFiles/bdi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bdi/discovery/CMakeFiles/bdi_discovery.dir/DependInfo.cmake"
  "/root/repo/build/src/bdi/select/CMakeFiles/bdi_select.dir/DependInfo.cmake"
  "/root/repo/build/src/bdi/synth/CMakeFiles/bdi_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/bdi/extract/CMakeFiles/bdi_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/bdi/fusion/CMakeFiles/bdi_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/bdi/linkage/CMakeFiles/bdi_linkage.dir/DependInfo.cmake"
  "/root/repo/build/src/bdi/schema/CMakeFiles/bdi_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/bdi/model/CMakeFiles/bdi_model.dir/DependInfo.cmake"
  "/root/repo/build/src/bdi/text/CMakeFiles/bdi_text.dir/DependInfo.cmake"
  "/root/repo/build/src/bdi/common/CMakeFiles/bdi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
