# Empty compiler generated dependencies file for bench_linkage_quality.
# This may be replaced when dependencies are built.
