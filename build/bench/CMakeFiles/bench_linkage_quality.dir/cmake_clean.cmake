file(REMOVE_RECURSE
  "CMakeFiles/bench_linkage_quality.dir/bench_linkage_quality.cc.o"
  "CMakeFiles/bench_linkage_quality.dir/bench_linkage_quality.cc.o.d"
  "bench_linkage_quality"
  "bench_linkage_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linkage_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
