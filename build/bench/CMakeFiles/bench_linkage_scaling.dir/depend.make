# Empty dependencies file for bench_linkage_scaling.
# This may be replaced when dependencies are built.
