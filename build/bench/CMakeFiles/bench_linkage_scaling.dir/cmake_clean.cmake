file(REMOVE_RECURSE
  "CMakeFiles/bench_linkage_scaling.dir/bench_linkage_scaling.cc.o"
  "CMakeFiles/bench_linkage_scaling.dir/bench_linkage_scaling.cc.o.d"
  "bench_linkage_scaling"
  "bench_linkage_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linkage_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
