file(REMOVE_RECURSE
  "CMakeFiles/bench_deceit.dir/bench_deceit.cc.o"
  "CMakeFiles/bench_deceit.dir/bench_deceit.cc.o.d"
  "bench_deceit"
  "bench_deceit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deceit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
