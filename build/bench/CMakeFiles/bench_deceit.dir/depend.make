# Empty dependencies file for bench_deceit.
# This may be replaced when dependencies are built.
