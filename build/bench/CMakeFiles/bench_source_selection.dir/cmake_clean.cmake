file(REMOVE_RECURSE
  "CMakeFiles/bench_source_selection.dir/bench_source_selection.cc.o"
  "CMakeFiles/bench_source_selection.dir/bench_source_selection.cc.o.d"
  "bench_source_selection"
  "bench_source_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_source_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
