# Empty dependencies file for bench_source_selection.
# This may be replaced when dependencies are built.
