file(REMOVE_RECURSE
  "CMakeFiles/bench_incremental_linkage.dir/bench_incremental_linkage.cc.o"
  "CMakeFiles/bench_incremental_linkage.dir/bench_incremental_linkage.cc.o.d"
  "bench_incremental_linkage"
  "bench_incremental_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_incremental_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
