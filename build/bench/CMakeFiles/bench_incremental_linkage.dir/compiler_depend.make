# Empty compiler generated dependencies file for bench_incremental_linkage.
# This may be replaced when dependencies are built.
