# Empty compiler generated dependencies file for bench_temporal_linkage.
# This may be replaced when dependencies are built.
