file(REMOVE_RECURSE
  "CMakeFiles/bench_temporal_linkage.dir/bench_temporal_linkage.cc.o"
  "CMakeFiles/bench_temporal_linkage.dir/bench_temporal_linkage.cc.o.d"
  "bench_temporal_linkage"
  "bench_temporal_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_temporal_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
