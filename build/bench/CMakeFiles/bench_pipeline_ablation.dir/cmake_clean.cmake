file(REMOVE_RECURSE
  "CMakeFiles/bench_pipeline_ablation.dir/bench_pipeline_ablation.cc.o"
  "CMakeFiles/bench_pipeline_ablation.dir/bench_pipeline_ablation.cc.o.d"
  "bench_pipeline_ablation"
  "bench_pipeline_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipeline_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
