file(REMOVE_RECURSE
  "CMakeFiles/bench_active_learning.dir/bench_active_learning.cc.o"
  "CMakeFiles/bench_active_learning.dir/bench_active_learning.cc.o.d"
  "bench_active_learning"
  "bench_active_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_active_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
