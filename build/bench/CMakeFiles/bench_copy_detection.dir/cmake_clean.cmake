file(REMOVE_RECURSE
  "CMakeFiles/bench_copy_detection.dir/bench_copy_detection.cc.o"
  "CMakeFiles/bench_copy_detection.dir/bench_copy_detection.cc.o.d"
  "bench_copy_detection"
  "bench_copy_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_copy_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
