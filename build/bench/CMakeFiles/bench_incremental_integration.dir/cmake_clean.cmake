file(REMOVE_RECURSE
  "CMakeFiles/bench_incremental_integration.dir/bench_incremental_integration.cc.o"
  "CMakeFiles/bench_incremental_integration.dir/bench_incremental_integration.cc.o.d"
  "bench_incremental_integration"
  "bench_incremental_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_incremental_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
