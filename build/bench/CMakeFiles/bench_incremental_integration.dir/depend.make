# Empty dependencies file for bench_incremental_integration.
# This may be replaced when dependencies are built.
