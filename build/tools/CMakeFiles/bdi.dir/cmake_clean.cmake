file(REMOVE_RECURSE
  "CMakeFiles/bdi.dir/bdi_cli.cc.o"
  "CMakeFiles/bdi.dir/bdi_cli.cc.o.d"
  "bdi"
  "bdi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
