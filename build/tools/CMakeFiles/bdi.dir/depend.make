# Empty dependencies file for bdi.
# This may be replaced when dependencies are built.
