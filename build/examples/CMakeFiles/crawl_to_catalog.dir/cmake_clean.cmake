file(REMOVE_RECURSE
  "CMakeFiles/crawl_to_catalog.dir/crawl_to_catalog.cpp.o"
  "CMakeFiles/crawl_to_catalog.dir/crawl_to_catalog.cpp.o.d"
  "crawl_to_catalog"
  "crawl_to_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crawl_to_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
