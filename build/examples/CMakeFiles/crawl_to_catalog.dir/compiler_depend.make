# Empty compiler generated dependencies file for crawl_to_catalog.
# This may be replaced when dependencies are built.
