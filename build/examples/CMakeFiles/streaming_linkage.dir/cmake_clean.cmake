file(REMOVE_RECURSE
  "CMakeFiles/streaming_linkage.dir/streaming_linkage.cpp.o"
  "CMakeFiles/streaming_linkage.dir/streaming_linkage.cpp.o.d"
  "streaming_linkage"
  "streaming_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
