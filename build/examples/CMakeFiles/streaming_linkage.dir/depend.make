# Empty dependencies file for streaming_linkage.
# This may be replaced when dependencies are built.
