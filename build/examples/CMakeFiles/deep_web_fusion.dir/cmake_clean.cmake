file(REMOVE_RECURSE
  "CMakeFiles/deep_web_fusion.dir/deep_web_fusion.cpp.o"
  "CMakeFiles/deep_web_fusion.dir/deep_web_fusion.cpp.o.d"
  "deep_web_fusion"
  "deep_web_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deep_web_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
