# Empty compiler generated dependencies file for deep_web_fusion.
# This may be replaced when dependencies are built.
