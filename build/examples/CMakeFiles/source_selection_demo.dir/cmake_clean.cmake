file(REMOVE_RECURSE
  "CMakeFiles/source_selection_demo.dir/source_selection_demo.cpp.o"
  "CMakeFiles/source_selection_demo.dir/source_selection_demo.cpp.o.d"
  "source_selection_demo"
  "source_selection_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/source_selection_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
