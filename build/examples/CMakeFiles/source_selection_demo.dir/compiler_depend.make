# Empty compiler generated dependencies file for source_selection_demo.
# This may be replaced when dependencies are built.
