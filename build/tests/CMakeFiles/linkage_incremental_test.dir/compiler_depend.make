# Empty compiler generated dependencies file for linkage_incremental_test.
# This may be replaced when dependencies are built.
