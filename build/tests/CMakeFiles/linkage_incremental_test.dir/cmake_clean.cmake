file(REMOVE_RECURSE
  "CMakeFiles/linkage_incremental_test.dir/linkage_incremental_test.cc.o"
  "CMakeFiles/linkage_incremental_test.dir/linkage_incremental_test.cc.o.d"
  "linkage_incremental_test"
  "linkage_incremental_test.pdb"
  "linkage_incremental_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linkage_incremental_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
