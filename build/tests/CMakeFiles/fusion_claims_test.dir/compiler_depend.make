# Empty compiler generated dependencies file for fusion_claims_test.
# This may be replaced when dependencies are built.
