file(REMOVE_RECURSE
  "CMakeFiles/fusion_claims_test.dir/fusion_claims_test.cc.o"
  "CMakeFiles/fusion_claims_test.dir/fusion_claims_test.cc.o.d"
  "fusion_claims_test"
  "fusion_claims_test.pdb"
  "fusion_claims_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_claims_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
