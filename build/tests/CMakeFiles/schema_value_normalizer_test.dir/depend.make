# Empty dependencies file for schema_value_normalizer_test.
# This may be replaced when dependencies are built.
