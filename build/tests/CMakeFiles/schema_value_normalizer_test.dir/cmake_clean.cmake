file(REMOVE_RECURSE
  "CMakeFiles/schema_value_normalizer_test.dir/schema_value_normalizer_test.cc.o"
  "CMakeFiles/schema_value_normalizer_test.dir/schema_value_normalizer_test.cc.o.d"
  "schema_value_normalizer_test"
  "schema_value_normalizer_test.pdb"
  "schema_value_normalizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_value_normalizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
