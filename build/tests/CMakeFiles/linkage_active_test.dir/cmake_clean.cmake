file(REMOVE_RECURSE
  "CMakeFiles/linkage_active_test.dir/linkage_active_test.cc.o"
  "CMakeFiles/linkage_active_test.dir/linkage_active_test.cc.o.d"
  "linkage_active_test"
  "linkage_active_test.pdb"
  "linkage_active_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linkage_active_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
