# Empty compiler generated dependencies file for linkage_active_test.
# This may be replaced when dependencies are built.
