file(REMOVE_RECURSE
  "CMakeFiles/linkage_temporal_test.dir/linkage_temporal_test.cc.o"
  "CMakeFiles/linkage_temporal_test.dir/linkage_temporal_test.cc.o.d"
  "linkage_temporal_test"
  "linkage_temporal_test.pdb"
  "linkage_temporal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linkage_temporal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
