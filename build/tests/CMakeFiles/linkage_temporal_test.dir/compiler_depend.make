# Empty compiler generated dependencies file for linkage_temporal_test.
# This may be replaced when dependencies are built.
