# Empty dependencies file for text_similarity_test.
# This may be replaced when dependencies are built.
