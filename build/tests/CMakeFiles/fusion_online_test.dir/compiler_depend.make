# Empty compiler generated dependencies file for fusion_online_test.
# This may be replaced when dependencies are built.
