file(REMOVE_RECURSE
  "CMakeFiles/fusion_online_test.dir/fusion_online_test.cc.o"
  "CMakeFiles/fusion_online_test.dir/fusion_online_test.cc.o.d"
  "fusion_online_test"
  "fusion_online_test.pdb"
  "fusion_online_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_online_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
