# Empty dependencies file for core_integrator_test.
# This may be replaced when dependencies are built.
