# Empty dependencies file for schema_matchers_test.
# This may be replaced when dependencies are built.
