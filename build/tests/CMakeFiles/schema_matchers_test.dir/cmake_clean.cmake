file(REMOVE_RECURSE
  "CMakeFiles/schema_matchers_test.dir/schema_matchers_test.cc.o"
  "CMakeFiles/schema_matchers_test.dir/schema_matchers_test.cc.o.d"
  "schema_matchers_test"
  "schema_matchers_test.pdb"
  "schema_matchers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_matchers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
