file(REMOVE_RECURSE
  "CMakeFiles/schema_attribute_stats_test.dir/schema_attribute_stats_test.cc.o"
  "CMakeFiles/schema_attribute_stats_test.dir/schema_attribute_stats_test.cc.o.d"
  "schema_attribute_stats_test"
  "schema_attribute_stats_test.pdb"
  "schema_attribute_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_attribute_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
