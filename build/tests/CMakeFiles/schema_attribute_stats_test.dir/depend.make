# Empty dependencies file for schema_attribute_stats_test.
# This may be replaced when dependencies are built.
