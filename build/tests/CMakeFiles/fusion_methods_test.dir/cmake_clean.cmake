file(REMOVE_RECURSE
  "CMakeFiles/fusion_methods_test.dir/fusion_methods_test.cc.o"
  "CMakeFiles/fusion_methods_test.dir/fusion_methods_test.cc.o.d"
  "fusion_methods_test"
  "fusion_methods_test.pdb"
  "fusion_methods_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_methods_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
