file(REMOVE_RECURSE
  "CMakeFiles/synth_world_test.dir/synth_world_test.cc.o"
  "CMakeFiles/synth_world_test.dir/synth_world_test.cc.o.d"
  "synth_world_test"
  "synth_world_test.pdb"
  "synth_world_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_world_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
