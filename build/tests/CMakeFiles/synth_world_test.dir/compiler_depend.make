# Empty compiler generated dependencies file for synth_world_test.
# This may be replaced when dependencies are built.
