# Empty compiler generated dependencies file for linkage_meta_blocking_test.
# This may be replaced when dependencies are built.
