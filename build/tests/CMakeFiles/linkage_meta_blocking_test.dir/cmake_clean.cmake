file(REMOVE_RECURSE
  "CMakeFiles/linkage_meta_blocking_test.dir/linkage_meta_blocking_test.cc.o"
  "CMakeFiles/linkage_meta_blocking_test.dir/linkage_meta_blocking_test.cc.o.d"
  "linkage_meta_blocking_test"
  "linkage_meta_blocking_test.pdb"
  "linkage_meta_blocking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linkage_meta_blocking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
