# Empty dependencies file for model_ground_truth_test.
# This may be replaced when dependencies are built.
