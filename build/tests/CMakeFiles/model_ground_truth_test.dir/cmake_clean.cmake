file(REMOVE_RECURSE
  "CMakeFiles/model_ground_truth_test.dir/model_ground_truth_test.cc.o"
  "CMakeFiles/model_ground_truth_test.dir/model_ground_truth_test.cc.o.d"
  "model_ground_truth_test"
  "model_ground_truth_test.pdb"
  "model_ground_truth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_ground_truth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
