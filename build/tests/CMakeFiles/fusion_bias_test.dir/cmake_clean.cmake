file(REMOVE_RECURSE
  "CMakeFiles/fusion_bias_test.dir/fusion_bias_test.cc.o"
  "CMakeFiles/fusion_bias_test.dir/fusion_bias_test.cc.o.d"
  "fusion_bias_test"
  "fusion_bias_test.pdb"
  "fusion_bias_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_bias_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
