# Empty dependencies file for fusion_bias_test.
# This may be replaced when dependencies are built.
