file(REMOVE_RECURSE
  "CMakeFiles/fusion_copy_test.dir/fusion_copy_test.cc.o"
  "CMakeFiles/fusion_copy_test.dir/fusion_copy_test.cc.o.d"
  "fusion_copy_test"
  "fusion_copy_test.pdb"
  "fusion_copy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_copy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
