# Empty compiler generated dependencies file for fusion_baselines_test.
# This may be replaced when dependencies are built.
