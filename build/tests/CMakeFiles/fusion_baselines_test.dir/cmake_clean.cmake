file(REMOVE_RECURSE
  "CMakeFiles/fusion_baselines_test.dir/fusion_baselines_test.cc.o"
  "CMakeFiles/fusion_baselines_test.dir/fusion_baselines_test.cc.o.d"
  "fusion_baselines_test"
  "fusion_baselines_test.pdb"
  "fusion_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
