file(REMOVE_RECURSE
  "CMakeFiles/schema_linkage_refinement_test.dir/schema_linkage_refinement_test.cc.o"
  "CMakeFiles/schema_linkage_refinement_test.dir/schema_linkage_refinement_test.cc.o.d"
  "schema_linkage_refinement_test"
  "schema_linkage_refinement_test.pdb"
  "schema_linkage_refinement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_linkage_refinement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
