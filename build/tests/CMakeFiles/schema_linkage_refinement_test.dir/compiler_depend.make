# Empty compiler generated dependencies file for schema_linkage_refinement_test.
# This may be replaced when dependencies are built.
