# Empty dependencies file for linkage_clustering_test.
# This may be replaced when dependencies are built.
