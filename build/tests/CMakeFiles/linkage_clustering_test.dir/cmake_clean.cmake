file(REMOVE_RECURSE
  "CMakeFiles/linkage_clustering_test.dir/linkage_clustering_test.cc.o"
  "CMakeFiles/linkage_clustering_test.dir/linkage_clustering_test.cc.o.d"
  "linkage_clustering_test"
  "linkage_clustering_test.pdb"
  "linkage_clustering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linkage_clustering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
