file(REMOVE_RECURSE
  "CMakeFiles/schema_probabilistic_test.dir/schema_probabilistic_test.cc.o"
  "CMakeFiles/schema_probabilistic_test.dir/schema_probabilistic_test.cc.o.d"
  "schema_probabilistic_test"
  "schema_probabilistic_test.pdb"
  "schema_probabilistic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_probabilistic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
