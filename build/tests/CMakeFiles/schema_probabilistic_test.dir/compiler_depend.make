# Empty compiler generated dependencies file for schema_probabilistic_test.
# This may be replaced when dependencies are built.
