file(REMOVE_RECURSE
  "CMakeFiles/select_source_selection_test.dir/select_source_selection_test.cc.o"
  "CMakeFiles/select_source_selection_test.dir/select_source_selection_test.cc.o.d"
  "select_source_selection_test"
  "select_source_selection_test.pdb"
  "select_source_selection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/select_source_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
