file(REMOVE_RECURSE
  "CMakeFiles/linkage_matcher_test.dir/linkage_matcher_test.cc.o"
  "CMakeFiles/linkage_matcher_test.dir/linkage_matcher_test.cc.o.d"
  "linkage_matcher_test"
  "linkage_matcher_test.pdb"
  "linkage_matcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linkage_matcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
