# Empty compiler generated dependencies file for linkage_matcher_test.
# This may be replaced when dependencies are built.
