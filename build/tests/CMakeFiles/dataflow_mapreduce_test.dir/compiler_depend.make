# Empty compiler generated dependencies file for dataflow_mapreduce_test.
# This may be replaced when dependencies are built.
