file(REMOVE_RECURSE
  "CMakeFiles/dataflow_mapreduce_test.dir/dataflow_mapreduce_test.cc.o"
  "CMakeFiles/dataflow_mapreduce_test.dir/dataflow_mapreduce_test.cc.o.d"
  "dataflow_mapreduce_test"
  "dataflow_mapreduce_test.pdb"
  "dataflow_mapreduce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataflow_mapreduce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
