file(REMOVE_RECURSE
  "CMakeFiles/core_incremental_integrator_test.dir/core_incremental_integrator_test.cc.o"
  "CMakeFiles/core_incremental_integrator_test.dir/core_incremental_integrator_test.cc.o.d"
  "core_incremental_integrator_test"
  "core_incremental_integrator_test.pdb"
  "core_incremental_integrator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_incremental_integrator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
