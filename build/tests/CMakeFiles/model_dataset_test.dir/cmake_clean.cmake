file(REMOVE_RECURSE
  "CMakeFiles/model_dataset_test.dir/model_dataset_test.cc.o"
  "CMakeFiles/model_dataset_test.dir/model_dataset_test.cc.o.d"
  "model_dataset_test"
  "model_dataset_test.pdb"
  "model_dataset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
