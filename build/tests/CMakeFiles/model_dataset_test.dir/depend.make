# Empty dependencies file for model_dataset_test.
# This may be replaced when dependencies are built.
