file(REMOVE_RECURSE
  "CMakeFiles/bdi_extract.dir/extractor.cc.o"
  "CMakeFiles/bdi_extract.dir/extractor.cc.o.d"
  "CMakeFiles/bdi_extract.dir/renderer.cc.o"
  "CMakeFiles/bdi_extract.dir/renderer.cc.o.d"
  "CMakeFiles/bdi_extract.dir/wrapper.cc.o"
  "CMakeFiles/bdi_extract.dir/wrapper.cc.o.d"
  "libbdi_extract.a"
  "libbdi_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdi_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
