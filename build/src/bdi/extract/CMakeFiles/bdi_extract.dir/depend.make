# Empty dependencies file for bdi_extract.
# This may be replaced when dependencies are built.
