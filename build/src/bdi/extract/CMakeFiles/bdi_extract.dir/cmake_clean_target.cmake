file(REMOVE_RECURSE
  "libbdi_extract.a"
)
