
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bdi/extract/extractor.cc" "src/bdi/extract/CMakeFiles/bdi_extract.dir/extractor.cc.o" "gcc" "src/bdi/extract/CMakeFiles/bdi_extract.dir/extractor.cc.o.d"
  "/root/repo/src/bdi/extract/renderer.cc" "src/bdi/extract/CMakeFiles/bdi_extract.dir/renderer.cc.o" "gcc" "src/bdi/extract/CMakeFiles/bdi_extract.dir/renderer.cc.o.d"
  "/root/repo/src/bdi/extract/wrapper.cc" "src/bdi/extract/CMakeFiles/bdi_extract.dir/wrapper.cc.o" "gcc" "src/bdi/extract/CMakeFiles/bdi_extract.dir/wrapper.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bdi/common/CMakeFiles/bdi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bdi/model/CMakeFiles/bdi_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
