file(REMOVE_RECURSE
  "libbdi_common.a"
)
