# Empty compiler generated dependencies file for bdi_common.
# This may be replaced when dependencies are built.
