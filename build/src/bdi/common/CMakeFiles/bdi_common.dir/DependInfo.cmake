
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bdi/common/csv.cc" "src/bdi/common/CMakeFiles/bdi_common.dir/csv.cc.o" "gcc" "src/bdi/common/CMakeFiles/bdi_common.dir/csv.cc.o.d"
  "/root/repo/src/bdi/common/flags.cc" "src/bdi/common/CMakeFiles/bdi_common.dir/flags.cc.o" "gcc" "src/bdi/common/CMakeFiles/bdi_common.dir/flags.cc.o.d"
  "/root/repo/src/bdi/common/logging.cc" "src/bdi/common/CMakeFiles/bdi_common.dir/logging.cc.o" "gcc" "src/bdi/common/CMakeFiles/bdi_common.dir/logging.cc.o.d"
  "/root/repo/src/bdi/common/random.cc" "src/bdi/common/CMakeFiles/bdi_common.dir/random.cc.o" "gcc" "src/bdi/common/CMakeFiles/bdi_common.dir/random.cc.o.d"
  "/root/repo/src/bdi/common/status.cc" "src/bdi/common/CMakeFiles/bdi_common.dir/status.cc.o" "gcc" "src/bdi/common/CMakeFiles/bdi_common.dir/status.cc.o.d"
  "/root/repo/src/bdi/common/string_util.cc" "src/bdi/common/CMakeFiles/bdi_common.dir/string_util.cc.o" "gcc" "src/bdi/common/CMakeFiles/bdi_common.dir/string_util.cc.o.d"
  "/root/repo/src/bdi/common/table.cc" "src/bdi/common/CMakeFiles/bdi_common.dir/table.cc.o" "gcc" "src/bdi/common/CMakeFiles/bdi_common.dir/table.cc.o.d"
  "/root/repo/src/bdi/common/thread_pool.cc" "src/bdi/common/CMakeFiles/bdi_common.dir/thread_pool.cc.o" "gcc" "src/bdi/common/CMakeFiles/bdi_common.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
