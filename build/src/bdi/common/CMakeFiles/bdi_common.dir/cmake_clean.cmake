file(REMOVE_RECURSE
  "CMakeFiles/bdi_common.dir/csv.cc.o"
  "CMakeFiles/bdi_common.dir/csv.cc.o.d"
  "CMakeFiles/bdi_common.dir/flags.cc.o"
  "CMakeFiles/bdi_common.dir/flags.cc.o.d"
  "CMakeFiles/bdi_common.dir/logging.cc.o"
  "CMakeFiles/bdi_common.dir/logging.cc.o.d"
  "CMakeFiles/bdi_common.dir/random.cc.o"
  "CMakeFiles/bdi_common.dir/random.cc.o.d"
  "CMakeFiles/bdi_common.dir/status.cc.o"
  "CMakeFiles/bdi_common.dir/status.cc.o.d"
  "CMakeFiles/bdi_common.dir/string_util.cc.o"
  "CMakeFiles/bdi_common.dir/string_util.cc.o.d"
  "CMakeFiles/bdi_common.dir/table.cc.o"
  "CMakeFiles/bdi_common.dir/table.cc.o.d"
  "CMakeFiles/bdi_common.dir/thread_pool.cc.o"
  "CMakeFiles/bdi_common.dir/thread_pool.cc.o.d"
  "libbdi_common.a"
  "libbdi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
