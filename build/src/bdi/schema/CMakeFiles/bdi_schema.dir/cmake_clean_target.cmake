file(REMOVE_RECURSE
  "libbdi_schema.a"
)
