
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bdi/schema/attribute_stats.cc" "src/bdi/schema/CMakeFiles/bdi_schema.dir/attribute_stats.cc.o" "gcc" "src/bdi/schema/CMakeFiles/bdi_schema.dir/attribute_stats.cc.o.d"
  "/root/repo/src/bdi/schema/linkage_refinement.cc" "src/bdi/schema/CMakeFiles/bdi_schema.dir/linkage_refinement.cc.o" "gcc" "src/bdi/schema/CMakeFiles/bdi_schema.dir/linkage_refinement.cc.o.d"
  "/root/repo/src/bdi/schema/matchers.cc" "src/bdi/schema/CMakeFiles/bdi_schema.dir/matchers.cc.o" "gcc" "src/bdi/schema/CMakeFiles/bdi_schema.dir/matchers.cc.o.d"
  "/root/repo/src/bdi/schema/mediated_schema.cc" "src/bdi/schema/CMakeFiles/bdi_schema.dir/mediated_schema.cc.o" "gcc" "src/bdi/schema/CMakeFiles/bdi_schema.dir/mediated_schema.cc.o.d"
  "/root/repo/src/bdi/schema/probabilistic_schema.cc" "src/bdi/schema/CMakeFiles/bdi_schema.dir/probabilistic_schema.cc.o" "gcc" "src/bdi/schema/CMakeFiles/bdi_schema.dir/probabilistic_schema.cc.o.d"
  "/root/repo/src/bdi/schema/units.cc" "src/bdi/schema/CMakeFiles/bdi_schema.dir/units.cc.o" "gcc" "src/bdi/schema/CMakeFiles/bdi_schema.dir/units.cc.o.d"
  "/root/repo/src/bdi/schema/value_normalizer.cc" "src/bdi/schema/CMakeFiles/bdi_schema.dir/value_normalizer.cc.o" "gcc" "src/bdi/schema/CMakeFiles/bdi_schema.dir/value_normalizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bdi/common/CMakeFiles/bdi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bdi/model/CMakeFiles/bdi_model.dir/DependInfo.cmake"
  "/root/repo/build/src/bdi/text/CMakeFiles/bdi_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
