file(REMOVE_RECURSE
  "CMakeFiles/bdi_schema.dir/attribute_stats.cc.o"
  "CMakeFiles/bdi_schema.dir/attribute_stats.cc.o.d"
  "CMakeFiles/bdi_schema.dir/linkage_refinement.cc.o"
  "CMakeFiles/bdi_schema.dir/linkage_refinement.cc.o.d"
  "CMakeFiles/bdi_schema.dir/matchers.cc.o"
  "CMakeFiles/bdi_schema.dir/matchers.cc.o.d"
  "CMakeFiles/bdi_schema.dir/mediated_schema.cc.o"
  "CMakeFiles/bdi_schema.dir/mediated_schema.cc.o.d"
  "CMakeFiles/bdi_schema.dir/probabilistic_schema.cc.o"
  "CMakeFiles/bdi_schema.dir/probabilistic_schema.cc.o.d"
  "CMakeFiles/bdi_schema.dir/units.cc.o"
  "CMakeFiles/bdi_schema.dir/units.cc.o.d"
  "CMakeFiles/bdi_schema.dir/value_normalizer.cc.o"
  "CMakeFiles/bdi_schema.dir/value_normalizer.cc.o.d"
  "libbdi_schema.a"
  "libbdi_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdi_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
