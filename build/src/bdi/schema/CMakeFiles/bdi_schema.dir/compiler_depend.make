# Empty compiler generated dependencies file for bdi_schema.
# This may be replaced when dependencies are built.
