file(REMOVE_RECURSE
  "libbdi_discovery.a"
)
