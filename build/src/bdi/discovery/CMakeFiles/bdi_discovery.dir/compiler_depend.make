# Empty compiler generated dependencies file for bdi_discovery.
# This may be replaced when dependencies are built.
