file(REMOVE_RECURSE
  "CMakeFiles/bdi_discovery.dir/crawler.cc.o"
  "CMakeFiles/bdi_discovery.dir/crawler.cc.o.d"
  "CMakeFiles/bdi_discovery.dir/search_index.cc.o"
  "CMakeFiles/bdi_discovery.dir/search_index.cc.o.d"
  "libbdi_discovery.a"
  "libbdi_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdi_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
