
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bdi/discovery/crawler.cc" "src/bdi/discovery/CMakeFiles/bdi_discovery.dir/crawler.cc.o" "gcc" "src/bdi/discovery/CMakeFiles/bdi_discovery.dir/crawler.cc.o.d"
  "/root/repo/src/bdi/discovery/search_index.cc" "src/bdi/discovery/CMakeFiles/bdi_discovery.dir/search_index.cc.o" "gcc" "src/bdi/discovery/CMakeFiles/bdi_discovery.dir/search_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bdi/common/CMakeFiles/bdi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bdi/model/CMakeFiles/bdi_model.dir/DependInfo.cmake"
  "/root/repo/build/src/bdi/text/CMakeFiles/bdi_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
