file(REMOVE_RECURSE
  "CMakeFiles/bdi_model.dir/dataset.cc.o"
  "CMakeFiles/bdi_model.dir/dataset.cc.o.d"
  "CMakeFiles/bdi_model.dir/dataset_io.cc.o"
  "CMakeFiles/bdi_model.dir/dataset_io.cc.o.d"
  "CMakeFiles/bdi_model.dir/ground_truth.cc.o"
  "CMakeFiles/bdi_model.dir/ground_truth.cc.o.d"
  "libbdi_model.a"
  "libbdi_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdi_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
