
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bdi/model/dataset.cc" "src/bdi/model/CMakeFiles/bdi_model.dir/dataset.cc.o" "gcc" "src/bdi/model/CMakeFiles/bdi_model.dir/dataset.cc.o.d"
  "/root/repo/src/bdi/model/dataset_io.cc" "src/bdi/model/CMakeFiles/bdi_model.dir/dataset_io.cc.o" "gcc" "src/bdi/model/CMakeFiles/bdi_model.dir/dataset_io.cc.o.d"
  "/root/repo/src/bdi/model/ground_truth.cc" "src/bdi/model/CMakeFiles/bdi_model.dir/ground_truth.cc.o" "gcc" "src/bdi/model/CMakeFiles/bdi_model.dir/ground_truth.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bdi/common/CMakeFiles/bdi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
