file(REMOVE_RECURSE
  "libbdi_model.a"
)
