# Empty dependencies file for bdi_model.
# This may be replaced when dependencies are built.
