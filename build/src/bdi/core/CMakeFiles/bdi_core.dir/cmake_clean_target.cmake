file(REMOVE_RECURSE
  "libbdi_core.a"
)
