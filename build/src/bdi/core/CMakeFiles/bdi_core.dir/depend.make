# Empty dependencies file for bdi_core.
# This may be replaced when dependencies are built.
