file(REMOVE_RECURSE
  "CMakeFiles/bdi_core.dir/diff.cc.o"
  "CMakeFiles/bdi_core.dir/diff.cc.o.d"
  "CMakeFiles/bdi_core.dir/incremental_integrator.cc.o"
  "CMakeFiles/bdi_core.dir/incremental_integrator.cc.o.d"
  "CMakeFiles/bdi_core.dir/integrator.cc.o"
  "CMakeFiles/bdi_core.dir/integrator.cc.o.d"
  "CMakeFiles/bdi_core.dir/query.cc.o"
  "CMakeFiles/bdi_core.dir/query.cc.o.d"
  "CMakeFiles/bdi_core.dir/report_io.cc.o"
  "CMakeFiles/bdi_core.dir/report_io.cc.o.d"
  "libbdi_core.a"
  "libbdi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
