file(REMOVE_RECURSE
  "libbdi_select.a"
)
