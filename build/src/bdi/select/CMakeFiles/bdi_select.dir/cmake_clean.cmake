file(REMOVE_RECURSE
  "CMakeFiles/bdi_select.dir/source_selection.cc.o"
  "CMakeFiles/bdi_select.dir/source_selection.cc.o.d"
  "libbdi_select.a"
  "libbdi_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdi_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
