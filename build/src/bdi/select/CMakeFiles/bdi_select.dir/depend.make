# Empty dependencies file for bdi_select.
# This may be replaced when dependencies are built.
