file(REMOVE_RECURSE
  "CMakeFiles/bdi_text.dir/similarity.cc.o"
  "CMakeFiles/bdi_text.dir/similarity.cc.o.d"
  "CMakeFiles/bdi_text.dir/tokenizer.cc.o"
  "CMakeFiles/bdi_text.dir/tokenizer.cc.o.d"
  "libbdi_text.a"
  "libbdi_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdi_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
