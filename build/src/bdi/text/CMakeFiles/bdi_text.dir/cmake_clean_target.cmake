file(REMOVE_RECURSE
  "libbdi_text.a"
)
