# Empty dependencies file for bdi_text.
# This may be replaced when dependencies are built.
