file(REMOVE_RECURSE
  "libbdi_fusion.a"
)
