# Empty dependencies file for bdi_fusion.
# This may be replaced when dependencies are built.
