file(REMOVE_RECURSE
  "CMakeFiles/bdi_fusion.dir/accu.cc.o"
  "CMakeFiles/bdi_fusion.dir/accu.cc.o.d"
  "CMakeFiles/bdi_fusion.dir/accu_copy.cc.o"
  "CMakeFiles/bdi_fusion.dir/accu_copy.cc.o.d"
  "CMakeFiles/bdi_fusion.dir/baselines.cc.o"
  "CMakeFiles/bdi_fusion.dir/baselines.cc.o.d"
  "CMakeFiles/bdi_fusion.dir/bias.cc.o"
  "CMakeFiles/bdi_fusion.dir/bias.cc.o.d"
  "CMakeFiles/bdi_fusion.dir/claims.cc.o"
  "CMakeFiles/bdi_fusion.dir/claims.cc.o.d"
  "CMakeFiles/bdi_fusion.dir/copy_detection.cc.o"
  "CMakeFiles/bdi_fusion.dir/copy_detection.cc.o.d"
  "CMakeFiles/bdi_fusion.dir/evaluation.cc.o"
  "CMakeFiles/bdi_fusion.dir/evaluation.cc.o.d"
  "CMakeFiles/bdi_fusion.dir/fusion.cc.o"
  "CMakeFiles/bdi_fusion.dir/fusion.cc.o.d"
  "CMakeFiles/bdi_fusion.dir/online.cc.o"
  "CMakeFiles/bdi_fusion.dir/online.cc.o.d"
  "CMakeFiles/bdi_fusion.dir/truthfinder.cc.o"
  "CMakeFiles/bdi_fusion.dir/truthfinder.cc.o.d"
  "libbdi_fusion.a"
  "libbdi_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdi_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
