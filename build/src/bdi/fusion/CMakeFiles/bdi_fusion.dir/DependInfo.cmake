
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bdi/fusion/accu.cc" "src/bdi/fusion/CMakeFiles/bdi_fusion.dir/accu.cc.o" "gcc" "src/bdi/fusion/CMakeFiles/bdi_fusion.dir/accu.cc.o.d"
  "/root/repo/src/bdi/fusion/accu_copy.cc" "src/bdi/fusion/CMakeFiles/bdi_fusion.dir/accu_copy.cc.o" "gcc" "src/bdi/fusion/CMakeFiles/bdi_fusion.dir/accu_copy.cc.o.d"
  "/root/repo/src/bdi/fusion/baselines.cc" "src/bdi/fusion/CMakeFiles/bdi_fusion.dir/baselines.cc.o" "gcc" "src/bdi/fusion/CMakeFiles/bdi_fusion.dir/baselines.cc.o.d"
  "/root/repo/src/bdi/fusion/bias.cc" "src/bdi/fusion/CMakeFiles/bdi_fusion.dir/bias.cc.o" "gcc" "src/bdi/fusion/CMakeFiles/bdi_fusion.dir/bias.cc.o.d"
  "/root/repo/src/bdi/fusion/claims.cc" "src/bdi/fusion/CMakeFiles/bdi_fusion.dir/claims.cc.o" "gcc" "src/bdi/fusion/CMakeFiles/bdi_fusion.dir/claims.cc.o.d"
  "/root/repo/src/bdi/fusion/copy_detection.cc" "src/bdi/fusion/CMakeFiles/bdi_fusion.dir/copy_detection.cc.o" "gcc" "src/bdi/fusion/CMakeFiles/bdi_fusion.dir/copy_detection.cc.o.d"
  "/root/repo/src/bdi/fusion/evaluation.cc" "src/bdi/fusion/CMakeFiles/bdi_fusion.dir/evaluation.cc.o" "gcc" "src/bdi/fusion/CMakeFiles/bdi_fusion.dir/evaluation.cc.o.d"
  "/root/repo/src/bdi/fusion/fusion.cc" "src/bdi/fusion/CMakeFiles/bdi_fusion.dir/fusion.cc.o" "gcc" "src/bdi/fusion/CMakeFiles/bdi_fusion.dir/fusion.cc.o.d"
  "/root/repo/src/bdi/fusion/online.cc" "src/bdi/fusion/CMakeFiles/bdi_fusion.dir/online.cc.o" "gcc" "src/bdi/fusion/CMakeFiles/bdi_fusion.dir/online.cc.o.d"
  "/root/repo/src/bdi/fusion/truthfinder.cc" "src/bdi/fusion/CMakeFiles/bdi_fusion.dir/truthfinder.cc.o" "gcc" "src/bdi/fusion/CMakeFiles/bdi_fusion.dir/truthfinder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bdi/common/CMakeFiles/bdi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bdi/model/CMakeFiles/bdi_model.dir/DependInfo.cmake"
  "/root/repo/build/src/bdi/text/CMakeFiles/bdi_text.dir/DependInfo.cmake"
  "/root/repo/build/src/bdi/schema/CMakeFiles/bdi_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/bdi/linkage/CMakeFiles/bdi_linkage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
