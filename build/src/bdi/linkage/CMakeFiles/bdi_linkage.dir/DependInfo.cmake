
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bdi/linkage/active.cc" "src/bdi/linkage/CMakeFiles/bdi_linkage.dir/active.cc.o" "gcc" "src/bdi/linkage/CMakeFiles/bdi_linkage.dir/active.cc.o.d"
  "/root/repo/src/bdi/linkage/attr_roles.cc" "src/bdi/linkage/CMakeFiles/bdi_linkage.dir/attr_roles.cc.o" "gcc" "src/bdi/linkage/CMakeFiles/bdi_linkage.dir/attr_roles.cc.o.d"
  "/root/repo/src/bdi/linkage/blocking.cc" "src/bdi/linkage/CMakeFiles/bdi_linkage.dir/blocking.cc.o" "gcc" "src/bdi/linkage/CMakeFiles/bdi_linkage.dir/blocking.cc.o.d"
  "/root/repo/src/bdi/linkage/clustering.cc" "src/bdi/linkage/CMakeFiles/bdi_linkage.dir/clustering.cc.o" "gcc" "src/bdi/linkage/CMakeFiles/bdi_linkage.dir/clustering.cc.o.d"
  "/root/repo/src/bdi/linkage/incremental.cc" "src/bdi/linkage/CMakeFiles/bdi_linkage.dir/incremental.cc.o" "gcc" "src/bdi/linkage/CMakeFiles/bdi_linkage.dir/incremental.cc.o.d"
  "/root/repo/src/bdi/linkage/linkage.cc" "src/bdi/linkage/CMakeFiles/bdi_linkage.dir/linkage.cc.o" "gcc" "src/bdi/linkage/CMakeFiles/bdi_linkage.dir/linkage.cc.o.d"
  "/root/repo/src/bdi/linkage/matcher.cc" "src/bdi/linkage/CMakeFiles/bdi_linkage.dir/matcher.cc.o" "gcc" "src/bdi/linkage/CMakeFiles/bdi_linkage.dir/matcher.cc.o.d"
  "/root/repo/src/bdi/linkage/meta_blocking.cc" "src/bdi/linkage/CMakeFiles/bdi_linkage.dir/meta_blocking.cc.o" "gcc" "src/bdi/linkage/CMakeFiles/bdi_linkage.dir/meta_blocking.cc.o.d"
  "/root/repo/src/bdi/linkage/temporal.cc" "src/bdi/linkage/CMakeFiles/bdi_linkage.dir/temporal.cc.o" "gcc" "src/bdi/linkage/CMakeFiles/bdi_linkage.dir/temporal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bdi/common/CMakeFiles/bdi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bdi/model/CMakeFiles/bdi_model.dir/DependInfo.cmake"
  "/root/repo/build/src/bdi/text/CMakeFiles/bdi_text.dir/DependInfo.cmake"
  "/root/repo/build/src/bdi/schema/CMakeFiles/bdi_schema.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
