file(REMOVE_RECURSE
  "libbdi_linkage.a"
)
