file(REMOVE_RECURSE
  "CMakeFiles/bdi_linkage.dir/active.cc.o"
  "CMakeFiles/bdi_linkage.dir/active.cc.o.d"
  "CMakeFiles/bdi_linkage.dir/attr_roles.cc.o"
  "CMakeFiles/bdi_linkage.dir/attr_roles.cc.o.d"
  "CMakeFiles/bdi_linkage.dir/blocking.cc.o"
  "CMakeFiles/bdi_linkage.dir/blocking.cc.o.d"
  "CMakeFiles/bdi_linkage.dir/clustering.cc.o"
  "CMakeFiles/bdi_linkage.dir/clustering.cc.o.d"
  "CMakeFiles/bdi_linkage.dir/incremental.cc.o"
  "CMakeFiles/bdi_linkage.dir/incremental.cc.o.d"
  "CMakeFiles/bdi_linkage.dir/linkage.cc.o"
  "CMakeFiles/bdi_linkage.dir/linkage.cc.o.d"
  "CMakeFiles/bdi_linkage.dir/matcher.cc.o"
  "CMakeFiles/bdi_linkage.dir/matcher.cc.o.d"
  "CMakeFiles/bdi_linkage.dir/meta_blocking.cc.o"
  "CMakeFiles/bdi_linkage.dir/meta_blocking.cc.o.d"
  "CMakeFiles/bdi_linkage.dir/temporal.cc.o"
  "CMakeFiles/bdi_linkage.dir/temporal.cc.o.d"
  "libbdi_linkage.a"
  "libbdi_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdi_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
