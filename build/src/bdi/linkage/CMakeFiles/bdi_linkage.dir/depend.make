# Empty dependencies file for bdi_linkage.
# This may be replaced when dependencies are built.
