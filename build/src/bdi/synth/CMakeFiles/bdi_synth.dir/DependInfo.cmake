
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bdi/synth/default_domains.cc" "src/bdi/synth/CMakeFiles/bdi_synth.dir/default_domains.cc.o" "gcc" "src/bdi/synth/CMakeFiles/bdi_synth.dir/default_domains.cc.o.d"
  "/root/repo/src/bdi/synth/world.cc" "src/bdi/synth/CMakeFiles/bdi_synth.dir/world.cc.o" "gcc" "src/bdi/synth/CMakeFiles/bdi_synth.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bdi/common/CMakeFiles/bdi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bdi/model/CMakeFiles/bdi_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
