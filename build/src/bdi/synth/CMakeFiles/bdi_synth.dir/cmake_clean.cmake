file(REMOVE_RECURSE
  "CMakeFiles/bdi_synth.dir/default_domains.cc.o"
  "CMakeFiles/bdi_synth.dir/default_domains.cc.o.d"
  "CMakeFiles/bdi_synth.dir/world.cc.o"
  "CMakeFiles/bdi_synth.dir/world.cc.o.d"
  "libbdi_synth.a"
  "libbdi_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdi_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
