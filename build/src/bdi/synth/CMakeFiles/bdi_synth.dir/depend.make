# Empty dependencies file for bdi_synth.
# This may be replaced when dependencies are built.
