file(REMOVE_RECURSE
  "libbdi_synth.a"
)
