// Observability must never change what the pipeline computes: the same
// corpus integrated with metrics off and with metrics on has to produce
// bitwise-identical linkage and fusion output, and the enabled run has to
// carry a populated snapshot in the report.
#include <gtest/gtest.h>

#include <string>

#include "bdi/common/metrics.h"
#include "bdi/core/integrator.h"
#include "bdi/synth/world.h"

namespace bdi::core {
namespace {

synth::SyntheticWorld MakeWorld() {
  synth::WorldConfig config;
  config.seed = 211;
  config.category = "camera";
  config.num_entities = 120;
  config.num_sources = 10;
  config.num_copiers = 2;
  config.source_accuracy_min = 0.7;
  config.source_accuracy_max = 0.95;
  return synth::GenerateWorld(config);
}

TEST(IntegratorMetricsTest, MetricsOnAndOffProduceIdenticalOutput) {
  synth::SyntheticWorld world = MakeWorld();

  metrics::SetEnabled(false);
  IntegrationReport off = Integrator().Run(world.dataset);
  EXPECT_TRUE(off.metrics_json.empty());

  metrics::Registry::Get().Reset();
  metrics::SetEnabled(true);
  IntegrationReport on = Integrator().Run(world.dataset);
  metrics::SetEnabled(false);
  metrics::Registry::Get().Reset();

  // Bitwise neutrality: every decision the pipeline made is identical.
  EXPECT_EQ(off.linkage.clusters.label_of_record,
            on.linkage.clusters.label_of_record);
  EXPECT_EQ(off.linkage.num_matches, on.linkage.num_matches);
  EXPECT_EQ(off.schema.cluster_names, on.schema.cluster_names);
  EXPECT_EQ(off.fusion.chosen, on.fusion.chosen);
  EXPECT_EQ(off.fusion.source_accuracy, on.fusion.source_accuracy);
  EXPECT_EQ(off.fusion.iterations, on.fusion.iterations);

  // The enabled run carries the snapshot, with the headline content the
  // operations surface promises (docs/OBSERVABILITY.md).
  ASSERT_FALSE(on.metrics_json.empty());
  for (const char* expected :
       {"\"schema_version\": 1", "pipeline/linkage/blocking",
        "pipeline/fusion", "pipeline/schema",
        "bdi.linkage.blocking.pairs.generated",
        "bdi.linkage.candidate_pairs", "bdi.fusion.em.iterations",
        "bdi.fusion.values.interned"}) {
    EXPECT_NE(on.metrics_json.find(expected), std::string::npos)
        << "snapshot missing " << expected;
  }
}

}  // namespace
}  // namespace bdi::core
