#include "bdi/core/incremental_integrator.h"

#include <gtest/gtest.h>

#include "bdi/fusion/evaluation.h"
#include "bdi/synth/world.h"

namespace bdi::core {
namespace {

struct Stream {
  synth::SyntheticWorld full;
  Dataset live;
  std::vector<EntityId> truth;
  size_t cursor = 0;

  explicit Stream(uint64_t seed = 1101) {
    synth::WorldConfig config;
    config.seed = seed;
    config.num_entities = 150;
    config.num_sources = 10;
    full = synth::GenerateWorld(config);
    for (const SourceInfo& source : full.dataset.sources()) {
      live.AddSource(source.name);
    }
  }

  void Feed(size_t count) {
    for (size_t i = 0; i < count && cursor < full.dataset.num_records();
         ++i, ++cursor) {
      const Record& record =
          full.dataset.record(static_cast<RecordIdx>(cursor));
      std::vector<std::pair<std::string, std::string>> fields;
      for (const Field& field : record.fields) {
        fields.emplace_back(full.dataset.attr_name(field.attr),
                            field.value);
      }
      live.AddRecord(record.source, fields);
      truth.push_back(full.truth.entity_of_record[cursor]);
    }
  }
};

TEST(IncrementalIntegratorTest, BootstrapMatchesBatchQuality) {
  Stream stream;
  stream.Feed(stream.full.dataset.num_records());
  IncrementalIntegrator incremental(&stream.live);
  incremental.Refresh();
  EXPECT_TRUE(incremental.schema_refreshed());

  linkage::LinkageQuality quality = linkage::EvaluateClusters(
      incremental.report().linkage.clusters.label_of_record, stream.truth);
  EXPECT_GE(quality.f1, 0.85);
  EXPECT_EQ(incremental.num_integrated_records(),
            stream.live.num_records());
}

TEST(IncrementalIntegratorTest, StaysFreshAcrossBatches) {
  Stream stream;
  size_t total = stream.full.dataset.num_records();
  stream.Feed(total / 2);
  IncrementalIntegrator incremental(&stream.live);
  incremental.Refresh();

  for (int batch = 0; batch < 4; ++batch) {
    stream.Feed(total / 8);
    size_t comparisons = incremental.Refresh();
    EXPECT_GT(comparisons, 0u);
    EXPECT_EQ(incremental.num_integrated_records(),
              stream.live.num_records());
    // The view covers every record and fusion answers exist.
    EXPECT_EQ(
        incremental.report().linkage.clusters.label_of_record.size(),
        stream.live.num_records());
    EXPECT_EQ(incremental.report().fusion.chosen.size(),
              incremental.report().claims.items().size());
  }
  linkage::LinkageQuality quality = linkage::EvaluateClusters(
      incremental.report().linkage.clusters.label_of_record, stream.truth);
  EXPECT_GE(quality.f1, 0.8);

  // Fusion quality close to a from-scratch batch run on the same corpus.
  // The replayed corpus re-interns attribute ids, so translate the ground
  // truth before id-keyed evaluation.
  GroundTruth live_truth =
      RemapGroundTruth(stream.full.truth, stream.full.dataset, stream.live);
  fusion::PipelineMappings incremental_mappings =
      fusion::MapPipelineToTruth(
          incremental.report().linkage.clusters,
          incremental.report().schema, live_truth);
  double incremental_precision =
      fusion::EvaluateFusionMapped(incremental.report().claims,
                                   incremental.report().fusion,
                                   incremental_mappings, live_truth)
          .precision;
  IntegrationReport batch = Integrator().Run(stream.live);
  fusion::PipelineMappings batch_mappings = fusion::MapPipelineToTruth(
      batch.linkage.clusters, batch.schema, live_truth);
  double batch_precision =
      fusion::EvaluateFusionMapped(batch.claims, batch.fusion,
                                   batch_mappings, live_truth)
          .precision;
  EXPECT_GE(batch_precision, 0.7);  // guards the remapping itself
  EXPECT_GE(incremental_precision, batch_precision - 0.05);
}

TEST(IncrementalIntegratorTest, SchemaRefreshOnlyOnNewAttributes) {
  Stream stream;
  stream.Feed(stream.full.dataset.num_records() / 2);
  IncrementalIntegrator incremental(&stream.live);
  incremental.Refresh();
  EXPECT_TRUE(incremental.schema_refreshed());

  // Append records from already-known sources/attrs only: find a source
  // already present and clone one of its records.
  const Record& known = stream.live.record(0);
  std::vector<std::pair<std::string, std::string>> fields;
  for (const Field& field : known.fields) {
    fields.emplace_back(stream.live.attr_name(field.attr), field.value);
  }
  stream.live.AddRecord(known.source, fields);
  stream.truth.push_back(stream.truth[0]);
  incremental.Refresh();
  EXPECT_FALSE(incremental.schema_refreshed());

  // A record with a brand-new attribute triggers re-alignment.
  stream.live.AddRecord(known.source,
                        {{"entirely new attr", "entirely new value"}});
  stream.truth.push_back(kInvalidEntity);
  incremental.Refresh();
  EXPECT_TRUE(incremental.schema_refreshed());
}

}  // namespace
}  // namespace bdi::core
