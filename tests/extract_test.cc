#include <gtest/gtest.h>

#include "bdi/extract/extractor.h"
#include "bdi/extract/renderer.h"
#include "bdi/extract/wrapper.h"
#include "bdi/synth/world.h"

namespace bdi::extract {
namespace {

TEST(ParseTest, TablePairs) {
  std::string html =
      "<h1>Widget</h1><table>\n"
      "<tr><th>Color</th><td>red</td></tr>\n"
      "<tr><th>Weight</th><td>12.5 g</td></tr>\n</table>";
  auto pairs = ParseLabelValuePairs(html, PageLayout::kTable);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (std::pair<std::string, std::string>{"color", "red"}));
  EXPECT_EQ(pairs[1].second, "12.5 g");
  EXPECT_EQ(ParseTitle(html), "Widget");
}

TEST(ParseTest, DefinitionListPairs) {
  std::string html = "<dl><dt>Brand</dt><dd>Zorix</dd></dl>";
  auto pairs = ParseLabelValuePairs(html, PageLayout::kDefinitionList);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, "brand");
}

TEST(ParseTest, DivPairs) {
  std::string html =
      "<div class=\"k\">Size</div><div class=\"v\">3 in</div>";
  auto pairs = ParseLabelValuePairs(html, PageLayout::kDivPairs);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].second, "3 in");
}

TEST(ParseTest, WrongLayoutFindsNothing) {
  std::string html = "<dl><dt>Brand</dt><dd>Zorix</dd></dl>";
  EXPECT_TRUE(ParseLabelValuePairs(html, PageLayout::kTable).empty());
  EXPECT_TRUE(ParseLabelValuePairs(html, PageLayout::kFreeText).empty());
}

TEST(ParseTest, TruncatedHtmlIsSafe) {
  EXPECT_TRUE(
      ParseLabelValuePairs("<tr><th>orphan", PageLayout::kTable).empty());
  EXPECT_EQ(ParseTitle("<h1>unclosed"), "");
  EXPECT_TRUE(ParseLabelValuePairs("", PageLayout::kTable).empty());
}

std::vector<WebPage> MakeSite(int pages, PageLayout layout,
                              bool with_boilerplate = true) {
  Dataset dataset;
  SourceId s = dataset.AddSource("site.example.com");
  for (int i = 0; i < pages; ++i) {
    dataset.AddRecord(
        s, {{"name", "Widget W" + std::to_string(i)},
            {"color", i % 2 == 0 ? "red" : "blue"},
            {"weight", std::to_string(100 + i) + " g"}});
  }
  RendererConfig config;
  config.weak_template_prob = layout == PageLayout::kFreeText ? 1.0 : 0.0;
  config.add_boilerplate_row = with_boilerplate;
  PageRenderer renderer(config);
  std::vector<SourcePages> sites;
  // Force the wanted structured layout by re-rendering until it matches
  // (the renderer picks uniformly; fix the seed search quickly).
  for (uint64_t seed = 0; seed < 16; ++seed) {
    config.seed = seed;
    PageRenderer attempt(config);
    sites = attempt.RenderAll(dataset);
    if (attempt.source_layouts()[0] == layout) break;
  }
  return sites[0].pages;
}

TEST(WrapperInductionTest, DetectsLayoutAndLabels) {
  for (PageLayout layout :
       {PageLayout::kTable, PageLayout::kDefinitionList,
        PageLayout::kDivPairs}) {
    std::vector<WebPage> pages = MakeSite(10, layout);
    Wrapper wrapper = InduceWrapper(pages);
    EXPECT_EQ(wrapper.layout, layout) << PageLayoutName(layout);
    EXPECT_TRUE(wrapper.usable());
    // color + weight kept (name is the title, not a row).
    EXPECT_EQ(wrapper.labels.size(), 2u) << PageLayoutName(layout);
  }
}

TEST(WrapperInductionTest, DropsConstantBoilerplate) {
  std::vector<WebPage> pages = MakeSite(10, PageLayout::kTable);
  Wrapper wrapper = InduceWrapper(pages);
  for (const std::string& label : wrapper.labels) {
    EXPECT_NE(label, "shipping");
    EXPECT_NE(label, "availability");
  }
  EXPECT_GE(wrapper.dropped_labels.size(), 2u);
}

TEST(WrapperInductionTest, FewPagesKeepEverything) {
  // With 2 pages the boilerplate check is disabled (not enough evidence).
  std::vector<WebPage> pages = MakeSite(2, PageLayout::kTable);
  Wrapper wrapper = InduceWrapper(pages);
  EXPECT_TRUE(wrapper.usable());
  bool has_shipping = false;
  for (const std::string& label : wrapper.labels) {
    if (label == "shipping") has_shipping = true;
  }
  EXPECT_TRUE(has_shipping);
}

TEST(WrapperInductionTest, WeakTemplateUnusable) {
  std::vector<WebPage> pages = MakeSite(10, PageLayout::kFreeText);
  Wrapper wrapper = InduceWrapper(pages);
  EXPECT_FALSE(wrapper.usable());
  EXPECT_EQ(wrapper.layout, PageLayout::kFreeText);
}

TEST(WrapperInductionTest, EmptySite) {
  EXPECT_FALSE(InduceWrapper({}).usable());
}

TEST(ApplyWrapperTest, ExtractsTitleAndFields) {
  std::vector<WebPage> pages = MakeSite(10, PageLayout::kTable);
  Wrapper wrapper = InduceWrapper(pages);
  ExtractedRecord record = ApplyWrapper(wrapper, pages[0]);
  EXPECT_EQ(record.title, "Widget W0");
  ASSERT_EQ(record.fields.size(), 2u);
  EXPECT_EQ(record.fields[0].first, "color");
  EXPECT_EQ(record.fields[0].second, "red");
}

TEST(ApplyWrapperTest, MissingLabelsYieldEmptyFields) {
  std::vector<WebPage> pages = MakeSite(10, PageLayout::kTable);
  Wrapper wrapper = InduceWrapper(pages);
  WebPage bare;
  bare.html = "<h1>Just a title</h1><p>prose only</p>";
  ExtractedRecord record = ApplyWrapper(wrapper, bare);
  EXPECT_EQ(record.title, "Just a title");
  EXPECT_TRUE(record.fields.empty());
}

TEST(ExtractAllTest, RoundTripOnWorld) {
  synth::WorldConfig config;
  config.seed = 211;
  config.num_entities = 100;
  config.num_sources = 8;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  PageRenderer renderer(RendererConfig{});
  std::vector<SourcePages> sites = renderer.RenderAll(world.dataset);
  ExtractionReport report = ExtractAll(sites);
  ExtractionQuality quality =
      EvaluateExtraction(world.dataset, sites, report);
  // Structured sites, clean values: extraction should be near-perfect.
  EXPECT_GE(quality.field_recall, 0.95);
  EXPECT_GE(quality.field_precision, 0.95);
  EXPECT_EQ(report.dataset.num_sources(), world.dataset.num_sources());
}

TEST(ExtractAllTest, WeakTemplatesReduceRecallOnly) {
  synth::WorldConfig config;
  config.seed = 223;
  config.num_entities = 80;
  config.num_sources = 8;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  RendererConfig renderer_config;
  renderer_config.weak_template_prob = 0.4;
  PageRenderer renderer(renderer_config);
  std::vector<SourcePages> sites = renderer.RenderAll(world.dataset);
  ExtractionReport report = ExtractAll(sites);
  size_t weak = 0;
  for (const SourceDiagnostics& d : report.sources) {
    if (!d.usable) {
      ++weak;
      EXPECT_EQ(d.extracted_records, 0u);
    }
  }
  EXPECT_GT(weak, 0u);
  ExtractionQuality quality =
      EvaluateExtraction(world.dataset, sites, report);
  EXPECT_GE(quality.field_precision, 0.95);  // what we extract is right
  EXPECT_LT(quality.field_recall, 0.95);     // but we extract less
}

TEST(RendererTest, DeterministicAndOnePagePerRecord) {
  synth::WorldConfig config;
  config.seed = 227;
  config.num_entities = 40;
  config.num_sources = 4;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  PageRenderer a(RendererConfig{});
  PageRenderer b(RendererConfig{});
  std::vector<SourcePages> sa = a.RenderAll(world.dataset);
  std::vector<SourcePages> sb = b.RenderAll(world.dataset);
  ASSERT_EQ(sa.size(), sb.size());
  size_t pages = 0;
  for (size_t s = 0; s < sa.size(); ++s) {
    ASSERT_EQ(sa[s].pages.size(), sb[s].pages.size());
    pages += sa[s].pages.size();
    for (size_t p = 0; p < sa[s].pages.size(); ++p) {
      EXPECT_EQ(sa[s].pages[p].html, sb[s].pages[p].html);
    }
  }
  EXPECT_EQ(pages, world.dataset.num_records());
}

}  // namespace
}  // namespace bdi::extract
