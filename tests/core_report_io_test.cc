#include "bdi/core/report_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>

#include "bdi/core/query.h"
#include "bdi/synth/world.h"

namespace bdi::core {
namespace {

struct Fixture {
  synth::SyntheticWorld world;
  IntegrationReport report;
  std::string dir;

  Fixture() {
    synth::WorldConfig config;
    config.seed = 1301;
    config.num_entities = 80;
    config.num_sources = 6;
    world = synth::GenerateWorld(config);
    report = Integrator().Run(world.dataset);
    // One directory per test case: ctest runs cases as separate parallel
    // processes, and a shared path makes concurrent save/remove race.
    dir = ::testing::TempDir() + "/bdi_report_io_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir);
  }

  ~Fixture() { std::filesystem::remove_all(dir); }
};

TEST(ReportIoTest, RoundTripPreservesView) {
  Fixture fx;
  ASSERT_TRUE(SaveIntegration(fx.report, fx.world.dataset, fx.dir).ok());
  Result<IntegrationReport> loaded =
      LoadIntegration(fx.world.dataset, fx.dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->schema.clusters.size(),
            fx.report.schema.clusters.size());
  EXPECT_EQ(loaded->linkage.clusters.label_of_record,
            fx.report.linkage.clusters.label_of_record);
  ASSERT_EQ(loaded->claims.items().size(),
            fx.report.claims.items().size());
  EXPECT_EQ(loaded->fusion.chosen, fx.report.fusion.chosen);
  for (size_t i = 0; i < loaded->fusion.confidence.size(); ++i) {
    EXPECT_NEAR(loaded->fusion.confidence[i],
                fx.report.fusion.confidence[i], 1e-5);
  }
  EXPECT_EQ(loaded->claims.num_claims(), fx.report.claims.num_claims());
}

TEST(ReportIoTest, LoadedViewAnswersQueries) {
  Fixture fx;
  ASSERT_TRUE(SaveIntegration(fx.report, fx.world.dataset, fx.dir).ok());
  Result<IntegrationReport> loaded =
      LoadIntegration(fx.world.dataset, fx.dir);
  ASSERT_TRUE(loaded.ok());

  QueryEngine original(&fx.report, &fx.world.dataset);
  QueryEngine reloaded(&loaded.value(), &fx.world.dataset);
  const std::string& name = fx.world.truth.true_values[0][0];
  Answer a = original.Ask("brand", name);
  Answer b = reloaded.Ask("brand", name);
  EXPECT_EQ(a.found(), b.found());
  if (a.found()) {
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.support.size(), b.support.size());
  }
}

TEST(ReportIoTest, DetectsWrongCorpus) {
  Fixture fx;
  ASSERT_TRUE(SaveIntegration(fx.report, fx.world.dataset, fx.dir).ok());
  synth::WorldConfig other_config;
  other_config.seed = 9999;
  other_config.num_entities = 30;
  other_config.num_sources = 3;
  other_config.category = "book";
  synth::SyntheticWorld other = synth::GenerateWorld(other_config);
  Result<IntegrationReport> loaded = LoadIntegration(other.dataset, fx.dir);
  EXPECT_FALSE(loaded.ok());
}

TEST(ReportIoTest, MissingDirectoryFails) {
  Fixture fx;
  Result<IntegrationReport> loaded =
      LoadIntegration(fx.world.dataset, "/no/such/dir");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

// Overwrites one saved CSV with arbitrary content and asserts the load
// surfaces a Status (never a crash/abort).
void CorruptAndExpectStatus(const Fixture& fx, const std::string& file,
                            const std::string& content) {
  {
    std::ofstream out(fx.dir + "/" + file);
    out << content;
  }
  Result<IntegrationReport> loaded =
      LoadIntegration(fx.world.dataset, fx.dir);
  EXPECT_FALSE(loaded.ok()) << file << " <- " << content;
}

TEST(ReportIoTest, CorruptSchemaSurfacesStatus) {
  Fixture fx;
  ASSERT_TRUE(SaveIntegration(fx.report, fx.world.dataset, fx.dir).ok());
  CorruptAndExpectStatus(fx, "schema.csv", "not,a,schema\n");
  CorruptAndExpectStatus(fx, "schema.csv",
                         "cluster,name,source,attribute\nx,n,0,brand\n");
  // A corrupt cluster id must not drive a multi-gigabyte resize.
  CorruptAndExpectStatus(
      fx, "schema.csv",
      "cluster,name,source,attribute\n99999999999,n,0,brand\n");
  CorruptAndExpectStatus(fx, "schema.csv",
                         "cluster,name,source,attribute\n-3,n,0,brand\n");
  // Source id outside the corpus.
  CorruptAndExpectStatus(fx, "schema.csv",
                         "cluster,name,source,attribute\n0,n,999,brand\n");
}

TEST(ReportIoTest, CorruptEntitiesSurfacesStatus) {
  Fixture fx;
  ASSERT_TRUE(SaveIntegration(fx.report, fx.world.dataset, fx.dir).ok());
  CorruptAndExpectStatus(fx, "entities.csv", "record,entity\n0\n");
  std::string giant = "record,entity\n";
  for (size_t r = 0; r < fx.world.dataset.num_records(); ++r) {
    giant += std::to_string(r) + ",99999999999\n";
  }
  CorruptAndExpectStatus(fx, "entities.csv", giant);
}

TEST(ReportIoTest, CorruptClaimsSurfacesStatus) {
  Fixture fx;
  ASSERT_TRUE(SaveIntegration(fx.report, fx.world.dataset, fx.dir).ok());
  CorruptAndExpectStatus(fx, "claims.csv",
                         "entity,attribute_cluster,source,value\n0,0,999,x\n");
  CorruptAndExpectStatus(fx, "claims.csv",
                         "entity,attribute_cluster,source,value\n0,0,-1,x\n");
  CorruptAndExpectStatus(
      fx, "claims.csv",
      "entity,attribute_cluster,source,value\n\"unterminated,0,0,x\n");
}

TEST(ReportIoTest, CorruptFusedSurfacesStatus) {
  Fixture fx;
  ASSERT_TRUE(SaveIntegration(fx.report, fx.world.dataset, fx.dir).ok());
  CorruptAndExpectStatus(
      fx, "fused.csv",
      "entity,attribute_cluster,value,confidence\n0,0,x,notanumber\n");
  CorruptAndExpectStatus(fx, "fused.csv",
                         "entity,attribute_cluster,value,confidence\n"
                         "-5,0,x,0.5\n");
}

TEST(ReportIoTest, MaterializeEntitiesWorksOnLoadedReport) {
  Fixture fx;
  ASSERT_TRUE(SaveIntegration(fx.report, fx.world.dataset, fx.dir).ok());
  Result<IntegrationReport> loaded =
      LoadIntegration(fx.world.dataset, fx.dir);
  ASSERT_TRUE(loaded.ok());
  auto original_entities =
      MaterializeEntities(fx.report, fx.world.dataset, 5);
  auto loaded_entities =
      MaterializeEntities(loaded.value(), fx.world.dataset, 5);
  ASSERT_EQ(original_entities.size(), loaded_entities.size());
  for (size_t i = 0; i < original_entities.size(); ++i) {
    EXPECT_EQ(original_entities[i].values, loaded_entities[i].values);
  }
}

}  // namespace
}  // namespace bdi::core
