#include "bdi/common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace bdi {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1'000'000) == b.UniformInt(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_EQ(rng.UniformInt(9, 9), 9);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
  // Out-of-range p is clamped, not UB.
  EXPECT_FALSE(rng.Bernoulli(-1.0));
  EXPECT_TRUE(rng.Bernoulli(2.0));
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(8);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(9);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.Categorical(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / 8000.0, 0.25, 0.03);
  EXPECT_NEAR(counts[2] / 8000.0, 0.75, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(10);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleEmptyAndSingle) {
  Rng rng(11);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(12);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementClampsK) {
  Rng rng(13);
  EXPECT_EQ(rng.SampleWithoutReplacement(5, 50).size(), 5u);
  EXPECT_TRUE(rng.SampleWithoutReplacement(0, 3).empty());
}

// --- Zipf properties, parameterized over the skew ---

class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, ProbabilitiesSumToOne) {
  ZipfDistribution zipf(200, GetParam());
  double total = 0.0;
  for (size_t r = 0; r < zipf.n(); ++r) total += zipf.Probability(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(ZipfTest, ProbabilitiesMonotoneNonIncreasing) {
  ZipfDistribution zipf(200, GetParam());
  for (size_t r = 1; r < zipf.n(); ++r) {
    EXPECT_LE(zipf.Probability(r), zipf.Probability(r - 1) + 1e-12);
  }
}

TEST_P(ZipfTest, SampleFrequencyTracksProbability) {
  double s = GetParam();
  ZipfDistribution zipf(50, s);
  Rng rng(99);
  std::vector<int> counts(50, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), zipf.Probability(0), 0.02);
  EXPECT_NEAR(counts[10] / static_cast<double>(n), zipf.Probability(10),
              0.02);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfTest,
                         ::testing::Values(0.0, 0.5, 1.0, 1.5, 2.0));

TEST(ZipfTest, ZeroSkewIsUniform) {
  ZipfDistribution zipf(10, 0.0);
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(zipf.Probability(r), 0.1, 1e-9);
  }
}

TEST(ZipfTest, HighSkewConcentratesOnHead) {
  ZipfDistribution zipf(1000, 2.0);
  EXPECT_GT(zipf.Probability(0), 0.5);
}

}  // namespace
}  // namespace bdi
