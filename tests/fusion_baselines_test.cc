#include "bdi/fusion/baselines.h"

#include <gtest/gtest.h>

#include <memory>

#include "bdi/fusion/evaluation.h"
#include "bdi/synth/world.h"

namespace bdi::fusion {
namespace {

ClaimDb SkewedDb() {
  // Sources 0,1 always right; 2 always wrong over 30 items.
  ClaimDb db;
  db.set_num_sources(3);
  for (int i = 0; i < 30; ++i) {
    DataItem item;
    item.entity = i;
    item.attr = 2;
    item.claims = {{0, "t" + std::to_string(i)},
                   {1, "t" + std::to_string(i)},
                   {2, "f" + std::to_string(i)}};
    db.AddItem(item);
  }
  return db;
}

TEST(TwoEstimatesTest, LearnsSourceErrors) {
  FusionResult result = TwoEstimatesFusion().Resolve(SkewedDb());
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(result.chosen[i], "t" + std::to_string(i));
  }
  EXPECT_GT(result.source_accuracy[0], result.source_accuracy[2]);
}

TEST(PooledInvestmentTest, TrustFlowsToConsistentSources) {
  FusionResult result = PooledInvestmentFusion().Resolve(SkewedDb());
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(result.chosen[i], "t" + std::to_string(i));
  }
  EXPECT_GT(result.source_accuracy[0], result.source_accuracy[2]);
}

class BaselineFusionTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<FusionMethod> MakeMethod() const {
    if (GetParam() == 0) return std::make_unique<TwoEstimatesFusion>();
    return std::make_unique<PooledInvestmentFusion>();
  }
};

TEST_P(BaselineFusionTest, OutputShapeInvariants) {
  synth::WorldConfig config;
  config.seed = 901;
  config.num_entities = 120;
  config.num_sources = 10;
  config.format_variation_prob = 0.0;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());
  FusionResult result = MakeMethod()->Resolve(db);
  ASSERT_EQ(result.chosen.size(), db.items().size());
  for (size_t i = 0; i < db.items().size(); ++i) {
    bool claimed = false;
    for (const Claim& claim : db.items()[i].claims) {
      if (claim.value == result.chosen[i]) claimed = true;
    }
    EXPECT_TRUE(claimed) << i;
    EXPECT_GE(result.confidence[i], 0.0);
    EXPECT_LE(result.confidence[i], 1.0 + 1e-9);
  }
  for (double a : result.source_accuracy) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0 + 1e-9);
  }
}

TEST_P(BaselineFusionTest, BeatsCoinFlipOnCleanWorld) {
  synth::WorldConfig config;
  config.seed = 907;
  config.num_entities = 150;
  config.num_sources = 12;
  config.source_accuracy_min = 0.75;
  config.source_accuracy_max = 0.95;
  config.format_variation_prob = 0.0;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());
  FusionResult result = MakeMethod()->Resolve(db);
  FusionQuality quality = EvaluateFusion(db, result, world.truth);
  // 2-Estimates is known to be the unstable one (cf. "Truth Finding on
  // the Deep Web": advanced methods do not uniformly beat voting).
  double floor = GetParam() == 0 ? 0.7 : 0.8;
  EXPECT_GE(quality.precision, floor);
}

INSTANTIATE_TEST_SUITE_P(Baselines, BaselineFusionTest,
                         ::testing::Values(0, 1));

TEST(BaselinesTest, EmptyDb) {
  ClaimDb db;
  db.set_num_sources(2);
  EXPECT_TRUE(TwoEstimatesFusion().Resolve(db).chosen.empty());
  EXPECT_TRUE(PooledInvestmentFusion().Resolve(db).chosen.empty());
}

}  // namespace
}  // namespace bdi::fusion
