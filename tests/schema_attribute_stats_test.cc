#include "bdi/schema/attribute_stats.h"

#include <gtest/gtest.h>

namespace bdi::schema {
namespace {

Dataset TwoSourceDataset() {
  Dataset dataset;
  SourceId a = dataset.AddSource("a");
  SourceId b = dataset.AddSource("b");
  dataset.AddRecord(a, {{"weight", "12.5 g"}, {"color", "Red"}});
  dataset.AddRecord(a, {{"weight", "7 g"}, {"color", "Blue"}});
  dataset.AddRecord(a, {{"weight", "9.25 g"}});
  dataset.AddRecord(b, {{"Weight (g)", "11 g"}, {"color", "red"}});
  return dataset;
}

TEST(AttributeStatsTest, OneProfilePerSourceAttr) {
  Dataset dataset = TwoSourceDataset();
  AttributeStatistics stats = AttributeStatistics::Compute(dataset);
  // a: weight, color; b: "Weight (g)", color => 4 profiles.
  EXPECT_EQ(stats.profiles().size(), 4u);
}

TEST(AttributeStatsTest, CountsAndDistincts) {
  Dataset dataset = TwoSourceDataset();
  AttributeStatistics stats = AttributeStatistics::Compute(dataset);
  AttrId weight = dataset.FindAttr("weight").value();
  const AttrProfile* profile = stats.Find(SourceAttr{0, weight});
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->num_values, 3u);
  EXPECT_EQ(profile->num_distinct, 3u);
  EXPECT_EQ(profile->raw_name, "weight");
  EXPECT_EQ(profile->normalized_name, "weight");
}

TEST(AttributeStatsTest, NumericDetection) {
  Dataset dataset = TwoSourceDataset();
  AttributeStatistics stats = AttributeStatistics::Compute(dataset);
  AttrId weight = dataset.FindAttr("weight").value();
  AttrId color = dataset.FindAttr("color").value();
  const AttrProfile* w = stats.Find(SourceAttr{0, weight});
  const AttrProfile* c = stats.Find(SourceAttr{0, color});
  ASSERT_NE(w, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(w->IsNumeric());
  EXPECT_FALSE(c->IsNumeric());
  EXPECT_DOUBLE_EQ(w->numeric_fraction, 1.0);
  EXPECT_DOUBLE_EQ(c->numeric_fraction, 0.0);
  EXPECT_EQ(w->dominant_unit, "g");
  EXPECT_NEAR(w->numeric_mean, (12.5 + 7 + 9.25) / 3.0, 1e-9);
  EXPECT_NEAR(w->numeric_median, 9.25, 1e-9);
}

TEST(AttributeStatsTest, NormalizedNameStripsDecoration) {
  Dataset dataset = TwoSourceDataset();
  AttributeStatistics stats = AttributeStatistics::Compute(dataset);
  AttrId decorated = dataset.FindAttr("Weight (g)").value();
  const AttrProfile* profile = stats.Find(SourceAttr{1, decorated});
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->normalized_name, "weightg");
}

TEST(AttributeStatsTest, SampleValuesLowercased) {
  Dataset dataset = TwoSourceDataset();
  AttributeStatistics stats = AttributeStatistics::Compute(dataset);
  AttrId color = dataset.FindAttr("color").value();
  const AttrProfile* profile = stats.Find(SourceAttr{0, color});
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->sample_values,
            (std::vector<std::string>{"blue", "red"}));
}

TEST(AttributeStatsTest, NameSourceCounts) {
  Dataset dataset = TwoSourceDataset();
  AttributeStatistics stats = AttributeStatistics::Compute(dataset);
  EXPECT_EQ(stats.name_source_counts().at("color"), 2u);
  EXPECT_EQ(stats.name_source_counts().at("weight"), 1u);
}

TEST(AttributeStatsTest, FindUnknownReturnsNull) {
  Dataset dataset = TwoSourceDataset();
  AttributeStatistics stats = AttributeStatistics::Compute(dataset);
  EXPECT_EQ(stats.Find(SourceAttr{5, 5}), nullptr);
}

TEST(AttributeStatsTest, EmptyDataset) {
  Dataset dataset;
  AttributeStatistics stats = AttributeStatistics::Compute(dataset);
  EXPECT_TRUE(stats.profiles().empty());
}

}  // namespace
}  // namespace bdi::schema
