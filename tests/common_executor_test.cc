#include "bdi/common/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace bdi {
namespace {

TEST(ExecutorTest, ZeroIterationsIsNoop) {
  ParallelFor(0, [](size_t) { FAIL() << "should not be called"; });
  ParallelForRanges(0, [](size_t, size_t) { FAIL() << "no chunks"; });
}

TEST(ExecutorTest, SingleIterationRunsInline) {
  size_t seen = 1234;
  ParallelFor(1, [&](size_t i) { seen = i; });
  EXPECT_EQ(seen, 0u);
}

TEST(ExecutorTest, CoversAllIndices) {
  std::vector<std::atomic<int>> hits(10000);
  ParallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ExecutorTest, FewerIterationsThanThreads) {
  std::atomic<int> counter{0};
  ParallelFor(3, [&](size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ExecutorTest, MaxParallelismOneIsSerialInOrder) {
  std::vector<size_t> order;
  ParallelFor(
      100, [&](size_t i) { order.push_back(i); }, /*max_parallelism=*/1);
  ASSERT_EQ(order.size(), 100u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ExecutorTest, RangesPartitionWithoutOverlap) {
  std::vector<std::atomic<int>> hits(5000);
  std::atomic<int> chunks{0};
  ParallelForRanges(hits.size(), [&](size_t begin, size_t end) {
    EXPECT_LT(begin, end);
    ++chunks;
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_GE(chunks.load(), 1);
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ExecutorTest, RangesRespectMinChunk) {
  std::atomic<int> chunks{0};
  ParallelForRanges(
      1000,
      [&](size_t begin, size_t end) {
        // Every chunk except possibly the last is at least min_chunk wide.
        if (end != 1000) EXPECT_GE(end - begin, 100u);
        ++chunks;
      },
      /*max_parallelism=*/0, /*min_chunk=*/100);
  EXPECT_LE(chunks.load(), 10);
}

TEST(ExecutorTest, NestedParallelForRunsSerialInline) {
  // A loop entered from inside a worker body must not deadlock and must
  // still cover its whole iteration space.
  std::vector<std::atomic<int>> outer(64);
  std::atomic<int> inner_total{0};
  ParallelFor(outer.size(), [&](size_t i) {
    ++outer[i];
    ParallelFor(16, [&](size_t) { ++inner_total; });
  });
  for (size_t i = 0; i < outer.size(); ++i) {
    ASSERT_EQ(outer[i].load(), 1) << i;
  }
  EXPECT_EQ(inner_total.load(), 64 * 16);
}

TEST(ExecutorTest, ExceptionPropagates) {
  EXPECT_THROW(
      ParallelFor(1000,
                  [&](size_t i) {
                    if (i == 437) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ExecutorTest, UsableAfterException) {
  try {
    ParallelFor(100, [](size_t) { throw std::runtime_error("first"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> counter{0};
  ParallelFor(500, [&](size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 500);
}

TEST(ExecutorTest, ExceptionFromRangesPropagates) {
  EXPECT_THROW(
      ParallelForRanges(
          256, [](size_t, size_t) { throw std::logic_error("chunk"); }),
      std::logic_error);
}

TEST(ExecutorTest, ConfigureAfterCreationIsRejected) {
  Executor::Get();  // force pool construction
  EXPECT_FALSE(Executor::Configure(3));
  EXPECT_GE(Executor::Get().num_threads(), 1u);
}

TEST(ExecutorTest, ParallelSumMatchesSerial) {
  std::vector<int64_t> partial(20000, 0);
  ParallelFor(partial.size(),
              [&](size_t i) { partial[i] = static_cast<int64_t>(i); });
  int64_t total =
      std::accumulate(partial.begin(), partial.end(), int64_t{0});
  EXPECT_EQ(total, int64_t{19999} * 20000 / 2);
}

}  // namespace
}  // namespace bdi
