#include "bdi/linkage/matcher.h"

#include <gtest/gtest.h>

namespace bdi::linkage {
namespace {

/// Dataset with detectable roles: many records so role detection has
/// enough statistics; record 0/1 are the same entity across sources,
/// record 2 is a different entity.
struct Fixture {
  Dataset dataset;
  schema::AttributeStatistics stats;
  AttrRoles roles;

  Fixture() {
    SourceId s0 = dataset.AddSource("s0");
    SourceId s1 = dataset.AddSource("s1");
    // r0 and r1: same entity; r2: different.
    dataset.AddRecord(s0, {{"name", "Canon X100 camera"},
                           {"sku", "cm10001"},
                           {"color", "red"},
                           {"zoom", "10"}});
    dataset.AddRecord(s1, {{"title", "canon x100"},
                           {"mpn", "cm10001"},
                           {"colour", "red"},
                           {"zoom x", "10"}});
    dataset.AddRecord(s1, {{"title", "nikon z50 kit"},
                           {"mpn", "nk20002"},
                           {"colour", "black"},
                           {"zoom x", "3"}});
    // Filler records to give the role detector distinct values.
    for (int i = 0; i < 20; ++i) {
      std::string suffix = std::to_string(i);
      dataset.AddRecord(
          s0, {{"name", "Filler Model A" + suffix + " camera"},
               {"sku", "fm3" + suffix + "0" + suffix},
               {"color", i % 2 == 0 ? "red" : "blue"},
               {"zoom", std::to_string(i % 7 + 1)}});
      dataset.AddRecord(
          s1, {{"title", "filler model b" + suffix},
               {"mpn", "fx5" + suffix + "1" + suffix},
               {"colour", i % 2 == 0 ? "green" : "blue"},
               {"zoom x", std::to_string(i % 5 + 1)}});
    }
    stats = schema::AttributeStatistics::Compute(dataset);
    roles = AttrRoles::Detect(stats);
  }
};

TEST(AttrRolesTest, DetectsNameAndIdentifier) {
  Fixture fx;
  AttrId name = fx.dataset.FindAttr("name").value();
  AttrId sku = fx.dataset.FindAttr("sku").value();
  AttrId color = fx.dataset.FindAttr("color").value();
  EXPECT_EQ(fx.roles.RoleOf(SourceAttr{0, name}), AttrRole::kName);
  EXPECT_EQ(fx.roles.RoleOf(SourceAttr{0, sku}), AttrRole::kIdentifier);
  EXPECT_EQ(fx.roles.RoleOf(SourceAttr{0, color}), AttrRole::kOther);
  EXPECT_TRUE(fx.roles.HasRole(AttrRole::kName));
  EXPECT_TRUE(fx.roles.HasRole(AttrRole::kIdentifier));
}

TEST(FeatureExtractorTest, MatchingPairHasStrongFeatures) {
  Fixture fx;
  FeatureExtractor extractor(&fx.dataset, &fx.roles);
  text::SimilarityScratch scratch;
  PairFeatures features = extractor.Extract(0, 1, scratch);
  EXPECT_DOUBLE_EQ(features.id_exact, 1.0);
  EXPECT_GT(features.name_similarity, 0.8);
  EXPECT_GT(features.name_jaccard, 0.4);
}

TEST(FeatureExtractorTest, NonMatchingPairHasWeakFeatures) {
  Fixture fx;
  FeatureExtractor extractor(&fx.dataset, &fx.roles);
  text::SimilarityScratch scratch;
  PairFeatures features = extractor.Extract(0, 2, scratch);
  EXPECT_DOUBLE_EQ(features.id_exact, 0.0);
  EXPECT_LT(features.name_similarity, 0.7);
}

TEST(FeatureExtractorTest, SymmetricFeatures) {
  Fixture fx;
  FeatureExtractor extractor(&fx.dataset, &fx.roles);
  text::SimilarityScratch scratch;
  PairFeatures ab = extractor.Extract(0, 1, scratch);
  PairFeatures ba = extractor.Extract(1, 0, scratch);
  EXPECT_DOUBLE_EQ(ab.id_exact, ba.id_exact);
  EXPECT_NEAR(ab.name_jaccard, ba.name_jaccard, 1e-12);
  EXPECT_NEAR(ab.value_agreement, ba.value_agreement, 1e-12);
}

TEST(FeatureExtractorTest, ValueAgreementWithoutSchemaUsesRawNames) {
  // Without a mediated schema, only identical raw attribute names align —
  // "color" vs "colour" contribute nothing.
  Fixture fx;
  FeatureExtractor extractor(&fx.dataset, &fx.roles);
  text::SimilarityScratch scratch;
  PairFeatures features = extractor.Extract(0, 1, scratch);
  EXPECT_DOUBLE_EQ(features.value_agreement, 0.0);
}

TEST(FeatureExtractorTest, SchemaAlignmentEnablesValueAgreement) {
  Fixture fx;
  schema::MediatedSchema schema;
  AttrId color = fx.dataset.FindAttr("color").value();
  AttrId colour = fx.dataset.FindAttr("colour").value();
  AttrId zoom = fx.dataset.FindAttr("zoom").value();
  AttrId zoomx = fx.dataset.FindAttr("zoom x").value();
  schema.clusters = {{SourceAttr{0, color}, SourceAttr{1, colour}},
                     {SourceAttr{0, zoom}, SourceAttr{1, zoomx}}};
  int cluster = 0;
  for (const auto& members : schema.clusters) {
    for (const SourceAttr& sa : members) schema.cluster_of[sa] = cluster;
    ++cluster;
  }
  schema::ValueNormalizer normalizer =
      schema::ValueNormalizer::Fit(fx.stats, schema);
  FeatureExtractor extractor(&fx.dataset, &fx.roles, &schema, &normalizer);
  text::SimilarityScratch scratch;
  PairFeatures features = extractor.Extract(0, 1, scratch);
  EXPECT_DOUBLE_EQ(features.value_agreement, 1.0);  // red==red, 10==10
}

TEST(LinearScorerTest, MonotoneInFeatures) {
  LinearScorer scorer;
  PairFeatures weak;
  PairFeatures strong;
  strong.id_exact = 1.0;
  strong.name_similarity = 1.0;
  strong.name_jaccard = 1.0;
  strong.value_agreement = 1.0;
  strong.numeric_closeness = 1.0;
  EXPECT_LT(scorer.Score(weak), scorer.Score(strong));
  EXPECT_DOUBLE_EQ(scorer.Score(strong), 1.0);
  EXPECT_DOUBLE_EQ(scorer.Score(weak), 0.0);
  EXPECT_TRUE(scorer.Matches(strong));
  EXPECT_FALSE(scorer.Matches(weak));
}

TEST(RuleScorerTest, IdentifierIsDecisive) {
  RuleScorer scorer;
  PairFeatures features;
  features.id_exact = 1.0;
  EXPECT_DOUBLE_EQ(scorer.Score(features), 1.0);
  EXPECT_TRUE(scorer.Matches(features));
}

TEST(RuleScorerTest, NameNeedsCorroboration) {
  RuleScorer scorer(0.85, 0.4);
  PairFeatures name_only;
  name_only.name_similarity = 0.95;
  EXPECT_FALSE(scorer.Matches(name_only));
  PairFeatures corroborated = name_only;
  corroborated.value_agreement = 0.6;
  EXPECT_TRUE(scorer.Matches(corroborated));
}

TEST(LearnedScorerTest, LearnsSeparableData) {
  std::vector<PairFeatures> features;
  std::vector<int> labels;
  for (int i = 0; i < 50; ++i) {
    PairFeatures positive;
    positive.id_exact = 1.0;
    positive.name_similarity = 0.9;
    features.push_back(positive);
    labels.push_back(1);
    PairFeatures negative;
    negative.name_similarity = 0.2;
    features.push_back(negative);
    labels.push_back(0);
  }
  LearnedScorer scorer;
  scorer.Train(features, labels);
  PairFeatures positive;
  positive.id_exact = 1.0;
  positive.name_similarity = 0.9;
  PairFeatures negative;
  negative.name_similarity = 0.2;
  EXPECT_GT(scorer.Score(positive), 0.8);
  EXPECT_LT(scorer.Score(negative), 0.3);
  EXPECT_TRUE(scorer.Matches(positive));
  EXPECT_FALSE(scorer.Matches(negative));
}

TEST(LearnedScorerTest, UntrainedIsNeutral) {
  LearnedScorer scorer;
  PairFeatures anything;
  anything.name_similarity = 0.7;
  EXPECT_DOUBLE_EQ(scorer.Score(anything), 0.5);
}

TEST(FeatureExtractorTest, PrepareExtendsToNewRecords) {
  Fixture fx;
  FeatureExtractor extractor(&fx.dataset, &fx.roles);
  RecordIdx fresh = fx.dataset.AddRecord(
      0, {{"name", "Canon X100 pro"}, {"sku", "cm10001"}});
  extractor.Prepare();
  text::SimilarityScratch scratch;
  PairFeatures features = extractor.Extract(fresh, 1, scratch);
  EXPECT_DOUBLE_EQ(features.id_exact, 1.0);
}

}  // namespace
}  // namespace bdi::linkage
