#include "bdi/common/string_util.h"

#include <gtest/gtest.h>

namespace bdi {
namespace {

TEST(StringUtilTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("AbC 12"), "abc 12");
  EXPECT_EQ(ToUpper("AbC 12"), "ABC 12");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\nabc\r "), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("solo", ','), (std::vector<std::string>{"solo"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpties) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(StringUtilTest, NormalizeWhitespace) {
  EXPECT_EQ(NormalizeWhitespace("  a   b \t c  "), "a b c");
  EXPECT_EQ(NormalizeWhitespace(""), "");
  EXPECT_EQ(NormalizeWhitespace("single"), "single");
}

TEST(StringUtilTest, NormalizeAlnum) {
  EXPECT_EQ(NormalizeAlnum("Screen Size (in)"), "screensizein");
  EXPECT_EQ(NormalizeAlnum("a-b_c 1.2"), "abc12");
  EXPECT_EQ(NormalizeAlnum("!!!"), "");
}

TEST(StringUtilTest, IsDigits) {
  EXPECT_TRUE(IsDigits("0123"));
  EXPECT_FALSE(IsDigits(""));
  EXPECT_FALSE(IsDigits("12a"));
  EXPECT_FALSE(IsDigits("-12"));
}

TEST(StringUtilTest, ParseLeadingDoubleBasic) {
  double v = 0.0;
  std::string unit;
  ASSERT_TRUE(ParseLeadingDouble("12.5 cm", &v, &unit));
  EXPECT_DOUBLE_EQ(v, 12.5);
  EXPECT_EQ(unit, "cm");
}

TEST(StringUtilTest, ParseLeadingDoubleNoUnit) {
  double v = 0.0;
  std::string unit;
  ASSERT_TRUE(ParseLeadingDouble("  -3.25 ", &v, &unit));
  EXPECT_DOUBLE_EQ(v, -3.25);
  EXPECT_EQ(unit, "");
}

TEST(StringUtilTest, ParseLeadingDoubleRejectsNonNumeric) {
  double v = 0.0;
  EXPECT_FALSE(ParseLeadingDouble("cm 12", &v, nullptr));
  EXPECT_FALSE(ParseLeadingDouble("", &v, nullptr));
  EXPECT_FALSE(ParseLeadingDouble("   ", &v, nullptr));
}

TEST(StringUtilTest, ParseLeadingDoubleScientific) {
  double v = 0.0;
  ASSERT_TRUE(ParseLeadingDouble("1e3", &v, nullptr));
  EXPECT_DOUBLE_EQ(v, 1000.0);
}

TEST(StringUtilTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(12.50, 2), "12.5");
  EXPECT_EQ(FormatDouble(3.00, 2), "3");
  EXPECT_EQ(FormatDouble(0.125, 3), "0.125");
  EXPECT_EQ(FormatDouble(100.0, 0), "100");
  EXPECT_EQ(FormatDouble(-2.30, 2), "-2.3");
}

}  // namespace
}  // namespace bdi
