#include "bdi/schema/linkage_refinement.h"

#include <gtest/gtest.h>

#include "bdi/core/integrator.h"
#include "bdi/synth/world.h"

namespace bdi::schema {
namespace {

/// Two sources publish the same attribute under unrelated names ("weight"
/// vs "wt"); records are pre-linked by entity index.
struct Fixture {
  Dataset dataset;
  AttributeStatistics stats;
  MediatedSchema schema;
  ValueNormalizer normalizer;
  std::vector<EntityId> labels;
  SourceAttr weight{0, kInvalidAttr};
  SourceAttr wt{1, kInvalidAttr};
  SourceAttr color{0, kInvalidAttr};

  explicit Fixture(bool agree = true) {
    SourceId s0 = dataset.AddSource("s0");
    SourceId s1 = dataset.AddSource("s1");
    for (int e = 0; e < 12; ++e) {
      std::string v = std::to_string(100 + 7 * e);
      dataset.AddRecord(s0, {{"weight", v},
                             {"color", e % 2 == 0 ? "red" : "blue"}});
      labels.push_back(e);
      dataset.AddRecord(
          s1, {{"wt", agree ? v : std::to_string(500 + 11 * e)}});
      labels.push_back(e);
    }
    stats = AttributeStatistics::Compute(dataset);
    weight.attr = dataset.FindAttr("weight").value();
    wt.attr = dataset.FindAttr("wt").value();
    color.attr = dataset.FindAttr("color").value();
    // Initial schema: every attribute is a singleton (name matching saw
    // nothing).
    int cluster = 0;
    for (const SourceAttr& sa : {weight, wt, color}) {
      schema.clusters.push_back({sa});
      schema.cluster_of[sa] = cluster++;
      schema.cluster_names.push_back(dataset.attr_name(sa.attr));
    }
    normalizer = ValueNormalizer::Fit(stats, schema);
  }
};

TEST(LinkageRefinementTest, MergesAgreeingAttributes) {
  Fixture fx;
  LinkageRefinementConfig config;
  config.min_common_entities = 5;
  LinkageRefinementReport report = RefineSchemaWithLinkage(
      fx.dataset, fx.stats, fx.schema, fx.normalizer, fx.labels, config);
  EXPECT_EQ(report.merges, 1u);
  EXPECT_EQ(report.schema.ClusterOf(fx.weight),
            report.schema.ClusterOf(fx.wt));
  EXPECT_NE(report.schema.ClusterOf(fx.weight),
            report.schema.ClusterOf(fx.color));
}

TEST(LinkageRefinementTest, DisagreeingAttributesStayApart) {
  Fixture fx(/*agree=*/false);
  LinkageRefinementReport report = RefineSchemaWithLinkage(
      fx.dataset, fx.stats, fx.schema, fx.normalizer, fx.labels, {});
  EXPECT_EQ(report.merges, 0u);
  EXPECT_NE(report.schema.ClusterOf(fx.weight),
            report.schema.ClusterOf(fx.wt));
}

TEST(LinkageRefinementTest, Idempotent) {
  Fixture fx;
  LinkageRefinementConfig config;
  config.min_common_entities = 5;
  LinkageRefinementReport first = RefineSchemaWithLinkage(
      fx.dataset, fx.stats, fx.schema, fx.normalizer, fx.labels, config);
  ASSERT_EQ(first.merges, 1u);
  ValueNormalizer refit = ValueNormalizer::Fit(fx.stats, first.schema);
  LinkageRefinementReport second = RefineSchemaWithLinkage(
      fx.dataset, fx.stats, first.schema, refit, fx.labels, config);
  EXPECT_EQ(second.merges, 0u);
  EXPECT_EQ(second.schema.clusters.size(), first.schema.clusters.size());
}

TEST(LinkageRefinementTest, MinCommonEntitiesGuards) {
  Fixture fx;
  LinkageRefinementConfig config;
  config.min_common_entities = 50;  // more than the corpus has
  LinkageRefinementReport report = RefineSchemaWithLinkage(
      fx.dataset, fx.stats, fx.schema, fx.normalizer, fx.labels, config);
  EXPECT_EQ(report.merges, 0u);
}

TEST(LinkageRefinementTest, ImprovesRecallOnGeneratedWorld) {
  synth::WorldConfig config;
  config.seed = 811;
  config.num_entities = 200;
  config.num_sources = 12;
  config.synonym_prob = 0.7;  // lots of skeleton names
  synth::SyntheticWorld world = synth::GenerateWorld(config);

  core::IntegratorConfig without;
  without.linkage_feedback = false;
  core::IntegrationReport base = core::Integrator(without).Run(world.dataset);
  SchemaQuality base_quality =
      EvaluateSchema(base.schema, world.truth.canonical_of_source_attr);

  core::IntegratorConfig with;
  with.linkage_feedback = true;
  core::IntegrationReport refined = core::Integrator(with).Run(world.dataset);
  SchemaQuality refined_quality = EvaluateSchema(
      refined.schema, world.truth.canonical_of_source_attr);

  EXPECT_GT(refined.feedback_merges, 0u);
  EXPECT_GT(refined_quality.recall, base_quality.recall);
  EXPECT_GE(refined_quality.precision, base_quality.precision - 0.05);
}

}  // namespace
}  // namespace bdi::schema
