#include "bdi/schema/matchers.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "bdi/schema/units.h"

namespace bdi::schema {
namespace {

AttrProfile MakeProfile(SourceId source, AttrId attr, std::string name,
                        std::vector<std::string> values) {
  AttrProfile profile;
  profile.id = SourceAttr{source, attr};
  profile.raw_name = name;
  profile.normalized_name = name;  // tests use pre-normalized names
  profile.sample_values = std::move(values);
  std::sort(profile.sample_values.begin(), profile.sample_values.end());
  profile.num_values = profile.sample_values.size();
  profile.num_distinct = profile.sample_values.size();
  return profile;
}

AttrProfile MakeNumericProfile(SourceId source, AttrId attr,
                               std::string name, double median,
                               double stddev) {
  AttrProfile profile;
  profile.id = SourceAttr{source, attr};
  profile.raw_name = name;
  profile.normalized_name = name;
  profile.num_values = 100;
  profile.num_distinct = 100;
  profile.numeric_fraction = 1.0;
  profile.numeric_median = median;
  profile.numeric_mean = median;
  profile.numeric_stddev = stddev;
  return profile;
}

TEST(NameSimilarityTest, IdenticalNormalizedNames) {
  AttrProfile a = MakeProfile(0, 0, "weight", {"1"});
  AttrProfile b = MakeProfile(1, 1, "weight", {"2"});
  EXPECT_DOUBLE_EQ(NameSimilarity(a, b), 1.0);
}

TEST(NameSimilarityTest, ContainmentBonus) {
  AttrProfile a = MakeProfile(0, 0, "weight", {"1"});
  AttrProfile b = MakeProfile(1, 1, "item weight", {"2"});
  b.raw_name = "item weight";
  EXPECT_GE(NameSimilarity(a, b), 0.85);
}

TEST(NameSimilarityTest, UnrelatedNamesLow) {
  AttrProfile a = MakeProfile(0, 0, "color", {"1"});
  AttrProfile b = MakeProfile(1, 1, "impedance", {"2"});
  EXPECT_LT(NameSimilarity(a, b), 0.6);
}

TEST(ValueSimilarityTest, CategoricalOverlap) {
  AttrProfile a = MakeProfile(0, 0, "c1", {"red", "blue", "green"});
  AttrProfile b = MakeProfile(1, 1, "c2", {"red", "blue", "yellow"});
  EXPECT_DOUBLE_EQ(ValueSimilarity(a, b), 0.5);  // 2 / 4
}

TEST(ValueSimilarityTest, TypeMismatchIsZero) {
  AttrProfile a = MakeProfile(0, 0, "c", {"red", "blue"});
  AttrProfile b = MakeNumericProfile(1, 1, "n", 10.0, 2.0);
  EXPECT_DOUBLE_EQ(ValueSimilarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(ValueSimilarity(b, a), 0.0);
}

TEST(ValueSimilarityTest, NumericSameDistributionHigh) {
  AttrProfile a = MakeNumericProfile(0, 0, "x", 100.0, 20.0);
  AttrProfile b = MakeNumericProfile(1, 1, "y", 102.0, 21.0);
  EXPECT_GT(ValueSimilarity(a, b), 0.85);
}

TEST(ValueSimilarityTest, NumericFarDistributionsLow) {
  AttrProfile a = MakeNumericProfile(0, 0, "x", 5.0, 1.0);
  AttrProfile b = MakeNumericProfile(1, 1, "y", 5000.0, 900.0);
  EXPECT_LT(ValueSimilarity(a, b), 0.3);
}

TEST(ValueSimilarityTest, UnitConvertedDistributionsRecognized) {
  // Same attribute in grams vs ounces (factor 28.35).
  AttrProfile grams = MakeNumericProfile(0, 0, "w", 800.0, 300.0);
  AttrProfile ounces = MakeNumericProfile(1, 1, "w2", 800.0 / 28.35,
                                          300.0 / 28.35);
  EXPECT_GT(ValueSimilarity(grams, ounces), 0.7);
}

TEST(ValueSimilarityTest, PowerOfTenRatioNotTreatedAsUnits) {
  // Ratio 10 between unrelated attributes must NOT be auto-converted.
  AttrProfile a = MakeNumericProfile(0, 0, "x", 3.0, 0.5);
  AttrProfile b = MakeNumericProfile(1, 1, "y", 30.0, 5.0);
  EXPECT_LT(ValueSimilarity(a, b), 0.5);
}

TEST(ValueSimilarityTest, EmptyProfilesZero) {
  AttrProfile a = MakeProfile(0, 0, "x", {});
  a.num_values = 0;
  AttrProfile b = MakeProfile(1, 1, "y", {"v"});
  EXPECT_DOUBLE_EQ(ValueSimilarity(a, b), 0.0);
}

TEST(CombinedSimilarityTest, WeightsNormalize) {
  AttrProfile a = MakeProfile(0, 0, "weight", {"red"});
  AttrProfile b = MakeProfile(1, 1, "weight", {"red"});
  AttrMatchConfig config;
  config.name_weight = 2.0;
  config.value_weight = 2.0;
  EXPECT_DOUBLE_EQ(CombinedSimilarity(a, b, config), 1.0);
  config.name_weight = 0.0;
  config.value_weight = 0.0;
  EXPECT_DOUBLE_EQ(CombinedSimilarity(a, b, config), 0.0);
}

TEST(BuildCandidateEdgesTest, SkipsSameSourceAndLowScores) {
  Dataset dataset;
  SourceId s0 = dataset.AddSource("s0");
  SourceId s1 = dataset.AddSource("s1");
  dataset.AddRecord(s0, {{"color", "red"}, {"colour", "red"}});
  dataset.AddRecord(s1, {{"color", "red"}});
  AttributeStatistics stats = AttributeStatistics::Compute(dataset);
  AttrMatchConfig config;
  config.min_score = 0.3;
  std::vector<AttrEdge> edges = BuildCandidateEdges(stats, config);
  for (const AttrEdge& edge : edges) {
    EXPECT_NE(stats.profiles()[edge.a].id.source,
              stats.profiles()[edge.b].id.source);
    EXPECT_GE(edge.score, config.min_score);
  }
  // color(s0) - color(s1) must be a candidate.
  EXPECT_FALSE(edges.empty());
}

TEST(UnitsTest, SnapScaleIdentity) {
  EXPECT_DOUBLE_EQ(SnapScale(1.02), 1.0);
  EXPECT_DOUBLE_EQ(SnapScale(0.0), 1.0);
  EXPECT_DOUBLE_EQ(SnapScale(-3.0), 1.0);
}

TEST(UnitsTest, SnapScaleKnownFactors) {
  EXPECT_DOUBLE_EQ(SnapScale(2.5), 2.54);
  EXPECT_DOUBLE_EQ(SnapScale(28.0), 28.35);
  EXPECT_NEAR(SnapScale(1.0 / 28.4), 1.0 / 28.35, 1e-9);
  // Far from any constant: returned unchanged.
  EXPECT_DOUBLE_EQ(SnapScale(5.5), 5.5);
}

TEST(UnitsTest, SnapScalePicksClosest) {
  // 0.35 is between 0.3048 (ft->m) and 0.3937 (cm->in); with a loose
  // tolerance the closer constant must win.
  double snapped = SnapScale(0.32, 0.25);
  EXPECT_DOUBLE_EQ(snapped, 0.3048);
}

TEST(UnitsTest, ConversionPredicates) {
  EXPECT_TRUE(IsKnownUnitConversion(2.54));
  EXPECT_TRUE(IsKnownUnitConversion(10.0));
  EXPECT_TRUE(IsMeasurementUnitConversion(2.54));
  EXPECT_FALSE(IsMeasurementUnitConversion(10.0));
  EXPECT_FALSE(IsMeasurementUnitConversion(1.0));
  EXPECT_FALSE(IsKnownUnitConversion(-1.0));
}

}  // namespace
}  // namespace bdi::schema
