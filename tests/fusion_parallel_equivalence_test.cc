// Serial-vs-parallel equivalence for the fusion stack: every method must
// produce identical chosen values and (near-)identical accuracy estimates
// regardless of thread count — the determinism contract of the executor
// rewrite (parallel E step over disjoint slots, serial M step).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "bdi/fusion/accu.h"
#include "bdi/fusion/accu_copy.h"
#include "bdi/fusion/copy_detection.h"
#include "bdi/synth/world.h"

namespace bdi::fusion {
namespace {

ClaimDb TestDb() {
  synth::WorldConfig config;
  config.seed = 77;
  config.category = "camera";
  config.num_entities = 120;
  config.num_sources = 14;
  config.num_copiers = 4;
  config.copy_rate = 0.85;
  config.source_accuracy_min = 0.6;
  config.source_accuracy_max = 0.95;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  return ClaimDb::FromGroundTruth(world.truth,
                                  world.dataset.num_sources());
}

void ExpectEquivalent(const FusionResult& serial,
                      const FusionResult& parallel) {
  ASSERT_EQ(serial.chosen.size(), parallel.chosen.size());
  for (size_t i = 0; i < serial.chosen.size(); ++i) {
    EXPECT_EQ(serial.chosen[i], parallel.chosen[i]) << "item " << i;
  }
  ASSERT_EQ(serial.source_accuracy.size(),
            parallel.source_accuracy.size());
  for (size_t s = 0; s < serial.source_accuracy.size(); ++s) {
    EXPECT_NEAR(serial.source_accuracy[s], parallel.source_accuracy[s],
                1e-9)
        << "source " << s;
  }
  ASSERT_EQ(serial.confidence.size(), parallel.confidence.size());
  for (size_t i = 0; i < serial.confidence.size(); ++i) {
    EXPECT_NEAR(serial.confidence[i], parallel.confidence[i], 1e-9)
        << "item " << i;
  }
  EXPECT_EQ(serial.iterations, parallel.iterations);
}

TEST(FusionParallelEquivalenceTest, AccuMatchesSerial) {
  ClaimDb db = TestDb();
  AccuConfig serial_config;
  serial_config.num_threads = 1;
  AccuConfig parallel_config;
  parallel_config.num_threads = 8;
  ExpectEquivalent(AccuFusion(serial_config).Resolve(db),
                   AccuFusion(parallel_config).Resolve(db));
}

TEST(FusionParallelEquivalenceTest, AccuSimMatchesSerial) {
  ClaimDb db = TestDb();
  AccuConfig serial_config;
  serial_config.similarity_rho = 0.3;
  serial_config.num_threads = 1;
  AccuConfig parallel_config = serial_config;
  parallel_config.num_threads = 8;
  ExpectEquivalent(AccuFusion(serial_config).Resolve(db),
                   AccuFusion(parallel_config).Resolve(db));
}

TEST(FusionParallelEquivalenceTest, AccuCopyMatchesSerial) {
  ClaimDb db = TestDb();
  AccuCopyConfig serial_config;
  serial_config.accu.num_threads = 1;
  serial_config.copy.num_threads = 1;
  AccuCopyConfig parallel_config;
  parallel_config.accu.num_threads = 8;
  parallel_config.copy.num_threads = 8;
  ExpectEquivalent(AccuCopyFusion(serial_config).Resolve(db),
                   AccuCopyFusion(parallel_config).Resolve(db));
}

TEST(FusionParallelEquivalenceTest, DetectCopyingMatchesSerial) {
  ClaimDb db = TestDb();
  AccuConfig accu_config;
  accu_config.num_threads = 1;
  FusionResult bootstrap = AccuFusion(accu_config).Resolve(db);

  CopyDetectionConfig serial_config;
  serial_config.num_threads = 1;
  CopyDetectionConfig parallel_config;
  parallel_config.num_threads = 8;
  std::vector<SourceDependence> serial = DetectCopying(
      db, bootstrap.chosen, bootstrap.source_accuracy, serial_config);
  std::vector<SourceDependence> parallel = DetectCopying(
      db, bootstrap.chosen, bootstrap.source_accuracy, parallel_config);

  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].a, parallel[i].a);
    EXPECT_EQ(serial[i].b, parallel[i].b);
    EXPECT_EQ(serial[i].common_items, parallel[i].common_items);
    EXPECT_EQ(serial[i].shared_true, parallel[i].shared_true);
    EXPECT_EQ(serial[i].shared_false, parallel[i].shared_false);
    EXPECT_EQ(serial[i].different, parallel[i].different);
    EXPECT_EQ(serial[i].likely_copier, parallel[i].likely_copier);
    EXPECT_NEAR(serial[i].probability, parallel[i].probability, 1e-12);
  }
}

// The interned Accu must also reproduce the seed's map-based results: the
// per-item distinct values are iterated in the same lexicographic order,
// so softmax accumulation and argmax tie-breaks are bitwise-compatible.
TEST(FusionParallelEquivalenceTest, InternedValueIndexIsConsistent) {
  ClaimDb mutable_db = TestDb();
  // Read through a const view: the non-const items() accessor invalidates
  // the cached index (callers could mutate claims through it).
  const ClaimDb& db = mutable_db;
  const ValueIndex& vi = db.value_index();
  const std::vector<DataItem>& items = db.items();
  ASSERT_EQ(vi.claim_offset.size(), items.size() + 1);
  for (size_t i = 0; i < items.size(); ++i) {
    ASSERT_EQ(vi.claim_offset[i + 1] - vi.claim_offset[i],
              items[i].claims.size());
    // Distinct values are sorted and every claim maps back to its string.
    size_t d = vi.ItemDistinctCount(i);
    for (size_t local = 0; local + 1 < d; ++local) {
      EXPECT_LT(vi.values[vi.DistinctValue(i, local)],
                vi.values[vi.DistinctValue(i, local + 1)]);
    }
    for (size_t c = 0; c < items[i].claims.size(); ++c) {
      size_t slot = vi.claim_offset[i] + c;
      EXPECT_EQ(vi.values[vi.claim_value[slot]], items[i].claims[c].value);
      EXPECT_EQ(vi.DistinctValue(i, vi.claim_local[slot]),
                vi.claim_value[slot]);
    }
  }
}

}  // namespace
}  // namespace bdi::fusion
