// Crash recovery and admission control of the durable EntityStore
// (src/bdi/serve/store.h, src/bdi/serve/wal.h). The load-bearing claim:
// a store that crashed at ANY point and restarted with the same --wal is
// bitwise-indistinguishable (Snapshot::DebugString, %a hex floats) from
// one that never crashed — through in-process teardown, torn log tails,
// checkpoint rotation, and a real SIGKILL of the CLI binary between
// fsynced batches. The tsan-serving preset runs this whole file.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bdi/common/posix_io.h"
#include "bdi/model/dataset_io.h"
#include "bdi/serve/server.h"
#include "bdi/serve/snapshot.h"
#include "bdi/serve/store.h"
#include "bdi/serve/wire.h"
#include "bdi/storage/dataset_reader.h"
#include "bdi/synth/world.h"

namespace bdi::serve {
namespace {

// Re-interns records [0, count) of `full` into a fresh Dataset — the same
// interning order the live store produces (see
// serve_snapshot_equivalence_test.cc).
Dataset PrefixDataset(const Dataset& full, size_t count) {
  Dataset prefix;
  std::unordered_map<std::string, SourceId> source_ids;
  for (size_t r = 0; r < count; ++r) {
    const Record& record = full.record(static_cast<RecordIdx>(r));
    const std::string& source = full.source(record.source).name;
    auto [it, inserted] = source_ids.emplace(source, kInvalidSource);
    if (inserted) it->second = prefix.AddSource(source);
    std::vector<std::pair<std::string, std::string>> fields;
    for (const Field& field : record.fields) {
      fields.emplace_back(full.attr_name(field.attr), field.value);
    }
    prefix.AddRecord(it->second, fields);
  }
  return prefix;
}

// Records [begin, end) of `full` as one protocol update batch.
std::vector<UpdateRecord> SliceBatch(const Dataset& full, size_t begin,
                                     size_t end) {
  std::vector<UpdateRecord> records;
  for (size_t r = begin; r < end; ++r) {
    const Record& record = full.record(static_cast<RecordIdx>(r));
    UpdateRecord update;
    update.source = full.source(record.source).name;
    for (const Field& field : record.fields) {
      update.fields.emplace_back(full.attr_name(field.attr), field.value);
    }
    records.push_back(std::move(update));
  }
  return records;
}

synth::SyntheticWorld MakeWorld(uint32_t seed) {
  synth::WorldConfig config;
  config.seed = seed;
  config.num_entities = 60;
  config.num_sources = 5;
  return synth::GenerateWorld(config);
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + name;
}

// ---------------------------------------------------------------------------
// ServeRecoveryTest — durability and bitwise crash equivalence.

TEST(ServeRecoveryTest, RestartReplaysWalToBitwiseEqualState) {
  synth::SyntheticWorld world = MakeWorld(2041);
  const Dataset& full = world.dataset;
  const size_t total = full.num_records();
  const size_t bootstrap_count = total / 2;
  constexpr size_t kBatches = 3;
  const size_t batch_size = (total - bootstrap_count) / kBatches;

  const std::string wal_path = TempPath("serve_recovery_replay.wal");
  std::remove(wal_path.c_str());

  StoreConfig durable;
  durable.num_shards = 4;
  durable.wal.path = wal_path;

  StoreConfig plain;
  plain.num_shards = 4;

  // Reference: never crashes, never logs.
  Result<std::unique_ptr<EntityStore>> reference =
      EntityStore::Create(PrefixDataset(full, bootstrap_count), plain);
  ASSERT_TRUE(reference.ok()) << reference.status();

  // Live: logs every batch, then "crashes" (drops the store mid-life; the
  // log was fsynced per batch, so teardown order cannot matter).
  {
    Result<std::unique_ptr<EntityStore>> live =
        EntityStore::Create(PrefixDataset(full, bootstrap_count), durable);
    ASSERT_TRUE(live.ok()) << live.status();
    for (size_t b = 0; b < kBatches; ++b) {
      size_t begin = bootstrap_count + b * batch_size;
      size_t end = (b + 1 == kBatches) ? total : begin + batch_size;
      std::vector<UpdateRecord> batch = SliceBatch(full, begin, end);
      Result<BatchResult> applied = (*live)->ApplyBatch(batch);
      ASSERT_TRUE(applied.ok()) << applied.status();
      EXPECT_EQ(applied->seq, b + 1);
      EXPECT_GE(applied->wal_ms, 0.0);
      Result<BatchResult> ref_applied = (*reference)->ApplyBatch(batch);
      ASSERT_TRUE(ref_applied.ok()) << ref_applied.status();
    }
  }

  // Restart with the same bootstrap + WAL: replay must land bitwise on
  // the never-crashed state.
  Result<std::unique_ptr<EntityStore>> recovered =
      EntityStore::Create(PrefixDataset(full, bootstrap_count), durable);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ((*recovered)->replayed_batches(), kBatches);
  EXPECT_EQ((*recovered)->wal_sequence(), kBatches);
  EXPECT_EQ((*recovered)->num_batches(), kBatches);
  EXPECT_EQ((*recovered)->snapshot()->DebugString(),
            (*reference)->snapshot()->DebugString());

  // And the recovered store keeps going: one more batch on both sides
  // stays equal, with a continuous sequence.
  std::vector<UpdateRecord> extra = SliceBatch(full, 0, 3);
  Result<BatchResult> more = (*recovered)->ApplyBatch(extra);
  ASSERT_TRUE(more.ok()) << more.status();
  EXPECT_EQ(more->seq, kBatches + 1);
  ASSERT_TRUE((*reference)->ApplyBatch(extra).ok());
  EXPECT_EQ((*recovered)->snapshot()->DebugString(),
            (*reference)->snapshot()->DebugString());
}

TEST(ServeRecoveryTest, RotationCheckpointsAndRecoversWithoutBootstrap) {
  synth::SyntheticWorld world = MakeWorld(2042);
  const Dataset& full = world.dataset;
  const size_t total = full.num_records();
  const size_t bootstrap_count = total / 2;
  constexpr size_t kBatches = 3;
  const size_t batch_size = (total - bootstrap_count) / kBatches;

  const std::string wal_path = TempPath("serve_recovery_rotate.wal");
  std::remove(wal_path.c_str());

  StoreConfig durable;
  durable.num_shards = 4;
  durable.wal.path = wal_path;
  durable.wal.rotate_bytes = 1;  // rotate after every batch

  StoreConfig plain;
  plain.num_shards = 4;

  Result<std::unique_ptr<EntityStore>> reference =
      EntityStore::Create(PrefixDataset(full, bootstrap_count), plain);
  ASSERT_TRUE(reference.ok()) << reference.status();

  {
    Result<std::unique_ptr<EntityStore>> live =
        EntityStore::Create(PrefixDataset(full, bootstrap_count), durable);
    ASSERT_TRUE(live.ok()) << live.status();
    for (size_t b = 0; b < kBatches; ++b) {
      size_t begin = bootstrap_count + b * batch_size;
      size_t end = (b + 1 == kBatches) ? total : begin + batch_size;
      std::vector<UpdateRecord> batch = SliceBatch(full, begin, end);
      ASSERT_TRUE((*live)->ApplyBatch(batch).ok());
      ASSERT_TRUE((*reference)->ApplyBatch(batch).ok());
    }
    // Every batch rotated: the log is based on the last sequence and only
    // that checkpoint remains on disk.
    EXPECT_EQ((*live)->wal_base_sequence(), kBatches);
    struct stat st;
    EXPECT_EQ(::stat(WalCheckpointPath(wal_path, kBatches).c_str(), &st), 0);
    for (size_t b = 1; b < kBatches; ++b) {
      EXPECT_NE(::stat(WalCheckpointPath(wal_path, b).c_str(), &st), 0)
          << "stale checkpoint " << b << " survived rotation";
    }
  }

  // Recovery must come entirely from checkpoint + log: hand Create a
  // decoy bootstrap and require the never-crashed state anyway.
  Result<std::unique_ptr<EntityStore>> recovered =
      EntityStore::Create(PrefixDataset(full, 5), durable);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ((*recovered)->wal_base_sequence(), kBatches);
  EXPECT_EQ((*recovered)->replayed_batches(), 0u);
  EXPECT_EQ((*recovered)->wal_sequence(), kBatches);
  EXPECT_EQ((*recovered)->snapshot()->DebugString(),
            (*reference)->snapshot()->DebugString());
}

TEST(ServeRecoveryTest, TornTailIsDroppedAndAppendingResumes) {
  synth::SyntheticWorld world = MakeWorld(2043);
  const Dataset& full = world.dataset;
  const size_t bootstrap_count = full.num_records() / 2;

  const std::string wal_path = TempPath("serve_recovery_torn.wal");
  std::remove(wal_path.c_str());

  StoreConfig durable;
  durable.num_shards = 4;
  durable.wal.path = wal_path;

  std::vector<UpdateRecord> batch =
      SliceBatch(full, bootstrap_count, bootstrap_count + 6);
  std::string clean_state;
  {
    Result<std::unique_ptr<EntityStore>> live =
        EntityStore::Create(PrefixDataset(full, bootstrap_count), durable);
    ASSERT_TRUE(live.ok()) << live.status();
    ASSERT_TRUE((*live)->ApplyBatch(batch).ok());
    clean_state = (*live)->snapshot()->DebugString();
  }

  // Tear the log: a torn append leaves a partial frame at the tail.
  std::string torn_frame;
  AppendWalBatchFrame(2, batch, &torn_frame);
  torn_frame.resize(torn_frame.size() / 2);
  {
    FILE* f = std::fopen(wal_path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(torn_frame.data(), 1, torn_frame.size(), f),
              torn_frame.size());
    std::fclose(f);
  }

  // Recovery drops the torn frame (it was never acknowledged), replays the
  // durable prefix, and the log accepts appends again.
  Result<std::unique_ptr<EntityStore>> recovered =
      EntityStore::Create(PrefixDataset(full, bootstrap_count), durable);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ((*recovered)->replayed_batches(), 1u);
  EXPECT_EQ((*recovered)->snapshot()->DebugString(), clean_state);
  Result<BatchResult> more =
      (*recovered)->ApplyBatch(SliceBatch(full, 0, 3));
  ASSERT_TRUE(more.ok()) << more.status();
  EXPECT_EQ(more->seq, 2u);

  // The repaired log re-parses end to end with no torn tail.
  Result<std::string> bytes = io::ReadFileBytes(wal_path);
  ASSERT_TRUE(bytes.ok());
  Result<WalReplay> replay = ParseWal(*bytes);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->batches.size(), 2u);
  EXPECT_FALSE(replay->truncated_tail);
}

// One protocol update line over the serving wire format.
std::string UpdateLine(long long id,
                       const std::vector<UpdateRecord>& records) {
  std::string out = "{\"op\":\"update\",\"id\":" + std::to_string(id) +
                    ",\"records\":[";
  for (size_t r = 0; r < records.size(); ++r) {
    if (r > 0) out += ",";
    out += "{\"source\":";
    AppendJsonString(&out, records[r].source);
    out += ",\"fields\":{";
    for (size_t f = 0; f < records[r].fields.size(); ++f) {
      if (f > 0) out += ",";
      AppendJsonString(&out, records[r].fields[f].first);
      out += ":";
      AppendJsonString(&out, records[r].fields[f].second);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

// Update batches with guaranteed-unique attribute names per record (the
// wire parser rejects duplicate JSON keys).
std::vector<UpdateRecord> LiveBatch(int salt) {
  std::vector<UpdateRecord> batch;
  for (int r = 0; r < 4; ++r) {
    UpdateRecord record;
    record.source = "live-src-" + std::to_string(r % 2);
    record.fields.emplace_back(
        "name", "crash survivor " + std::to_string(salt) + "-" +
                    std::to_string(r));
    record.fields.emplace_back("weight", std::to_string(100 + salt) + " g");
    batch.push_back(std::move(record));
  }
  return batch;
}

// The full crash drill against the real binary: serve with --wal over
// stdio, ack K update batches (an ack implies the batch was fsynced),
// SIGKILL the process — no shutdown, no flush — restart in-process on the
// same WAL, and require the exact never-crashed DebugString.
TEST(ServeRecoveryTest, SigkilledCliRestartsBitwiseEqual) {
#ifndef BDI_CLI_PATH
  GTEST_SKIP() << "BDI_CLI_PATH not compiled in";
#else
  const char* cli = BDI_CLI_PATH;
  struct stat cli_stat;
  if (::stat(cli, &cli_stat) != 0) {
    GTEST_SKIP() << "CLI binary not built: " << cli;
  }

  synth::SyntheticWorld world = MakeWorld(2044);
  const std::string corpus = TempPath("serve_recovery_cli_corpus.csv");
  ASSERT_TRUE(WriteDatasetCsv(world.dataset, corpus).ok());
  const std::string wal_path = TempPath("serve_recovery_cli.wal");
  std::remove(wal_path.c_str());

  constexpr int kBatches = 3;

  int to_child[2];
  int from_child[2];
  ASSERT_EQ(::pipe(to_child), 0);
  ASSERT_EQ(::pipe(from_child), 0);
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: wire the pipes to stdio and become the CLI. Only
    // async-signal-safe calls before exec.
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    ::execl(cli, cli, "serve", "--in", corpus.c_str(), "--shards", "4",
            "--wal", wal_path.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);

  // Send each batch and wait for its ack before the next — an acked
  // response means the WAL append fsynced, so everything acked must
  // survive the kill.
  std::string acked;
  char chunk[4096];
  size_t acks_seen = 0;
  for (int b = 0; b < kBatches; ++b) {
    std::string line = UpdateLine(b + 1, LiveBatch(b)) + "\n";
    ASSERT_TRUE(io::WriteAllFd(to_child[1], line).ok());
    while (acks_seen <= static_cast<size_t>(b)) {
      Result<size_t> n =
          io::ReadSomeFd(from_child[0], chunk, sizeof(chunk));
      ASSERT_TRUE(n.ok()) << n.status();
      ASSERT_GT(n.value(), 0u) << "server exited early; acked: " << acked;
      acked.append(chunk, n.value());
      acks_seen = 0;
      for (char c : acked) {
        if (c == '\n') ++acks_seen;
      }
    }
  }
  EXPECT_NE(acked.find("\"ok\":true"), std::string::npos) << acked;
  EXPECT_NE(acked.find("\"seq\":" + std::to_string(kBatches)),
            std::string::npos)
      << acked;

  // The kill: no shutdown request, no draining, mid-process death.
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  ::close(to_child[1]);
  ::close(from_child[0]);

  // Reference: a store that never crashed, fed the same bootstrap and the
  // same acked batches.
  Result<Dataset> bootstrap = storage::ReadDatasetAuto(corpus);
  ASSERT_TRUE(bootstrap.ok()) << bootstrap.status();
  StoreConfig plain;
  plain.num_shards = 4;
  Result<std::unique_ptr<EntityStore>> reference =
      EntityStore::Create(std::move(bootstrap.value()), plain);
  ASSERT_TRUE(reference.ok()) << reference.status();
  for (int b = 0; b < kBatches; ++b) {
    ASSERT_TRUE((*reference)->ApplyBatch(LiveBatch(b)).ok());
  }

  // Restart on the killed process's WAL (as the CLI would with the same
  // --wal flag) and compare bitwise.
  Result<Dataset> bootstrap_again = storage::ReadDatasetAuto(corpus);
  ASSERT_TRUE(bootstrap_again.ok());
  StoreConfig durable = plain;
  durable.wal.path = wal_path;
  Result<std::unique_ptr<EntityStore>> recovered = EntityStore::Create(
      std::move(bootstrap_again.value()), durable);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ((*recovered)->replayed_batches(),
            static_cast<uint64_t>(kBatches));
  EXPECT_EQ((*recovered)->snapshot()->DebugString(),
            (*reference)->snapshot()->DebugString());
#endif
}

// ---------------------------------------------------------------------------
// ServeAdmissionTest — bounded in-flight work and structured shedding.

TEST(ServeAdmissionTest, OverLimitBatchIsShedWithoutSideEffects) {
  synth::SyntheticWorld world = MakeWorld(2045);
  const Dataset& full = world.dataset;
  const size_t bootstrap_count = full.num_records() / 2;

  StoreConfig config;
  config.num_shards = 4;
  config.max_pending_records = 4;
  Result<std::unique_ptr<EntityStore>> store =
      EntityStore::Create(PrefixDataset(full, bootstrap_count), config);
  ASSERT_TRUE(store.ok()) << store.status();
  const std::string before = (*store)->snapshot()->DebugString();

  // Five records against a four-record budget: shed, deterministically,
  // even with nothing else in flight.
  BatchRejection rejection;
  Result<BatchResult> shed = (*store)->ApplyBatch(
      SliceBatch(full, bootstrap_count, bootstrap_count + 5), &rejection);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable)
      << shed.status();
  EXPECT_GE(rejection.retry_after_ms, 1.0);
  EXPECT_EQ(rejection.pending_batches, 0u);
  EXPECT_EQ(rejection.pending_records, 0u);
  // Nothing was logged or applied: same snapshot, no sequence consumed,
  // no pending work left behind.
  EXPECT_EQ((*store)->snapshot()->DebugString(), before);
  EXPECT_EQ((*store)->wal_sequence(), 0u);
  EXPECT_EQ((*store)->pending_batches(), 0u);
  EXPECT_EQ((*store)->pending_records(), 0u);

  // A batch within the budget sails through.
  Result<BatchResult> admitted = (*store)->ApplyBatch(
      SliceBatch(full, bootstrap_count, bootstrap_count + 4), &rejection);
  ASSERT_TRUE(admitted.ok()) << admitted.status();
  EXPECT_EQ(admitted->seq, 1u);
  EXPECT_EQ((*store)->pending_batches(), 0u);
}

TEST(ServeAdmissionTest, ServerEncodesStructuredOverloadedResponse) {
  synth::SyntheticWorld world = MakeWorld(2046);
  const Dataset& full = world.dataset;
  const size_t bootstrap_count = full.num_records() / 2;

  StoreConfig config;
  config.num_shards = 4;
  config.max_pending_records = 2;
  Result<std::unique_ptr<EntityStore>> store =
      EntityStore::Create(PrefixDataset(full, bootstrap_count), config);
  ASSERT_TRUE(store.ok()) << store.status();
  Server server(store->get());

  std::string response = server.HandleLine(UpdateLine(7, LiveBatch(0)));
  Result<JsonValue> parsed = ParseJson(response);
  ASSERT_TRUE(parsed.ok()) << response;
  ASSERT_NE(parsed->Find("error"), nullptr) << response;
  EXPECT_EQ(parsed->Find("error")->string, "overloaded");
  EXPECT_DOUBLE_EQ(parsed->Find("id")->number, 7.0);
  ASSERT_NE(parsed->Find("retry_after_ms"), nullptr);
  EXPECT_GE(parsed->Find("retry_after_ms")->number, 1.0);
  ASSERT_NE(parsed->Find("pending_batches"), nullptr);
  ASSERT_NE(parsed->Find("pending_records"), nullptr);

  // A within-budget update through the same wire path succeeds and
  // reports its durable sequence (0 wal_ms: no WAL configured).
  UpdateRecord small;
  small.source = "live-src-0";
  small.fields.emplace_back("name", "small update");
  std::string ok_response = server.HandleLine(UpdateLine(8, {small}));
  Result<JsonValue> ok_parsed = ParseJson(ok_response);
  ASSERT_TRUE(ok_parsed.ok()) << ok_response;
  EXPECT_TRUE(ok_parsed->Find("ok")->boolean) << ok_response;
  ASSERT_NE(ok_parsed->Find("seq"), nullptr);
  EXPECT_DOUBLE_EQ(ok_parsed->Find("seq")->number, 1.0);
}

TEST(ServeAdmissionTest, UnlimitedByDefaultAndEquivalencePreserved) {
  synth::SyntheticWorld world = MakeWorld(2047);
  const Dataset& full = world.dataset;
  const size_t total = full.num_records();
  const size_t bootstrap_count = total / 2;

  // Budgets at the CLI defaults must not change a well-behaved client's
  // results: final state still equals the library-default (unlimited)
  // store.
  StoreConfig bounded;
  bounded.num_shards = 4;
  bounded.max_pending_batches = 32;
  bounded.max_pending_records = 200000;
  StoreConfig unlimited;
  unlimited.num_shards = 4;

  Result<std::unique_ptr<EntityStore>> a =
      EntityStore::Create(PrefixDataset(full, bootstrap_count), bounded);
  Result<std::unique_ptr<EntityStore>> b =
      EntityStore::Create(PrefixDataset(full, bootstrap_count), unlimited);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  std::vector<UpdateRecord> batch = SliceBatch(full, bootstrap_count, total);
  ASSERT_TRUE((*a)->ApplyBatch(batch).ok());
  ASSERT_TRUE((*b)->ApplyBatch(batch).ok());
  EXPECT_EQ((*a)->snapshot()->DebugString(),
            (*b)->snapshot()->DebugString());
}

}  // namespace
}  // namespace bdi::serve
