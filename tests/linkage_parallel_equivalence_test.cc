// Serial-vs-parallel equivalence for the linkage pipeline: the chunked
// matching stage writes each candidate's score into its own slot, so any
// thread count must produce the identical match list (same pairs, bitwise
// equal scores) and identical clustering — the linkage counterpart of the
// fusion determinism contract.
#include "bdi/linkage/linkage.h"

#include <gtest/gtest.h>

#include "bdi/synth/world.h"

namespace bdi::linkage {
namespace {

synth::SyntheticWorld MakeWorld() {
  synth::WorldConfig config;
  config.seed = 7;
  config.num_entities = 200;
  config.num_sources = 14;
  return synth::GenerateWorld(config);
}

void ExpectEquivalent(const LinkageResult& serial,
                      const LinkageResult& parallel) {
  EXPECT_EQ(serial.num_candidates, parallel.num_candidates);
  ASSERT_EQ(serial.matches.size(), parallel.matches.size());
  for (size_t i = 0; i < serial.matches.size(); ++i) {
    EXPECT_EQ(serial.matches[i].pair.a, parallel.matches[i].pair.a)
        << "match " << i;
    EXPECT_EQ(serial.matches[i].pair.b, parallel.matches[i].pair.b)
        << "match " << i;
    // Bitwise equality, not near-equality: the scratch kernels and the
    // chunked schedule are required to preserve the exact arithmetic.
    EXPECT_EQ(serial.matches[i].score, parallel.matches[i].score)
        << "match " << i;
  }
  ASSERT_EQ(serial.clusters.label_of_record.size(),
            parallel.clusters.label_of_record.size());
  for (size_t r = 0; r < serial.clusters.label_of_record.size(); ++r) {
    EXPECT_EQ(serial.clusters.label_of_record[r],
              parallel.clusters.label_of_record[r])
        << "record " << r;
  }
}

LinkageResult RunWith(const synth::SyntheticWorld& world, ScorerKind scorer,
                      size_t num_threads) {
  LinkerConfig config;
  config.scorer = scorer;
  config.num_threads = num_threads;
  Linker linker(&world.dataset, config);
  return linker.Run();
}

TEST(LinkageParallelEquivalenceTest, RuleScorerMatchesSerial) {
  synth::SyntheticWorld world = MakeWorld();
  ExpectEquivalent(RunWith(world, ScorerKind::kRule, 1),
                   RunWith(world, ScorerKind::kRule, 8));
}

TEST(LinkageParallelEquivalenceTest, LinearScorerMatchesSerial) {
  synth::SyntheticWorld world = MakeWorld();
  ExpectEquivalent(RunWith(world, ScorerKind::kLinear, 1),
                   RunWith(world, ScorerKind::kLinear, 8));
}

}  // namespace
}  // namespace bdi::linkage
