#include "bdi/common/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bdi/common/trace.h"

namespace bdi::metrics {
namespace {

/// Every test runs against the process-wide registry, so isolate: zero all
/// instruments before, and leave collection off after.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::Get().Reset();
    SetEnabled(true);
  }

  void TearDown() override {
    SetEnabled(false);
    Registry::Get().Reset();
  }
};

TEST_F(MetricsTest, ConcurrentIncrementsSumExactly) {
  Counter* counter =
      Registry::Get().RegisterCounter("bdi.test.concurrent_adds");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter->Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST_F(MetricsTest, DisabledInstrumentsDoNotRecord) {
  Counter* counter = Registry::Get().RegisterCounter("bdi.test.gated");
  Gauge* gauge = Registry::Get().RegisterGauge("bdi.test.gated_gauge");
  Histogram* histogram =
      Registry::Get().RegisterHistogram("bdi.test.gated_histo", {1.0});
  SetEnabled(false);
  counter->Add(7);
  gauge->Set(7);
  histogram->Observe(0.5);
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(gauge->value(), 0);
  EXPECT_EQ(histogram->count(), 0u);
}

TEST_F(MetricsTest, GaugeSetAddAndHighWaterMark) {
  Gauge* gauge = Registry::Get().RegisterGauge("bdi.test.gauge");
  gauge->Set(5);
  gauge->Add(-2);
  EXPECT_EQ(gauge->value(), 3);
  gauge->SetMax(10);
  EXPECT_EQ(gauge->value(), 10);
  gauge->SetMax(4);  // below the high-water mark: ignored
  EXPECT_EQ(gauge->value(), 10);
}

TEST_F(MetricsTest, HistogramBucketBoundariesAreInclusiveUpper) {
  Histogram* histogram =
      Registry::Get().RegisterHistogram("bdi.test.histo", {1.0, 10.0, 100.0});
  ASSERT_EQ(histogram->bounds().size(), 3u);
  histogram->Observe(0.5);     // bucket 0 (v <= 1)
  histogram->Observe(1.0);     // bucket 0, exactly on the bound
  histogram->Observe(1.5);     // bucket 1
  histogram->Observe(10.0);    // bucket 1, exactly on the bound
  histogram->Observe(100.0);   // bucket 2
  histogram->Observe(1000.0);  // overflow bucket
  EXPECT_EQ(histogram->bucket_count(0), 2u);
  EXPECT_EQ(histogram->bucket_count(1), 2u);
  EXPECT_EQ(histogram->bucket_count(2), 1u);
  EXPECT_EQ(histogram->bucket_count(3), 1u);
  EXPECT_EQ(histogram->count(), 6u);
  EXPECT_DOUBLE_EQ(histogram->sum(), 0.5 + 1.0 + 1.5 + 10.0 + 100.0 + 1000.0);
}

TEST_F(MetricsTest, HistogramConcurrentObservationsLoseNothing) {
  Histogram* histogram =
      Registry::Get().RegisterHistogram("bdi.test.histo_mt", {0.5});
  constexpr int kThreads = 8;
  constexpr int kObsPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram] {
      for (int i = 0; i < kObsPerThread; ++i) histogram->Observe(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  uint64_t total = static_cast<uint64_t>(kThreads) * kObsPerThread;
  EXPECT_EQ(histogram->count(), total);
  EXPECT_EQ(histogram->bucket_count(1), total);
  EXPECT_DOUBLE_EQ(histogram->sum(), static_cast<double>(total));
}

TEST_F(MetricsTest, RegistrationReturnsSameHandleForSameName) {
  Counter* a = Registry::Get().RegisterCounter("bdi.test.same");
  Counter* b = Registry::Get().RegisterCounter("bdi.test.same");
  EXPECT_EQ(a, b);
  // Later bounds on an existing histogram are ignored.
  Histogram* h1 =
      Registry::Get().RegisterHistogram("bdi.test.same_histo", {1.0, 2.0});
  Histogram* h2 =
      Registry::Get().RegisterHistogram("bdi.test.same_histo", {99.0});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2->bounds().size(), 2u);
}

TEST_F(MetricsTest, SnapshotIsSortedAndDeterministic) {
  // Register out of order; snapshots must come back sorted by name.
  Registry::Get().RegisterCounter("bdi.test.zz")->Add(2);
  Registry::Get().RegisterCounter("bdi.test.aa")->Add(1);
  Registry::Get().RegisterGauge("bdi.test.mm")->Set(3);
  Snapshot snapshot = Registry::Get().TakeSnapshot();
  // Registration is permanent (Reset only zeroes), so instruments from
  // other tests may be present too — assert global sortedness plus the
  // relative order of the two counters registered here.
  std::vector<std::string> names;
  for (const CounterSample& c : snapshot.counters) names.push_back(c.name);
  ASSERT_GE(names.size(), 2u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  auto aa = std::find(names.begin(), names.end(), "bdi.test.aa");
  auto zz = std::find(names.begin(), names.end(), "bdi.test.zz");
  ASSERT_NE(aa, names.end());
  ASSERT_NE(zz, names.end());
  EXPECT_LT(aa - names.begin(), zz - names.begin());
  // No intervening updates: serialization is bit-for-bit stable.
  std::string first = Registry::Get().ToJson();
  std::string second = Registry::Get().ToJson();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(first.find("bdi.test.aa"), std::string::npos);
}

TEST_F(MetricsTest, ResetZeroesInstrumentsButKeepsHandles) {
  Counter* counter = Registry::Get().RegisterCounter("bdi.test.reset");
  counter->Add(5);
  Registry::Get().Reset();
  EXPECT_EQ(counter->value(), 0u);
  counter->Add(1);
  EXPECT_EQ(counter->value(), 1u);
}

TEST(StageTraceTest, SpansNestIntoSlashJoinedPaths) {
  Registry::Get().Reset();
  SetEnabled(true);
  {
    trace::StageSpan outer("outer");
    outer.AddItems(10);
    {
      trace::StageSpan inner("inner");
      inner.AddItems(3);
    }
    {
      trace::StageSpan inner("inner");
      inner.AddItems(4);
    }
  }
  std::vector<SpanSample> spans = trace::SnapshotSpans();
  SetEnabled(false);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].calls, 1u);
  EXPECT_EQ(spans[0].items, 10u);
  EXPECT_EQ(spans[1].name, "outer/inner");
  EXPECT_EQ(spans[1].calls, 2u);
  EXPECT_EQ(spans[1].items, 7u);
  EXPECT_GE(spans[0].wall_seconds, spans[1].wall_seconds);
  Registry::Get().Reset();
}

TEST(StageTraceTest, DisabledSpansRecordNothing) {
  Registry::Get().Reset();
  SetEnabled(false);
  {
    trace::StageSpan span("ghost");
    span.AddItems(99);
  }
  EXPECT_TRUE(trace::SnapshotSpans().empty());
}

TEST(StageTraceTest, ConcurrentSpansAggregateAcrossThreads) {
  Registry::Get().Reset();
  SetEnabled(true);
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        trace::StageSpan span("worker");
        span.AddItems(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::vector<SpanSample> spans = trace::SnapshotSpans();
  SetEnabled(false);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "worker");
  EXPECT_EQ(spans[0].calls,
            static_cast<uint64_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(spans[0].items,
            static_cast<uint64_t>(kThreads) * kSpansPerThread);
  Registry::Get().Reset();
}

}  // namespace
}  // namespace bdi::metrics
