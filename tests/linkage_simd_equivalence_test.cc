// Bitwise-equivalence contract for the SIMD-batched matching path: every
// vector dispatch level of the signature bound kernels must produce
// exactly the scalar path's bits, and the batch APIs (ExtractBatch /
// ExtractBoundsBatch / ScoreBatch / ScoreUpperBoundBatch, and the
// Linker's slab path) must produce exactly the single-pair path's bits —
// for all three scorers, serial and parallel. Named *ParallelEquivalence*
// so the tsan/asan equivalence ctest presets pick it up.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "bdi/common/cpu.h"
#include "bdi/linkage/linkage.h"
#include "bdi/synth/world.h"
#include "bdi/text/interner.h"
#include "bdi/text/similarity.h"

namespace bdi::linkage {
namespace {

/// Levels the running hardware can execute (always includes kScalar).
std::vector<cpu::SimdLevel> SupportedLevels() {
  std::vector<cpu::SimdLevel> levels = {cpu::SimdLevel::kScalar};
  if (cpu::DetectedSimdLevel() >= cpu::SimdLevel::kSse2) {
    levels.push_back(cpu::SimdLevel::kSse2);
  }
  if (cpu::DetectedSimdLevel() >= cpu::SimdLevel::kAvx2) {
    levels.push_back(cpu::SimdLevel::kAvx2);
  }
  return levels;
}

/// Restores the detected dispatch level when a test scope ends, so a
/// failing assertion cannot leak a pinned level into later tests.
struct SimdLevelGuard {
  ~SimdLevelGuard() { cpu::SetSimdLevel(cpu::DetectedSimdLevel()); }
};

// The signature bound kernels at every dispatch level must return the
// scalar path's exact bits. The fuzz corpus mixes short sparse tokens
// (which take the scalar mask-walk even at vector levels) with long
// dense tokens (past the vector cutover, so the SSE2/AVX2 reductions
// actually execute).
TEST(LinkageSimdParallelEquivalenceTest, BoundKernelsBitwiseAcrossLevels) {
  SimdLevelGuard guard;
  std::mt19937 rng(99);
  std::uniform_int_distribution<int> short_len(0, 8);
  std::uniform_int_distribution<int> long_len(16, 48);
  const std::string alphabet = "abcdefghijklmnopqrstuvwxyz019-.";
  std::uniform_int_distribution<size_t> char_dist(0, alphabet.size() - 1);
  auto random_token = [&](bool dense) {
    int n = dense ? long_len(rng) : short_len(rng);
    std::string t(static_cast<size_t>(n), ' ');
    for (char& c : t) c = alphabet[char_dist(rng)];
    return t;
  };
  std::vector<cpu::SimdLevel> levels = SupportedLevels();
  for (int iter = 0; iter < 2000; ++iter) {
    bool dense = (iter % 2) == 0;
    text::TokenSignature sx = text::MakeTokenSignature(random_token(dense));
    text::TokenSignature sy = text::MakeTokenSignature(random_token(dense));
    cpu::SetSimdLevel(cpu::SimdLevel::kScalar);
    size_t jaro_scalar = text::JaroMatchUpperBound(sx, sy);
    size_t edit_scalar = text::EditDistanceLowerBound(sx, sy);
    double jw_scalar = text::JaroWinklerUpperBound(sx, sy);
    double ned_scalar = text::NormalizedEditSimilarityUpperBound(sx, sy);
    for (cpu::SimdLevel level : levels) {
      cpu::SetSimdLevel(level);
      const char* name = cpu::SimdLevelName(level);
      // Integer bounds exactly; the double bounds are built from the same
      // integers, so EXPECT_EQ (not NEAR) is the contract.
      EXPECT_EQ(text::JaroMatchUpperBound(sx, sy), jaro_scalar) << name;
      EXPECT_EQ(text::EditDistanceLowerBound(sx, sy), edit_scalar) << name;
      EXPECT_EQ(text::JaroWinklerUpperBound(sx, sy), jw_scalar) << name;
      EXPECT_EQ(text::NormalizedEditSimilarityUpperBound(sx, sy), ned_scalar)
          << name;
    }
  }
}

// The Monge-Elkan bound over token sequences, same contract: every
// dispatch level returns the scalar bits. Each level gets a fresh
// scratch so nothing carried over can mask a divergence.
TEST(LinkageSimdParallelEquivalenceTest, MongeElkanBoundBitwiseAcrossLevels) {
  SimdLevelGuard guard;
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> seq_len(0, 6);
  std::uniform_int_distribution<int> token_len(1, 24);
  const std::string alphabet = "abcdefgh0123-";
  std::uniform_int_distribution<size_t> char_dist(0, alphabet.size() - 1);
  auto random_token = [&]() {
    std::string t(static_cast<size_t>(token_len(rng)), ' ');
    for (char& c : t) c = alphabet[char_dist(rng)];
    return t;
  };
  std::vector<cpu::SimdLevel> levels = SupportedLevels();
  for (int iter = 0; iter < 300; ++iter) {
    text::TokenInterner interner;
    std::vector<text::TokenId> a, b;
    for (int i = 0, n = seq_len(rng); i < n; ++i) {
      a.push_back(interner.Intern(random_token()));
    }
    for (int i = 0, n = seq_len(rng); i < n; ++i) {
      b.push_back(interner.Intern(random_token()));
    }
    std::vector<text::TokenSignature> signatures;
    for (text::TokenId id = 0; id < interner.size(); ++id) {
      signatures.push_back(text::MakeTokenSignature(interner.token(id)));
    }
    cpu::SetSimdLevel(cpu::SimdLevel::kScalar);
    text::SimilarityScratch scalar_scratch;
    double scalar =
        text::SymmetricMongeElkanUpperBound(signatures, a, b, scalar_scratch);
    for (cpu::SimdLevel level : levels) {
      cpu::SetSimdLevel(level);
      text::SimilarityScratch scratch;
      EXPECT_EQ(
          text::SymmetricMongeElkanUpperBound(signatures, a, b, scratch),
          scalar)
          << cpu::SimdLevelName(level) << " iter " << iter;
    }
  }
}

synth::SyntheticWorld MakeWorld() {
  synth::WorldConfig config;
  config.seed = 23;
  config.num_entities = 150;
  config.num_sources = 12;
  return synth::GenerateWorld(config);
}

// Batch extraction must equal single-pair extraction lane for lane — for
// the bound features and the full features — and every scorer's batch
// forms must equal its single forms.
TEST(LinkageSimdParallelEquivalenceTest, BatchExtractionMatchesSinglePair) {
  synth::SyntheticWorld world = MakeWorld();
  Linker linker(&world.dataset, {});
  linker.Run();
  const FeatureExtractor& extractor = linker.extractor();
  const std::vector<CandidatePair>& candidates = linker.last_candidates();
  ASSERT_FALSE(candidates.empty());
  size_t n = std::min<size_t>(candidates.size(), 4096);
  std::vector<RecordIdx> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = candidates[i].a;
    b[i] = candidates[i].b;
  }
  // Separate scratches per side: a shared one would be fine (memo hits
  // replay exact bits), but separate ones prove the stronger claim.
  text::SimilarityScratch batch_scratch, single_scratch;
  std::vector<PairFeatures> batch_features(n), batch_bounds(n);
  extractor.ExtractBatch(a.data(), b.data(), n, batch_features.data(),
                         batch_scratch);
  extractor.ExtractBoundsBatch(a.data(), b.data(), n, batch_bounds.data(),
                               batch_scratch);
  LinearScorer linear;
  RuleScorer rule;
  LearnedScorer learned;
  const PairScorer* scorers[] = {&linear, &rule, &learned};
  for (size_t i = 0; i < n; ++i) {
    PairFeatures single = extractor.Extract(a[i], b[i], single_scratch);
    PairFeatures bounds = extractor.ExtractBounds(a[i], b[i], single_scratch);
    auto batch_f = batch_features[i].AsArray(), single_f = single.AsArray();
    auto batch_b = batch_bounds[i].AsArray(), single_b = bounds.AsArray();
    for (size_t k = 0; k < PairFeatures::kCount; ++k) {
      ASSERT_EQ(batch_f[k], single_f[k]) << "lane " << i << " feature " << k;
      ASSERT_EQ(batch_b[k], single_b[k]) << "lane " << i << " bound " << k;
    }
    for (const PairScorer* scorer : scorers) {
      double score_batch, bound_batch;
      scorer->ScoreBatch(&batch_features[i], 1, &score_batch);
      scorer->ScoreUpperBoundBatch(&batch_bounds[i], 1, &bound_batch);
      ASSERT_EQ(score_batch, scorer->Score(single))
          << scorer->name() << " lane " << i;
      ASSERT_EQ(bound_batch, scorer->ScoreUpperBound(bounds))
          << scorer->name() << " lane " << i;
    }
  }
}

void ExpectSameResult(const LinkageResult& x, const LinkageResult& y) {
  EXPECT_EQ(x.num_candidates, y.num_candidates);
  ASSERT_EQ(x.matches.size(), y.matches.size());
  for (size_t i = 0; i < x.matches.size(); ++i) {
    EXPECT_EQ(x.matches[i].pair.a, y.matches[i].pair.a) << "match " << i;
    EXPECT_EQ(x.matches[i].pair.b, y.matches[i].pair.b) << "match " << i;
    EXPECT_EQ(x.matches[i].score, y.matches[i].score) << "match " << i;
  }
  ASSERT_EQ(x.clusters.label_of_record.size(),
            y.clusters.label_of_record.size());
  for (size_t r = 0; r < x.clusters.label_of_record.size(); ++r) {
    EXPECT_EQ(x.clusters.label_of_record[r], y.clusters.label_of_record[r])
        << "record " << r;
  }
}

LinkageResult RunWith(const synth::SyntheticWorld& world, ScorerKind scorer,
                      size_t num_threads, bool use_batch) {
  LinkerConfig config;
  config.scorer = scorer;
  config.num_threads = num_threads;
  config.use_batch = use_batch;
  Linker linker(&world.dataset, config);
  return linker.Run();
}

// The slab path must produce the per-pair path's exact result for every
// scorer — serial, and with the slab pool exercised by 8 threads.
TEST(LinkageSimdParallelEquivalenceTest, SlabPathMatchesPerPair) {
  synth::SyntheticWorld world = MakeWorld();
  for (ScorerKind kind :
       {ScorerKind::kRule, ScorerKind::kLinear, ScorerKind::kLearned}) {
    LinkageResult per_pair = RunWith(world, kind, 1, false);
    ExpectSameResult(per_pair, RunWith(world, kind, 1, true));
    ExpectSameResult(per_pair, RunWith(world, kind, 8, true));
  }
}

// End-to-end dispatch-level equivalence: a full linkage run pinned to
// scalar must equal the run at the detected level (the whole pipeline,
// not just the kernels, is dispatch-invariant).
TEST(LinkageSimdParallelEquivalenceTest, LinkageRunBitwiseAcrossLevels) {
  SimdLevelGuard guard;
  synth::SyntheticWorld world = MakeWorld();
  cpu::SetSimdLevel(cpu::SimdLevel::kScalar);
  LinkageResult scalar = RunWith(world, ScorerKind::kRule, 1, true);
  for (cpu::SimdLevel level : SupportedLevels()) {
    cpu::SetSimdLevel(level);
    ExpectSameResult(scalar, RunWith(world, ScorerKind::kRule, 1, true));
  }
}

}  // namespace
}  // namespace bdi::linkage
