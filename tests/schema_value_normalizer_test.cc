#include "bdi/schema/value_normalizer.h"

#include <gtest/gtest.h>

#include "bdi/common/random.h"
#include "bdi/common/string_util.h"

namespace bdi::schema {
namespace {

/// Two sources publish "weight": s0 in grams, s1 in ounces; s0 has more
/// records so grams must be the canonical unit.
struct UnitFixture {
  Dataset dataset;
  AttributeStatistics stats;
  MediatedSchema schema;
  SourceAttr grams_attr;
  SourceAttr ounces_attr;

  UnitFixture() {
    SourceId s0 = dataset.AddSource("grams");
    SourceId s1 = dataset.AddSource("ounces");
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
      double v = rng.UniformDouble(100, 1500);
      dataset.AddRecord(s0, {{"weight", FormatDouble(v, 2) + " g"}});
      if (i < 80) {
        double w = rng.UniformDouble(100, 1500);
        dataset.AddRecord(s1,
                          {{"weight", FormatDouble(w / 28.35, 2) + " oz"}});
      }
    }
    stats = AttributeStatistics::Compute(dataset);
    AttrId weight = dataset.FindAttr("weight").value();
    grams_attr = SourceAttr{0, weight};
    ounces_attr = SourceAttr{1, weight};
    schema.clusters = {{grams_attr, ounces_attr}};
    schema.cluster_of[grams_attr] = 0;
    schema.cluster_of[ounces_attr] = 0;
    schema.cluster_names = {"weight"};
  }
};

TEST(ValueNormalizerTest, DiscoversUnitConversion) {
  UnitFixture fx;
  ValueNormalizer normalizer = ValueNormalizer::Fit(fx.stats, fx.schema);
  EXPECT_TRUE(normalizer.IsNumeric(fx.grams_attr));
  EXPECT_TRUE(normalizer.IsNumeric(fx.ounces_attr));
  // Grams dominate: grams stay put, ounces are multiplied by 28.35.
  EXPECT_DOUBLE_EQ(normalizer.ScaleOf(fx.grams_attr), 1.0);
  EXPECT_NEAR(normalizer.ScaleOf(fx.ounces_attr), 28.35, 1e-9);
}

TEST(ValueNormalizerTest, NormalizeConvertsNumeric) {
  UnitFixture fx;
  ValueNormalizer normalizer = ValueNormalizer::Fit(fx.stats, fx.schema);
  std::string converted = normalizer.Normalize(fx.ounces_attr, "10 oz");
  double v = 0.0;
  ASSERT_TRUE(ParseLeadingDouble(converted, &v, nullptr));
  EXPECT_NEAR(v, 283.5, 0.01);
  // The dominant unit's values pass through unchanged.
  EXPECT_EQ(normalizer.Normalize(fx.grams_attr, "118.25 g"), "118.25");
}

TEST(ValueNormalizerTest, StringAttributesLowercased) {
  Dataset dataset;
  SourceId s0 = dataset.AddSource("s0");
  SourceId s1 = dataset.AddSource("s1");
  for (int i = 0; i < 4; ++i) {
    dataset.AddRecord(s0, {{"color", "RED  Apple"}});
    dataset.AddRecord(s1, {{"colour", "red apple"}});
  }
  AttributeStatistics stats = AttributeStatistics::Compute(dataset);
  MediatedSchema schema;
  SourceAttr a{0, dataset.FindAttr("color").value()};
  SourceAttr b{1, dataset.FindAttr("colour").value()};
  schema.clusters = {{a, b}};
  schema.cluster_of[a] = 0;
  schema.cluster_of[b] = 0;
  ValueNormalizer normalizer = ValueNormalizer::Fit(stats, schema);
  EXPECT_FALSE(normalizer.IsNumeric(a));
  EXPECT_EQ(normalizer.Normalize(a, "RED  Apple"), "red apple");
  EXPECT_EQ(normalizer.Normalize(a, "RED  Apple"),
            normalizer.Normalize(b, "red apple"));
}

TEST(ValueNormalizerTest, UnknownAttrGetsStringNormalization) {
  ValueNormalizer normalizer;
  EXPECT_EQ(normalizer.Normalize(SourceAttr{9, 9}, " MiXeD  Case "),
            "mixed case");
  EXPECT_DOUBLE_EQ(normalizer.ScaleOf(SourceAttr{9, 9}), 1.0);
  EXPECT_FALSE(normalizer.IsNumeric(SourceAttr{9, 9}));
}

TEST(ValueNormalizerTest, NonParseableNumericFallsBack) {
  UnitFixture fx;
  ValueNormalizer normalizer = ValueNormalizer::Fit(fx.stats, fx.schema);
  EXPECT_EQ(normalizer.Normalize(fx.ounces_attr, "N/A"), "n/a");
}

TEST(ValueNormalizerTest, SameUnitClusterKeepsScaleOne) {
  Dataset dataset;
  SourceId s0 = dataset.AddSource("s0");
  SourceId s1 = dataset.AddSource("s1");
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    dataset.AddRecord(
        s0, {{"zoom", FormatDouble(rng.UniformDouble(1, 60), 2)}});
    dataset.AddRecord(
        s1, {{"zoom x", FormatDouble(rng.UniformDouble(1, 60), 2)}});
  }
  AttributeStatistics stats = AttributeStatistics::Compute(dataset);
  MediatedSchema schema;
  SourceAttr a{0, dataset.FindAttr("zoom").value()};
  SourceAttr b{1, dataset.FindAttr("zoom x").value()};
  schema.clusters = {{a, b}};
  schema.cluster_of[a] = 0;
  schema.cluster_of[b] = 0;
  ValueNormalizer normalizer = ValueNormalizer::Fit(stats, schema);
  EXPECT_DOUBLE_EQ(normalizer.ScaleOf(a), 1.0);
  EXPECT_DOUBLE_EQ(normalizer.ScaleOf(b), 1.0);
}

TEST(ValueNormalizerTest, MixedClusterMajorityDecidesType) {
  // A cluster whose members are mostly categorical stays string-typed.
  Dataset dataset;
  SourceId s0 = dataset.AddSource("s0");
  SourceId s1 = dataset.AddSource("s1");
  SourceId s2 = dataset.AddSource("s2");
  for (int i = 0; i < 10; ++i) {
    dataset.AddRecord(s0, {{"k", "alpha"}});
    dataset.AddRecord(s1, {{"k", "beta"}});
    dataset.AddRecord(s2, {{"k", std::to_string(i)}});
  }
  AttributeStatistics stats = AttributeStatistics::Compute(dataset);
  AttrId k = dataset.FindAttr("k").value();
  MediatedSchema schema;
  schema.clusters = {{SourceAttr{0, k}, SourceAttr{1, k}, SourceAttr{2, k}}};
  for (const SourceAttr& sa : schema.clusters[0]) schema.cluster_of[sa] = 0;
  ValueNormalizer normalizer = ValueNormalizer::Fit(stats, schema);
  EXPECT_FALSE(normalizer.IsNumeric(SourceAttr{0, k}));
  EXPECT_FALSE(normalizer.IsNumeric(SourceAttr{2, k}));
}

}  // namespace
}  // namespace bdi::schema
