// Cross-cutting randomized invariants: algebraic properties that must
// survive any refactoring, checked over fuzzed inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "bdi/common/logging.h"
#include "bdi/common/random.h"
#include "bdi/fusion/accu.h"
#include "bdi/fusion/fusion.h"
#include "bdi/linkage/blocking.h"
#include "bdi/schema/mediated_schema.h"
#include "bdi/synth/world.h"

namespace bdi {
namespace {

// --- Fusion: claim order must not matter -------------------------------

fusion::ClaimDb RandomClaimDb(Rng* rng, int items, int sources) {
  fusion::ClaimDb db;
  db.set_num_sources(sources);
  for (int i = 0; i < items; ++i) {
    fusion::DataItem item;
    item.entity = i;
    item.attr = 2;
    for (int s = 0; s < sources; ++s) {
      if (rng->Bernoulli(0.7)) {
        item.claims.push_back(
            {s, "v" + std::to_string(rng->UniformInt(0, 3))});
      }
    }
    if (!item.claims.empty()) db.AddItem(item);
  }
  return db;
}

class FusionPermutationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FusionPermutationTest, ClaimOrderInvariant) {
  Rng rng(GetParam());
  fusion::ClaimDb db = RandomClaimDb(&rng, 30, 8);
  fusion::ClaimDb shuffled = db;
  Rng shuffle_rng(GetParam() + 1);
  for (fusion::DataItem& item : shuffled.items()) {
    shuffle_rng.Shuffle(&item.claims);
  }
  for (int variant = 0; variant < 2; ++variant) {
    std::unique_ptr<fusion::FusionMethod> method;
    if (variant == 0) {
      method = std::make_unique<fusion::VoteFusion>();
    } else {
      method = std::make_unique<fusion::AccuFusion>();
    }
    fusion::FusionResult a = method->Resolve(db);
    fusion::FusionResult b = method->Resolve(shuffled);
    EXPECT_EQ(a.chosen, b.chosen) << method->name();
    for (size_t s = 0; s < a.source_accuracy.size(); ++s) {
      EXPECT_NEAR(a.source_accuracy[s], b.source_accuracy[s], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusionPermutationTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --- Mediated schema: always a partition --------------------------------

class SchemaPartitionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchemaPartitionTest, RandomEdgesYieldPartition) {
  synth::WorldConfig config;
  config.seed = GetParam();
  config.num_entities = 40;
  config.num_sources = 5;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  schema::AttributeStatistics stats =
      schema::AttributeStatistics::Compute(world.dataset);

  // Fuzzed edges with random scores (not the matcher's).
  Rng rng(GetParam() * 7 + 1);
  std::vector<schema::AttrEdge> edges;
  for (int e = 0; e < 200; ++e) {
    size_t a = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(stats.profiles().size()) - 1));
    size_t b = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(stats.profiles().size()) - 1));
    if (a == b) continue;
    edges.push_back({std::min(a, b), std::max(a, b), rng.UniformDouble()});
  }

  for (schema::ClusterMethod method :
       {schema::ClusterMethod::kConnectedComponents,
        schema::ClusterMethod::kCenter}) {
    schema::MediatedSchemaConfig msc;
    msc.threshold = 0.5;
    msc.method = method;
    schema::MediatedSchema schema =
        schema::BuildMediatedSchema(stats, edges, msc);
    // Partition: every profile appears in exactly one cluster.
    size_t members = 0;
    for (const auto& cluster : schema.clusters) {
      EXPECT_FALSE(cluster.empty());
      members += cluster.size();
      for (const SourceAttr& sa : cluster) {
        EXPECT_EQ(schema.ClusterOf(sa),
                  schema.ClusterOf(cluster.front()));
      }
    }
    EXPECT_EQ(members, stats.profiles().size());
    EXPECT_EQ(schema.cluster_names.size(), schema.clusters.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchemaPartitionTest,
                         ::testing::Values(11u, 12u, 13u));

// --- Blocking: pair lists are canonical ---------------------------------

class BlockingCanonicalTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BlockingCanonicalTest, PairsSortedUniqueCrossSource) {
  synth::WorldConfig config;
  config.seed = GetParam();
  config.num_entities = 60;
  config.num_sources = 6;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  linkage::TokenBlocker blocker;
  std::vector<linkage::Block> blocks =
      blocker.MakeBlocksAll(world.dataset, nullptr);
  std::vector<linkage::CandidatePair> pairs =
      linkage::BlocksToPairs(world.dataset, blocks);
  EXPECT_TRUE(std::is_sorted(pairs.begin(), pairs.end()));
  EXPECT_EQ(std::adjacent_find(pairs.begin(), pairs.end()), pairs.end());
  for (const linkage::CandidatePair& pair : pairs) {
    EXPECT_LT(pair.a, pair.b);
    EXPECT_NE(world.dataset.record(pair.a).source,
              world.dataset.record(pair.b).source);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockingCanonicalTest,
                         ::testing::Values(21u, 22u, 23u));

// --- Logging -------------------------------------------------------------

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(before);
}

TEST(LoggingTest, MacroCompilesAndFilters) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // Dropped message: the stream expression must still be well-formed.
  BDI_LOG(kInfo) << "this line is filtered " << 42;
  SetLogLevel(before);
}

TEST(LoggingDeathTest, CheckAborts) {
  EXPECT_DEATH({ BDI_CHECK(1 == 2) << "boom"; }, "Check failed");
}

}  // namespace
}  // namespace bdi
