#include "bdi/text/tokenizer.h"

#include <gtest/gtest.h>

namespace bdi::text {
namespace {

TEST(TokenizerTest, WordTokensLowercaseAndSplit) {
  EXPECT_EQ(WordTokens("Canon EOS-5D Mark IV"),
            (std::vector<std::string>{"canon", "eos", "5d", "mark", "iv"}));
}

TEST(TokenizerTest, WordTokensEmptyAndPunctuation) {
  EXPECT_TRUE(WordTokens("").empty());
  EXPECT_TRUE(WordTokens("-- !! ..").empty());
}

TEST(TokenizerTest, WordTokensKeepDigits) {
  EXPECT_EQ(WordTokens("a1b2"), (std::vector<std::string>{"a1b2"}));
}

TEST(TokenizerTest, QGramsBasic) {
  EXPECT_EQ(QGrams("abcd", 3), (std::vector<std::string>{"abc", "bcd"}));
  EXPECT_EQ(QGrams("ab", 3), (std::vector<std::string>{"ab"}));
  EXPECT_TRUE(QGrams("", 3).empty());
}

TEST(TokenizerTest, QGramsLowercases) {
  EXPECT_EQ(QGrams("ABC", 2), (std::vector<std::string>{"ab", "bc"}));
}

TEST(TokenizerTest, QGramsClampQ) {
  // q < 1 behaves as q = 1.
  EXPECT_EQ(QGrams("ab", 0), (std::vector<std::string>{"a", "b"}));
}

TEST(TokenizerTest, TokenSetSortedUnique) {
  EXPECT_EQ(TokenSet("b a b c a"),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(TokenizerTest, IdentifierTokensRequireDigitAndLength) {
  std::vector<std::string> ids =
      IdentifierTokens("Canon sku12345 eos 5d mark", 4);
  EXPECT_EQ(ids, (std::vector<std::string>{"sku12345"}));
}

TEST(TokenizerTest, IdentifierTokensMinLen) {
  EXPECT_TRUE(IdentifierTokens("ab1", 4).empty());
  EXPECT_EQ(IdentifierTokens("ab1", 3),
            (std::vector<std::string>{"ab1"}));
}

TEST(TokenizerTest, IdentifierTokensDeduplicated) {
  EXPECT_EQ(IdentifierTokens("x9999 x9999", 4),
            (std::vector<std::string>{"x9999"}));
}

TEST(TokenizerTest, IdentifierTokensRejectPureAlpha) {
  EXPECT_TRUE(IdentifierTokens("alphabet keyboard", 4).empty());
}

}  // namespace
}  // namespace bdi::text
