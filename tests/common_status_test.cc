#include "bdi/common/status.h"

#include <gtest/gtest.h>

#include "bdi/common/result.h"

namespace bdi {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 8; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, StreamInsertionMatchesToString) {
  std::ostringstream os;
  os << Status::IOError("disk");
  EXPECT_EQ(os.str(), "IOError: disk");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chained(int x) {
  BDI_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(3).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  BDI_ASSIGN_OR_RETURN(int half, HalfOf(x));
  return HalfOf(half);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = QuarterOf(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  Result<int> bad = QuarterOf(6);  // 6/2 = 3 is odd
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace bdi
