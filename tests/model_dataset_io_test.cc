#include "bdi/model/dataset_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "bdi/common/csv.h"
#include "bdi/synth/world.h"

namespace bdi {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(DatasetIoTest, RoundTripSmall) {
  Dataset dataset;
  SourceId a = dataset.AddSource("a.com");
  SourceId b = dataset.AddSource("b.com");
  dataset.AddRecord(a, {{"name", "Widget, deluxe"}, {"color", "red"}});
  dataset.AddRecord(b, {{"title", "with \"quotes\""}});
  dataset.AddRecord(a, {{"name", "Second"}});

  std::string path = TempPath("dataset_roundtrip.csv");
  ASSERT_TRUE(WriteDatasetCsv(dataset, path).ok());
  Result<Dataset> loaded = ReadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_records(), 3u);
  ASSERT_EQ(loaded->num_sources(), 2u);
  EXPECT_EQ(loaded->record(0).fields.size(), 2u);
  EXPECT_EQ(loaded->record(0).fields[0].value, "Widget, deluxe");
  EXPECT_EQ(loaded->record(1).fields[0].value, "with \"quotes\"");
  EXPECT_EQ(loaded->source(loaded->record(2).source).name, "a.com");
  std::remove(path.c_str());
}

TEST(DatasetIoTest, RoundTripGeneratedWorld) {
  synth::WorldConfig config;
  config.seed = 701;
  config.num_entities = 60;
  config.num_sources = 5;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  std::string path = TempPath("world_roundtrip.csv");
  ASSERT_TRUE(WriteDatasetCsv(world.dataset, path).ok());
  Result<Dataset> loaded = ReadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_records(), world.dataset.num_records());
  ASSERT_EQ(loaded->num_sources(), world.dataset.num_sources());
  for (size_t r = 0; r < loaded->num_records(); ++r) {
    const Record& original = world.dataset.record(static_cast<RecordIdx>(r));
    const Record& copy = loaded->record(static_cast<RecordIdx>(r));
    ASSERT_EQ(original.fields.size(), copy.fields.size()) << r;
    for (size_t f = 0; f < original.fields.size(); ++f) {
      EXPECT_EQ(world.dataset.attr_name(original.fields[f].attr),
                loaded->attr_name(copy.fields[f].attr));
      EXPECT_EQ(original.fields[f].value, copy.fields[f].value);
    }
  }
  std::remove(path.c_str());
}

TEST(DatasetIoTest, RejectsBadHeader) {
  std::string path = TempPath("bad_header.csv");
  ASSERT_TRUE(WriteCsvFile(path, {{"wrong", "header"}}).ok());
  Result<Dataset> loaded = ReadDatasetCsv(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, RejectsShortRow) {
  std::string path = TempPath("short_row.csv");
  ASSERT_TRUE(WriteCsvFile(path, {{"source", "record", "attribute", "value"},
                                  {"a", "0", "x"}})
                  .ok());
  EXPECT_FALSE(ReadDatasetCsv(path).ok());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, RejectsRecordSpanningSources) {
  std::string path = TempPath("span.csv");
  ASSERT_TRUE(WriteCsvFile(path, {{"source", "record", "attribute", "value"},
                                  {"a", "0", "x", "1"},
                                  {"b", "0", "y", "2"}})
                  .ok());
  EXPECT_FALSE(ReadDatasetCsv(path).ok());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MissingFile) {
  EXPECT_FALSE(ReadDatasetCsv("/no/such/file.csv").ok());
}

TEST(DatasetIoTest, RoundTripsValuesWithEmbeddedNewlines) {
  Dataset dataset;
  SourceId a = dataset.AddSource("a.com");
  dataset.AddRecord(a, {{"desc", "line one\nline two"},
                        {"name", "plain"}});
  dataset.AddRecord(a, {{"desc", "cr\r\nlf"}});
  std::string path = TempPath("newline_roundtrip.csv");
  ASSERT_TRUE(WriteDatasetCsv(dataset, path).ok());
  Result<Dataset> loaded = ReadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->num_records(), 2u);
  EXPECT_EQ(loaded->record(0).fields[0].value, "line one\nline two");
  EXPECT_EQ(loaded->record(1).fields[0].value, "cr\r\nlf");
  std::remove(path.c_str());
}

TEST(DatasetIoTest, RejectsNonIntegerRecordIdWithRowContext) {
  std::string path = TempPath("bad_record_id.csv");
  ASSERT_TRUE(WriteCsvFile(path, {{"source", "record", "attribute", "value"},
                                  {"a", "0", "x", "1"},
                                  {"a", "zero", "y", "2"}})
                  .ok());
  Result<Dataset> loaded = ReadDatasetCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("row 3"), std::string::npos);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, RejectsNegativeRecordId) {
  std::string path = TempPath("neg_record_id.csv");
  ASSERT_TRUE(WriteCsvFile(path, {{"source", "record", "attribute", "value"},
                                  {"a", "-1", "x", "1"}})
                  .ok());
  Result<Dataset> loaded = ReadDatasetCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, RejectsUnterminatedQuoteAsStatus) {
  std::string path = TempPath("unterminated.csv");
  std::ofstream out(path);
  out << "source,record,attribute,value\na,0,x,\"oops\n";
  out.close();
  Result<Dataset> loaded = ReadDatasetCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(LabelsIoTest, RoundTrip) {
  std::vector<EntityId> labels = {4, 2, 2, 7, 0};
  std::string path = TempPath("labels.csv");
  ASSERT_TRUE(WriteLabelsCsv(labels, path).ok());
  Result<std::vector<EntityId>> loaded = ReadLabelsCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), labels);
  std::remove(path.c_str());
}

TEST(LabelsIoTest, RejectsNonInteger) {
  std::string path = TempPath("labels_bad.csv");
  ASSERT_TRUE(
      WriteCsvFile(path, {{"record", "entity"}, {"0", "abc"}}).ok());
  EXPECT_FALSE(ReadLabelsCsv(path).ok());
  std::remove(path.c_str());
}

TEST(LabelsIoTest, RejectsOutOfRangeRecord) {
  std::string path = TempPath("labels_oor.csv");
  ASSERT_TRUE(
      WriteCsvFile(path, {{"record", "entity"}, {"5", "1"}}).ok());
  EXPECT_FALSE(ReadLabelsCsv(path).ok());
  std::remove(path.c_str());
}

TEST(LabelsIoTest, RejectsEntityBelowInvalidSentinel) {
  std::string path = TempPath("labels_neg.csv");
  ASSERT_TRUE(
      WriteCsvFile(path, {{"record", "entity"}, {"0", "-2"}}).ok());
  Result<std::vector<EntityId>> loaded = ReadLabelsCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST(LabelsIoTest, AcceptsInvalidEntitySentinel) {
  std::string path = TempPath("labels_sentinel.csv");
  ASSERT_TRUE(
      WriteCsvFile(path, {{"record", "entity"}, {"0", "-1"}}).ok());
  Result<std::vector<EntityId>> loaded = ReadLabelsCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), (std::vector<EntityId>{kInvalidEntity}));
  std::remove(path.c_str());
}

TEST(LabelsIoTest, RejectsEntityAboveInt32WithRowContext) {
  std::string path = TempPath("labels_big.csv");
  ASSERT_TRUE(
      WriteCsvFile(path, {{"record", "entity"}, {"0", "4294967296"}}).ok());
  Result<std::vector<EntityId>> loaded = ReadLabelsCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(loaded.status().message().find("row 2"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bdi
