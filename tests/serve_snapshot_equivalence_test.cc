// The serving layer's two load-bearing guarantees, tested together under
// real concurrency (and under the tsan preset, see tsan-serving):
//
//  1. Snapshot consistency: N reader threads query the EntityStore while a
//     writer applies K update batches. Every answer a reader observes must
//     be bitwise-identical to the answer computed from a reference store
//     that was *bootstrapped in one batch* over exactly the records behind
//     that snapshot version — i.e. every published version is a real,
//     complete integration state, never a torn or partial one, and reads
//     never block on the writer.
//
//  2. Batch equivalence: after all batches apply, the store's final
//     snapshot DebugString (doubles as %a hex, version excluded) equals
//     the one-shot bootstrap over the same records — incremental serving
//     loses nothing relative to the batch pipeline.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bdi/serve/snapshot.h"
#include "bdi/serve/store.h"
#include "bdi/synth/world.h"

namespace bdi::serve {
namespace {

// Re-interns records [0, count) of `full` into a fresh Dataset, adding
// sources on demand in record order — the same interning order the live
// store produces when those records arrive as bootstrap + batches.
Dataset PrefixDataset(const Dataset& full, size_t count) {
  Dataset prefix;
  std::unordered_map<std::string, SourceId> source_ids;
  for (size_t r = 0; r < count; ++r) {
    const Record& record = full.record(static_cast<RecordIdx>(r));
    const std::string& source = full.source(record.source).name;
    auto [it, inserted] = source_ids.emplace(source, kInvalidSource);
    if (inserted) it->second = prefix.AddSource(source);
    SourceId source_id = it->second;
    std::vector<std::pair<std::string, std::string>> fields;
    for (const Field& field : record.fields) {
      fields.emplace_back(full.attr_name(field.attr), field.value);
    }
    prefix.AddRecord(source_id, fields);
  }
  return prefix;
}

// Records [begin, end) of `full` as one protocol update batch.
std::vector<UpdateRecord> SliceBatch(const Dataset& full, size_t begin,
                                     size_t end) {
  std::vector<UpdateRecord> records;
  for (size_t r = begin; r < end; ++r) {
    const Record& record = full.record(static_cast<RecordIdx>(r));
    UpdateRecord update;
    update.source = full.source(record.source).name;
    for (const Field& field : record.fields) {
      update.fields.emplace_back(full.attr_name(field.attr), field.value);
    }
    records.push_back(std::move(update));
  }
  return records;
}

// Deterministic serialization of one query's full answer against a
// snapshot; %a via DebugString-style exactness is not needed here because
// the comparison is reference-vs-observed on the same build, but scores
// are printed with max precision anyway so any drift fails loudly.
std::string AnswerKey(const Snapshot& snapshot, const std::string& query) {
  std::string key;
  char buffer[64];
  for (const FindHit& hit : snapshot.Find(query, 3)) {
    std::snprintf(buffer, sizeof(buffer), "%d:%a:", hit.cluster, hit.score);
    key += buffer;
    key += hit.text;
    key += "|";
  }
  AskAnswer answer = snapshot.Ask("name", query);
  std::snprintf(buffer, sizeof(buffer), ";ask %d %a %a %a:", answer.cluster,
                answer.confidence, answer.entity_match,
                answer.attribute_match);
  key += buffer;
  key += answer.attribute + "=" + answer.value;
  for (const ServedClaim& claim : answer.support) {
    key += "," + claim.source + (claim.agrees ? "+" : "-");
  }
  return key;
}

struct Observation {
  uint64_t version = 0;
  size_t query = 0;
  std::string answer;
};

TEST(ServeSnapshotEquivalenceTest, ConcurrentReadsMatchBatchPipeline) {
  synth::WorldConfig world_config;
  world_config.seed = 2031;
  world_config.num_entities = 90;
  world_config.num_sources = 6;
  synth::SyntheticWorld world = synth::GenerateWorld(world_config);
  const Dataset& full = world.dataset;
  const size_t total = full.num_records();
  ASSERT_GT(total, 40u);

  constexpr size_t kBatches = 4;
  const size_t bootstrap_count = total / 2;
  const size_t batch_size = (total - bootstrap_count) / kBatches;

  // Record count behind snapshot version v (1 = bootstrap only).
  std::vector<size_t> count_at_version(kBatches + 2, 0);
  for (size_t v = 1; v <= kBatches + 1; ++v) {
    count_at_version[v] = (v == kBatches + 1)
                              ? total
                              : bootstrap_count + (v - 1) * batch_size;
  }

  // Fixed query mix: display-ish field values spread over the corpus plus
  // a token query and a no-hit query.
  std::vector<std::string> queries;
  for (size_t r = 0; r < bootstrap_count; r += bootstrap_count / 6 + 1) {
    const Record& record = full.record(static_cast<RecordIdx>(r));
    if (!record.fields.empty()) queries.push_back(record.fields[0].value);
  }
  queries.push_back("zorix");
  queries.push_back("no such entity anywhere");

  StoreConfig store_config;
  store_config.num_shards = 4;
  store_config.num_threads = 2;

  // Reference: one store bootstrapped in ONE batch per version, its
  // DebugString and its answer to every query.
  std::vector<std::string> reference_state(kBatches + 2);
  std::vector<std::vector<std::string>> reference_answers(kBatches + 2);
  for (size_t v = 1; v <= kBatches + 1; ++v) {
    Result<std::unique_ptr<EntityStore>> reference = EntityStore::Create(
        PrefixDataset(full, count_at_version[v]), store_config);
    ASSERT_TRUE(reference.ok()) << reference.status();
    std::shared_ptr<const Snapshot> snapshot = reference.value()->snapshot();
    reference_state[v] = snapshot->DebugString();
    for (const std::string& query : queries) {
      reference_answers[v].push_back(AnswerKey(*snapshot, query));
    }
  }

  // The live store: bootstrap, then concurrent readers + writer.
  Result<std::unique_ptr<EntityStore>> live =
      EntityStore::Create(PrefixDataset(full, bootstrap_count), store_config);
  ASSERT_TRUE(live.ok()) << live.status();
  EntityStore& store = *live.value();
  EXPECT_EQ(store.snapshot()->version(), 1u);

  constexpr size_t kReaders = 4;
  std::atomic<bool> done{false};
  std::vector<std::vector<Observation>> observed(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      size_t i = t;  // stagger the query mix across readers
      while (!done.load(std::memory_order_relaxed)) {
        std::shared_ptr<const Snapshot> snapshot = store.snapshot();
        size_t query = i++ % queries.size();
        observed[t].push_back(Observation{
            snapshot->version(), query, AnswerKey(*snapshot, queries[query])});
      }
    });
  }

  for (size_t batch = 0; batch < kBatches; ++batch) {
    size_t begin = bootstrap_count + batch * batch_size;
    size_t end = (batch + 1 == kBatches) ? total : begin + batch_size;
    Result<BatchResult> applied =
        store.ApplyBatch(SliceBatch(full, begin, end));
    ASSERT_TRUE(applied.ok()) << applied.status();
    EXPECT_EQ(applied->version, batch + 2);
    EXPECT_EQ(applied->records, end - begin);
    EXPECT_FALSE(applied->budget_stopped);
    EXPECT_FALSE(applied->deadline_stopped);
  }
  done.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  // Every observed answer equals the batch-pipeline answer for its
  // version — no torn, partial or stale-mix state was ever published.
  size_t checked = 0;
  for (size_t t = 0; t < kReaders; ++t) {
    for (const Observation& obs : observed[t]) {
      ASSERT_GE(obs.version, 1u);
      ASSERT_LE(obs.version, kBatches + 1);
      ASSERT_EQ(obs.answer, reference_answers[obs.version][obs.query])
          << "reader " << t << " at version " << obs.version << " query '"
          << queries[obs.query] << "'";
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);

  // Final state is bitwise-identical to the one-shot bootstrap.
  std::shared_ptr<const Snapshot> final_snapshot = store.snapshot();
  EXPECT_EQ(final_snapshot->version(), kBatches + 1);
  EXPECT_EQ(store.num_batches(), kBatches);
  EXPECT_EQ(final_snapshot->DebugString(), reference_state[kBatches + 1]);

  // And every intermediate version the store itself published along the
  // way matched its reference state too (spot-check via the versions the
  // readers actually caught).
  for (size_t v = 1; v <= kBatches + 1; ++v) {
    EXPECT_FALSE(reference_state[v].empty());
  }
}

// Deadline-budgeted batches still publish consistent snapshots (form
// equivalence is relaxed — a deadline may defer comparisons — but every
// snapshot must still be a complete, queryable state).
TEST(ServeSnapshotEquivalenceTest, DeadlineBudgetedBatchesStayServable) {
  synth::WorldConfig world_config;
  world_config.seed = 2032;
  world_config.num_entities = 60;
  world_config.num_sources = 5;
  synth::SyntheticWorld world = synth::GenerateWorld(world_config);
  const Dataset& full = world.dataset;
  const size_t total = full.num_records();
  const size_t bootstrap_count = total / 2;

  StoreConfig store_config;
  store_config.num_shards = 4;
  store_config.budget_ms = 0.001;  // expire essentially immediately

  Result<std::unique_ptr<EntityStore>> live =
      EntityStore::Create(PrefixDataset(full, bootstrap_count), store_config);
  ASSERT_TRUE(live.ok()) << live.status();
  EntityStore& store = *live.value();
  // The bootstrap always links unbudgeted: a real entity count, not one
  // cluster per record.
  EXPECT_LT(store.snapshot()->num_entities(), bootstrap_count);

  Result<BatchResult> applied =
      store.ApplyBatch(SliceBatch(full, bootstrap_count, total));
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_EQ(applied->version, 2u);

  std::shared_ptr<const Snapshot> snapshot = store.snapshot();
  EXPECT_EQ(snapshot->num_records(), total);
  EXPECT_GE(snapshot->num_entities(), 1u);
  // The snapshot stays fully queryable: a display value straight from the
  // corpus must find its entity.
  const std::string probe = full.record(0).fields[0].value;
  AskAnswer answer = snapshot->Ask("name", probe);
  (void)answer;
  EXPECT_FALSE(snapshot->Find(probe, 5).empty());
}

}  // namespace
}  // namespace bdi::serve
