// Equivalence contract for the matcher's comparison cascade: the
// prefilter may only skip pairs whose true score provably cannot reach
// the threshold, so running with the prefilter on must produce the
// bitwise-identical match list (same pairs, bitwise equal scores) and
// identical clustering as the unfiltered path — serial and parallel.
// Named *ParallelEquivalence* so the tsan/asan equivalence ctest presets
// pick it up.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "bdi/linkage/linkage.h"
#include "bdi/synth/world.h"
#include "bdi/text/interner.h"
#include "bdi/text/similarity.h"

namespace bdi::linkage {
namespace {

synth::SyntheticWorld MakeWorld() {
  synth::WorldConfig config;
  config.seed = 11;
  config.num_entities = 200;
  config.num_sources = 14;
  return synth::GenerateWorld(config);
}

void ExpectEquivalent(const LinkageResult& unfiltered,
                      const LinkageResult& cascaded) {
  EXPECT_EQ(unfiltered.num_candidates, cascaded.num_candidates);
  ASSERT_EQ(unfiltered.matches.size(), cascaded.matches.size());
  for (size_t i = 0; i < unfiltered.matches.size(); ++i) {
    EXPECT_EQ(unfiltered.matches[i].pair.a, cascaded.matches[i].pair.a)
        << "match " << i;
    EXPECT_EQ(unfiltered.matches[i].pair.b, cascaded.matches[i].pair.b)
        << "match " << i;
    // Bitwise equality: a surviving pair runs the exact same kernels in
    // the exact same order as the unfiltered path.
    EXPECT_EQ(unfiltered.matches[i].score, cascaded.matches[i].score)
        << "match " << i;
  }
  ASSERT_EQ(unfiltered.clusters.label_of_record.size(),
            cascaded.clusters.label_of_record.size());
  for (size_t r = 0; r < unfiltered.clusters.label_of_record.size(); ++r) {
    EXPECT_EQ(unfiltered.clusters.label_of_record[r],
              cascaded.clusters.label_of_record[r])
        << "record " << r;
  }
}

LinkageResult RunWith(const synth::SyntheticWorld& world, ScorerKind scorer,
                      size_t num_threads, bool use_prefilter) {
  LinkerConfig config;
  config.scorer = scorer;
  config.num_threads = num_threads;
  config.use_prefilter = use_prefilter;
  Linker linker(&world.dataset, config);
  return linker.Run();
}

TEST(LinkagePrefilterParallelEquivalenceTest, RuleScorerSerial) {
  synth::SyntheticWorld world = MakeWorld();
  LinkageResult off = RunWith(world, ScorerKind::kRule, 1, false);
  LinkageResult on = RunWith(world, ScorerKind::kRule, 1, true);
  EXPECT_EQ(off.num_prefiltered, 0u);
  ExpectEquivalent(off, on);
}

TEST(LinkagePrefilterParallelEquivalenceTest, RuleScorerParallel) {
  synth::SyntheticWorld world = MakeWorld();
  ExpectEquivalent(RunWith(world, ScorerKind::kRule, 1, false),
                   RunWith(world, ScorerKind::kRule, 8, true));
}

TEST(LinkagePrefilterParallelEquivalenceTest, LinearScorerSerial) {
  synth::SyntheticWorld world = MakeWorld();
  ExpectEquivalent(RunWith(world, ScorerKind::kLinear, 1, false),
                   RunWith(world, ScorerKind::kLinear, 1, true));
}

TEST(LinkagePrefilterParallelEquivalenceTest, LinearScorerParallel) {
  synth::SyntheticWorld world = MakeWorld();
  ExpectEquivalent(RunWith(world, ScorerKind::kLinear, 1, false),
                   RunWith(world, ScorerKind::kLinear, 8, true));
}

// Every candidate the prefilter would skip must truly score below the
// threshold — checked against the full extractor over all candidates of
// the synthetic world, for each scorer kind.
TEST(LinkagePrefilterParallelEquivalenceTest, SkippedPairsScoreBelowThreshold) {
  synth::SyntheticWorld world = MakeWorld();
  for (ScorerKind kind :
       {ScorerKind::kRule, ScorerKind::kLinear, ScorerKind::kLearned}) {
    LinkerConfig config;
    config.scorer = kind;
    config.num_threads = 1;
    Linker linker(&world.dataset, config);
    LinkageResult result = linker.Run();
    const FeatureExtractor& extractor = linker.extractor();
    const PairScorer& scorer = linker.scorer();
    double threshold = scorer.threshold();
    size_t skipped = 0;
    text::SimilarityScratch scratch;
    for (const CandidatePair& pair : linker.last_candidates()) {
      PairFeatures bounds = extractor.ExtractBounds(pair.a, pair.b, scratch);
      double bound = scorer.ScoreUpperBound(bounds);
      PairFeatures features = extractor.Extract(pair.a, pair.b, scratch);
      double score = scorer.Score(features);
      // The bound contract itself: never below the true score.
      ASSERT_GE(bound, score)
          << "pair (" << pair.a << ", " << pair.b << ") scorer "
          << scorer.name();
      if (bound + kPrefilterSlack < threshold) {
        ++skipped;
        ASSERT_LT(score, threshold)
            << "pair (" << pair.a << ", " << pair.b << ") scorer "
            << scorer.name();
      }
    }
    EXPECT_EQ(skipped, result.num_prefiltered) << "scorer " << scorer.name();
  }
}

// Kernel-level fuzz for the signature bounds: on random token pairs the
// bounded kernels must never under-bound the true kernels.
TEST(LinkagePrefilterParallelEquivalenceTest, SignatureBoundsNeverUnderBound) {
  std::mt19937 rng(1234);
  std::uniform_int_distribution<int> len_dist(0, 14);
  // A narrow alphabet maximizes shared-character collisions (the hard
  // case for the histogram bounds); include digits and a non-alnum byte
  // to cover all three signature class families.
  const std::string alphabet = "abcde019-";
  std::uniform_int_distribution<size_t> char_dist(0, alphabet.size() - 1);
  auto random_token = [&]() {
    std::string t(static_cast<size_t>(len_dist(rng)), ' ');
    for (char& c : t) c = alphabet[char_dist(rng)];
    return t;
  };
  text::SimilarityScratch scratch;
  for (int iter = 0; iter < 2000; ++iter) {
    std::string x = random_token();
    std::string y = random_token();
    text::TokenSignature sx = text::MakeTokenSignature(x);
    text::TokenSignature sy = text::MakeTokenSignature(y);
    ASSERT_GE(text::JaroWinklerUpperBound(sx, sy),
              text::JaroWinklerSimilarity(x, y))
        << '"' << x << "\" vs \"" << y << '"';
    ASSERT_LE(text::EditDistanceLowerBound(sx, sy), text::EditDistance(x, y))
        << '"' << x << "\" vs \"" << y << '"';
    ASSERT_GE(text::NormalizedEditSimilarityUpperBound(sx, sy),
              text::NormalizedEditSimilarity(x, y))
        << '"' << x << "\" vs \"" << y << '"';
  }
  // Monge-Elkan bound over random short token sequences.
  std::uniform_int_distribution<int> seq_dist(0, 5);
  for (int iter = 0; iter < 300; ++iter) {
    text::TokenInterner interner;
    std::vector<text::TokenId> a, b;
    for (int i = 0, n = seq_dist(rng); i < n; ++i) {
      a.push_back(interner.Intern(random_token()));
    }
    for (int i = 0, n = seq_dist(rng); i < n; ++i) {
      b.push_back(interner.Intern(random_token()));
    }
    std::vector<text::TokenSignature> signatures;
    for (text::TokenId id = 0; id < interner.size(); ++id) {
      signatures.push_back(text::MakeTokenSignature(interner.token(id)));
    }
    double truth = text::SymmetricMongeElkan(interner, a, b, scratch);
    double bound =
        text::SymmetricMongeElkanUpperBound(signatures, a, b, scratch);
    ASSERT_GE(bound, truth) << "iter " << iter;
  }
}

}  // namespace
}  // namespace bdi::linkage
