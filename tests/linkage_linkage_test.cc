#include "bdi/linkage/linkage.h"

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "bdi/synth/world.h"

namespace bdi::linkage {
namespace {

synth::SyntheticWorld MakeWorld(uint64_t seed = 31) {
  synth::WorldConfig config;
  config.seed = seed;
  config.num_entities = 150;
  config.num_sources = 10;
  return synth::GenerateWorld(config);
}

TEST(LinkerTest, DefaultPipelineLinksWell) {
  synth::SyntheticWorld world = MakeWorld();
  Linker linker(&world.dataset, {});
  LinkageResult result = linker.Run();
  EXPECT_GT(result.num_candidates, 0u);
  EXPECT_GT(result.num_matches, 0u);
  LinkageQuality quality = EvaluateClusters(
      result.clusters.label_of_record, world.truth.entity_of_record);
  EXPECT_GE(quality.precision, 0.9);
  EXPECT_GE(quality.recall, 0.85);
}

TEST(LinkerTest, LabelsCoverEveryRecord) {
  synth::SyntheticWorld world = MakeWorld();
  Linker linker(&world.dataset, {});
  LinkageResult result = linker.Run();
  EXPECT_EQ(result.clusters.label_of_record.size(),
            world.dataset.num_records());
}

// Blockers x scorers sweep: quality floors hold for every combination.
using LinkerParam = std::tuple<BlockerKind, ScorerKind>;
class LinkerSweepTest : public ::testing::TestWithParam<LinkerParam> {};

TEST_P(LinkerSweepTest, QualityFloor) {
  auto [blocker, scorer] = GetParam();
  synth::SyntheticWorld world = MakeWorld(37);
  LinkerConfig config;
  config.blocker = blocker;
  config.scorer = scorer;
  Linker linker(&world.dataset, config);
  if (scorer == ScorerKind::kLearned) {
    // Active-learning stand-in: label a sample of *blocked candidate*
    // pairs (the pairs the matcher will actually face) with ground truth
    // and fit the logistic scorer on them.
    LinkerConfig bootstrap_config = config;
    bootstrap_config.scorer = ScorerKind::kRule;
    Linker bootstrap(&world.dataset, bootstrap_config);
    bootstrap.Run();
    std::vector<PairFeatures> features;
    std::vector<int> labels;
    const auto& candidates = bootstrap.last_candidates();
    size_t stride = std::max<size_t>(1, candidates.size() / 800);
    text::SimilarityScratch scratch;
    for (size_t i = 0; i < candidates.size(); i += stride) {
      const CandidatePair& pair = candidates[i];
      features.push_back(
          linker.extractor().Extract(pair.a, pair.b, scratch));
      labels.push_back(world.truth.entity_of_record[pair.a] ==
                               world.truth.entity_of_record[pair.b]
                           ? 1
                           : 0);
    }
    auto trained = std::make_unique<LearnedScorer>();
    trained->Train(features, labels);
    trained->set_threshold(0.5);
    linker.SetScorer(std::move(trained));
  }
  LinkageResult result = linker.Run();
  LinkageQuality quality = EvaluateClusters(
      result.clusters.label_of_record, world.truth.entity_of_record);
  EXPECT_GE(quality.precision, 0.75);
  EXPECT_GE(quality.recall, 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, LinkerSweepTest,
    ::testing::Combine(
        ::testing::Values(BlockerKind::kToken, BlockerKind::kIdentifier,
                          BlockerKind::kTokenPlusIdentifier),
        ::testing::Values(ScorerKind::kLinear, ScorerKind::kRule,
                          ScorerKind::kLearned)));

TEST(LinkerTest, MetaBlockingShrinksCandidates) {
  synth::SyntheticWorld world = MakeWorld(41);
  LinkerConfig plain;
  plain.blocker = BlockerKind::kToken;
  Linker linker_plain(&world.dataset, plain);
  LinkageResult r_plain = linker_plain.Run();

  LinkerConfig meta = plain;
  meta.use_meta_blocking = true;
  Linker linker_meta(&world.dataset, meta);
  LinkageResult r_meta = linker_meta.Run();

  EXPECT_LT(r_meta.num_candidates, r_plain.num_candidates);
  LinkageQuality q_meta = EvaluateClusters(
      r_meta.clusters.label_of_record, world.truth.entity_of_record);
  EXPECT_GE(q_meta.recall, 0.5);
}

TEST(LinkerTest, HarderNoiseStillReasonable) {
  synth::WorldConfig config;
  config.seed = 43;
  config.num_entities = 120;
  config.num_sources = 8;
  config.identifier_presence_prob = 0.5;
  config.identifier_noise_prob = 0.1;
  config.name_noise.typo_prob = 0.15;
  config.name_noise.extra_token_prob = 0.3;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  Linker linker(&world.dataset, {});
  LinkageResult result = linker.Run();
  LinkageQuality quality = EvaluateClusters(
      result.clusters.label_of_record, world.truth.entity_of_record);
  EXPECT_GE(quality.f1, 0.6);
}

TEST(LinkerTest, RelatedProductIdsDoNotExplodePrecision) {
  synth::WorldConfig config;
  config.seed = 47;
  config.num_entities = 120;
  config.num_sources = 8;
  config.related_products_prob = 0.3;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  Linker linker(&world.dataset, {});
  LinkageResult result = linker.Run();
  LinkageQuality quality = EvaluateClusters(
      result.clusters.label_of_record, world.truth.entity_of_record);
  EXPECT_GE(quality.precision, 0.8);
}

}  // namespace
}  // namespace bdi::linkage
