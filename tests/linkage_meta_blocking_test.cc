#include "bdi/linkage/meta_blocking.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "bdi/synth/world.h"

namespace bdi::linkage {
namespace {

Dataset FourRecordDataset() {
  Dataset dataset;
  SourceId s0 = dataset.AddSource("s0");
  SourceId s1 = dataset.AddSource("s1");
  dataset.AddRecord(s0, {{"n", "a"}});  // r0
  dataset.AddRecord(s0, {{"n", "b"}});  // r1
  dataset.AddRecord(s1, {{"n", "c"}});  // r2
  dataset.AddRecord(s1, {{"n", "d"}});  // r3
  return dataset;
}

TEST(BlockingGraphTest, CommonBlocksWeight) {
  Dataset dataset = FourRecordDataset();
  std::vector<Block> blocks = {Block{"k1", {0, 2}}, Block{"k2", {0, 2}},
                               Block{"k3", {0, 3}}};
  std::vector<WeightedPair> graph = BuildBlockingGraph(
      dataset, blocks, MetaBlockingScheme::kCommonBlocks, false);
  std::map<CandidatePair, double> weights;
  for (const WeightedPair& wp : graph) weights[wp.pair] = wp.weight;
  EXPECT_DOUBLE_EQ((weights[{0, 2}]), 2.0);
  EXPECT_DOUBLE_EQ((weights[{0, 3}]), 1.0);
}

TEST(BlockingGraphTest, JaccardWeight) {
  Dataset dataset = FourRecordDataset();
  // r0 in 3 blocks, r2 in 2 blocks, sharing 2.
  std::vector<Block> blocks = {Block{"k1", {0, 2}}, Block{"k2", {0, 2}},
                               Block{"k3", {0, 3}}};
  std::vector<WeightedPair> graph = BuildBlockingGraph(
      dataset, blocks, MetaBlockingScheme::kJaccard, false);
  std::map<CandidatePair, double> weights;
  for (const WeightedPair& wp : graph) weights[wp.pair] = wp.weight;
  EXPECT_DOUBLE_EQ((weights[{0, 2}]), 2.0 / 3.0);  // 2 / (3 + 2 - 2)
}

TEST(BlockingGraphTest, ArcsWeightFavorsSmallBlocks) {
  Dataset dataset = FourRecordDataset();
  std::vector<Block> blocks = {Block{"small", {0, 2}},
                               Block{"large", {0, 1, 2, 3}}};
  std::vector<WeightedPair> graph = BuildBlockingGraph(
      dataset, blocks, MetaBlockingScheme::kArcs, false);
  std::map<CandidatePair, double> weights;
  for (const WeightedPair& wp : graph) weights[wp.pair] = wp.weight;
  // (0,2): 1/1 from small + 1/6 from large; (0,3): 1/6 only.
  EXPECT_NEAR((weights[{0, 2}]), 1.0 + 1.0 / 6.0, 1e-9);
  EXPECT_NEAR((weights[{0, 3}]), 1.0 / 6.0, 1e-9);
}

TEST(BlockingGraphTest, SameSourcePairsSkipped) {
  Dataset dataset = FourRecordDataset();
  std::vector<Block> blocks = {Block{"k", {0, 1, 2}}};
  std::vector<WeightedPair> graph = BuildBlockingGraph(
      dataset, blocks, MetaBlockingScheme::kCommonBlocks, false);
  for (const WeightedPair& wp : graph) {
    EXPECT_FALSE(wp.pair.a == 0 && wp.pair.b == 1);
  }
}

TEST(MetaBlockTest, WeightEdgePruningKeepsAboveMean) {
  Dataset dataset = FourRecordDataset();
  std::vector<Block> blocks = {Block{"k1", {0, 2}}, Block{"k2", {0, 2}},
                               Block{"k3", {0, 3}}};
  MetaBlockingConfig config;
  config.scheme = MetaBlockingScheme::kCommonBlocks;
  config.pruning = MetaBlockingPruning::kWeightEdge;
  std::vector<CandidatePair> kept = MetaBlock(dataset, blocks, config);
  // mean = 1.5; only (0,2) with weight 2 survives.
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0], (CandidatePair{0, 2}));
}

TEST(MetaBlockTest, CardinalityNodePruningKeepsTopK) {
  Dataset dataset = FourRecordDataset();
  std::vector<Block> blocks = {Block{"k1", {0, 2}}, Block{"k2", {0, 2}},
                               Block{"k3", {0, 3}}};
  MetaBlockingConfig config;
  config.scheme = MetaBlockingScheme::kCommonBlocks;
  config.pruning = MetaBlockingPruning::kCardinalityNode;
  config.node_top_k = 1;
  std::vector<CandidatePair> kept = MetaBlock(dataset, blocks, config);
  // r0 keeps (0,2); r3 keeps its only edge (0,3); union -> both survive.
  EXPECT_EQ(kept.size(), 2u);
}

TEST(MetaBlockTest, WeightedCardinalityNodeIsIntersection) {
  Dataset dataset = FourRecordDataset();
  std::vector<Block> blocks = {Block{"k1", {0, 2}}, Block{"k2", {0, 2}},
                               Block{"k3", {0, 3}}};
  MetaBlockingConfig config;
  config.scheme = MetaBlockingScheme::kCommonBlocks;
  config.pruning = MetaBlockingPruning::kWeightedCardinalityNode;
  config.node_top_k = 1;
  std::vector<CandidatePair> kept = MetaBlock(dataset, blocks, config);
  // CNP at k=1 keeps {(0,2), (0,3)}; WEP (mean 1.5) keeps {(0,2)}; the
  // combined strategy keeps the intersection.
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0], (CandidatePair{0, 2}));
}

TEST(MetaBlockTest, WeightedCardinalityNodeSubsetOfEitherOnWorld) {
  synth::WorldConfig wc;
  wc.seed = 29;
  wc.num_entities = 150;
  wc.num_sources = 8;
  synth::SyntheticWorld world = synth::GenerateWorld(wc);
  TokenBlocker blocker;
  std::vector<Block> blocks = blocker.MakeBlocksAll(world.dataset, nullptr);
  auto run = [&](MetaBlockingPruning pruning) {
    MetaBlockingConfig config;
    config.scheme = MetaBlockingScheme::kJaccard;
    config.pruning = pruning;
    config.node_top_k = 4;
    std::vector<CandidatePair> kept = MetaBlock(world.dataset, blocks, config);
    return std::set<CandidatePair>(kept.begin(), kept.end());
  };
  std::set<CandidatePair> wep = run(MetaBlockingPruning::kWeightEdge);
  std::set<CandidatePair> cnp = run(MetaBlockingPruning::kCardinalityNode);
  std::set<CandidatePair> both =
      run(MetaBlockingPruning::kWeightedCardinalityNode);
  ASSERT_FALSE(both.empty());
  EXPECT_LT(both.size(), wep.size());
  EXPECT_LT(both.size(), cnp.size());
  for (const CandidatePair& pair : both) {
    EXPECT_TRUE(wep.count(pair)) << "not in WEP";
    EXPECT_TRUE(cnp.count(pair)) << "not in CNP";
  }
}

TEST(MetaBlockTest, EmptyBlocksEmptyResult) {
  Dataset dataset = FourRecordDataset();
  EXPECT_TRUE(MetaBlock(dataset, {}, {}).empty());
}

TEST(MetaBlockTest, ReducesCandidatesOnWorldWithoutLosingManyMatches) {
  synth::WorldConfig wc;
  wc.seed = 29;
  wc.num_entities = 150;
  wc.num_sources = 8;
  synth::SyntheticWorld world = synth::GenerateWorld(wc);
  TokenBlocker blocker;
  std::vector<Block> blocks = blocker.MakeBlocksAll(world.dataset, nullptr);
  std::vector<CandidatePair> raw = BlocksToPairs(world.dataset, blocks);
  MetaBlockingConfig config;
  config.scheme = MetaBlockingScheme::kJaccard;
  std::vector<CandidatePair> pruned = MetaBlock(world.dataset, blocks, config);
  EXPECT_LT(pruned.size(), raw.size());
  BlockingQuality raw_quality =
      EvaluateBlocking(world.dataset, raw, world.truth.entity_of_record);
  BlockingQuality pruned_quality =
      EvaluateBlocking(world.dataset, pruned, world.truth.entity_of_record);
  // Keeps the large majority of the raw completeness.
  EXPECT_GE(pruned_quality.pairs_completeness,
            0.75 * raw_quality.pairs_completeness);
}

}  // namespace
}  // namespace bdi::linkage
