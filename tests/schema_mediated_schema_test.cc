#include "bdi/schema/mediated_schema.h"

#include <gtest/gtest.h>

#include "bdi/synth/world.h"

namespace bdi::schema {
namespace {

/// Builds a dataset whose attribute similarity structure is easy to reason
/// about: sources publish "color"/"colour"/"hue-ish" names with overlapping
/// values.
Dataset ColorDataset() {
  Dataset dataset;
  SourceId s0 = dataset.AddSource("s0");
  SourceId s1 = dataset.AddSource("s1");
  SourceId s2 = dataset.AddSource("s2");
  for (int i = 0; i < 5; ++i) {
    std::string v = "v" + std::to_string(i);
    dataset.AddRecord(s0, {{"color", v}, {"size", std::to_string(i)}});
    dataset.AddRecord(s1, {{"colour", v}, {"size", std::to_string(i)}});
    dataset.AddRecord(s2, {{"color", v}});
  }
  return dataset;
}

TEST(MediatedSchemaTest, ClustersSynonymousAttributes) {
  Dataset dataset = ColorDataset();
  AttributeStatistics stats = AttributeStatistics::Compute(dataset);
  std::vector<AttrEdge> edges = BuildCandidateEdges(stats, {});
  MediatedSchemaConfig config;
  config.threshold = 0.6;
  MediatedSchema schema = BuildMediatedSchema(stats, edges, config);

  AttrId color = dataset.FindAttr("color").value();
  AttrId colour = dataset.FindAttr("colour").value();
  int c0 = schema.ClusterOf(SourceAttr{0, color});
  int c1 = schema.ClusterOf(SourceAttr{1, colour});
  int c2 = schema.ClusterOf(SourceAttr{2, color});
  EXPECT_NE(c0, -1);
  EXPECT_EQ(c0, c1);
  EXPECT_EQ(c0, c2);

  AttrId size = dataset.FindAttr("size").value();
  EXPECT_NE(schema.ClusterOf(SourceAttr{0, size}), c0);
}

TEST(MediatedSchemaTest, EveryAttrAssignedExactlyOnce) {
  Dataset dataset = ColorDataset();
  AttributeStatistics stats = AttributeStatistics::Compute(dataset);
  std::vector<AttrEdge> edges = BuildCandidateEdges(stats, {});
  for (ClusterMethod method :
       {ClusterMethod::kConnectedComponents, ClusterMethod::kCenter}) {
    MediatedSchemaConfig config;
    config.method = method;
    MediatedSchema schema = BuildMediatedSchema(stats, edges, config);
    size_t members = 0;
    for (const auto& cluster : schema.clusters) {
      EXPECT_FALSE(cluster.empty());
      members += cluster.size();
    }
    EXPECT_EQ(members, stats.profiles().size());
    EXPECT_EQ(schema.cluster_of.size(), stats.profiles().size());
    EXPECT_EQ(schema.cluster_names.size(), schema.clusters.size());
  }
}

TEST(MediatedSchemaTest, ThresholdOneMakesSingletonsOnly) {
  Dataset dataset = ColorDataset();
  AttributeStatistics stats = AttributeStatistics::Compute(dataset);
  std::vector<AttrEdge> edges = BuildCandidateEdges(stats, {});
  MediatedSchemaConfig config;
  config.threshold = 1.01;  // nothing qualifies
  MediatedSchema schema = BuildMediatedSchema(stats, edges, config);
  EXPECT_EQ(schema.clusters.size(), stats.profiles().size());
}

TEST(MediatedSchemaTest, ClusterNamedByMajority) {
  Dataset dataset = ColorDataset();
  AttributeStatistics stats = AttributeStatistics::Compute(dataset);
  std::vector<AttrEdge> edges = BuildCandidateEdges(stats, {});
  MediatedSchemaConfig config;
  config.threshold = 0.6;
  MediatedSchema schema = BuildMediatedSchema(stats, edges, config);
  AttrId color = dataset.FindAttr("color").value();
  int cluster = schema.ClusterOf(SourceAttr{0, color});
  ASSERT_NE(cluster, -1);
  // Two of three members are literally "color".
  EXPECT_EQ(schema.cluster_names[cluster], "color");
}

TEST(MediatedSchemaTest, ClusterOfUnknownAttr) {
  MediatedSchema schema;
  EXPECT_EQ(schema.ClusterOf(SourceAttr{0, 0}), -1);
}

TEST(EvaluateSchemaTest, PerfectClustering) {
  MediatedSchema schema;
  schema.clusters = {{SourceAttr{0, 0}, SourceAttr{1, 0}},
                     {SourceAttr{0, 1}, SourceAttr{1, 1}}};
  int next = 0;
  for (const auto& cluster : schema.clusters) {
    for (const SourceAttr& sa : cluster) schema.cluster_of[sa] = next;
    ++next;
  }
  std::map<SourceAttr, int> truth = {{SourceAttr{0, 0}, 0},
                                     {SourceAttr{1, 0}, 0},
                                     {SourceAttr{0, 1}, 1},
                                     {SourceAttr{1, 1}, 1}};
  SchemaQuality quality = EvaluateSchema(schema, truth);
  EXPECT_DOUBLE_EQ(quality.precision, 1.0);
  EXPECT_DOUBLE_EQ(quality.recall, 1.0);
  EXPECT_DOUBLE_EQ(quality.f1, 1.0);
  EXPECT_EQ(quality.true_pairs, 2u);
}

TEST(EvaluateSchemaTest, OverMergedClusteringLosesPrecision) {
  MediatedSchema schema;
  schema.clusters = {{SourceAttr{0, 0}, SourceAttr{1, 0}, SourceAttr{0, 1},
                      SourceAttr{1, 1}}};
  for (const SourceAttr& sa : schema.clusters[0]) schema.cluster_of[sa] = 0;
  std::map<SourceAttr, int> truth = {{SourceAttr{0, 0}, 0},
                                     {SourceAttr{1, 0}, 0},
                                     {SourceAttr{0, 1}, 1},
                                     {SourceAttr{1, 1}, 1}};
  SchemaQuality quality = EvaluateSchema(schema, truth);
  EXPECT_DOUBLE_EQ(quality.recall, 1.0);
  EXPECT_DOUBLE_EQ(quality.precision, 2.0 / 6.0);
}

TEST(EvaluateSchemaTest, UnmappedAttrsHurtPrecisionOnly) {
  MediatedSchema schema;
  schema.clusters = {{SourceAttr{0, 0}, SourceAttr{1, 9}}};
  schema.cluster_of[SourceAttr{0, 0}] = 0;
  schema.cluster_of[SourceAttr{1, 9}] = 0;
  std::map<SourceAttr, int> truth = {{SourceAttr{0, 0}, 0}};
  SchemaQuality quality = EvaluateSchema(schema, truth);
  EXPECT_DOUBLE_EQ(quality.precision, 0.0);
  EXPECT_EQ(quality.true_pairs, 0u);
}

// Parameterized acceptance sweep: alignment quality on generated worlds
// stays above a floor across categories.
class SchemaOnWorldTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SchemaOnWorldTest, AlignmentQualityFloor) {
  synth::WorldConfig config;
  config.seed = 17;
  config.category = GetParam();
  config.num_entities = 150;
  config.num_sources = 10;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  AttributeStatistics stats = AttributeStatistics::Compute(world.dataset);
  std::vector<AttrEdge> edges = BuildCandidateEdges(stats, {});
  MediatedSchema schema = BuildMediatedSchema(stats, edges, {});
  SchemaQuality quality =
      EvaluateSchema(schema, world.truth.canonical_of_source_attr);
  EXPECT_GE(quality.precision, 0.6) << GetParam();
  EXPECT_GE(quality.recall, 0.5) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Categories, SchemaOnWorldTest,
                         ::testing::Values("camera", "headphone", "tv",
                                           "book"));

}  // namespace
}  // namespace bdi::schema
