// The `bdi serve` wire boundary: the strict JSON-lines parser and the
// request validator. Malformed client input must always come back as a
// Status (the serving loop never aborts), valid requests must populate
// exactly the members their op uses, and the encoders must emit JSON the
// parser itself accepts.
#include <gtest/gtest.h>

#include <string>

#include "bdi/serve/protocol.h"
#include "bdi/serve/wire.h"

namespace bdi::serve {
namespace {

// ---------------------------------------------------------------------------
// wire.h: ParseJson / AppendJsonString / AppendJsonNumber

TEST(ServeWireTest, ParsesScalarsAndStructures) {
  EXPECT_EQ(ParseJson("null").value().kind, JsonValue::Kind::kNull);
  EXPECT_TRUE(ParseJson("true").value().boolean);
  EXPECT_FALSE(ParseJson("false").value().boolean);
  EXPECT_DOUBLE_EQ(ParseJson("-12.5e2").value().number, -1250.0);
  EXPECT_EQ(ParseJson("\"hi\"").value().string, "hi");

  Result<JsonValue> arr = ParseJson("[1, 2, 3]");
  ASSERT_TRUE(arr.ok());
  ASSERT_EQ(arr->array.size(), 3u);
  EXPECT_DOUBLE_EQ(arr->array[2].number, 3.0);

  Result<JsonValue> obj = ParseJson(R"({"a": 1, "b": {"c": [true]}})");
  ASSERT_TRUE(obj.ok());
  ASSERT_NE(obj->Find("b"), nullptr);
  ASSERT_NE(obj->Find("b")->Find("c"), nullptr);
  EXPECT_TRUE(obj->Find("b")->Find("c")->array[0].boolean);
  EXPECT_EQ(obj->Find("missing"), nullptr);
}

TEST(ServeWireTest, DecodesStringEscapes) {
  Result<JsonValue> s =
      ParseJson(R"("a\"b\\c\/d\b\f\n\r\t\u0041\u00e9")");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->string, "a\"b\\c/d\b\f\n\r\tA\xc3\xa9");
  // Surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(ParseJson(R"("\ud83d\ude00")").value().string,
            "\xf0\x9f\x98\x80");
}

TEST(ServeWireTest, RejectsMalformedJson) {
  // Everything here must be an InvalidArgument with a position, never a
  // crash or an accept.
  const char* bad[] = {
      "",
      "   ",
      "{",
      "[1, 2",
      "{\"a\" 1}",
      "{\"a\": 1,}",
      "[1, 2,]",
      "{'a': 1}",
      "nul",
      "truex",
      "01",
      "1.",
      ".5",
      "1e",
      "+1",
      "\"unterminated",
      "\"bad \x01 control\"",
      "\"\\u12g4\"",
      "\"\\ud800\"",          // unpaired high surrogate
      "\"\\q\"",              // unknown escape
      "1 2",                  // trailing bytes
      "{\"a\":1,\"a\":2}",    // duplicate key
      "{1: 2}",               // unquoted key
  };
  for (const char* input : bad) {
    Result<JsonValue> parsed = ParseJson(input);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << input;
    if (!parsed.ok()) {
      EXPECT_FALSE(parsed.status().message().empty()) << input;
    }
  }
}

TEST(ServeWireTest, EnforcesSizeAndDepthLimits) {
  // One byte over the wire cap is rejected before parsing.
  std::string huge = "\"" + std::string(kMaxWireBytes, 'x') + "\"";
  EXPECT_FALSE(ParseJson(huge).ok());

  std::string deep_ok(kMaxWireDepth, '[');
  deep_ok += "1";
  deep_ok += std::string(kMaxWireDepth, ']');
  EXPECT_TRUE(ParseJson(deep_ok).ok());

  std::string too_deep(kMaxWireDepth + 1, '[');
  too_deep += "1";
  too_deep += std::string(kMaxWireDepth + 1, ']');
  EXPECT_FALSE(ParseJson(too_deep).ok());
}

TEST(ServeWireTest, StringEncoderRoundTripsHostileBytes) {
  std::string hostile("quote\" slash\\ ctrl\x01 nul", 23);
  hostile.push_back('\0');
  hostile += "\ttab\nnewline";
  std::string encoded;
  AppendJsonString(&encoded, hostile);
  Result<JsonValue> parsed = ParseJson(encoded);
  ASSERT_TRUE(parsed.ok()) << encoded;
  EXPECT_EQ(parsed->string, hostile);
}

TEST(ServeWireTest, NumberEncoderRoundTripsExactly) {
  for (double value : {0.0, 1.0, -1.0, 0.1, 1e-9, 123456789.123456789,
                       9007199254740993.0, 2.2250738585072014e-308}) {
    std::string encoded;
    AppendJsonNumber(&encoded, value);
    Result<JsonValue> parsed = ParseJson(encoded);
    ASSERT_TRUE(parsed.ok()) << encoded;
    EXPECT_EQ(parsed->number, value) << encoded;
  }
}

// ---------------------------------------------------------------------------
// protocol.h: ParseRequest / EncodeError

TEST(ServeProtocolTest, ParsesEveryOp) {
  Result<Request> stats = ParseRequest(R"({"op":"stats","id":7})");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->op, RequestOp::kStats);
  EXPECT_EQ(stats->id, 7);

  Result<Request> ask = ParseRequest(
      R"({"op":"ask","entity":"Zorix QX-12","attribute":"weight"})");
  ASSERT_TRUE(ask.ok());
  EXPECT_EQ(ask->op, RequestOp::kAsk);
  EXPECT_EQ(ask->entity, "Zorix QX-12");
  EXPECT_EQ(ask->attribute, "weight");
  EXPECT_EQ(ask->id, -1);  // absent id

  Result<Request> find =
      ParseRequest(R"({"op":"find","entity":"zorix","k":25})");
  ASSERT_TRUE(find.ok());
  EXPECT_EQ(find->op, RequestOp::kFind);
  EXPECT_EQ(find->k, 25);
  // k defaults to 5 when absent.
  EXPECT_EQ(ParseRequest(R"({"op":"find","entity":"z"})")->k, 5);

  Result<Request> update = ParseRequest(
      R"({"op":"update","records":[)"
      R"({"source":"s0","fields":{"name":"A","weight":"1 g"}},)"
      R"({"source":"s1","fields":{"name":"B"}}]})");
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(update->op, RequestOp::kUpdate);
  ASSERT_EQ(update->records.size(), 2u);
  EXPECT_EQ(update->records[0].source, "s0");
  ASSERT_EQ(update->records[0].fields.size(), 2u);
  EXPECT_EQ(update->records[0].fields[1].second, "1 g");

  EXPECT_EQ(ParseRequest(R"({"op":"shutdown"})")->op,
            RequestOp::kShutdown);
}

TEST(ServeProtocolTest, RejectsInvalidRequests) {
  const char* bad[] = {
      "",
      "not json",
      "[1,2,3]",                                   // not an object
      R"({"id":1})",                               // missing op
      R"({"op":"frobnicate"})",                    // unknown op
      R"({"op":"stats","bogus":1})",               // unknown key
      R"({"op":"stats","id":-1})",                 // negative id
      R"({"op":"stats","id":1.5})",                // non-integral id
      R"({"op":"ask","entity":"x"})",              // missing attribute
      R"({"op":"ask","attribute":"x"})",           // missing entity
      R"({"op":"ask","entity":"","attribute":"x"})",
      R"({"op":"find","entity":"x","k":0})",
      R"({"op":"find","entity":"x","k":101})",
      R"({"op":"find","entity":"x","k":"five"})",
      R"({"op":"find","entity":"x","records":[]})",  // key from another op
      R"({"op":"update","records":[]})",             // empty batch
      R"({"op":"update","records":[{"source":"s"}]})",        // no fields
      R"({"op":"update","records":[{"fields":{"a":"1"}}]})",  // no source
      R"({"op":"update","records":[{"source":"","fields":{"a":"1"}}]})",
      R"({"op":"update","records":[{"source":"s","fields":{}}]})",
      R"({"op":"update","records":[{"source":"s","fields":{"a":1}}]})",
  };
  for (const char* input : bad) {
    Result<Request> request = ParseRequest(input);
    EXPECT_FALSE(request.ok()) << "accepted: " << input;
    if (!request.ok()) {
      EXPECT_FALSE(request.status().message().empty()) << input;
    }
  }
}

// Every request whose id parsed — whatever later validation says — must
// surface that id through ParseRequest's id_out, so the server can echo
// it in the error response and pipelined clients can tell which request
// failed. One case per distinct error path after the id is read.
TEST(ServeProtocolTest, IdSurvivesEveryValidationFailure) {
  const char* bad_with_id[] = {
      R"({"id":9})",                                // missing op
      R"({"op":"frobnicate","id":9})",              // unknown op
      R"({"op":"stats","id":9,"bogus":1})",         // unknown key
      R"({"op":"ask","id":9,"entity":"x"})",        // missing attribute
      R"({"op":"ask","id":9,"attribute":"x"})",     // missing entity
      R"({"op":"ask","id":9,"entity":"","attribute":"x"})",
      R"({"op":"find","id":9,"entity":"x","k":0})",
      R"({"op":"find","id":9,"entity":"x","k":101})",
      R"({"op":"find","id":9,"entity":"x","k":"five"})",
      R"({"op":"update","id":9,"records":[]})",
      R"({"op":"update","id":9,"records":[{"source":"s"}]})",
      R"({"op":"update","id":9,"records":[{"source":"s","fields":{}}]})",
  };
  for (const char* input : bad_with_id) {
    long long id = -1;
    Result<Request> request = ParseRequest(input, &id);
    ASSERT_FALSE(request.ok()) << "accepted: " << input;
    EXPECT_EQ(id, 9) << "id lost on: " << input;
  }

  // No valid id seen -> id_out stays untouched: unparseable input, a
  // request with no id, and a request whose id itself is invalid.
  const char* bad_without_id[] = {
      "not json",
      R"({"op":"frobnicate"})",
      R"({"op":"stats","id":-1})",
      R"({"op":"stats","id":1.5})",
  };
  for (const char* input : bad_without_id) {
    long long id = -1;
    Result<Request> request = ParseRequest(input, &id);
    ASSERT_FALSE(request.ok()) << "accepted: " << input;
    EXPECT_EQ(id, -1) << "id invented on: " << input;
  }

  // And on success the id comes through both channels.
  long long id = -1;
  Result<Request> ok = ParseRequest(R"({"op":"stats","id":33})", &id);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->id, 33);
  EXPECT_EQ(id, 33);
}

TEST(ServeProtocolTest, EncodeErrorIsValidJson) {
  std::string with_id = EncodeError(42, "bad \"stuff\"\n");
  Result<JsonValue> parsed = ParseJson(with_id);
  ASSERT_TRUE(parsed.ok()) << with_id;
  EXPECT_FALSE(parsed->Find("ok")->boolean);
  EXPECT_DOUBLE_EQ(parsed->Find("id")->number, 42.0);
  EXPECT_EQ(parsed->Find("error")->string, "bad \"stuff\"\n");

  std::string without_id = EncodeError(-1, "oops");
  Result<JsonValue> anon = ParseJson(without_id);
  ASSERT_TRUE(anon.ok()) << without_id;
  EXPECT_EQ(anon->Find("id"), nullptr);
  EXPECT_EQ(anon->Find("error")->string, "oops");
}

// The structured load-shedding response must re-parse through the wire
// parser so clients can machine-match error == "overloaded" and honor the
// retry hint.
TEST(ServeProtocolTest, EncodeOverloadedReparses) {
  BatchRejection rejection;
  rejection.retry_after_ms = 12.5;
  rejection.pending_batches = 3;
  rejection.pending_records = 450;

  std::string with_id = EncodeOverloaded(42, rejection);
  Result<JsonValue> parsed = ParseJson(with_id);
  ASSERT_TRUE(parsed.ok()) << with_id;
  EXPECT_FALSE(parsed->Find("ok")->boolean);
  EXPECT_DOUBLE_EQ(parsed->Find("id")->number, 42.0);
  EXPECT_EQ(parsed->Find("error")->string, "overloaded");
  EXPECT_DOUBLE_EQ(parsed->Find("retry_after_ms")->number, 12.5);
  EXPECT_DOUBLE_EQ(parsed->Find("pending_batches")->number, 3.0);
  EXPECT_DOUBLE_EQ(parsed->Find("pending_records")->number, 450.0);

  std::string without_id = EncodeOverloaded(-1, rejection);
  Result<JsonValue> anon = ParseJson(without_id);
  ASSERT_TRUE(anon.ok()) << without_id;
  EXPECT_EQ(anon->Find("id"), nullptr);
  EXPECT_EQ(anon->Find("error")->string, "overloaded");
}

}  // namespace
}  // namespace bdi::serve
