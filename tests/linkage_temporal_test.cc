#include "bdi/linkage/temporal.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "bdi/synth/world.h"

namespace bdi::linkage {
namespace {

TEST(TemporalThresholdTest, DecaysTowardFloor) {
  EXPECT_DOUBLE_EQ(TemporalThreshold(0.9, 0.7, 3.0, 0.0), 0.9);
  double at3 = TemporalThreshold(0.9, 0.7, 3.0, 3.0);
  EXPECT_NEAR(at3, 0.8, 1e-9);  // half of the relaxation at the half life
  double at_large = TemporalThreshold(0.9, 0.7, 3.0, 100.0);
  EXPECT_NEAR(at_large, 0.7, 1e-6);
  // Monotone non-increasing in dt.
  double previous = 1.0;
  for (double dt : {0.0, 1.0, 2.0, 4.0, 8.0}) {
    double threshold = TemporalThreshold(0.9, 0.7, 3.0, dt);
    EXPECT_LE(threshold, previous + 1e-12);
    previous = threshold;
  }
}

synth::TemporalCorpus DriftingCorpus(double name_drift, int snapshots,
                                     double death_rate = 0.05) {
  synth::WorldConfig config;
  config.seed = 311;
  config.num_entities = 120;
  config.num_sources = 8;
  config.publish_identifiers = false;  // ids would trivialize the task
  synth::TemporalConfig temporal;
  temporal.name_drift_rate = name_drift;
  temporal.record_death_rate = death_rate;
  temporal.record_birth_rate = 0.05;
  temporal.source_death_rate = 0.0;
  temporal.entity_birth_rate = 0.0;
  temporal.value_change_rate = 0.05;
  return synth::GenerateTemporalCorpus(config, temporal, snapshots);
}

TEST(TemporalCorpusTest, ShapeInvariants) {
  synth::TemporalCorpus corpus = DriftingCorpus(0.1, 4);
  EXPECT_EQ(corpus.record_time.size(), corpus.dataset.num_records());
  EXPECT_EQ(corpus.entity_of_record.size(), corpus.dataset.num_records());
  EXPECT_EQ(corpus.num_snapshots, 4);
  double max_time = 0.0;
  for (double t : corpus.record_time) {
    EXPECT_GE(t, 0.0);
    max_time = std::max(max_time, t);
  }
  EXPECT_DOUBLE_EQ(max_time, 3.0);
}

TEST(TemporalCorpusTest, NameDriftActuallyDriftsNames) {
  synth::TemporalCorpus still = DriftingCorpus(0.0, 3);
  synth::TemporalCorpus drifting = DriftingCorpus(0.35, 3);
  // Collect per-entity distinct first-field values (display names).
  auto distinct_names = [](const synth::TemporalCorpus& corpus) {
    std::map<EntityId, std::set<std::string>> names;
    for (const Record& record : corpus.dataset.records()) {
      if (!record.fields.empty()) {
        names[corpus.entity_of_record[record.idx]].insert(
            record.fields[0].value);
      }
    }
    double total = 0.0;
    for (const auto& [entity, set] : names) {
      total += static_cast<double>(set.size());
    }
    return total / static_cast<double>(names.size());
  };
  // Noise makes names vary anyway, but drift must add to it.
  EXPECT_GT(distinct_names(drifting), distinct_names(still));
}

TEST(LinkTemporalTest, BeatsStaticThresholdOnDriftingCorpus) {
  // Gappy observations (high page churn): entities disappear and reappear
  // snapshots later with drifted names, so chaining through intermediate
  // records cannot rescue a static threshold.
  synth::TemporalCorpus corpus = DriftingCorpus(0.30, 6, 0.35);

  TemporalLinkConfig temporal_config;
  TemporalLinkageResult temporal =
      LinkTemporal(corpus.dataset, corpus.record_time, temporal_config);
  LinkageQuality temporal_quality = EvaluateClusters(
      temporal.clusters.label_of_record, corpus.entity_of_record);

  // Static control: the same matcher with no relaxation.
  TemporalLinkConfig static_config = temporal_config;
  static_config.min_threshold = static_config.base_threshold;
  static_config.same_source_min_threshold = static_config.base_threshold;
  static_config.min_value_threshold = static_config.base_value_threshold;
  TemporalLinkageResult static_result =
      LinkTemporal(corpus.dataset, corpus.record_time, static_config);
  LinkageQuality static_quality = EvaluateClusters(
      static_result.clusters.label_of_record, corpus.entity_of_record);

  EXPECT_GT(temporal.relaxed_matches, 0u);
  EXPECT_EQ(static_result.relaxed_matches, 0u);
  EXPECT_GT(temporal_quality.recall, static_quality.recall);
  EXPECT_GE(temporal_quality.f1, static_quality.f1 - 0.02);
}

TEST(LinkTemporalTest, NoDriftNoHarm) {
  synth::TemporalCorpus corpus = DriftingCorpus(0.0, 4);
  TemporalLinkageResult temporal =
      LinkTemporal(corpus.dataset, corpus.record_time);
  LinkageQuality quality = EvaluateClusters(
      temporal.clusters.label_of_record, corpus.entity_of_record);
  EXPECT_GE(quality.precision, 0.8);
  EXPECT_GE(quality.recall, 0.8);
}

TEST(LinkTemporalTest, SameSourceHistoryLinks) {
  // One site republishing the same (id-less) product in 3 snapshots with a
  // drifted name must still end up as one entity chain.
  Dataset dataset;
  SourceId s0 = dataset.AddSource("s0");
  SourceId s1 = dataset.AddSource("s1");
  // Entity chain: name drifts "Zorix QX-11" -> "Zorix QX-11 mk2".
  dataset.AddRecord(s0, {{"name", "Zorix QX-11 camera"}, {"color", "red"}});
  dataset.AddRecord(s0, {{"name", "Zorix QX-11 camera mk2"},
                         {"color", "red"}});
  dataset.AddRecord(s0, {{"name", "Zorix QX-11 mk2"}, {"color", "red"}});
  // Unrelated entity at another site.
  dataset.AddRecord(s1, {{"name", "Belar TT-900 camera"},
                         {"color", "blue"}});
  for (int i = 0; i < 12; ++i) {
    dataset.AddRecord(s1, {{"name", "Filler F" + std::to_string(i) +
                                        " gadget"},
                           {"color", i % 2 == 0 ? "red" : "blue"}});
  }
  std::vector<double> times(dataset.num_records(), 0.0);
  times[1] = 2.0;
  times[2] = 4.0;
  TemporalLinkageResult result = LinkTemporal(dataset, times);
  EXPECT_EQ(result.clusters.label_of_record[0],
            result.clusters.label_of_record[1]);
  EXPECT_EQ(result.clusters.label_of_record[1],
            result.clusters.label_of_record[2]);
  EXPECT_NE(result.clusters.label_of_record[0],
            result.clusters.label_of_record[3]);
}

}  // namespace
}  // namespace bdi::linkage
