#include "bdi/core/query.h"

#include <gtest/gtest.h>

#include <memory>

#include "bdi/synth/world.h"

namespace bdi::core {
namespace {

struct Fixture {
  synth::SyntheticWorld world;
  IntegrationReport report;
  std::unique_ptr<QueryEngine> engine;

  Fixture() {
    synth::WorldConfig config;
    config.seed = 1001;
    config.category = "camera";
    config.num_entities = 100;
    config.num_sources = 10;
    world = synth::GenerateWorld(config);
    report = Integrator().Run(world.dataset);
    engine = std::make_unique<QueryEngine>(&report, &world.dataset);
  }

  /// A head entity's display name and its true value for `canonical_attr`.
  std::pair<std::string, std::string> HeadEntityAndTruth(
      const std::string& canonical_attr) {
    int attr_index = -1;
    for (size_t a = 0; a < world.truth.canonical_attrs.size(); ++a) {
      if (world.truth.canonical_attrs[a] == canonical_attr) {
        attr_index = static_cast<int>(a);
      }
    }
    EXPECT_GE(attr_index, 0);
    for (size_t e = 0; e < world.truth.num_entities(); ++e) {
      const auto& values = world.truth.true_values[e];
      if (!values[attr_index].empty()) {
        return {values[0], values[attr_index]};  // values[0] = name
      }
    }
    ADD_FAILURE() << "no entity has " << canonical_attr;
    return {"", ""};
  }
};

TEST(QueryEngineTest, FindEntitiesRanksExactNameFirst) {
  Fixture fx;
  auto [name, truth] = fx.HeadEntityAndTruth("brand");
  auto hits = fx.engine->FindEntities(name, 3);
  ASSERT_FALSE(hits.empty());
  // The top hit's representative text should share the model token.
  EXPECT_GT(hits[0].second, 0.8);
}

TEST(QueryEngineTest, FindAttributeMatchesSynonyms) {
  Fixture fx;
  auto [attr, score] = fx.engine->FindAttribute("brand");
  ASSERT_GE(attr, 0);
  EXPECT_GE(score, 0.8);
  EXPECT_NE(fx.report.schema.cluster_names[attr].find("brand"),
            std::string::npos);
}

TEST(QueryEngineTest, AskAnswersWithProvenance) {
  Fixture fx;
  auto [name, truth] = fx.HeadEntityAndTruth("brand");
  Answer answer = fx.engine->Ask("brand", name);
  ASSERT_TRUE(answer.found()) << "no answer for '" << name << "'";
  EXPECT_EQ(answer.value, truth);
  EXPECT_FALSE(answer.support.empty());
  bool any_agrees = false;
  for (const AnswerSupport& support : answer.support) {
    if (support.agrees) {
      any_agrees = true;
      EXPECT_EQ(support.value, answer.value);
    }
  }
  EXPECT_TRUE(any_agrees);
  EXPECT_GT(answer.confidence, 0.4);
}

TEST(QueryEngineTest, UnknownAttributeYieldsNoAnswer) {
  Fixture fx;
  auto [name, truth] = fx.HeadEntityAndTruth("brand");
  Answer answer = fx.engine->Ask("zzzzqqqq", name);
  EXPECT_FALSE(answer.found());
}

TEST(QueryEngineTest, UnknownEntityYieldsNoAnswer) {
  Fixture fx;
  Answer answer = fx.engine->Ask("brand", "nonexistent gizmo xq999");
  // Either no entity at all, or a weak match that still lacks the value —
  // but never a confident fabricated answer.
  if (answer.found()) {
    EXPECT_LT(answer.entity_match, 0.6);
  }
}

TEST(QueryEngineTest, MostQueriesAnswerCorrectlyOnHeadEntities) {
  Fixture fx;
  int attr_index = -1;
  for (size_t a = 0; a < fx.world.truth.canonical_attrs.size(); ++a) {
    if (fx.world.truth.canonical_attrs[a] == "color") {
      attr_index = static_cast<int>(a);
    }
  }
  ASSERT_GE(attr_index, 0);
  int asked = 0, correct = 0;
  for (size_t e = 0; e < 20; ++e) {  // head entities
    const auto& values = fx.world.truth.true_values[e];
    if (values[attr_index].empty()) continue;
    Answer answer = fx.engine->Ask("color", values[0]);
    if (!answer.found()) continue;
    ++asked;
    if (answer.value == values[attr_index]) ++correct;
  }
  ASSERT_GE(asked, 10);
  EXPECT_GE(static_cast<double>(correct) / asked, 0.7);
}

}  // namespace
}  // namespace bdi::core
