#include "bdi/synth/world.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

namespace bdi::synth {
namespace {

WorldConfig SmallConfig() {
  WorldConfig config;
  config.seed = 5;
  config.num_entities = 120;
  config.num_sources = 8;
  config.category = "camera";
  return config;
}

TEST(WorldTest, DeterministicForSameSeed) {
  SyntheticWorld a = GenerateWorld(SmallConfig());
  SyntheticWorld b = GenerateWorld(SmallConfig());
  ASSERT_EQ(a.dataset.num_records(), b.dataset.num_records());
  EXPECT_EQ(a.truth.entity_of_record, b.truth.entity_of_record);
  for (size_t i = 0; i < a.dataset.num_records(); ++i) {
    const Record& ra = a.dataset.record(static_cast<RecordIdx>(i));
    const Record& rb = b.dataset.record(static_cast<RecordIdx>(i));
    ASSERT_EQ(ra.fields.size(), rb.fields.size());
    for (size_t f = 0; f < ra.fields.size(); ++f) {
      EXPECT_EQ(ra.fields[f].value, rb.fields[f].value);
    }
  }
}

TEST(WorldTest, DifferentSeedsProduceDifferentWorlds) {
  WorldConfig config = SmallConfig();
  SyntheticWorld a = GenerateWorld(config);
  config.seed = 6;
  SyntheticWorld b = GenerateWorld(config);
  EXPECT_NE(a.truth.true_values, b.truth.true_values);
}

TEST(WorldTest, EveryRecordHasEntityLabel) {
  SyntheticWorld world = GenerateWorld(SmallConfig());
  ASSERT_EQ(world.truth.entity_of_record.size(),
            world.dataset.num_records());
  for (EntityId e : world.truth.entity_of_record) {
    EXPECT_GE(e, 0);
    EXPECT_LT(static_cast<size_t>(e), world.truth.num_entities());
  }
}

TEST(WorldTest, SourceSizesDecay) {
  WorldConfig config = SmallConfig();
  config.num_entities = 400;
  SyntheticWorld world = GenerateWorld(config);
  size_t first = world.dataset.source(0).records.size();
  size_t last =
      world.dataset.source(static_cast<SourceId>(config.num_sources - 1))
          .records.size();
  EXPECT_GT(first, last);  // head source much larger than tail source
  EXPECT_GE(last, 1u);
}

TEST(WorldTest, HeadEntitiesCoveredByMoreSources) {
  WorldConfig config = SmallConfig();
  config.num_entities = 300;
  config.entity_zipf_s = 1.2;
  SyntheticWorld world = GenerateWorld(config);
  std::vector<std::set<SourceId>> sources_of(world.truth.num_entities());
  for (size_t r = 0; r < world.dataset.num_records(); ++r) {
    sources_of[world.truth.entity_of_record[r]].insert(
        world.dataset.record(static_cast<RecordIdx>(r)).source);
  }
  double head = 0.0, tail = 0.0;
  for (int e = 0; e < 30; ++e) head += static_cast<double>(sources_of[e].size());
  for (size_t e = world.truth.num_entities() - 30;
       e < world.truth.num_entities(); ++e) {
    tail += static_cast<double>(sources_of[e].size());
  }
  EXPECT_GT(head, tail);
}

TEST(WorldTest, GroundTruthSchemaMappingCoversAllSourceAttrs) {
  SyntheticWorld world = GenerateWorld(SmallConfig());
  size_t mapped = 0;
  for (const SourceAttr& sa : world.dataset.AllSourceAttrs()) {
    auto it = world.truth.canonical_of_source_attr.find(sa);
    if (it != world.truth.canonical_of_source_attr.end()) {
      ++mapped;
      EXPECT_GE(it->second, 0);
      EXPECT_LT(static_cast<size_t>(it->second),
                world.truth.canonical_attrs.size());
    }
  }
  // Everything except the occasional "related products" attr is mapped.
  EXPECT_GE(mapped + 10, world.dataset.AllSourceAttrs().size());
  EXPECT_GT(mapped, 0u);
}

TEST(WorldTest, ClaimsReferenceValidItems) {
  SyntheticWorld world = GenerateWorld(SmallConfig());
  ASSERT_FALSE(world.truth.claims.empty());
  for (const GroundTruth::TrueClaim& claim : world.truth.claims) {
    ASSERT_GE(claim.entity, 0);
    ASSERT_LT(static_cast<size_t>(claim.entity),
              world.truth.true_values.size());
    ASSERT_GE(claim.canonical_attr, 2);  // 0=name, 1=id are not claimed
    ASSERT_LT(static_cast<size_t>(claim.canonical_attr),
              world.truth.canonical_attrs.size());
    // The claimed item must exist in the truth (entity has a value).
    EXPECT_FALSE(
        world.truth.true_values[claim.entity][claim.canonical_attr].empty());
  }
}

TEST(WorldTest, SourceAccuracyRoughlyMatchesConfiguredAccuracy) {
  WorldConfig config = SmallConfig();
  config.num_entities = 500;
  config.num_sources = 6;
  config.source_accuracy_min = 0.9;
  config.source_accuracy_max = 0.9;
  config.format_variation_prob = 0.0;
  SyntheticWorld world = GenerateWorld(config);
  size_t correct = 0, total = 0;
  for (const GroundTruth::TrueClaim& claim : world.truth.claims) {
    ++total;
    if (claim.value ==
        world.truth.true_values[claim.entity][claim.canonical_attr]) {
      ++correct;
    }
  }
  ASSERT_GT(total, 500u);
  EXPECT_NEAR(static_cast<double>(correct) / static_cast<double>(total), 0.9,
              0.03);
}

TEST(WorldTest, CopiersShareClaimsWithOriginals) {
  WorldConfig config = SmallConfig();
  config.num_sources = 10;
  config.num_copiers = 3;
  config.copy_rate = 0.9;
  SyntheticWorld world = GenerateWorld(config);
  EXPECT_EQ(world.truth.copy_edges.size(), 3u);
  // Copied claims must equal the original's claim on the same item.
  std::map<std::tuple<SourceId, EntityId, int>, std::string> claim_of;
  for (const GroundTruth::TrueClaim& claim : world.truth.claims) {
    claim_of[{claim.source, claim.entity, claim.canonical_attr}] =
        claim.value;
  }
  std::map<SourceId, SourceId> original_of;
  for (const CopyEdge& edge : world.truth.copy_edges) {
    EXPECT_GE(edge.copier, 0);
    EXPECT_GE(edge.original, 0);
    EXPECT_NE(edge.copier, edge.original);
    original_of[edge.copier] = edge.original;
  }
  size_t copied_claims = 0;
  for (const GroundTruth::TrueClaim& claim : world.truth.claims) {
    if (!claim.copied) continue;
    ++copied_claims;
    auto it = original_of.find(claim.source);
    ASSERT_NE(it, original_of.end())
        << "copied claim from non-copier source";
    auto original_claim =
        claim_of.find({it->second, claim.entity, claim.canonical_attr});
    ASSERT_NE(original_claim, claim_of.end());
    EXPECT_EQ(claim.value, original_claim->second);
  }
  EXPECT_GT(copied_claims, 0u);
}

TEST(WorldTest, IdentifiersMostlyPresentAndUniquePerEntity) {
  WorldConfig config = SmallConfig();
  config.identifier_presence_prob = 1.0;
  config.identifier_noise_prob = 0.0;
  SyntheticWorld world = GenerateWorld(config);
  // Each entity's identifier is distinct.
  std::set<std::string> ids;
  for (const auto& values : world.truth.true_values) {
    ids.insert(values[1]);
  }
  EXPECT_EQ(ids.size(), world.truth.num_entities());
}

TEST(WorldTest, DefaultAttributesKnownCategories) {
  for (const char* category :
       {"camera", "headphone", "tv", "stock", "flight", "book", "unknown"}) {
    std::vector<AttributeSpec> specs = DefaultAttributes(category);
    EXPECT_GE(specs.size(), 5u) << category;
    for (const AttributeSpec& spec : specs) {
      EXPECT_FALSE(spec.name.empty());
      EXPECT_GT(spec.presence_prob, 0.0);
    }
  }
}

TEST(WorldSimulatorTest, StepChangesTheWorld) {
  WorldConfig config = SmallConfig();
  WorldSimulator simulator(config);
  SyntheticWorld before = simulator.Snapshot();
  TemporalConfig temporal;
  temporal.record_death_rate = 0.2;
  temporal.entity_birth_rate = 0.05;
  simulator.Step(temporal);
  SyntheticWorld after = simulator.Snapshot();
  EXPECT_GT(after.truth.num_entities(), before.truth.num_entities());
  EXPECT_NE(after.dataset.num_records(), before.dataset.num_records());
}

TEST(WorldSimulatorTest, SourceDeathRemovesSources) {
  WorldConfig config = SmallConfig();
  WorldSimulator simulator(config);
  TemporalConfig temporal;
  temporal.source_death_rate = 1.0;  // everything dies in one step
  simulator.Step(temporal);
  EXPECT_EQ(simulator.num_alive_sources(), 0u);
  SyntheticWorld after = simulator.Snapshot();
  EXPECT_EQ(after.dataset.num_records(), 0u);
}

TEST(WorldSimulatorTest, SnapshotIsStableWithoutStep) {
  WorldSimulator simulator(SmallConfig());
  SyntheticWorld a = simulator.Snapshot();
  SyntheticWorld b = simulator.Snapshot();
  EXPECT_EQ(a.dataset.num_records(), b.dataset.num_records());
  EXPECT_EQ(a.truth.entity_of_record, b.truth.entity_of_record);
}

TEST(WorldSimulatorTest, ValueDriftInvalidatesStaleClaims) {
  WorldConfig config = SmallConfig();
  config.num_entities = 300;
  config.source_accuracy_min = 1.0;
  config.source_accuracy_max = 1.0;
  WorldSimulator simulator(config);
  TemporalConfig temporal;
  temporal.value_change_rate = 0.5;
  temporal.refresh_prob = 0.0;  // nobody refreshes
  temporal.record_death_rate = 0.0;
  temporal.record_birth_rate = 0.0;
  temporal.source_death_rate = 0.0;
  temporal.entity_birth_rate = 0.0;
  simulator.Step(temporal);
  SyntheticWorld after = simulator.Snapshot();
  size_t stale = 0, total = 0;
  for (const GroundTruth::TrueClaim& claim : after.truth.claims) {
    ++total;
    if (claim.value !=
        after.truth.true_values[claim.entity][claim.canonical_attr]) {
      ++stale;
    }
  }
  // Perfectly accurate sources are now wrong on roughly half the items.
  EXPECT_NEAR(static_cast<double>(stale) / static_cast<double>(total), 0.5,
              0.1);
}

}  // namespace
}  // namespace bdi::synth
