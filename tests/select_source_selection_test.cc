#include "bdi/select/source_selection.h"

#include <gtest/gtest.h>

#include "bdi/fusion/accu.h"
#include "bdi/fusion/evaluation.h"
#include "bdi/synth/world.h"

namespace bdi::select {
namespace {

TEST(EstimateFusionAccuracyTest, MoreGoodSourcesHelp) {
  SelectionConfig config;
  double one = EstimateFusionAccuracy({0.8}, config);
  double three = EstimateFusionAccuracy({0.8, 0.8, 0.8}, config);
  double five = EstimateFusionAccuracy({0.8, 0.8, 0.8, 0.8, 0.8}, config);
  EXPECT_GT(three, one);
  EXPECT_GT(five, three);
  EXPECT_NEAR(one, 0.8, 0.03);
}

TEST(EstimateFusionAccuracyTest, BadSourcesHurt) {
  SelectionConfig config;
  double clean = EstimateFusionAccuracy({0.9, 0.9}, config);
  double polluted = EstimateFusionAccuracy(
      {0.9, 0.9, 0.15, 0.15, 0.15, 0.15, 0.15, 0.15}, config);
  EXPECT_LT(polluted, clean);
}

TEST(EstimateFusionAccuracyTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(EstimateFusionAccuracy({}, {}), 0.0);
}

TEST(EstimateCoverageTest, IndependentUnion) {
  EXPECT_DOUBLE_EQ(EstimateCoverage({}), 0.0);
  EXPECT_NEAR(EstimateCoverage({0.5, 0.5}), 0.75, 1e-12);
  EXPECT_NEAR(EstimateCoverage({1.0, 0.2}), 1.0, 1e-12);
}

TEST(EstimateFusionAccuracyTest, WeightedModeIsUpperBound) {
  // Accuracy-weighted (oracle-weighted) voting never does worse than
  // plain majority on the same accuracy profile.
  SelectionConfig majority;
  SelectionConfig weighted;
  weighted.accuracy_weighted = true;
  std::vector<double> accuracies = {0.9, 0.9, 0.3, 0.3, 0.3};
  double plain = EstimateFusionAccuracy(accuracies, majority);
  double oracle = EstimateFusionAccuracy(accuracies, weighted);
  EXPECT_GE(oracle, plain - 0.02);
}

std::vector<SourceProfile> MixedProfiles() {
  std::vector<SourceProfile> profiles;
  // 4 good sources, then a tail of bad ones.
  for (int i = 0; i < 4; ++i) {
    profiles.push_back(
        {static_cast<SourceId>(i), 0.9, 0.4 - 0.05 * i, 1.0});
  }
  for (int i = 4; i < 16; ++i) {
    profiles.push_back({static_cast<SourceId>(i), 0.3, 0.1, 1.0});
  }
  return profiles;
}

TEST(GreedySelectTest, OrdersGoodSourcesFirst) {
  SelectionResult result = GreedySelect(MixedProfiles(), {});
  // The first picks must be among the four good sources.
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_LT(result.order[k], 4) << "position " << k;
  }
  EXPECT_EQ(result.order.size(), 16u);
  EXPECT_EQ(result.quality.size(), 16u);
}

TEST(GreedySelectTest, LessIsMorePeak) {
  // With a cost per source, the best prefix excludes the junk tail.
  SelectionConfig config;
  config.cost_weight = 0.005;
  SelectionResult result = GreedySelect(MixedProfiles(), config);
  EXPECT_GE(result.best_prefix, 2u);
  EXPECT_LE(result.best_prefix, 8u);
  // Gain declines after the peak.
  EXPECT_GT(result.gain[result.best_prefix - 1], result.gain.back());
}

TEST(GreedySelectTest, BeatsRandomOrder) {
  SelectionConfig config;
  SelectionResult greedy = GreedySelect(MixedProfiles(), config);
  SelectionResult random = RandomOrder(MixedProfiles(), config);
  // Compare the area under the first half of the quality curve.
  double greedy_area = 0.0, random_area = 0.0;
  for (size_t k = 0; k < 8; ++k) {
    greedy_area += greedy.quality[k];
    random_area += random.quality[k];
  }
  EXPECT_GE(greedy_area, random_area);
}

TEST(OrderingBaselinesTest, CurvesHaveFullLength) {
  for (const SelectionResult& result :
       {OrderByAccuracy(MixedProfiles(), {}),
        OrderByCoverage(MixedProfiles(), {}),
        RandomOrder(MixedProfiles(), {})}) {
    EXPECT_EQ(result.order.size(), 16u);
    EXPECT_EQ(result.gain.size(), 16u);
    EXPECT_EQ(result.cost.size(), 16u);
    EXPECT_GE(result.best_prefix, 1u);
    // Cost is cumulative and increasing.
    for (size_t k = 1; k < result.cost.size(); ++k) {
      EXPECT_GT(result.cost[k], result.cost[k - 1]);
    }
  }
}

TEST(OrderByAccuracyTest, SortsDescending) {
  SelectionResult result = OrderByAccuracy(MixedProfiles(), {});
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_LT(result.order[k], 4);
  }
}

TEST(RestrictToSourcesTest, FiltersClaims) {
  fusion::ClaimDb db;
  db.set_num_sources(3);
  fusion::DataItem item;
  item.entity = 0;
  item.attr = 2;
  item.claims = {{0, "a"}, {1, "b"}, {2, "c"}};
  db.AddItem(item);
  fusion::DataItem only2;
  only2.entity = 1;
  only2.attr = 2;
  only2.claims = {{2, "z"}};
  db.AddItem(only2);

  fusion::ClaimDb restricted = RestrictToSources(db, {true, false, false});
  ASSERT_EQ(restricted.items().size(), 1u);  // item 2 dropped entirely
  EXPECT_EQ(restricted.items()[0].claims.size(), 1u);
  EXPECT_EQ(restricted.items()[0].claims[0].value, "a");
  EXPECT_EQ(restricted.num_sources(), 3u);
}

TEST(SelectionOnWorldTest, MeasuredQualityTracksEstimate) {
  // Integrate the best-k sources of a world and verify the measured fused
  // precision with good sources beats using everything including junk.
  synth::WorldConfig config;
  config.seed = 101;
  config.num_entities = 150;
  config.num_sources = 14;
  config.source_accuracy_min = 0.45;
  config.source_accuracy_max = 0.95;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  fusion::ClaimDb db =
      fusion::ClaimDb::FromGroundTruth(world.truth,
                                       world.dataset.num_sources());

  // Oracle profiles from the generator's accuracies.
  std::vector<SourceProfile> profiles;
  for (size_t s = 0; s < world.truth.source_accuracy.size(); ++s) {
    profiles.push_back(
        {static_cast<SourceId>(s), world.truth.source_accuracy[s],
         static_cast<double>(world.dataset.source(s).records.size()) /
             static_cast<double>(world.truth.num_entities()),
         1.0});
  }
  SelectionResult greedy = GreedySelect(profiles, {});

  auto measure = [&](const std::vector<SourceId>& ids) {
    std::vector<bool> keep(world.dataset.num_sources(), false);
    for (SourceId id : ids) keep[id] = true;
    fusion::ClaimDb subset = RestrictToSources(db, keep);
    fusion::FusionResult result = fusion::AccuFusion().Resolve(subset);
    return fusion::EvaluateFusion(subset, result, world.truth).precision;
  };
  std::vector<SourceId> best8(greedy.order.begin(), greedy.order.begin() + 8);
  std::vector<SourceId> worst8(greedy.order.end() - 8, greedy.order.end());
  double best = measure(best8);
  double worst = measure(worst8);
  EXPECT_GT(best, worst);
  EXPECT_GE(best, 0.7);
}

}  // namespace
}  // namespace bdi::select
