#include "bdi/linkage/clustering.h"

#include <gtest/gtest.h>

#include <set>

namespace bdi::linkage {
namespace {

ScoredPair SP(RecordIdx a, RecordIdx b, double s) {
  return ScoredPair{CandidatePair{a, b}, s};
}

TEST(ClusterRecordsTest, ConnectedComponentsTransitive) {
  EntityClusters clusters = ClusterRecords(
      5, {SP(0, 1, 0.9), SP(1, 2, 0.9)},
      ClusteringMethod::kConnectedComponents);
  EXPECT_EQ(clusters.label_of_record[0], clusters.label_of_record[1]);
  EXPECT_EQ(clusters.label_of_record[1], clusters.label_of_record[2]);
  EXPECT_NE(clusters.label_of_record[0], clusters.label_of_record[3]);
  EXPECT_NE(clusters.label_of_record[3], clusters.label_of_record[4]);
  EXPECT_EQ(clusters.num_clusters, 3u);
}

TEST(ClusterRecordsTest, NoMatchesAllSingletons) {
  for (ClusteringMethod method :
       {ClusteringMethod::kConnectedComponents, ClusteringMethod::kCenter,
        ClusteringMethod::kCorrelationPivot}) {
    EntityClusters clusters = ClusterRecords(4, {}, method);
    EXPECT_EQ(clusters.num_clusters, 4u);
    std::set<EntityId> labels(clusters.label_of_record.begin(),
                              clusters.label_of_record.end());
    EXPECT_EQ(labels.size(), 4u);
  }
}

TEST(ClusterRecordsTest, LabelsAreDense) {
  for (ClusteringMethod method :
       {ClusteringMethod::kConnectedComponents, ClusteringMethod::kCenter,
        ClusteringMethod::kCorrelationPivot}) {
    EntityClusters clusters =
        ClusterRecords(6, {SP(0, 5, 0.9), SP(2, 3, 0.8)}, method);
    for (EntityId label : clusters.label_of_record) {
      EXPECT_GE(label, 0);
      EXPECT_LT(static_cast<size_t>(label), clusters.num_clusters);
    }
  }
}

TEST(ClusterRecordsTest, CenterResistsChaining) {
  // Chain 0-1, 1-2, 2-3 with decreasing scores: connected components makes
  // one big cluster; center clustering limits merging through non-centers.
  std::vector<ScoredPair> chain = {SP(0, 1, 0.99), SP(1, 2, 0.8),
                                   SP(2, 3, 0.7)};
  EntityClusters cc =
      ClusterRecords(4, chain, ClusteringMethod::kConnectedComponents);
  EXPECT_EQ(cc.num_clusters, 1u);
  EntityClusters center = ClusterRecords(4, chain, ClusteringMethod::kCenter);
  EXPECT_GT(center.num_clusters, 1u);
  // But the strongest pair stays together.
  EXPECT_EQ(center.label_of_record[0], center.label_of_record[1]);
}

TEST(ClusterRecordsTest, CorrelationPivotAbsorbsNeighbors) {
  EntityClusters clusters = ClusterRecords(
      4, {SP(0, 1, 0.9), SP(0, 2, 0.9), SP(1, 2, 0.9)},
      ClusteringMethod::kCorrelationPivot);
  EXPECT_EQ(clusters.label_of_record[0], clusters.label_of_record[1]);
  EXPECT_EQ(clusters.label_of_record[0], clusters.label_of_record[2]);
  EXPECT_NE(clusters.label_of_record[0], clusters.label_of_record[3]);
}

TEST(ClusterRecordsTest, ZeroRecords) {
  EntityClusters clusters =
      ClusterRecords(0, {}, ClusteringMethod::kConnectedComponents);
  EXPECT_EQ(clusters.num_clusters, 0u);
  EXPECT_TRUE(clusters.label_of_record.empty());
}

TEST(EvaluateClustersTest, PerfectMatch) {
  std::vector<EntityId> labels = {0, 0, 1, 1, 2};
  LinkageQuality quality = EvaluateClusters(labels, labels);
  EXPECT_DOUBLE_EQ(quality.precision, 1.0);
  EXPECT_DOUBLE_EQ(quality.recall, 1.0);
  EXPECT_DOUBLE_EQ(quality.f1, 1.0);
  EXPECT_EQ(quality.true_pairs, 2u);
}

TEST(EvaluateClustersTest, OverMergedLosesPrecision) {
  std::vector<EntityId> predicted = {0, 0, 0, 0};
  std::vector<EntityId> truth = {0, 0, 1, 1};
  LinkageQuality quality = EvaluateClusters(predicted, truth);
  EXPECT_DOUBLE_EQ(quality.recall, 1.0);
  EXPECT_DOUBLE_EQ(quality.precision, 2.0 / 6.0);
}

TEST(EvaluateClustersTest, OverSplitLosesRecall) {
  std::vector<EntityId> predicted = {0, 1, 2, 3};
  std::vector<EntityId> truth = {0, 0, 1, 1};
  LinkageQuality quality = EvaluateClusters(predicted, truth);
  EXPECT_DOUBLE_EQ(quality.precision, 1.0);  // vacuous: no predicted pairs
  EXPECT_DOUBLE_EQ(quality.recall, 0.0);
}

TEST(EvaluateClustersTest, AgreesWithBruteForceOnRandomInputs) {
  // Property check of the contingency-count shortcut against an O(n^2)
  // reference implementation.
  std::vector<EntityId> predicted = {0, 1, 0, 2, 1, 0, 2, 2, 1, 0};
  std::vector<EntityId> truth = {0, 0, 0, 1, 1, 2, 2, 1, 0, 0};
  size_t tp = 0, pred = 0, act = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    for (size_t j = i + 1; j < predicted.size(); ++j) {
      bool p = predicted[i] == predicted[j];
      bool a = truth[i] == truth[j];
      if (p) ++pred;
      if (a) ++act;
      if (p && a) ++tp;
    }
  }
  LinkageQuality quality = EvaluateClusters(predicted, truth);
  EXPECT_EQ(quality.predicted_pairs, pred);
  EXPECT_EQ(quality.true_pairs, act);
  EXPECT_EQ(quality.correct_pairs, tp);
}

}  // namespace
}  // namespace bdi::linkage
