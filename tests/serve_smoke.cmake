# End-to-end smoke of the `bdi serve` loop, run by ctest as ServeSmoke
# (see tests/CMakeLists.txt): generate a tiny corpus, start the server on
# stdio, pipe a stats query, a find, a malformed line, an update batch and
# a shutdown through it, and check every response line came back.
#
#   cmake -DBDI_CLI=<bdi binary> -DWORK_DIR=<scratch dir> -P serve_smoke.cmake
if(NOT DEFINED BDI_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
      "usage: cmake -DBDI_CLI=<bdi> -DWORK_DIR=<dir> -P serve_smoke.cmake")
endif()

file(MAKE_DIRECTORY ${WORK_DIR})
set(corpus ${WORK_DIR}/corpus.csv)
execute_process(
    COMMAND ${BDI_CLI} generate --out ${corpus}
            --entities 40 --sources 5 --seed 11
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bdi generate failed (${rc})")
endif()

set(requests ${WORK_DIR}/requests.jsonl)
file(WRITE ${requests} "{\"op\":\"stats\",\"id\":1}
{\"op\":\"find\",\"id\":2,\"entity\":\"camera\",\"k\":3}
not json
{\"op\":\"update\",\"id\":3,\"records\":[{\"source\":\"smoke-src\",\"fields\":{\"name\":\"Smoke Test Entity\",\"weight\":\"1 g\"}}]}
{\"op\":\"stats\",\"id\":4}
{\"op\":\"shutdown\",\"id\":5}
")

execute_process(
    COMMAND ${BDI_CLI} serve --in ${corpus} --shards 4
    INPUT_FILE ${requests}
    OUTPUT_VARIABLE responses
    ERROR_VARIABLE banner
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bdi serve exited ${rc}: ${banner}")
endif()

# One expected fragment per request line: the bootstrap snapshot answers
# v=1, the malformed line turns into an ok:false error (never a crash),
# the update publishes v=2 and the follow-up stats sees it, shutdown says
# bye and the process exited 0 above.
foreach(needle
    "\"ok\":true,\"id\":1,\"v\":1"
    "\"ok\":true,\"id\":2,\"v\":1"
    "\"ok\":false,\"error\":"
    "\"ok\":true,\"id\":3,\"v\":2"
    "\"ok\":true,\"id\":4,\"v\":2"
    "\"bye\":true")
  string(FIND "${responses}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR
        "serve response missing '${needle}'; full output:\n${responses}")
  endif()
endforeach()

# Restart leg: run the same session with --wal, stop cleanly, then restart
# on the same log with the same bootstrap. The replayed store must already
# be at v2 with the batch counted — durable serving survives a restart.
set(wal ${WORK_DIR}/serve.wal)
file(REMOVE ${wal})
execute_process(
    COMMAND ${BDI_CLI} serve --in ${corpus} --shards 4 --wal ${wal}
    INPUT_FILE ${requests}
    OUTPUT_VARIABLE responses
    ERROR_VARIABLE banner
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bdi serve --wal exited ${rc}: ${banner}")
endif()
string(FIND "${responses}" "\"ok\":true,\"id\":3,\"v\":2" at)
if(at EQUAL -1)
  message(FATAL_ERROR
      "durable serve lost the update; full output:\n${responses}")
endif()

set(restart_requests ${WORK_DIR}/restart_requests.jsonl)
file(WRITE ${restart_requests} "{\"op\":\"stats\",\"id\":10}
{\"op\":\"shutdown\",\"id\":11}
")
execute_process(
    COMMAND ${BDI_CLI} serve --in ${corpus} --shards 4 --wal ${wal}
    INPUT_FILE ${restart_requests}
    OUTPUT_VARIABLE responses
    ERROR_VARIABLE banner
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bdi serve restart exited ${rc}: ${banner}")
endif()
string(FIND "${banner}" "1 batches replayed" replayed_at)
if(replayed_at EQUAL -1)
  message(FATAL_ERROR
      "restart did not replay the WAL; banner:\n${banner}")
endif()
foreach(needle
    "\"ok\":true,\"id\":10,\"v\":2"
    "\"batches\":1")
  string(FIND "${responses}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR
        "restarted serve missing '${needle}'; full output:\n${responses}")
  endif()
endforeach()
message(STATUS "serve smoke ok")
