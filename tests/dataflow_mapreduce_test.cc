#include "bdi/dataflow/mapreduce.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "bdi/text/tokenizer.h"

namespace bdi::dataflow {
namespace {

TEST(MapReduceTest, WordCount) {
  std::vector<std::string> docs = {"a b a", "b c", "a"};
  auto counts = MapReduce<std::string, std::string, int,
                          std::pair<std::string, int>>(
      docs,
      [](const std::string& doc, Emitter<std::string, int>* emitter) {
        for (const std::string& token : text::WordTokens(doc)) {
          emitter->Emit(token, 1);
        }
      },
      [](const std::string& key, std::vector<int>&& values) {
        int total = 0;
        for (int v : values) total += v;
        return std::make_pair(key, total);
      });
  std::map<std::string, int> result(counts.begin(), counts.end());
  EXPECT_EQ(result["a"], 3);
  EXPECT_EQ(result["b"], 2);
  EXPECT_EQ(result["c"], 1);
  EXPECT_EQ(result.size(), 3u);
}

TEST(MapReduceTest, EmptyInput) {
  std::vector<int> empty;
  auto out = MapReduce<int, int, int, int>(
      empty, [](const int&, Emitter<int, int>*) {},
      [](const int&, std::vector<int>&&) { return 0; });
  EXPECT_TRUE(out.empty());
}

TEST(MapReduceTest, EachKeyReducedExactlyOnce) {
  std::vector<int> inputs(1000);
  for (int i = 0; i < 1000; ++i) inputs[i] = i;
  auto out = MapReduce<int, int, int, std::pair<int, size_t>>(
      inputs,
      [](const int& x, Emitter<int, int>* emitter) {
        emitter->Emit(x % 10, x);
      },
      [](const int& key, std::vector<int>&& values) {
        return std::make_pair(key, values.size());
      });
  ASSERT_EQ(out.size(), 10u);
  for (const auto& [key, count] : out) {
    EXPECT_EQ(count, 100u) << "key " << key;
  }
}

TEST(MapReduceTest, ReducerSeesAllValuesForKey) {
  std::vector<int> inputs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  MapReduceOptions options;
  options.num_threads = 3;
  options.num_partitions = 5;
  auto out = MapReduce<int, int, int, int>(
      inputs,
      [](const int& x, Emitter<int, int>* emitter) { emitter->Emit(0, x); },
      [](const int&, std::vector<int>&& values) {
        int total = 0;
        for (int v : values) total += v;
        return total;
      },
      options);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 55);
}

TEST(MapReduceTest, DeterministicAcrossThreadCounts) {
  std::vector<int> inputs(500);
  for (int i = 0; i < 500; ++i) inputs[i] = i;
  auto run = [&](size_t threads) {
    MapReduceOptions options;
    options.num_threads = threads;
    auto out = MapReduce<int, int, int, std::pair<int, int>>(
        inputs,
        [](const int& x, Emitter<int, int>* emitter) {
          emitter->Emit(x % 7, x);
        },
        [](const int& key, std::vector<int>&& values) {
          int total = 0;
          for (int v : values) total += v;
          return std::make_pair(key, total);
        },
        options);
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(run(1), run(4));
  EXPECT_EQ(run(2), run(8));
}

TEST(MapReduceTest, SinglePartitionWorks) {
  std::vector<int> inputs = {1, 2, 3, 4};
  MapReduceOptions options;
  options.num_partitions = 1;
  options.num_threads = 2;
  auto out = MapReduce<int, int, int, int>(
      inputs,
      [](const int& x, Emitter<int, int>* emitter) { emitter->Emit(x, x); },
      [](const int& key, std::vector<int>&& values) {
        return key * static_cast<int>(values.size());
      },
      options);
  EXPECT_EQ(out.size(), 4u);
}

TEST(ParallelMapTest, PreservesOrder) {
  std::vector<int> inputs = {5, 3, 8, 1};
  auto out = ParallelMap<int, int>(
      inputs, [](const int& x) { return x * 2; }, 4);
  EXPECT_EQ(out, (std::vector<int>{10, 6, 16, 2}));
}

TEST(ParallelMapTest, EmptyInput) {
  std::vector<int> empty;
  auto out = ParallelMap<int, int>(empty, [](const int& x) { return x; });
  EXPECT_TRUE(out.empty());
}

TEST(ParallelMapTest, LargeInputAllProcessed) {
  std::vector<int> inputs(10000, 1);
  auto out = ParallelMap<int, int>(
      inputs, [](const int& x) { return x + 1; }, 4);
  for (int v : out) EXPECT_EQ(v, 2);
}

TEST(EmitterTest, PartitionsByHash) {
  Emitter<int, int> emitter(4);
  for (int i = 0; i < 100; ++i) emitter.Emit(i, i);
  size_t total = 0;
  for (const auto& bucket : emitter.buckets()) total += bucket.size();
  EXPECT_EQ(total, 100u);
  // Same key always lands in the same bucket.
  Emitter<int, int> other(4);
  other.Emit(42, 1);
  other.Emit(42, 2);
  size_t nonempty = 0;
  for (const auto& bucket : other.buckets()) {
    if (!bucket.empty()) {
      ++nonempty;
      EXPECT_EQ(bucket.size(), 2u);
    }
  }
  EXPECT_EQ(nonempty, 1u);
}

}  // namespace
}  // namespace bdi::dataflow
