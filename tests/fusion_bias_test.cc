#include "bdi/fusion/bias.h"

#include <gtest/gtest.h>

#include <set>

#include "bdi/common/string_util.h"
#include "bdi/fusion/accu.h"
#include "bdi/fusion/evaluation.h"
#include "bdi/synth/world.h"

namespace bdi::fusion {
namespace {

synth::SyntheticWorld DeceitWorld(int deceitful, double inflation = 0.25) {
  synth::WorldConfig config;
  config.seed = 1401;
  config.category = "stock";  // all-numeric: deceit bites everywhere
  config.num_entities = 250;
  config.num_sources = 12;
  config.num_deceitful = deceitful;
  config.deceit_inflation = inflation;
  config.source_accuracy_min = 0.8;
  config.source_accuracy_max = 0.95;
  config.format_variation_prob = 0.0;
  return synth::GenerateWorld(config);
}

TEST(DeceitGenerationTest, DeceitfulSourcesInflateConsistently) {
  synth::SyntheticWorld world = DeceitWorld(3);
  ASSERT_EQ(world.truth.deceitful_sources.size(), 3u);
  std::set<SourceId> liars(world.truth.deceitful_sources.begin(),
                           world.truth.deceitful_sources.end());
  size_t checked = 0;
  for (const GroundTruth::TrueClaim& claim : world.truth.claims) {
    if (liars.count(claim.source) == 0) continue;
    double truth_value = 0.0, claimed = 0.0;
    const std::string& truth_text =
        world.truth.true_values[claim.entity][claim.canonical_attr];
    ASSERT_TRUE(ParseLeadingDouble(truth_text, &truth_value, nullptr));
    ASSERT_TRUE(ParseLeadingDouble(claim.value, &claimed, nullptr));
    EXPECT_NEAR(claimed / truth_value, 1.25, 0.02) << claim.value;
    ++checked;
  }
  EXPECT_GT(checked, 100u);
}

TEST(BiasDetectionTest, FlagsTheLiars) {
  synth::SyntheticWorld world = DeceitWorld(3);
  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());
  FusionResult reference = AccuFusion().Resolve(db);
  std::vector<SourceBias> biases = DetectBias(db, reference);

  std::set<SourceId> liars(world.truth.deceitful_sources.begin(),
                           world.truth.deceitful_sources.end());
  std::set<SourceId> flagged;
  for (const SourceBias& bias : biases) {
    flagged.insert(bias.source);
    EXPECT_GT(bias.relative_bias, 0.0);  // inflation is positive
  }
  // Every liar flagged on at least one attribute; no honest source flagged.
  for (SourceId liar : liars) {
    EXPECT_TRUE(flagged.count(liar) > 0) << "liar s" << liar << " missed";
  }
  for (SourceId source : flagged) {
    EXPECT_TRUE(liars.count(source) > 0)
        << "honest source s" << source << " falsely flagged";
  }
}

TEST(BiasDetectionTest, CleanWorldHasNoFlags) {
  synth::SyntheticWorld world = DeceitWorld(0);
  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());
  FusionResult reference = AccuFusion().Resolve(db);
  std::vector<SourceBias> biases = DetectBias(db, reference);
  EXPECT_TRUE(biases.empty());
}

TEST(DebiasTest, CorrectionRecoversFusionPrecision) {
  synth::SyntheticWorld world = DeceitWorld(4);
  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());
  FusionResult before = AccuFusion().Resolve(db);
  double precision_before =
      EvaluateFusion(db, before, world.truth).precision;

  std::vector<SourceBias> biases = DetectBias(db, before);
  ASSERT_FALSE(biases.empty());
  ClaimDb corrected = DebiasClaims(db, biases);
  FusionResult after = AccuFusion().Resolve(corrected);
  double precision_after =
      EvaluateFusion(corrected, after, world.truth).precision;
  EXPECT_GT(precision_after, precision_before);
}

TEST(DebiasTest, NoBiasesIsIdentity) {
  synth::SyntheticWorld world = DeceitWorld(0);
  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());
  ClaimDb copy = DebiasClaims(db, {});
  ASSERT_EQ(copy.items().size(), db.items().size());
  for (size_t i = 0; i < db.items().size(); ++i) {
    ASSERT_EQ(copy.items()[i].claims.size(), db.items()[i].claims.size());
    for (size_t c = 0; c < db.items()[i].claims.size(); ++c) {
      EXPECT_EQ(copy.items()[i].claims[c].value,
                db.items()[i].claims[c].value);
    }
  }
}

}  // namespace
}  // namespace bdi::fusion
