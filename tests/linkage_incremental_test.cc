#include "bdi/linkage/incremental.h"

#include <gtest/gtest.h>

#include "bdi/synth/world.h"

namespace bdi::linkage {
namespace {

TEST(IncrementalLinkerTest, LinksInitialCorpus) {
  synth::WorldConfig config;
  config.seed = 51;
  config.num_entities = 100;
  config.num_sources = 8;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  IncrementalLinker linker(&world.dataset, {});
  linker.AddNewRecords();
  EXPECT_EQ(linker.num_indexed(), world.dataset.num_records());
  LinkageQuality quality = EvaluateClusters(
      linker.Clusters().label_of_record, world.truth.entity_of_record);
  EXPECT_GE(quality.precision, 0.85);
  EXPECT_GE(quality.recall, 0.7);
}

TEST(IncrementalLinkerTest, IncrementalInsertsMatchNewRecords) {
  // Start with part of the corpus, then append the rest in batches; final
  // quality should be close to indexing everything at once.
  synth::WorldConfig config;
  config.seed = 53;
  config.num_entities = 100;
  config.num_sources = 8;
  synth::SyntheticWorld full = synth::GenerateWorld(config);

  // Rebuild a dataset with the same records so we control insert order:
  // first 60%, then batches.
  Dataset dataset;
  for (const SourceInfo& source : full.dataset.sources()) {
    dataset.AddSource(source.name);
  }
  size_t initial = full.dataset.num_records() * 6 / 10;
  std::vector<EntityId> truth;
  auto copy_record = [&](size_t r) {
    const Record& record = full.dataset.record(static_cast<RecordIdx>(r));
    std::vector<std::pair<std::string, std::string>> fields;
    for (const Field& field : record.fields) {
      fields.emplace_back(full.dataset.attr_name(field.attr), field.value);
    }
    dataset.AddRecord(record.source, fields);
    truth.push_back(full.truth.entity_of_record[r]);
  };
  for (size_t r = 0; r < initial; ++r) copy_record(r);

  IncrementalLinker linker(&dataset, {});
  linker.AddNewRecords();
  size_t comparisons_initial = linker.total_comparisons();

  for (size_t r = initial; r < full.dataset.num_records(); ++r) {
    copy_record(r);
  }
  size_t batch_comparisons = linker.AddNewRecords();
  EXPECT_GT(batch_comparisons, 0u);
  EXPECT_EQ(linker.num_indexed(), dataset.num_records());
  // The incremental batch costs less than re-doing everything.
  EXPECT_LT(batch_comparisons, comparisons_initial + batch_comparisons);

  LinkageQuality quality =
      EvaluateClusters(linker.Clusters().label_of_record, truth);
  EXPECT_GE(quality.precision, 0.85);
  EXPECT_GE(quality.recall, 0.65);
}

TEST(IncrementalLinkerTest, AddNewRecordsIdempotentWhenNothingNew) {
  synth::WorldConfig config;
  config.seed = 55;
  config.num_entities = 50;
  config.num_sources = 5;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  IncrementalLinker linker(&world.dataset, {});
  linker.AddNewRecords();
  size_t edges = linker.num_edges();
  EXPECT_EQ(linker.AddNewRecords(), 0u);
  EXPECT_EQ(linker.num_edges(), edges);
}

TEST(IncrementalLinkerTest, RemovalDetachesRecords) {
  Dataset dataset;
  SourceId s0 = dataset.AddSource("s0");
  SourceId s1 = dataset.AddSource("s1");
  SourceId s2 = dataset.AddSource("s2");
  // Three records of the same entity (shared id), linked transitively.
  dataset.AddRecord(s0, {{"name", "Canon X100"}, {"sku", "cm10001"}});
  dataset.AddRecord(s1, {{"name", "canon x100"}, {"sku", "cm10001"}});
  dataset.AddRecord(s2, {{"name", "CANON X100"}, {"sku", "cm10001"}});
  // Noise records so role detection sees variety.
  for (int i = 0; i < 10; ++i) {
    dataset.AddRecord(s0, {{"name", "Filler A" + std::to_string(i)},
                           {"sku", "fa900" + std::to_string(i)}});
    dataset.AddRecord(s1, {{"name", "filler b" + std::to_string(i)},
                           {"sku", "fb800" + std::to_string(i)}});
  }
  IncrementalLinker linker(&dataset, {});
  linker.AddNewRecords();
  EntityClusters before = linker.Clusters();
  EXPECT_EQ(before.label_of_record[0], before.label_of_record[1]);
  EXPECT_EQ(before.label_of_record[1], before.label_of_record[2]);

  linker.RemoveRecords({1});
  EntityClusters after = linker.Clusters();
  // 0 and 2 remain linked (they also share the id directly).
  EXPECT_EQ(after.label_of_record[0], after.label_of_record[2]);
  // The tombstoned record becomes a singleton.
  EXPECT_NE(after.label_of_record[1], after.label_of_record[0]);
}

TEST(IncrementalLinkerTest, RemovedRecordsStopGeneratingCandidates) {
  Dataset dataset;
  SourceId s0 = dataset.AddSource("s0");
  SourceId s1 = dataset.AddSource("s1");
  dataset.AddRecord(s0, {{"name", "Widget W1"}, {"sku", "w10001"}});
  for (int i = 0; i < 10; ++i) {
    dataset.AddRecord(s0, {{"name", "Filler A" + std::to_string(i)},
                           {"sku", "fa900" + std::to_string(i)}});
    dataset.AddRecord(s1, {{"name", "filler b" + std::to_string(i)},
                           {"sku", "fb800" + std::to_string(i)}});
  }
  IncrementalLinker linker(&dataset, {});
  linker.AddNewRecords();
  linker.RemoveRecords({0});
  // A new twin of record 0 arrives; it must not link to the tombstone.
  dataset.AddRecord(s1, {{"name", "widget w1"}, {"sku", "w10001"}});
  linker.AddNewRecords();
  EntityClusters clusters = linker.Clusters();
  RecordIdx twin = static_cast<RecordIdx>(dataset.num_records() - 1);
  EXPECT_NE(clusters.label_of_record[0], clusters.label_of_record[twin]);
}

}  // namespace
}  // namespace bdi::linkage
