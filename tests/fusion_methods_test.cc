#include <gtest/gtest.h>

#include <memory>

#include "bdi/fusion/accu.h"
#include "bdi/fusion/accu_copy.h"
#include "bdi/fusion/evaluation.h"
#include "bdi/fusion/fusion.h"
#include "bdi/fusion/truthfinder.h"
#include "bdi/synth/world.h"

namespace bdi::fusion {
namespace {

ClaimDb TwoValueDb() {
  // Item 0: sources 0,1 say "x"; source 2 says "y".
  ClaimDb db;
  db.set_num_sources(3);
  DataItem item;
  item.entity = 0;
  item.attr = 2;
  item.claims = {{0, "x"}, {1, "x"}, {2, "y"}};
  db.AddItem(item);
  return db;
}

TEST(VoteTest, MajorityWins) {
  FusionResult result = VoteFusion().Resolve(TwoValueDb());
  EXPECT_EQ(result.chosen[0], "x");
  EXPECT_NEAR(result.confidence[0], 2.0 / 3.0, 1e-9);
}

TEST(VoteTest, TieBrokenDeterministically) {
  ClaimDb db;
  db.set_num_sources(2);
  DataItem item;
  item.claims = {{0, "b"}, {1, "a"}};
  db.AddItem(item);
  FusionResult result = VoteFusion().Resolve(db);
  EXPECT_EQ(result.chosen[0], "a");  // lexicographic tie-break
}

TEST(VoteTest, AgreementRateAsAccuracyEstimate) {
  FusionResult result = VoteFusion().Resolve(TwoValueDb());
  EXPECT_DOUBLE_EQ(result.source_accuracy[0], 1.0);
  EXPECT_DOUBLE_EQ(result.source_accuracy[2], 0.0);
}

TEST(WeightedVoteTest, WeightsFlipOutcome) {
  ClaimDb db = TwoValueDb();
  WeightedVoteFusion fusion({0.1, 0.1, 1.0});
  FusionResult result = fusion.Resolve(db);
  EXPECT_EQ(result.chosen[0], "y");
}

TEST(AccuTest, AccurateSourcesDominate) {
  // 3 sources; source 2 is always wrong, 0 and 1 always right over many
  // items -> Accu should learn this and trust 0/1.
  ClaimDb db;
  db.set_num_sources(3);
  for (int i = 0; i < 40; ++i) {
    DataItem item;
    item.entity = i;
    item.attr = 2;
    item.claims = {{0, "t" + std::to_string(i)},
                   {1, "t" + std::to_string(i)},
                   {2, "f" + std::to_string(i)}};
    db.AddItem(item);
  }
  FusionResult result = AccuFusion().Resolve(db);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(result.chosen[i], "t" + std::to_string(i));
  }
  EXPECT_GT(result.source_accuracy[0], 0.9);
  EXPECT_LT(result.source_accuracy[2], 0.1);
}

TEST(AccuTest, SingleClaimItems) {
  ClaimDb db;
  db.set_num_sources(1);
  DataItem item;
  item.claims = {{0, "only"}};
  db.AddItem(item);
  FusionResult result = AccuFusion().Resolve(db);
  EXPECT_EQ(result.chosen[0], "only");
  EXPECT_NEAR(result.confidence[0], 1.0, 1e-9);
}

TEST(AccuTest, EmptyDb) {
  ClaimDb db;
  db.set_num_sources(2);
  FusionResult result = AccuFusion().Resolve(db);
  EXPECT_TRUE(result.chosen.empty());
  EXPECT_EQ(result.source_accuracy.size(), 2u);
}

TEST(AccuTest, ConvergesWithinMaxIterations) {
  synth::WorldConfig config;
  config.seed = 63;
  config.num_entities = 200;
  config.num_sources = 10;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());
  AccuConfig accu_config;
  accu_config.max_iterations = 50;
  FusionResult result = AccuFusion(accu_config).Resolve(db);
  EXPECT_LT(result.iterations, 50);
}

TEST(ClaimValueSimilarityTest, Behaviour) {
  EXPECT_DOUBLE_EQ(ClaimValueSimilarity("same", "same"), 1.0);
  EXPECT_NEAR(ClaimValueSimilarity("100", "99"), 0.99, 1e-9);
  EXPECT_GT(ClaimValueSimilarity("color_v1", "color_v2"), 0.8);  // JW
}

TEST(AccuSimTest, NearMissValuesBoostTruth) {
  // Numeric item where errors cluster near the truth: AccuSim should pick
  // the value supported by similar values even against a exact-tie.
  ClaimDb db;
  db.set_num_sources(4);
  DataItem item;
  item.entity = 0;
  item.attr = 2;
  // Three sources report near-identical values around the truth (different
  // round-off), two sources agree exactly on a far-off false value. Exact-
  // match Accu sees three singleton values losing to the pair; AccuSim
  // lets the near-misses reinforce each other.
  item.claims = {{0, "100"}, {1, "101"}, {2, "99.5"}, {4, "500"}, {5, "500"}};
  db.set_num_sources(6);
  db.AddItem(item);
  FusionResult plain = AccuFusion().Resolve(db);
  EXPECT_EQ(plain.chosen[0], "500");
  AccuConfig sim;
  sim.similarity_rho = 0.8;
  FusionResult with_sim = AccuFusion(sim).Resolve(db);
  EXPECT_TRUE(with_sim.chosen[0] == "100" || with_sim.chosen[0] == "101" ||
              with_sim.chosen[0] == "99.5")
      << with_sim.chosen[0];
}

// Property sweep over fusion methods: output shape invariants.
class FusionMethodTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<FusionMethod> MakeMethod() const {
    switch (GetParam()) {
      case 0:
        return std::make_unique<VoteFusion>();
      case 1:
        return std::make_unique<AccuFusion>();
      case 2: {
        AccuConfig config;
        config.similarity_rho = 0.3;
        return std::make_unique<AccuFusion>(config);
      }
      case 3:
        return std::make_unique<TruthFinderFusion>();
      default:
        return std::make_unique<AccuCopyFusion>();
    }
  }
};

TEST_P(FusionMethodTest, OutputShapeInvariants) {
  synth::WorldConfig config;
  config.seed = 67;
  config.num_entities = 100;
  config.num_sources = 8;
  config.num_copiers = 2;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());
  FusionResult result = MakeMethod()->Resolve(db);
  ASSERT_EQ(result.chosen.size(), db.items().size());
  ASSERT_EQ(result.confidence.size(), db.items().size());
  ASSERT_EQ(result.source_accuracy.size(), db.num_sources());
  for (size_t i = 0; i < db.items().size(); ++i) {
    // The chosen value is always one of the claimed values.
    bool claimed = false;
    for (const Claim& claim : db.items()[i].claims) {
      if (claim.value == result.chosen[i]) claimed = true;
    }
    EXPECT_TRUE(claimed) << "item " << i;
    EXPECT_GE(result.confidence[i], 0.0);
    EXPECT_LE(result.confidence[i], 1.0 + 1e-9);
  }
  for (double accuracy : result.source_accuracy) {
    EXPECT_GE(accuracy, 0.0);
    EXPECT_LE(accuracy, 1.0);
  }
}

TEST_P(FusionMethodTest, BeatsWorstCaseOnCleanWorld) {
  synth::WorldConfig config;
  config.seed = 71;
  config.num_entities = 150;
  config.num_sources = 10;
  config.source_accuracy_min = 0.8;
  config.source_accuracy_max = 0.95;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());
  FusionResult result = MakeMethod()->Resolve(db);
  FusionQuality quality = EvaluateFusion(db, result, world.truth);
  // Any reasonable method beats the average single source (~0.875).
  EXPECT_GE(quality.precision, 0.85);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, FusionMethodTest,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(CalibrationTest, BucketsPartitionItems) {
  synth::WorldConfig config;
  config.seed = 1601;
  config.num_entities = 150;
  config.num_sources = 10;
  config.format_variation_prob = 0.0;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());
  FusionResult result = AccuFusion().Resolve(db);
  CalibrationReport report = EvaluateCalibration(db, result, world.truth);
  ASSERT_EQ(report.buckets.size(), 10u);
  size_t total = 0;
  for (const CalibrationBucket& bucket : report.buckets) {
    total += bucket.items;
    if (bucket.items > 0) {
      EXPECT_GE(bucket.mean_confidence, bucket.lower - 1e-9);
      EXPECT_LE(bucket.mean_confidence, bucket.upper + 1e-9);
      EXPECT_GE(bucket.empirical_accuracy, 0.0);
      EXPECT_LE(bucket.empirical_accuracy, 1.0);
    }
  }
  EXPECT_GT(total, 500u);
  EXPECT_GE(report.expected_calibration_error, 0.0);
  EXPECT_LE(report.expected_calibration_error, 1.0);
}

TEST(CalibrationTest, AccuReasonablyCalibrated) {
  // On model-matching data, Accu's confidences should not be wildly off:
  // high-confidence buckets must actually be more accurate than
  // low-confidence ones.
  synth::WorldConfig config;
  config.seed = 1607;
  config.num_entities = 250;
  config.num_sources = 12;
  config.source_accuracy_min = 0.6;
  config.source_accuracy_max = 0.95;
  config.format_variation_prob = 0.0;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());
  FusionResult result = AccuFusion().Resolve(db);
  CalibrationReport report = EvaluateCalibration(db, result, world.truth);
  // Compare the top bucket against the lowest populated bucket.
  const CalibrationBucket* low = nullptr;
  const CalibrationBucket* high = nullptr;
  for (const CalibrationBucket& bucket : report.buckets) {
    if (bucket.items < 10) continue;
    if (low == nullptr) low = &bucket;
    high = &bucket;
  }
  ASSERT_NE(low, nullptr);
  ASSERT_NE(high, nullptr);
  if (low != high) {
    EXPECT_GT(high->empirical_accuracy, low->empirical_accuracy);
  }
  EXPECT_LT(report.expected_calibration_error, 0.25);
}

TEST(TruthFinderTest, TrustPropagates) {
  ClaimDb db;
  db.set_num_sources(3);
  for (int i = 0; i < 30; ++i) {
    DataItem item;
    item.entity = i;
    item.attr = 2;
    item.claims = {{0, "t" + std::to_string(i)},
                   {1, "t" + std::to_string(i)},
                   {2, "f" + std::to_string(i)}};
    db.AddItem(item);
  }
  FusionResult result = TruthFinderFusion().Resolve(db);
  EXPECT_GT(result.source_accuracy[0], result.source_accuracy[2]);
  EXPECT_EQ(result.chosen[0], "t0");
}

}  // namespace
}  // namespace bdi::fusion
