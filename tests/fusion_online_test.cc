#include "bdi/fusion/online.h"

#include <gtest/gtest.h>

#include "bdi/fusion/evaluation.h"
#include "bdi/synth/world.h"

namespace bdi::fusion {
namespace {

ClaimDb UnanimousDb(int sources, int items) {
  ClaimDb db;
  db.set_num_sources(sources);
  for (int i = 0; i < items; ++i) {
    DataItem item;
    item.entity = i;
    item.attr = 2;
    for (int s = 0; s < sources; ++s) {
      item.claims.push_back({s, "t" + std::to_string(i)});
    }
    db.AddItem(item);
  }
  return db;
}

TEST(OnlineFusionTest, UnanimousItemsStopEarly) {
  ClaimDb db = UnanimousDb(10, 20);
  std::vector<double> accuracy(10, 0.9);
  OnlineFusionResult result = ResolveOnline(db, accuracy).value();
  for (size_t i = 0; i < db.items().size(); ++i) {
    EXPECT_EQ(result.chosen[i], "t" + std::to_string(i));
    EXPECT_LT(result.probes[i], 10u) << "should not probe everyone";
  }
  // With 10 equal 0.9-accuracy sources, the majority becomes unassailable
  // after ~6 agreeing probes.
  EXPECT_LT(result.probe_fraction(), 0.8);
}

TEST(OnlineFusionTest, ConflictForcesMoreProbes) {
  ClaimDb unanimous = UnanimousDb(10, 1);
  ClaimDb contested;
  contested.set_num_sources(10);
  DataItem item;
  item.entity = 0;
  item.attr = 2;
  for (int s = 0; s < 10; ++s) {
    item.claims.push_back({s, s % 2 == 0 ? "a" : "b"});
  }
  contested.AddItem(item);
  std::vector<double> accuracy(10, 0.9);
  // Exercise the exact stopping rule (disable the approximate bar).
  OnlineFusionConfig config;
  config.confidence_stop = 1.1;
  OnlineFusionResult easy =
      ResolveOnline(unanimous, accuracy, config).value();
  OnlineFusionResult hard =
      ResolveOnline(contested, accuracy, config).value();
  EXPECT_GT(hard.probes[0], easy.probes[0]);
  EXPECT_EQ(hard.probes[0], 10u);  // a 5-5 split can never terminate early
}

TEST(OnlineFusionTest, MatchesBatchOnCleanWorld) {
  synth::WorldConfig config;
  config.seed = 401;
  config.num_entities = 200;
  config.num_sources = 14;
  config.source_accuracy_min = 0.7;
  config.source_accuracy_max = 0.95;
  config.format_variation_prob = 0.0;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());

  // Batch reference and its accuracy estimates.
  FusionResult batch = AccuFusion().Resolve(db);
  FusionQuality batch_quality = EvaluateFusion(db, batch, world.truth);

  OnlineFusionResult online =
      ResolveOnline(db, batch.source_accuracy).value();
  // Adapt to the FusionResult shape for evaluation.
  FusionResult as_result;
  as_result.chosen = online.chosen;
  as_result.confidence = online.confidence;
  as_result.source_accuracy = batch.source_accuracy;
  FusionQuality online_quality = EvaluateFusion(db, as_result, world.truth);

  EXPECT_GE(online_quality.precision, batch_quality.precision - 0.03);
  EXPECT_LT(online.probe_fraction(), 0.85);
}

TEST(OnlineFusionTest, LowerConfidenceBarProbesLess) {
  synth::WorldConfig config;
  config.seed = 402;
  config.num_entities = 150;
  config.num_sources = 12;
  config.format_variation_prob = 0.0;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());
  FusionResult batch = AccuFusion().Resolve(db);
  OnlineFusionConfig strict;
  strict.confidence_stop = 0.99;
  OnlineFusionConfig loose;
  loose.confidence_stop = 0.7;
  OnlineFusionResult strict_result =
      ResolveOnline(db, batch.source_accuracy, strict).value();
  OnlineFusionResult loose_result =
      ResolveOnline(db, batch.source_accuracy, loose).value();
  EXPECT_LE(loose_result.total_probes, strict_result.total_probes);
}

TEST(OnlineFusionTest, EmptyDb) {
  ClaimDb db;
  db.set_num_sources(3);
  OnlineFusionResult result =
      ResolveOnline(db, {0.9, 0.8, 0.7}).value();
  EXPECT_EQ(result.total_probes, 0u);
  EXPECT_DOUBLE_EQ(result.probe_fraction(), 0.0);
}

TEST(OnlineFusionTest, ProbeOrderFollowsAccuracy) {
  // With one highly accurate source and early termination, single-claim
  // agreement from the top source can settle an item immediately.
  ClaimDb db;
  db.set_num_sources(3);
  DataItem item;
  item.entity = 0;
  item.attr = 2;
  item.claims = {{0, "x"}, {1, "x"}, {2, "x"}};
  db.AddItem(item);
  OnlineFusionConfig config;
  config.confidence_stop = 0.9;
  OnlineFusionResult result =
      ResolveOnline(db, {0.5, 0.99, 0.5}, config).value();
  EXPECT_EQ(result.chosen[0], "x");
  // The accurate source (weight ln(10*99)) dominates after 1-2 probes.
  EXPECT_LE(result.probes[0], 2u);
}

TEST(OnlineFusionTest, ShortAccuracyVectorReturnsStatus) {
  ClaimDb db = UnanimousDb(5, 3);
  Result<OnlineFusionResult> result = ResolveOnline(db, {0.9, 0.9});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(OnlineFusionTest, ProbeOrderUsesClampedAccuracies) {
  // Two accuracy vectors that clamp to the same values must behave
  // identically — the probe order is driven by the clamped accuracies
  // that also set the vote weights, never by the raw estimates.
  ClaimDb db = UnanimousDb(4, 8);
  OnlineFusionConfig config;  // max_accuracy 0.99 clamps everything below
  OnlineFusionResult a =
      ResolveOnline(db, {0.999, 0.995, 0.993, 0.991}, config).value();
  OnlineFusionResult b =
      ResolveOnline(db, {0.991, 0.993, 0.995, 0.999}, config).value();
  EXPECT_EQ(a.chosen, b.chosen);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.confidence, b.confidence);
}

}  // namespace
}  // namespace bdi::fusion
