#include "bdi/text/similarity.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "bdi/text/tokenizer.h"

namespace bdi::text {
namespace {

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("same", "same"), 0u);
  EXPECT_EQ(EditDistance("", ""), 0u);
}

TEST(EditDistanceTest, Symmetric) {
  EXPECT_EQ(EditDistance("flaw", "lawn"), EditDistance("lawn", "flaw"));
}

TEST(NormalizedEditTest, Range) {
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroTest, KnownBehaviour) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.9444, 1e-3);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroWinklerTest, PrefixBoost) {
  double jaro = JaroSimilarity("prefixes", "prefixed");
  double jw = JaroWinklerSimilarity("prefixes", "prefixed");
  EXPECT_GT(jw, jaro);
  EXPECT_LE(jw, 1.0);
}

TEST(JaroWinklerTest, KnownValue) {
  EXPECT_NEAR(JaroWinklerSimilarity("dwayne", "duane"), 0.84, 0.01);
}

// Property sweep: every string similarity is symmetric, in [0,1], and 1 on
// identical inputs.
using StringPair = std::tuple<std::string, std::string>;
class StringSimilarityProperty : public ::testing::TestWithParam<StringPair> {
};

TEST_P(StringSimilarityProperty, SymmetricAndBounded) {
  auto [a, b] = GetParam();
  for (auto fn : {JaroSimilarity, JaroWinklerSimilarity,
                  NormalizedEditSimilarity, TokenJaccard, TrigramJaccard}) {
    double ab = fn(a, b);
    double ba = fn(b, a);
    EXPECT_NEAR(ab, ba, 1e-12);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
    EXPECT_DOUBLE_EQ(fn(a, a), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, StringSimilarityProperty,
    ::testing::Values(
        StringPair{"canon eos 5d", "canon 5d eos"},
        StringPair{"sony wh-1000xm4", "sony wh 1000 xm4"},
        StringPair{"", "nonempty"}, StringPair{"a", "b"},
        StringPair{"identical string", "identical string"},
        StringPair{"12.5 cm", "4.9 in"}));

TEST(SetSimilarityTest, JaccardKnownValues) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"a", "b"}), 1.0);
}

TEST(SetSimilarityTest, DiceKnownValues) {
  EXPECT_DOUBLE_EQ(DiceSimilarity({"a", "b"}, {"b", "c"}), 0.5);
  EXPECT_DOUBLE_EQ(DiceSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(DiceSimilarity({"a"}, {}), 0.0);
}

TEST(SetSimilarityTest, OverlapCoefficient) {
  EXPECT_DOUBLE_EQ(OverlapCoefficient({"a"}, {"a", "b", "c"}), 1.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({"x"}, {"a", "b"}), 0.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({}, {}), 1.0);
}

TEST(SetSimilarityTest, DiceAtLeastJaccard) {
  std::vector<std::string> a = {"a", "b", "c", "d"};
  std::vector<std::string> b = {"c", "d", "e"};
  EXPECT_GE(DiceSimilarity(a, b), JaccardSimilarity(a, b));
}

TEST(MongeElkanTest, TokenReorderingTolerant) {
  double sim = MongeElkanSimilarity("canon eos 5d", "5d eos canon");
  EXPECT_GT(sim, 0.95);
}

TEST(MongeElkanTest, EmptyCases) {
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity("a", ""), 0.0);
}

TEST(SmithWatermanTest, KnownBehaviour) {
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("abc", "abc"), 1.0);
  // Shared substring embedded in noise still scores the substring.
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("eos5d", "canon eos5d camera"),
                   1.0);
  EXPECT_LT(SmithWatermanSimilarity("abcdef", "uvwxyz"), 0.2);
}

TEST(SmithWatermanTest, SymmetricAndBounded) {
  const char* samples[] = {"canon eos", "eos canon", "zorix qx-1234", ""};
  for (const char* a : samples) {
    for (const char* b : samples) {
      double ab = SmithWatermanSimilarity(a, b);
      EXPECT_NEAR(ab, SmithWatermanSimilarity(b, a), 1e-12);
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0);
    }
  }
}

TEST(SmithWatermanTest, GapTolerance) {
  // A single insertion costs one gap, not a full re-alignment.
  double with_gap = SmithWatermanSimilarity("abcdefgh", "abcdXefgh");
  EXPECT_GT(with_gap, 0.8);
}

TEST(NumericSimilarityTest, Behaviour) {
  EXPECT_DOUBLE_EQ(NumericSimilarity("10", "10.0"), 1.0);
  EXPECT_NEAR(NumericSimilarity("10", "9"), 0.9, 1e-9);
  EXPECT_DOUBLE_EQ(NumericSimilarity("abc", "10"), 0.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity("0", "0"), 1.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity("10", "-10"), 0.0);
}

TEST(TfIdfTest, RareTokensWeighMore) {
  TfIdfVectorizer vectorizer;
  for (int i = 0; i < 50; ++i) {
    vectorizer.AddDocument({"common", "filler"});
  }
  vectorizer.AddDocument({"rare"});
  EXPECT_GT(vectorizer.Idf("rare"), vectorizer.Idf("common"));
  EXPECT_EQ(vectorizer.num_documents(), 51u);
}

TEST(TfIdfTest, CosineBasics) {
  TfIdfVectorizer vectorizer;
  vectorizer.AddDocument({"a", "b"});
  vectorizer.AddDocument({"b", "c"});
  EXPECT_DOUBLE_EQ(vectorizer.Cosine({"a", "b"}, {"a", "b"}), 1.0);
  EXPECT_DOUBLE_EQ(vectorizer.Cosine({"a"}, {"c"}), 0.0);
  double partial = vectorizer.Cosine({"a", "b"}, {"b", "c"});
  EXPECT_GT(partial, 0.0);
  EXPECT_LT(partial, 1.0);
}

TEST(TfIdfTest, SharedRareTokenBeatsSharedCommonToken) {
  TfIdfVectorizer vectorizer;
  for (int i = 0; i < 100; ++i) vectorizer.AddDocument({"common"});
  vectorizer.AddDocument({"rare"});
  double via_rare = vectorizer.Cosine({"rare", "x"}, {"rare", "y"});
  double via_common = vectorizer.Cosine({"common", "x"}, {"common", "y"});
  EXPECT_GT(via_rare, via_common);
}

}  // namespace
}  // namespace bdi::text
