#include "bdi/common/flags.h"

#include <gtest/gtest.h>

namespace bdi {
namespace {

Flags Parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog", "cmd"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data(), 2);
}

TEST(FlagsTest, ParsesPairs) {
  const Flags flags = Parse({"--in", "a.csv", "--top", "7"});
  EXPECT_TRUE(flags.ok());
  EXPECT_EQ(flags.size(), 2u);
  EXPECT_EQ(flags.Get("in", ""), "a.csv");
  EXPECT_EQ(flags.GetInt("top", 0).value(), 7);
  EXPECT_TRUE(flags.Has("in"));
  EXPECT_FALSE(flags.Has("out"));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const Flags flags = Parse({});
  EXPECT_TRUE(flags.ok());
  EXPECT_EQ(flags.Get("missing", "fallback"), "fallback");
  EXPECT_EQ(flags.GetInt("missing", 42).value(), 42);
}

TEST(FlagsTest, RejectsBareToken) {
  Flags flags = Parse({"notaflag", "x"});
  EXPECT_FALSE(flags.ok());
  EXPECT_EQ(flags.bad_token(), "notaflag");
  EXPECT_FALSE(flags.error().empty());
}

TEST(FlagsTest, RejectsDanglingFlag) {
  Flags flags = Parse({"--in"});
  EXPECT_FALSE(flags.ok());
  EXPECT_EQ(flags.bad_token(), "--in");
  EXPECT_FALSE(flags.error().empty());
}

TEST(FlagsTest, RejectsEmptyFlagName) {
  Flags flags = Parse({"--", "value"});
  EXPECT_FALSE(flags.ok());
}

TEST(FlagsTest, MalformedIntegerReturnsStatusNotMutation) {
  const Flags flags = Parse({"--top", "seven"});
  EXPECT_TRUE(flags.ok());
  Result<int> top = flags.GetInt("top", 3);
  ASSERT_FALSE(top.ok());
  EXPECT_EQ(top.status().code(), StatusCode::kInvalidArgument);
  // GetInt is const: a malformed value never poisons the parse state.
  EXPECT_TRUE(flags.ok());
  EXPECT_EQ(flags.GetInt("top", 3).value_or(3), 3);
}

TEST(FlagsTest, IntegerRejectsTrailingGarbage) {
  const Flags flags = Parse({"--top", "7x"});
  EXPECT_TRUE(flags.ok());
  EXPECT_FALSE(flags.GetInt("top", 0).ok());
}

TEST(FlagsTest, RejectsFlagLikeValueInPairForm) {
  // "--entity --weird" is a missing value, not a (flag, value) pair —
  // silently consuming "--weird" used to hide typos like a forgotten
  // value. The = form below is the escape hatch.
  Flags flags = Parse({"--entity", "--weird"});
  EXPECT_FALSE(flags.ok());
  EXPECT_EQ(flags.bad_token(), "--entity");
}

TEST(FlagsTest, EqualsFormPassesFlagLikeValues) {
  Flags flags = Parse({"--entity=--weird"});
  EXPECT_TRUE(flags.ok());
  EXPECT_EQ(flags.Get("entity", ""), "--weird");
}

TEST(FlagsTest, NegativeNumbersAreValuesNotFlags) {
  const Flags flags = Parse({"--seed", "-5"});
  EXPECT_TRUE(flags.ok());
  EXPECT_EQ(flags.GetInt("seed", 0).value(), -5);
}

TEST(FlagsTest, LastOccurrenceWins) {
  Flags flags = Parse({"--k", "1", "--k", "2"});
  EXPECT_EQ(flags.Get("k", ""), "2");
}

TEST(FlagsTest, ParsesEqualsForm) {
  const Flags flags = Parse({"--metrics-out=m.json", "--top=7"});
  EXPECT_TRUE(flags.ok());
  EXPECT_EQ(flags.Get("metrics-out", ""), "m.json");
  EXPECT_EQ(flags.GetInt("top", 0).value(), 7);
}

TEST(FlagsTest, MixesEqualsAndPairForms) {
  const Flags flags =
      Parse({"--in", "a.csv", "--metrics-out=m.json", "--top", "3"});
  EXPECT_TRUE(flags.ok());
  EXPECT_EQ(flags.Get("in", ""), "a.csv");
  EXPECT_EQ(flags.Get("metrics-out", ""), "m.json");
  EXPECT_EQ(flags.GetInt("top", 0).value(), 3);
}

TEST(FlagsTest, EqualsFormAllowsEmptyValueAndEqualsInValue) {
  Flags flags = Parse({"--empty=", "--expr=a=b"});
  EXPECT_TRUE(flags.ok());
  EXPECT_TRUE(flags.Has("empty"));
  EXPECT_EQ(flags.Get("empty", "x"), "");
  EXPECT_EQ(flags.Get("expr", ""), "a=b");
}

TEST(FlagsTest, RejectsEmptyNameInEqualsForm) {
  Flags flags = Parse({"--=v"});
  EXPECT_FALSE(flags.ok());
  EXPECT_EQ(flags.bad_token(), "--=v");
}

}  // namespace
}  // namespace bdi
