#include "bdi/common/flags.h"

#include <gtest/gtest.h>

namespace bdi {
namespace {

Flags Parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog", "cmd"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data(), 2);
}

TEST(FlagsTest, ParsesPairs) {
  Flags flags = Parse({"--in", "a.csv", "--top", "7"});
  EXPECT_TRUE(flags.ok());
  EXPECT_EQ(flags.size(), 2u);
  EXPECT_EQ(flags.Get("in", ""), "a.csv");
  EXPECT_EQ(flags.GetInt("top", 0), 7);
  EXPECT_TRUE(flags.Has("in"));
  EXPECT_FALSE(flags.Has("out"));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  Flags flags = Parse({});
  EXPECT_TRUE(flags.ok());
  EXPECT_EQ(flags.Get("missing", "fallback"), "fallback");
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
}

TEST(FlagsTest, RejectsBareToken) {
  Flags flags = Parse({"notaflag", "x"});
  EXPECT_FALSE(flags.ok());
  EXPECT_EQ(flags.bad_token(), "notaflag");
}

TEST(FlagsTest, RejectsDanglingFlag) {
  Flags flags = Parse({"--in"});
  EXPECT_FALSE(flags.ok());
  EXPECT_EQ(flags.bad_token(), "--in");
}

TEST(FlagsTest, RejectsEmptyFlagName) {
  Flags flags = Parse({"--", "value"});
  EXPECT_FALSE(flags.ok());
}

TEST(FlagsTest, MalformedIntegerFlagsError) {
  Flags flags = Parse({"--top", "seven"});
  EXPECT_TRUE(flags.ok());
  EXPECT_EQ(flags.GetInt("top", 3), 3);
  EXPECT_FALSE(flags.ok());
  EXPECT_EQ(flags.bad_token(), "seven");
}

TEST(FlagsTest, ValuesMayLookLikeFlags) {
  // "--entity --weird" is a (flag, value) pair: the value is taken as-is.
  Flags flags = Parse({"--entity", "--weird"});
  EXPECT_TRUE(flags.ok());
  EXPECT_EQ(flags.Get("entity", ""), "--weird");
}

TEST(FlagsTest, LastOccurrenceWins) {
  Flags flags = Parse({"--k", "1", "--k", "2"});
  EXPECT_EQ(flags.Get("k", ""), "2");
}

TEST(FlagsTest, ParsesEqualsForm) {
  Flags flags = Parse({"--metrics-out=m.json", "--top=7"});
  EXPECT_TRUE(flags.ok());
  EXPECT_EQ(flags.Get("metrics-out", ""), "m.json");
  EXPECT_EQ(flags.GetInt("top", 0), 7);
}

TEST(FlagsTest, MixesEqualsAndPairForms) {
  Flags flags = Parse({"--in", "a.csv", "--metrics-out=m.json", "--top", "3"});
  EXPECT_TRUE(flags.ok());
  EXPECT_EQ(flags.Get("in", ""), "a.csv");
  EXPECT_EQ(flags.Get("metrics-out", ""), "m.json");
  EXPECT_EQ(flags.GetInt("top", 0), 3);
}

TEST(FlagsTest, EqualsFormAllowsEmptyValueAndEqualsInValue) {
  Flags flags = Parse({"--empty=", "--expr=a=b"});
  EXPECT_TRUE(flags.ok());
  EXPECT_TRUE(flags.Has("empty"));
  EXPECT_EQ(flags.Get("empty", "x"), "");
  EXPECT_EQ(flags.Get("expr", ""), "a=b");
}

TEST(FlagsTest, RejectsEmptyNameInEqualsForm) {
  Flags flags = Parse({"--=v"});
  EXPECT_FALSE(flags.ok());
  EXPECT_EQ(flags.bad_token(), "--=v");
}

}  // namespace
}  // namespace bdi
