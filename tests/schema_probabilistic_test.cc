#include "bdi/schema/probabilistic_schema.h"

#include <gtest/gtest.h>

#include <cmath>

namespace bdi::schema {
namespace {

/// Three sources, two attributes each, with hand-crafted edge scores.
struct Fixture {
  Dataset dataset;
  AttributeStatistics stats;
  std::vector<AttrEdge> edges;

  Fixture() {
    SourceId s0 = dataset.AddSource("s0");
    SourceId s1 = dataset.AddSource("s1");
    SourceId s2 = dataset.AddSource("s2");
    dataset.AddRecord(s0, {{"a", "1"}, {"b", "x"}});
    dataset.AddRecord(s1, {{"a2", "1"}, {"b2", "x"}});
    dataset.AddRecord(s2, {{"a3", "1"}});
    stats = AttributeStatistics::Compute(dataset);
  }

  size_t IndexOf(SourceId source, const std::string& name) {
    AttrId attr = dataset.FindAttr(name).value();
    for (size_t i = 0; i < stats.profiles().size(); ++i) {
      if (stats.profiles()[i].id == (SourceAttr{source, attr})) return i;
    }
    ADD_FAILURE() << "profile not found";
    return 0;
  }
};

TEST(ProbabilisticSchemaTest, WorldProbabilitiesSumToOne) {
  Fixture fx;
  fx.edges = {{fx.IndexOf(0, "a"), fx.IndexOf(1, "a2"), 0.6},
              {fx.IndexOf(0, "b"), fx.IndexOf(1, "b2"), 0.5},
              {fx.IndexOf(1, "a2"), fx.IndexOf(2, "a3"), 0.9}};
  ProbabilisticSchemaConfig config;
  config.certain_threshold = 0.8;
  config.possible_threshold = 0.4;
  auto pms = ProbabilisticMediatedSchema::Build(fx.stats, fx.edges, config);
  ASSERT_FALSE(pms.worlds().empty());
  double total = 0.0;
  for (const WeightedSchema& w : pms.worlds()) {
    EXPECT_GT(w.probability, 0.0);
    total += w.probability;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ProbabilisticSchemaTest, CertainEdgeHoldsInEveryWorld) {
  Fixture fx;
  SourceAttr a2 = fx.stats.profiles()[fx.IndexOf(1, "a2")].id;
  SourceAttr a3 = fx.stats.profiles()[fx.IndexOf(2, "a3")].id;
  fx.edges = {{fx.IndexOf(0, "a"), fx.IndexOf(1, "a2"), 0.6},
              {fx.IndexOf(1, "a2"), fx.IndexOf(2, "a3"), 0.95}};
  ProbabilisticSchemaConfig config;
  config.certain_threshold = 0.8;
  config.possible_threshold = 0.4;
  auto pms = ProbabilisticMediatedSchema::Build(fx.stats, fx.edges, config);
  EXPECT_NEAR(pms.CorrespondenceProbability(a2, a3), 1.0, 1e-9);
}

TEST(ProbabilisticSchemaTest, ImpossibleEdgeNeverHolds) {
  Fixture fx;
  SourceAttr a = fx.stats.profiles()[fx.IndexOf(0, "a")].id;
  SourceAttr b2 = fx.stats.profiles()[fx.IndexOf(1, "b2")].id;
  fx.edges = {{fx.IndexOf(0, "a"), fx.IndexOf(1, "b2"), 0.2}};
  ProbabilisticSchemaConfig config;
  config.certain_threshold = 0.8;
  config.possible_threshold = 0.4;
  auto pms = ProbabilisticMediatedSchema::Build(fx.stats, fx.edges, config);
  EXPECT_DOUBLE_EQ(pms.CorrespondenceProbability(a, b2), 0.0);
}

TEST(ProbabilisticSchemaTest, AmbiguousEdgeProbabilityIsLinear) {
  Fixture fx;
  SourceAttr a = fx.stats.profiles()[fx.IndexOf(0, "a")].id;
  SourceAttr a2 = fx.stats.profiles()[fx.IndexOf(1, "a2")].id;
  // score 0.6 with thresholds [0.4, 0.8] -> edge probability 0.5.
  fx.edges = {{fx.IndexOf(0, "a"), fx.IndexOf(1, "a2"), 0.6}};
  ProbabilisticSchemaConfig config;
  config.certain_threshold = 0.8;
  config.possible_threshold = 0.4;
  auto pms = ProbabilisticMediatedSchema::Build(fx.stats, fx.edges, config);
  EXPECT_NEAR(pms.CorrespondenceProbability(a, a2), 0.5, 1e-9);
  EXPECT_EQ(pms.worlds().size(), 2u);
}

TEST(ProbabilisticSchemaTest, HigherScoreHigherCorrespondence) {
  Fixture fx;
  SourceAttr a = fx.stats.profiles()[fx.IndexOf(0, "a")].id;
  SourceAttr a2 = fx.stats.profiles()[fx.IndexOf(1, "a2")].id;
  double previous = -1.0;
  for (double score : {0.45, 0.55, 0.65, 0.75}) {
    fx.edges = {{fx.IndexOf(0, "a"), fx.IndexOf(1, "a2"), score}};
    ProbabilisticSchemaConfig config;
    config.certain_threshold = 0.8;
    config.possible_threshold = 0.4;
    auto pms =
        ProbabilisticMediatedSchema::Build(fx.stats, fx.edges, config);
    double p = pms.CorrespondenceProbability(a, a2);
    EXPECT_GT(p, previous);
    previous = p;
  }
}

TEST(ProbabilisticSchemaTest, TransitiveCorrespondenceThroughWorlds) {
  Fixture fx;
  SourceAttr a = fx.stats.profiles()[fx.IndexOf(0, "a")].id;
  SourceAttr a3 = fx.stats.profiles()[fx.IndexOf(2, "a3")].id;
  // a-a2 ambiguous (p=0.5), a2-a3 ambiguous (p=0.5): a-a3 in same cluster
  // only when both hold: p = 0.25.
  fx.edges = {{fx.IndexOf(0, "a"), fx.IndexOf(1, "a2"), 0.6},
              {fx.IndexOf(1, "a2"), fx.IndexOf(2, "a3"), 0.6}};
  ProbabilisticSchemaConfig config;
  config.certain_threshold = 0.8;
  config.possible_threshold = 0.4;
  auto pms = ProbabilisticMediatedSchema::Build(fx.stats, fx.edges, config);
  EXPECT_NEAR(pms.CorrespondenceProbability(a, a3), 0.25, 1e-9);
}

TEST(ProbabilisticSchemaTest, MonteCarloPathApproximates) {
  Fixture fx;
  SourceAttr a = fx.stats.profiles()[fx.IndexOf(0, "a")].id;
  SourceAttr a2 = fx.stats.profiles()[fx.IndexOf(1, "a2")].id;
  fx.edges = {{fx.IndexOf(0, "a"), fx.IndexOf(1, "a2"), 0.6},
              {fx.IndexOf(0, "b"), fx.IndexOf(1, "b2"), 0.6}};
  ProbabilisticSchemaConfig config;
  config.certain_threshold = 0.8;
  config.possible_threshold = 0.4;
  config.max_enumerate_bits = 0;  // force sampling
  config.num_samples = 2000;
  auto pms = ProbabilisticMediatedSchema::Build(fx.stats, fx.edges, config);
  EXPECT_NEAR(pms.CorrespondenceProbability(a, a2), 0.5, 0.05);
}

TEST(ProbabilisticSchemaTest, ConsensusMatchesThreshold) {
  Fixture fx;
  SourceAttr a = fx.stats.profiles()[fx.IndexOf(0, "a")].id;
  SourceAttr a2 = fx.stats.profiles()[fx.IndexOf(1, "a2")].id;
  fx.edges = {{fx.IndexOf(0, "a"), fx.IndexOf(1, "a2"), 0.7}};  // p = 0.75
  ProbabilisticSchemaConfig config;
  config.certain_threshold = 0.8;
  config.possible_threshold = 0.4;
  auto pms = ProbabilisticMediatedSchema::Build(fx.stats, fx.edges, config);
  MediatedSchema loose = pms.Consensus(fx.stats, 0.5);
  EXPECT_EQ(loose.ClusterOf(a), loose.ClusterOf(a2));
  MediatedSchema strict = pms.Consensus(fx.stats, 0.9);
  EXPECT_NE(strict.ClusterOf(a), strict.ClusterOf(a2));
}

TEST(ProbabilisticSchemaTest, MaxWorldsCapRespected) {
  Fixture fx;
  fx.edges = {{fx.IndexOf(0, "a"), fx.IndexOf(1, "a2"), 0.6},
              {fx.IndexOf(0, "b"), fx.IndexOf(1, "b2"), 0.6},
              {fx.IndexOf(1, "a2"), fx.IndexOf(2, "a3"), 0.6}};
  ProbabilisticSchemaConfig config;
  config.certain_threshold = 0.8;
  config.possible_threshold = 0.4;
  config.max_worlds = 3;
  auto pms = ProbabilisticMediatedSchema::Build(fx.stats, fx.edges, config);
  EXPECT_LE(pms.worlds().size(), 3u);
  double total = 0.0;
  for (const WeightedSchema& w : pms.worlds()) total += w.probability;
  EXPECT_NEAR(total, 1.0, 1e-9);  // renormalized after truncation
}

}  // namespace
}  // namespace bdi::schema
