#include <gtest/gtest.h>

#include <memory>

#include "bdi/discovery/crawler.h"
#include "bdi/discovery/search_index.h"
#include "bdi/synth/world.h"

namespace bdi::discovery {
namespace {

TEST(SearchIndexTest, FindsSourcesByIdentifier) {
  Dataset web;
  SourceId s0 = web.AddSource("a");
  SourceId s1 = web.AddSource("b");
  web.AddRecord(s0, {{"name", "Widget"}, {"sku", "wx10001"}});
  web.AddRecord(s1, {{"name", "widget page"}, {"mpn", "wx10001"}});
  web.AddRecord(s1, {{"name", "other"}, {"mpn", "zz90009"}});
  SearchIndex index(web);
  std::vector<SourceId> hits = index.Search("wx10001");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(index.Search("zz90009"), (std::vector<SourceId>{s1}));
  EXPECT_TRUE(index.Search("absent99").empty());
}

TEST(SearchIndexTest, IgnoresPureDigitAndShortTokens) {
  Dataset web;
  SourceId s0 = web.AddSource("a");
  web.AddRecord(s0, {{"price", "10999"}, {"year", "2013"}, {"id", "ab1"}});
  SearchIndex index(web);
  EXPECT_TRUE(index.Search("10999").empty());  // digits only
  EXPECT_TRUE(index.Search("2013").empty());
  EXPECT_TRUE(index.Search("ab1").empty());  // too short
}

TEST(SearchIndexTest, PostingsOrderedByHits) {
  Dataset web;
  SourceId s0 = web.AddSource("a");
  SourceId s1 = web.AddSource("b");
  web.AddRecord(s0, {{"x", "tok99abc"}});
  web.AddRecord(s1, {{"x", "tok99abc"}});
  web.AddRecord(s1, {{"y", "tok99abc"}});
  SearchIndex index(web);
  std::vector<SourceId> hits = index.Search("tok99abc");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], s1);  // two hits beat one
}

struct WebFixture {
  Dataset web;
  std::vector<EntityId> labels;
  SearchIndex* index = nullptr;

  explicit WebFixture(int distractors = 10) {
    synth::WorldConfig config;
    config.seed = 601;
    config.num_entities = 200;
    config.num_sources = 15;
    config.identifier_presence_prob = 0.95;
    synth::SyntheticWorld world = synth::GenerateWorld(config);
    // Re-home the generated corpus (Dataset is move-only).
    web = std::move(world.dataset);
    labels = world.truth.entity_of_record;
    AddDistractorSources(&web, distractors, 30, 7, &labels);
    static_index = std::make_unique<SearchIndex>(web);
    index = static_index.get();
  }

  static std::unique_ptr<SearchIndex> static_index;
};

std::unique_ptr<SearchIndex> WebFixture::static_index;

TEST(FocusedDiscoveryTest, FindsProductSourcesAndSkipsDistractors) {
  WebFixture fx;
  DiscoveryConfig config;
  config.page_budget = 1200;
  DiscoveryResult result =
      FocusedDiscovery(fx.web, *fx.index, fx.labels, config);
  ASSERT_FALSE(result.curve.empty());
  const DiscoveryStep& last = result.curve.back();
  // All (or nearly all) product sources found...
  EXPECT_GE(last.sources_discovered, 12u);
  EXPECT_LE(result.pages_crawled, config.page_budget);
  // ...and the identifier frontier prioritizes them: distractors (which
  // publish no identifiers) are only visited as leftover-budget fallback,
  // strictly after the product sources.
  bool seen_distractor = false;
  for (SourceId source : result.crawl_order) {
    bool is_distractor = source >= 15;  // product sources are 0..14
    if (is_distractor) {
      seen_distractor = true;
    } else {
      EXPECT_FALSE(seen_distractor)
          << "product source crawled after a distractor";
    }
  }
}

TEST(FocusedDiscoveryTest, BeatsRandomAtEqualBudget) {
  WebFixture fx;
  DiscoveryConfig config;
  config.page_budget = 600;
  DiscoveryResult focused =
      FocusedDiscovery(fx.web, *fx.index, fx.labels, config);
  DiscoveryResult random = RandomDiscovery(fx.web, fx.labels, config);
  EXPECT_GT(focused.curve.back().entities_covered,
            random.curve.back().entities_covered);
  EXPECT_GE(focused.curve.back().sources_discovered,
            random.curve.back().sources_discovered);
}

TEST(FocusedDiscoveryTest, CurveMonotone) {
  WebFixture fx;
  DiscoveryConfig config;
  config.page_budget = 800;
  DiscoveryResult result =
      FocusedDiscovery(fx.web, *fx.index, fx.labels, config);
  for (size_t i = 1; i < result.curve.size(); ++i) {
    EXPECT_GE(result.curve[i].pages_crawled,
              result.curve[i - 1].pages_crawled);
    EXPECT_GE(result.curve[i].entities_covered,
              result.curve[i - 1].entities_covered);
    EXPECT_GE(result.curve[i].sources_visited,
              result.curve[i - 1].sources_visited);
  }
}

TEST(FocusedDiscoveryTest, BudgetZeroCrawlsNothingBeyondSeeds) {
  WebFixture fx;
  DiscoveryConfig config;
  config.page_budget = 1;  // one page: the seed crawl is capped
  DiscoveryResult result =
      FocusedDiscovery(fx.web, *fx.index, fx.labels, config);
  EXPECT_LE(result.pages_crawled, 1u);
}

TEST(RandomDiscoveryTest, VisitsDistractorsProportionally) {
  WebFixture fx(/*distractors=*/15);
  DiscoveryConfig config;
  config.page_budget = 500;
  config.seed = 9;
  DiscoveryResult result = RandomDiscovery(fx.web, fx.labels, config);
  const DiscoveryStep& last = result.curve.back();
  // Random order wastes visits on distractors (15 of 30 sources).
  EXPECT_GT(last.sources_visited - last.sources_discovered, 2u);
}

TEST(AddDistractorSourcesTest, LabelsStayAligned) {
  Dataset web;
  std::vector<EntityId> labels;
  SourceId s = web.AddSource("real");
  web.AddRecord(s, {{"x", "v"}});
  labels.push_back(0);
  AddDistractorSources(&web, 2, 5, 1, &labels);
  EXPECT_EQ(labels.size(), web.num_records());
  for (size_t r = 1; r < labels.size(); ++r) {
    EXPECT_EQ(labels[r], kInvalidEntity);
  }
}

}  // namespace
}  // namespace bdi::discovery
