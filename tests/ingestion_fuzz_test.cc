// Deterministic malformed-input harness for the ingestion boundary.
//
// Two families of checks, both generator-driven and fully seeded:
//
//  1. Round-trip property: random rows drawn from a hostile alphabet
//     (commas, quotes, newlines, CR, NUL, long runs) must survive
//     EncodeCsvRow -> ParseCsv / ParseCsvRow bitwise, including fields
//     spanning newlines.
//
//  2. Mutation corpus: valid corpus/labels files put through random
//     truncation, stray-quote injection, NUL/CR-LF injection, field
//     duplication, over-long fields and bad numerics. Every parser and
//     reader must return (ok or a Status) — never crash or abort. A
//     gtest process dying here IS the failure signal; under the asan /
//     tsan presets the same corpus also shakes out memory errors.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bdi/common/csv.h"
#include "bdi/common/random.h"
#include "bdi/model/dataset_io.h"
#include "bdi/model/validate.h"
#include "bdi/serve/protocol.h"
#include "bdi/serve/wire.h"

namespace bdi {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Hostile but printable-ish alphabet: delimiters, quotes, both newline
// flavors, NUL, spaces and ordinary characters.
std::string RandomField(Rng& rng) {
  // Explicit length keeps the embedded NUL.
  static const std::string alphabet(",\"\n\r\0 abz09._-", 14);
  std::string field;
  // Mostly short fields; occasionally a very long one (boundary sizes).
  int64_t len = rng.Bernoulli(0.02) ? rng.UniformInt(2000, 6000)
                                    : rng.UniformInt(0, 12);
  for (int64_t c = 0; c < len; ++c) {
    field.push_back(alphabet[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(alphabet.size()) - 1))]);
  }
  return field;
}

TEST(IngestionFuzzTest, TenThousandRandomRowsRoundTripBitwise) {
  Rng rng(8801);
  for (int trial = 0; trial < 10000; ++trial) {
    std::vector<std::string> fields;
    int64_t num_fields = rng.UniformInt(1, 6);
    for (int64_t f = 0; f < num_fields; ++f) {
      fields.push_back(RandomField(rng));
    }
    std::string encoded = EncodeCsvRow(fields);
    // Single-row parse.
    Result<std::vector<std::string>> row = ParseCsvRow(encoded);
    ASSERT_TRUE(row.ok()) << "trial " << trial << ": " << row.status();
    EXPECT_EQ(row.value(), fields) << "trial " << trial;
    // Whole-document parse of the same row (exercises the stateful
    // newline handling the line-splitting parser used to get wrong).
    Result<std::vector<std::vector<std::string>>> doc =
        ParseCsv(encoded + "\n");
    ASSERT_TRUE(doc.ok()) << "trial " << trial << ": " << doc.status();
    ASSERT_EQ(doc.value().size(), 1u) << "trial " << trial;
    EXPECT_EQ(doc.value()[0], fields) << "trial " << trial;
  }
}

TEST(IngestionFuzzTest, RandomDocumentsRoundTripBitwise) {
  Rng rng(8802);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::vector<std::string>> rows;
    int64_t num_rows = rng.UniformInt(1, 20);
    for (int64_t r = 0; r < num_rows; ++r) {
      std::vector<std::string> fields;
      int64_t num_fields = rng.UniformInt(2, 5);
      for (int64_t f = 0; f < num_fields; ++f) {
        fields.push_back(RandomField(rng));
      }
      rows.push_back(std::move(fields));
    }
    std::string encoded;
    for (const auto& row : rows) {
      encoded += EncodeCsvRow(row);
      encoded += '\n';
    }
    Result<std::vector<std::vector<std::string>>> parsed =
        ParseCsv(encoded);
    ASSERT_TRUE(parsed.ok()) << "trial " << trial << ": "
                             << parsed.status();
    EXPECT_EQ(parsed.value(), rows) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// Mutation corpus: no hostile bytes may crash any parser or reader.

std::string ValidCorpus() {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"source", "record", "attribute", "value"});
  for (int r = 0; r < 40; ++r) {
    std::string source = "s" + std::to_string(r % 4) + ".com";
    for (int f = 0; f < 3; ++f) {
      rows.push_back({source, std::to_string(r),
                      "attr" + std::to_string(f),
                      "value " + std::to_string(r) + "," + std::to_string(f)});
    }
  }
  std::string out;
  for (const auto& row : rows) {
    out += EncodeCsvRow(row);
    out += '\n';
  }
  return out;
}

std::string ValidLabels() {
  std::string out = "record,entity\n";
  for (int r = 0; r < 40; ++r) {
    out += std::to_string(r) + "," + std::to_string(r / 2) + "\n";
  }
  return out;
}

// One random mutation drawn from the malformed-input corpus of the issue:
// truncation, stray quotes, NUL / CR-LF injection, over-long fields, bad
// numerics, byte swaps and duplicated chunks.
std::string Mutate(const std::string& input, Rng& rng) {
  std::string s = input;
  switch (rng.UniformInt(0, 7)) {
    case 0:  // truncate anywhere (possibly mid-quote, mid-CRLF)
      s.resize(static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(s.size()))));
      break;
    case 1: {  // stray quote
      size_t at = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(s.size())));
      s.insert(at, "\"");
      break;
    }
    case 2: {  // NUL injection
      size_t at = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(s.size())));
      s.insert(at, 1, '\0');
      break;
    }
    case 3: {  // CR-LF / lone-CR injection
      size_t at = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(s.size())));
      s.insert(at, rng.Bernoulli(0.5) ? "\r\n" : "\r");
      break;
    }
    case 4: {  // over-long field
      size_t at = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(s.size())));
      s.insert(at, std::string(static_cast<size_t>(
                                   rng.UniformInt(1000, 8000)),
                               'A'));
      break;
    }
    case 5: {  // bad numerics where ids are expected
      size_t at = s.find(',');
      if (at != std::string::npos && at + 1 < s.size()) {
        s.replace(at + 1, 1, rng.Bernoulli(0.5) ? "-" : "9e99x");
      }
      break;
    }
    case 6: {  // random byte swap
      if (s.size() >= 2) {
        size_t a = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(s.size()) - 1));
        size_t b = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(s.size()) - 1));
        std::swap(s[a], s[b]);
      }
      break;
    }
    default: {  // duplicate a random chunk (re-opened record groups etc.)
      if (!s.empty()) {
        size_t from = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(s.size()) - 1));
        size_t len = static_cast<size_t>(rng.UniformInt(
            1, static_cast<int64_t>(std::min<size_t>(s.size() - from, 80))));
        size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(s.size())));
        s.insert(at, s.substr(from, len));
      }
      break;
    }
  }
  return s;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
}

TEST(IngestionFuzzTest, MutatedCorpusNeverCrashesAnyReader) {
  Rng rng(8803);
  const std::string base = ValidCorpus();
  std::string path = TempPath("fuzz_corpus.csv");
  size_t rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = Mutate(base, rng);
    // Extra rounds sometimes stack mutations.
    if (rng.Bernoulli(0.5)) mutated = Mutate(mutated, rng);
    WriteFile(path, mutated);

    // The raw CSV layer, the dataset reader and the validator must all
    // terminate with ok() or a Status — reaching the next line at all is
    // the assertion; any abort kills the test binary.
    Result<std::vector<std::vector<std::string>>> rows = ParseCsv(mutated);
    Result<Dataset> dataset = ReadDatasetCsv(path);
    ValidationReport report = ValidateDatasetCsv(path);
    if (!dataset.ok()) {
      ++rejected;
      EXPECT_FALSE(dataset.status().message().empty()) << "trial " << trial;
      // Whatever the reader rejects, the validator must flag too.
      EXPECT_FALSE(report.ok())
          << "trial " << trial << ": reader said '"
          << dataset.status().ToString() << "' but validate found nothing";
    }
    if (!rows.ok()) {
      EXPECT_FALSE(rows.status().message().empty()) << "trial " << trial;
    }
  }
  // The mutator is hostile enough that a healthy share of inputs must
  // actually be rejected (guards against a reader that swallows anything).
  EXPECT_GT(rejected, 50u);
  std::remove(path.c_str());
}

TEST(IngestionFuzzTest, MutatedLabelsNeverCrashTheReader) {
  Rng rng(8804);
  const std::string base = ValidLabels();
  std::string path = TempPath("fuzz_labels.csv");
  size_t rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = Mutate(base, rng);
    WriteFile(path, mutated);
    Result<std::vector<EntityId>> labels = ReadLabelsCsv(path);
    ValidationReport report = ValidateLabelsCsv(path);
    if (!labels.ok()) {
      ++rejected;
      EXPECT_FALSE(labels.status().message().empty()) << "trial " << trial;
      EXPECT_FALSE(report.ok())
          << "trial " << trial << ": reader said '"
          << labels.status().ToString() << "' but validate found nothing";
    }
  }
  EXPECT_GT(rejected, 50u);
  std::remove(path.c_str());
}

TEST(IngestionFuzzTest, GeneratedDatasetsWithHostileValuesRoundTrip) {
  Rng rng(8805);
  for (int trial = 0; trial < 30; ++trial) {
    Dataset dataset;
    int64_t num_sources = rng.UniformInt(1, 4);
    std::vector<SourceId> sources;
    for (int64_t s = 0; s < num_sources; ++s) {
      sources.push_back(dataset.AddSource("s" + std::to_string(s)));
    }
    int64_t num_records = rng.UniformInt(1, 25);
    for (int64_t r = 0; r < num_records; ++r) {
      std::vector<Field> fields;
      int64_t num_fields = rng.UniformInt(1, 4);
      for (int64_t f = 0; f < num_fields; ++f) {
        fields.push_back(
            Field{dataset.InternAttr("a" + std::to_string(f)),
                  RandomField(rng)});
      }
      dataset.AddRecord(sources[static_cast<size_t>(rng.UniformInt(
                            0, num_sources - 1))],
                        std::move(fields));
    }
    std::string path = TempPath("fuzz_world.csv");
    ASSERT_TRUE(WriteDatasetCsv(dataset, path).ok());
    Result<Dataset> loaded = ReadDatasetCsv(path);
    ASSERT_TRUE(loaded.ok()) << "trial " << trial << ": "
                             << loaded.status();
    ASSERT_EQ(loaded->num_records(), dataset.num_records())
        << "trial " << trial;
    for (size_t r = 0; r < dataset.num_records(); ++r) {
      const Record& a = dataset.record(static_cast<RecordIdx>(r));
      const Record& b = loaded->record(static_cast<RecordIdx>(r));
      ASSERT_EQ(a.fields.size(), b.fields.size()) << "trial " << trial;
      for (size_t f = 0; f < a.fields.size(); ++f) {
        EXPECT_EQ(a.fields[f].value, b.fields[f].value)
            << "trial " << trial << " record " << r;
      }
    }
    std::remove(path.c_str());
  }
}


// ---------------------------------------------------------------------------
// Wire-protocol mutation corpus: the `bdi serve` request parser sits on an
// untrusted network boundary, so it gets the same treatment as the file
// readers — valid JSON-lines requests put through the hostile mutator must
// always come back as ok() or a Status, never a crash, and every rejection
// must render into a well-formed JSON error line.

TEST(IngestionFuzzTest, MutatedServeRequestsNeverCrashTheParser) {
  Rng rng(8806);
  const std::vector<std::string> seeds = {
      R"({"op":"stats","id":1})",
      R"({"op":"ask","id":2,"entity":"Zorix QX-12","attribute":"weight"})",
      R"({"op":"find","id":3,"entity":"zorix camera","k":10})",
      R"({"op":"update","id":4,"records":[{"source":"s0.example.com",)"
      R"("fields":{"name":"Zorix QX-12","weight":"390 g"}}]})",
      R"({"op":"shutdown","id":5})",
  };
  size_t trials = 0;
  size_t rejected = 0;
  for (int round = 0; round < 300; ++round) {
    for (const std::string& seed : seeds) {
      std::string mutated = Mutate(seed, rng);
      if (rng.Bernoulli(0.5)) mutated = Mutate(mutated, rng);
      ++trials;
      Result<serve::Request> request = serve::ParseRequest(mutated);
      if (request.ok()) continue;
      ++rejected;
      ASSERT_FALSE(request.status().message().empty())
          << "round " << round;
      // The server echoes the parse error back over the wire; the error
      // line must itself be valid JSON no matter what bytes leaked into
      // the message (NULs, quotes, control characters).
      std::string line =
          serve::EncodeError(-1, request.status().message());
      Result<serve::JsonValue> echoed = serve::ParseJson(line);
      ASSERT_TRUE(echoed.ok())
          << "round " << round << ": EncodeError produced invalid JSON '"
          << line << "': " << echoed.status();
    }
  }
  // The mutator must actually break a healthy share of requests (guards
  // against a parser that swallows anything).
  EXPECT_GT(rejected, trials / 2);
}

}  // namespace
}  // namespace bdi
