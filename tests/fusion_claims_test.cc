#include "bdi/fusion/claims.h"

#include <gtest/gtest.h>

#include "bdi/synth/world.h"

namespace bdi::fusion {
namespace {

TEST(ClaimDbTest, FromGroundTruthGroupsByItem) {
  GroundTruth truth;
  truth.claims = {
      {0, 0, 2, "a", false}, {1, 0, 2, "b", false}, {0, 1, 2, "c", false},
      {1, 1, 3, "d", false},
  };
  ClaimDb db = ClaimDb::FromGroundTruth(truth, 2);
  EXPECT_EQ(db.num_sources(), 2u);
  EXPECT_EQ(db.items().size(), 3u);  // (0,2), (1,2), (1,3)
  EXPECT_EQ(db.num_claims(), 4u);
  // Item (0,2) has two claims.
  bool found = false;
  for (const DataItem& item : db.items()) {
    if (item.entity == 0 && item.attr == 2) {
      found = true;
      EXPECT_EQ(item.claims.size(), 2u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ClaimDbTest, CanonicalizeSnapsCloseNumerics) {
  ClaimDb db;
  DataItem item;
  item.entity = 0;
  item.attr = 2;
  item.claims = {{0, "100"}, {1, "100.5"}, {2, "99.8"}, {3, "150"}};
  db.AddItem(item);
  db.set_num_sources(4);
  db.CanonicalizeNumericValues(0.02);
  const DataItem& out = db.items()[0];
  // The three close values collapse to one representative; 150 stays.
  EXPECT_EQ(out.claims[0].value, out.claims[1].value);
  EXPECT_EQ(out.claims[1].value, out.claims[2].value);
  EXPECT_EQ(out.claims[3].value, "150");
}

TEST(ClaimDbTest, CanonicalizeLeavesNonNumericAlone) {
  ClaimDb db;
  DataItem item;
  item.entity = 0;
  item.attr = 2;
  item.claims = {{0, "red"}, {1, "red"}, {2, "blue"}};
  db.AddItem(item);
  db.CanonicalizeNumericValues(0.05);
  EXPECT_EQ(db.items()[0].claims[0].value, "red");
  EXPECT_EQ(db.items()[0].claims[2].value, "blue");
}

TEST(ClaimDbTest, CanonicalizeKeepsDistantGroupsApart) {
  ClaimDb db;
  DataItem item;
  item.entity = 0;
  item.attr = 2;
  item.claims = {{0, "10"}, {1, "10.1"}, {2, "20"}, {3, "20.2"}};
  db.AddItem(item);
  db.CanonicalizeNumericValues(0.03);
  const DataItem& out = db.items()[0];
  EXPECT_EQ(out.claims[0].value, out.claims[1].value);
  EXPECT_EQ(out.claims[2].value, out.claims[3].value);
  EXPECT_NE(out.claims[0].value, out.claims[2].value);
}

TEST(ClaimDbTest, FromPipelineExcludesRoleAttrs) {
  // A small pipeline-shaped setup: two sources, one entity cluster.
  Dataset dataset;
  SourceId s0 = dataset.AddSource("s0");
  SourceId s1 = dataset.AddSource("s1");
  dataset.AddRecord(s0, {{"name", "Canon X ONE"}, {"color", "Red"}});
  dataset.AddRecord(s1, {{"title", "canon x one"}, {"colour", "red"}});
  schema::AttributeStatistics stats =
      schema::AttributeStatistics::Compute(dataset);

  // Hand-built roles are hard to force; use a mediated schema aligning the
  // color attrs and no roles (role exclusion covered by passing nullptr).
  schema::MediatedSchema schema;
  SourceAttr c0{0, dataset.FindAttr("color").value()};
  SourceAttr c1{1, dataset.FindAttr("colour").value()};
  schema.clusters = {{c0, c1}};
  schema.cluster_of[c0] = 0;
  schema.cluster_of[c1] = 0;
  schema.cluster_names = {"color"};
  schema::ValueNormalizer normalizer =
      schema::ValueNormalizer::Fit(stats, schema);

  linkage::EntityClusters clusters;
  clusters.label_of_record = {0, 0};
  clusters.num_clusters = 1;

  ClaimDb db = ClaimDb::FromPipeline(dataset, clusters, schema, normalizer,
                                     nullptr);
  // Only the color cluster produces claims (name/title are not clustered).
  ASSERT_EQ(db.items().size(), 1u);
  EXPECT_EQ(db.items()[0].claims.size(), 2u);
  EXPECT_EQ(db.items()[0].claims[0].value, "red");
  EXPECT_EQ(db.items()[0].claims[1].value, "red");
}

TEST(ClaimDbTest, FromPipelineFirstClaimPerSourceWins) {
  Dataset dataset;
  SourceId s0 = dataset.AddSource("s0");
  dataset.AddRecord(s0, {{"color", "red"}});
  dataset.AddRecord(s0, {{"color", "blue"}});
  schema::AttributeStatistics stats =
      schema::AttributeStatistics::Compute(dataset);
  schema::MediatedSchema schema;
  SourceAttr c{0, dataset.FindAttr("color").value()};
  schema.clusters = {{c}};
  schema.cluster_of[c] = 0;
  schema.cluster_names = {"color"};
  schema::ValueNormalizer normalizer =
      schema::ValueNormalizer::Fit(stats, schema);
  linkage::EntityClusters clusters;
  clusters.label_of_record = {0, 0};  // same cluster, same source
  clusters.num_clusters = 1;
  ClaimDb db = ClaimDb::FromPipeline(dataset, clusters, schema, normalizer,
                                     nullptr);
  ASSERT_EQ(db.items().size(), 1u);
  EXPECT_EQ(db.items()[0].claims.size(), 1u);
}

TEST(ClaimDbTest, RoundTripWithWorld) {
  synth::WorldConfig config;
  config.seed = 61;
  config.num_entities = 80;
  config.num_sources = 6;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());
  EXPECT_EQ(db.num_claims(), world.truth.claims.size());
  for (const DataItem& item : db.items()) {
    EXPECT_FALSE(item.claims.empty());
    for (const Claim& claim : item.claims) {
      EXPECT_GE(claim.source, 0);
      EXPECT_LT(static_cast<size_t>(claim.source), db.num_sources());
    }
  }
}

}  // namespace
}  // namespace bdi::fusion
