// The write-ahead log's framing and recovery parser (src/bdi/serve/wal.h).
// Two properties carry the durability story:
//
//  1. Round-trip fidelity: whatever AppendWalFileHeader/AppendWalBatchFrame
//     emit, ParseWal returns verbatim — sequences, sources, attribute
//     order, hostile byte values.
//
//  2. Crash realism under mutation: a torn tail (any prefix of a valid
//     log) recovers to exactly the complete frames before the tear, while
//     mid-file damage — flipped bytes, duplicated frames, truncated
//     middles — comes back as a Status, NEVER a crash and NEVER silently
//     replayed data. The asan-ingestion preset runs this suite to back the
//     "never a crash" half with instrumentation.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "bdi/common/posix_io.h"
#include "bdi/serve/wal.h"

namespace bdi::serve {
namespace {

std::vector<UpdateRecord> MakeBatch(int salt, size_t records) {
  std::vector<UpdateRecord> batch;
  for (size_t r = 0; r < records; ++r) {
    UpdateRecord record;
    record.source = "src-" + std::to_string((salt + static_cast<int>(r)) % 3);
    record.fields.emplace_back("name",
                               "entity " + std::to_string(salt) + "-" +
                                   std::to_string(r));
    record.fields.emplace_back("weight", std::to_string(salt) + " g");
    batch.push_back(std::move(record));
  }
  return batch;
}

// A valid log: header at base_seq, then `batches` consecutive frames.
std::string BuildLog(uint64_t base_seq, size_t batches,
                     std::vector<std::vector<UpdateRecord>>* out = nullptr) {
  std::string bytes;
  AppendWalFileHeader(base_seq, &bytes);
  for (size_t b = 0; b < batches; ++b) {
    std::vector<UpdateRecord> batch = MakeBatch(static_cast<int>(b), 2 + b);
    AppendWalBatchFrame(base_seq + b + 1, batch, &bytes);
    if (out != nullptr) out->push_back(std::move(batch));
  }
  return bytes;
}

TEST(ServeWalTest, RoundTripsFramesVerbatim) {
  std::vector<std::vector<UpdateRecord>> sent;
  std::string bytes = BuildLog(7, 4, &sent);

  Result<WalReplay> replay = ParseWal(bytes);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_TRUE(replay->has_header);
  EXPECT_EQ(replay->base_seq, 7u);
  EXPECT_FALSE(replay->truncated_tail);
  EXPECT_EQ(replay->valid_bytes, bytes.size());
  ASSERT_EQ(replay->batches.size(), sent.size());
  for (size_t b = 0; b < sent.size(); ++b) {
    EXPECT_EQ(replay->batches[b].seq, 7u + b + 1);
    ASSERT_EQ(replay->batches[b].records.size(), sent[b].size());
    for (size_t r = 0; r < sent[b].size(); ++r) {
      EXPECT_EQ(replay->batches[b].records[r].source, sent[b][r].source);
      EXPECT_EQ(replay->batches[b].records[r].fields, sent[b][r].fields);
    }
  }
}

TEST(ServeWalTest, RoundTripsHostileBytes) {
  // Values with NUL, newlines, quotes and high bytes — the frame format is
  // length-prefixed binary, so nothing needs escaping.
  UpdateRecord record;
  record.source = std::string("s\0urce", 6);
  record.fields.emplace_back("attr\n1", std::string("va\0lue", 6));
  record.fields.emplace_back("\xff\xfe", "\"quoted\"");
  std::string bytes;
  AppendWalFileHeader(0, &bytes);
  AppendWalBatchFrame(1, {record}, &bytes);

  Result<WalReplay> replay = ParseWal(bytes);
  ASSERT_TRUE(replay.ok()) << replay.status();
  ASSERT_EQ(replay->batches.size(), 1u);
  EXPECT_EQ(replay->batches[0].records[0].source, record.source);
  EXPECT_EQ(replay->batches[0].records[0].fields, record.fields);
}

// Every prefix of a valid log is a legal crash state: ParseWal recovers
// exactly the complete frames before the tear and reports the torn tail,
// with valid_bytes marking where appending may resume.
TEST(ServeWalTest, EveryTruncationPointRecovers) {
  std::string bytes = BuildLog(0, 3);
  Result<WalReplay> whole = ParseWal(bytes);
  ASSERT_TRUE(whole.ok());
  ASSERT_EQ(whole->batches.size(), 3u);

  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Result<WalReplay> replay = ParseWal(std::string_view(bytes).substr(0, cut));
    ASSERT_TRUE(replay.ok())
        << "prefix of a valid log rejected at " << cut << ": "
        << replay.status();
    // A cut exactly on a frame boundary is indistinguishable from a clean
    // file; anywhere else the tear must be reported.
    EXPECT_TRUE(replay->truncated_tail || replay->valid_bytes == cut)
        << "cut at " << cut;
    EXPECT_LE(replay->valid_bytes, cut);
    EXPECT_LE(replay->batches.size(), 3u);
    // The recovered prefix must itself re-parse to the same state.
    Result<WalReplay> again = ParseWal(
        std::string_view(bytes).substr(0, replay->valid_bytes));
    ASSERT_TRUE(again.ok()) << "cut at " << cut;
    EXPECT_EQ(again->batches.size(), replay->batches.size());
    EXPECT_EQ(again->base_seq, replay->base_seq);
  }
}

// Mutation fuzz: flip every byte of a valid log, one at a time. Each
// mutant must either fail with a Status or succeed having dropped a torn
// tail — never crash, never accept a frame whose checksum no longer
// matches its payload.
TEST(ServeWalTest, SingleByteFlipsNeverCrashAndNeverCorruptPayloads) {
  std::vector<std::vector<UpdateRecord>> sent;
  std::string bytes = BuildLog(0, 3, &sent);

  for (size_t i = 0; i < bytes.size(); ++i) {
    for (unsigned char flip : {0x01, 0x80, 0xff}) {
      std::string mutant = bytes;
      mutant[i] = static_cast<char>(mutant[i] ^ flip);
      Result<WalReplay> replay = ParseWal(mutant);
      if (!replay.ok()) {
        EXPECT_FALSE(replay.status().message().empty());
        continue;
      }
      // Accepted: every surviving batch must be bit-identical to what was
      // written (the CRC caught the flip, so the damaged frame and its
      // successors were dropped as a tail, or the flip landed in the
      // already-dropped region).
      ASSERT_LE(replay->batches.size(), sent.size());
      for (size_t b = 0; b < replay->batches.size(); ++b) {
        EXPECT_EQ(replay->batches[b].seq, b + 1);
        ASSERT_EQ(replay->batches[b].records.size(), sent[b].size());
        for (size_t r = 0; r < sent[b].size(); ++r) {
          EXPECT_EQ(replay->batches[b].records[r].source, sent[b][r].source);
          EXPECT_EQ(replay->batches[b].records[r].fields, sent[b][r].fields);
        }
      }
    }
  }
}

TEST(ServeWalTest, RejectsDuplicatedAndOutOfOrderFrames) {
  std::string head;
  AppendWalFileHeader(0, &head);
  std::string frame1, frame2;
  AppendWalBatchFrame(1, MakeBatch(1, 2), &frame1);
  AppendWalBatchFrame(2, MakeBatch(2, 2), &frame2);

  // Duplicated frame: seq 1 twice.
  EXPECT_FALSE(ParseWal(head + frame1 + frame1).ok());
  // Out-of-order: seq 2 before seq 1.
  EXPECT_FALSE(ParseWal(head + frame2 + frame1).ok());
  // Gap: seq 2 with no seq 1.
  EXPECT_FALSE(ParseWal(head + frame2).ok());
  // Replayed from a different base: header says 5, frame says 1.
  std::string rebased;
  AppendWalFileHeader(5, &rebased);
  EXPECT_FALSE(ParseWal(rebased + frame1).ok());
}

TEST(ServeWalTest, RejectsForeignAndTornHeaderFiles) {
  // Not a WAL at all.
  EXPECT_FALSE(ParseWal("definitely not a wal file").ok());
  EXPECT_FALSE(ParseWal(std::string(64, '\xcc')).ok());

  // A torn initial Create: magic (or a prefix of it) but no complete
  // header frame. Nothing was ever acknowledged from such a file, so the
  // parser reports an empty, recreate-me state rather than an error.
  std::string full;
  AppendWalFileHeader(3, &full);
  for (size_t cut = 0; cut < full.size(); ++cut) {
    Result<WalReplay> replay = ParseWal(std::string_view(full).substr(0, cut));
    ASSERT_TRUE(replay.ok()) << "cut at " << cut << ": " << replay.status();
    EXPECT_FALSE(replay->has_header) << "cut at " << cut;
    EXPECT_TRUE(replay->batches.empty());
    EXPECT_EQ(replay->valid_bytes, 0u);
  }
}

TEST(ServeWalTest, AppenderWritesParseableLogs) {
  const std::string path = testing::TempDir() + "serve_wal_appender.wal";
  {
    Result<std::unique_ptr<Wal>> wal = Wal::Create(path, 0, /*do_fsync=*/true);
    ASSERT_TRUE(wal.ok()) << wal.status();
    ASSERT_TRUE((*wal)->AppendBatch(1, MakeBatch(1, 3)).ok());
    ASSERT_TRUE((*wal)->AppendBatch(2, MakeBatch(2, 1)).ok());
  }
  Result<std::string> bytes = io::ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  Result<WalReplay> replay = ParseWal(*bytes);
  ASSERT_TRUE(replay.ok()) << replay.status();
  ASSERT_EQ(replay->batches.size(), 2u);

  // Reopen at the valid prefix and keep appending; the log stays whole.
  {
    Result<std::unique_ptr<Wal>> wal =
        Wal::OpenForAppend(path, replay->valid_bytes, /*do_fsync=*/true);
    ASSERT_TRUE(wal.ok()) << wal.status();
    ASSERT_TRUE((*wal)->AppendBatch(3, MakeBatch(3, 2)).ok());
  }
  bytes = io::ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  replay = ParseWal(*bytes);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->batches.size(), 3u);
  EXPECT_FALSE(replay->truncated_tail);
}

TEST(ServeWalTest, OpenForAppendDropsTornTail) {
  const std::string path = testing::TempDir() + "serve_wal_torn.wal";
  std::string bytes = BuildLog(0, 2);
  const size_t whole = bytes.size();
  // Simulate a torn append: half of a third frame.
  AppendWalBatchFrame(3, MakeBatch(3, 2), &bytes);
  bytes.resize(whole + (bytes.size() - whole) / 2);
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

  Result<WalReplay> replay = ParseWal(bytes);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_TRUE(replay->truncated_tail);
  EXPECT_EQ(replay->valid_bytes, whole);
  EXPECT_EQ(replay->batches.size(), 2u);

  Result<std::unique_ptr<Wal>> wal =
      Wal::OpenForAppend(path, replay->valid_bytes, /*do_fsync=*/true);
  ASSERT_TRUE(wal.ok()) << wal.status();
  struct stat st;
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  EXPECT_EQ(static_cast<uint64_t>(st.st_size), whole);
  ASSERT_TRUE((*wal)->AppendBatch(3, MakeBatch(3, 2)).ok());
  Result<std::string> after = io::ReadFileBytes(path);
  ASSERT_TRUE(after.ok());
  Result<WalReplay> again = ParseWal(*after);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->batches.size(), 3u);
  EXPECT_FALSE(again->truncated_tail);
}

TEST(ServeWalTest, CheckpointPathsAndStaleCleanup) {
  EXPECT_EQ(WalCheckpointPath("/tmp/x.wal", 12), "/tmp/x.wal.ckpt-12.bds");

  const std::string dir = testing::TempDir();
  const std::string wal_path = dir + "serve_wal_cleanup.wal";
  for (uint64_t seq : {3u, 7u, 12u}) {
    FILE* f = std::fopen(WalCheckpointPath(wal_path, seq).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
  }
  // An unrelated neighbor must survive the sweep.
  const std::string neighbor = dir + "serve_wal_cleanup_other.wal.ckpt-3.bds";
  {
    FILE* f = std::fopen(neighbor.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
  }

  ASSERT_TRUE(RemoveStaleCheckpoints(wal_path, 7).ok());
  struct stat st;
  EXPECT_NE(::stat(WalCheckpointPath(wal_path, 3).c_str(), &st), 0);
  EXPECT_EQ(::stat(WalCheckpointPath(wal_path, 7).c_str(), &st), 0);
  EXPECT_NE(::stat(WalCheckpointPath(wal_path, 12).c_str(), &st), 0);
  EXPECT_EQ(::stat(neighbor.c_str(), &st), 0);
}

}  // namespace
}  // namespace bdi::serve
