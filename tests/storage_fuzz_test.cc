// Malformed-input harness for the `.bds` binary boundary, extending the
// PR-5 ingestion mutation corpus to the columnar format:
//
//  1. Mutation corpus over valid `.bds` bytes — truncation anywhere
//     (including mid-footer and mid-tail), bit flips in row-group bodies,
//     corrupt footer offsets, bad checksums, version/flag skew, chunk
//     duplication. Every outcome must be ok() or a Status — a crash or
//     sanitizer report kills the test binary, which IS the failure
//     signal. Whatever ReadAll rejects, ValidateBdsFile must flag too.
//
//  2. CSV <-> .bds parity fuzz over the hostile alphabet: the streaming
//     converter must accept exactly the long-CSV files ReadDatasetCsv
//     accepts, and on acceptance the decoded dataset must match value for
//     value, id for id.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bdi/common/csv.h"
#include "bdi/common/random.h"
#include "bdi/model/dataset.h"
#include "bdi/model/dataset_io.h"
#include "bdi/storage/bds_reader.h"
#include "bdi/storage/bds_writer.h"
#include "bdi/storage/format.h"

namespace bdi::storage {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// Same hostile alphabet as the CSV ingestion fuzzer: delimiters, quotes,
// both newline flavors, NUL and ordinary bytes.
std::string RandomField(Rng& rng) {
  static const std::string alphabet(",\"\n\r\0 abz09._-", 14);
  std::string field;
  int64_t len = rng.Bernoulli(0.02) ? rng.UniformInt(300, 2000)
                                    : rng.UniformInt(0, 12);
  for (int64_t c = 0; c < len; ++c) {
    field.push_back(alphabet[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(alphabet.size()) - 1))]);
  }
  return field;
}

// A well-formed multi-group .bds file to mutate.
std::string ValidBdsBytes(Rng& rng) {
  Dataset dataset;
  SourceId a = dataset.AddSource("s0");
  SourceId b = dataset.AddSource("s1");
  for (int r = 0; r < 30; ++r) {
    std::vector<std::pair<std::string, std::string>> fields;
    int64_t num_fields = rng.UniformInt(1, 4);
    for (int64_t f = 0; f < num_fields; ++f) {
      fields.emplace_back("a" + std::to_string(f), RandomField(rng));
    }
    dataset.AddRecord(r % 2 == 0 ? a : b, fields);
  }
  BdsWriterOptions options;
  options.records_per_group =
      static_cast<uint32_t>(rng.UniformInt(1, 9));
  options.raw_value_min_len = 200;
  std::string path = TempPath("fuzz_base.bds");
  EXPECT_TRUE(WriteDatasetBds(dataset, path, options).ok());
  std::string bytes = ReadFileBytes(path);
  std::remove(path.c_str());
  return bytes;
}

// One mutation from the binary corpus: truncation, bit flips (body,
// footer, tail), zeroed and duplicated chunks, corrupted footer offsets.
std::string Mutate(const std::string& input, Rng& rng) {
  std::string s = input;
  if (s.empty()) return s;
  switch (rng.UniformInt(0, 6)) {
    case 0:  // truncate anywhere: mid-group, mid-footer, mid-tail
      s.resize(static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(s.size()) - 1)));
      break;
    case 1: {  // bit flip anywhere
      size_t at = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(s.size()) - 1));
      s[at] = static_cast<char>(
          s[at] ^ (1 << rng.UniformInt(0, 7)));
      break;
    }
    case 2: {  // bit flip biased into the footer / tail region
      size_t window = std::min<size_t>(s.size(), 200);
      size_t at = s.size() - 1 -
                  static_cast<size_t>(rng.UniformInt(
                      0, static_cast<int64_t>(window) - 1));
      s[at] = static_cast<char>(s[at] ^ 0x10);
      break;
    }
    case 3: {  // zero a chunk (kills offsets / lengths / CRCs wholesale)
      size_t at = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(s.size()) - 1));
      size_t len = static_cast<size_t>(rng.UniformInt(
          1, static_cast<int64_t>(std::min<size_t>(s.size() - at, 32))));
      for (size_t i = 0; i < len; ++i) s[at + i] = '\0';
      break;
    }
    case 4: {  // duplicate a chunk (shifts everything after it)
      size_t from = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(s.size()) - 1));
      size_t len = static_cast<size_t>(rng.UniformInt(
          1, static_cast<int64_t>(std::min<size_t>(s.size() - from, 64))));
      size_t at = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(s.size())));
      s.insert(at, s.substr(from, len));
      break;
    }
    case 5: {  // overwrite 8 bytes with a huge little-endian value
      if (s.size() >= 8) {
        size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(s.size()) - 8));
        for (size_t i = 0; i < 8; ++i) s[at + i] = '\xff';
      }
      break;
    }
    default: {  // stack two simpler mutations
      s = Mutate(s, rng);
      if (!s.empty()) s = Mutate(s, rng);
      break;
    }
  }
  return s;
}

TEST(BdsFuzzTest, MutatedFilesNeverCrashAnyReaderPath) {
  Rng rng(9901);
  std::string path = TempPath("fuzz_mutant.bds");
  size_t rejected = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::string base = ValidBdsBytes(rng);
    std::string mutated = Mutate(base, rng);
    WriteFileBytes(path, mutated);

    // Reaching the end of the loop body is the assertion: every path must
    // terminate with ok() or a Status, never abort — asan/ubsan presets
    // turn latent memory errors here into hard failures.
    ValidationReport report = ValidateBdsFile(path);
    Result<BdsReader> reader = BdsReader::Open(path);
    if (!reader.ok()) {
      ++rejected;
      EXPECT_FALSE(reader.status().message().empty()) << "trial " << trial;
      // Open failures are folded into the validation report.
      EXPECT_FALSE(report.ok()) << "trial " << trial;
      continue;
    }
    Result<Dataset> all = reader->ReadAll();
    Result<Dataset> head = reader->ReadHead(3);
    Result<Dataset> projected = reader->ReadProjected({"a0"});
    if (!all.ok()) {
      ++rejected;
      EXPECT_FALSE(all.status().message().empty()) << "trial " << trial;
      // Whatever the decoder rejects, the checksum validator must flag:
      // every decodable byte of the format is covered by some CRC.
      EXPECT_FALSE(report.ok())
          << "trial " << trial << ": reader said '" << all.status().ToString()
          << "' but validate found nothing";
    } else {
      EXPECT_EQ(all->num_records(), reader->num_records())
          << "trial " << trial;
      // A file whose full decode is clean must also head/project cleanly.
      EXPECT_TRUE(head.ok()) << "trial " << trial << ": " << head.status();
      EXPECT_TRUE(projected.ok())
          << "trial " << trial << ": " << projected.status();
    }
  }
  // The mutator must actually bite: the format has no padding, so nearly
  // every mutation lands in a CRC-covered or bounds-checked region.
  EXPECT_GT(rejected, 100u);
  std::remove(path.c_str());
}

TEST(BdsFuzzTest, ConvertAcceptsExactlyWhatTheCsvReaderAccepts) {
  Rng rng(9902);
  std::string csv_path = TempPath("fuzz_parity.csv");
  std::string bds_path = TempPath("fuzz_parity.bds");
  size_t accepted = 0;
  size_t rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    // Mostly-plausible long CSV with hostile fields: valid header, rows
    // of usually 4 fields, record ids usually numeric and grouped —
    // each "usually" flips sometimes so both accept and reject paths run.
    std::string doc = "source,record,attribute,value\n";
    int64_t num_rows = rng.UniformInt(0, 15);
    int record = 0;
    for (int64_t r = 0; r < num_rows; ++r) {
      std::vector<std::string> row;
      if (rng.Bernoulli(0.97)) {
        if (rng.Bernoulli(0.3)) ++record;
        row = {"s" + std::to_string(rng.UniformInt(0, 2)),
               rng.Bernoulli(0.99) ? std::to_string(record)
                                   : RandomField(rng),
               "a" + std::to_string(rng.UniformInt(0, 3)),
               RandomField(rng)};
      } else {
        int64_t n = rng.UniformInt(1, 6);
        for (int64_t f = 0; f < n; ++f) row.push_back(RandomField(rng));
      }
      doc += EncodeCsvRow(row);
      doc += '\n';
    }
    // Occasionally corrupt the raw text so the CSV layer itself rejects.
    if (rng.Bernoulli(0.15)) {
      size_t at = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(doc.size())));
      doc.insert(at, 1, '"');
    }
    WriteFileBytes(csv_path, doc);

    Result<Dataset> via_csv = ReadDatasetCsv(csv_path);
    BdsWriterOptions options;
    options.records_per_group =
        static_cast<uint32_t>(rng.UniformInt(1, 9));
    Result<ConvertStats> converted =
        ConvertCsvToBds(csv_path, bds_path, options);

    ASSERT_EQ(via_csv.ok(), converted.ok())
        << "trial " << trial << ": csv reader said '"
        << via_csv.status().ToString() << "', converter said '"
        << converted.status().ToString() << "'";
    if (!via_csv.ok()) {
      ++rejected;
      continue;
    }
    ++accepted;
    Result<BdsReader> reader = BdsReader::Open(bds_path);
    ASSERT_TRUE(reader.ok()) << "trial " << trial << ": " << reader.status();
    Result<Dataset> via_bds = reader->ReadAll();
    ASSERT_TRUE(via_bds.ok()) << "trial " << trial << ": "
                              << via_bds.status();
    ASSERT_EQ(via_bds->num_records(), via_csv->num_records())
        << "trial " << trial;
    ASSERT_EQ(via_bds->num_sources(), via_csv->num_sources())
        << "trial " << trial;
    ASSERT_EQ(via_bds->num_attrs(), via_csv->num_attrs())
        << "trial " << trial;
    for (size_t r = 0; r < via_csv->num_records(); ++r) {
      const Record& x = via_csv->record(static_cast<RecordIdx>(r));
      const Record& y = via_bds->record(static_cast<RecordIdx>(r));
      ASSERT_EQ(x.source, y.source) << "trial " << trial << " record " << r;
      ASSERT_EQ(x.fields.size(), y.fields.size())
          << "trial " << trial << " record " << r;
      for (size_t f = 0; f < x.fields.size(); ++f) {
        ASSERT_EQ(x.fields[f].attr, y.fields[f].attr)
            << "trial " << trial << " record " << r;
        ASSERT_EQ(x.fields[f].value, y.fields[f].value)
            << "trial " << trial << " record " << r;
      }
    }
  }
  // Both branches of the parity property must actually run.
  EXPECT_GT(accepted, 50u);
  EXPECT_GT(rejected, 20u);
  std::remove(csv_path.c_str());
  std::remove(bds_path.c_str());
}

TEST(BdsFuzzTest, HostileValueDatasetsRoundTripThroughBds) {
  Rng rng(9903);
  std::string path = TempPath("fuzz_roundtrip.bds");
  for (int trial = 0; trial < 60; ++trial) {
    Dataset dataset;
    int64_t num_sources = rng.UniformInt(1, 4);
    std::vector<SourceId> sources;
    for (int64_t s = 0; s < num_sources; ++s) {
      sources.push_back(dataset.AddSource("s" + std::to_string(s)));
    }
    int64_t num_records = rng.UniformInt(0, 25);
    for (int64_t r = 0; r < num_records; ++r) {
      std::vector<Field> fields;
      int64_t num_fields = rng.UniformInt(1, 4);
      for (int64_t f = 0; f < num_fields; ++f) {
        fields.push_back(Field{dataset.InternAttr("a" + std::to_string(f)),
                               RandomField(rng)});
      }
      dataset.AddRecord(sources[static_cast<size_t>(rng.UniformInt(
                            0, num_sources - 1))],
                        std::move(fields));
    }
    BdsWriterOptions options;
    options.records_per_group =
        static_cast<uint32_t>(rng.UniformInt(1, 7));
    options.raw_value_min_len =
        static_cast<size_t>(rng.UniformInt(4, 400));
    ASSERT_TRUE(WriteDatasetBds(dataset, path, options).ok())
        << "trial " << trial;
    Result<BdsReader> reader = BdsReader::Open(path);
    ASSERT_TRUE(reader.ok()) << "trial " << trial << ": " << reader.status();
    Result<Dataset> loaded = reader->ReadAll();
    ASSERT_TRUE(loaded.ok()) << "trial " << trial << ": " << loaded.status();
    ASSERT_EQ(loaded->num_records(), dataset.num_records())
        << "trial " << trial;
    for (size_t r = 0; r < dataset.num_records(); ++r) {
      const Record& x = dataset.record(static_cast<RecordIdx>(r));
      const Record& y = loaded->record(static_cast<RecordIdx>(r));
      ASSERT_EQ(x.fields.size(), y.fields.size())
          << "trial " << trial << " record " << r;
      for (size_t f = 0; f < x.fields.size(); ++f) {
        ASSERT_EQ(x.fields[f].value, y.fields[f].value)
            << "trial " << trial << " record " << r << " field " << f;
      }
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bdi::storage
