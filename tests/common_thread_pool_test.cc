#include "bdi/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "bdi/common/table.h"

namespace bdi {
namespace {

TEST(ThreadPoolTest, RunsSubmittedWork) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "should not be called"; });
}

TEST(ThreadPoolTest, ParallelForSmallerThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.ParallelFor(3, [&](size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ParallelSum) {
  ThreadPool pool(4);
  std::vector<int64_t> partial(1000, 0);
  pool.ParallelFor(1000, [&](size_t i) {
    partial[i] = static_cast<int64_t>(i);
  });
  int64_t total = std::accumulate(partial.begin(), partial.end(), int64_t{0});
  EXPECT_EQ(total, 999 * 1000 / 2);
}

// TextTable lives in common too; cover it here.
TEST(TextTableTest, AlignsColumns) {
  TextTable table({"name", "v"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("name   v"), std::string::npos);
  EXPECT_NE(out.find("alpha  1"), std::string::npos);
  EXPECT_NE(out.find("b      22"), std::string::npos);
}

TEST(TextTableTest, DoubleRowsFormatted) {
  TextTable table({"m", "p", "r"});
  table.AddRow("vote", {0.51234, 0.9}, 3);
  EXPECT_EQ(table.num_rows(), 1u);
  std::string out = table.ToString("title");
  EXPECT_NE(out.find("== title =="), std::string::npos);
  EXPECT_NE(out.find("0.512"), std::string::npos);
  EXPECT_NE(out.find("0.9"), std::string::npos);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.AddRow({"only"});
  EXPECT_NO_THROW(table.ToString());
}

}  // namespace
}  // namespace bdi
