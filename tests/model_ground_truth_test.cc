#include "bdi/model/ground_truth.h"

#include <gtest/gtest.h>

#include "bdi/core/integrator.h"
#include "bdi/fusion/evaluation.h"
#include "bdi/synth/world.h"

namespace bdi {
namespace {

/// Replays a dataset record-by-record (fresh interning).
Dataset Replay(const Dataset& original) {
  Dataset copy;
  for (const SourceInfo& source : original.sources()) {
    copy.AddSource(source.name);
  }
  for (const Record& record : original.records()) {
    std::vector<std::pair<std::string, std::string>> fields;
    for (const Field& field : record.fields) {
      fields.emplace_back(original.attr_name(field.attr), field.value);
    }
    copy.AddRecord(record.source, fields);
  }
  return copy;
}

TEST(RemapGroundTruthTest, KeysTranslateByName) {
  synth::WorldConfig config;
  config.seed = 1201;
  config.num_entities = 80;
  config.num_sources = 6;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  Dataset replayed = Replay(world.dataset);
  GroundTruth remapped =
      RemapGroundTruth(world.truth, world.dataset, replayed);

  // Every remapped entry agrees with the original under name translation.
  EXPECT_EQ(remapped.canonical_of_source_attr.size(),
            world.truth.canonical_of_source_attr.size());
  for (const auto& [sa, canonical] : remapped.canonical_of_source_attr) {
    const std::string& source_name = replayed.source(sa.source).name;
    const std::string& attr_name = replayed.attr_name(sa.attr);
    // Find the original entry with the same names.
    bool found = false;
    for (const auto& [osa, ocanonical] :
         world.truth.canonical_of_source_attr) {
      if (world.dataset.source(osa.source).name == source_name &&
          world.dataset.attr_name(osa.attr) == attr_name) {
        EXPECT_EQ(canonical, ocanonical);
        found = true;
      }
    }
    EXPECT_TRUE(found) << source_name << " / " << attr_name;
  }
  EXPECT_EQ(remapped.claims.size(), world.truth.claims.size());
  EXPECT_EQ(remapped.copy_edges.size(), world.truth.copy_edges.size());
  EXPECT_EQ(remapped.source_accuracy.size(), replayed.num_sources());
}

TEST(RemapGroundTruthTest, EvaluationMatchesOriginalDataset) {
  // The bug this utility exists for: id-keyed evaluation on a replayed
  // corpus must yield the same numbers as on the original.
  synth::WorldConfig config;
  config.seed = 1203;
  config.num_entities = 120;
  config.num_sources = 8;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  Dataset replayed = Replay(world.dataset);

  core::IntegrationReport original_report =
      core::Integrator().Run(world.dataset);
  core::IntegrationReport replay_report = core::Integrator().Run(replayed);

  fusion::PipelineMappings original_mappings = fusion::MapPipelineToTruth(
      original_report.linkage.clusters, original_report.schema,
      world.truth);
  double original_precision =
      fusion::EvaluateFusionMapped(original_report.claims,
                                   original_report.fusion,
                                   original_mappings, world.truth)
          .precision;

  GroundTruth remapped =
      RemapGroundTruth(world.truth, world.dataset, replayed);
  fusion::PipelineMappings replay_mappings = fusion::MapPipelineToTruth(
      replay_report.linkage.clusters, replay_report.schema, remapped);
  double replay_precision =
      fusion::EvaluateFusionMapped(replay_report.claims,
                                   replay_report.fusion, replay_mappings,
                                   remapped)
          .precision;
  EXPECT_NEAR(replay_precision, original_precision, 1e-9);

  // And WITHOUT remapping the numbers would be garbage (the trap).
  fusion::PipelineMappings broken_mappings = fusion::MapPipelineToTruth(
      replay_report.linkage.clusters, replay_report.schema, world.truth);
  double broken_precision =
      fusion::EvaluateFusionMapped(replay_report.claims,
                                   replay_report.fusion, broken_mappings,
                                   world.truth)
          .precision;
  EXPECT_LT(broken_precision, original_precision);
}

TEST(RemapGroundTruthTest, MissingTargetsDropped) {
  Dataset from;
  SourceId a = from.AddSource("a");
  from.AddRecord(a, {{"x", "1"}});
  GroundTruth truth;
  truth.canonical_of_source_attr[SourceAttr{a, 0}] = 2;
  truth.claims.push_back(GroundTruth::TrueClaim{a, 0, 2, "1", false});
  truth.source_accuracy = {0.9};

  Dataset to;  // does not contain source "a" at all
  to.AddSource("b");
  to.AddRecord(0, {{"y", "2"}});
  GroundTruth remapped = RemapGroundTruth(truth, from, to);
  EXPECT_TRUE(remapped.canonical_of_source_attr.empty());
  EXPECT_TRUE(remapped.claims.empty());
}

}  // namespace
}  // namespace bdi
