#include "bdi/model/validate.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "bdi/common/csv.h"

namespace bdi {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void Write(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
}

TEST(ValidateDatasetTest, CleanFileIsOkWithCounts) {
  std::string path = TempPath("validate_clean.csv");
  Write(path,
        "source,record,attribute,value\n"
        "a.com,0,name,Widget\n"
        "a.com,0,color,red\n"
        "b.com,1,name,Gadget\n");
  ValidationReport report = ValidateDatasetCsv(path);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.rows, 3u);
  EXPECT_EQ(report.records, 2u);
  EXPECT_EQ(report.sources, 2u);
  EXPECT_EQ(report.attributes, 2u);
  std::remove(path.c_str());
}

TEST(ValidateDatasetTest, MissingFileIsOneFileLevelIssue) {
  ValidationReport report = ValidateDatasetCsv("/no/such/file.csv");
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].row, 0u);
}

TEST(ValidateDatasetTest, CollectsMultipleIssuesWithRows) {
  std::string path = TempPath("validate_multi.csv");
  Write(path,
        "source,record,attribute,value\n"
        "a.com,zero,name,Widget\n"       // row 2: bad record id
        "a.com,1,name,ok\n"
        "b.com,1,name,split\n"           // row 4: group spans sources
        "a.com,2,name\n"                 // row 5: short row
        ",3,name,empty-source\n");       // row 6: empty source
  ValidationReport report = ValidateDatasetCsv(path);
  ASSERT_EQ(report.issues.size(), 4u);
  EXPECT_EQ(report.issues[0].row, 2u);
  EXPECT_EQ(report.issues[1].row, 4u);
  EXPECT_EQ(report.issues[2].row, 5u);
  EXPECT_EQ(report.issues[3].row, 6u);
  std::remove(path.c_str());
}

TEST(ValidateDatasetTest, FlagsReopenedRecordGroup) {
  std::string path = TempPath("validate_reopen.csv");
  Write(path,
        "source,record,attribute,value\n"
        "a.com,0,name,x\n"
        "a.com,1,name,y\n"
        "a.com,0,color,red\n");  // row 4 re-opens record 0
  ValidationReport report = ValidateDatasetCsv(path);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].row, 4u);
  EXPECT_NE(report.issues[0].message.find("re-opens"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ValidateDatasetTest, SyntaxErrorReportsLine) {
  std::string path = TempPath("validate_syntax.csv");
  Write(path, "source,record,attribute,value\na.com,0,name,\"oops\n");
  ValidationReport report = ValidateDatasetCsv(path);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].row, 0u);
  EXPECT_NE(report.issues[0].message.find("line 2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ValidateDatasetTest, CapsIssueListOnHopelessFiles) {
  std::string path = TempPath("validate_hopeless.csv");
  std::string content = "source,record,attribute,value\n";
  for (int r = 0; r < 200; ++r) {
    content += "a.com,notanumber,attr,v\n";
  }
  Write(path, content);
  ValidationReport report = ValidateDatasetCsv(path);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.truncated);
  EXPECT_LE(report.issues.size(), 50u);
  std::remove(path.c_str());
}

TEST(ValidateLabelsTest, CleanLabelsAreOk) {
  std::string path = TempPath("validate_labels.csv");
  Write(path, "record,entity\n0,4\n1,4\n2,-1\n");
  ValidationReport report = ValidateLabelsCsv(path);
  EXPECT_TRUE(report.ok())
      << (report.issues.empty() ? "" : report.issues[0].message);
  EXPECT_EQ(report.rows, 3u);
  EXPECT_EQ(report.records, 3u);
  std::remove(path.c_str());
}

TEST(ValidateLabelsTest, FlagsDuplicatesRangesAndBadNumerics) {
  std::string path = TempPath("validate_labels_bad.csv");
  Write(path,
        "record,entity\n"
        "0,1\n"
        "0,2\n"         // row 3: duplicate record
        "9,1\n"         // row 4: record out of range
        "1,abc\n"       // row 5: bad entity
        "2,99999999999\n");  // row 6: entity out of int32 range
  ValidationReport report = ValidateLabelsCsv(path);
  ASSERT_EQ(report.issues.size(), 4u);
  EXPECT_EQ(report.issues[0].row, 3u);
  EXPECT_EQ(report.issues[1].row, 4u);
  EXPECT_EQ(report.issues[2].row, 5u);
  EXPECT_EQ(report.issues[3].row, 6u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bdi
