#include "bdi/model/dataset.h"

#include <gtest/gtest.h>

namespace bdi {
namespace {

TEST(DatasetTest, AddSourcesAssignsSequentialIds) {
  Dataset dataset;
  EXPECT_EQ(dataset.AddSource("a.com"), 0);
  EXPECT_EQ(dataset.AddSource("b.com"), 1);
  EXPECT_EQ(dataset.num_sources(), 2u);
  EXPECT_EQ(dataset.source(1).name, "b.com");
}

TEST(DatasetTest, InternAttrDeduplicates) {
  Dataset dataset;
  AttrId a = dataset.InternAttr("weight");
  AttrId b = dataset.InternAttr("weight");
  AttrId c = dataset.InternAttr("color");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(dataset.attr_name(a), "weight");
  EXPECT_EQ(dataset.num_attrs(), 2u);
}

TEST(DatasetTest, FindAttr) {
  Dataset dataset;
  AttrId a = dataset.InternAttr("x");
  EXPECT_EQ(dataset.FindAttr("x"), a);
  EXPECT_FALSE(dataset.FindAttr("missing").has_value());
}

TEST(DatasetTest, AddRecordWithNamedFields) {
  Dataset dataset;
  SourceId s = dataset.AddSource("s");
  RecordIdx r = dataset.AddRecord(s, {{"name", "Canon X"}, {"color", "red"}});
  EXPECT_EQ(r, 0);
  const Record& record = dataset.record(r);
  EXPECT_EQ(record.source, s);
  EXPECT_EQ(record.fields.size(), 2u);
  AttrId color = dataset.FindAttr("color").value();
  ASSERT_NE(record.Find(color), nullptr);
  EXPECT_EQ(*record.Find(color), "red");
  EXPECT_EQ(record.Find(999), nullptr);
}

TEST(DatasetTest, SourceTracksItsRecords) {
  Dataset dataset;
  SourceId a = dataset.AddSource("a");
  SourceId b = dataset.AddSource("b");
  dataset.AddRecord(a, {{"k", "1"}});
  dataset.AddRecord(b, {{"k", "2"}});
  dataset.AddRecord(a, {{"k", "3"}});
  EXPECT_EQ(dataset.source(a).records, (std::vector<RecordIdx>{0, 2}));
  EXPECT_EQ(dataset.source(b).records, (std::vector<RecordIdx>{1}));
  EXPECT_EQ(dataset.num_records(), 3u);
}

TEST(DatasetTest, AllSourceAttrsDistinctAndSorted) {
  Dataset dataset;
  SourceId a = dataset.AddSource("a");
  SourceId b = dataset.AddSource("b");
  dataset.AddRecord(a, {{"x", "1"}, {"y", "2"}});
  dataset.AddRecord(a, {{"x", "3"}});
  dataset.AddRecord(b, {{"x", "4"}});
  std::vector<SourceAttr> sas = dataset.AllSourceAttrs();
  ASSERT_EQ(sas.size(), 3u);
  EXPECT_TRUE(std::is_sorted(sas.begin(), sas.end()));
  // Same raw name in two sources yields two SourceAttrs with one AttrId.
  EXPECT_EQ(sas[0].attr, sas[2].attr);
  EXPECT_NE(sas[0].source, sas[2].source);
}

TEST(SourceAttrTest, OrderingAndEquality) {
  SourceAttr a{0, 1}, b{0, 2}, c{1, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (SourceAttr{0, 1}));
  SourceAttrHash hash;
  EXPECT_NE(hash(a), hash(b));
}

TEST(DatasetTest, MoveConstructible) {
  Dataset dataset;
  SourceId s = dataset.AddSource("s");
  dataset.AddRecord(s, {{"k", "v"}});
  Dataset moved = std::move(dataset);
  EXPECT_EQ(moved.num_records(), 1u);
  EXPECT_EQ(moved.record(0).fields[0].value, "v");
}

}  // namespace
}  // namespace bdi
