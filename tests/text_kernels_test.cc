// Golden-value coverage for the allocation-free similarity kernels: the
// scratch-buffer / interned forms must reproduce the string-based
// reference implementations bit for bit — including the edge cases the
// matcher's hot path hits (empty strings, unicode bytes, single tokens,
// all-match, no-match) — and a reused scratch must never leak state
// between calls.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "bdi/text/interner.h"
#include "bdi/text/similarity.h"
#include "bdi/text/tokenizer.h"

namespace bdi::text {
namespace {

/// max(ME(a,b), ME(b,a)) via the two-pass string reference — the exact
/// expression the matcher used before the interned one-pass kernel.
double ReferenceSymmetricMongeElkan(const std::string& a,
                                    const std::string& b) {
  return std::max(MongeElkanSimilarity(a, b), MongeElkanSimilarity(b, a));
}

/// Interned one-pass form of the same value, fresh interner per call.
double InternedSymmetricMongeElkan(const std::string& a,
                                   const std::string& b,
                                   SimilarityScratch& scratch) {
  TokenInterner interner;
  std::vector<TokenId> ta = InternTokens(interner, WordTokens(a));
  std::vector<TokenId> tb = InternTokens(interner, WordTokens(b));
  return SymmetricMongeElkan(interner, ta, tb, scratch);
}

const char* const kEdgeCases[] = {
    "",                          // empty
    "x",                         // single char / single token
    "canon",                     // single token
    "canon eos 5d mark iv",      // multi token
    "canon  eos\t5d",            // repeated separators
    "CANON EOS 5D",              // case folding
    "caf\xc3\xa9 r\xc3\xa9sum\xc3\xa9",  // utf-8 bytes (non-ascii)
    "\xc3\xa9\xc3\xa9",          // only non-ascii bytes
    "5d 5d 5d",                  // duplicate tokens
    "zzzz qqqq",                 // no-match partner for most cases
};

TEST(KernelGoldenTest, JaroWinklerScratchMatchesStringForm) {
  SimilarityScratch scratch;
  for (const char* a : kEdgeCases) {
    for (const char* b : kEdgeCases) {
      EXPECT_EQ(JaroWinklerSimilarity(a, b),
                JaroWinklerSimilarity(a, b, scratch))
          << "a=\"" << a << "\" b=\"" << b << "\"";
    }
  }
}

TEST(KernelGoldenTest, JaroWinklerKnownValues) {
  SimilarityScratch scratch;
  EXPECT_EQ(JaroWinklerSimilarity("", "", scratch), 1.0);        // both empty
  EXPECT_EQ(JaroWinklerSimilarity("", "abc", scratch), 0.0);     // one empty
  EXPECT_EQ(JaroWinklerSimilarity("abc", "abc", scratch), 1.0);  // all-match
  EXPECT_EQ(JaroWinklerSimilarity("abc", "xyz", scratch), 0.0);  // no-match
}

TEST(KernelGoldenTest, EditDistanceScratchMatchesReference) {
  SimilarityScratch scratch;
  for (const char* a : kEdgeCases) {
    for (const char* b : kEdgeCases) {
      EXPECT_EQ(EditDistance(a, b), EditDistance(a, b, scratch))
          << "a=\"" << a << "\" b=\"" << b << "\"";
    }
  }
  EXPECT_EQ(EditDistance("", "", scratch), 0u);
  EXPECT_EQ(EditDistance("", "abc", scratch), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting", scratch), 3u);
}

TEST(KernelGoldenTest, SymmetricMongeElkanMatchesTwoPassReference) {
  SimilarityScratch scratch;
  for (const char* a : kEdgeCases) {
    for (const char* b : kEdgeCases) {
      EXPECT_EQ(ReferenceSymmetricMongeElkan(a, b),
                InternedSymmetricMongeElkan(a, b, scratch))
          << "a=\"" << a << "\" b=\"" << b << "\"";
    }
  }
}

TEST(KernelGoldenTest, JaccardIdsMatchesStringForm) {
  for (const char* a : kEdgeCases) {
    for (const char* b : kEdgeCases) {
      TokenInterner interner;
      std::vector<TokenId> ia = InternTokenSet(interner, TokenSet(a));
      std::vector<TokenId> ib = InternTokenSet(interner, TokenSet(b));
      EXPECT_EQ(JaccardSimilarity(TokenSet(a), TokenSet(b)),
                JaccardSimilarityIds(ia, ib))
          << "a=\"" << a << "\" b=\"" << b << "\"";
    }
  }
}

/// Random byte strings (including non-ascii and separators) with a fixed
/// seed; mt19937 output is standardized, so the fuzz corpus is stable.
std::vector<std::string> FuzzStrings(size_t count) {
  std::mt19937 rng(20130408);
  // A small alphabet keeps token collisions frequent (the interesting
  // regime for match/transposition counting and interning).
  const std::string alphabet = "abc12 -\xc3\xa9.";
  std::uniform_int_distribution<size_t> len_dist(0, 24);
  std::uniform_int_distribution<size_t> char_dist(0, alphabet.size() - 1);
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string s;
    size_t len = len_dist(rng);
    for (size_t c = 0; c < len; ++c) s.push_back(alphabet[char_dist(rng)]);
    out.push_back(std::move(s));
  }
  return out;
}

TEST(KernelFuzzTest, ScratchKernelsMatchStringKernels) {
  std::vector<std::string> corpus = FuzzStrings(120);
  SimilarityScratch scratch;
  for (size_t i = 0; i < corpus.size(); ++i) {
    const std::string& a = corpus[i];
    const std::string& b = corpus[(i * 7 + 13) % corpus.size()];
    EXPECT_EQ(JaroWinklerSimilarity(a, b),
              JaroWinklerSimilarity(a, b, scratch));
    EXPECT_EQ(EditDistance(a, b), EditDistance(a, b, scratch));
    EXPECT_EQ(ReferenceSymmetricMongeElkan(a, b),
              InternedSymmetricMongeElkan(a, b, scratch));
  }
}

// The one-pass Monge-Elkan serves ME(b,a) from the same Jaro-Winkler
// matrix as ME(a,b), which is only sound because greedy band matching
// produces the same match and transposition counts in either direction.
TEST(KernelFuzzTest, JaroWinklerIsExactlySymmetric) {
  std::vector<std::string> corpus = FuzzStrings(200);
  SimilarityScratch scratch;
  for (size_t i = 0; i + 1 < corpus.size(); ++i) {
    const std::string& a = corpus[i];
    const std::string& b = corpus[i + 1];
    EXPECT_EQ(JaroWinklerSimilarity(a, b, scratch),
              JaroWinklerSimilarity(b, a, scratch))
        << "a=\"" << a << "\" b=\"" << b << "\"";
  }
}

TEST(KernelFuzzTest, ReusedScratchLeaksNoState) {
  // Interleave wildly different sizes so stale flags/rows would surface.
  SimilarityScratch scratch;
  std::vector<std::string> corpus = FuzzStrings(60);
  for (const std::string& a : corpus) {
    for (const std::string& b : {std::string(), std::string("a"),
                                 std::string(200, 'q'), a}) {
      EXPECT_EQ(JaroWinklerSimilarity(a, b),
                JaroWinklerSimilarity(a, b, scratch));
      EXPECT_EQ(EditDistance(a, b), EditDistance(a, b, scratch));
    }
  }
}

TEST(TokenInternerTest, InternLookupRoundTrip) {
  TokenInterner interner;
  TokenId canon = interner.Intern("canon");
  TokenId eos = interner.Intern("eos");
  EXPECT_NE(canon, eos);
  EXPECT_EQ(interner.Intern("canon"), canon);  // idempotent
  EXPECT_EQ(interner.Lookup("canon"), canon);
  EXPECT_EQ(interner.Lookup("never-seen"), kInvalidToken);
  EXPECT_EQ(interner.token(canon), "canon");
  EXPECT_EQ(interner.token(eos), "eos");
  EXPECT_EQ(interner.size(), 2u);
}

TEST(TokenInternerTest, InternTokenSetSortsByIdAndKeepsSetSemantics) {
  TokenInterner interner;
  // Force ids out of lexicographic order: "zeta" gets a smaller id.
  interner.Intern("zeta");
  std::vector<TokenId> ids =
      InternTokenSet(interner, {"alpha", "beta", "zeta"});
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  // Same set interned twice yields the same ids.
  EXPECT_EQ(InternTokenSet(interner, {"alpha", "beta", "zeta"}), ids);
}

}  // namespace
}  // namespace bdi::text
