#include "bdi/linkage/active.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "bdi/linkage/linkage.h"
#include "bdi/synth/world.h"

namespace bdi::linkage {
namespace {

struct Fixture {
  synth::SyntheticWorld world;
  std::unique_ptr<Linker> linker;
  std::vector<CandidatePair> candidates;

  Fixture() {
    synth::WorldConfig config;
    config.seed = 501;
    config.num_entities = 150;
    config.num_sources = 10;
    world = synth::GenerateWorld(config);
    LinkerConfig linker_config;
    linker_config.scorer = ScorerKind::kRule;
    linker = std::make_unique<Linker>(&world.dataset, linker_config);
    linker->Run();
    candidates = linker->last_candidates();
  }

  LabelOracle Oracle() {
    return [this](const CandidatePair& pair) {
      return world.truth.entity_of_record[pair.a] ==
                     world.truth.entity_of_record[pair.b]
                 ? 1
                 : 0;
    };
  }

  double F1(const LearnedScorer& scorer) {
    std::vector<ScoredPair> matches;
    text::SimilarityScratch scratch;
    for (const CandidatePair& pair : candidates) {
      PairFeatures features =
          linker->extractor().Extract(pair.a, pair.b, scratch);
      if (scorer.Matches(features)) {
        matches.push_back(ScoredPair{pair, scorer.Score(features)});
      }
    }
    EntityClusters clusters =
        ClusterRecords(world.dataset.num_records(), matches,
                       ClusteringMethod::kConnectedComponents);
    return EvaluateClusters(clusters.label_of_record,
                            world.truth.entity_of_record)
        .f1;
  }
};

TEST(ActiveLearningTest, UsesExactlyTheBudget) {
  Fixture fx;
  ActiveLearningConfig config;
  config.seed_labels = 10;
  config.batch_size = 5;
  config.rounds = 4;
  ActiveLearningResult result =
      TrainActively(fx.linker->extractor(), fx.candidates, fx.Oracle(),
                    config);
  EXPECT_EQ(result.labels_used, 10u + 5u * 4u);
  EXPECT_EQ(result.queried.size(), result.labels_used);
  // No pair asked twice.
  std::set<std::pair<RecordIdx, RecordIdx>> seen;
  for (const CandidatePair& pair : result.queried) {
    EXPECT_TRUE(seen.insert({pair.a, pair.b}).second);
  }
}

TEST(ActiveLearningTest, LearnsAUsefulMatcher) {
  Fixture fx;
  ActiveLearningConfig config;
  config.seed_labels = 30;
  config.batch_size = 20;
  config.rounds = 6;
  ActiveLearningResult result =
      TrainActively(fx.linker->extractor(), fx.candidates, fx.Oracle(),
                    config);
  EXPECT_GE(fx.F1(result.scorer), 0.8);
}

TEST(ActiveLearningTest, BeatsOrMatchesRandomAtSameBudget) {
  Fixture fx;
  ActiveLearningConfig config;
  config.seed_labels = 20;
  config.batch_size = 10;
  config.rounds = 5;
  double active_f1 =
      fx.F1(TrainActively(fx.linker->extractor(), fx.candidates,
                          fx.Oracle(), config)
                .scorer);
  double random_f1 =
      fx.F1(TrainRandomly(fx.linker->extractor(), fx.candidates,
                          fx.Oracle(), config)
                .scorer);
  EXPECT_GE(active_f1, random_f1 - 0.03);
}

TEST(ActiveLearningTest, EmptyCandidates) {
  Fixture fx;
  ActiveLearningResult result = TrainActively(
      fx.linker->extractor(), {}, fx.Oracle(), ActiveLearningConfig{});
  EXPECT_EQ(result.labels_used, 0u);
}

TEST(ActiveLearningTest, BudgetLargerThanPool) {
  Fixture fx;
  std::vector<CandidatePair> few(fx.candidates.begin(),
                                 fx.candidates.begin() + 10);
  ActiveLearningConfig config;
  config.seed_labels = 6;
  config.batch_size = 10;
  config.rounds = 3;
  ActiveLearningResult result =
      TrainActively(fx.linker->extractor(), few, fx.Oracle(), config);
  EXPECT_EQ(result.labels_used, 10u);  // everything labeled, then stop
}

}  // namespace
}  // namespace bdi::linkage
