#include "bdi/core/diff.h"

#include <gtest/gtest.h>

#include "bdi/synth/world.h"

namespace bdi::core {
namespace {

TEST(DiffTest, IdenticalRunsProduceEntityOnlyNoise) {
  synth::WorldConfig config;
  config.seed = 1501;
  config.num_entities = 80;
  config.num_sources = 6;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  IntegrationReport a = Integrator().Run(world.dataset);
  IntegrationReport b = Integrator().Run(world.dataset);
  IntegrationDiff diff =
      DiffIntegrations(a, world.dataset, b, world.dataset);
  // Deterministic pipeline: the two runs are identical, so no changes.
  EXPECT_EQ(diff.changes.size(), 0u);
  EXPECT_GT(diff.entities_matched, 60u);
}

TEST(DiffTest, SnapshotChurnSurfacesChanges) {
  synth::WorldConfig config;
  config.seed = 1507;
  config.num_entities = 120;
  config.num_sources = 8;
  synth::WorldSimulator simulator(config);
  synth::SyntheticWorld before = simulator.Snapshot();
  synth::TemporalConfig temporal;
  temporal.value_change_rate = 0.25;
  temporal.entity_birth_rate = 0.05;
  temporal.record_death_rate = 0.10;
  simulator.Step(temporal);
  simulator.Step(temporal);
  synth::SyntheticWorld after = simulator.Snapshot();

  IntegrationReport old_report = Integrator().Run(before.dataset);
  IntegrationReport new_report = Integrator().Run(after.dataset);
  IntegrationDiff diff = DiffIntegrations(old_report, before.dataset,
                                          new_report, after.dataset);

  EXPECT_GT(diff.entities_matched, 60u);
  // Truth drift must surface as value changes...
  EXPECT_GT(diff.CountKind(IntegrationChange::Kind::kValueChanged), 10u);
  // ...and entity births as appearances.
  EXPECT_GT(diff.CountKind(IntegrationChange::Kind::kEntityAppeared), 0u);
  for (const IntegrationChange& change : diff.changes) {
    if (change.kind == IntegrationChange::Kind::kValueChanged) {
      EXPECT_NE(change.old_value, change.new_value);
      EXPECT_FALSE(change.attribute.empty());
    }
  }
}

TEST(DiffTest, DisappearedEntitiesReported) {
  // Build a corpus, then a second corpus missing the records of several
  // entities entirely.
  synth::WorldConfig config;
  config.seed = 1511;
  config.num_entities = 60;
  config.num_sources = 5;
  synth::SyntheticWorld world = synth::GenerateWorld(config);

  Dataset pruned;
  for (const SourceInfo& source : world.dataset.sources()) {
    pruned.AddSource(source.name);
  }
  for (const Record& record : world.dataset.records()) {
    if (world.truth.entity_of_record[record.idx] < 5) continue;  // drop
    std::vector<std::pair<std::string, std::string>> fields;
    for (const Field& field : record.fields) {
      fields.emplace_back(world.dataset.attr_name(field.attr), field.value);
    }
    pruned.AddRecord(record.source, fields);
  }

  IntegrationReport full_report = Integrator().Run(world.dataset);
  IntegrationReport pruned_report = Integrator().Run(pruned);
  IntegrationDiff diff = DiffIntegrations(full_report, world.dataset,
                                          pruned_report, pruned);
  EXPECT_GE(diff.CountKind(IntegrationChange::Kind::kEntityDisappeared),
            4u);
}

}  // namespace
}  // namespace bdi::core
