#include "bdi/linkage/blocking.h"

#include <gtest/gtest.h>

#include <memory>

#include "bdi/synth/world.h"

namespace bdi::linkage {
namespace {

/// Two sources, two entities ("Canon X100" / "Nikon Z50"); one record each.
Dataset TinyDataset() {
  Dataset dataset;
  SourceId s0 = dataset.AddSource("s0");
  SourceId s1 = dataset.AddSource("s1");
  dataset.AddRecord(s0, {{"name", "Canon X100 camera"}});   // r0
  dataset.AddRecord(s0, {{"name", "Nikon Z50 camera"}});    // r1
  dataset.AddRecord(s1, {{"name", "canon x100"}});          // r2
  dataset.AddRecord(s1, {{"name", "nikon z50 body"}});      // r3
  return dataset;
}

TEST(TokenBlockerTest, GroupsSharedTokens) {
  Dataset dataset = TinyDataset();
  TokenBlocker blocker(/*min_token_len=*/3, /*max_block_size=*/10);
  std::vector<Block> blocks = blocker.MakeBlocksAll(dataset, nullptr);
  bool found_canon = false;
  for (const Block& block : blocks) {
    if (block.key == "canon") {
      found_canon = true;
      EXPECT_EQ(block.records, (std::vector<RecordIdx>{0, 2}));
    }
  }
  EXPECT_TRUE(found_canon);
}

TEST(TokenBlockerTest, DropsOversizedBlocks) {
  Dataset dataset = TinyDataset();
  // A third record containing "camera" pushes that token over the cap.
  dataset.AddRecord(1, {{"name", "generic camera"}});
  TokenBlocker blocker(/*min_token_len=*/3, /*max_block_size=*/2);
  std::vector<Block> blocks = blocker.MakeBlocksAll(dataset, nullptr);
  bool camera_found = false;
  for (const Block& block : blocks) {
    if (block.key == "camera") camera_found = true;
    EXPECT_LE(block.records.size(), 2u);
  }
  EXPECT_FALSE(camera_found) << "stop-word-like token must be dropped";
}

TEST(TokenBlockerTest, MinTokenLengthFilters) {
  Dataset dataset = TinyDataset();
  TokenBlocker blocker(/*min_token_len=*/4, /*max_block_size=*/10);
  for (const Block& block : blocker.MakeBlocksAll(dataset, nullptr)) {
    EXPECT_GE(block.key.size(), 4u);
  }
}

TEST(IdentifierBlockerTest, BlocksOnIdTokens) {
  Dataset dataset;
  SourceId s0 = dataset.AddSource("s0");
  SourceId s1 = dataset.AddSource("s1");
  dataset.AddRecord(s0, {{"sku", "ab12345"}});
  dataset.AddRecord(s1, {{"mpn", "AB12345"}});
  dataset.AddRecord(s1, {{"mpn", "zz99999"}});
  IdentifierBlocker blocker(/*min_len=*/5);
  std::vector<Block> blocks = blocker.MakeBlocksAll(dataset, nullptr);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].key, "ab12345");
  EXPECT_EQ(blocks[0].records, (std::vector<RecordIdx>{0, 1}));
}

TEST(SortedNeighborhoodTest, WindowsCoverNeighbors) {
  Dataset dataset = TinyDataset();
  SortedNeighborhoodBlocker blocker(/*window_size=*/3);
  std::vector<Block> blocks = blocker.MakeBlocksAll(dataset, nullptr);
  // Records sorted by token-key; canon records are adjacent.
  std::vector<CandidatePair> pairs = BlocksToPairs(dataset, blocks);
  bool canon_pair = false;
  for (const CandidatePair& pair : pairs) {
    if (pair.a == 0 && pair.b == 2) canon_pair = true;
  }
  EXPECT_TRUE(canon_pair);
}

TEST(CanopyBlockerTest, OverlappingNamesShareCanopy) {
  Dataset dataset = TinyDataset();
  CanopyBlocker blocker(/*t_loose=*/0.4);
  std::vector<Block> blocks = blocker.MakeBlocksAll(dataset, nullptr);
  std::vector<CandidatePair> pairs = BlocksToPairs(dataset, blocks);
  bool canon_pair = false, cross_entity = false;
  for (const CandidatePair& pair : pairs) {
    if (pair.a == 0 && pair.b == 2) canon_pair = true;
    if (pair.a == 0 && pair.b == 3) cross_entity = true;
  }
  EXPECT_TRUE(canon_pair);
  EXPECT_FALSE(cross_entity);
}

TEST(BlocksToPairsTest, ExcludesSameSourceByDefault) {
  Dataset dataset = TinyDataset();
  std::vector<Block> blocks = {Block{"k", {0, 1, 2}}};
  std::vector<CandidatePair> pairs = BlocksToPairs(dataset, blocks, false);
  // (0,1) same source excluded; (0,2) and (1,2) kept.
  EXPECT_EQ(pairs.size(), 2u);
  std::vector<CandidatePair> all_pairs =
      BlocksToPairs(dataset, blocks, true);
  EXPECT_EQ(all_pairs.size(), 3u);
}

TEST(BlocksToPairsTest, DeduplicatesAcrossBlocks) {
  Dataset dataset = TinyDataset();
  std::vector<Block> blocks = {Block{"k1", {0, 2}}, Block{"k2", {0, 2}}};
  EXPECT_EQ(BlocksToPairs(dataset, blocks).size(), 1u);
}

TEST(EvaluateBlockingTest, PerfectBlocking) {
  Dataset dataset = TinyDataset();
  std::vector<EntityId> truth = {0, 1, 0, 1};
  std::vector<CandidatePair> candidates = {{0, 2}, {1, 3}};
  BlockingQuality quality = EvaluateBlocking(dataset, candidates, truth);
  EXPECT_DOUBLE_EQ(quality.pairs_completeness, 1.0);
  EXPECT_EQ(quality.num_true_pairs, 2u);
  // 4 cross-source pairs possible, 2 candidates -> rr = 0.5.
  EXPECT_DOUBLE_EQ(quality.reduction_ratio, 0.5);
}

TEST(EvaluateBlockingTest, MissedPairsLowerCompleteness) {
  Dataset dataset = TinyDataset();
  std::vector<EntityId> truth = {0, 1, 0, 1};
  std::vector<CandidatePair> candidates = {{0, 2}};
  BlockingQuality quality = EvaluateBlocking(dataset, candidates, truth);
  EXPECT_DOUBLE_EQ(quality.pairs_completeness, 0.5);
}

// Parameterized sweep: every blocker achieves decent pairs completeness on
// a generated world while cutting the comparison space.
class BlockerSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(BlockerSweepTest, CompletenessAndReductionFloors) {
  synth::WorldConfig config;
  config.seed = 23;
  config.num_entities = 150;
  config.num_sources = 8;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  schema::AttributeStatistics stats =
      schema::AttributeStatistics::Compute(world.dataset);
  AttrRoles roles = AttrRoles::Detect(stats);

  std::unique_ptr<Blocker> blocker;
  switch (GetParam()) {
    case 0:
      blocker = std::make_unique<TokenBlocker>();
      break;
    case 1:
      blocker = std::make_unique<IdentifierBlocker>();
      break;
    case 2:
      blocker = std::make_unique<SortedNeighborhoodBlocker>();
      break;
    default:
      blocker = std::make_unique<CanopyBlocker>();
      break;
  }
  std::vector<Block> blocks = blocker->MakeBlocksAll(world.dataset, &roles);
  std::vector<CandidatePair> pairs = BlocksToPairs(world.dataset, blocks);
  BlockingQuality quality =
      EvaluateBlocking(world.dataset, pairs, world.truth.entity_of_record);
  EXPECT_GE(quality.pairs_completeness, 0.55) << blocker->name();
  EXPECT_GE(quality.reduction_ratio, 0.5) << blocker->name();
}

INSTANTIATE_TEST_SUITE_P(AllBlockers, BlockerSweepTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(BlockerTest, EmptyDatasetYieldsNoBlocks) {
  Dataset dataset;
  TokenBlocker blocker;
  EXPECT_TRUE(blocker.MakeBlocksAll(dataset, nullptr).empty());
}

}  // namespace
}  // namespace bdi::linkage
