// Unit coverage for the `.bds` columnar storage layer: write/read round
// trips (including the raw-value path and multi-group files), the
// partial-read guarantee of ReadHead (pinned via bdi.storage.* counters —
// head-style paths must never decode the whole file), column projection,
// and the checksum fast path `bdi validate` runs on binary files.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bdi/common/metrics.h"
#include "bdi/model/dataset.h"
#include "bdi/model/dataset_io.h"
#include "bdi/storage/bds_reader.h"
#include "bdi/storage/bds_writer.h"
#include "bdi/storage/crc32c.h"
#include "bdi/storage/dataset_reader.h"
#include "bdi/storage/format.h"

namespace bdi::storage {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A corpus with repeated sources/attrs (exercises RLE and the dictionary),
// hostile value bytes, and one value long enough to take the raw path
// under the shrunken raw_value_min_len the tests use.
Dataset MakeDataset() {
  Dataset dataset;
  SourceId a = dataset.AddSource("alpha.example.com");
  SourceId b = dataset.AddSource("beta.example.com");
  for (int r = 0; r < 37; ++r) {
    std::vector<std::pair<std::string, std::string>> fields;
    fields.emplace_back("name", "Widget #" + std::to_string(r % 9));
    fields.emplace_back("price", std::to_string(r) + ".99");
    if (r % 3 == 0) {
      fields.emplace_back("notes", std::string("comma, \"quote\"\nnewline"));
    }
    if (r == 5) {
      fields.emplace_back("blob",
                          std::string(600, 'x') + std::string("\0y", 2));
    }
    dataset.AddRecord(r % 2 == 0 ? a : b, fields);
  }
  return dataset;
}

void ExpectDatasetsEqual(const Dataset& want, const Dataset& got) {
  ASSERT_EQ(want.num_sources(), got.num_sources());
  for (size_t s = 0; s < want.num_sources(); ++s) {
    EXPECT_EQ(want.source(static_cast<SourceId>(s)).name,
              got.source(static_cast<SourceId>(s)).name);
    EXPECT_EQ(want.source(static_cast<SourceId>(s)).records,
              got.source(static_cast<SourceId>(s)).records);
  }
  ASSERT_EQ(want.num_attrs(), got.num_attrs());
  for (size_t a = 0; a < want.num_attrs(); ++a) {
    EXPECT_EQ(want.attr_name(static_cast<AttrId>(a)),
              got.attr_name(static_cast<AttrId>(a)));
  }
  ASSERT_EQ(want.num_records(), got.num_records());
  for (size_t r = 0; r < want.num_records(); ++r) {
    const Record& x = want.record(static_cast<RecordIdx>(r));
    const Record& y = got.record(static_cast<RecordIdx>(r));
    EXPECT_EQ(x.source, y.source) << "record " << r;
    ASSERT_EQ(x.fields.size(), y.fields.size()) << "record " << r;
    for (size_t f = 0; f < x.fields.size(); ++f) {
      EXPECT_EQ(x.fields[f].attr, y.fields[f].attr)
          << "record " << r << " field " << f;
      EXPECT_EQ(x.fields[f].value, y.fields[f].value)
          << "record " << r << " field " << f;
    }
  }
}

BdsWriterOptions SmallGroups() {
  BdsWriterOptions options;
  options.records_per_group = 8;  // 37 records -> 5 groups
  options.raw_value_min_len = 256;
  return options;
}

TEST(BdsStorageTest, WriteReadRoundTripMultiGroup) {
  Dataset dataset = MakeDataset();
  std::string path = TempPath("roundtrip.bds");
  ASSERT_TRUE(WriteDatasetBds(dataset, path, SmallGroups()).ok());

  Result<BdsReader> reader = BdsReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->format_version(), kBdsVersion);
  EXPECT_EQ(reader->num_records(), dataset.num_records());
  EXPECT_EQ(reader->row_groups().size(), 5u);

  Result<Dataset> loaded = reader->ReadAll();
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectDatasetsEqual(dataset, loaded.value());
  std::remove(path.c_str());
}

TEST(BdsStorageTest, ConvertCsvMatchesCsvReaderIdForId) {
  Dataset dataset = MakeDataset();
  std::string csv = TempPath("convert_in.csv");
  std::string bds = TempPath("convert_out.bds");
  ASSERT_TRUE(WriteDatasetCsv(dataset, csv).ok());

  Result<ConvertStats> stats = ConvertCsvToBds(csv, bds, SmallGroups());
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->records, dataset.num_records());
  EXPECT_EQ(stats->row_groups, 5u);
  EXPECT_GT(stats->csv_bytes, 0u);
  EXPECT_EQ(stats->bds_bytes, ReadFileBytes(bds).size());

  Result<Dataset> from_csv = ReadDatasetCsv(csv);
  ASSERT_TRUE(from_csv.ok()) << from_csv.status();
  Result<BdsReader> reader = BdsReader::Open(bds);
  ASSERT_TRUE(reader.ok()) << reader.status();
  Result<Dataset> from_bds = reader->ReadAll();
  ASSERT_TRUE(from_bds.ok()) << from_bds.status();
  ExpectDatasetsEqual(from_csv.value(), from_bds.value());
  std::remove(csv.c_str());
  std::remove(bds.c_str());
}

TEST(BdsStorageTest, ReadHeadDecodesOnlyCoveringRowGroups) {
  Dataset dataset = MakeDataset();
  std::string path = TempPath("head.bds");
  ASSERT_TRUE(WriteDatasetBds(dataset, path, SmallGroups()).ok());

  metrics::SetEnabled(true);
  metrics::Registry::Get().Reset();
  metrics::Counter* groups_read =
      metrics::Registry::Get().RegisterCounter("bdi.storage.row_groups.read");

  Result<BdsReader> reader = BdsReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  Result<Dataset> head = reader->ReadHead(3);
  ASSERT_TRUE(head.ok()) << head.status();
  EXPECT_EQ(head->num_records(), 3u);
  // 3 records live entirely in the first 8-record group: exactly one group
  // may be decoded. This is the `bdi head` never-reads-the-whole-file
  // guarantee.
  EXPECT_EQ(groups_read->value(), 1u);

  // Asking past one group touches exactly the covering prefix of groups.
  Result<Dataset> head2 = reader->ReadHead(17);
  ASSERT_TRUE(head2.ok()) << head2.status();
  EXPECT_EQ(head2->num_records(), 17u);
  EXPECT_EQ(groups_read->value(), 1u + 3u);

  // Head records must be the exact prefix of the full dataset.
  for (size_t r = 0; r < head->num_records(); ++r) {
    const Record& x = dataset.record(static_cast<RecordIdx>(r));
    const Record& y = head->record(static_cast<RecordIdx>(r));
    ASSERT_EQ(x.fields.size(), y.fields.size());
    for (size_t f = 0; f < x.fields.size(); ++f) {
      EXPECT_EQ(x.fields[f].value, y.fields[f].value);
    }
  }
  metrics::SetEnabled(false);
  std::remove(path.c_str());
}

TEST(BdsStorageTest, ReadProjectedKeepsIdsAndSkipsColumns) {
  Dataset dataset = MakeDataset();
  std::string path = TempPath("projected.bds");
  ASSERT_TRUE(WriteDatasetBds(dataset, path, SmallGroups()).ok());

  metrics::SetEnabled(true);
  metrics::Registry::Get().Reset();
  metrics::Counter* skipped =
      metrics::Registry::Get().RegisterCounter("bdi.storage.columns.skipped");

  Result<BdsReader> reader = BdsReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  Result<Dataset> projected = reader->ReadProjected({"name"});
  ASSERT_TRUE(projected.ok()) << projected.status();
  EXPECT_GT(skipped->value(), 0u);
  metrics::SetEnabled(false);

  // Ids are stable: same sources, same attribute table as the full read.
  ASSERT_EQ(projected->num_sources(), dataset.num_sources());
  ASSERT_EQ(projected->num_attrs(), dataset.num_attrs());
  ASSERT_EQ(projected->num_records(), dataset.num_records());
  std::optional<AttrId> name_attr = dataset.FindAttr("name");
  ASSERT_TRUE(name_attr.has_value());
  for (size_t r = 0; r < dataset.num_records(); ++r) {
    const Record& full = dataset.record(static_cast<RecordIdx>(r));
    const Record& slim = projected->record(static_cast<RecordIdx>(r));
    EXPECT_EQ(full.source, slim.source);
    size_t want = 0;
    for (const Field& field : full.fields) {
      if (field.attr == *name_attr) {
        ASSERT_LT(want, slim.fields.size());
        EXPECT_EQ(slim.fields[want].attr, field.attr);
        EXPECT_EQ(slim.fields[want].value, field.value);
        ++want;
      }
    }
    EXPECT_EQ(slim.fields.size(), want) << "record " << r;
  }
  std::remove(path.c_str());
}

TEST(BdsStorageTest, VerifyChecksumsCountsFastPathGroups) {
  Dataset dataset = MakeDataset();
  std::string path = TempPath("verify.bds");
  ASSERT_TRUE(WriteDatasetBds(dataset, path, SmallGroups()).ok());

  metrics::SetEnabled(true);
  metrics::Registry::Get().Reset();
  metrics::Counter* fast_path = metrics::Registry::Get().RegisterCounter(
      "bdi.storage.checksum.fast_path");

  Result<BdsReader> reader = BdsReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  ValidationReport report = reader->VerifyChecksums();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.records, dataset.num_records());
  EXPECT_EQ(fast_path->value(), reader->row_groups().size());
  metrics::SetEnabled(false);
  std::remove(path.c_str());
}

TEST(BdsStorageTest, FlippedRowGroupByteIsCaughtByChecksumAndDecode) {
  Dataset dataset = MakeDataset();
  std::string path = TempPath("corrupt.bds");
  ASSERT_TRUE(WriteDatasetBds(dataset, path, SmallGroups()).ok());
  std::string bytes = ReadFileBytes(path);

  Result<BdsReader> clean = BdsReader::Open(path);
  ASSERT_TRUE(clean.ok());
  const BdsRowGroupMeta& target = clean->row_groups()[2];
  // Flip a byte in the middle of the third group's body.
  bytes[target.offset + target.bytes / 2] ^= 0x40;
  WriteFileBytes(path, bytes);

  Result<BdsReader> reader = BdsReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();  // footer still intact
  ValidationReport report = reader->VerifyChecksums();
  EXPECT_FALSE(report.ok());
  Result<Dataset> loaded = reader->ReadAll();
  EXPECT_FALSE(loaded.ok());
  EXPECT_FALSE(loaded.status().message().empty());
  // validate's collect-everything entry point agrees.
  EXPECT_FALSE(ValidateBdsFile(path).ok());
  std::remove(path.c_str());
}

TEST(BdsStorageTest, VersionSkewIsRejectedWithAClearMessage) {
  Dataset dataset = MakeDataset();
  std::string path = TempPath("version.bds");
  ASSERT_TRUE(WriteDatasetBds(dataset, path, SmallGroups()).ok());
  std::string bytes = ReadFileBytes(path);

  // Patch the footer's version field to 2 and re-seal the footer CRC so
  // only the version check can object.
  ASSERT_GE(bytes.size(), kTailBytes);
  size_t tail = bytes.size() - kTailBytes;
  uint64_t footer_bytes = 0;
  std::memcpy(&footer_bytes, bytes.data() + tail, 8);
  size_t footer_off = tail - footer_bytes;
  uint32_t version = 2;
  std::memcpy(&bytes[footer_off + 4], &version, 4);
  uint32_t crc = Crc32c(bytes.data() + footer_off, footer_bytes);
  std::memcpy(&bytes[tail + 8], &crc, 4);
  WriteFileBytes(path, bytes);

  Result<BdsReader> reader = BdsReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(reader.status().message().find("version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(BdsStorageTest, EmptyDatasetRoundTrips) {
  Dataset dataset;
  std::string path = TempPath("empty.bds");
  ASSERT_TRUE(WriteDatasetBds(dataset, path).ok());
  Result<BdsReader> reader = BdsReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->num_records(), 0u);
  Result<Dataset> loaded = reader->ReadAll();
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_records(), 0u);
  EXPECT_TRUE(reader->VerifyChecksums().ok());
  std::remove(path.c_str());
}

TEST(DatasetReaderTest, SniffsBothFormatsAndReadsTransparently) {
  Dataset dataset = MakeDataset();
  std::string csv = TempPath("sniff.csv");
  std::string bds = TempPath("sniff.bds");
  ASSERT_TRUE(WriteDatasetCsv(dataset, csv).ok());
  ASSERT_TRUE(WriteDatasetBds(dataset, bds).ok());

  Result<DatasetFormat> f1 = SniffDatasetFormat(csv);
  Result<DatasetFormat> f2 = SniffDatasetFormat(bds);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(f1.value(), DatasetFormat::kCsv);
  EXPECT_EQ(f2.value(), DatasetFormat::kBds);

  Result<Dataset> via_csv = ReadDatasetAuto(csv);
  Result<Dataset> via_bds = ReadDatasetAuto(bds);
  ASSERT_TRUE(via_csv.ok()) << via_csv.status();
  ASSERT_TRUE(via_bds.ok()) << via_bds.status();
  ExpectDatasetsEqual(via_csv.value(), via_bds.value());
  std::remove(csv.c_str());
  std::remove(bds.c_str());
}

TEST(DatasetReaderTest, ReadHeadIsTheSamePrefixInBothFormats) {
  Dataset dataset = MakeDataset();
  std::string csv = TempPath("headboth.csv");
  std::string bds = TempPath("headboth.bds");
  ASSERT_TRUE(WriteDatasetCsv(dataset, csv).ok());
  ASSERT_TRUE(WriteDatasetBds(dataset, bds, SmallGroups()).ok());
  for (size_t n : {0u, 1u, 9u, 37u, 500u}) {
    Result<DatasetReader> r1 = DatasetReader::Open(csv);
    Result<DatasetReader> r2 = DatasetReader::Open(bds);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    Result<Dataset> h1 = r1->ReadHead(n);
    Result<Dataset> h2 = r2->ReadHead(n);
    ASSERT_TRUE(h1.ok()) << h1.status();
    ASSERT_TRUE(h2.ok()) << h2.status();
    EXPECT_EQ(h1->num_records(), std::min<size_t>(n, 37u)) << n;
    ExpectDatasetsEqual(h1.value(), h2.value());
  }
  std::remove(csv.c_str());
  std::remove(bds.c_str());
}

}  // namespace
}  // namespace bdi::storage
