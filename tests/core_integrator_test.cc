#include "bdi/core/integrator.h"

#include <gtest/gtest.h>

#include "bdi/fusion/evaluation.h"
#include "bdi/synth/world.h"

namespace bdi::core {
namespace {

synth::SyntheticWorld MakeWorld(uint64_t seed = 103,
                                const char* category = "camera") {
  synth::WorldConfig config;
  config.seed = seed;
  config.category = category;
  config.num_entities = 150;
  config.num_sources = 10;
  config.source_accuracy_min = 0.75;
  config.source_accuracy_max = 0.95;
  return synth::GenerateWorld(config);
}

TEST(IntegratorTest, EndToEndQualityFloors) {
  synth::SyntheticWorld world = MakeWorld();
  Integrator integrator;
  IntegrationReport report = integrator.Run(world.dataset);

  schema::SchemaQuality schema_quality = schema::EvaluateSchema(
      report.schema, world.truth.canonical_of_source_attr);
  EXPECT_GE(schema_quality.precision, 0.8);
  EXPECT_GE(schema_quality.recall, 0.55);

  linkage::LinkageQuality linkage_quality = linkage::EvaluateClusters(
      report.linkage.clusters.label_of_record, world.truth.entity_of_record);
  EXPECT_GE(linkage_quality.f1, 0.85);

  fusion::PipelineMappings mappings = fusion::MapPipelineToTruth(
      report.linkage.clusters, report.schema, world.truth);
  fusion::FusionQuality fusion_quality = fusion::EvaluateFusionMapped(
      report.claims, report.fusion, mappings, world.truth);
  EXPECT_GE(fusion_quality.precision, 0.7);
  EXPECT_GT(fusion_quality.evaluated_items, 100u);
}

TEST(IntegratorTest, ReportShapesConsistent) {
  synth::SyntheticWorld world = MakeWorld(107);
  IntegrationReport report = Integrator().Run(world.dataset);
  EXPECT_EQ(report.linkage.clusters.label_of_record.size(),
            world.dataset.num_records());
  EXPECT_EQ(report.fusion.chosen.size(), report.claims.items().size());
  EXPECT_EQ(report.fusion.source_accuracy.size(),
            world.dataset.num_sources());
  EXPECT_FALSE(report.Summary().empty());
  EXPECT_GT(report.schema_seconds, 0.0);
}

// Every fusion kind runs through the pipeline.
class IntegratorFusionKindTest
    : public ::testing::TestWithParam<FusionKind> {};

TEST_P(IntegratorFusionKindTest, RunsAndResolves) {
  synth::SyntheticWorld world = MakeWorld(109);
  IntegratorConfig config;
  config.fusion = GetParam();
  IntegrationReport report = Integrator(config).Run(world.dataset);
  EXPECT_FALSE(report.claims.items().empty());
  size_t resolved = 0;
  for (const std::string& value : report.fusion.chosen) {
    if (!value.empty()) ++resolved;
  }
  EXPECT_GT(resolved, report.claims.items().size() / 2);
}

INSTANTIATE_TEST_SUITE_P(Kinds, IntegratorFusionKindTest,
                         ::testing::Values(FusionKind::kVote,
                                           FusionKind::kAccu,
                                           FusionKind::kAccuSim,
                                           FusionKind::kTruthFinder,
                                           FusionKind::kAccuCopy));

TEST(IntegratorTest, ProbabilisticSchemaPathWorks) {
  synth::SyntheticWorld world = MakeWorld(113);
  IntegratorConfig config;
  config.probabilistic_schema = true;
  IntegrationReport report = Integrator(config).Run(world.dataset);
  schema::SchemaQuality quality = schema::EvaluateSchema(
      report.schema, world.truth.canonical_of_source_attr);
  EXPECT_GE(quality.precision, 0.6);
  EXPECT_GT(report.claims.items().size(), 0u);
}

TEST(IntegratorTest, MaterializeEntitiesLargestFirst) {
  synth::SyntheticWorld world = MakeWorld(127);
  IntegrationReport report = Integrator().Run(world.dataset);
  std::vector<IntegratedEntity> entities =
      MaterializeEntities(report, world.dataset, 10);
  ASSERT_LE(entities.size(), 10u);
  ASSERT_FALSE(entities.empty());
  for (size_t i = 1; i < entities.size(); ++i) {
    EXPECT_GE(entities[i - 1].num_records, entities[i].num_records);
  }
  EXPECT_FALSE(entities[0].values.empty());
}

TEST(IntegratorTest, WorksAcrossCategories) {
  for (const char* category : {"headphone", "tv", "book"}) {
    synth::SyntheticWorld world = MakeWorld(131, category);
    IntegrationReport report = Integrator().Run(world.dataset);
    linkage::LinkageQuality quality = linkage::EvaluateClusters(
        report.linkage.clusters.label_of_record,
        world.truth.entity_of_record);
    EXPECT_GE(quality.f1, 0.8) << category;
  }
}

// Robustness: the default pipeline clears quality floors across seeds.
class IntegratorSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntegratorSeedSweep, QualityFloorsHold) {
  synth::SyntheticWorld world = MakeWorld(GetParam());
  IntegrationReport report = Integrator().Run(world.dataset);
  linkage::LinkageQuality linkage_quality = linkage::EvaluateClusters(
      report.linkage.clusters.label_of_record, world.truth.entity_of_record);
  EXPECT_GE(linkage_quality.f1, 0.85) << "seed " << GetParam();
  fusion::PipelineMappings mappings = fusion::MapPipelineToTruth(
      report.linkage.clusters, report.schema, world.truth);
  fusion::FusionQuality fusion_quality = fusion::EvaluateFusionMapped(
      report.claims, report.fusion, mappings, world.truth);
  EXPECT_GE(fusion_quality.precision, 0.7) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegratorSeedSweep,
                         ::testing::Values(11u, 222u, 3333u, 44444u,
                                           555555u));

TEST(IntegratorTest, VelocityStaleVsRefreshed) {
  // Integrating a stale snapshot and evaluating against drifted truth must
  // be worse than re-integrating the fresh snapshot (the velocity story).
  synth::WorldConfig config;
  config.seed = 137;
  config.num_entities = 120;
  config.num_sources = 8;
  synth::WorldSimulator simulator(config);
  synth::SyntheticWorld old_world = simulator.Snapshot();
  IntegrationReport old_report = Integrator().Run(old_world.dataset);
  fusion::PipelineMappings old_mappings = fusion::MapPipelineToTruth(
      old_report.linkage.clusters, old_report.schema, old_world.truth);

  synth::TemporalConfig temporal;
  temporal.value_change_rate = 0.3;
  for (int step = 0; step < 3; ++step) simulator.Step(temporal);
  synth::SyntheticWorld new_world = simulator.Snapshot();

  // Stale: old fused values scored against the new truth.
  fusion::FusionQuality stale = fusion::EvaluateFusionMapped(
      old_report.claims, old_report.fusion, old_mappings, new_world.truth);
  // Fresh: re-run on the new snapshot.
  IntegrationReport new_report = Integrator().Run(new_world.dataset);
  fusion::PipelineMappings new_mappings = fusion::MapPipelineToTruth(
      new_report.linkage.clusters, new_report.schema, new_world.truth);
  fusion::FusionQuality fresh = fusion::EvaluateFusionMapped(
      new_report.claims, new_report.fusion, new_mappings, new_world.truth);
  EXPECT_GT(fresh.precision, stale.precision);
}

}  // namespace
}  // namespace bdi::core
