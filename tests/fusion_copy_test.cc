#include <gtest/gtest.h>

#include <set>
#include "bdi/fusion/accu.h"
#include "bdi/fusion/accu_copy.h"
#include "bdi/fusion/copy_detection.h"
#include "bdi/fusion/evaluation.h"
#include "bdi/synth/world.h"

namespace bdi::fusion {
namespace {

synth::SyntheticWorld CopierWorld(uint64_t seed, int copiers,
                                  double copy_rate = 0.85) {
  synth::WorldConfig config;
  config.seed = seed;
  config.num_entities = 200;
  config.num_sources = 12;
  config.num_copiers = copiers;
  config.copy_rate = copy_rate;
  config.copier_accuracy_min = 0.5;
  config.copier_accuracy_max = 0.7;
  config.source_accuracy_min = 0.75;
  config.source_accuracy_max = 0.95;
  return synth::GenerateWorld(config);
}

TEST(CopyDetectionTest, DetectsPlantedCopiers) {
  synth::SyntheticWorld world = CopierWorld(73, 4);
  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());
  // Give the detector the (Accu-estimated) accuracies and truth estimates.
  FusionResult accu = AccuFusion().Resolve(db);
  std::vector<SourceDependence> dependencies =
      DetectCopying(db, accu.chosen, accu.source_accuracy, {});
  CopyDetectionQuality quality =
      EvaluateCopyDetection(dependencies, world.truth, 0.5);
  EXPECT_GE(quality.recall, 0.7);
  EXPECT_GE(quality.precision, 0.6);
}

TEST(CopyDetectionTest, NoCopiersMeansFewDetections) {
  synth::SyntheticWorld world = CopierWorld(79, 0);
  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());
  FusionResult accu = AccuFusion().Resolve(db);
  std::vector<SourceDependence> dependencies =
      DetectCopying(db, accu.chosen, accu.source_accuracy, {});
  size_t detected = 0;
  for (const SourceDependence& d : dependencies) {
    if (d.probability >= 0.5) ++detected;
  }
  // 12 sources -> 66 pairs; independent sources must rarely look dependent.
  EXPECT_LE(detected, 4u);
}

TEST(CopyDetectionTest, SharedFalseValuesAreTheSignal) {
  // Hand-built: sources 0/1 share *false* values on many items (copying);
  // sources 0/2 share only true values (independent but accurate).
  ClaimDb db;
  db.set_num_sources(3);
  std::vector<std::string> truth_estimate;
  for (int i = 0; i < 40; ++i) {
    DataItem item;
    item.entity = i;
    item.attr = 2;
    std::string truth = "t" + std::to_string(i);
    std::string wrong = "w" + std::to_string(i);
    if (i % 2 == 0) {
      item.claims = {{0, wrong}, {1, wrong}, {2, truth}};
    } else {
      item.claims = {{0, truth}, {1, truth}, {2, truth}};
    }
    truth_estimate.push_back(truth);
    db.AddItem(item);
  }
  std::vector<double> accuracy = {0.5, 0.5, 0.99};
  std::vector<SourceDependence> dependencies =
      DetectCopying(db, truth_estimate, accuracy, {});
  double p01 = 0.0, p02 = 0.0;
  for (const SourceDependence& d : dependencies) {
    if (d.a == 0 && d.b == 1) p01 = d.probability;
    if (d.a == 0 && d.b == 2) p02 = d.probability;
  }
  EXPECT_GT(p01, 0.9);
  EXPECT_LT(p02, 0.5);
}

TEST(CopyDetectionTest, MinCommonItemsRespected) {
  ClaimDb db;
  db.set_num_sources(2);
  DataItem item;
  item.claims = {{0, "x"}, {1, "x"}};
  db.AddItem(item);
  CopyDetectionConfig config;
  config.min_common_items = 5;
  std::vector<SourceDependence> dependencies =
      DetectCopying(db, {"x"}, {0.8, 0.8}, config);
  EXPECT_TRUE(dependencies.empty());
}

TEST(CopyDetectionTest, DirectionPointsAtCopier) {
  synth::SyntheticWorld world = CopierWorld(83, 3, 0.9);
  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());
  FusionResult accu = AccuFusion().Resolve(db);
  std::vector<SourceDependence> dependencies =
      DetectCopying(db, accu.chosen, accu.source_accuracy, {});
  std::set<SourceId> true_copiers;
  for (const CopyEdge& edge : world.truth.copy_edges) {
    true_copiers.insert(edge.copier);
  }
  size_t directed = 0, directed_correct = 0;
  for (const SourceDependence& d : dependencies) {
    if (d.probability < 0.5 || d.likely_copier == kInvalidSource) continue;
    std::pair<SourceId, SourceId> pair{std::min(d.a, d.b),
                                       std::max(d.a, d.b)};
    bool is_true_edge = false;
    for (const CopyEdge& edge : world.truth.copy_edges) {
      if (std::min(edge.copier, edge.original) == pair.first &&
          std::max(edge.copier, edge.original) == pair.second) {
        is_true_edge = true;
      }
    }
    if (!is_true_edge) continue;
    ++directed;
    if (true_copiers.count(d.likely_copier) > 0) ++directed_correct;
  }
  if (directed > 0) {
    EXPECT_GE(static_cast<double>(directed_correct) /
                  static_cast<double>(directed),
              0.6);
  }
}

TEST(IndependenceMatrixTest, SymmetricWithUnitDiagonal) {
  std::vector<SourceDependence> dependencies(1);
  dependencies[0].a = 0;
  dependencies[0].b = 2;
  dependencies[0].probability = 0.8;
  auto matrix = IndependenceMatrix(3, dependencies);
  EXPECT_DOUBLE_EQ(matrix[0][0], 1.0);
  EXPECT_NEAR(matrix[0][2], 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(matrix[0][2], matrix[2][0]);
  EXPECT_DOUBLE_EQ(matrix[0][1], 1.0);
}

TEST(AccuCopyTest, BeatsAccuWithCopiers) {
  // The headline VLDB'09 result: with low-accuracy copiers echoing each
  // other, copy-aware fusion is at least as good as copy-blind fusion, and
  // the copy-blind estimate of copier accuracy is inflated.
  synth::SyntheticWorld world = CopierWorld(89, 5, 0.9);
  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());
  FusionQuality accu_quality =
      EvaluateFusion(db, AccuFusion().Resolve(db), world.truth);
  AccuCopyFusion accucopy;
  FusionResult accucopy_result = accucopy.Resolve(db);
  FusionQuality accucopy_quality =
      EvaluateFusion(db, accucopy_result, world.truth);
  EXPECT_GE(accucopy_quality.precision, accu_quality.precision - 0.01);
  // And the copy edges must largely be found.
  CopyDetectionQuality detection = EvaluateCopyDetection(
      accucopy.last_dependencies(), world.truth, 0.5);
  EXPECT_GE(detection.recall, 0.6);
}

TEST(AccuCopyTest, NoCopiersNoHarm) {
  synth::SyntheticWorld world = CopierWorld(97, 0);
  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());
  FusionQuality accu_quality =
      EvaluateFusion(db, AccuFusion().Resolve(db), world.truth);
  FusionQuality accucopy_quality =
      EvaluateFusion(db, AccuCopyFusion().Resolve(db), world.truth);
  EXPECT_GE(accucopy_quality.precision, accu_quality.precision - 0.03);
}

TEST(EvaluationTest, ValuesMatchNumericTolerance) {
  EXPECT_TRUE(ValuesMatch("100", "100", 0.0));
  EXPECT_TRUE(ValuesMatch("100", "100.5", 0.01));
  EXPECT_FALSE(ValuesMatch("100", "103", 0.01));
  EXPECT_FALSE(ValuesMatch("red", "blue", 0.5));
  EXPECT_FALSE(ValuesMatch("100 g", "100 oz", 0.01));  // unit mismatch
}

TEST(EvaluationTest, UnitTolerantMatch) {
  EXPECT_TRUE(ValuesMatchUnitTolerant("254", "100", 0.01));   // cm vs in
  EXPECT_TRUE(ValuesMatchUnitTolerant("100", "254", 0.01));
  EXPECT_FALSE(ValuesMatchUnitTolerant("100", "137", 0.01));
  EXPECT_TRUE(ValuesMatchUnitTolerant("same", "same", 0.0));
}

TEST(EvaluationTest, AccuracyEstimationErrorSkipsCopiers) {
  GroundTruth truth;
  truth.source_accuracy = {0.9, 0.8, 0.5};
  truth.copy_edges = {{2, 0, 0.8}};
  FusionResult result;
  result.source_accuracy = {0.9, 0.7, 0.99};  // copier estimate way off
  // Only sources 0 and 1 count: errors 0.0 and 0.1 -> mean 0.05.
  EXPECT_NEAR(AccuracyEstimationError(result, truth), 0.05, 1e-9);
}

}  // namespace
}  // namespace bdi::fusion
