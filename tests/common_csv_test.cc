#include "bdi/common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "bdi/common/random.h"

namespace bdi {
namespace {

TEST(CsvTest, EncodePlainRow) {
  EXPECT_EQ(EncodeCsvRow({"a", "b", "c"}), "a,b,c");
}

TEST(CsvTest, EncodeQuotesSpecials) {
  EXPECT_EQ(EncodeCsvRow({"a,b", "he said \"hi\"", "line\nbreak"}),
            "\"a,b\",\"he said \"\"hi\"\"\",\"line\nbreak\"");
}

TEST(CsvTest, ParsePlainRow) {
  auto row = ParseCsvRow("a,b,c");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvTest, ParseQuotedRow) {
  auto row = ParseCsvRow("\"a,b\",\"x\"\"y\"");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value(), (std::vector<std::string>{"a,b", "x\"y"}));
}

TEST(CsvTest, ParseEmptyFields) {
  auto row = ParseCsvRow(",,");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value(), (std::vector<std::string>{"", "", ""}));
}

TEST(CsvTest, ParseRejectsUnterminatedQuote) {
  auto row = ParseCsvRow("\"oops");
  EXPECT_FALSE(row.ok());
  EXPECT_EQ(row.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RowRoundTripProperty) {
  Rng rng(21);
  const std::string alphabet = "ab,\"\n x9";
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::string> fields;
    int64_t num_fields = rng.UniformInt(1, 5);
    for (int64_t f = 0; f < num_fields; ++f) {
      std::string field;
      int64_t len = rng.UniformInt(0, 8);
      for (int64_t c = 0; c < len; ++c) {
        field.push_back(alphabet[rng.UniformInt(
            0, static_cast<int64_t>(alphabet.size()) - 1)]);
      }
      fields.push_back(field);
    }
    auto parsed = ParseCsvRow(EncodeCsvRow(fields));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), fields) << "trial " << trial;
  }
}

TEST(CsvTest, ParseRejectsGarbageAfterClosingQuote) {
  auto row = ParseCsvRow("\"a\"b,c");
  ASSERT_FALSE(row.ok());
  EXPECT_EQ(row.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(row.status().message().find("column"), std::string::npos);
}

TEST(CsvTest, ParseCsvQuotedFieldSpansNewlines) {
  auto rows = ParseCsv("a,\"line\nbreak\"\nc,d\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0], (std::vector<std::string>{"a", "line\nbreak"}));
  EXPECT_EQ(rows.value()[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvTest, ParseCsvQuotedFieldSpansManyLines) {
  auto rows = ParseCsv("\"a\n\nb\n\"\nnext\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0], (std::vector<std::string>{"a\n\nb\n"}));
  EXPECT_EQ(rows.value()[1], (std::vector<std::string>{"next"}));
}

TEST(CsvTest, ParseCsvUnterminatedQuoteNamesOpeningLine) {
  auto rows = ParseCsv("a,b\nc,\"oops\nstill open");
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rows.status().message().find("line 2"), std::string::npos);
}

TEST(CsvTest, ParseCsvRejectsGarbageAfterClosingQuote) {
  auto rows = ParseCsv("ok,fine\n\"a\"garbage,x\n");
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rows.status().message().find("line 2"), std::string::npos);
}

TEST(CsvTest, ParseCsvCrLfRows) {
  auto rows = ParseCsv("a,b\r\nc,d\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows.value()[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvTest, ParseCsvPreservesQuotedCarriageReturn) {
  auto rows = ParseCsv("\"a\r\nb\",c\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(rows.value()[0], (std::vector<std::string>{"a\r\nb", "c"}));
}

TEST(CsvTest, DocumentRoundTripWithNewlines) {
  std::vector<std::vector<std::string>> rows = {
      {"name", "notes"},
      {"a", "first line\nsecond line"},
      {"b", "cr\rhere"},
      {"c,d", "quote \" and\nnewline"}};
  std::string encoded;
  for (const auto& row : rows) {
    encoded += EncodeCsvRow(row);
    encoded += '\n';
  }
  auto parsed = ParseCsv(encoded);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), rows);
}

TEST(CsvTest, ParseCsvMultipleRows) {
  auto rows = ParseCsv("a,b\nc,d\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows.value()[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvTest, ParseCsvWithoutTrailingNewline) {
  auto rows = ParseCsv("a\nb");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 2u);
}

TEST(CsvTest, ParseCsvEmpty) {
  auto rows = ParseCsv("");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows.value().empty());
}

TEST(CsvTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/bdi_csv_test.csv";
  std::vector<std::vector<std::string>> rows = {
      {"name", "value"}, {"a,b", "1"}, {"quote\"y", "2"}};
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  auto read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), rows);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  auto read = ReadCsvFile("/nonexistent/dir/file.csv");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace bdi
