// Contracts of the progressive (budget-aware) matching scheduler:
// with the budget unlimited it must reproduce the slab path's bits for
// every scorer and thread count; under any budget its match set must be a
// deterministic subset that only grows with the budget; and the anytime
// recall curve must be non-decreasing in comparisons spent. Named
// *ParallelEquivalence* so the tsan/asan equivalence ctest presets pick
// it up.
#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "bdi/linkage/linkage.h"
#include "bdi/linkage/progressive.h"
#include "bdi/synth/world.h"

namespace bdi::linkage {
namespace {

synth::SyntheticWorld MakeWorld() {
  synth::WorldConfig config;
  config.seed = 23;
  config.num_entities = 150;
  config.num_sources = 12;
  return synth::GenerateWorld(config);
}

void ExpectSameResult(const LinkageResult& x, const LinkageResult& y) {
  EXPECT_EQ(x.num_candidates, y.num_candidates);
  ASSERT_EQ(x.matches.size(), y.matches.size());
  for (size_t i = 0; i < x.matches.size(); ++i) {
    EXPECT_EQ(x.matches[i].pair.a, y.matches[i].pair.a) << "match " << i;
    EXPECT_EQ(x.matches[i].pair.b, y.matches[i].pair.b) << "match " << i;
    EXPECT_EQ(x.matches[i].score, y.matches[i].score) << "match " << i;
  }
  ASSERT_EQ(x.clusters.label_of_record.size(),
            y.clusters.label_of_record.size());
  for (size_t r = 0; r < x.clusters.label_of_record.size(); ++r) {
    EXPECT_EQ(x.clusters.label_of_record[r], y.clusters.label_of_record[r])
        << "record " << r;
  }
}

LinkageResult RunProgressive(const synth::SyntheticWorld& world,
                             ScorerKind scorer, size_t num_threads,
                             double budget) {
  LinkerConfig config;
  config.scorer = scorer;
  config.num_threads = num_threads;
  config.use_progressive = true;
  config.comparison_budget = budget;
  Linker linker(&world.dataset, config);
  return linker.Run();
}

// Unlimited budget: the scheduler reorders comparisons but every pair is
// still scored, so the result must be bitwise the slab path's — for all
// three scorers, serial and with the slab pool exercised by 8 threads.
TEST(LinkageProgressiveParallelEquivalenceTest, UnlimitedMatchesSlabPath) {
  synth::SyntheticWorld world = MakeWorld();
  for (ScorerKind kind :
       {ScorerKind::kRule, ScorerKind::kLinear, ScorerKind::kLearned}) {
    LinkerConfig config;
    config.scorer = kind;
    config.num_threads = 1;
    Linker linker(&world.dataset, config);
    LinkageResult slab = linker.Run();
    ExpectSameResult(slab, RunProgressive(world, kind, 1, 0.0));
    ExpectSameResult(slab, RunProgressive(world, kind, 8, 0.0));
  }
}

// A budgeted schedule is a pure function of the candidate list: the full
// result (matches, scores, clusters) must be identical for every thread
// count.
TEST(LinkageProgressiveParallelEquivalenceTest, BudgetedDeterministicAcrossThreads) {
  synth::SyntheticWorld world = MakeWorld();
  for (double budget : {0.25, 0.6}) {
    LinkageResult serial =
        RunProgressive(world, ScorerKind::kRule, 1, budget);
    ExpectSameResult(serial,
                     RunProgressive(world, ScorerKind::kRule, 2, budget));
    ExpectSameResult(serial,
                     RunProgressive(world, ScorerKind::kRule, 8, budget));
  }
}

std::set<std::pair<RecordIdx, RecordIdx>> MatchSet(const LinkageResult& r) {
  std::set<std::pair<RecordIdx, RecordIdx>> set;
  for (const ScoredPair& match : r.matches) {
    set.emplace(match.pair.a, match.pair.b);
  }
  return set;
}

// Budget monotonicity: a budget cuts a prefix of the fixed schedule, so
// the match set at budget B must be a subset of the match set at every
// larger budget.
TEST(LinkageProgressiveParallelEquivalenceTest, MatchSetMonotoneInBudget) {
  synth::SyntheticWorld world = MakeWorld();
  std::set<std::pair<RecordIdx, RecordIdx>> previous;
  for (double budget : {0.1, 0.25, 0.5, 0.75, 0.0}) {
    std::set<std::pair<RecordIdx, RecordIdx>> matches =
        MatchSet(RunProgressive(world, ScorerKind::kRule, 4, budget));
    for (const auto& pair : previous) {
      EXPECT_TRUE(matches.count(pair))
          << "match (" << pair.first << "," << pair.second
          << ") lost when the budget grew to " << budget;
    }
    EXPECT_GE(matches.size(), previous.size());
    previous = std::move(matches);
  }
}

// The anytime contract the benches report: as the budget grows, both the
// comparisons spent and the pairwise recall against the synthetic truth
// are non-decreasing.
TEST(LinkageProgressiveParallelEquivalenceTest, RecallCurveNonDecreasing) {
  synth::SyntheticWorld world = MakeWorld();
  size_t previous_comparisons = 0;
  double previous_recall = 0.0;
  for (double budget : {0.1, 0.25, 0.5, 0.0}) {
    LinkageResult result = RunProgressive(world, ScorerKind::kRule, 4, budget);
    LinkageQuality quality = EvaluateClusters(
        result.clusters.label_of_record, world.truth.entity_of_record);
    EXPECT_GE(result.num_scheduled, previous_comparisons) << budget;
    EXPECT_GE(quality.recall, previous_recall) << budget;
    previous_comparisons = result.num_scheduled;
    previous_recall = quality.recall;
  }
  // The full-budget run defers nothing.
  EXPECT_GT(previous_recall, 0.5);
}

// Deferral accounting: an unbudgeted run defers nothing and schedules
// every survivor; a fractional budget schedules at most its share of
// them (closure pruning can only shrink the spend further); a tiny
// absolute budget leaves pairs deferred — a handful of matches cannot
// connect enough of the world for pruning to drain the stream.
TEST(LinkageProgressiveParallelEquivalenceTest, DeferralAccounting) {
  synth::SyntheticWorld world = MakeWorld();
  LinkageResult full = RunProgressive(world, ScorerKind::kRule, 1, 0.0);
  EXPECT_EQ(full.num_deferred, 0u);
  // full.num_scheduled == the survivor count, so the resolved 25% budget
  // is exactly ceil(num_scheduled / 4).
  LinkageResult quarter = RunProgressive(world, ScorerKind::kRule, 1, 0.25);
  EXPECT_LE(quarter.num_scheduled, (full.num_scheduled + 3) / 4);
  EXPECT_LT(quarter.num_scheduled, full.num_scheduled);
  LinkageResult ten = RunProgressive(world, ScorerKind::kRule, 1, 10.0);
  EXPECT_LE(ten.num_scheduled, 10u);
  EXPECT_GT(ten.num_deferred, 0u);
}

TEST(ProgressiveTierTest, TierOrderIsBoundDescending) {
  EXPECT_EQ(ProgressiveTierOf(1.5), 0u);
  EXPECT_EQ(ProgressiveTierOf(1.0), 0u);
  EXPECT_EQ(ProgressiveTierOf(0.0), kProgressiveTiers - 1);
  EXPECT_EQ(ProgressiveTierOf(-0.5), kProgressiveTiers - 1);
  double previous = ProgressiveTierOf(1.0);
  for (double bound = 0.999; bound > 0.0; bound -= 0.001) {
    double tier = ProgressiveTierOf(bound);
    EXPECT_GE(tier, previous) << bound;
    EXPECT_LT(tier, kProgressiveTiers) << bound;
    previous = tier;
  }
}

TEST(ProgressiveBudgetTest, ResolveEncodings) {
  EXPECT_EQ(ResolveComparisonBudget(0.0, 1000), 1000u);    // unlimited
  EXPECT_EQ(ResolveComparisonBudget(-1.0, 1000), 1000u);   // unlimited
  EXPECT_EQ(ResolveComparisonBudget(0.25, 1000), 250u);    // fraction
  EXPECT_EQ(ResolveComparisonBudget(0.0001, 1000), 1u);    // ceil, not 0
  EXPECT_EQ(ResolveComparisonBudget(500.0, 1000), 500u);   // absolute
  EXPECT_EQ(ResolveComparisonBudget(5000.0, 1000), 1000u); // clamped
  EXPECT_EQ(ResolveComparisonBudget(0.5, 0), 0u);
}

TEST(ProgressiveBudgetTest, ParseAcceptsCountsAndPercentages) {
  EXPECT_EQ(ParseComparisonBudget("0").value(), 0.0);
  EXPECT_EQ(ParseComparisonBudget("25000").value(), 25000.0);
  EXPECT_EQ(ParseComparisonBudget("25%").value(), 0.25);
  EXPECT_EQ(ParseComparisonBudget("12.5%").value(), 0.125);
  EXPECT_EQ(ParseComparisonBudget("100%").value(), 0.0);  // unlimited
}

TEST(ProgressiveBudgetTest, ParseRejectsMalformedSpecs) {
  for (const char* spec : {"", "%", "-1", "-5%", "0%", "101%", "abc", "10x",
                           "1e999", "2.5", "nan", "inf%"}) {
    EXPECT_FALSE(ParseComparisonBudget(spec).ok()) << spec;
  }
}

}  // namespace
}  // namespace bdi::linkage
