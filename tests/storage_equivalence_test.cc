// End-to-end equivalence pin for the two ingestion formats: a synthetic
// corpus written as CSV, converted to `.bds`, and run through the full
// integration pipeline must produce a byte-for-byte identical persisted
// IntegrationReport — the formats are indistinguishable downstream. Also
// pins the canonical re-export (bds -> csv equals csv -> csv) and the
// blocking-equivalence of KeyedAttributeNames projection.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bdi/core/integrator.h"
#include "bdi/core/report_io.h"
#include "bdi/linkage/attr_roles.h"
#include "bdi/linkage/blocking.h"
#include "bdi/model/dataset.h"
#include "bdi/model/dataset_io.h"
#include "bdi/schema/attribute_stats.h"
#include "bdi/storage/bds_reader.h"
#include "bdi/storage/bds_writer.h"
#include "bdi/storage/dataset_reader.h"
#include "bdi/synth/world.h"

namespace bdi::storage {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// The example corpus every pipeline equivalence check runs on: a synthetic
// multi-source world with copiers, like the README quickstart generates.
Dataset MakeWorld() {
  synth::WorldConfig config;
  config.category = "camera";
  config.num_entities = 80;
  config.num_sources = 6;
  config.num_copiers = 1;
  config.seed = 20260808;
  return std::move(synth::GenerateWorld(config).dataset);
}

TEST(StorageEquivalenceTest, PipelineReportsAreByteIdenticalAcrossFormats) {
  Dataset world = MakeWorld();
  std::string csv = TempPath("equiv_corpus.csv");
  std::string bds = TempPath("equiv_corpus.bds");
  ASSERT_TRUE(WriteDatasetCsv(world, csv).ok());
  BdsWriterOptions options;
  options.records_per_group = 64;  // force several row groups
  Result<ConvertStats> converted = ConvertCsvToBds(csv, bds, options);
  ASSERT_TRUE(converted.ok()) << converted.status();

  Result<Dataset> from_csv = ReadDatasetAuto(csv);
  Result<Dataset> from_bds = ReadDatasetAuto(bds);
  ASSERT_TRUE(from_csv.ok()) << from_csv.status();
  ASSERT_TRUE(from_bds.ok()) << from_bds.status();

  core::Integrator integrator;
  core::IntegrationReport report_csv = integrator.Run(from_csv.value());
  core::IntegrationReport report_bds = integrator.Run(from_bds.value());

  std::string dir_csv = TempPath("equiv_saved_csv");
  std::string dir_bds = TempPath("equiv_saved_bds");
  std::filesystem::create_directories(dir_csv);
  std::filesystem::create_directories(dir_bds);
  ASSERT_TRUE(
      core::SaveIntegration(report_csv, from_csv.value(), dir_csv).ok());
  ASSERT_TRUE(
      core::SaveIntegration(report_bds, from_bds.value(), dir_bds).ok());

  // Every persisted artifact must match byte for byte.
  size_t files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_csv)) {
    ++files;
    std::string name = entry.path().filename().string();
    std::string twin = dir_bds + "/" + name;
    ASSERT_TRUE(std::filesystem::exists(twin)) << name;
    EXPECT_EQ(ReadFileBytes(entry.path().string()), ReadFileBytes(twin))
        << name << " differs between the CSV and .bds pipelines";
  }
  EXPECT_GT(files, 0u);

  std::filesystem::remove_all(dir_csv);
  std::filesystem::remove_all(dir_bds);
  std::remove(csv.c_str());
  std::remove(bds.c_str());
}

TEST(StorageEquivalenceTest, CanonicalCsvReExportIsIdentical) {
  Dataset world = MakeWorld();
  std::string csv = TempPath("reexport.csv");
  std::string bds = TempPath("reexport.bds");
  ASSERT_TRUE(WriteDatasetCsv(world, csv).ok());
  Result<ConvertStats> converted = ConvertCsvToBds(csv, bds);
  ASSERT_TRUE(converted.ok()) << converted.status();

  // csv -> Dataset -> csv (the canonical form; the synthetic corpus is
  // already canonical, so this equals the original bytes) ...
  Result<Dataset> from_csv = ReadDatasetCsv(csv);
  ASSERT_TRUE(from_csv.ok());
  std::string out_a = TempPath("reexport_a.csv");
  ASSERT_TRUE(WriteDatasetCsv(from_csv.value(), out_a).ok());
  EXPECT_EQ(ReadFileBytes(out_a), ReadFileBytes(csv));

  // ... and bds -> Dataset -> csv must produce those exact bytes too:
  // conversion is loss-free in both directions.
  Result<BdsReader> reader = BdsReader::Open(bds);
  ASSERT_TRUE(reader.ok());
  Result<Dataset> from_bds = reader->ReadAll();
  ASSERT_TRUE(from_bds.ok());
  std::string out_b = TempPath("reexport_b.csv");
  ASSERT_TRUE(WriteDatasetCsv(from_bds.value(), out_b).ok());
  EXPECT_EQ(ReadFileBytes(out_b), ReadFileBytes(csv));

  std::remove(csv.c_str());
  std::remove(bds.c_str());
  std::remove(out_a.c_str());
  std::remove(out_b.c_str());
}

// A corpus engineered so role detection fires on every record: every
// record has a multi-token distinct "full name" (name role) and a
// digit-bearing unique "sku" (identifier role), plus two noise columns
// the projection must be able to drop.
Dataset MakeKeyableDataset() {
  Dataset dataset;
  SourceId a = dataset.AddSource("shop-a");
  SourceId b = dataset.AddSource("shop-b");
  const char* kAdjectives[] = {"compact", "deluxe", "vintage", "sturdy",
                               "foldable"};
  for (int r = 0; r < 40; ++r) {
    std::vector<std::pair<std::string, std::string>> fields;
    fields.emplace_back("full name", std::string(kAdjectives[r % 5]) +
                                         " widget mark " +
                                         std::to_string(100 + r));
    fields.emplace_back("sku", "wdg" + std::to_string(770000 + r) + "x");
    fields.emplace_back("color", r % 2 == 0 ? "red" : "blue");
    fields.emplace_back("weight", std::to_string(100 + (r % 7)));
    dataset.AddRecord(r % 2 == 0 ? a : b, fields);
  }
  return dataset;
}

TEST(StorageEquivalenceTest, KeyedProjectionPreservesBlocking) {
  Dataset world = MakeKeyableDataset();
  std::string bds = TempPath("projection.bds");
  ASSERT_TRUE(WriteDatasetBds(world, bds).ok());

  schema::AttributeStatistics stats =
      schema::AttributeStatistics::Compute(world);
  linkage::AttrRoles roles = linkage::AttrRoles::Detect(stats);
  ASSERT_TRUE(roles.HasRole(linkage::AttrRole::kName));
  std::vector<std::string> keyed =
      linkage::KeyedAttributeNames(world, roles);
  ASSERT_FALSE(keyed.empty());
  // Every record carries its role fields, so the projection must be a
  // real subset, not the all-attrs fallback.
  ASSERT_LT(keyed.size(), world.num_attrs());

  Result<BdsReader> reader = BdsReader::Open(bds);
  ASSERT_TRUE(reader.ok());
  Result<Dataset> projected = reader->ReadProjected(keyed);
  ASSERT_TRUE(projected.ok()) << projected.status();
  ASSERT_EQ(projected->num_records(), world.num_records());

  // Blocks computed from only the keyed columns equal blocks from the
  // full dataset — the extractor materialized nothing it keys on.
  linkage::TokenBlocker token;
  std::vector<linkage::Block> full_blocks =
      token.MakeBlocksAll(world, &roles);
  std::vector<linkage::Block> slim_blocks =
      token.MakeBlocksAll(projected.value(), &roles);
  ASSERT_FALSE(full_blocks.empty());
  ASSERT_EQ(full_blocks.size(), slim_blocks.size());
  for (size_t b = 0; b < full_blocks.size(); ++b) {
    EXPECT_EQ(full_blocks[b].key, slim_blocks[b].key) << "block " << b;
    EXPECT_EQ(full_blocks[b].records, slim_blocks[b].records)
        << "block " << b;
  }

  // The guard in KeyedAttributeNames: when a record lacks its role
  // fields, projection must degrade to all attributes (a no-op) instead
  // of silently changing blocks.
  Dataset partial = MakeKeyableDataset();
  partial.AddRecord(partial.AddSource("shop-c"),
                    std::vector<std::pair<std::string, std::string>>{
                        {"color", "green"}});
  std::vector<std::string> fallback =
      linkage::KeyedAttributeNames(partial, roles);
  EXPECT_EQ(fallback.size(), partial.num_attrs());
  std::remove(bds.c_str());
}

}  // namespace
}  // namespace bdi::storage
