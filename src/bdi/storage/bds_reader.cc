#include "bdi/storage/bds_reader.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "bdi/common/metrics.h"
#include "bdi/storage/crc32c.h"

namespace bdi::storage {

namespace {

void CountFileOpened() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.storage.files.opened");
  counter->Add();
}

void CountRowGroupRead() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.storage.row_groups.read");
  counter->Add();
}

void CountColumnsSkipped(uint64_t n) {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.storage.columns.skipped");
  counter->Add(n);
}

void CountChecksumFastPath() {
  static metrics::Counter* counter = metrics::Registry::Get().RegisterCounter(
      "bdi.storage.checksum.fast_path");
  counter->Add();
}

constexpr size_t kGroupMetaBytes = 8 + 8 + 4 + 4 + 4;

}  // namespace

Result<BdsReader> BdsReader::Open(const std::string& path) {
  BDI_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  BdsReader reader;
  reader.file_ = std::move(file);
  reader.path_ = path;
  const std::string_view data = reader.file_.data();
  if (data.size() < sizeof(kBdsMagic) + kTailBytes) {
    return Status::IOError(path + ": not a .bds file (only " +
                           std::to_string(data.size()) + " bytes)");
  }
  if (std::memcmp(data.data(), kBdsMagic, sizeof(kBdsMagic)) != 0) {
    return Status::IOError(path + ": not a .bds file (bad magic)");
  }
  std::string_view tail = data.substr(data.size() - kTailBytes);
  size_t tail_offset = 0;
  BDI_ASSIGN_OR_RETURN(uint64_t footer_bytes, GetU64(tail, &tail_offset));
  BDI_ASSIGN_OR_RETURN(uint32_t footer_crc, GetU32(tail, &tail_offset));
  BDI_ASSIGN_OR_RETURN(uint32_t tail_magic, GetU32(tail, &tail_offset));
  if (tail_magic != kTailMagic) {
    return Status::IOError(path +
                           ": bad .bds tail magic (truncated or corrupt)");
  }
  if (footer_bytes > data.size() - sizeof(kBdsMagic) - kTailBytes) {
    return Status::IOError(path + ": footer length exceeds file size");
  }
  const std::string_view footer =
      data.substr(data.size() - kTailBytes - footer_bytes, footer_bytes);
  if (Crc32c(footer) != footer_crc) {
    return Status::IOError(path + ": footer checksum mismatch");
  }
  BDI_RETURN_IF_ERROR(reader.ParseFooter(footer));
  CountFileOpened();
  return reader;
}

Status BdsReader::ParseFooter(std::string_view footer) {
  size_t offset = 0;
  BDI_ASSIGN_OR_RETURN(uint32_t magic, GetU32(footer, &offset));
  if (magic != kFooterMagic) {
    return Status::IOError(path_ + ": bad footer magic");
  }
  BDI_ASSIGN_OR_RETURN(version_, GetU32(footer, &offset));
  if (version_ != kBdsVersion) {
    return Status::InvalidArgument(
        path_ + ": unsupported .bds version " + std::to_string(version_) +
        " (this reader supports version " + std::to_string(kBdsVersion) +
        ")");
  }
  BDI_ASSIGN_OR_RETURN(records_per_group_, GetU32(footer, &offset));
  BDI_ASSIGN_OR_RETURN(uint32_t flags, GetU32(footer, &offset));
  if (flags != 0) {
    return Status::InvalidArgument(path_ + ": unknown .bds flags " +
                                   std::to_string(flags));
  }
  BDI_ASSIGN_OR_RETURN(num_records_, GetU64(footer, &offset));
  BDI_ASSIGN_OR_RETURN(num_fields_, GetU64(footer, &offset));
  if (num_records_ >
      static_cast<uint64_t>(std::numeric_limits<RecordIdx>::max())) {
    return Status::OutOfRange(path_ + ": record count exceeds RecordIdx");
  }
  const uint64_t body_end = file_.size() - kTailBytes;
  for (BdsDictMeta& dict : dicts_) {
    BDI_ASSIGN_OR_RETURN(dict.offset, GetU64(footer, &offset));
    BDI_ASSIGN_OR_RETURN(dict.bytes, GetU64(footer, &offset));
    BDI_ASSIGN_OR_RETURN(dict.count, GetU32(footer, &offset));
    BDI_ASSIGN_OR_RETURN(dict.crc, GetU32(footer, &offset));
    if (dict.offset < sizeof(kBdsMagic) || dict.offset > body_end ||
        dict.bytes > body_end - dict.offset) {
      return Status::IOError(path_ + ": dictionary segment out of bounds");
    }
    if (dict.count > static_cast<uint32_t>(std::numeric_limits<AttrId>::max())) {
      return Status::OutOfRange(path_ + ": dictionary too large");
    }
  }
  BDI_ASSIGN_OR_RETURN(uint32_t num_groups, GetU32(footer, &offset));
  if (footer.size() - offset != num_groups * kGroupMetaBytes) {
    return Status::IOError(path_ + ": footer row-group directory truncated");
  }
  groups_.reserve(num_groups);
  uint64_t total_records = 0;
  uint64_t total_fields = 0;
  for (uint32_t g = 0; g < num_groups; ++g) {
    BdsRowGroupMeta meta;
    BDI_ASSIGN_OR_RETURN(meta.offset, GetU64(footer, &offset));
    BDI_ASSIGN_OR_RETURN(meta.bytes, GetU64(footer, &offset));
    BDI_ASSIGN_OR_RETURN(meta.num_records, GetU32(footer, &offset));
    BDI_ASSIGN_OR_RETURN(meta.num_fields, GetU32(footer, &offset));
    BDI_ASSIGN_OR_RETURN(meta.crc, GetU32(footer, &offset));
    if (meta.offset < sizeof(kBdsMagic) || meta.offset > body_end ||
        meta.bytes > body_end - meta.offset ||
        meta.bytes < kRowGroupHeaderBytes) {
      return Status::IOError(path_ + ": row group " + std::to_string(g) +
                             " out of bounds");
    }
    total_records += meta.num_records;
    total_fields += meta.num_fields;
    groups_.push_back(meta);
  }
  if (total_records != num_records_ || total_fields != num_fields_) {
    return Status::IOError(path_ +
                           ": footer totals disagree with row groups");
  }
  return Status::OK();
}

Status BdsReader::DecodeDict(const BdsDictMeta& meta, std::string_view what,
                             std::vector<std::string>* names) const {
  const std::string_view segment =
      file_.data().substr(meta.offset, meta.bytes);
  if (Crc32c(segment) != meta.crc) {
    return Status::IOError(path_ + ": " + std::string(what) +
                           " dictionary checksum mismatch");
  }
  names->clear();
  names->reserve(meta.count);
  size_t offset = 0;
  for (uint32_t i = 0; i < meta.count; ++i) {
    BDI_ASSIGN_OR_RETURN(uint64_t length, GetVarint(segment, &offset));
    if (length > segment.size() - offset) {
      return Status::IOError(path_ + ": " + std::string(what) +
                             " dictionary entry overruns segment");
    }
    names->emplace_back(segment.substr(offset, length));
    offset += length;
  }
  if (offset != segment.size()) {
    return Status::IOError(path_ + ": " + std::string(what) +
                           " dictionary has trailing bytes");
  }
  return Status::OK();
}

Status BdsReader::EnsureDicts() {
  if (dicts_loaded_) return Status::OK();
  BDI_RETURN_IF_ERROR(DecodeDict(dicts_[0], "source", &source_names_));
  BDI_RETURN_IF_ERROR(DecodeDict(dicts_[1], "attribute", &attr_names_));
  BDI_RETURN_IF_ERROR(DecodeDict(dicts_[2], "value", &value_names_));
  dicts_loaded_ = true;
  return Status::OK();
}

Status BdsReader::DecodeGroup(const BdsRowGroupMeta& meta,
                              DecodedGroup* out) const {
  const std::string_view group = file_.data().substr(meta.offset, meta.bytes);
  if (Crc32c(group) != meta.crc) {
    return Status::IOError(path_ + ": row group at offset " +
                           std::to_string(meta.offset) +
                           ": checksum mismatch");
  }
  auto corrupt = [&](const std::string& what) {
    return Status::IOError(path_ + ": row group at offset " +
                           std::to_string(meta.offset) + ": " + what);
  };
  size_t offset = 0;
  BDI_ASSIGN_OR_RETURN(uint32_t magic, GetU32(group, &offset));
  if (magic != kRowGroupMagic) return corrupt("bad group magic");
  BDI_ASSIGN_OR_RETURN(uint32_t num_records, GetU32(group, &offset));
  BDI_ASSIGN_OR_RETURN(uint32_t num_fields, GetU32(group, &offset));
  BDI_ASSIGN_OR_RETURN(uint32_t num_segments, GetU32(group, &offset));
  if (num_records != meta.num_records || num_fields != meta.num_fields) {
    return corrupt("group header disagrees with footer");
  }
  bool seen[5] = {false, false, false, false, false};
  for (uint32_t s = 0; s < num_segments; ++s) {
    if (offset > group.size() ||
        group.size() - offset < kSegmentHeaderBytes) {
      return corrupt("truncated segment header");
    }
    const uint8_t column = static_cast<uint8_t>(group[offset]);
    const uint8_t encoding = static_cast<uint8_t>(group[offset + 1]);
    offset += 4;  // column, encoding, reserved u16
    BDI_ASSIGN_OR_RETURN(uint32_t count, GetU32(group, &offset));
    BDI_ASSIGN_OR_RETURN(uint64_t payload_bytes, GetU64(group, &offset));
    if (payload_bytes > group.size() - offset) {
      return corrupt("segment payload overruns group");
    }
    const std::string_view payload = group.substr(offset, payload_bytes);
    offset += payload_bytes;
    if (column > 4) {
      return corrupt("unknown column id " + std::to_string(column));
    }
    if (seen[column]) {
      return corrupt("duplicate " + std::string(ColumnIdName(column)) +
                     " segment");
    }
    seen[column] = true;
    const ColumnId id = static_cast<ColumnId>(column);
    if (id == ColumnId::kRawValues) {
      if (encoding != static_cast<uint8_t>(ColumnEncoding::kRawBytes)) {
        return corrupt("raw_values segment must use raw encoding");
      }
      size_t raw_offset = 0;
      out->raw_values.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        BDI_ASSIGN_OR_RETURN(uint64_t length,
                             GetVarint(payload, &raw_offset));
        if (length > payload.size() - raw_offset) {
          return corrupt("raw value overruns segment");
        }
        out->raw_values.push_back(payload.substr(raw_offset, length));
        raw_offset += length;
      }
      if (raw_offset != payload.size()) {
        return corrupt("raw_values segment has trailing bytes");
      }
      continue;
    }
    const uint32_t expected =
        (id == ColumnId::kSource || id == ColumnId::kFieldCount)
            ? num_records
            : num_fields;
    if (count != expected) {
      return corrupt(std::string(ColumnIdName(column)) +
                     " segment count disagrees with group header");
    }
    Result<std::vector<uint32_t>> decoded =
        DecodeU32Column(payload, encoding, count, ColumnIdName(column));
    if (!decoded.ok()) {
      return corrupt(decoded.status().message());
    }
    switch (id) {
      case ColumnId::kSource: out->sources = std::move(decoded).value(); break;
      case ColumnId::kFieldCount:
        out->field_counts = std::move(decoded).value();
        break;
      case ColumnId::kAttr: out->attrs = std::move(decoded).value(); break;
      case ColumnId::kValue: out->values = std::move(decoded).value(); break;
      case ColumnId::kRawValues: break;  // handled above
    }
  }
  if (offset != group.size()) return corrupt("trailing bytes after segments");
  for (uint8_t column = 0; column < 4; ++column) {
    if (!seen[column]) {
      return corrupt("missing " + std::string(ColumnIdName(column)) +
                     " segment");
    }
  }
  uint64_t field_sum = 0;
  for (uint32_t count : out->field_counts) field_sum += count;
  if (field_sum != num_fields) {
    return corrupt("field counts do not sum to the group field total");
  }
  uint64_t raw_seen = 0;
  for (size_t i = 0; i < out->values.size(); ++i) {
    if (out->values[i] == kRawValueId) {
      ++raw_seen;
    } else if (out->values[i] >= dicts_[2].count) {
      return corrupt("value id out of dictionary range");
    }
  }
  if (raw_seen != out->raw_values.size()) {
    return corrupt("raw value count disagrees with value column");
  }
  for (uint32_t source : out->sources) {
    if (source >= dicts_[0].count) {
      return corrupt("source id out of dictionary range");
    }
  }
  for (uint32_t attr : out->attrs) {
    if (attr >= dicts_[1].count) {
      return corrupt("attribute id out of dictionary range");
    }
  }
  CountRowGroupRead();
  return Status::OK();
}

Result<Dataset> BdsReader::Read(uint64_t max_records,
                                const std::vector<std::string>* keep_attrs) {
  BDI_RETURN_IF_ERROR(EnsureDicts());
  Dataset dataset;
  // Sources and attributes are registered lazily, at the first emitted
  // record / decoded field that references them. Dictionary ids are
  // first-intern-order, so references appear in increasing id order and
  // the resulting Dataset ids equal the dictionary ids. A full scan ends
  // up registering every entry (the writer only interns names records
  // actually use); a head read registers exactly what the streaming CSV
  // reader sees in the same record prefix — keeping the two formats
  // indistinguishable even for partial reads.
  size_t sources_registered = 0;
  size_t attrs_registered = 0;
  const auto touch_source = [&](uint32_t id) {
    while (sources_registered <= id) {
      dataset.AddSource(source_names_[sources_registered++]);
    }
  };
  const auto touch_attr = [&](uint32_t id) {
    while (attrs_registered <= id) {
      dataset.InternAttr(attr_names_[attrs_registered++]);
    }
  };
  std::vector<char> keep;
  if (keep_attrs != nullptr) {
    keep.assign(attr_names_.size(), 0);
    for (const std::string& name : *keep_attrs) {
      for (size_t a = 0; a < attr_names_.size(); ++a) {
        if (attr_names_[a] == name) keep[a] = 1;
      }
    }
  }
  uint64_t remaining = max_records;
  std::vector<char> excluded_seen;
  for (const BdsRowGroupMeta& meta : groups_) {
    if (remaining == 0) break;
    DecodedGroup group;
    BDI_RETURN_IF_ERROR(DecodeGroup(meta, &group));
    if (keep_attrs != nullptr) {
      excluded_seen.assign(attr_names_.size(), 0);
    }
    const uint64_t take =
        std::min<uint64_t>(remaining, meta.num_records);
    size_t field_cursor = 0;
    size_t raw_cursor = 0;
    std::vector<Field> fields;
    for (uint64_t r = 0; r < take; ++r) {
      const uint32_t field_count = group.field_counts[r];
      fields.clear();
      fields.reserve(field_count);
      for (uint32_t f = 0; f < field_count; ++f, ++field_cursor) {
        const uint32_t attr = group.attrs[field_cursor];
        const uint32_t value_id = group.values[field_cursor];
        const bool is_raw = value_id == kRawValueId;
        touch_attr(attr);
        if (!keep.empty() && keep[attr] == 0) {
          excluded_seen[attr] = 1;
          if (is_raw) ++raw_cursor;  // Keep the raw stream aligned.
          continue;
        }
        std::string value =
            is_raw ? std::string(group.raw_values[raw_cursor++])
                   : value_names_[value_id];
        fields.push_back(
            Field{static_cast<AttrId>(attr), std::move(value)});
      }
      touch_source(group.sources[r]);
      dataset.AddRecord(static_cast<SourceId>(group.sources[r]),
                        std::move(fields));
    }
    if (keep_attrs != nullptr) {
      uint64_t skipped = 0;
      for (char s : excluded_seen) skipped += static_cast<uint64_t>(s);
      CountColumnsSkipped(skipped);
    }
    remaining -= take;
  }
  return dataset;
}

Result<Dataset> BdsReader::ReadAll() {
  return Read(num_records_, nullptr);
}

Result<Dataset> BdsReader::ReadHead(size_t max_records) {
  return Read(std::min<uint64_t>(max_records, num_records_), nullptr);
}

Result<Dataset> BdsReader::ReadProjected(
    const std::vector<std::string>& keep_attrs) {
  return Read(num_records_, &keep_attrs);
}

ValidationReport BdsReader::VerifyChecksums() const {
  ValidationReport report;
  report.rows = num_fields_;
  report.records = num_records_;
  report.sources = dicts_[0].count;
  report.attributes = dicts_[1].count;
  for (size_t g = 0; g < groups_.size(); ++g) {
    const BdsRowGroupMeta& meta = groups_[g];
    const std::string_view bytes =
        file_.data().substr(meta.offset, meta.bytes);
    if (Crc32c(bytes) != meta.crc) {
      report.issues.push_back(
          {0, "row group " + std::to_string(g) + " (offset " +
                  std::to_string(meta.offset) + "): checksum mismatch"});
    } else {
      CountChecksumFastPath();
    }
  }
  static constexpr const char* kDictNames[3] = {"source", "attribute",
                                                "value"};
  for (int d = 0; d < 3; ++d) {
    const std::string_view bytes =
        file_.data().substr(dicts_[d].offset, dicts_[d].bytes);
    if (Crc32c(bytes) != dicts_[d].crc) {
      report.issues.push_back(
          {0, std::string(kDictNames[d]) + " dictionary: checksum mismatch"});
    }
  }
  return report;
}

ValidationReport ValidateBdsFile(const std::string& path) {
  Result<BdsReader> reader = BdsReader::Open(path);
  if (!reader.ok()) {
    ValidationReport report;
    report.issues.push_back({0, reader.status().message()});
    return report;
  }
  return reader->VerifyChecksums();
}

}  // namespace bdi::storage
