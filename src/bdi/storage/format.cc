#include "bdi/storage/format.h"

#include <limits>

namespace bdi::storage {

namespace {

// Zigzag maps signed deltas onto small unsigned varints: 0,-1,1,-2 -> 0,1,2,3.
uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

Status Truncated(std::string_view what) {
  return Status::IOError("truncated " + std::string(what));
}

}  // namespace

std::string_view ColumnIdName(uint8_t id) {
  switch (static_cast<ColumnId>(id)) {
    case ColumnId::kSource: return "source";
    case ColumnId::kFieldCount: return "field_count";
    case ColumnId::kAttr: return "attr";
    case ColumnId::kValue: return "value";
    case ColumnId::kRawValues: return "raw_values";
  }
  return "?";
}

std::string_view ColumnEncodingName(uint8_t encoding) {
  switch (static_cast<ColumnEncoding>(encoding)) {
    case ColumnEncoding::kPlain: return "plain";
    case ColumnEncoding::kVarint: return "varint";
    case ColumnEncoding::kDeltaVarint: return "delta";
    case ColumnEncoding::kRle: return "rle";
    case ColumnEncoding::kRawBytes: return "raw";
  }
  return "?";
}

void PutU32(uint32_t value, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
  }
}

void PutU64(uint64_t value, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
  }
}

void PutVarint(uint64_t value, std::string* out) {
  while (value >= 0x80u) {
    out->push_back(static_cast<char>((value & 0x7Fu) | 0x80u));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

Result<uint32_t> GetU32(std::string_view data, size_t* offset) {
  if (*offset > data.size() || data.size() - *offset < 4) {
    return Truncated("u32");
  }
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<unsigned char>(data[*offset + i]))
             << (8 * i);
  }
  *offset += 4;
  return value;
}

Result<uint64_t> GetU64(std::string_view data, size_t* offset) {
  if (*offset > data.size() || data.size() - *offset < 8) {
    return Truncated("u64");
  }
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(data[*offset + i]))
             << (8 * i);
  }
  *offset += 8;
  return value;
}

Result<uint64_t> GetVarint(std::string_view data, size_t* offset) {
  uint64_t value = 0;
  int shift = 0;
  size_t pos = *offset;
  while (pos < data.size() && shift < 70) {
    const auto byte = static_cast<unsigned char>(data[pos++]);
    value |= static_cast<uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) {
      *offset = pos;
      return value;
    }
    shift += 7;
  }
  if (shift >= 70) return Status::IOError("varint longer than 10 bytes");
  return Truncated("varint");
}

Status EncodeU32Column(const std::vector<uint32_t>& values,
                       ColumnEncoding encoding, std::string* out) {
  switch (encoding) {
    case ColumnEncoding::kPlain:
      for (uint32_t v : values) PutU32(v, out);
      return Status::OK();
    case ColumnEncoding::kVarint:
      for (uint32_t v : values) PutVarint(v, out);
      return Status::OK();
    case ColumnEncoding::kDeltaVarint: {
      int64_t prev = 0;
      for (uint32_t v : values) {
        PutVarint(ZigzagEncode(static_cast<int64_t>(v) - prev), out);
        prev = static_cast<int64_t>(v);
      }
      return Status::OK();
    }
    case ColumnEncoding::kRle: {
      size_t i = 0;
      while (i < values.size()) {
        size_t run = 1;
        while (i + run < values.size() && values[i + run] == values[i]) ++run;
        PutVarint(run, out);
        PutVarint(values[i], out);
        i += run;
      }
      return Status::OK();
    }
    case ColumnEncoding::kRawBytes:
      break;
  }
  return Status::InvalidArgument("kRawBytes is not a u32 column encoding");
}

ColumnEncoding EncodeU32ColumnBest(const std::vector<uint32_t>& values,
                                   std::string* out) {
  constexpr ColumnEncoding kCandidates[] = {
      ColumnEncoding::kPlain, ColumnEncoding::kVarint,
      ColumnEncoding::kDeltaVarint, ColumnEncoding::kRle};
  std::string best;
  ColumnEncoding best_encoding = ColumnEncoding::kPlain;
  bool have_best = false;
  std::string scratch;
  for (ColumnEncoding encoding : kCandidates) {
    scratch.clear();
    // All four candidates accept any u32 sequence, so this cannot fail.
    const Status encoded = EncodeU32Column(values, encoding, &scratch);
    (void)encoded;
    if (!have_best || scratch.size() < best.size()) {
      best.swap(scratch);
      best_encoding = encoding;
      have_best = true;
    }
  }
  out->append(best);
  return best_encoding;
}

Result<std::vector<uint32_t>> DecodeU32Column(std::string_view payload,
                                              uint8_t encoding, size_t count,
                                              std::string_view what) {
  std::vector<uint32_t> values;
  values.reserve(count);
  size_t offset = 0;
  const std::string name(what);
  switch (static_cast<ColumnEncoding>(encoding)) {
    case ColumnEncoding::kPlain:
      for (size_t i = 0; i < count; ++i) {
        BDI_ASSIGN_OR_RETURN(uint32_t v, GetU32(payload, &offset));
        values.push_back(v);
      }
      break;
    case ColumnEncoding::kVarint:
      for (size_t i = 0; i < count; ++i) {
        BDI_ASSIGN_OR_RETURN(uint64_t v, GetVarint(payload, &offset));
        if (v > std::numeric_limits<uint32_t>::max()) {
          return Status::IOError(name + " column: varint exceeds u32");
        }
        values.push_back(static_cast<uint32_t>(v));
      }
      break;
    case ColumnEncoding::kDeltaVarint: {
      int64_t prev = 0;
      for (size_t i = 0; i < count; ++i) {
        BDI_ASSIGN_OR_RETURN(uint64_t raw, GetVarint(payload, &offset));
        const int64_t v = prev + ZigzagDecode(raw);
        if (v < 0 || v > std::numeric_limits<uint32_t>::max()) {
          return Status::IOError(name + " column: delta leaves u32 range");
        }
        values.push_back(static_cast<uint32_t>(v));
        prev = v;
      }
      break;
    }
    case ColumnEncoding::kRle:
      while (values.size() < count) {
        BDI_ASSIGN_OR_RETURN(uint64_t run, GetVarint(payload, &offset));
        BDI_ASSIGN_OR_RETURN(uint64_t v, GetVarint(payload, &offset));
        if (run == 0 || run > count - values.size()) {
          return Status::IOError(name + " column: run-length overflows count");
        }
        if (v > std::numeric_limits<uint32_t>::max()) {
          return Status::IOError(name + " column: rle value exceeds u32");
        }
        values.insert(values.end(), static_cast<size_t>(run),
                      static_cast<uint32_t>(v));
      }
      break;
    default:
      return Status::IOError(name + " column: unknown encoding " +
                              std::to_string(encoding));
  }
  if (offset != payload.size()) {
    return Status::IOError(name + " column: " +
                            std::to_string(payload.size() - offset) +
                            " trailing payload bytes");
  }
  return values;
}

}  // namespace bdi::storage
