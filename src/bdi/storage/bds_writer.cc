#include "bdi/storage/bds_writer.h"

#include <limits>

#include "bdi/model/dataset_io.h"
#include "bdi/storage/crc32c.h"
#include "bdi/storage/csv_stream.h"

namespace bdi::storage {

namespace {

// Appends one encoded column segment (header + payload) to `group`.
void AppendU32Segment(ColumnId column, const std::vector<uint32_t>& values,
                      std::string* group) {
  std::string payload;
  const ColumnEncoding encoding = EncodeU32ColumnBest(values, &payload);
  group->push_back(static_cast<char>(column));
  group->push_back(static_cast<char>(encoding));
  group->push_back(0);
  group->push_back(0);
  PutU32(static_cast<uint32_t>(values.size()), group);
  PutU64(payload.size(), group);
  group->append(payload);
}

}  // namespace

BdsWriter::~BdsWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

BdsWriter::BdsWriter(BdsWriter&& other) noexcept { *this = std::move(other); }

BdsWriter& BdsWriter::operator=(BdsWriter&& other) noexcept {
  if (this == &other) return *this;
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::exchange(other.file_, nullptr);
  path_ = std::move(other.path_);
  options_ = other.options_;
  offset_ = other.offset_;
  num_records_ = other.num_records_;
  num_fields_ = other.num_fields_;
  finished_ = other.finished_;
  source_dict_ = std::move(other.source_dict_);
  attr_dict_ = std::move(other.attr_dict_);
  value_dict_ = std::move(other.value_dict_);
  group_sources_ = std::move(other.group_sources_);
  group_field_counts_ = std::move(other.group_field_counts_);
  group_attrs_ = std::move(other.group_attrs_);
  group_values_ = std::move(other.group_values_);
  group_raw_values_ = std::move(other.group_raw_values_);
  group_raw_count_ = other.group_raw_count_;
  groups_ = std::move(other.groups_);
  return *this;
}

Result<BdsWriter> BdsWriter::Create(const std::string& path,
                                    const BdsWriterOptions& options) {
  if (options.records_per_group == 0) {
    return Status::InvalidArgument("records_per_group must be positive");
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError("cannot open for write: " + path);
  }
  BdsWriter writer;
  writer.file_ = file;
  writer.path_ = path;
  writer.options_ = options;
  std::string magic(reinterpret_cast<const char*>(kBdsMagic),
                    sizeof(kBdsMagic));
  BDI_RETURN_IF_ERROR(writer.WriteBytes(magic));
  return writer;
}

Status BdsWriter::WriteBytes(const std::string& bytes) {
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return Status::IOError("write failed: " + path_);
  }
  offset_ += bytes.size();
  return Status::OK();
}

Status BdsWriter::Append(
    const std::string& source,
    const std::vector<std::pair<std::string, std::string>>& fields) {
  if (file_ == nullptr || finished_) {
    return Status::FailedPrecondition("Append on a finished .bds writer");
  }
  if (fields.size() > std::numeric_limits<uint32_t>::max()) {
    return Status::OutOfRange("record has too many fields for .bds");
  }
  group_sources_.push_back(source_dict_.Intern(source));
  group_field_counts_.push_back(static_cast<uint32_t>(fields.size()));
  for (const auto& [attr, value] : fields) {
    group_attrs_.push_back(attr_dict_.Intern(attr));
    if (value.size() >= options_.raw_value_min_len) {
      group_values_.push_back(kRawValueId);
      PutVarint(value.size(), &group_raw_values_);
      group_raw_values_.append(value);
      ++group_raw_count_;
    } else {
      const uint32_t id = value_dict_.Intern(value);
      if (id == kRawValueId) {
        return Status::Internal("value dictionary overflow");
      }
      group_values_.push_back(id);
    }
  }
  ++num_records_;
  num_fields_ += fields.size();
  if (group_sources_.size() >= options_.records_per_group) {
    return FlushGroup();
  }
  return Status::OK();
}

Status BdsWriter::FlushGroup() {
  if (group_sources_.empty()) return Status::OK();
  const uint32_t records = static_cast<uint32_t>(group_sources_.size());
  const uint32_t fields = static_cast<uint32_t>(group_attrs_.size());
  const uint32_t num_segments = group_raw_count_ > 0 ? 5 : 4;
  std::string group;
  PutU32(kRowGroupMagic, &group);
  PutU32(records, &group);
  PutU32(fields, &group);
  PutU32(num_segments, &group);
  AppendU32Segment(ColumnId::kSource, group_sources_, &group);
  AppendU32Segment(ColumnId::kFieldCount, group_field_counts_, &group);
  AppendU32Segment(ColumnId::kAttr, group_attrs_, &group);
  AppendU32Segment(ColumnId::kValue, group_values_, &group);
  if (group_raw_count_ > 0) {
    group.push_back(static_cast<char>(ColumnId::kRawValues));
    group.push_back(static_cast<char>(ColumnEncoding::kRawBytes));
    group.push_back(0);
    group.push_back(0);
    PutU32(group_raw_count_, &group);
    PutU64(group_raw_values_.size(), &group);
    group.append(group_raw_values_);
  }
  GroupMeta meta;
  meta.offset = offset_;
  meta.bytes = group.size();
  meta.num_records = records;
  meta.num_fields = fields;
  meta.crc = Crc32c(group);
  BDI_RETURN_IF_ERROR(WriteBytes(group));
  groups_.push_back(meta);
  group_sources_.clear();
  group_field_counts_.clear();
  group_attrs_.clear();
  group_values_.clear();
  group_raw_values_.clear();
  group_raw_count_ = 0;
  return Status::OK();
}

Status BdsWriter::WriteDict(const text::TokenInterner& dict, DictMeta* meta) {
  std::string segment;
  for (size_t i = 0; i < dict.size(); ++i) {
    const std::string& token = dict.token(static_cast<text::TokenId>(i));
    PutVarint(token.size(), &segment);
    segment.append(token);
  }
  meta->offset = offset_;
  meta->bytes = segment.size();
  meta->count = static_cast<uint32_t>(dict.size());
  meta->crc = Crc32c(segment);
  return WriteBytes(segment);
}

Status BdsWriter::Finish() {
  if (file_ == nullptr || finished_) {
    return Status::FailedPrecondition("Finish on a finished .bds writer");
  }
  BDI_RETURN_IF_ERROR(FlushGroup());
  DictMeta source_meta, attr_meta, value_meta;
  BDI_RETURN_IF_ERROR(WriteDict(source_dict_, &source_meta));
  BDI_RETURN_IF_ERROR(WriteDict(attr_dict_, &attr_meta));
  BDI_RETURN_IF_ERROR(WriteDict(value_dict_, &value_meta));
  std::string footer;
  PutU32(kFooterMagic, &footer);
  PutU32(kBdsVersion, &footer);
  PutU32(options_.records_per_group, &footer);
  PutU32(0, &footer);  // flags, reserved
  PutU64(num_records_, &footer);
  PutU64(num_fields_, &footer);
  for (const DictMeta* meta : {&source_meta, &attr_meta, &value_meta}) {
    PutU64(meta->offset, &footer);
    PutU64(meta->bytes, &footer);
    PutU32(meta->count, &footer);
    PutU32(meta->crc, &footer);
  }
  PutU32(static_cast<uint32_t>(groups_.size()), &footer);
  for (const GroupMeta& meta : groups_) {
    PutU64(meta.offset, &footer);
    PutU64(meta.bytes, &footer);
    PutU32(meta.num_records, &footer);
    PutU32(meta.num_fields, &footer);
    PutU32(meta.crc, &footer);
  }
  const uint32_t footer_crc = Crc32c(footer);
  BDI_RETURN_IF_ERROR(WriteBytes(footer));
  std::string tail;
  PutU64(footer.size(), &tail);
  PutU32(footer_crc, &tail);
  PutU32(kTailMagic, &tail);
  BDI_RETURN_IF_ERROR(WriteBytes(tail));
  finished_ = true;
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) {
    return Status::IOError("close failed: " + path_);
  }
  return Status::OK();
}

Status WriteDatasetBds(const Dataset& dataset, const std::string& path,
                       const BdsWriterOptions& options) {
  BDI_ASSIGN_OR_RETURN(BdsWriter writer, BdsWriter::Create(path, options));
  std::vector<std::pair<std::string, std::string>> fields;
  for (const Record& record : dataset.records()) {
    fields.clear();
    fields.reserve(record.fields.size());
    for (const Field& field : record.fields) {
      fields.emplace_back(dataset.attr_name(field.attr), field.value);
    }
    BDI_RETURN_IF_ERROR(
        writer.Append(dataset.source(record.source).name, fields));
  }
  return writer.Finish();
}

Result<ConvertStats> ConvertCsvToBds(const std::string& csv_path,
                                     const std::string& bds_path,
                                     const BdsWriterOptions& options) {
  BDI_ASSIGN_OR_RETURN(CsvRowStream stream, CsvRowStream::Open(csv_path));
  std::vector<std::string> row;
  BDI_ASSIGN_OR_RETURN(bool has_header, stream.Next(&row));
  if (!has_header) {
    return Status::InvalidArgument(
        "expected header 'source,record,attribute,value' in " + csv_path);
  }
  BDI_RETURN_IF_ERROR(LongCsvGrouper::CheckHeader(row, csv_path));
  BDI_ASSIGN_OR_RETURN(BdsWriter writer, BdsWriter::Create(bds_path, options));
  LongCsvGrouper grouper(
      [&](const std::string& source,
          std::vector<std::pair<std::string, std::string>>&& fields) {
        return writer.Append(source, fields);
      });
  for (;;) {
    BDI_ASSIGN_OR_RETURN(bool more, stream.Next(&row));
    if (!more) break;
    BDI_RETURN_IF_ERROR(grouper.AddRow(row, stream.row_number()));
  }
  BDI_RETURN_IF_ERROR(grouper.Finish());
  BDI_RETURN_IF_ERROR(writer.Finish());
  ConvertStats stats;
  stats.records = writer.num_records();
  stats.fields = writer.num_fields();
  stats.row_groups = writer.num_groups();
  stats.csv_rows = stream.row_number();
  stats.csv_bytes = stream.bytes_read();
  stats.bds_bytes = writer.bytes_written();
  return stats;
}

}  // namespace bdi::storage
