#include "bdi/storage/crc32c.h"

#include <array>

namespace bdi::storage {

namespace {

// Byte-at-a-time table for the reflected Castagnoli polynomial. Built at
// compile time; 1 KiB, stays cache-resident across a whole-file verify.
constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace bdi::storage
