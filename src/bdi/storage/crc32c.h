#ifndef BDI_STORAGE_CRC32C_H_
#define BDI_STORAGE_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace bdi::storage {

/// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) over `data`.
/// `seed` chains partial computations: `Crc32c(b, Crc32c(a))` equals
/// `Crc32c(a + b)`. This is the checksum the `.bds` format stores for every
/// row group, dictionary segment, and footer (see docs/FILE_FORMAT.md);
/// CRC-32C is chosen over plain CRC-32 for its better burst-error detection
/// and because hardware-accelerated implementations exist should this
/// table-driven one ever show up in a profile.
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

/// Convenience overload over a string view.
inline uint32_t Crc32c(std::string_view data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

}  // namespace bdi::storage

#endif  // BDI_STORAGE_CRC32C_H_
