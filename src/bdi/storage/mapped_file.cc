#include "bdi/storage/mapped_file.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define BDI_STORAGE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define BDI_STORAGE_HAVE_MMAP 0
#endif

namespace bdi::storage {

MappedFile::~MappedFile() {
#if BDI_STORAGE_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      buffer_(std::move(other.buffer_)) {
  if (!mapped_) data_ = buffer_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
#if BDI_STORAGE_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
  data_ = other.data_;
  size_ = other.size_;
  mapped_ = other.mapped_;
  buffer_ = std::move(other.buffer_);
  if (!mapped_) data_ = buffer_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  return *this;
}

Result<MappedFile> MappedFile::Open(const std::string& path) {
#if BDI_STORAGE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("cannot stat " + path + ": " + std::strerror(err));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IOError(path + " is not a regular file");
  }
  MappedFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ == 0) {
    ::close(fd);
    return file;
  }
  void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  const int map_err = errno;
  ::close(fd);  // The mapping outlives the descriptor.
  if (addr == MAP_FAILED) {
    return Status::IOError("cannot mmap " + path + ": " +
                           std::strerror(map_err));
  }
  file.data_ = static_cast<const char*>(addr);
  file.mapped_ = true;
  return file;
#else
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open " + path);
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  MappedFile file;
  file.buffer_ = std::move(contents).str();
  file.data_ = file.buffer_.data();
  file.size_ = file.buffer_.size();
  return file;
#endif
}

}  // namespace bdi::storage
