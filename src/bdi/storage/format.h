#ifndef BDI_STORAGE_FORMAT_H_
#define BDI_STORAGE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bdi/common/result.h"
#include "bdi/common/status.h"

/// On-disk constants and column codecs for the `.bds` columnar dataset
/// format. The byte-level layout lives in docs/FILE_FORMAT.md; this header is
/// the single source of truth for the magic numbers, header sizes, and
/// per-column encodings both the writer and the reader use. Everything here
/// is deliberately dependency-free: the "compression" in `.bds` is the
/// integer codecs below (varint, zigzag-delta, run-length), not an external
/// block compressor.
namespace bdi::storage {

/// 8-byte file magic: "BDS1" followed by "\r\n\x1a\n". The trailing four
/// bytes detect text-mode transfer mangling (CR-LF translation, ^Z
/// truncation) the same way the PNG signature does.
inline constexpr unsigned char kBdsMagic[8] = {'B', 'D', 'S', '1',
                                               '\r', '\n', 0x1a, '\n'};

/// Current format version, written into the footer. Readers accept exactly
/// this version; see docs/FILE_FORMAT.md for the compatibility rules.
inline constexpr uint32_t kBdsVersion = 1;

/// Row-group header magic, "RGRP" little-endian.
inline constexpr uint32_t kRowGroupMagic = 0x50524752u;

/// Footer magic, "BDSF" little-endian.
inline constexpr uint32_t kFooterMagic = 0x46534442u;

/// Tail magic, "bds1" little-endian — last four bytes of every file.
inline constexpr uint32_t kTailMagic = 0x31736462u;

/// Fixed size of the end-of-file tail: u64 footer length, u32 footer CRC32C,
/// u32 tail magic.
inline constexpr size_t kTailBytes = 16;

/// Fixed size of a row-group header: u32 magic, u32 record count, u32 field
/// count, u32 segment count.
inline constexpr size_t kRowGroupHeaderBytes = 16;

/// Fixed size of a segment header: u8 column id, u8 encoding, u16 reserved,
/// u32 value count, u64 payload byte length.
inline constexpr size_t kSegmentHeaderBytes = 16;

/// Sentinel stored in the value column for fields whose value is kept as raw
/// bytes (too long to intern profitably) rather than a dictionary id.
inline constexpr uint32_t kRawValueId = 0xFFFFFFFFu;

/// Columns that make up a row group. Numeric values are the on-disk `u8`
/// column ids; they are stable across versions.
enum class ColumnId : uint8_t {
  kSource = 0,      ///< One source-dictionary id per record.
  kFieldCount = 1,  ///< One field count per record.
  kAttr = 2,        ///< One attribute-dictionary id per field.
  kValue = 3,       ///< One value-dictionary id (or kRawValueId) per field.
  kRawValues = 4,   ///< Length-prefixed raw bytes, one per kRawValueId field.
};

/// Per-column integer encodings. The writer measures each candidate and
/// keeps the smallest; readers must decode all of them. Numeric values are
/// the on-disk `u8` encoding ids.
enum class ColumnEncoding : uint8_t {
  kPlain = 0,        ///< Fixed-width little-endian u32.
  kVarint = 1,       ///< LEB128 varint per value.
  kDeltaVarint = 2,  ///< Zigzag delta from the previous value, varint coded.
  kRle = 3,          ///< (varint run-length, varint value) pairs.
  kRawBytes = 4,     ///< Opaque byte payload (kRawValues column only).
};

/// Human-readable name of a column id ("source", "attr", ...) for `bdi
/// inspect` and error messages; "?" for unknown ids.
std::string_view ColumnIdName(uint8_t id);

/// Human-readable name of an encoding ("plain", "rle", ...) for `bdi
/// inspect` and error messages; "?" for unknown ids.
std::string_view ColumnEncodingName(uint8_t encoding);

/// Appends `value` to `out` as little-endian fixed-width bytes.
void PutU32(uint32_t value, std::string* out);

/// Appends `value` to `out` as little-endian fixed-width bytes.
void PutU64(uint64_t value, std::string* out);

/// Appends `value` to `out` as a LEB128 varint (1-5 bytes for u32 range,
/// up to 10 for u64).
void PutVarint(uint64_t value, std::string* out);

/// Reads a little-endian u32 at `offset`; fails with kIOError if fewer than
/// 4 bytes remain. Advances `*offset` past the value on success.
Result<uint32_t> GetU32(std::string_view data, size_t* offset);

/// Reads a little-endian u64 at `offset`; fails with kIOError if fewer than
/// 8 bytes remain. Advances `*offset` past the value on success.
Result<uint64_t> GetU64(std::string_view data, size_t* offset);

/// Reads a LEB128 varint at `offset`; fails with kIOError on truncation or
/// a varint longer than 10 bytes. Advances `*offset` past the value.
Result<uint64_t> GetVarint(std::string_view data, size_t* offset);

/// Encodes `values` with `encoding`, appending the payload to `out`.
/// `kRawBytes` is not a u32 codec and is rejected with kInvalidArgument.
Status EncodeU32Column(const std::vector<uint32_t>& values,
                       ColumnEncoding encoding, std::string* out);

/// Picks the smallest of {plain, varint, delta-varint, rle} for `values`,
/// appends that payload to `out`, and returns the encoding chosen. Ties go
/// to the lower encoding id, so the choice is deterministic.
ColumnEncoding EncodeU32ColumnBest(const std::vector<uint32_t>& values,
                                   std::string* out);

/// Decodes exactly `count` u32 values from `payload` (which must be consumed
/// completely — trailing bytes are kIOError, like every other malformed
/// payload). `what` names the column in error messages.
Result<std::vector<uint32_t>> DecodeU32Column(std::string_view payload,
                                              uint8_t encoding, size_t count,
                                              std::string_view what);

}  // namespace bdi::storage

#endif  // BDI_STORAGE_FORMAT_H_
