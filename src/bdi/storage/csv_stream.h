#ifndef BDI_STORAGE_CSV_STREAM_H_
#define BDI_STORAGE_CSV_STREAM_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bdi/common/result.h"
#include "bdi/common/status.h"

namespace bdi::storage {

/// Streams CSV rows from a file in fixed-size chunks, so converting a
/// larger-than-memory CSV to `.bds` holds only one chunk, one row, and the
/// current record group in RAM. The row boundary machine mirrors
/// `bdi::ParseCsv` exactly — quoted fields span newlines, `\r` outside
/// quotes is ignored, blank lines are skipped, quotes open only at field
/// start — and each row's bytes are handed to `bdi::ParseCsvRow`, so a file
/// is accepted or rejected exactly as the in-memory parser would accept or
/// reject it (the storage fuzz test pins this parity on hostile inputs).
/// Move-only; the underlying file is closed in the destructor.
class CsvRowStream {
 public:
  /// Opens `path` for streaming. Fails with kIOError if it cannot be opened.
  static Result<CsvRowStream> Open(const std::string& path);

  CsvRowStream() = default;

  /// Closes the underlying file; moves transfer ownership of the handle
  /// and the parse position.
  ~CsvRowStream();
  CsvRowStream(CsvRowStream&& other) noexcept;
  CsvRowStream& operator=(CsvRowStream&& other) noexcept;
  CsvRowStream(const CsvRowStream&) = delete;
  CsvRowStream& operator=(const CsvRowStream&) = delete;

  /// Reads the next row into `*row`. Returns true when a row was produced,
  /// false at end of file. Malformed rows (unterminated quotes, garbage
  /// after a closing quote) yield an InvalidArgument naming the line the
  /// row started on; read failures yield kIOError.
  Result<bool> Next(std::vector<std::string>* row);

  /// 1-based CSV row number of the last row returned by Next (blank lines
  /// do not count, matching ParseCsv's row indexing).
  size_t row_number() const { return row_number_; }

  /// Total bytes consumed from the file so far.
  uint64_t bytes_read() const { return bytes_read_; }

 private:
  // Mirrors ParseCsv's (in_quotes, closed_quote, current.empty()) states.
  enum class State : uint8_t {
    kFieldStart,  // outside quotes, current field still empty
    kUnquoted,    // outside quotes, current field has bytes
    kQuoted,      // inside a quoted field
    kQuotedEnd,   // a quoted field just closed; only , \r \n may follow
  };

  Status Fill();  // Reads the next chunk; sets eof_ at end of file.

  std::FILE* file_ = nullptr;
  std::string path_;
  std::string chunk_;     // Current chunk of file bytes.
  size_t pos_ = 0;        // Scan position within chunk_.
  bool eof_ = false;
  std::string row_;       // Bytes of the row being assembled.
  State state_ = State::kFieldStart;
  bool quote_pending_ = false;  // Saw '"' in kQuoted; next byte decides.
  bool row_has_any_ = false;    // Row is non-blank (field, char, or quote).
  size_t line_ = 1;
  size_t row_start_line_ = 1;
  size_t row_number_ = 0;
  uint64_t bytes_read_ = 0;
};

}  // namespace bdi::storage

#endif  // BDI_STORAGE_CSV_STREAM_H_
