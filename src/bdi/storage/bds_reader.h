#ifndef BDI_STORAGE_BDS_READER_H_
#define BDI_STORAGE_BDS_READER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bdi/common/result.h"
#include "bdi/common/status.h"
#include "bdi/model/dataset.h"
#include "bdi/model/validate.h"
#include "bdi/storage/format.h"
#include "bdi/storage/mapped_file.h"

namespace bdi::storage {

/// Footer metadata for one dictionary segment (source, attribute, or value
/// names).
struct BdsDictMeta {
  uint64_t offset = 0;  ///< Byte offset of the segment in the file.
  uint64_t bytes = 0;   ///< Segment length in bytes.
  uint32_t count = 0;   ///< Number of entries.
  uint32_t crc = 0;     ///< CRC-32C of the segment bytes.
};

/// Footer metadata for one row group.
struct BdsRowGroupMeta {
  uint64_t offset = 0;       ///< Byte offset of the group in the file.
  uint64_t bytes = 0;        ///< Group length (header + segments).
  uint32_t num_records = 0;  ///< Records in this group.
  uint32_t num_fields = 0;   ///< Fields in this group.
  uint32_t crc = 0;          ///< CRC-32C of the group bytes.
};

/// Reads `.bds` files written by BdsWriter. `Open` memory-maps the file and
/// parses only the footer — row groups and dictionaries are touched lazily,
/// so opening a huge file is cheap and `ReadHead` faults in just the groups
/// it needs (the `bdi.storage.row_groups.read` counter test pins this).
/// Every malformed input — truncation, bit flips, corrupt offsets, version
/// skew — is rejected with a Status; the reader never aborts. Move-only.
class BdsReader {
 public:
  /// Maps `path` and validates magic, tail, and footer (including the
  /// footer checksum and all offset bounds). Does not read row groups.
  static Result<BdsReader> Open(const std::string& path);

  BdsReader() = default;
  BdsReader(BdsReader&&) = default;
  BdsReader& operator=(BdsReader&&) = default;
  BdsReader(const BdsReader&) = delete;
  BdsReader& operator=(const BdsReader&) = delete;

  /// Format version from the footer (always kBdsVersion once Open accepts).
  uint32_t format_version() const { return version_; }

  /// Records-per-group the file was written with.
  uint32_t records_per_group() const { return records_per_group_; }

  /// Total records in the file (from the footer; no decoding needed).
  uint64_t num_records() const { return num_records_; }

  /// Total fields in the file — equal to the long-CSV data row count.
  uint64_t num_fields() const { return num_fields_; }

  /// File size in bytes.
  size_t file_bytes() const { return file_.size(); }

  /// Row-group directory from the footer.
  const std::vector<BdsRowGroupMeta>& row_groups() const { return groups_; }

  /// Source dictionary metadata.
  const BdsDictMeta& source_dict() const { return dicts_[0]; }

  /// Attribute dictionary metadata.
  const BdsDictMeta& attr_dict() const { return dicts_[1]; }

  /// Value dictionary metadata.
  const BdsDictMeta& value_dict() const { return dicts_[2]; }

  /// Raw bytes of one row group (for `bdi inspect`'s encoding breakdown).
  std::string_view group_bytes(const BdsRowGroupMeta& meta) const {
    return file_.data().substr(meta.offset, meta.bytes);
  }

  /// Decodes the whole file into a Dataset identical — id for id — to what
  /// `ReadDatasetCsv` would build from the CSV the file was converted from.
  Result<Dataset> ReadAll();

  /// Decodes only the row groups covering the first `max_records` records
  /// (plus the dictionaries); later groups are never touched.
  Result<Dataset> ReadHead(size_t max_records);

  /// Decodes all records but materializes only fields whose attribute name
  /// is in `keep_attrs`. All sources and attributes are still registered in
  /// dictionary order, so ids match a full read; only field payloads are
  /// dropped. Excluded attributes are counted per group in
  /// `bdi.storage.columns.skipped`. Unknown names in `keep_attrs` are
  /// ignored.
  Result<Dataset> ReadProjected(const std::vector<std::string>& keep_attrs);

  /// Checksum fast path: CRC-verifies every row group and dictionary
  /// against the footer without decoding or re-parsing anything. Each clean
  /// group counts in `bdi.storage.checksum.fast_path`; mismatches become
  /// report issues. This is what `bdi validate` runs on `.bds` files.
  ValidationReport VerifyChecksums() const;

 private:
  struct DecodedGroup {
    std::vector<uint32_t> sources;
    std::vector<uint32_t> field_counts;
    std::vector<uint32_t> attrs;
    std::vector<uint32_t> values;
    std::vector<std::string_view> raw_values;
  };

  Status ParseFooter(std::string_view footer);
  Status EnsureDicts();
  Status DecodeDict(const BdsDictMeta& meta, std::string_view what,
                    std::vector<std::string>* names) const;
  Status DecodeGroup(const BdsRowGroupMeta& meta, DecodedGroup* out) const;
  Result<Dataset> Read(uint64_t max_records,
                       const std::vector<std::string>* keep_attrs);

  MappedFile file_;
  std::string path_;
  uint32_t version_ = 0;
  uint32_t records_per_group_ = 0;
  uint64_t num_records_ = 0;
  uint64_t num_fields_ = 0;
  BdsDictMeta dicts_[3];
  std::vector<BdsRowGroupMeta> groups_;

  bool dicts_loaded_ = false;
  std::vector<std::string> source_names_;
  std::vector<std::string> attr_names_;
  std::vector<std::string> value_names_;
};

/// Opens `path` and runs the checksum fast path, folding open errors (bad
/// magic, truncated tail, corrupt footer) into the report as file-level
/// issues instead of failing — mirroring ValidateDatasetCsv's
/// collect-everything contract.
ValidationReport ValidateBdsFile(const std::string& path);

}  // namespace bdi::storage

#endif  // BDI_STORAGE_BDS_READER_H_
