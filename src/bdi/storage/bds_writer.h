#ifndef BDI_STORAGE_BDS_WRITER_H_
#define BDI_STORAGE_BDS_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bdi/common/result.h"
#include "bdi/common/status.h"
#include "bdi/model/dataset.h"
#include "bdi/storage/format.h"
#include "bdi/text/interner.h"

namespace bdi::storage {

/// Tuning knobs for writing a `.bds` file. The defaults are what `bdi
/// convert` uses; tests shrink `records_per_group` to force multi-group
/// files from small corpora.
struct BdsWriterOptions {
  /// Records per row group. Smaller groups mean finer-grained partial reads
  /// (`bdi head` decodes fewer records) at the cost of more headers.
  uint32_t records_per_group = 4096;

  /// Values at least this long are stored as raw bytes in the row group
  /// instead of being interned into the value dictionary, which keeps the
  /// dictionary (held in RAM while writing) bounded by distinct short
  /// values rather than by blob payloads.
  size_t raw_value_min_len = 256;
};

/// Streaming `.bds` writer: records go in one at a time, full row groups are
/// encoded and flushed immediately, and only the current group plus the
/// three dictionaries stay in memory — so conversion is out-of-core in the
/// record dimension. `Finish()` writes the dictionaries, footer, and tail;
/// a writer dropped without `Finish()` leaves an unreadable partial file
/// (every reader requires the tail). Move-only.
///
/// Dictionary ids are assigned in first-append order. Appending records in
/// `LongCsvGrouper` emission order therefore reproduces exactly the
/// source/attribute ids `ReadDatasetCsv` assigns, which is what makes the
/// CSV and `.bds` ingestion paths bitwise-equivalent downstream.
class BdsWriter {
 public:
  /// Opens `path` for writing and emits the file magic.
  static Result<BdsWriter> Create(const std::string& path,
                                  const BdsWriterOptions& options = {});

  BdsWriter() = default;

  /// Closes the file handle; a writer destroyed before `Finish()` leaves a
  /// partial file behind (no tail, so no reader will accept it). Moves
  /// transfer ownership of the handle and all buffered state.
  ~BdsWriter();
  BdsWriter(BdsWriter&& other) noexcept;
  BdsWriter& operator=(BdsWriter&& other) noexcept;
  BdsWriter(const BdsWriter&) = delete;
  BdsWriter& operator=(const BdsWriter&) = delete;

  /// Appends one record: its source name plus (attribute, value) pairs in
  /// field order. Flushes a row group to disk every `records_per_group`
  /// records.
  Status Append(
      const std::string& source,
      const std::vector<std::pair<std::string, std::string>>& fields);

  /// Flushes the final row group, writes dictionaries, footer, and tail,
  /// and closes the file. Call exactly once; Append after Finish fails.
  Status Finish();

  /// Records appended so far.
  uint64_t num_records() const { return num_records_; }

  /// Fields appended so far.
  uint64_t num_fields() const { return num_fields_; }

  /// Row groups flushed so far (the in-progress group is not counted).
  uint64_t num_groups() const { return groups_.size(); }

  /// Bytes written to the file so far.
  uint64_t bytes_written() const { return offset_; }

 private:
  struct GroupMeta {
    uint64_t offset = 0;
    uint64_t bytes = 0;
    uint32_t num_records = 0;
    uint32_t num_fields = 0;
    uint32_t crc = 0;
  };
  struct DictMeta {
    uint64_t offset = 0;
    uint64_t bytes = 0;
    uint32_t count = 0;
    uint32_t crc = 0;
  };

  Status WriteBytes(const std::string& bytes);
  Status FlushGroup();
  Status WriteDict(const text::TokenInterner& dict, DictMeta* meta);

  std::FILE* file_ = nullptr;
  std::string path_;
  BdsWriterOptions options_;
  uint64_t offset_ = 0;
  uint64_t num_records_ = 0;
  uint64_t num_fields_ = 0;
  bool finished_ = false;

  text::TokenInterner source_dict_;
  text::TokenInterner attr_dict_;
  text::TokenInterner value_dict_;

  // Column buffers for the in-progress row group.
  std::vector<uint32_t> group_sources_;
  std::vector<uint32_t> group_field_counts_;
  std::vector<uint32_t> group_attrs_;
  std::vector<uint32_t> group_values_;
  std::string group_raw_values_;
  uint32_t group_raw_count_ = 0;

  std::vector<GroupMeta> groups_;
};

/// Writes an in-memory Dataset as `.bds` (used by `bdi convert` in the
/// bds-to-bds and csv-export directions, and by tests).
Status WriteDatasetBds(const Dataset& dataset, const std::string& path,
                       const BdsWriterOptions& options = {});

/// What `ConvertCsvToBds` did, for logging and the ingestion benchmark.
struct ConvertStats {
  uint64_t records = 0;    ///< Records written.
  uint64_t fields = 0;     ///< Fields written.
  uint64_t row_groups = 0; ///< Row groups written.
  uint64_t csv_rows = 0;   ///< CSV rows consumed (including the header).
  uint64_t csv_bytes = 0;  ///< Bytes read from the CSV.
  uint64_t bds_bytes = 0;  ///< Bytes written to the `.bds`.
};

/// Streams a long-CSV corpus into a `.bds` file without materializing the
/// dataset: peak memory is one CSV chunk, one record group, and the
/// dictionaries. Accepts exactly the files `ReadDatasetCsv` accepts (same
/// grouping rules via LongCsvGrouper, same row-level error messages) and
/// the conversion is loss-free: reading the output reproduces the dataset
/// `ReadDatasetCsv` would build, id for id.
Result<ConvertStats> ConvertCsvToBds(const std::string& csv_path,
                                     const std::string& bds_path,
                                     const BdsWriterOptions& options = {});

}  // namespace bdi::storage

#endif  // BDI_STORAGE_BDS_WRITER_H_
