#include "bdi/storage/csv_stream.h"

#include <utility>

#include "bdi/common/csv.h"

namespace bdi::storage {

namespace {

constexpr size_t kChunkSize = 256 * 1024;

}  // namespace

CsvRowStream::~CsvRowStream() {
  if (file_ != nullptr) std::fclose(file_);
}

CsvRowStream::CsvRowStream(CsvRowStream&& other) noexcept { *this = std::move(other); }

CsvRowStream& CsvRowStream::operator=(CsvRowStream&& other) noexcept {
  if (this == &other) return *this;
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::exchange(other.file_, nullptr);
  path_ = std::move(other.path_);
  chunk_ = std::move(other.chunk_);
  pos_ = other.pos_;
  eof_ = other.eof_;
  row_ = std::move(other.row_);
  state_ = other.state_;
  quote_pending_ = other.quote_pending_;
  row_has_any_ = other.row_has_any_;
  line_ = other.line_;
  row_start_line_ = other.row_start_line_;
  row_number_ = other.row_number_;
  bytes_read_ = other.bytes_read_;
  return *this;
}

Result<CsvRowStream> CsvRowStream::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError("cannot open for read: " + path);
  }
  CsvRowStream stream;
  stream.file_ = file;
  stream.path_ = path;
  return stream;
}

Status CsvRowStream::Fill() {
  chunk_.resize(kChunkSize);
  const size_t n = std::fread(chunk_.data(), 1, chunk_.size(), file_);
  if (n < chunk_.size()) {
    if (std::ferror(file_) != 0) {
      return Status::IOError("read failed: " + path_);
    }
    eof_ = true;
  }
  chunk_.resize(n);
  pos_ = 0;
  bytes_read_ += n;
  return Status::OK();
}

Result<bool> CsvRowStream::Next(std::vector<std::string>* row) {
  auto emit = [&]() -> Result<bool> {
    Result<std::vector<std::string>> parsed = ParseCsvRow(row_);
    if (!parsed.ok()) {
      return Status::InvalidArgument("line " +
                                     std::to_string(row_start_line_) + ": " +
                                     parsed.status().message());
    }
    *row = std::move(parsed).value();
    row_.clear();
    row_has_any_ = false;
    state_ = State::kFieldStart;
    row_start_line_ = line_;
    ++row_number_;
    return true;
  };
  for (;;) {
    if (pos_ >= chunk_.size()) {
      if (eof_) break;
      BDI_RETURN_IF_ERROR(Fill());
      if (chunk_.empty()) break;
    }
    const char c = chunk_[pos_];
    if (quote_pending_) {
      // A '"' inside a quoted field: the next byte decides whether it is an
      // escaped quote ("") or the field's closing quote. This is the only
      // lookahead, deferred here so it works across chunk boundaries.
      quote_pending_ = false;
      if (c == '"') {
        row_.append("\"\"");
        ++pos_;
        continue;
      }
      row_.push_back('"');
      state_ = State::kQuotedEnd;
      continue;  // Reprocess c in kQuotedEnd.
    }
    ++pos_;
    switch (state_) {
      case State::kQuoted:
        if (c == '"') {
          quote_pending_ = true;
        } else {
          if (c == '\n') ++line_;
          row_.push_back(c);
        }
        break;
      case State::kQuotedEnd:
        if (c == ',') {
          row_.push_back(c);
          state_ = State::kFieldStart;
        } else if (c == '\r') {
          row_.push_back(c);
        } else if (c == '\n') {
          ++line_;
          return emit();
        } else {
          // ParseCsv rejects anything else here; keep scanning so the row
          // hands the same malformed prefix to ParseCsvRow, which rejects
          // it with the same accept/reject decision.
          row_.push_back(c);
          state_ = State::kUnquoted;
        }
        break;
      case State::kFieldStart:
        if (c == '"') {
          row_.push_back(c);
          state_ = State::kQuoted;
          row_has_any_ = true;
        } else if (c == ',') {
          row_.push_back(c);
          row_has_any_ = true;
        } else if (c == '\n') {
          ++line_;
          if (row_has_any_) return emit();
          row_.clear();  // Blank line: may still hold ignored '\r' bytes.
          row_start_line_ = line_;
        } else if (c == '\r') {
          row_.push_back(c);  // Ignored by ParseCsvRow; keeps field empty.
        } else {
          row_.push_back(c);
          state_ = State::kUnquoted;
          row_has_any_ = true;
        }
        break;
      case State::kUnquoted:
        if (c == ',') {
          row_.push_back(c);
          state_ = State::kFieldStart;
        } else if (c == '\n') {
          ++line_;
          return emit();
        } else {
          row_.push_back(c);  // '\r' and '"' are literal here, as in ParseCsv.
        }
        break;
    }
  }
  // End of file. A dangling quote becomes a closing quote (no byte follows);
  // an unterminated quoted field is reported by ParseCsvRow below.
  if (quote_pending_) {
    row_.push_back('"');
    state_ = State::kQuotedEnd;
    quote_pending_ = false;
  }
  if (state_ == State::kQuoted || row_has_any_) return emit();
  return false;
}

}  // namespace bdi::storage
