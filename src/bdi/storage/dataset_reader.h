#ifndef BDI_STORAGE_DATASET_READER_H_
#define BDI_STORAGE_DATASET_READER_H_

#include <optional>
#include <string>
#include <vector>

#include "bdi/common/result.h"
#include "bdi/common/status.h"
#include "bdi/model/dataset.h"
#include "bdi/storage/bds_reader.h"

namespace bdi::storage {

/// The two on-disk corpus formats the pipeline ingests.
enum class DatasetFormat {
  kCsv,  ///< Long CSV: `source,record,attribute,value` (text).
  kBds,  ///< Columnar binary `.bds` (docs/FILE_FORMAT.md).
};

/// "csv" or "bds", for CLI output.
const char* DatasetFormatName(DatasetFormat format);

/// Decides the format of `path` by its leading bytes: the 8-byte `.bds`
/// magic means kBds, anything else (including short files) is treated as
/// CSV. Only fails (kIOError) when the file cannot be opened at all.
Result<DatasetFormat> SniffDatasetFormat(const std::string& path);

/// Format-transparent corpus reader: sniffs `path` and dispatches to
/// `ReadDatasetCsv` or `BdsReader`, so every `--in` flag of the CLI accepts
/// either format. Both paths produce identical Datasets for equivalent
/// inputs (pinned by the storage equivalence test), so downstream stages
/// cannot tell the formats apart.
class DatasetReader {
 public:
  /// Sniffs the format; for `.bds` also maps the file and parses the
  /// footer (cheap — no row groups are read until a Read* call).
  static Result<DatasetReader> Open(const std::string& path);

  /// The format Open detected.
  DatasetFormat format() const { return format_; }

  /// The underlying BdsReader, or nullptr for CSV files (used by `bdi
  /// inspect` and `bdi validate`, which need footer metadata).
  BdsReader* bds() { return bds_.has_value() ? &*bds_ : nullptr; }

  /// Loads the whole corpus.
  Result<Dataset> ReadAll();

  /// Loads only the first `max_records` records. For `.bds` this decodes
  /// just the covering row groups; for CSV it streams rows and stops —
  /// neither path materializes the rest of the file's records.
  Result<Dataset> ReadHead(size_t max_records);

  /// Loads all records but keeps only fields named in `keep_attrs`, with
  /// source/attribute ids identical to a full read. For `.bds` excluded
  /// columns skip value materialization (counted in
  /// `bdi.storage.columns.skipped`); for CSV this is a post-parse filter —
  /// the text format has no columns to skip.
  Result<Dataset> ReadProjected(const std::vector<std::string>& keep_attrs);

 private:
  DatasetFormat format_ = DatasetFormat::kCsv;
  std::string path_;
  std::optional<BdsReader> bds_;
};

/// One-shot convenience: Open + ReadAll. The drop-in replacement for
/// `ReadDatasetCsv` call sites that should accept both formats.
Result<Dataset> ReadDatasetAuto(const std::string& path);

}  // namespace bdi::storage

#endif  // BDI_STORAGE_DATASET_READER_H_
