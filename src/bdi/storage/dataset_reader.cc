#include "bdi/storage/dataset_reader.h"

#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

#include "bdi/model/dataset_io.h"
#include "bdi/storage/csv_stream.h"
#include "bdi/storage/format.h"

namespace bdi::storage {

namespace {

// Streams a CSV corpus and stops after `max_records` complete records, so a
// head over a huge CSV reads only the leading chunks of the file.
Result<Dataset> ReadCsvHead(const std::string& path, size_t max_records) {
  BDI_ASSIGN_OR_RETURN(CsvRowStream stream, CsvRowStream::Open(path));
  std::vector<std::string> row;
  BDI_ASSIGN_OR_RETURN(bool has_header, stream.Next(&row));
  if (!has_header) {
    return Status::InvalidArgument(
        "expected header 'source,record,attribute,value' in " + path);
  }
  BDI_RETURN_IF_ERROR(LongCsvGrouper::CheckHeader(row, path));
  Dataset dataset;
  std::map<std::string, SourceId> sources;
  size_t emitted = 0;
  LongCsvGrouper grouper(
      [&](const std::string& source,
          std::vector<std::pair<std::string, std::string>>&& fields) {
        auto it = sources.find(source);
        if (it == sources.end()) {
          it = sources.emplace(source, dataset.AddSource(source)).first;
        }
        dataset.AddRecord(it->second, fields);
        ++emitted;
        return Status::OK();
      });
  while (emitted < max_records) {
    BDI_ASSIGN_OR_RETURN(bool more, stream.Next(&row));
    if (!more) {
      BDI_RETURN_IF_ERROR(grouper.Finish());
      break;
    }
    BDI_RETURN_IF_ERROR(grouper.AddRow(row, stream.row_number()));
  }
  // When the loop stopped because `emitted` hit the cap, the in-progress
  // record is deliberately dropped — the rest of the file is never read.
  return dataset;
}

// Post-parse projection for CSV: rebuilds the dataset with the same
// source/attribute interning order but only the kept fields.
Dataset ProjectDataset(const Dataset& full,
                       const std::vector<std::string>& keep_attrs) {
  Dataset projected;
  for (const SourceInfo& source : full.sources()) {
    projected.AddSource(source.name);
  }
  std::vector<char> keep(full.num_attrs(), 0);
  for (size_t a = 0; a < full.num_attrs(); ++a) {
    projected.InternAttr(full.attr_name(static_cast<AttrId>(a)));
  }
  for (const std::string& name : keep_attrs) {
    if (auto attr = full.FindAttr(name); attr.has_value()) {
      keep[static_cast<size_t>(*attr)] = 1;
    }
  }
  std::vector<Field> fields;
  for (const Record& record : full.records()) {
    fields.clear();
    for (const Field& field : record.fields) {
      if (keep[static_cast<size_t>(field.attr)] != 0) {
        fields.push_back(field);
      }
    }
    projected.AddRecord(record.source, fields);
  }
  return projected;
}

}  // namespace

const char* DatasetFormatName(DatasetFormat format) {
  return format == DatasetFormat::kBds ? "bds" : "csv";
}

Result<DatasetFormat> SniffDatasetFormat(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError("cannot open for read: " + path);
  }
  unsigned char head[sizeof(kBdsMagic)] = {};
  const size_t n = std::fread(head, 1, sizeof(head), file);
  std::fclose(file);
  if (n == sizeof(kBdsMagic) &&
      std::memcmp(head, kBdsMagic, sizeof(kBdsMagic)) == 0) {
    return DatasetFormat::kBds;
  }
  return DatasetFormat::kCsv;
}

Result<DatasetReader> DatasetReader::Open(const std::string& path) {
  BDI_ASSIGN_OR_RETURN(DatasetFormat format, SniffDatasetFormat(path));
  DatasetReader reader;
  reader.format_ = format;
  reader.path_ = path;
  if (format == DatasetFormat::kBds) {
    BDI_ASSIGN_OR_RETURN(BdsReader bds, BdsReader::Open(path));
    reader.bds_.emplace(std::move(bds));
  }
  return reader;
}

Result<Dataset> DatasetReader::ReadAll() {
  if (bds_.has_value()) return bds_->ReadAll();
  return ReadDatasetCsv(path_);
}

Result<Dataset> DatasetReader::ReadHead(size_t max_records) {
  if (bds_.has_value()) return bds_->ReadHead(max_records);
  return ReadCsvHead(path_, max_records);
}

Result<Dataset> DatasetReader::ReadProjected(
    const std::vector<std::string>& keep_attrs) {
  if (bds_.has_value()) return bds_->ReadProjected(keep_attrs);
  BDI_ASSIGN_OR_RETURN(Dataset full, ReadDatasetCsv(path_));
  return ProjectDataset(full, keep_attrs);
}

Result<Dataset> ReadDatasetAuto(const std::string& path) {
  BDI_ASSIGN_OR_RETURN(DatasetReader reader, DatasetReader::Open(path));
  return reader.ReadAll();
}

}  // namespace bdi::storage
