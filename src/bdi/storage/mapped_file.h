#ifndef BDI_STORAGE_MAPPED_FILE_H_
#define BDI_STORAGE_MAPPED_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "bdi/common/result.h"
#include "bdi/common/status.h"

namespace bdi::storage {

/// Read-only view of a whole file, memory-mapped where the platform supports
/// it (POSIX mmap) and read into an owned buffer otherwise. Mapping means
/// opening a multi-gigabyte `.bds` costs a few page faults, and readers that
/// touch only the footer plus selected row groups never fault in the rest —
/// the property the `bdi head` counter test asserts. Move-only; the mapping
/// (or buffer) is released in the destructor.
class MappedFile {
 public:
  /// Maps `path` read-only. Empty files are valid (zero-length view).
  /// Fails with kIOError if the file cannot be opened, stat'ed, or mapped.
  static Result<MappedFile> Open(const std::string& path);

  MappedFile() = default;

  /// Releases the mapping (or owned buffer); any `data()` views die with
  /// it. Moves transfer the mapping without remapping.
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// The file contents. Valid for the lifetime of this object.
  std::string_view data() const { return {data_, size_}; }

  /// File size in bytes.
  size_t size() const { return size_; }

  /// True when the view is backed by an mmap rather than an owned buffer.
  bool is_mapped() const { return mapped_; }

 private:
  const char* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::string buffer_;  // Owns the bytes when mmap is unavailable.
};

}  // namespace bdi::storage

#endif  // BDI_STORAGE_MAPPED_FILE_H_
