#include "bdi/synth/world.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>
#include <set>

#include "bdi/common/logging.h"
#include "bdi/common/string_util.h"

namespace bdi::synth {

using internal::EntityState;
using internal::SourceRecordState;
using internal::SourceState;
using internal::ValueFormat;

namespace {

constexpr int kCanonicalName = 0;
constexpr int kCanonicalId = 1;
constexpr int kCanonicalBase = 2;  // spec attrs start here

const char* const kNameAttrPool[] = {"name", "title", "product name",
                                     "model"};
const char* const kIdAttrPool[] = {"sku", "mpn", "id", "model number",
                                   "part number"};
const char* const kExtraTokens[] = {"new", "pro", "2013", "black", "bundle",
                                    "kit", "edition", "plus"};
const char* const kBrandStems[] = {"zor", "cal", "ven", "mira", "tek", "lum",
                                   "pax", "nor", "qui", "bel", "dra", "fen"};
const char* const kBrandEnds[] = {"ix", "on", "ar", "eo", "us", "ora"};

std::string Capitalize(std::string s) {
  if (!s.empty()) {
    s[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(s[0])));
  }
  return s;
}

/// Consonant skeleton ("weight" -> "wght"), max 5 chars; used as the
/// abbreviated synonym variant.
std::string ConsonantSkeleton(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (out.size() >= 5) break;
    char lc = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (lc == 'a' || lc == 'e' || lc == 'i' || lc == 'o' || lc == 'u' ||
        lc == ' ') {
      if (out.empty() && lc != ' ') out.push_back(lc);
      continue;
    }
    if (std::isalnum(static_cast<unsigned char>(lc)) != 0) out.push_back(lc);
  }
  if (out.empty()) out = name.substr(0, 2);
  return out;
}

}  // namespace

WorldSimulator::WorldSimulator(const WorldConfig& config)
    : config_(config), rng_(config.seed) {
  attrs_ = config_.attributes.empty() ? DefaultAttributes(config_.category)
                                      : config_.attributes;
  BDI_CHECK(!attrs_.empty());
  BDI_CHECK(config_.num_entities > 0);
  BDI_CHECK(config_.num_sources > 0);
  BDI_CHECK(config_.num_copiers >= 0 &&
            config_.num_copiers < config_.num_sources)
      << "need at least one independent source";
  BDI_CHECK(config_.num_deceitful >= 0 &&
            config_.num_deceitful <=
                config_.num_sources - config_.num_copiers)
      << "more deceitful sources than independent sources";

  // Brand pool shared by entity names.
  size_t num_brands = std::min<size_t>(12, 4 + attrs_.size());
  std::set<std::string> brand_set;
  while (brand_set.size() < num_brands) {
    std::string brand =
        Capitalize(std::string(kBrandStems[rng_.UniformInt(0, 11)]) +
                   kBrandEnds[rng_.UniformInt(0, 5)]);
    brand_set.insert(brand);
  }
  brands_.assign(brand_set.begin(), brand_set.end());

  BuildSynonyms();
  GenerateEntities(config_.num_entities);
  GenerateSources();
}

void WorldSimulator::BuildSynonyms() {
  attr_synonyms_.clear();
  attr_synonyms_.reserve(attrs_.size());
  for (const AttributeSpec& spec : attrs_) {
    std::vector<std::string> variants;
    variants.push_back(spec.name);
    std::vector<std::string> pool;
    if (!spec.units.empty() && !spec.units[0].first.empty()) {
      pool.push_back(spec.name + " (" + spec.units[0].first + ")");
    } else {
      pool.push_back(spec.name + " (spec)");
    }
    pool.push_back("item " + spec.name);
    pool.push_back(ConsonantSkeleton(spec.name));
    std::string compact = spec.name;
    compact.erase(std::remove(compact.begin(), compact.end(), ' '),
                  compact.end());
    if (compact != spec.name) pool.push_back(compact);
    pool.push_back(spec.name + " details");
    pool.push_back(config_.category + " " + spec.name);
    int want = std::max(0, config_.num_synonyms_per_attr);
    for (int i = 0; i < want && i < static_cast<int>(pool.size()); ++i) {
      variants.push_back(pool[i]);
    }
    attr_synonyms_.push_back(std::move(variants));
  }
}

std::string WorldSimulator::MakeEntityName(Rng* rng) {
  const std::string& brand =
      brands_[static_cast<size_t>(rng->UniformInt(
          0, static_cast<int64_t>(brands_.size()) - 1))];
  std::string model;
  model.push_back(static_cast<char>('A' + rng->UniformInt(0, 25)));
  model.push_back(static_cast<char>('A' + rng->UniformInt(0, 25)));
  model.push_back('-');
  model += std::to_string(rng->UniformInt(10, 9999));
  std::string name = brand + " " + model;
  if (rng->Bernoulli(0.5)) {
    name += " " + config_.category;
  }
  return name;
}

std::string WorldSimulator::DrawTrueValue(const AttributeSpec& spec,
                                          Rng* rng) const {
  if (spec.type == AttrType::kCategorical) {
    int k = static_cast<int>(rng->UniformInt(0, spec.domain_size - 1));
    return NormalizeAlnum(spec.name) + "_v" + std::to_string(k);
  }
  double v = rng->UniformDouble(spec.min_value, spec.max_value);
  return FormatDouble(v, 2);
}

std::vector<std::string> WorldSimulator::MakeFalsePool(
    const AttributeSpec& spec, const std::string& truth, Rng* rng) const {
  std::vector<std::string> pool;
  int want = std::max(1, spec.num_false_values);
  if (spec.type == AttrType::kCategorical) {
    want = std::min(want, spec.domain_size - 1);
    std::set<std::string> seen{truth};
    int guard = 0;
    while (static_cast<int>(pool.size()) < want && guard++ < 1000) {
      std::string candidate = DrawTrueValue(spec, rng);
      if (seen.insert(candidate).second) pool.push_back(candidate);
    }
    if (pool.empty()) {
      pool.push_back(NormalizeAlnum(spec.name) + "_vx");
    }
    return pool;
  }
  double base = 0.0;
  ParseLeadingDouble(truth, &base, nullptr);
  std::set<std::string> seen{truth};
  int guard = 0;
  while (static_cast<int>(pool.size()) < want && guard++ < 1000) {
    std::string candidate;
    if (rng->Bernoulli(0.5)) {
      // Near miss: small relative perturbation (rewards value-similarity-
      // aware fusion, as in AccuSim).
      double rel = rng->UniformDouble(0.02, 0.15);
      double sign = rng->Bernoulli(0.5) ? 1.0 : -1.0;
      candidate = FormatDouble(base * (1.0 + sign * rel), 2);
    } else {
      candidate = FormatDouble(
          rng->UniformDouble(spec.min_value, spec.max_value), 2);
    }
    if (seen.insert(candidate).second) pool.push_back(candidate);
  }
  if (pool.empty()) pool.push_back(FormatDouble(base + 1.0, 2));
  return pool;
}

void WorldSimulator::GenerateEntities(int count) {
  for (int i = 0; i < count; ++i) {
    EntityState entity;
    entity.name = MakeEntityName(&rng_);
    entity.identifier =
        config_.category.substr(0, 2) +
        std::to_string(100000 + static_cast<int>(entities_.size()));
    entity.values.resize(attrs_.size());
    entity.false_pools.resize(attrs_.size());
    for (size_t a = 0; a < attrs_.size(); ++a) {
      if (!rng_.Bernoulli(attrs_[a].presence_prob)) continue;
      entity.values[a] = DrawTrueValue(attrs_[a], &rng_);
      entity.false_pools[a] =
          MakeFalsePool(attrs_[a], entity.values[a], &rng_);
    }
    entities_.push_back(std::move(entity));
  }
}

std::vector<int> WorldSimulator::SampleEntities(size_t size, Rng* rng) const {
  size = std::min(size, entities_.size());
  ZipfDistribution zipf(entities_.size(), config_.entity_zipf_s);
  std::set<int> chosen;
  size_t guard = 0, max_attempts = size * 30 + 200;
  while (chosen.size() < size && guard++ < max_attempts) {
    chosen.insert(static_cast<int>(zipf.Sample(rng)));
  }
  // Fill any shortfall deterministically from the head.
  for (int e = 0; chosen.size() < size; ++e) chosen.insert(e);
  std::vector<int> out(chosen.begin(), chosen.end());
  rng->Shuffle(&out);
  return out;
}

std::string WorldSimulator::NoisyName(const std::string& name,
                                      Rng* rng) const {
  std::vector<std::string> tokens = SplitWhitespace(name);
  const NameNoiseConfig& noise = config_.name_noise;
  if (tokens.size() > 2 && rng->Bernoulli(noise.token_drop_prob)) {
    // Never drop the model token (index 1), which carries the identity.
    size_t victim = rng->Bernoulli(0.5) ? 0 : tokens.size() - 1;
    if (victim != 1) tokens.erase(tokens.begin() + victim);
  }
  if (rng->Bernoulli(noise.typo_prob) && !tokens.empty()) {
    std::string& token = tokens[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(tokens.size()) - 1))];
    if (!token.empty()) {
      size_t pos = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(token.size()) - 1));
      token[pos] = static_cast<char>('a' + rng->UniformInt(0, 25));
    }
  }
  if (rng->Bernoulli(noise.extra_token_prob)) {
    tokens.push_back(kExtraTokens[rng->UniformInt(0, 7)]);
  }
  return Join(tokens, " ");
}

std::string WorldSimulator::NoisyIdentifier(const std::string& id,
                                            Rng* rng) const {
  if (!rng->Bernoulli(config_.identifier_noise_prob) || id.empty()) {
    return id;
  }
  std::string out = id;
  size_t pos = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(out.size()) - 1));
  out[pos] = static_cast<char>('0' + rng->UniformInt(0, 9));
  return out;
}

void WorldSimulator::AddClaim(SourceState* source, SourceRecordState* record,
                              int entity, int attr_index, Rng* rng) {
  const EntityState& es = entities_[entity];
  const std::string& truth = es.values[attr_index];
  if (truth.empty()) return;  // entity has no value for this attribute

  // Copier path: take the original's current claim verbatim.
  if (source->copier && rng->Bernoulli(source->copy_rate)) {
    const SourceState& original = sources_[source->original];
    auto rec_it = original.entity_record.find(entity);
    if (rec_it != original.entity_record.end()) {
      const SourceRecordState& orec = original.records[rec_it->second];
      for (const auto& [a, value] : orec.claims) {
        if (a == attr_index) {
          record->claims.emplace_back(attr_index, value);
          record->copied.push_back(true);
          return;
        }
      }
    }
    // Original doesn't cover the item; fall through to independent.
  }

  // Deceit: systematic, self-consistent inflation of numeric values — a
  // lie, not a mistake, so it bypasses the accuracy/false-pool model.
  if (source->deceitful &&
      attrs_[attr_index].type == AttrType::kNumeric) {
    double base = 0.0;
    ParseLeadingDouble(truth, &base, nullptr);
    record->claims.emplace_back(
        attr_index,
        FormatDouble(base * (1.0 + config_.deceit_inflation), 2));
    record->copied.push_back(false);
    return;
  }

  std::string value;
  if (rng->Bernoulli(source->accuracy)) {
    value = truth;
  } else {
    const std::vector<std::string>& pool = es.false_pools[attr_index];
    value = pool[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
  }
  record->claims.emplace_back(attr_index, value);
  record->copied.push_back(false);
}

SourceRecordState WorldSimulator::MakeRecord(SourceState* source, int entity,
                                             Rng* rng) {
  SourceRecordState record;
  record.entity = entity;
  record.display_name = NoisyName(entities_[entity].name, rng);
  if (config_.publish_identifiers &&
      rng->Bernoulli(config_.identifier_presence_prob)) {
    record.identifier = NoisyIdentifier(entities_[entity].identifier, rng);
  }
  if (rng->Bernoulli(config_.related_products_prob) &&
      entities_.size() > 1) {
    int64_t how_many = rng->UniformInt(1, 3);
    for (int64_t i = 0; i < how_many; ++i) {
      int other = static_cast<int>(
          rng->UniformInt(0, static_cast<int64_t>(entities_.size()) - 1));
      if (other != entity) {
        record.related_ids.push_back(entities_[other].identifier);
      }
    }
  }
  for (int attr_index : source->published_attrs) {
    AddClaim(source, &record, entity, attr_index, rng);
  }
  return record;
}

void WorldSimulator::GenerateSources() {
  int num_independent = config_.num_sources - config_.num_copiers;
  for (int s = 0; s < config_.num_sources; ++s) {
    SourceState source;
    source.name = "source" + std::to_string(s) + ".example.com";
    source.copier = s >= num_independent;
    if (source.copier) {
      source.original =
          config_.copier_original >= 0 &&
                  config_.copier_original < num_independent
              ? config_.copier_original
              : static_cast<int>(rng_.UniformInt(0, num_independent - 1));
      source.copy_rate = config_.copy_rate;
      source.accuracy = rng_.UniformDouble(config_.copier_accuracy_min,
                                           config_.copier_accuracy_max);
    } else if (s == 0 && config_.source0_accuracy >= 0.0) {
      source.accuracy = config_.source0_accuracy;
    } else {
      source.accuracy = rng_.UniformDouble(config_.source_accuracy_min,
                                           config_.source_accuracy_max);
    }
    // Plant the liars in the head (sources 1..n) or the tail of the
    // independent range.
    if (!source.copier) {
      bool in_head_range = s >= 1 && s <= config_.num_deceitful;
      bool in_tail_range = s >= num_independent - config_.num_deceitful;
      if (config_.deceit_in_head ? in_head_range : in_tail_range) {
        source.deceitful = true;
      }
    }

    // Schema: a presence-weighted subset of the attributes.
    double frac =
        rng_.UniformDouble(config_.attr_subset_min, config_.attr_subset_max);
    int want = std::clamp(static_cast<int>(std::lround(
                              frac * static_cast<double>(attrs_.size()))),
                          1, static_cast<int>(attrs_.size()));
    std::vector<double> weights;
    weights.reserve(attrs_.size());
    for (const AttributeSpec& spec : attrs_) {
      weights.push_back(std::max(0.05, spec.presence_prob));
    }
    std::set<int> chosen;
    int guard = 0;
    while (static_cast<int>(chosen.size()) < want && guard++ < 10000) {
      chosen.insert(static_cast<int>(rng_.Categorical(weights)));
    }
    source.published_attrs.assign(chosen.begin(), chosen.end());

    // Raw names: canonical or synonym, possibly decorated; unique in-source.
    std::set<std::string> used;
    source.name_attr = kNameAttrPool[rng_.UniformInt(0, 3)];
    source.id_attr = kIdAttrPool[rng_.UniformInt(0, 4)];
    source.related_attr = "related products";
    used.insert(source.name_attr);
    used.insert(source.id_attr);
    used.insert(source.related_attr);
    for (int attr_index : source.published_attrs) {
      const std::vector<std::string>& variants = attr_synonyms_[attr_index];
      std::string raw;
      for (int attempt = 0; attempt < 8; ++attempt) {
        raw = variants[0];
        if (rng_.Bernoulli(config_.synonym_prob) && variants.size() > 1) {
          raw = variants[static_cast<size_t>(rng_.UniformInt(
              1, static_cast<int64_t>(variants.size()) - 1))];
        }
        if (rng_.Bernoulli(config_.decoration_prob)) {
          switch (rng_.UniformInt(0, 2)) {
            case 0:
              raw = "product " + raw;
              break;
            case 1:
              raw = "item " + raw;
              break;
            default:
              raw += " info";
          }
        }
        if (used.insert(raw).second) break;
        raw.clear();
      }
      if (raw.empty()) {
        raw = variants[0] + " #" + std::to_string(attr_index);
        used.insert(raw);
      }
      source.attr_names.push_back(raw);

      // Formatting style.
      ValueFormat format;
      const AttributeSpec& spec = attrs_[attr_index];
      if (rng_.Bernoulli(config_.format_variation_prob)) {
        if (spec.type == AttrType::kNumeric && spec.units.size() > 1) {
          format.unit_index = static_cast<int>(
              rng_.UniformInt(0, static_cast<int64_t>(spec.units.size()) - 1));
        }
        format.decimals = static_cast<int>(rng_.UniformInt(2, 3));
        format.uppercase =
            spec.type == AttrType::kCategorical && rng_.Bernoulli(0.4);
      }
      source.formats.push_back(format);
    }

    // Coverage.
    double coverage = std::max(
        config_.min_source_coverage,
        config_.head_source_coverage /
            std::pow(static_cast<double>(s + 1), config_.source_size_zipf_s));
    size_t size = std::max<size_t>(
        1, static_cast<size_t>(std::lround(
               coverage * static_cast<double>(entities_.size()))));
    std::vector<int> covered;
    if (source.copier) {
      // Copiers mostly mirror the original's catalogue.
      const SourceState& original = sources_[source.original];
      std::vector<int> original_entities;
      original_entities.reserve(original.records.size());
      for (const SourceRecordState& r : original.records) {
        original_entities.push_back(r.entity);
      }
      rng_.Shuffle(&original_entities);
      size_t from_original = std::min(
          original_entities.size(),
          static_cast<size_t>(std::lround(
              source.copy_rate * static_cast<double>(size))));
      std::set<int> chosen_entities(
          original_entities.begin(),
          original_entities.begin() + static_cast<long>(from_original));
      for (int e : SampleEntities(size, &rng_)) {
        if (chosen_entities.size() >= size) break;
        chosen_entities.insert(e);
      }
      covered.assign(chosen_entities.begin(), chosen_entities.end());
      rng_.Shuffle(&covered);
    } else {
      covered = SampleEntities(size, &rng_);
    }

    for (int entity : covered) {
      source.entity_record[entity] = static_cast<int>(source.records.size());
      source.records.push_back(MakeRecord(&source, entity, &rng_));
    }
    sources_.push_back(std::move(source));
  }
}

std::string WorldSimulator::FormatValue(const AttributeSpec& spec,
                                        const ValueFormat& format,
                                        const std::string& canonical) const {
  if (spec.type == AttrType::kCategorical) {
    return format.uppercase ? ToUpper(canonical) : canonical;
  }
  double base = 0.0;
  if (!ParseLeadingDouble(canonical, &base, nullptr)) {
    return canonical;
  }
  size_t unit = static_cast<size_t>(format.unit_index);
  double factor = 1.0;
  std::string suffix;
  if (unit < spec.units.size()) {
    factor = spec.units[unit].second;
    suffix = spec.units[unit].first;
  }
  std::string out = FormatDouble(base / factor, format.decimals);
  if (!suffix.empty()) {
    out += " " + suffix;
  }
  return out;
}

SyntheticWorld WorldSimulator::Snapshot() const {
  SyntheticWorld world;
  Dataset& dataset = world.dataset;
  GroundTruth& truth = world.truth;

  truth.canonical_attrs.push_back("name");
  truth.canonical_attrs.push_back("identifier");
  for (const AttributeSpec& spec : attrs_) {
    truth.canonical_attrs.push_back(spec.name);
  }
  truth.true_values.reserve(entities_.size());
  for (const EntityState& entity : entities_) {
    std::vector<std::string> values;
    values.reserve(kCanonicalBase + attrs_.size());
    values.push_back(entity.name);
    values.push_back(entity.identifier);
    for (const std::string& v : entity.values) values.push_back(v);
    truth.true_values.push_back(std::move(values));
  }

  // Map simulator source index -> dataset SourceId (alive only).
  std::vector<SourceId> dataset_id(sources_.size(), kInvalidSource);
  for (size_t s = 0; s < sources_.size(); ++s) {
    const SourceState& source = sources_[s];
    if (!source.alive) continue;
    SourceId sid = dataset.AddSource(source.name);
    dataset_id[s] = sid;
    truth.source_accuracy.push_back(source.accuracy);

    AttrId name_attr = dataset.InternAttr(source.name_attr);
    AttrId id_attr = dataset.InternAttr(source.id_attr);
    AttrId related_attr = dataset.InternAttr(source.related_attr);
    truth.canonical_of_source_attr[SourceAttr{sid, name_attr}] =
        kCanonicalName;
    truth.canonical_of_source_attr[SourceAttr{sid, id_attr}] = kCanonicalId;
    std::vector<AttrId> spec_attr_ids(source.attr_names.size());
    for (size_t i = 0; i < source.attr_names.size(); ++i) {
      spec_attr_ids[i] = dataset.InternAttr(source.attr_names[i]);
      truth.canonical_of_source_attr[SourceAttr{sid, spec_attr_ids[i]}] =
          kCanonicalBase + source.published_attrs[i];
    }

    for (const SourceRecordState& record : source.records) {
      std::vector<Field> fields;
      fields.push_back(Field{name_attr, record.display_name});
      if (!record.identifier.empty()) {
        fields.push_back(Field{id_attr, record.identifier});
      }
      if (!record.related_ids.empty()) {
        fields.push_back(Field{related_attr, Join(record.related_ids, " ")});
      }
      for (size_t c = 0; c < record.claims.size(); ++c) {
        const auto& [attr_index, canonical] = record.claims[c];
        // Locate the published slot for this attribute.
        size_t slot = 0;
        while (source.published_attrs[slot] != attr_index) ++slot;
        fields.push_back(
            Field{spec_attr_ids[slot],
                  FormatValue(attrs_[attr_index], source.formats[slot],
                              canonical)});
      }
      dataset.AddRecord(sid, std::move(fields));
      truth.entity_of_record.push_back(record.entity);
      for (size_t c = 0; c < record.claims.size(); ++c) {
        truth.claims.push_back(GroundTruth::TrueClaim{
            sid, record.entity, kCanonicalBase + record.claims[c].first,
            record.claims[c].second, record.copied[c]});
      }
    }
  }

  for (size_t s = 0; s < sources_.size(); ++s) {
    const SourceState& source = sources_[s];
    if (!source.alive) continue;
    if (source.deceitful && dataset_id[s] != kInvalidSource) {
      truth.deceitful_sources.push_back(dataset_id[s]);
    }
    if (!source.copier) continue;
    if (!sources_[source.original].alive) continue;
    truth.copy_edges.push_back(
        CopyEdge{dataset_id[s],
                 dataset_id[static_cast<size_t>(source.original)],
                 source.copy_rate});
  }
  return world;
}

size_t WorldSimulator::num_alive_sources() const {
  size_t n = 0;
  for (const SourceState& s : sources_) {
    if (s.alive) ++n;
  }
  return n;
}

void WorldSimulator::RedrawClaim(SourceState* source,
                                 SourceRecordState* record, size_t slot,
                                 Rng* rng) {
  int attr_index = record->claims[slot].first;
  const EntityState& es = entities_[record->entity];
  const std::string& truth = es.values[attr_index];
  if (source->copier && rng->Bernoulli(source->copy_rate)) {
    const SourceState& original = sources_[source->original];
    auto rec_it = original.entity_record.find(record->entity);
    if (rec_it != original.entity_record.end()) {
      for (const auto& [a, value] : original.records[rec_it->second].claims) {
        if (a == attr_index) {
          record->claims[slot].second = value;
          record->copied[slot] = true;
          return;
        }
      }
    }
  }
  if (source->deceitful &&
      attrs_[attr_index].type == AttrType::kNumeric) {
    double base = 0.0;
    ParseLeadingDouble(truth, &base, nullptr);
    record->claims[slot].second =
        FormatDouble(base * (1.0 + config_.deceit_inflation), 2);
  } else if (rng->Bernoulli(source->accuracy)) {
    record->claims[slot].second = truth;
  } else {
    const std::vector<std::string>& pool = es.false_pools[attr_index];
    record->claims[slot].second = pool[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
  }
  record->copied[slot] = false;
}

void WorldSimulator::Step(const TemporalConfig& temporal) {
  // 0. Display-name drift: rebrands and revision bumps. Existing records
  // keep the name they were rendered with.
  if (temporal.name_drift_rate > 0.0) {
    for (EntityState& entity : entities_) {
      if (!rng_.Bernoulli(temporal.name_drift_rate)) continue;
      std::vector<std::string> tokens = SplitWhitespace(entity.name);
      if (!tokens.empty() && rng_.Bernoulli(0.5)) {
        // Rebrand: the brand token changes (acquisition / white-label).
        tokens[0] = brands_[static_cast<size_t>(rng_.UniformInt(
            0, static_cast<int64_t>(brands_.size()) - 1))];
      } else {
        // Marketing suffix ("mk2", "mk3", ...).
        static const char* const kRevisions[] = {"mk2", "mk3", "v2", "plus"};
        tokens.push_back(kRevisions[rng_.UniformInt(0, 3)]);
      }
      entity.name = Join(tokens, " ");
    }
  }

  // 1. New entities appear.
  int births = static_cast<int>(std::lround(
      temporal.entity_birth_rate * static_cast<double>(config_.num_entities)));
  GenerateEntities(births);

  // 2. Truth drift: some values change; remember which items drifted.
  std::set<std::pair<int, int>> drifted;  // (entity, attr)
  for (size_t e = 0; e < entities_.size(); ++e) {
    EntityState& entity = entities_[e];
    for (size_t a = 0; a < attrs_.size(); ++a) {
      if (entity.values[a].empty()) continue;
      if (!rng_.Bernoulli(temporal.value_change_rate)) continue;
      entity.values[a] = DrawTrueValue(attrs_[a], &rng_);
      entity.false_pools[a] =
          MakeFalsePool(attrs_[a], entity.values[a], &rng_);
      drifted.emplace(static_cast<int>(e), static_cast<int>(a));
    }
  }

  // 3. Source churn. Independent sources are refreshed before copiers so
  // copied refreshes see up-to-date originals.
  std::vector<size_t> order;
  for (size_t s = 0; s < sources_.size(); ++s) {
    if (!sources_[s].copier) order.push_back(s);
  }
  for (size_t s = 0; s < sources_.size(); ++s) {
    if (sources_[s].copier) order.push_back(s);
  }
  for (size_t s : order) {
    SourceState& source = sources_[s];
    if (!source.alive) continue;
    if (rng_.Bernoulli(temporal.source_death_rate)) {
      source.alive = false;
      continue;
    }

    // 3a. Record death.
    std::vector<SourceRecordState> survivors;
    survivors.reserve(source.records.size());
    for (SourceRecordState& record : source.records) {
      if (!rng_.Bernoulli(temporal.record_death_rate)) {
        survivors.push_back(std::move(record));
      }
    }
    source.records = std::move(survivors);

    // 3b. Claim refresh on drifted items (stale with prob 1-refresh_prob).
    for (SourceRecordState& record : source.records) {
      for (size_t slot = 0; slot < record.claims.size(); ++slot) {
        if (drifted.count({record.entity, record.claims[slot].first}) == 0) {
          continue;
        }
        if (rng_.Bernoulli(temporal.refresh_prob)) {
          RedrawClaim(&source, &record, slot, &rng_);
        }
      }
    }

    // Rebuild the entity index after deaths (needed before births and by
    // copier claim lookups).
    source.entity_record.clear();
    for (size_t r = 0; r < source.records.size(); ++r) {
      source.entity_record[source.records[r].entity] = static_cast<int>(r);
    }

    // 3c. Record birth: cover so-far-uncovered entities.
    size_t births_here = static_cast<size_t>(std::lround(
        temporal.record_birth_rate *
        static_cast<double>(source.records.size() + 1)));
    if (births_here > 0) {
      std::vector<int> candidates =
          SampleEntities(births_here * 3 + 8, &rng_);
      size_t added = 0;
      for (int entity : candidates) {
        if (added >= births_here) break;
        if (source.entity_record.count(entity) > 0) continue;
        source.entity_record[entity] =
            static_cast<int>(source.records.size());
        source.records.push_back(MakeRecord(&source, entity, &rng_));
        ++added;
      }
    }
  }
}

SyntheticWorld GenerateWorld(const WorldConfig& config) {
  WorldSimulator simulator(config);
  return simulator.Snapshot();
}

TemporalCorpus GenerateTemporalCorpus(const WorldConfig& config,
                                      const TemporalConfig& temporal,
                                      int num_snapshots) {
  BDI_CHECK(num_snapshots >= 1);
  WorldSimulator simulator(config);
  TemporalCorpus corpus;
  corpus.num_snapshots = num_snapshots;
  std::map<std::string, SourceId> source_by_name;
  for (int t = 0; t < num_snapshots; ++t) {
    SyntheticWorld snapshot = simulator.Snapshot();
    // Re-intern the snapshot into the flattened corpus. Snapshot source
    // ids are compacted over alive sources, so sites are identified by
    // name across snapshots; records carry the snapshot index as time.
    for (const Record& record : snapshot.dataset.records()) {
      const std::string& site =
          snapshot.dataset.source(record.source).name;
      auto it = source_by_name.find(site);
      if (it == source_by_name.end()) {
        it = source_by_name
                 .emplace(site, corpus.dataset.AddSource(site))
                 .first;
      }
      std::vector<Field> fields;
      fields.reserve(record.fields.size());
      for (const Field& field : record.fields) {
        fields.push_back(
            Field{corpus.dataset.InternAttr(
                      snapshot.dataset.attr_name(field.attr)),
                  field.value});
      }
      corpus.dataset.AddRecord(it->second, std::move(fields));
      corpus.record_time.push_back(static_cast<double>(t));
      corpus.entity_of_record.push_back(
          snapshot.truth.entity_of_record[record.idx]);
    }
    if (t + 1 < num_snapshots) simulator.Step(temporal);
  }
  return corpus;
}

}  // namespace bdi::synth
