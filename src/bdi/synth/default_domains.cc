#include "bdi/synth/config.h"

namespace bdi::synth {

namespace {

AttributeSpec Categorical(std::string name, int domain, double presence) {
  AttributeSpec spec;
  spec.name = std::move(name);
  spec.type = AttrType::kCategorical;
  spec.domain_size = domain;
  spec.presence_prob = presence;
  return spec;
}

AttributeSpec Numeric(std::string name, double lo, double hi,
                      std::vector<std::pair<std::string, double>> units,
                      double presence) {
  AttributeSpec spec;
  spec.name = std::move(name);
  spec.type = AttrType::kNumeric;
  spec.min_value = lo;
  spec.max_value = hi;
  spec.units = std::move(units);
  spec.presence_prob = presence;
  return spec;
}

}  // namespace

std::vector<AttributeSpec> DefaultAttributes(const std::string& category) {
  if (category == "camera") {
    return {
        Categorical("brand", 12, 1.0),
        Numeric("resolution", 8, 50, {{"mp", 1.0}}, 0.95),
        Numeric("weight", 100, 1500, {{"g", 1.0}, {"oz", 28.35}}, 0.9),
        Numeric("screen size", 2.0, 4.0, {{"in", 1.0}, {"cm", 0.3937}}, 0.85),
        Categorical("color", 8, 0.8),
        Numeric("optical zoom", 1, 60, {{"x", 1.0}}, 0.7),
        Categorical("sensor type", 6, 0.6),
        Numeric("battery life", 100, 1200, {{"shots", 1.0}}, 0.4),
        Categorical("viewfinder", 4, 0.3),
        Numeric("burst rate", 1, 20, {{"fps", 1.0}}, 0.25),
    };
  }
  if (category == "headphone") {
    return {
        Categorical("brand", 15, 1.0),
        Categorical("type", 5, 0.95),
        Numeric("impedance", 16, 600, {{"ohm", 1.0}}, 0.8),
        Numeric("weight", 50, 500, {{"g", 1.0}, {"oz", 28.35}}, 0.85),
        Categorical("color", 10, 0.8),
        Numeric("driver size", 20, 70, {{"mm", 1.0}, {"cm", 10.0}}, 0.6),
        Categorical("connectivity", 4, 0.7),
        Numeric("cable length", 0.8, 3.0, {{"m", 1.0}, {"ft", 0.3048}}, 0.4),
    };
  }
  if (category == "tv") {
    return {
        Categorical("brand", 10, 1.0),
        Numeric("screen size", 24, 85, {{"in", 1.0}, {"cm", 0.3937}}, 0.98),
        Categorical("resolution", 5, 0.95),
        Numeric("refresh rate", 50, 240, {{"hz", 1.0}}, 0.8),
        Numeric("weight", 3, 45, {{"kg", 1.0}, {"lb", 0.4536}}, 0.8),
        Categorical("panel type", 5, 0.6),
        Numeric("hdmi ports", 1, 6, {{"", 1.0}}, 0.7),
        Categorical("smart platform", 6, 0.5),
    };
  }
  if (category == "stock") {
    // Mirrors the Deep-Web study's stock domain: mostly numeric,
    // frequently-changing values.
    return {
        Numeric("last price", 1, 900, {{"usd", 1.0}}, 1.0),
        Numeric("open price", 1, 900, {{"usd", 1.0}}, 0.95),
        Numeric("volume", 1e4, 5e7, {{"", 1.0}}, 0.95),
        Numeric("market cap", 1e8, 5e11, {{"usd", 1.0}}, 0.85),
        Numeric("pe ratio", 2, 80, {{"", 1.0}}, 0.8),
        Numeric("dividend yield", 0, 9, {{"%", 1.0}}, 0.6),
        Numeric("52wk high", 1, 999, {{"usd", 1.0}}, 0.75),
        Numeric("52wk low", 1, 900, {{"usd", 1.0}}, 0.75),
        Numeric("eps", 0.1, 40, {{"usd", 1.0}}, 0.7),
    };
  }
  if (category == "flight") {
    return {
        Categorical("airline", 12, 1.0),
        Categorical("departure gate", 40, 0.8),
        Categorical("arrival gate", 40, 0.8),
        Numeric("scheduled departure", 0, 1439, {{"min", 1.0}}, 1.0),
        Numeric("actual departure", 0, 1439, {{"min", 1.0}}, 0.9),
        Numeric("scheduled arrival", 0, 1439, {{"min", 1.0}}, 1.0),
        Numeric("actual arrival", 0, 1439, {{"min", 1.0}}, 0.9),
        Categorical("status", 5, 0.95),
    };
  }
  if (category == "book") {
    // The AbeBooks-style fusion scenario: author lists are the
    // error-prone attribute.
    return {
        Categorical("author", 200, 1.0),
        Categorical("publisher", 30, 0.9),
        Numeric("publication year", 1950, 2013, {{"", 1.0}}, 0.9),
        Numeric("pages", 40, 1500, {{"", 1.0}}, 0.7),
        Categorical("format", 5, 0.8),
        Categorical("language", 8, 0.6),
        Numeric("list price", 5, 250, {{"usd", 1.0}}, 0.7),
    };
  }
  // Generic fallback.
  return {
      Categorical("brand", 10, 1.0),
      Categorical("color", 8, 0.8),
      Numeric("weight", 10, 5000, {{"g", 1.0}, {"oz", 28.35}}, 0.85),
      Numeric("size", 1, 100, {{"cm", 1.0}, {"in", 2.54}}, 0.8),
      Categorical("material", 12, 0.5),
      Numeric("price", 1, 2000, {{"usd", 1.0}}, 0.9),
  };
}

}  // namespace bdi::synth
