#ifndef BDI_SYNTH_CONFIG_H_
#define BDI_SYNTH_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bdi/model/dataset.h"
#include "bdi/model/types.h"

namespace bdi::synth {

/// How an attribute's values are drawn.
enum class AttrType {
  kCategorical,  ///< values from a finite named domain (e.g. color)
  kNumeric,      ///< real values in [min_value, max_value] with units
};

/// One canonical attribute of the generated domain (e.g. "weight").
struct AttributeSpec {
  std::string name;
  AttrType type = AttrType::kCategorical;

  /// Categorical: number of distinct domain values ("<name>_v<i>").
  int domain_size = 20;

  /// Numeric range (inclusive) for the true values.
  double min_value = 1.0;
  double max_value = 1000.0;

  /// Numeric unit suffixes with conversion factor to the first (base) unit,
  /// e.g. {{"cm", 1.0}, {"in", 2.54}} — a value stored as x base units may
  /// be published as x/factor with the alternate suffix.
  std::vector<std::pair<std::string, double>> units;

  /// Probability an entity has a value for this attribute at all
  /// (tail attributes have low presence).
  double presence_prob = 0.9;

  /// Distinct wrong values available per item; error draws pick uniformly
  /// among them, so false values repeat across sources (the Accu/AccuCopy
  /// "n false values" assumption).
  int num_false_values = 10;
};

/// Noise applied to the record's display name; controls linkage difficulty.
struct NameNoiseConfig {
  double typo_prob = 0.05;         ///< one character edit in some token
  double token_drop_prob = 0.05;   ///< drop a non-brand token
  double extra_token_prob = 0.15;  ///< append a marketing token
};

/// Full description of a synthetic integration world.
struct WorldConfig {
  uint64_t seed = 42;
  std::string category = "camera";

  int num_entities = 1000;
  int num_sources = 20;

  /// Popularity skew of entities (head entities appear in many sources).
  double entity_zipf_s = 1.0;

  /// Coverage of the rank-r source decays as head_coverage / (r+1)^skew.
  double head_source_coverage = 0.8;
  double min_source_coverage = 0.01;
  double source_size_zipf_s = 1.0;

  // --- Variety: schema heterogeneity ---
  /// Probability a source renames an attribute to a synonym variant.
  double synonym_prob = 0.5;
  /// Number of synonym variants generated per canonical attribute.
  int num_synonyms_per_attr = 4;
  /// Probability the (possibly synonymized) name gets a decoration
  /// ("product weight", "weight (details)").
  double decoration_prob = 0.2;
  /// Each source publishes a uniform fraction of the attributes in
  /// [attr_subset_min, attr_subset_max].
  double attr_subset_min = 0.6;
  double attr_subset_max = 1.0;

  // --- Variety: value heterogeneity ---
  /// Probability a source uses a non-base unit / alternate formatting.
  double format_variation_prob = 0.4;

  // --- Veracity: honest errors ---
  double source_accuracy_min = 0.7;
  double source_accuracy_max = 0.95;

  // --- Veracity: copiers ---
  /// The last `num_copiers` sources copy from an independent source.
  int num_copiers = 0;
  /// Probability a copier's item is copied rather than independent.
  double copy_rate = 0.8;
  /// Accuracy of a copier's independently-provided values.
  double copier_accuracy_min = 0.5;
  double copier_accuracy_max = 0.8;
  /// Independent-source index every copier copies; -1 = each copier picks
  /// uniformly at random. Pinning all copiers to one source reproduces the
  /// classic "one wrong value propagates" fusion scenario.
  int copier_original = -1;
  /// Accuracy override for source 0 (the head source); negative = draw
  /// from [source_accuracy_min, source_accuracy_max] like everyone else.
  double source0_accuracy = -1.0;

  // --- Veracity: deceit ---
  /// Number of *deceitful* independent sources (taken from the end of the
  /// independent range, before copiers): they systematically inflate every
  /// numeric value by `deceit_inflation` — self-consistent lies, unlike
  /// the uniform honest-error model, and invisible to copy detection.
  int num_deceitful = 0;
  double deceit_inflation = 0.25;
  /// false: liars are the smallest independent sources (tail). true: the
  /// largest ones after source 0 (head) — far more damaging, since their
  /// claims dominate many items.
  bool deceit_in_head = false;

  // --- Identifiers (the linkage opportunity) ---
  bool publish_identifiers = true;
  /// Probability a record publishes the identifier attribute.
  double identifier_presence_prob = 0.9;
  /// Probability a published identifier has a typo.
  double identifier_noise_prob = 0.02;
  /// Probability a record also lists identifiers of related entities
  /// (the "suggested products" hazard for id-based blocking).
  double related_products_prob = 0.0;

  NameNoiseConfig name_noise;

  /// Canonical attributes. Empty means DefaultAttributes(category).
  std::vector<AttributeSpec> attributes;
};

/// Per-snapshot churn for velocity experiments (E11).
struct TemporalConfig {
  int num_snapshots = 12;
  /// Fraction of a source's records that disappear per step.
  double record_death_rate = 0.08;
  /// Fraction of new records (of so-far-uncovered or new entities) added
  /// per step, relative to current source size.
  double record_birth_rate = 0.08;
  /// Probability a source disappears entirely at a step.
  double source_death_rate = 0.03;
  /// New entities appearing per step, relative to num_entities.
  double entity_birth_rate = 0.02;
  /// Probability a true value drifts per step (price-like volatility).
  double value_change_rate = 0.10;
  /// Probability a source refreshes its claim on a drifted item (otherwise
  /// it keeps publishing the stale value).
  double refresh_prob = 0.5;
  /// Probability an entity's display name evolves per step (rebrands,
  /// revision suffixes). Existing pages keep the old name; pages rendered
  /// after the drift use the new one — the temporal-linkage challenge.
  double name_drift_rate = 0.0;
};

/// A multi-snapshot corpus flattened into one dataset with per-record
/// timestamps — the input shape of temporal record linkage.
struct TemporalCorpus {
  Dataset dataset;
  /// Snapshot index (0-based) each record was observed in.
  std::vector<double> record_time;
  std::vector<EntityId> entity_of_record;
  int num_snapshots = 0;
};

/// Simulates `num_snapshots` snapshots under `temporal` churn and flattens
/// them into one timestamped corpus.
TemporalCorpus GenerateTemporalCorpus(const WorldConfig& config,
                                      const TemporalConfig& temporal,
                                      int num_snapshots);

/// Returns the built-in attribute specs for `category`; recognized
/// categories: "camera", "headphone", "tv", "stock", "flight", "book".
/// Unknown categories fall back to a generic spec set.
std::vector<AttributeSpec> DefaultAttributes(const std::string& category);

}  // namespace bdi::synth

#endif  // BDI_SYNTH_CONFIG_H_
