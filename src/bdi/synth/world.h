#ifndef BDI_SYNTH_WORLD_H_
#define BDI_SYNTH_WORLD_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdi/common/random.h"
#include "bdi/model/dataset.h"
#include "bdi/model/ground_truth.h"
#include "bdi/synth/config.h"

namespace bdi::synth {

/// A materialized snapshot: the multi-source corpus plus everything needed
/// to evaluate against it.
struct SyntheticWorld {
  Dataset dataset;
  GroundTruth truth;
};

namespace internal {

/// Rendering style a source applies to one published attribute.
struct ValueFormat {
  int unit_index = 0;  ///< index into AttributeSpec::units
  int decimals = 2;
  bool uppercase = false;
};

/// One record a source publishes (pre-materialized so snapshots are
/// deterministic functions of simulator state).
struct SourceRecordState {
  int entity = -1;
  std::string display_name;
  std::string identifier;             ///< "" when not published
  std::vector<std::string> related_ids;
  /// (attribute-spec index, canonical claimed value)
  std::vector<std::pair<int, std::string>> claims;
  /// Parallel to `claims`: whether the value was copied from the original.
  std::vector<bool> copied;
};

struct EntityState {
  std::string name;
  std::string identifier;
  /// Canonical true value per attribute-spec index ("" = absent).
  std::vector<std::string> values;
  /// Wrong-value pool per attribute-spec index.
  std::vector<std::vector<std::string>> false_pools;
};

struct SourceState {
  std::string name;
  bool alive = true;
  bool copier = false;
  bool deceitful = false;  ///< inflates numeric claims systematically
  int original = -1;     ///< index of the copied source (copiers only)
  double copy_rate = 0.0;
  double accuracy = 0.9;  ///< accuracy of independent claims

  std::vector<int> published_attrs;       ///< attribute-spec indices
  std::vector<std::string> attr_names;    ///< raw published names (parallel)
  std::vector<ValueFormat> formats;       ///< parallel
  std::string name_attr;
  std::string id_attr;
  std::string related_attr;

  std::vector<SourceRecordState> records;
  /// entity -> index into `records`; maintained across churn steps.
  std::unordered_map<int, int> entity_record;
};

}  // namespace internal

/// Generates and evolves a synthetic integration world. Construction builds
/// the initial state; `Snapshot()` materializes the current state as a
/// Dataset + GroundTruth; `Step()` applies one unit of churn (velocity).
///
/// All randomness flows from the config seed, so identical configs produce
/// identical worlds.
class WorldSimulator {
 public:
  explicit WorldSimulator(const WorldConfig& config);

  WorldSimulator(const WorldSimulator&) = delete;
  WorldSimulator& operator=(const WorldSimulator&) = delete;

  /// Materializes the current state. Dead sources and records are omitted.
  SyntheticWorld Snapshot() const;

  /// Applies one step of churn: source/record death and birth, new
  /// entities, and truth-value drift with lagged source refresh.
  void Step(const TemporalConfig& temporal);

  const WorldConfig& config() const { return config_; }
  size_t num_entities() const { return entities_.size(); }
  size_t num_alive_sources() const;

 private:
  void GenerateEntities(int count);
  void GenerateSources();
  void BuildSynonyms();
  /// Re-draws the claim in `record->claims[slot]` after truth drift.
  void RedrawClaim(internal::SourceState* source,
                   internal::SourceRecordState* record, size_t slot,
                   Rng* rng);
  std::string MakeEntityName(Rng* rng);
  std::string NoisyName(const std::string& name, Rng* rng) const;
  std::string NoisyIdentifier(const std::string& id, Rng* rng) const;
  std::string DrawTrueValue(const AttributeSpec& spec, Rng* rng) const;
  std::vector<std::string> MakeFalsePool(const AttributeSpec& spec,
                                         const std::string& truth,
                                         Rng* rng) const;
  /// Draws the canonical value source `s` claims for (entity, attr_index),
  /// applying the copier/error model; appends to the record state.
  void AddClaim(internal::SourceState* source,
                internal::SourceRecordState* record, int entity,
                int attr_index, Rng* rng);
  internal::SourceRecordState MakeRecord(internal::SourceState* source,
                                         int entity, Rng* rng);
  /// Chooses a set of covered entities for a source of the given size.
  std::vector<int> SampleEntities(size_t size, Rng* rng) const;
  std::string FormatValue(const AttributeSpec& spec,
                          const internal::ValueFormat& format,
                          const std::string& canonical) const;

  WorldConfig config_;
  Rng rng_;
  std::vector<AttributeSpec> attrs_;
  /// Synonym name variants per attribute (index 0 is the canonical name).
  std::vector<std::vector<std::string>> attr_synonyms_;
  std::vector<std::string> brands_;
  std::vector<internal::EntityState> entities_;
  std::vector<internal::SourceState> sources_;
};

/// Convenience: one-shot world generation (initial snapshot only).
SyntheticWorld GenerateWorld(const WorldConfig& config);

}  // namespace bdi::synth

#endif  // BDI_SYNTH_WORLD_H_
