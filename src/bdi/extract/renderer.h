#ifndef BDI_EXTRACT_RENDERER_H_
#define BDI_EXTRACT_RENDERER_H_

#include <cstdint>
#include <vector>

#include "bdi/common/random.h"
#include "bdi/extract/page.h"
#include "bdi/model/dataset.h"

namespace bdi::extract {

struct RendererConfig {
  uint64_t seed = 19;
  /// Probability a source uses a weak template (prose pages the wrapper
  /// cannot parse structurally).
  double weak_template_prob = 0.0;
  /// Add a constant boilerplate row ("shipping: free...") that a naive
  /// extractor would mistake for an attribute.
  bool add_boilerplate_row = true;
  /// Add site chrome (nav/footer) around the specification block.
  bool add_chrome = true;
};

/// Renders a Dataset back into template-based specification pages, one
/// site style per source (local homogeneity: every page of a source uses
/// the same template). This is the synthetic stand-in for the crawled web:
/// the wrapper-induction extractor must recover the dataset from it.
class PageRenderer {
 public:
  explicit PageRenderer(const RendererConfig& config) : config_(config) {}

  /// Renders every source. Page order within a source follows the
  /// source's record order (which evaluation relies on).
  std::vector<SourcePages> RenderAll(const Dataset& dataset);

  /// The layout chosen for each source in the last RenderAll call.
  const std::vector<PageLayout>& source_layouts() const {
    return source_layouts_;
  }

 private:
  RendererConfig config_;
  std::vector<PageLayout> source_layouts_;
};

}  // namespace bdi::extract

#endif  // BDI_EXTRACT_RENDERER_H_
