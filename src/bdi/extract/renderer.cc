#include "bdi/extract/renderer.h"

#include "bdi/common/string_util.h"

namespace bdi::extract {

const char* PageLayoutName(PageLayout layout) {
  switch (layout) {
    case PageLayout::kTable:
      return "table";
    case PageLayout::kDefinitionList:
      return "definition-list";
    case PageLayout::kDivPairs:
      return "div-pairs";
    case PageLayout::kFreeText:
      return "free-text";
  }
  return "?";
}

namespace {

void AppendPair(PageLayout layout, const std::string& label,
                const std::string& value, std::string* html) {
  switch (layout) {
    case PageLayout::kTable:
      *html += "<tr><th>" + label + "</th><td>" + value + "</td></tr>\n";
      break;
    case PageLayout::kDefinitionList:
      *html += "<dt>" + label + "</dt><dd>" + value + "</dd>\n";
      break;
    case PageLayout::kDivPairs:
      *html += "<div class=\"k\">" + label + "</div><div class=\"v\">" +
               value + "</div>\n";
      break;
    case PageLayout::kFreeText:
      break;  // handled by the prose path
  }
}

std::string RenderRecord(const Dataset& dataset, const Record& record,
                         PageLayout layout, const RendererConfig& config,
                         const std::string& site_name) {
  std::string html;
  if (config.add_chrome) {
    html += "<div class=\"nav\"><a>Home</a><a>Categories</a>"
            "<a>Deals</a><a>Contact</a></div>\n";
  }
  // The first field renders as the page title (sites headline the product
  // name); the rest go into the specification block.
  std::string title =
      record.fields.empty() ? "untitled" : record.fields[0].value;
  html += "<h1>" + title + "</h1>\n";

  if (layout == PageLayout::kFreeText) {
    // Weak template: prose without label/value structure.
    html += "<p>The " + title + " offers ";
    for (size_t f = 1; f < record.fields.size(); ++f) {
      if (f > 1) html += ", ";
      html += record.fields[f].value;
    }
    html += ". Order now from " + site_name + "!</p>\n";
  } else {
    if (layout == PageLayout::kTable) html += "<table>\n";
    if (layout == PageLayout::kDefinitionList) html += "<dl>\n";
    for (size_t f = 1; f < record.fields.size(); ++f) {
      AppendPair(layout, dataset.attr_name(record.fields[f].attr),
                 record.fields[f].value, &html);
    }
    if (config.add_boilerplate_row) {
      // Constant across pages; a good wrapper learns to drop it.
      AppendPair(layout, "shipping", "free shipping worldwide", &html);
      AppendPair(layout, "availability", "in stock", &html);
    }
    if (layout == PageLayout::kTable) html += "</table>\n";
    if (layout == PageLayout::kDefinitionList) html += "</dl>\n";
  }
  if (config.add_chrome) {
    html += "<div class=\"footer\">(c) " + site_name +
            " - all rights reserved</div>\n";
  }
  return html;
}

}  // namespace

std::vector<SourcePages> PageRenderer::RenderAll(const Dataset& dataset) {
  Rng rng(config_.seed);
  std::vector<SourcePages> sites;
  sites.reserve(dataset.num_sources());
  source_layouts_.clear();
  for (const SourceInfo& source : dataset.sources()) {
    PageLayout layout;
    if (rng.Bernoulli(config_.weak_template_prob)) {
      layout = PageLayout::kFreeText;
    } else {
      switch (rng.UniformInt(0, 2)) {
        case 0:
          layout = PageLayout::kTable;
          break;
        case 1:
          layout = PageLayout::kDefinitionList;
          break;
        default:
          layout = PageLayout::kDivPairs;
      }
    }
    source_layouts_.push_back(layout);

    SourcePages site;
    site.source = source.id;
    site.source_name = source.name;
    site.pages.reserve(source.records.size());
    for (RecordIdx idx : source.records) {
      WebPage page;
      page.url = "http://" + source.name + "/product/" +
                 std::to_string(idx) + ".html";
      page.html = RenderRecord(dataset, dataset.record(idx), layout,
                               config_, source.name);
      site.pages.push_back(std::move(page));
    }
    sites.push_back(std::move(site));
  }
  return sites;
}

}  // namespace bdi::extract
