#include "bdi/extract/extractor.h"

#include <map>
#include <set>

#include "bdi/common/logging.h"
#include "bdi/common/string_util.h"

namespace bdi::extract {

ExtractionReport ExtractAll(const std::vector<SourcePages>& sites,
                            const WrapperConfig& config) {
  ExtractionReport report;
  for (const SourcePages& site : sites) {
    SourceId sid = report.dataset.AddSource(site.source_name);
    Wrapper wrapper = InduceWrapper(site.pages, config);
    SourceDiagnostics diagnostics;
    diagnostics.source = sid;
    diagnostics.detected_layout = wrapper.layout;
    diagnostics.usable = wrapper.usable();
    diagnostics.pages = site.pages.size();
    diagnostics.kept_labels = wrapper.labels.size();
    diagnostics.dropped_labels = wrapper.dropped_labels.size();
    if (wrapper.usable()) {
      for (const WebPage& page : site.pages) {
        ExtractedRecord extracted = ApplyWrapper(wrapper, page);
        std::vector<std::pair<std::string, std::string>> fields;
        if (!extracted.title.empty()) {
          fields.emplace_back(ExtractionReport::kTitleAttr,
                              extracted.title);
        }
        for (auto& [label, value] : extracted.fields) {
          fields.emplace_back(label, value);
        }
        if (!fields.empty()) {
          report.dataset.AddRecord(sid, fields);
          ++diagnostics.extracted_records;
        }
      }
    }
    report.sources.push_back(diagnostics);
  }
  return report;
}

ExtractionQuality EvaluateExtraction(const Dataset& original,
                                     const std::vector<SourcePages>& sites,
                                     const ExtractionReport& report) {
  ExtractionQuality quality;
  BDI_CHECK(sites.size() == report.sources.size());

  for (size_t s = 0; s < sites.size(); ++s) {
    SourceId original_source = sites[s].source;
    const std::vector<RecordIdx>& original_records =
        original.source(original_source).records;
    BDI_CHECK(original_records.size() == sites[s].pages.size())
        << "renderer page order contract violated";
    const std::vector<RecordIdx>& extracted_records =
        report.dataset.source(report.sources[s].source).records;

    for (size_t p = 0; p < original_records.size(); ++p) {
      const Record& original_record =
          original.record(original_records[p]);
      std::multiset<std::string> wanted;
      for (const Field& field : original_record.fields) {
        wanted.insert(NormalizeWhitespace(field.value));
      }
      quality.original_fields += wanted.size();

      if (p >= extracted_records.size()) continue;  // unusable site
      const Record& extracted_record =
          report.dataset.record(extracted_records[p]);
      for (const Field& field : extracted_record.fields) {
        ++quality.extracted_fields;
        auto it = wanted.find(NormalizeWhitespace(field.value));
        if (it != wanted.end()) {
          wanted.erase(it);
          ++quality.recovered_fields;
        }
      }
    }
  }
  quality.field_precision =
      quality.extracted_fields == 0
          ? 0.0
          : static_cast<double>(quality.recovered_fields) /
                static_cast<double>(quality.extracted_fields);
  quality.field_recall =
      quality.original_fields == 0
          ? 0.0
          : static_cast<double>(quality.recovered_fields) /
                static_cast<double>(quality.original_fields);
  quality.f1 = quality.field_precision + quality.field_recall == 0.0
                   ? 0.0
                   : 2.0 * quality.field_precision * quality.field_recall /
                         (quality.field_precision + quality.field_recall);
  return quality;
}

}  // namespace bdi::extract
