#ifndef BDI_EXTRACT_EXTRACTOR_H_
#define BDI_EXTRACT_EXTRACTOR_H_

#include <vector>

#include "bdi/extract/wrapper.h"
#include "bdi/model/dataset.h"

namespace bdi::extract {

/// What extraction produced for one site.
struct SourceDiagnostics {
  SourceId source = kInvalidSource;
  PageLayout detected_layout = PageLayout::kFreeText;
  bool usable = false;
  size_t pages = 0;
  size_t extracted_records = 0;
  size_t kept_labels = 0;
  size_t dropped_labels = 0;
};

/// The rebuilt corpus plus per-site diagnostics. Sources are recreated in
/// input order (ids match input positions); pages of unusable sites
/// contribute no records.
struct ExtractionReport {
  Dataset dataset;
  std::vector<SourceDiagnostics> sources;

  /// Titles become a synthetic "page title" field so downstream role
  /// detection can find the entity name.
  static constexpr const char* kTitleAttr = "page title";
};

/// Runs wrapper induction and extraction over every site.
ExtractionReport ExtractAll(const std::vector<SourcePages>& sites,
                            const WrapperConfig& config = {});

/// Label-agnostic field-level quality of an extraction against the
/// original corpus the pages were rendered from: a field counts as
/// recovered when its exact value is extracted from the right page
/// (titles recover the original record's first field).
struct ExtractionQuality {
  double field_precision = 0.0;
  double field_recall = 0.0;
  double f1 = 0.0;
  size_t original_fields = 0;
  size_t extracted_fields = 0;
  size_t recovered_fields = 0;
};

ExtractionQuality EvaluateExtraction(const Dataset& original,
                                     const std::vector<SourcePages>& sites,
                                     const ExtractionReport& report);

}  // namespace bdi::extract

#endif  // BDI_EXTRACT_EXTRACTOR_H_
