#ifndef BDI_EXTRACT_PAGE_H_
#define BDI_EXTRACT_PAGE_H_

#include <string>
#include <vector>

#include "bdi/model/types.h"

namespace bdi::extract {

/// One rendered specification page.
struct WebPage {
  std::string url;
  std::string html;
};

/// All pages of one site, in the order its records were rendered.
struct SourcePages {
  SourceId source = kInvalidSource;
  std::string source_name;
  std::vector<WebPage> pages;
};

/// How a site lays out its specification block. Real sites vary; the
/// wrapper has to discover which pattern a site uses — or find none
/// (kFreeText models the weak-template sites the tutorial warns about).
enum class PageLayout {
  kTable,           ///< <tr><th>label</th><td>value</td></tr>
  kDefinitionList,  ///< <dt>label</dt><dd>value</dd>
  kDivPairs,        ///< <div class="k">label</div><div class="v">value</div>
  kFreeText,        ///< prose, no label/value structure
};

const char* PageLayoutName(PageLayout layout);

}  // namespace bdi::extract

#endif  // BDI_EXTRACT_PAGE_H_
