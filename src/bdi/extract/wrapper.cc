#include "bdi/extract/wrapper.h"

#include <algorithm>
#include <map>
#include <set>

#include "bdi/common/string_util.h"

namespace bdi::extract {

namespace {

/// Returns the text between `open` and `close` starting the search at
/// *pos; advances *pos past the close tag. Returns false when not found.
bool ExtractBetween(const std::string& html, const std::string& open,
                    const std::string& close, size_t* pos,
                    std::string* out) {
  size_t begin = html.find(open, *pos);
  if (begin == std::string::npos) return false;
  begin += open.size();
  size_t end = html.find(close, begin);
  if (end == std::string::npos) return false;
  *out = html.substr(begin, end - begin);
  *pos = end + close.size();
  return true;
}

struct LayoutPattern {
  const char* label_open;
  const char* label_close;
  const char* value_open;
  const char* value_close;
};

bool PatternFor(PageLayout layout, LayoutPattern* pattern) {
  switch (layout) {
    case PageLayout::kTable:
      *pattern = {"<th>", "</th>", "<td>", "</td>"};
      return true;
    case PageLayout::kDefinitionList:
      *pattern = {"<dt>", "</dt>", "<dd>", "</dd>"};
      return true;
    case PageLayout::kDivPairs:
      *pattern = {"<div class=\"k\">", "</div>", "<div class=\"v\">",
                  "</div>"};
      return true;
    case PageLayout::kFreeText:
      return false;
  }
  return false;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> ParseLabelValuePairs(
    const std::string& html, PageLayout layout) {
  std::vector<std::pair<std::string, std::string>> pairs;
  LayoutPattern pattern;
  if (!PatternFor(layout, &pattern)) return pairs;
  size_t pos = 0;
  std::string label, value;
  while (ExtractBetween(html, pattern.label_open, pattern.label_close, &pos,
                        &label)) {
    if (!ExtractBetween(html, pattern.value_open, pattern.value_close, &pos,
                        &value)) {
      break;
    }
    pairs.emplace_back(ToLower(NormalizeWhitespace(label)),
                       NormalizeWhitespace(value));
  }
  return pairs;
}

std::string ParseTitle(const std::string& html) {
  size_t pos = 0;
  std::string title;
  if (ExtractBetween(html, "<h1>", "</h1>", &pos, &title)) {
    return NormalizeWhitespace(title);
  }
  return "";
}

Wrapper InduceWrapper(const std::vector<WebPage>& pages,
                      const WrapperConfig& config) {
  Wrapper wrapper;
  if (pages.empty()) return wrapper;
  size_t sample = std::min(config.sample_pages, pages.size());

  // 1. Layout detection: the pattern that parses the most pairs wins.
  PageLayout best_layout = PageLayout::kFreeText;
  size_t best_pairs = 0;
  for (PageLayout layout :
       {PageLayout::kTable, PageLayout::kDefinitionList,
        PageLayout::kDivPairs}) {
    size_t total = 0;
    for (size_t p = 0; p < sample; ++p) {
      total += ParseLabelValuePairs(pages[p].html, layout).size();
    }
    if (total > best_pairs) {
      best_pairs = total;
      best_layout = layout;
    }
  }
  if (best_layout == PageLayout::kFreeText || best_pairs == 0) {
    return wrapper;  // weak template; nothing structural to learn
  }
  wrapper.layout = best_layout;

  // 2. Label statistics over the sample.
  struct LabelStats {
    size_t support = 0;
    std::set<std::string> values;
    size_t first_seen = 0;
  };
  std::map<std::string, LabelStats> stats;
  size_t order = 0;
  for (size_t p = 0; p < sample; ++p) {
    std::set<std::string> seen_on_page;
    for (const auto& [label, value] :
         ParseLabelValuePairs(pages[p].html, best_layout)) {
      LabelStats& entry = stats[label];
      if (entry.support == 0) entry.first_seen = order++;
      if (seen_on_page.insert(label).second) ++entry.support;
      if (entry.values.size() < 64) entry.values.insert(value);
    }
  }

  // 3. Keep supported, varying labels; drop boilerplate.
  std::vector<std::pair<size_t, std::string>> kept;
  bool check_boilerplate =
      sample >= config.min_pages_for_boilerplate_check;
  for (const auto& [label, entry] : stats) {
    double support = static_cast<double>(entry.support) /
                     static_cast<double>(sample);
    if (support < config.min_label_support) {
      wrapper.dropped_labels.push_back(label);
      continue;
    }
    if (check_boilerplate && entry.values.size() <= 1 &&
        support >= 0.8) {
      wrapper.dropped_labels.push_back(label);
      continue;
    }
    kept.emplace_back(entry.first_seen, label);
  }
  std::sort(kept.begin(), kept.end());
  for (auto& [first_seen, label] : kept) {
    wrapper.labels.push_back(std::move(label));
  }
  return wrapper;
}

ExtractedRecord ApplyWrapper(const Wrapper& wrapper, const WebPage& page) {
  ExtractedRecord record;
  record.title = ParseTitle(page.html);
  if (!wrapper.usable()) return record;
  std::set<std::string> wanted(wrapper.labels.begin(),
                               wrapper.labels.end());
  for (auto& [label, value] :
       ParseLabelValuePairs(page.html, wrapper.layout)) {
    if (wanted.count(label) > 0) {
      record.fields.emplace_back(label, value);
    }
  }
  return record;
}

}  // namespace bdi::extract
