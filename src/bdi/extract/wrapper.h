#ifndef BDI_EXTRACT_WRAPPER_H_
#define BDI_EXTRACT_WRAPPER_H_

#include <string>
#include <vector>

#include "bdi/extract/page.h"

namespace bdi::extract {

/// A learned per-site extraction rule: which layout the site uses and
/// which labels are real attributes (boilerplate labels are excluded).
struct Wrapper {
  PageLayout layout = PageLayout::kFreeText;
  /// Attribute labels to extract, lowercased, in first-seen order.
  std::vector<std::string> labels;
  /// Labels rejected as boilerplate (constant across pages).
  std::vector<std::string> dropped_labels;

  bool usable() const {
    return layout != PageLayout::kFreeText && !labels.empty();
  }
};

/// One page's extraction output.
struct ExtractedRecord {
  std::string title;
  /// (lowercased label, raw value) in page order; only wrapper labels.
  std::vector<std::pair<std::string, std::string>> fields;
};

struct WrapperConfig {
  /// A label must appear on at least this fraction of pages to be part of
  /// the template.
  double min_label_support = 0.2;
  /// With at least this many pages, labels whose value never varies are
  /// dropped as boilerplate.
  size_t min_pages_for_boilerplate_check = 4;
  /// Pages sampled for induction (all pages if fewer).
  size_t sample_pages = 64;
};

/// Scans `html` for the given layout's label/value pattern. Labels are
/// lowercased and whitespace-normalized; values whitespace-normalized.
std::vector<std::pair<std::string, std::string>> ParseLabelValuePairs(
    const std::string& html, PageLayout layout);

/// First <h1>...</h1> contents (whitespace-normalized), or "".
std::string ParseTitle(const std::string& html);

/// Induces a wrapper from a site's pages, exploiting local homogeneity:
/// picks the layout that parses the most pairs, keeps labels with enough
/// support, and rejects constant-valued labels as boilerplate. Weak-
/// template sites come back with layout kFreeText (not usable).
Wrapper InduceWrapper(const std::vector<WebPage>& pages,
                      const WrapperConfig& config = {});

/// Applies a wrapper to one page.
ExtractedRecord ApplyWrapper(const Wrapper& wrapper, const WebPage& page);

}  // namespace bdi::extract

#endif  // BDI_EXTRACT_WRAPPER_H_
