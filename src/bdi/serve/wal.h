#ifndef BDI_SERVE_WAL_H_
#define BDI_SERVE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bdi/common/result.h"
#include "bdi/serve/protocol.h"

namespace bdi::serve {

/// Write-ahead log for `bdi serve` update batches (docs/SERVING.md,
/// "Durability"). The framing reuses the storage layer's primitives
/// (LEB128 varints and CRC-32C from src/bdi/storage/format.h): the file
/// opens with an 8-byte magic, then a header frame naming the checkpoint
/// sequence the log starts from, then one frame per accepted batch. Every
/// frame is `u32 frame-magic, varint payload length, payload, u32
/// CRC-32C(payload)`; the payload carries a kind byte, the batch sequence
/// number, and the length-prefixed records. Appends are fsynced before the
/// batch enters the integrator, so an acknowledged batch survives SIGKILL.

/// 8-byte WAL file magic: "BDIWAL1\n". The trailing newline detects
/// text-mode mangling the same way the `.bds` magic does.
inline constexpr unsigned char kWalMagic[8] = {'B', 'D', 'I', 'W',
                                               'A', 'L', '1', '\n'};

/// Per-frame magic, "WALF" little-endian.
inline constexpr uint32_t kWalFrameMagic = 0x464C4157u;

/// Payload kind byte of the one header frame at the start of every log.
inline constexpr uint8_t kWalFrameHeader = 0;

/// Payload kind byte of a batch frame.
inline constexpr uint8_t kWalFrameBatch = 1;

/// One replayable batch recovered from the log: its sequence number (the
/// store's batch counter, checkpoint-relative-consecutive) and records.
struct WalBatch {
  /// Batch sequence number; strictly `base_seq + 1, base_seq + 2, ...`.
  uint64_t seq = 0;
  /// The protocol-validated records of the batch, as accepted.
  std::vector<UpdateRecord> records;
};

/// Everything ParseWal recovered from a log's bytes.
struct WalReplay {
  /// True when the header frame parsed; false means the file is a torn
  /// initial Create (valid magic prefix, no complete header) — safe to
  /// recreate, since appends are only acknowledged after Create returns.
  bool has_header = false;
  /// Checkpoint sequence the log starts from (0 = the bootstrap corpus;
  /// otherwise `<wal>.ckpt-<base_seq>.bds` holds the resident dataset).
  uint64_t base_seq = 0;
  /// Decoded batch frames in order, sequences consecutive from base_seq.
  std::vector<WalBatch> batches;
  /// Byte length of the valid prefix (end of the last good frame).
  /// Recovery truncates the file here before reopening for append.
  uint64_t valid_bytes = 0;
  /// True when a torn tail frame (incomplete bytes at EOF, or a final
  /// frame whose checksum fails) was dropped.
  bool truncated_tail = false;
};

/// Appends the magic plus a header frame for `base_seq` to `out` — the
/// byte image of a fresh, empty log. Exposed for the mutation-fuzz tests.
void AppendWalFileHeader(uint64_t base_seq, std::string* out);

/// Appends one batch frame to `out`. Exposed for the mutation-fuzz tests.
void AppendWalBatchFrame(uint64_t seq,
                         const std::vector<UpdateRecord>& records,
                         std::string* out);

/// Decodes a whole log image. Strict about corruption in the middle of the
/// file — a complete frame with a bad checksum, an out-of-order or
/// duplicated sequence, or an undecodable payload is a Status (never a
/// crash, pinned by the fuzz corpus) — but tolerant of a torn tail: an
/// incomplete final frame, or a final frame failing its CRC (a partially
/// flushed sector), is dropped and reported via `truncated_tail`.
Result<WalReplay> ParseWal(std::string_view bytes);

/// The checkpoint path for `wal_path` at `seq`:
/// `<wal_path>.ckpt-<seq>.bds`.
std::string WalCheckpointPath(const std::string& wal_path, uint64_t seq);

/// Deletes stale `<wal_path>.ckpt-*.bds` files whose sequence differs from
/// `keep_seq` (leftovers of a crash between the checkpoint rename and the
/// log swap, or of an interrupted cleanup). Best-effort: unlink errors are
/// ignored, directory-scan errors are returned.
Status RemoveStaleCheckpoints(const std::string& wal_path,
                              uint64_t keep_seq);

/// An open log being appended to. Writers hold it under the store's write
/// mutex; every AppendBatch is a single write(2) of one frame followed by
/// an fsync (when enabled), so the on-disk image is always a frame
/// sequence plus at most one torn tail.
class Wal {
 public:
  /// Creates (truncating) a log at `path` whose header names `base_seq`,
  /// fsyncs the file and its directory. `do_fsync` false skips all fsyncs
  /// (benchmarks measuring the pure CPU path; durability is off).
  static Result<std::unique_ptr<Wal>> Create(const std::string& path,
                                             uint64_t base_seq,
                                             bool do_fsync);

  /// Opens an existing log for appending after recovery validated its
  /// first `valid_bytes` bytes (the file is truncated there first when it
  /// is longer — dropping a torn tail).
  static Result<std::unique_ptr<Wal>> OpenForAppend(const std::string& path,
                                                    uint64_t valid_bytes,
                                                    bool do_fsync);

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one batch frame and (when enabled) fsyncs it. The batch is
  /// durable when this returns OK; on error nothing of the batch must be
  /// applied.
  Status AppendBatch(uint64_t seq, const std::vector<UpdateRecord>& records);

  /// Bytes in the log (header + appended frames) — the rotation trigger.
  uint64_t bytes() const { return bytes_; }

  /// The path the log was created or opened at. After a rotation rename
  /// the fd follows the inode; the path is informational.
  const std::string& path() const { return path_; }

 private:
  Wal(int fd, std::string path, uint64_t bytes, bool do_fsync)
      : fd_(fd), path_(std::move(path)), bytes_(bytes), fsync_(do_fsync) {}

  int fd_ = -1;
  std::string path_;
  uint64_t bytes_ = 0;
  bool fsync_ = true;
};

}  // namespace bdi::serve

#endif  // BDI_SERVE_WAL_H_
