#include "bdi/serve/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <thread>
#include <vector>

#include "bdi/common/executor.h"
#include "bdi/common/metrics.h"
#include "bdi/common/posix_io.h"
#include "bdi/common/timer.h"

namespace bdi::serve {

namespace {

metrics::Counter& QueriesCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.serve.queries");
  return *counter;
}

metrics::Counter& ErrorsCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.serve.errors");
  return *counter;
}

metrics::Histogram& QueryLatencyHistogram() {
  static metrics::Histogram* histogram =
      metrics::Registry::Get().RegisterHistogram(
          "bdi.serve.query.latency_us",
          {50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
           50000.0, 250000.0});
  return *histogram;
}

metrics::Gauge& InflightGauge() {
  static metrics::Gauge* gauge =
      metrics::Registry::Get().RegisterGauge("bdi.serve.queries.inflight");
  return *gauge;
}

metrics::Histogram& BurstSizeHistogram() {
  static metrics::Histogram* histogram =
      metrics::Registry::Get().RegisterHistogram(
          "bdi.serve.burst.size", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
                                   128.0});
  return *histogram;
}

metrics::Histogram& BatchLagHistogram() {
  static metrics::Histogram* histogram =
      metrics::Registry::Get().RegisterHistogram(
          "bdi.serve.batch.lag_ms", {1.0, 5.0, 10.0, 25.0, 50.0, 100.0,
                                     250.0, 500.0, 1000.0, 5000.0});
  return *histogram;
}

metrics::Counter& ConnectionsCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.serve.connections");
  return *counter;
}

void AppendIdAndVersion(std::string* out, long long id, uint64_t version) {
  if (id >= 0) {
    *out += ",\"id\":";
    *out += std::to_string(id);
  }
  *out += ",\"v\":";
  *out += std::to_string(version);
}

void AppendSupport(std::string* out, const std::vector<ServedClaim>& support) {
  *out += ",\"support\":[";
  for (size_t i = 0; i < support.size(); ++i) {
    if (i > 0) *out += ",";
    *out += "{\"source\":";
    AppendJsonString(out, support[i].source);
    *out += ",\"value\":";
    AppendJsonString(out, support[i].value);
    *out += ",\"agrees\":";
    *out += support[i].agrees ? "true" : "false";
    *out += "}";
  }
  *out += "]";
}

/// True for request verbs that only read the published snapshot — the
/// ones a stream burst may answer in parallel.
bool IsReadOnly(RequestOp op) {
  return op == RequestOp::kAsk || op == RequestOp::kFind ||
         op == RequestOp::kStats;
}

// std::getline gives up when the underlying read is interrupted by a
// signal (it sets failbit with errno == EINTR). Retry those; genuine EOF
// and real stream errors still end the loop.
bool GetLineRetry(std::istream& in, std::string& line) {
  while (true) {
    errno = 0;
    if (std::getline(in, line)) return true;
    if (in.eof() || errno != EINTR) return false;
    in.clear();
  }
}

}  // namespace

Server::Server(EntityStore* store, const ServerConfig& config)
    : store_(store), config_(config) {}

std::string Server::Dispatch(const Request& request) {
  // One snapshot acquire per request: the whole query runs against this
  // immutable version, whatever the writer publishes meanwhile.
  std::shared_ptr<const Snapshot> snapshot = store_->snapshot();
  switch (request.op) {
    case RequestOp::kAsk: {
      AskAnswer answer = snapshot->Ask(request.attribute, request.entity);
      std::string out = "{\"ok\":true";
      AppendIdAndVersion(&out, request.id, snapshot->version());
      out += ",\"found\":";
      out += answer.found() ? "true" : "false";
      if (answer.found()) {
        out += ",\"entity\":";
        AppendJsonString(&out, answer.entity_name);
        out += ",\"cluster\":" + std::to_string(answer.cluster);
        out += ",\"attribute\":";
        AppendJsonString(&out, answer.attribute);
        out += ",\"value\":";
        AppendJsonString(&out, answer.value);
        out += ",\"confidence\":";
        AppendJsonNumber(&out, answer.confidence);
        out += ",\"entity_match\":";
        AppendJsonNumber(&out, answer.entity_match);
        out += ",\"attribute_match\":";
        AppendJsonNumber(&out, answer.attribute_match);
        AppendSupport(&out, answer.support);
      }
      out += "}";
      return out;
    }
    case RequestOp::kFind: {
      std::vector<FindHit> hits =
          snapshot->Find(request.entity, static_cast<size_t>(request.k));
      std::string out = "{\"ok\":true";
      AppendIdAndVersion(&out, request.id, snapshot->version());
      out += ",\"hits\":[";
      for (size_t i = 0; i < hits.size(); ++i) {
        if (i > 0) out += ",";
        out += "{\"cluster\":" + std::to_string(hits[i].cluster);
        out += ",\"score\":";
        AppendJsonNumber(&out, hits[i].score);
        out += ",\"text\":";
        AppendJsonString(&out, hits[i].text);
        out += "}";
      }
      out += "]}";
      return out;
    }
    case RequestOp::kStats: {
      std::string out = "{\"ok\":true";
      AppendIdAndVersion(&out, request.id, snapshot->version());
      out += ",\"entities\":" + std::to_string(snapshot->num_entities());
      out += ",\"records\":" + std::to_string(snapshot->num_records());
      out += ",\"shards\":" + std::to_string(snapshot->num_shards());
      out += ",\"batches\":" + std::to_string(store_->num_batches());
      out += "}";
      return out;
    }
    case RequestOp::kUpdate: {
      WallTimer lag;
      BatchRejection rejection;
      Result<BatchResult> applied =
          store_->ApplyBatch(request.records, &rejection);
      if (!applied.ok()) {
        ErrorsCounter().Add();
        // A shed batch gets the structured, re-parseable form so clients
        // can match error == "overloaded" and honor retry_after_ms.
        if (applied.status().code() == StatusCode::kUnavailable) {
          return EncodeOverloaded(request.id, rejection);
        }
        return EncodeError(request.id, applied.status().message());
      }
      BatchLagHistogram().Observe(lag.ElapsedMillis());
      std::string out = "{\"ok\":true";
      AppendIdAndVersion(&out, request.id, applied->version);
      out += ",\"seq\":" + std::to_string(applied->seq);
      out += ",\"records\":" + std::to_string(applied->records);
      out += ",\"comparisons\":" + std::to_string(applied->comparisons);
      out += ",\"apply_ms\":";
      AppendJsonNumber(&out, applied->apply_ms);
      out += ",\"wal_ms\":";
      AppendJsonNumber(&out, applied->wal_ms);
      out += ",\"budget_stopped\":";
      out += applied->budget_stopped ? "true" : "false";
      out += ",\"deadline_stopped\":";
      out += applied->deadline_stopped ? "true" : "false";
      out += "}";
      return out;
    }
    case RequestOp::kShutdown: {
      shutdown_.store(true, std::memory_order_release);
      std::string out = "{\"ok\":true";
      if (request.id >= 0) out += ",\"id\":" + std::to_string(request.id);
      out += ",\"bye\":true}";
      return out;
    }
  }
  return EncodeError(-1, "unreachable");
}

std::string Server::HandleLine(const std::string& line) {
  WallTimer timer;
  InflightGauge().Add(1);
  // Capture the request id as soon as it parses so even responses to
  // invalid requests echo it — pipelined clients need the id to tell
  // which request failed.
  long long id = -1;
  Result<Request> request = ParseRequest(line, &id);
  std::string response;
  if (!request.ok()) {
    ErrorsCounter().Add();
    response = EncodeError(id, request.status().message());
  } else {
    response = Dispatch(*request);
  }
  QueriesCounter().Add();
  QueryLatencyHistogram().Observe(timer.ElapsedSeconds() * 1e6);
  InflightGauge().Add(-1);
  return response;
}

Status Server::ServeStream(std::istream& in, std::ostream& out) {
  std::vector<std::string> burst;
  std::string line;
  while (!shutdown_requested()) {
    burst.clear();
    if (!GetLineRetry(in, line)) break;
    burst.push_back(line);
    // Gather every request line already buffered (pipelined clients), so
    // the read-only prefix of the burst can answer in parallel. The
    // in_avail() probe is a heuristic — it only controls parallelism,
    // never correctness: a request answered alone or in a burst gets the
    // same response.
    while (burst.size() < config_.max_burst &&
           in.rdbuf()->in_avail() > 0 && GetLineRetry(in, line)) {
      burst.push_back(line);
    }
    BurstSizeHistogram().Observe(static_cast<double>(burst.size()));

    std::vector<std::string> responses(burst.size());
    size_t i = 0;
    while (i < burst.size()) {
      // Maximal run of read-only requests: answered concurrently, in any
      // order, each against the snapshot it acquires. Updates and
      // shutdowns are barriers — applied alone, in stream order.
      size_t j = i;
      while (j < burst.size()) {
        Result<Request> parsed = ParseRequest(burst[j]);
        if (parsed.ok() && !IsReadOnly(parsed->op)) break;
        ++j;
      }
      if (j > i) {
        ParallelFor(
            j - i,
            [&](size_t k) { responses[i + k] = HandleLine(burst[i + k]); },
            config_.num_threads);
        i = j;
      }
      if (i < burst.size()) {
        responses[i] = HandleLine(burst[i]);
        ++i;
        if (shutdown_requested()) break;
      }
    }
    for (size_t r = 0; r < i; ++r) {
      out << responses[r] << "\n";
    }
    out.flush();
    // The peer closing its end (a broken pipe) is a clean end of the
    // stream, not a server fault.
    if (!out) break;
  }
  return Status::OK();
}

Status Server::ServeTcp(int port, std::ostream& log) {
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return Status::IOError("serve: socket() failed: " +
                           std::string(std::strerror(errno)));
  }
  int reuse = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    std::string why = std::strerror(errno);
    ::close(listen_fd);
    return Status::IOError("serve: cannot bind port " +
                           std::to_string(port) + ": " + why);
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  if (::listen(listen_fd, 64) < 0) {
    std::string why = std::strerror(errno);
    ::close(listen_fd);
    return Status::IOError("serve: listen() failed: " + why);
  }
  log << "listening on " << ntohs(addr.sin_port) << "\n";
  log.flush();

  std::vector<std::thread> connections;
  while (!shutdown_requested()) {
    int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket closed by shutdown below
    }
    ConnectionsCounter().Add();
    connections.emplace_back([this, conn_fd, listen_fd]() {
      // Line-delimited JSON per connection; requests on one connection
      // are serial, connections run concurrently. All socket I/O goes
      // through bdi::io — EINTR retried, short writes resumed, sends
      // SIGPIPE-free (MSG_NOSIGNAL) — so a client vanishing mid-response
      // closes this connection and nothing else.
      std::string buffer;
      char chunk[4096];
      while (true) {
        size_t newline = buffer.find('\n');
        if (newline == std::string::npos) {
          if (buffer.size() > kMaxWireBytes) {
            // A line that long can never parse; fail the request early
            // instead of buffering without bound.
            std::string response =
                EncodeError(-1, "wire: request line exceeds " +
                                    std::to_string(kMaxWireBytes) +
                                    " bytes");
            response += "\n";
            (void)io::SendAllFd(conn_fd, response);
            break;
          }
          Result<size_t> n = io::ReadSomeFd(conn_fd, chunk, sizeof(chunk));
          if (!n.ok() || n.value() == 0) break;
          buffer.append(chunk, n.value());
          continue;
        }
        std::string line = buffer.substr(0, newline);
        buffer.erase(0, newline + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        std::string response = HandleLine(line);
        response += "\n";
        if (!io::SendAllFd(conn_fd, response).ok()) break;
        if (shutdown_requested()) {
          // Break the accept() so the server can drain and exit.
          ::shutdown(listen_fd, SHUT_RDWR);
          break;
        }
      }
      ::close(conn_fd);
    });
  }
  ::close(listen_fd);
  for (std::thread& t : connections) t.join();
  return Status::OK();
}

}  // namespace bdi::serve
