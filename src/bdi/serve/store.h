#ifndef BDI_SERVE_STORE_H_
#define BDI_SERVE_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdi/common/result.h"
#include "bdi/core/incremental_integrator.h"
#include "bdi/serve/protocol.h"
#include "bdi/serve/snapshot.h"
#include "bdi/serve/wal.h"

namespace bdi::serve {

/// Durability options of the resident store (docs/SERVING.md,
/// "Durability"): where the write-ahead log lives and when it compacts.
struct WalConfig {
  /// WAL path; empty disables durability (the PR-9 behavior: the store
  /// rebuilds from the bootstrap corpus only).
  std::string path;
  /// Rotate the log — write a `.bds` checkpoint of the resident dataset
  /// and start a fresh log based on it — once the live log exceeds this
  /// many bytes. 0 disables rotation (the log grows without bound).
  uint64_t rotate_bytes = 64ull << 20;
  /// fsync every appended batch (and checkpoint/rename during rotation).
  /// Off only for benchmarks isolating the CPU cost; an un-fsynced log
  /// gives no crash guarantee.
  bool fsync = true;
};

/// Configuration of the resident entity store.
struct StoreConfig {
  /// Shards the snapshot hashes entities over. More shards narrow the
  /// posting maps (smaller probe constants); the count is a layout knob
  /// only — results are shard-count-independent.
  size_t num_shards = 8;
  /// Per-batch progressive comparison budget for *live* update batches
  /// (LinkerConfig::comparison_budget encoding; 0 = unlimited). The
  /// bootstrap corpus always links unbudgeted.
  double comparison_budget = 0.0;
  /// Per-batch wall-clock linkage deadline for live batches, in
  /// milliseconds (LinkerConfig::budget_ms semantics; 0 = none).
  double budget_ms = 0.0;
  /// Threads for snapshot builds (0 = shared executor pool).
  size_t num_threads = 0;
  /// Write-ahead log; `wal.path` empty disables durability.
  WalConfig wal;
  /// Admission control: largest number of update batches admitted but not
  /// yet applied before further batches are shed with `overloaded`
  /// (0 = unlimited; the pre-admission behavior of queueing on the write
  /// mutex without bound).
  uint64_t max_pending_batches = 0;
  /// Admission control: largest record count across admitted-unapplied
  /// batches before shedding (0 = unlimited). A single batch larger than
  /// this can never be admitted — clients must split it.
  uint64_t max_pending_records = 0;
  /// The batch-pipeline configuration the store's state must stay
  /// equivalent to.
  core::IntegratorConfig integrator;
};

/// What one applied update batch did.
struct BatchResult {
  /// Snapshot version the batch published.
  uint64_t version = 0;
  /// Durable batch sequence number (bootstrap = 0, then 1, 2, ... across
  /// restarts; replayed batches keep their original numbers).
  uint64_t seq = 0;
  /// Records ingested by the batch.
  size_t records = 0;
  /// Pairwise comparisons the incremental linkage spent.
  size_t comparisons = 0;
  /// Wall milliseconds from ApplyBatch entry to snapshot publication.
  double apply_ms = 0.0;
  /// Wall milliseconds spent making the batch durable (WAL append +
  /// fsync); 0 when the store runs without a WAL.
  double wal_ms = 0.0;
  /// True when the comparison budget stopped linkage early.
  bool budget_stopped = false;
  /// True when the wall-clock deadline stopped linkage early.
  bool deadline_stopped = false;
};

/// The resident sharded entity store behind `bdi serve`: warm in-memory
/// integration state (interned dataset, incremental linkage index, fused
/// clusters) plus an immutable Snapshot that queries read.
///
/// Concurrency model (docs/SERVING.md): readers call snapshot() — an
/// atomic shared_ptr load — and run entirely against that immutable
/// version; writers serialize on an internal mutex, push the batch
/// through the IncrementalLinker path, build a fresh Snapshot and publish
/// it with one atomic swap. Readers never block writers and vice versa;
/// a reader mid-query keeps its version alive through the shared_ptr.
///
/// Durability model (docs/SERVING.md): with `StoreConfig::wal` set, every
/// accepted batch is framed, appended, and fsynced to the log *before* it
/// touches the integrator, so an acknowledged batch survives SIGKILL.
/// Create() recovers automatically: it loads the newest checkpoint the
/// log names (or the bootstrap corpus when none exists), replays the log
/// tail through the normal apply path, and truncates any torn tail frame.
/// When the log outgrows `wal.rotate_bytes` the store compacts: the
/// resident dataset is checkpointed to `<wal>.ckpt-<seq>.bds` and a fresh
/// log based on it replaces the old one (both renames fsynced, old
/// checkpoints removed only after the swap — every crash point recovers).
///
/// Overload model: with `max_pending_batches` / `max_pending_records`
/// set, a batch arriving while that much work is already admitted-but-
/// unapplied is shed immediately with Unavailable (the server encodes it
/// as the structured `overloaded` error) instead of queueing unboundedly
/// on the write mutex.
///
/// Equivalence invariant: with budgets off, the state after any sequence
/// of ApplyBatch calls is bitwise-identical (Snapshot::DebugString) to a
/// store bootstrapped from the same records in one batch — the
/// incremental edge set is batch-partition-independent and the schema
/// realigns every refresh (realign_schema_each_refresh). Crash recovery
/// inherits it: checkpoint + WAL-tail replay lands on the same
/// DebugString as a never-crashed store (serve_recovery_test).
class EntityStore {
 public:
  /// Builds the store over the bootstrap corpus: one unbudgeted
  /// incremental pipeline pass, then snapshot version 1. Takes ownership
  /// of `bootstrap` (the store's dataset grows with batches). Fails with
  /// InvalidArgument on an empty corpus. With `config.wal.path` set and
  /// an existing log there, recovery runs instead: the log's checkpoint
  /// (when it names one) replaces `bootstrap`, and the logged batches are
  /// replayed before the store accepts traffic — so pass the *same*
  /// bootstrap corpus as the original run until the first rotation makes
  /// the log self-contained.
  static Result<std::unique_ptr<EntityStore>> Create(Dataset bootstrap,
                                                     const StoreConfig& config);

  EntityStore(const EntityStore&) = delete;
  EntityStore& operator=(const EntityStore&) = delete;

  /// The current published snapshot (atomic acquire; never null).
  /// Thread-safe, wait-free for readers.
  std::shared_ptr<const Snapshot> snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Applies one update batch: admission-checks it, makes it durable
  /// (when a WAL is configured), appends the records to the warm dataset
  /// (interning sources and attributes), refreshes linkage incrementally
  /// under the configured budgets, re-fuses, builds the next snapshot and
  /// publishes it. Writers serialize; readers are never blocked. The
  /// records must already be protocol-validated (non-empty source, at
  /// least one field each).
  ///
  /// When admission control sheds the batch the status is Unavailable
  /// ("overloaded") and `*rejection` (when non-null) carries the pending
  /// load and a retry_after_ms hint; nothing was logged or applied. An
  /// IOError means the WAL append failed — the batch was likewise not
  /// applied (fail-stop: durability errors never let state diverge from
  /// the log).
  Result<BatchResult> ApplyBatch(const std::vector<UpdateRecord>& records,
                                 BatchRejection* rejection = nullptr);

  /// Number of batches applied since the *original* bootstrap — replayed
  /// batches count, so the number is continuous across restarts.
  uint64_t num_batches() const {
    return num_batches_.load(std::memory_order_relaxed);
  }

  /// Durable sequence number of the last applied batch (0 = none yet).
  uint64_t wal_sequence() const {
    return seq_.load(std::memory_order_relaxed);
  }

  /// Checkpoint sequence the current log is based on (0 = the bootstrap
  /// corpus; >0 after the first rotation).
  uint64_t wal_base_sequence() const {
    return wal_base_seq_.load(std::memory_order_relaxed);
  }

  /// Batches replayed from the WAL during Create (0 when the store
  /// started fresh).
  uint64_t replayed_batches() const { return replayed_batches_; }

  /// Update batches admitted but not yet applied, right now.
  uint64_t pending_batches() const {
    return pending_batches_.load(std::memory_order_relaxed);
  }

  /// Records across the pending batches, right now.
  uint64_t pending_records() const {
    return pending_records_.load(std::memory_order_relaxed);
  }

 private:
  explicit EntityStore(StoreConfig config);

  /// Decrements the pending counters on every exit path after admission.
  struct PendingGuard;

  /// The post-admission body of ApplyBatch: log (unless replaying), apply,
  /// publish. Caller holds write_mutex_.
  Result<BatchResult> ApplyLocked(const std::vector<UpdateRecord>& records,
                                  bool replaying);

  /// Compacts the log: checkpoint the resident dataset, swap in a fresh
  /// log based on it, drop stale checkpoints. Caller holds write_mutex_.
  Status RotateWalLocked();

  /// The retry hint for a shed batch: pending depth times the EWMA of
  /// recent apply times (floored when no batch has completed yet).
  double RetryAfterMsHint(uint64_t queued_batches) const;

  StoreConfig config_;
  /// Writer state, all guarded by write_mutex_: the growing dataset, the
  /// incremental integrator wired to it, source-name interning, the WAL
  /// appender and the version counter.
  std::mutex write_mutex_;
  Dataset dataset_;
  std::unique_ptr<core::IncrementalIntegrator> integrator_;
  std::unordered_map<std::string, SourceId> source_ids_;
  uint64_t version_ = 0;
  std::unique_ptr<Wal> wal_;
  uint64_t replayed_batches_ = 0;
  /// Monotone counters published for readers (relaxed: they are stats,
  /// not synchronization).
  std::atomic<uint64_t> num_batches_{0};
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> wal_base_seq_{0};
  /// Admission state, updated outside write_mutex_ so shedding decisions
  /// never wait on a batch in flight.
  std::atomic<uint64_t> pending_batches_{0};
  std::atomic<uint64_t> pending_records_{0};
  /// EWMA of recent batch apply times, feeding retry_after_ms hints.
  std::atomic<double> apply_ms_ewma_{0.0};
  /// The published snapshot (RCU-style: swapped whole, never mutated).
  std::atomic<std::shared_ptr<const Snapshot>> snapshot_;
};

}  // namespace bdi::serve

#endif  // BDI_SERVE_STORE_H_
