#ifndef BDI_SERVE_STORE_H_
#define BDI_SERVE_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdi/common/result.h"
#include "bdi/core/incremental_integrator.h"
#include "bdi/serve/protocol.h"
#include "bdi/serve/snapshot.h"

namespace bdi::serve {

/// Configuration of the resident entity store.
struct StoreConfig {
  /// Shards the snapshot hashes entities over. More shards narrow the
  /// posting maps (smaller probe constants); the count is a layout knob
  /// only — results are shard-count-independent.
  size_t num_shards = 8;
  /// Per-batch progressive comparison budget for *live* update batches
  /// (LinkerConfig::comparison_budget encoding; 0 = unlimited). The
  /// bootstrap corpus always links unbudgeted.
  double comparison_budget = 0.0;
  /// Per-batch wall-clock linkage deadline for live batches, in
  /// milliseconds (LinkerConfig::budget_ms semantics; 0 = none).
  double budget_ms = 0.0;
  /// Threads for snapshot builds (0 = shared executor pool).
  size_t num_threads = 0;
  /// The batch-pipeline configuration the store's state must stay
  /// equivalent to.
  core::IntegratorConfig integrator;
};

/// What one applied update batch did.
struct BatchResult {
  /// Snapshot version the batch published.
  uint64_t version = 0;
  /// Records ingested by the batch.
  size_t records = 0;
  /// Pairwise comparisons the incremental linkage spent.
  size_t comparisons = 0;
  /// Wall milliseconds from ApplyBatch entry to snapshot publication.
  double apply_ms = 0.0;
  /// True when the comparison budget stopped linkage early.
  bool budget_stopped = false;
  /// True when the wall-clock deadline stopped linkage early.
  bool deadline_stopped = false;
};

/// The resident sharded entity store behind `bdi serve`: warm in-memory
/// integration state (interned dataset, incremental linkage index, fused
/// clusters) plus an immutable Snapshot that queries read.
///
/// Concurrency model (docs/SERVING.md): readers call snapshot() — an
/// atomic shared_ptr load — and run entirely against that immutable
/// version; writers serialize on an internal mutex, push the batch
/// through the IncrementalLinker path, build a fresh Snapshot and publish
/// it with one atomic swap. Readers never block writers and vice versa;
/// a reader mid-query keeps its version alive through the shared_ptr.
///
/// Equivalence invariant: with budgets off, the state after any sequence
/// of ApplyBatch calls is bitwise-identical (Snapshot::DebugString) to a
/// store bootstrapped from the same records in one batch — the
/// incremental edge set is batch-partition-independent and the schema
/// realigns every refresh (realign_schema_each_refresh).
class EntityStore {
 public:
  /// Builds the store over the bootstrap corpus: one unbudgeted
  /// incremental pipeline pass, then snapshot version 1. Takes ownership
  /// of `bootstrap` (the store's dataset grows with batches). Fails with
  /// InvalidArgument on an empty corpus.
  static Result<std::unique_ptr<EntityStore>> Create(Dataset bootstrap,
                                                     const StoreConfig& config);

  EntityStore(const EntityStore&) = delete;
  EntityStore& operator=(const EntityStore&) = delete;

  /// The current published snapshot (atomic acquire; never null).
  /// Thread-safe, wait-free for readers.
  std::shared_ptr<const Snapshot> snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Applies one update batch: appends the records to the warm dataset
  /// (interning sources and attributes), refreshes linkage incrementally
  /// under the configured budgets, re-fuses, builds the next snapshot and
  /// publishes it. Writers serialize; readers are never blocked. The
  /// records must already be protocol-validated (non-empty source, at
  /// least one field each).
  Result<BatchResult> ApplyBatch(const std::vector<UpdateRecord>& records);

  /// Number of batches applied since Create (bootstrap excluded).
  uint64_t num_batches() const {
    return num_batches_.load(std::memory_order_relaxed);
  }

 private:
  explicit EntityStore(StoreConfig config);

  StoreConfig config_;
  /// Writer state, all guarded by write_mutex_: the growing dataset, the
  /// incremental integrator wired to it, source-name interning and the
  /// version counter.
  std::mutex write_mutex_;
  Dataset dataset_;
  std::unique_ptr<core::IncrementalIntegrator> integrator_;
  std::unordered_map<std::string, SourceId> source_ids_;
  uint64_t version_ = 0;
  std::atomic<uint64_t> num_batches_{0};
  /// The published snapshot (RCU-style: swapped whole, never mutated).
  std::atomic<std::shared_ptr<const Snapshot>> snapshot_;
};

}  // namespace bdi::serve

#endif  // BDI_SERVE_STORE_H_
