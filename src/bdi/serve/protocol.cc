#include "bdi/serve/protocol.h"

#include <cmath>

namespace bdi::serve {

namespace {

Status BadRequest(const std::string& what) {
  return Status::InvalidArgument("request: " + what);
}

// Reads an optional integer member, range-checked. JSON numbers are
// doubles; anything non-integral is rejected rather than floored.
Status ReadInt(const JsonValue& obj, std::string_view key, long long min,
               long long max, long long* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (v->kind != JsonValue::Kind::kNumber) {
    return BadRequest("'" + std::string(key) + "' must be a number");
  }
  double d = v->number;
  if (d != std::floor(d) || d < static_cast<double>(min) ||
      d > static_cast<double>(max)) {
    return BadRequest("'" + std::string(key) + "' must be an integer in [" +
                      std::to_string(min) + ", " + std::to_string(max) + "]");
  }
  *out = static_cast<long long>(d);
  return Status::OK();
}

// Reads a required non-empty string member.
Status ReadString(const JsonValue& obj, std::string_view key,
                  std::string* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kString) {
    return BadRequest("'" + std::string(key) + "' must be a string");
  }
  if (v->string.empty()) {
    return BadRequest("'" + std::string(key) + "' must be non-empty");
  }
  *out = v->string;
  return Status::OK();
}

// Rejects members outside the allowed set so typos fail loudly instead of
// being silently ignored.
Status CheckKeys(const JsonValue& obj,
                 std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, unused] : obj.object) {
    bool known = false;
    for (std::string_view a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) return BadRequest("unknown key '" + key + "'");
  }
  return Status::OK();
}

Status ParseUpdateRecords(const JsonValue& root, Request* out) {
  const JsonValue* records = root.Find("records");
  if (records == nullptr || records->kind != JsonValue::Kind::kArray) {
    return BadRequest("'records' must be an array");
  }
  if (records->array.empty()) {
    return BadRequest("'records' must be non-empty");
  }
  if (records->array.size() > kMaxBatchRecords) {
    return BadRequest("'records' exceeds " + std::to_string(kMaxBatchRecords) +
                      " entries");
  }
  out->records.reserve(records->array.size());
  for (size_t i = 0; i < records->array.size(); ++i) {
    const JsonValue& rec = records->array[i];
    const std::string at = " in records[" + std::to_string(i) + "]";
    if (rec.kind != JsonValue::Kind::kObject) {
      return BadRequest("record must be an object" + at);
    }
    Status status = CheckKeys(rec, {"source", "fields"});
    if (!status.ok()) return BadRequest(status.message() + at);
    UpdateRecord parsed;
    status = ReadString(rec, "source", &parsed.source);
    if (!status.ok()) return BadRequest(status.message() + at);
    const JsonValue* fields = rec.Find("fields");
    if (fields == nullptr || fields->kind != JsonValue::Kind::kObject) {
      return BadRequest("'fields' must be an object" + at);
    }
    if (fields->object.empty()) {
      return BadRequest("'fields' must be non-empty" + at);
    }
    parsed.fields.reserve(fields->object.size());
    for (const auto& [attr, value] : fields->object) {
      if (attr.empty()) return BadRequest("empty attribute name" + at);
      if (value.kind != JsonValue::Kind::kString) {
        return BadRequest("field '" + attr + "' must be a string" + at);
      }
      parsed.fields.emplace_back(attr, value.string);
    }
    out->records.push_back(std::move(parsed));
  }
  return Status::OK();
}

}  // namespace

Result<Request> ParseRequest(std::string_view line, long long* id_out) {
  BDI_ASSIGN_OR_RETURN(JsonValue root, ParseJson(line));
  if (root.kind != JsonValue::Kind::kObject) {
    return BadRequest("must be a JSON object");
  }
  Request out;
  Status status = ReadInt(root, "id", 0, (1LL << 53), &out.id);
  if (!status.ok()) return status;
  // The id is valid from here on: surface it to the caller before any
  // later validation can fail, so error responses echo it (the audit in
  // serve_protocol_test pins this for every error path below).
  if (id_out != nullptr && out.id >= 0) *id_out = out.id;

  const JsonValue* op = root.Find("op");
  if (op == nullptr || op->kind != JsonValue::Kind::kString) {
    return BadRequest("'op' must be a string");
  }
  if (op->string == "ask") {
    out.op = RequestOp::kAsk;
    status = CheckKeys(root, {"op", "id", "entity", "attribute"});
    if (!status.ok()) return status;
    status = ReadString(root, "entity", &out.entity);
    if (!status.ok()) return status;
    status = ReadString(root, "attribute", &out.attribute);
    if (!status.ok()) return status;
  } else if (op->string == "find") {
    out.op = RequestOp::kFind;
    status = CheckKeys(root, {"op", "id", "entity", "k"});
    if (!status.ok()) return status;
    status = ReadString(root, "entity", &out.entity);
    if (!status.ok()) return status;
    long long k = out.k;
    status = ReadInt(root, "k", 1, kMaxFindK, &k);
    if (!status.ok()) return status;
    out.k = static_cast<int>(k);
  } else if (op->string == "stats") {
    out.op = RequestOp::kStats;
    status = CheckKeys(root, {"op", "id"});
    if (!status.ok()) return status;
  } else if (op->string == "update") {
    out.op = RequestOp::kUpdate;
    status = CheckKeys(root, {"op", "id", "records"});
    if (!status.ok()) return status;
    status = ParseUpdateRecords(root, &out);
    if (!status.ok()) return status;
  } else if (op->string == "shutdown") {
    out.op = RequestOp::kShutdown;
    status = CheckKeys(root, {"op", "id"});
    if (!status.ok()) return status;
  } else {
    return BadRequest("unknown op '" + op->string + "'");
  }
  return out;
}

std::string EncodeError(long long id, std::string_view message) {
  std::string out = "{\"ok\":false";
  if (id >= 0) {
    out += ",\"id\":";
    out += std::to_string(id);
  }
  out += ",\"error\":";
  AppendJsonString(&out, message);
  out += "}";
  return out;
}

std::string EncodeOverloaded(long long id, const BatchRejection& rejection) {
  std::string out = "{\"ok\":false";
  if (id >= 0) {
    out += ",\"id\":";
    out += std::to_string(id);
  }
  out += ",\"error\":\"overloaded\",\"retry_after_ms\":";
  AppendJsonNumber(&out, rejection.retry_after_ms);
  out += ",\"pending_batches\":";
  out += std::to_string(rejection.pending_batches);
  out += ",\"pending_records\":";
  out += std::to_string(rejection.pending_records);
  out += "}";
  return out;
}

}  // namespace bdi::serve
