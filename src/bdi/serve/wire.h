#ifndef BDI_SERVE_WIRE_H_
#define BDI_SERVE_WIRE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bdi/common/result.h"

namespace bdi::serve {

/// Hard cap on one wire-protocol line (request or response). Longer lines
/// are rejected with InvalidArgument before any parsing — the serving loop
/// must never buffer unbounded client input.
inline constexpr size_t kMaxWireBytes = 1 << 20;

/// Maximum container nesting depth ParseJson accepts. The protocol needs
/// three levels (request -> records array -> record object -> fields
/// object); the cap just bounds hostile recursion.
inline constexpr size_t kMaxWireDepth = 8;

/// One parsed JSON value of the serving wire protocol (docs/SERVING.md): a
/// tagged union over the six JSON kinds. Object member order is preserved
/// as parsed; duplicate keys are rejected at parse time, so Find() is
/// unambiguous.
struct JsonValue {
  /// JSON value kinds, tagged on `kind`.
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Which union member is meaningful.
  Kind kind = Kind::kNull;
  /// Value when kind == kBool.
  bool boolean = false;
  /// Value when kind == kNumber (doubles only — the protocol has no
  /// integer type; callers range-check and floor).
  double number = 0.0;
  /// Value when kind == kString (raw UTF-8 bytes after unescaping; may
  /// contain embedded NUL).
  std::string string;
  /// Elements when kind == kArray.
  std::vector<JsonValue> array;
  /// Members when kind == kObject, in parse order, keys unique.
  std::vector<std::pair<std::string, JsonValue>> object;

  /// The member named `key` of an object value, or nullptr when absent
  /// (or when this value is not an object).
  const JsonValue* Find(std::string_view key) const;
};

/// Parses exactly one JSON value spanning the whole input (leading and
/// trailing ASCII whitespace allowed, anything else after the value is an
/// error). Strict by design: rejects inputs over kMaxWireBytes, nesting
/// over kMaxWireDepth, duplicate object keys, unescaped control
/// characters, invalid escapes, unpaired surrogates, and non-finite
/// numbers. Never aborts — every malformed input is an InvalidArgument
/// Status naming the byte offset.
Result<JsonValue> ParseJson(std::string_view text);

/// Appends `s` to `out` as a quoted JSON string, escaping quotes,
/// backslashes and control characters (\uXXXX form for bytes < 0x20).
void AppendJsonString(std::string* out, std::string_view s);

/// Appends a finite double with shortest round-trip formatting (%.17g
/// trimmed); non-finite values serialize as null (JSON has no NaN/Inf).
void AppendJsonNumber(std::string* out, double value);

}  // namespace bdi::serve

#endif  // BDI_SERVE_WIRE_H_
