#ifndef BDI_SERVE_SERVER_H_
#define BDI_SERVE_SERVER_H_

#include <atomic>
#include <iosfwd>
#include <string>

#include "bdi/common/result.h"
#include "bdi/serve/store.h"

namespace bdi::serve {

/// Serving-loop configuration.
struct ServerConfig {
  /// Threads for parallel query bursts (0 = shared executor pool, 1 =
  /// serial). Responses are emitted in request order either way.
  size_t num_threads = 0;
  /// Largest number of buffered request lines one stream burst gathers
  /// before answering (bounds burst memory).
  size_t max_burst = 256;
};

/// The `bdi serve` request loop over an EntityStore: parses wire requests
/// (protocol.h), dispatches queries against the store's current snapshot
/// and update batches through its writer path, and encodes one JSON
/// response line per request. Malformed input never aborts — every
/// protocol error becomes an `{"ok":false,...}` response.
///
/// Two transports share the handler:
///  * ServeStream — JSON-lines over any istream/ostream (stdin/stdout in
///    the CLI). Consecutive already-buffered read-only requests are
///    answered as one parallel burst on the executor; updates are
///    barriers within the stream, so responses keep request order.
///  * ServeTcp — line-delimited JSON over TCP, one thread per connection;
///    queries on different connections run concurrently while updates
///    serialize inside the store.
class Server {
 public:
  /// `store` must outlive the server.
  Server(EntityStore* store, const ServerConfig& config = {});

  /// Handles exactly one request line and returns its one-line response
  /// (no trailing newline). Never fails: errors encode as responses. Also
  /// performs shutdown detection — after a shutdown request,
  /// shutdown_requested() is true.
  std::string HandleLine(const std::string& line);

  /// Serves `in` until EOF or a shutdown request; writes one response
  /// line per request line to `out` (flushed per burst).
  Status ServeStream(std::istream& in, std::ostream& out);

  /// Binds `port` (0 = ephemeral), prints "listening on <port>" to `log`,
  /// and serves connections until a shutdown request arrives on any of
  /// them. Returns IOError when the socket cannot be bound.
  Status ServeTcp(int port, std::ostream& log);

  /// True once any handled request was a shutdown.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

 private:
  /// Dispatches one parsed request against the store.
  std::string Dispatch(const Request& request);

  EntityStore* store_;
  ServerConfig config_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace bdi::serve

#endif  // BDI_SERVE_SERVER_H_
