#include "bdi/serve/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "bdi/common/posix_io.h"
#include "bdi/storage/crc32c.h"
#include "bdi/storage/format.h"

namespace bdi::serve {

namespace {

// Sanity cap on one frame payload. A batch is bounded by kMaxBatchRecords
// records that each arrived on a <= 1 MiB wire line, so real payloads are
// far smaller; the cap stops a corrupt length varint from driving a huge
// allocation before the checksum gets a chance to reject the frame.
constexpr uint64_t kMaxWalPayloadBytes = 64ull << 20;

Status Corrupt(size_t offset, const std::string& what) {
  return Status::IOError("wal: corrupt frame at offset " +
                         std::to_string(offset) + ": " + what);
}

void AppendLenPrefixed(std::string_view s, std::string* out) {
  storage::PutVarint(s.size(), out);
  out->append(s.data(), s.size());
}

// Appends one complete frame wrapping `payload`.
void AppendFrame(std::string_view payload, std::string* out) {
  storage::PutU32(kWalFrameMagic, out);
  storage::PutVarint(payload.size(), out);
  out->append(payload.data(), payload.size());
  storage::PutU32(storage::Crc32c(payload), out);
}

Result<std::string_view> ReadLenPrefixed(std::string_view payload,
                                         size_t* offset) {
  BDI_ASSIGN_OR_RETURN(uint64_t len, storage::GetVarint(payload, offset));
  if (*offset + len > payload.size()) {
    return Status::IOError("wal: string runs past the payload");
  }
  std::string_view s = payload.substr(*offset, len);
  *offset += len;
  return s;
}

// Decodes a batch-frame payload (after the kind byte) into a WalBatch.
Result<WalBatch> DecodeBatchPayload(std::string_view payload,
                                    size_t* offset) {
  WalBatch batch;
  BDI_ASSIGN_OR_RETURN(batch.seq, storage::GetVarint(payload, offset));
  BDI_ASSIGN_OR_RETURN(uint64_t num_records,
                       storage::GetVarint(payload, offset));
  if (num_records == 0 || num_records > kMaxBatchRecords) {
    return Status::IOError("wal: batch record count out of range");
  }
  batch.records.reserve(num_records);
  for (uint64_t r = 0; r < num_records; ++r) {
    UpdateRecord record;
    BDI_ASSIGN_OR_RETURN(std::string_view source,
                         ReadLenPrefixed(payload, offset));
    if (source.empty()) return Status::IOError("wal: empty record source");
    record.source.assign(source);
    BDI_ASSIGN_OR_RETURN(uint64_t num_fields,
                         storage::GetVarint(payload, offset));
    if (num_fields == 0) return Status::IOError("wal: record has no fields");
    record.fields.reserve(num_fields);
    for (uint64_t f = 0; f < num_fields; ++f) {
      BDI_ASSIGN_OR_RETURN(std::string_view attr,
                           ReadLenPrefixed(payload, offset));
      if (attr.empty()) {
        return Status::IOError("wal: empty attribute name");
      }
      BDI_ASSIGN_OR_RETURN(std::string_view value,
                           ReadLenPrefixed(payload, offset));
      record.fields.emplace_back(std::string(attr), std::string(value));
    }
    batch.records.push_back(std::move(record));
  }
  return batch;
}

}  // namespace

void AppendWalFileHeader(uint64_t base_seq, std::string* out) {
  out->append(reinterpret_cast<const char*>(kWalMagic), sizeof(kWalMagic));
  std::string payload;
  payload.push_back(static_cast<char>(kWalFrameHeader));
  storage::PutVarint(base_seq, &payload);
  AppendFrame(payload, out);
}

void AppendWalBatchFrame(uint64_t seq,
                         const std::vector<UpdateRecord>& records,
                         std::string* out) {
  std::string payload;
  payload.push_back(static_cast<char>(kWalFrameBatch));
  storage::PutVarint(seq, &payload);
  storage::PutVarint(records.size(), &payload);
  for (const UpdateRecord& record : records) {
    AppendLenPrefixed(record.source, &payload);
    storage::PutVarint(record.fields.size(), &payload);
    for (const auto& [attr, value] : record.fields) {
      AppendLenPrefixed(attr, &payload);
      AppendLenPrefixed(value, &payload);
    }
  }
  AppendFrame(payload, out);
}

Result<WalReplay> ParseWal(std::string_view bytes) {
  WalReplay replay;
  if (bytes.size() < sizeof(kWalMagic)) {
    // A torn initial Create never acknowledged an append; the partial
    // magic must still be a prefix of the real one, else this is not a
    // WAL at all.
    if (!bytes.empty() &&
        std::memcmp(bytes.data(), kWalMagic, bytes.size()) != 0) {
      return Status::IOError("wal: not a WAL file (bad magic)");
    }
    replay.truncated_tail = true;
    return replay;
  }
  if (std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::IOError("wal: not a WAL file (bad magic)");
  }
  size_t offset = sizeof(kWalMagic);
  uint64_t expected_seq = 0;
  while (offset < bytes.size()) {
    const size_t frame_start = offset;
    // Frame magic. Fewer than 4 bytes left is a torn tail; wrong bytes in
    // the middle of the file are corruption.
    Result<uint32_t> magic = storage::GetU32(bytes, &offset);
    if (!magic.ok()) {
      replay.truncated_tail = true;
      break;
    }
    if (magic.value() != kWalFrameMagic) {
      return Corrupt(frame_start, "bad frame magic");
    }
    Result<uint64_t> len = storage::GetVarint(bytes, &offset);
    if (!len.ok()) {
      // A torn append can cut the length varint; an overlong varint with
      // plenty of file left is corruption.
      if (bytes.size() - offset < 10) {
        replay.truncated_tail = true;
        break;
      }
      return Corrupt(frame_start, "bad payload length");
    }
    if (len.value() > kMaxWalPayloadBytes) {
      return Corrupt(frame_start, "payload length out of range");
    }
    if (offset + len.value() + 4 > bytes.size()) {
      replay.truncated_tail = true;
      break;
    }
    std::string_view payload = bytes.substr(offset, len.value());
    offset += len.value();
    size_t crc_offset = offset;
    uint32_t stored_crc = storage::GetU32(bytes, &crc_offset).value();
    offset = crc_offset;
    if (storage::Crc32c(payload) != stored_crc) {
      if (offset == bytes.size()) {
        // Final frame: a partially flushed sector looks exactly like
        // this. Drop it as a torn tail rather than refusing recovery.
        replay.truncated_tail = true;
        break;
      }
      return Corrupt(frame_start, "checksum mismatch");
    }
    if (payload.empty()) return Corrupt(frame_start, "empty payload");
    uint8_t kind = static_cast<uint8_t>(payload[0]);
    size_t payload_offset = 1;
    if (!replay.has_header) {
      if (kind != kWalFrameHeader) {
        return Corrupt(frame_start, "first frame is not the header");
      }
      Result<uint64_t> base =
          storage::GetVarint(payload, &payload_offset);
      if (!base.ok() || payload_offset != payload.size()) {
        return Corrupt(frame_start, "bad header payload");
      }
      replay.has_header = true;
      replay.base_seq = base.value();
      expected_seq = base.value();
    } else {
      if (kind != kWalFrameBatch) {
        return Corrupt(frame_start, "unknown frame kind");
      }
      Result<WalBatch> batch = DecodeBatchPayload(payload, &payload_offset);
      if (!batch.ok() || payload_offset != payload.size()) {
        return Corrupt(frame_start,
                       batch.ok() ? "trailing payload bytes"
                                  : batch.status().message());
      }
      if (batch->seq != expected_seq + 1) {
        return Corrupt(frame_start,
                       "batch sequence " + std::to_string(batch->seq) +
                           " after " + std::to_string(expected_seq) +
                           " (duplicated or out-of-order frame)");
      }
      expected_seq = batch->seq;
      replay.batches.push_back(std::move(batch).value());
    }
    replay.valid_bytes = offset;
  }
  if (!replay.has_header) {
    // Valid magic, no complete header: the initial Create tore. Nothing
    // was ever acknowledged from this file, so recovery recreates it.
    replay.base_seq = 0;
    replay.valid_bytes = 0;
    replay.batches.clear();
    replay.truncated_tail = true;
  }
  return replay;
}

std::string WalCheckpointPath(const std::string& wal_path, uint64_t seq) {
  return wal_path + ".ckpt-" + std::to_string(seq) + ".bds";
}

Status RemoveStaleCheckpoints(const std::string& wal_path,
                              uint64_t keep_seq) {
  size_t slash = wal_path.find_last_of('/');
  std::string dir =
      slash == std::string::npos ? "." : wal_path.substr(0, slash);
  std::string base =
      slash == std::string::npos ? wal_path : wal_path.substr(slash + 1);
  const std::string prefix = base + ".ckpt-";
  const std::string suffix = ".bds";
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IOError("wal: cannot scan " + dir + ": " +
                           std::strerror(errno));
  }
  const std::string keep = WalCheckpointPath(base, keep_seq);
  while (dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;
    }
    if (name == keep) continue;
    ::unlink((dir + "/" + name).c_str());
  }
  ::closedir(d);
  return Status::OK();
}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<Wal>> Wal::Create(const std::string& path,
                                         uint64_t base_seq, bool do_fsync) {
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::IOError("wal: cannot create " + path + ": " +
                           std::strerror(errno));
  }
  std::string header;
  AppendWalFileHeader(base_seq, &header);
  Status written = io::WriteAllFd(fd, header);
  if (written.ok() && do_fsync) written = io::FsyncFd(fd);
  if (written.ok() && do_fsync) written = io::FsyncParentDir(path);
  if (!written.ok()) {
    ::close(fd);
    return written;
  }
  return std::unique_ptr<Wal>(
      new Wal(fd, path, header.size(), do_fsync));
}

Result<std::unique_ptr<Wal>> Wal::OpenForAppend(const std::string& path,
                                                uint64_t valid_bytes,
                                                bool do_fsync) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError("wal: cannot stat " + path + ": " +
                           std::strerror(errno));
  }
  if (static_cast<uint64_t>(st.st_size) > valid_bytes) {
    BDI_RETURN_IF_ERROR(io::TruncateFile(path, valid_bytes));
  } else if (static_cast<uint64_t>(st.st_size) < valid_bytes) {
    return Status::IOError("wal: " + path + " shorter than its valid prefix");
  }
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("wal: cannot open " + path + ": " +
                           std::strerror(errno));
  }
  return std::unique_ptr<Wal>(new Wal(fd, path, valid_bytes, do_fsync));
}

Status Wal::AppendBatch(uint64_t seq,
                        const std::vector<UpdateRecord>& records) {
  std::string frame;
  AppendWalBatchFrame(seq, records, &frame);
  BDI_RETURN_IF_ERROR(io::WriteAllFd(fd_, frame));
  if (fsync_) BDI_RETURN_IF_ERROR(io::FsyncFd(fd_));
  bytes_ += frame.size();
  return Status::OK();
}

}  // namespace bdi::serve
