#ifndef BDI_SERVE_PROTOCOL_H_
#define BDI_SERVE_PROTOCOL_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bdi/common/result.h"
#include "bdi/serve/wire.h"

namespace bdi::serve {

/// Upper bound on the `k` parameter of find requests; larger values are
/// rejected rather than clamped so clients learn about the limit.
inline constexpr int kMaxFindK = 100;

/// Upper bound on records in one update batch. Bounds per-request memory;
/// clients stream larger loads as several batches.
inline constexpr size_t kMaxBatchRecords = 100000;

/// Request verbs of the serving protocol (docs/SERVING.md).
enum class RequestOp {
  /// Look up one attribute value of the best-matching entity.
  kAsk,
  /// Rank the top-k entities matching a free-text query.
  kFind,
  /// Report store statistics (snapshot version, entities, records).
  kStats,
  /// Apply a batch of new source records through incremental linkage.
  kUpdate,
  /// Drain in-flight work and stop the serving loop.
  kShutdown,
};

/// One new record inside an update request: the claiming source and its
/// attribute -> value field map (field order preserved as sent).
struct UpdateRecord {
  /// Source identifier (e.g. a site name); never empty after validation.
  std::string source;
  /// Attribute/value pairs; at least one after validation.
  std::vector<std::pair<std::string, std::string>> fields;
};

/// One validated wire request. Only the members relevant to `op` are
/// populated; everything else keeps its default.
struct Request {
  /// The verb.
  RequestOp op = RequestOp::kStats;
  /// Free-text entity query (ask, find).
  std::string entity;
  /// Attribute name to answer (ask).
  std::string attribute;
  /// Number of entities to return (find); in [1, kMaxFindK].
  int k = 5;
  /// Client-chosen request id echoed in the response, or -1 when absent.
  /// Lets clients correlate pipelined responses with requests.
  long long id = -1;
  /// New records to ingest (update).
  std::vector<UpdateRecord> records;
};

/// Parses and validates one request line. Strict: unknown `op` values,
/// unknown keys, wrong member types, out-of-range `k`, empty entity
/// queries, and empty/oversized update batches are all InvalidArgument —
/// the serving loop never aborts on client input. When `id_out` is
/// non-null it receives the request id as soon as one parses, even if a
/// later member fails validation — so every error response can echo the
/// id the client sent (it stays untouched when no valid id was seen).
Result<Request> ParseRequest(std::string_view line,
                             long long* id_out = nullptr);

/// Serializes a protocol error as a one-line JSON response
/// `{"ok":false,"id":<id>,"error":<message>}` (the id member is omitted
/// when `id` < 0).
std::string EncodeError(long long id, std::string_view message);

/// Why admission control shed an update batch (docs/SERVING.md,
/// "Admission control"): the load the store was carrying when it said no,
/// plus a drain-time hint derived from recent batch-apply latencies.
struct BatchRejection {
  /// Suggested client back-off before retrying, in milliseconds: the
  /// in-flight queue depth times the recent mean batch-apply time (the
  /// signal behind the bdi.serve.batch.apply_ms histogram), floored at 1.
  double retry_after_ms = 0.0;
  /// Update batches admitted but not yet applied at rejection time.
  uint64_t pending_batches = 0;
  /// Records across those pending batches.
  uint64_t pending_records = 0;
};

/// Serializes a shed batch as a structured, re-parseable one-line error:
/// `{"ok":false,"id":<id>,"error":"overloaded","retry_after_ms":...,
/// "pending_batches":...,"pending_records":...}` — clients match
/// `error == "overloaded"` and honor `retry_after_ms` (the id member is
/// omitted when `id` < 0).
std::string EncodeOverloaded(long long id, const BatchRejection& rejection);

}  // namespace bdi::serve

#endif  // BDI_SERVE_PROTOCOL_H_
