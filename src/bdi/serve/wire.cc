#include "bdi/serve/wire.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bdi::serve {

namespace {

// Recursive-descent parser over the input bytes. All failure paths carry
// the byte offset so fuzz findings are reproducible from the message.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipSpace();
    JsonValue value;
    Status status = ParseValue(&value, 0);
    if (!status.ok()) return status;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing bytes after the JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("wire: " + what + " at byte " +
                                   std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    size_t len = std::strlen(word);
    if (text_.substr(pos_, len) == word) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, size_t depth) {
    if (depth > kMaxWireDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
        if (ConsumeWord("true")) {
          out->kind = JsonValue::Kind::kBool;
          out->boolean = true;
          return Status::OK();
        }
        return Error("expected 'true'");
      case 'f':
        if (ConsumeWord("false")) {
          out->kind = JsonValue::Kind::kBool;
          out->boolean = false;
          return Status::OK();
        }
        return Error("expected 'false'");
      case 'n':
        if (ConsumeWord("null")) {
          out->kind = JsonValue::Kind::kNull;
          return Status::OK();
        }
        return Error("expected 'null'");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, size_t depth) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected a quoted object key");
      }
      std::string key;
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      for (const auto& [existing, unused] : out->object) {
        if (existing == key) return Error("duplicate object key '" + key + "'");
      }
      SkipSpace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, size_t depth) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      Status status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      out->array.push_back(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  // One \uXXXX hex quad (the "\u" is already consumed).
  Status ParseHexQuad(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Error("unescaped control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (pos_ >= text_.size()) return Error("truncated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          Status status = ParseHexQuad(&cp);
          if (!status.ok()) return status;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (!(Consume('\\') && Consume('u'))) {
              return Error("unpaired high surrogate");
            }
            uint32_t low = 0;
            status = ParseHexQuad(&low);
            if (!status.ok()) return status;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
      // sign consumed; digits must follow.
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Error("expected a value");
    }
    // JSON grammar: no leading zeros ("01" is two tokens, reject).
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      return Error("leading zero in number");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("expected digits after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("expected exponent digits");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return Error("number out of range");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

Result<JsonValue> ParseJson(std::string_view text) {
  if (text.size() > kMaxWireBytes) {
    return Status::InvalidArgument(
        "wire: input exceeds " + std::to_string(kMaxWireBytes) + " bytes");
  }
  return Parser(text).Parse();
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void AppendJsonNumber(std::string* out, double value) {
  if (!std::isfinite(value)) {
    *out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Prefer the shortest representation that round-trips exactly.
  for (int digits = 1; digits < 17; ++digits) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", digits, value);
    if (std::strtod(shorter, nullptr) == value) {
      *out += shorter;
      return;
    }
  }
  *out += buf;
}

}  // namespace bdi::serve
