#ifndef BDI_SERVE_SNAPSHOT_H_
#define BDI_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdi/core/integrator.h"
#include "bdi/model/dataset.h"

namespace bdi::serve {

/// One supporting claim behind a fused value (provenance in responses).
struct ServedClaim {
  /// Claiming source's name.
  std::string source;
  /// The (normalized) value that source asserted.
  std::string value;
  /// Whether the claim agrees with the fused value.
  bool agrees = false;
};

/// One fused attribute cell of a served entity.
struct ServedValue {
  /// Mediated-schema cluster index of the attribute.
  int attr = -1;
  /// The fused (chosen) value.
  std::string value;
  /// Fusion confidence of the chosen value.
  double confidence = 0.0;
  /// All claims behind the cell, in claim order.
  std::vector<ServedClaim> support;
};

/// One entity cluster materialized as warm serving state.
struct ServedEntity {
  /// Linkage cluster id (stable within one snapshot).
  EntityId cluster = kInvalidEntity;
  /// Records linked into the cluster.
  uint32_t num_records = 0;
  /// Representative display text (longest record name seen).
  std::string text;
  /// TokenSet of `text` — the index terms of the entity.
  std::vector<std::string> tokens;
  /// Fused cells, sorted by `attr` ascending.
  std::vector<ServedValue> values;
};

/// One find hit: the entity and its match score.
struct FindHit {
  /// Cluster id of the hit.
  EntityId cluster = kInvalidEntity;
  /// Match score in (0, 1].
  double score = 0.0;
  /// Representative display text of the hit.
  std::string text;
};

/// A resolved ask answer (self-contained: no report/dataset needed to
/// serialize it). `found()` mirrors core::Answer.
struct AskAnswer {
  /// Best-matching entity cluster, or kInvalidEntity when nothing matched.
  EntityId cluster = kInvalidEntity;
  /// Representative text of that entity.
  std::string entity_name;
  /// Resolved mediated attribute name.
  std::string attribute;
  /// Fused value; empty when no answer exists.
  std::string value;
  /// Fusion confidence of `value`.
  double confidence = 0.0;
  /// How well the entity matched the query.
  double entity_match = 0.0;
  /// How well the attribute matched the query.
  double attribute_match = 0.0;
  /// Provenance of `value`.
  std::vector<ServedClaim> support;

  /// True when a fused value was resolved.
  bool found() const { return !value.empty(); }
};

/// An immutable, sharded view of one integration result, built once and
/// then served concurrently: entities are hashed to shards by cluster id,
/// each shard carries a token -> entity posting index, and all query
/// methods are const and thread-safe. Store publication swaps whole
/// snapshots (RCU-style), so a reader holding a shared_ptr sees one
/// consistent version for the lifetime of its request.
///
/// Query semantics are index-accelerated (docs/SERVING.md): find only
/// considers entities sharing at least one token with the query (posting
/// lookups), scored 0.7 * overlap-coefficient + 0.3 * Monge-Elkan like the
/// batch QueryEngine, ties broken by ascending cluster id.
class Snapshot {
 public:
  /// Materializes a snapshot from a finished pipeline run. `version` tags
  /// the snapshot for response correlation; `num_threads` bounds build
  /// parallelism (shards build independently). `report` and `dataset` are
  /// only read during Build — the snapshot owns all its state.
  static std::shared_ptr<const Snapshot> Build(
      const core::IntegrationReport& report, const Dataset& dataset,
      size_t num_shards, uint64_t version, size_t num_threads);

  /// Top-k entities matching the keywords, best first (score desc, then
  /// cluster asc). Entities sharing no token with the query are not
  /// candidates.
  std::vector<FindHit> Find(const std::string& keywords, size_t k) const;

  /// Answers "<attribute> of <entity>": best find hit, best mediated
  /// attribute (Jaro-Winkler + containment, rejected below 0.5), fused
  /// value with provenance.
  AskAnswer Ask(const std::string& attribute_keywords,
                const std::string& entity_keywords) const;

  /// Monotone snapshot version assigned by the store.
  uint64_t version() const { return version_; }
  /// Number of shards entities are hashed over.
  size_t num_shards() const { return shards_.size(); }
  /// Total served entities across shards.
  size_t num_entities() const { return num_entities_; }
  /// Total records behind those entities.
  size_t num_records() const { return num_records_; }

  /// Deterministic full-state dump used by the equivalence tests: shards,
  /// entities, values and support in index order, doubles printed as %a
  /// hex so bitwise equality is textual equality. The snapshot version is
  /// deliberately excluded — two stores that converged to the same state
  /// through different batch partitions compare equal.
  std::string DebugString() const;

 private:
  /// One shard: its entities (cluster ascending) plus the token postings
  /// over their index terms (slot indexes into `entities`).
  struct Shard {
    std::vector<ServedEntity> entities;
    std::unordered_map<std::string, std::vector<uint32_t>> postings;
  };

  Snapshot() = default;

  uint64_t version_ = 0;
  size_t num_entities_ = 0;
  size_t num_records_ = 0;
  /// Mediated-schema attribute cluster names, indexed by cluster.
  std::vector<std::string> attribute_names_;
  std::vector<Shard> shards_;
};

}  // namespace bdi::serve

#endif  // BDI_SERVE_SNAPSHOT_H_
