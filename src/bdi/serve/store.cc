#include "bdi/serve/store.h"

#include <utility>

#include "bdi/common/metrics.h"
#include "bdi/common/timer.h"

namespace bdi::serve {

namespace {

metrics::Counter& BatchesCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.serve.batches");
  return *counter;
}

metrics::Counter& BatchRecordsCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.serve.batch.records");
  return *counter;
}

metrics::Histogram& BatchApplyHistogram() {
  static metrics::Histogram* histogram =
      metrics::Registry::Get().RegisterHistogram(
          "bdi.serve.batch.apply_ms", {1.0, 5.0, 10.0, 25.0, 50.0, 100.0,
                                       250.0, 500.0, 1000.0, 5000.0});
  return *histogram;
}

metrics::Gauge& SnapshotVersionGauge() {
  static metrics::Gauge* gauge =
      metrics::Registry::Get().RegisterGauge("bdi.serve.snapshot.version");
  return *gauge;
}

metrics::Gauge& SnapshotEntitiesGauge() {
  static metrics::Gauge* gauge =
      metrics::Registry::Get().RegisterGauge("bdi.serve.snapshot.entities");
  return *gauge;
}

metrics::Gauge& SnapshotRecordsGauge() {
  static metrics::Gauge* gauge =
      metrics::Registry::Get().RegisterGauge("bdi.serve.snapshot.records");
  return *gauge;
}

}  // namespace

EntityStore::EntityStore(StoreConfig config) : config_(std::move(config)) {}

Result<std::unique_ptr<EntityStore>> EntityStore::Create(
    Dataset bootstrap, const StoreConfig& config) {
  if (bootstrap.num_records() == 0) {
    return Status::InvalidArgument(
        "serve: the bootstrap corpus has no records");
  }
  auto store = std::unique_ptr<EntityStore>(new EntityStore(config));
  store->dataset_ = std::move(bootstrap);
  for (const SourceInfo& source : store->dataset_.sources()) {
    store->source_ids_.emplace(source.name, source.id);
  }

  core::IncrementalIntegrator::Config integrator_config;
  integrator_config.integrator = config.integrator;
  // The equivalence invariant needs alignment timing out of the picture:
  // realigning every refresh makes K batches converge to the one-batch
  // schema bitwise.
  integrator_config.realign_schema_each_refresh = true;
  // The bootstrap pass runs unbudgeted — budgets bound *live* batch
  // latency, not initial build fidelity.
  integrator_config.linker.scorer = config.integrator.linker.scorer;
  integrator_config.linker.threshold = config.integrator.linker.threshold;
  integrator_config.linker.use_prefilter =
      config.integrator.linker.use_prefilter;
  store->integrator_ = std::make_unique<core::IncrementalIntegrator>(
      &store->dataset_, integrator_config);
  store->integrator_->Refresh();

  store->version_ = 1;
  store->snapshot_.store(
      Snapshot::Build(store->integrator_->report(), store->dataset_,
                      config.num_shards, store->version_,
                      config.num_threads),
      std::memory_order_release);
  // Live batches run under the configured budgets from here on.
  store->integrator_->linker().set_comparison_budget(
      config.comparison_budget);
  store->integrator_->linker().set_budget_ms(config.budget_ms);

  if (metrics::Enabled()) {
    std::shared_ptr<const Snapshot> snapshot = store->snapshot();
    SnapshotVersionGauge().Set(static_cast<int64_t>(snapshot->version()));
    SnapshotEntitiesGauge().Set(
        static_cast<int64_t>(snapshot->num_entities()));
    SnapshotRecordsGauge().Set(static_cast<int64_t>(snapshot->num_records()));
  }
  return store;
}

Result<BatchResult> EntityStore::ApplyBatch(
    const std::vector<UpdateRecord>& records) {
  if (records.empty()) {
    return Status::InvalidArgument("serve: empty update batch");
  }
  WallTimer timer;
  std::lock_guard<std::mutex> lock(write_mutex_);
  for (const UpdateRecord& record : records) {
    auto [it, inserted] =
        source_ids_.emplace(record.source, kInvalidSource);
    if (inserted) it->second = dataset_.AddSource(record.source);
    dataset_.AddRecord(it->second, record.fields);
  }
  size_t comparisons = integrator_->Refresh();

  BatchResult result;
  result.records = records.size();
  result.comparisons = comparisons;
  result.budget_stopped =
      integrator_->linker().last_progressive().budget_stopped;
  result.deadline_stopped =
      integrator_->linker().last_progressive().deadline_stopped;
  result.version = ++version_;

  std::shared_ptr<const Snapshot> next =
      Snapshot::Build(integrator_->report(), dataset_, config_.num_shards,
                      result.version, config_.num_threads);
  // The publication point: one atomic swap. Readers holding the previous
  // snapshot finish on it; new readers see this version.
  snapshot_.store(next, std::memory_order_release);
  num_batches_.fetch_add(1, std::memory_order_relaxed);
  result.apply_ms = timer.ElapsedMillis();

  if (metrics::Enabled()) {
    BatchesCounter().Add();
    BatchRecordsCounter().Add(records.size());
    BatchApplyHistogram().Observe(result.apply_ms);
    SnapshotVersionGauge().Set(static_cast<int64_t>(next->version()));
    SnapshotEntitiesGauge().Set(static_cast<int64_t>(next->num_entities()));
    SnapshotRecordsGauge().Set(static_cast<int64_t>(next->num_records()));
  }
  return result;
}

}  // namespace bdi::serve
