#include "bdi/serve/store.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <utility>

#include "bdi/common/metrics.h"
#include "bdi/common/posix_io.h"
#include "bdi/common/timer.h"
#include "bdi/storage/bds_reader.h"
#include "bdi/storage/bds_writer.h"

namespace bdi::serve {

namespace {

metrics::Counter& BatchesCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.serve.batches");
  return *counter;
}

metrics::Counter& BatchRecordsCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.serve.batch.records");
  return *counter;
}

metrics::Histogram& BatchApplyHistogram() {
  static metrics::Histogram* histogram =
      metrics::Registry::Get().RegisterHistogram(
          "bdi.serve.batch.apply_ms", {1.0, 5.0, 10.0, 25.0, 50.0, 100.0,
                                       250.0, 500.0, 1000.0, 5000.0});
  return *histogram;
}

metrics::Gauge& SnapshotVersionGauge() {
  static metrics::Gauge* gauge =
      metrics::Registry::Get().RegisterGauge("bdi.serve.snapshot.version");
  return *gauge;
}

metrics::Gauge& SnapshotEntitiesGauge() {
  static metrics::Gauge* gauge =
      metrics::Registry::Get().RegisterGauge("bdi.serve.snapshot.entities");
  return *gauge;
}

metrics::Gauge& SnapshotRecordsGauge() {
  static metrics::Gauge* gauge =
      metrics::Registry::Get().RegisterGauge("bdi.serve.snapshot.records");
  return *gauge;
}

metrics::Counter& WalAppendsCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.serve.wal.appends");
  return *counter;
}

metrics::Counter& WalAppendBytesCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.serve.wal.append_bytes");
  return *counter;
}

metrics::Histogram& WalAppendHistogram() {
  static metrics::Histogram* histogram =
      metrics::Registry::Get().RegisterHistogram(
          "bdi.serve.wal.append_us",
          {50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
           50000.0, 250000.0});
  return *histogram;
}

metrics::Counter& WalRotationsCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.serve.wal.rotations");
  return *counter;
}

metrics::Counter& WalRotationFailuresCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter(
          "bdi.serve.wal.rotation_failures");
  return *counter;
}

metrics::Counter& WalReplayedBatchesCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter(
          "bdi.serve.wal.replayed.batches");
  return *counter;
}

metrics::Counter& WalReplayedRecordsCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter(
          "bdi.serve.wal.replayed.records");
  return *counter;
}

metrics::Counter& WalTruncatedTailsCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter(
          "bdi.serve.wal.truncated_tails");
  return *counter;
}

metrics::Counter& AdmissionAdmittedCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter(
          "bdi.serve.admission.admitted");
  return *counter;
}

metrics::Counter& AdmissionShedCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.serve.admission.shed");
  return *counter;
}

metrics::Counter& AdmissionShedRecordsCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter(
          "bdi.serve.admission.shed_records");
  return *counter;
}

metrics::Gauge& PendingBatchesGauge() {
  static metrics::Gauge* gauge = metrics::Registry::Get().RegisterGauge(
      "bdi.serve.admission.pending.batches");
  return *gauge;
}

metrics::Gauge& PendingRecordsGauge() {
  static metrics::Gauge* gauge = metrics::Registry::Get().RegisterGauge(
      "bdi.serve.admission.pending.records");
  return *gauge;
}

metrics::Histogram& RetryAfterHistogram() {
  static metrics::Histogram* histogram =
      metrics::Registry::Get().RegisterHistogram(
          "bdi.serve.admission.retry_after_ms",
          {1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
           5000.0});
  return *histogram;
}

}  // namespace

/// Decrements the pending-work counters when an admitted batch leaves
/// ApplyBatch, whatever the exit path.
struct EntityStore::PendingGuard {
  EntityStore* store;
  size_t records;
  ~PendingGuard() {
    uint64_t batches =
        store->pending_batches_.fetch_sub(1, std::memory_order_relaxed) - 1;
    uint64_t pending = store->pending_records_.fetch_sub(
                           records, std::memory_order_relaxed) -
                       records;
    if (metrics::Enabled()) {
      PendingBatchesGauge().Set(static_cast<int64_t>(batches));
      PendingRecordsGauge().Set(static_cast<int64_t>(pending));
    }
  }
};

EntityStore::EntityStore(StoreConfig config) : config_(std::move(config)) {}

Result<std::unique_ptr<EntityStore>> EntityStore::Create(
    Dataset bootstrap, const StoreConfig& config) {
  // Durable startup: when a log already exists, recovery replaces the
  // bootstrap corpus with the log's checkpoint (if it names one) and
  // replays the logged batches below.
  WalReplay replay;
  bool recovering = false;
  if (!config.wal.path.empty()) {
    struct stat st;
    if (::stat(config.wal.path.c_str(), &st) == 0 && st.st_size > 0) {
      BDI_ASSIGN_OR_RETURN(std::string bytes,
                           io::ReadFileBytes(config.wal.path));
      BDI_ASSIGN_OR_RETURN(replay, ParseWal(bytes));
      // A file without a complete header is a torn initial Create that
      // never acknowledged a batch — recreate it instead of recovering.
      recovering = replay.has_header;
    }
  }
  if (recovering && replay.base_seq > 0) {
    const std::string checkpoint =
        WalCheckpointPath(config.wal.path, replay.base_seq);
    Result<storage::BdsReader> reader = storage::BdsReader::Open(checkpoint);
    if (!reader.ok()) {
      return Status::IOError(
          "serve: WAL names checkpoint sequence " +
          std::to_string(replay.base_seq) + " but " + checkpoint +
          " cannot be opened: " + reader.status().message());
    }
    BDI_ASSIGN_OR_RETURN(bootstrap, reader->ReadAll());
  }
  if (bootstrap.num_records() == 0) {
    return Status::InvalidArgument(
        "serve: the bootstrap corpus has no records");
  }
  auto store = std::unique_ptr<EntityStore>(new EntityStore(config));
  store->dataset_ = std::move(bootstrap);
  for (const SourceInfo& source : store->dataset_.sources()) {
    store->source_ids_.emplace(source.name, source.id);
  }

  core::IncrementalIntegrator::Config integrator_config;
  integrator_config.integrator = config.integrator;
  // The equivalence invariant needs alignment timing out of the picture:
  // realigning every refresh makes K batches converge to the one-batch
  // schema bitwise.
  integrator_config.realign_schema_each_refresh = true;
  // The bootstrap pass runs unbudgeted — budgets bound *live* batch
  // latency, not initial build fidelity.
  integrator_config.linker.scorer = config.integrator.linker.scorer;
  integrator_config.linker.threshold = config.integrator.linker.threshold;
  integrator_config.linker.use_prefilter =
      config.integrator.linker.use_prefilter;
  store->integrator_ = std::make_unique<core::IncrementalIntegrator>(
      &store->dataset_, integrator_config);
  store->integrator_->Refresh();

  store->version_ = 1;
  store->snapshot_.store(
      Snapshot::Build(store->integrator_->report(), store->dataset_,
                      config.num_shards, store->version_,
                      config.num_threads),
      std::memory_order_release);
  // Live batches run under the configured budgets from here on — and so
  // does replay, which re-applies the same batches in the same order
  // through the same path.
  store->integrator_->linker().set_comparison_budget(
      config.comparison_budget);
  store->integrator_->linker().set_budget_ms(config.budget_ms);

  if (!config.wal.path.empty()) {
    if (recovering) {
      store->seq_.store(replay.base_seq, std::memory_order_relaxed);
      store->num_batches_.store(replay.base_seq,
                                std::memory_order_relaxed);
      store->wal_base_seq_.store(replay.base_seq,
                                 std::memory_order_relaxed);
      for (const WalBatch& batch : replay.batches) {
        std::lock_guard<std::mutex> lock(store->write_mutex_);
        Result<BatchResult> applied =
            store->ApplyLocked(batch.records, /*replaying=*/true);
        if (!applied.ok()) return applied.status();
        WalReplayedBatchesCounter().Add();
        WalReplayedRecordsCounter().Add(batch.records.size());
      }
      store->replayed_batches_ = replay.batches.size();
      if (replay.truncated_tail) WalTruncatedTailsCounter().Add();
      BDI_ASSIGN_OR_RETURN(
          store->wal_, Wal::OpenForAppend(config.wal.path,
                                          replay.valid_bytes,
                                          config.wal.fsync));
    } else {
      BDI_ASSIGN_OR_RETURN(
          store->wal_,
          Wal::Create(config.wal.path, /*base_seq=*/0, config.wal.fsync));
    }
    // Drop checkpoints a crashed rotation or cleanup left behind; the
    // one the live log names (if any) is kept.
    BDI_RETURN_IF_ERROR(RemoveStaleCheckpoints(
        config.wal.path, store->wal_base_seq_.load()));
  }

  if (metrics::Enabled()) {
    std::shared_ptr<const Snapshot> snapshot = store->snapshot();
    SnapshotVersionGauge().Set(static_cast<int64_t>(snapshot->version()));
    SnapshotEntitiesGauge().Set(
        static_cast<int64_t>(snapshot->num_entities()));
    SnapshotRecordsGauge().Set(static_cast<int64_t>(snapshot->num_records()));
  }
  return store;
}

double EntityStore::RetryAfterMsHint(uint64_t queued_batches) const {
  double ewma = apply_ms_ewma_.load(std::memory_order_relaxed);
  // Before any batch completed there is no drain-rate signal; suggest a
  // conservative default rather than 0 (which would invite a hot retry
  // loop).
  if (ewma <= 0.0) ewma = 100.0;
  double hint = ewma * static_cast<double>(std::max<uint64_t>(
                           1, queued_batches));
  return std::max(1.0, hint);
}

Result<BatchResult> EntityStore::ApplyBatch(
    const std::vector<UpdateRecord>& records, BatchRejection* rejection) {
  if (records.empty()) {
    return Status::InvalidArgument("serve: empty update batch");
  }
  // Admission control runs before the write mutex, so shedding decisions
  // are made in nanoseconds even while a batch is mid-apply.
  const uint64_t batches_now =
      pending_batches_.fetch_add(1, std::memory_order_relaxed) + 1;
  const uint64_t records_now =
      pending_records_.fetch_add(records.size(),
                                 std::memory_order_relaxed) +
      records.size();
  const bool over_batches = config_.max_pending_batches > 0 &&
                            batches_now > config_.max_pending_batches;
  const bool over_records = config_.max_pending_records > 0 &&
                            records_now > config_.max_pending_records;
  if (over_batches || over_records) {
    const uint64_t queued =
        pending_batches_.fetch_sub(1, std::memory_order_relaxed) - 1;
    const uint64_t queued_records =
        pending_records_.fetch_sub(records.size(),
                                   std::memory_order_relaxed) -
        records.size();
    const double retry_after_ms = RetryAfterMsHint(queued);
    if (rejection != nullptr) {
      rejection->retry_after_ms = retry_after_ms;
      rejection->pending_batches = queued;
      rejection->pending_records = queued_records;
    }
    AdmissionShedCounter().Add();
    AdmissionShedRecordsCounter().Add(records.size());
    if (metrics::Enabled()) {
      RetryAfterHistogram().Observe(retry_after_ms);
    }
    return Status::Unavailable(
        "serve: overloaded — " + std::to_string(queued) +
        " update batches / " + std::to_string(queued_records) +
        " records in flight");
  }
  AdmissionAdmittedCounter().Add();
  if (metrics::Enabled()) {
    PendingBatchesGauge().Set(static_cast<int64_t>(batches_now));
    PendingRecordsGauge().Set(static_cast<int64_t>(records_now));
  }
  PendingGuard guard{this, records.size()};
  std::lock_guard<std::mutex> lock(write_mutex_);
  return ApplyLocked(records, /*replaying=*/false);
}

Result<BatchResult> EntityStore::ApplyLocked(
    const std::vector<UpdateRecord>& records, bool replaying) {
  WallTimer timer;
  BatchResult result;
  result.seq = seq_.load(std::memory_order_relaxed) + 1;

  // Durability point: the batch is framed, appended and fsynced before
  // the integrator sees a single record. A crash after this line replays
  // the batch; a WAL failure fails the batch without applying it, so the
  // resident state never runs ahead of the log.
  if (wal_ != nullptr && !replaying) {
    WallTimer wal_timer;
    const uint64_t bytes_before = wal_->bytes();
    BDI_RETURN_IF_ERROR(wal_->AppendBatch(result.seq, records));
    result.wal_ms = wal_timer.ElapsedMillis();
    WalAppendsCounter().Add();
    WalAppendBytesCounter().Add(wal_->bytes() - bytes_before);
    if (metrics::Enabled()) {
      WalAppendHistogram().Observe(result.wal_ms * 1000.0);
    }
  }

  for (const UpdateRecord& record : records) {
    auto [it, inserted] =
        source_ids_.emplace(record.source, kInvalidSource);
    if (inserted) it->second = dataset_.AddSource(record.source);
    dataset_.AddRecord(it->second, record.fields);
  }
  size_t comparisons = integrator_->Refresh();

  result.records = records.size();
  result.comparisons = comparisons;
  result.budget_stopped =
      integrator_->linker().last_progressive().budget_stopped;
  result.deadline_stopped =
      integrator_->linker().last_progressive().deadline_stopped;
  result.version = ++version_;

  std::shared_ptr<const Snapshot> next =
      Snapshot::Build(integrator_->report(), dataset_, config_.num_shards,
                      result.version, config_.num_threads);
  // The publication point: one atomic swap. Readers holding the previous
  // snapshot finish on it; new readers see this version.
  snapshot_.store(next, std::memory_order_release);
  seq_.store(result.seq, std::memory_order_relaxed);
  num_batches_.fetch_add(1, std::memory_order_relaxed);
  result.apply_ms = timer.ElapsedMillis();

  // Feed the drain-rate estimate behind retry_after_ms hints. Replayed
  // batches count too — they run the same pipeline.
  const double prev = apply_ms_ewma_.load(std::memory_order_relaxed);
  apply_ms_ewma_.store(
      prev <= 0.0 ? result.apply_ms : 0.75 * prev + 0.25 * result.apply_ms,
      std::memory_order_relaxed);

  if (metrics::Enabled()) {
    BatchesCounter().Add();
    BatchRecordsCounter().Add(records.size());
    BatchApplyHistogram().Observe(result.apply_ms);
    SnapshotVersionGauge().Set(static_cast<int64_t>(next->version()));
    SnapshotEntitiesGauge().Set(static_cast<int64_t>(next->num_entities()));
    SnapshotRecordsGauge().Set(static_cast<int64_t>(next->num_records()));
  }

  if (wal_ != nullptr && !replaying && config_.wal.rotate_bytes > 0 &&
      wal_->bytes() >= config_.wal.rotate_bytes) {
    Status rotated = RotateWalLocked();
    // A failed rotation is not a failed batch: the batch is durable in
    // the (still live) old log. Count it and keep serving; the next
    // batch retries the rotation.
    if (!rotated.ok()) WalRotationFailuresCounter().Add();
  }
  return result;
}

Status EntityStore::RotateWalLocked() {
  const uint64_t seq = seq_.load(std::memory_order_relaxed);
  const std::string checkpoint =
      WalCheckpointPath(config_.wal.path, seq);
  const std::string checkpoint_tmp = checkpoint + ".tmp";
  // 1. Checkpoint the resident dataset. The temp-write/fsync/rename dance
  // means a crash anywhere leaves either no checkpoint (old log + old
  // checkpoint still recover) or a complete one.
  BDI_RETURN_IF_ERROR(
      storage::WriteDatasetBds(dataset_, checkpoint_tmp));
  if (config_.wal.fsync) {
    BDI_RETURN_IF_ERROR(io::FsyncPath(checkpoint_tmp));
  }
  if (std::rename(checkpoint_tmp.c_str(), checkpoint.c_str()) != 0) {
    return Status::IOError("wal: cannot publish checkpoint " + checkpoint);
  }
  if (config_.wal.fsync) {
    BDI_RETURN_IF_ERROR(io::FsyncParentDir(checkpoint));
  }
  // 2. Swap in a fresh log whose header names the checkpoint. Until the
  // rename lands, recovery still sees the old log (whose checkpoint was
  // not deleted yet) — every crash point recovers.
  const std::string log_tmp = config_.wal.path + ".rotate.tmp";
  BDI_ASSIGN_OR_RETURN(std::unique_ptr<Wal> fresh,
                       Wal::Create(log_tmp, seq, config_.wal.fsync));
  if (std::rename(log_tmp.c_str(), config_.wal.path.c_str()) != 0) {
    return Status::IOError("wal: cannot swap in rotated log " +
                           config_.wal.path);
  }
  if (config_.wal.fsync) {
    BDI_RETURN_IF_ERROR(io::FsyncParentDir(config_.wal.path));
  }
  wal_ = std::move(fresh);
  wal_base_seq_.store(seq, std::memory_order_relaxed);
  // 3. Only now is the old checkpoint garbage.
  BDI_RETURN_IF_ERROR(RemoveStaleCheckpoints(config_.wal.path, seq));
  WalRotationsCounter().Add();
  return Status::OK();
}

}  // namespace bdi::serve
