#include "bdi/serve/snapshot.h"

#include <algorithm>
#include <cstdio>

#include "bdi/common/executor.h"
#include "bdi/common/metrics.h"
#include "bdi/common/string_util.h"
#include "bdi/text/similarity.h"
#include "bdi/text/tokenizer.h"

namespace bdi::serve {

namespace {

void AppendHexDouble(std::string* out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  *out += buf;
}

}  // namespace

std::shared_ptr<const Snapshot> Snapshot::Build(
    const core::IntegrationReport& report, const Dataset& dataset,
    size_t num_shards, uint64_t version, size_t num_threads) {
  if (num_shards == 0) num_shards = 1;
  auto snapshot = std::shared_ptr<Snapshot>(new Snapshot());
  snapshot->version_ = version;
  snapshot->attribute_names_ = report.schema.cluster_names;
  snapshot->num_records_ = dataset.num_records();

  const size_t clusters = report.linkage.clusters.num_clusters;
  // Representative text and record count per cluster (same choice as the
  // batch QueryEngine: longest first-field value wins).
  std::vector<std::string> cluster_text(clusters);
  std::vector<uint32_t> cluster_records(clusters, 0);
  for (const Record& record : dataset.records()) {
    EntityId cluster = report.linkage.clusters.label_of_record[record.idx];
    ++cluster_records[static_cast<size_t>(cluster)];
    if (record.fields.empty()) continue;
    const std::string& name = record.fields[0].value;
    if (name.size() > cluster_text[static_cast<size_t>(cluster)].size()) {
      cluster_text[static_cast<size_t>(cluster)] = name;
    }
  }
  // Fused cells grouped per cluster, in claim-db item order.
  std::vector<std::vector<ServedValue>> cluster_values(clusters);
  for (size_t i = 0; i < report.claims.items().size(); ++i) {
    const fusion::DataItem& item = report.claims.items()[i];
    ServedValue cell;
    cell.attr = item.attr;
    cell.value = report.fusion.chosen[i];
    cell.confidence = report.fusion.confidence[i];
    cell.support.reserve(item.claims.size());
    for (const fusion::Claim& claim : item.claims) {
      ServedClaim support;
      support.source = dataset.source(claim.source).name;
      support.value = claim.value;
      support.agrees = claim.value == cell.value;
      cell.support.push_back(std::move(support));
    }
    cluster_values[static_cast<size_t>(item.entity)].push_back(
        std::move(cell));
  }

  snapshot->num_entities_ = clusters;
  snapshot->shards_.resize(num_shards);
  // Shards build independently: each owns the clusters hashed to it.
  ParallelFor(
      num_shards,
      [&](size_t s) {
        Shard& shard = snapshot->shards_[s];
        for (size_t c = s; c < clusters; c += num_shards) {
          ServedEntity entity;
          entity.cluster = static_cast<EntityId>(c);
          entity.num_records = cluster_records[c];
          entity.text = cluster_text[c];
          entity.tokens = text::TokenSet(entity.text);
          entity.values = std::move(cluster_values[c]);
          std::sort(entity.values.begin(), entity.values.end(),
                    [](const ServedValue& a, const ServedValue& b) {
                      return a.attr < b.attr;
                    });
          uint32_t slot = static_cast<uint32_t>(shard.entities.size());
          for (const std::string& token : entity.tokens) {
            shard.postings[token].push_back(slot);
          }
          shard.entities.push_back(std::move(entity));
        }
      },
      num_threads == 0 ? 0 : num_threads);
  return snapshot;
}

std::vector<FindHit> Snapshot::Find(const std::string& keywords,
                                    size_t k) const {
  static metrics::Counter* probes =
      metrics::Registry::Get().RegisterCounter("bdi.serve.query.shard_probes");
  std::vector<std::string> query = text::TokenSet(keywords);
  std::vector<FindHit> scored;
  for (const Shard& shard : shards_) {
    probes->Add(1);
    // Candidate slots sharing >= 1 token with the query, deduplicated.
    std::vector<uint32_t> candidates;
    for (const std::string& token : query) {
      auto it = shard.postings.find(token);
      if (it == shard.postings.end()) continue;
      candidates.insert(candidates.end(), it->second.begin(),
                        it->second.end());
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (uint32_t slot : candidates) {
      const ServedEntity& entity = shard.entities[slot];
      double overlap = text::OverlapCoefficient(query, entity.tokens);
      double fuzzy = text::MongeElkanSimilarity(keywords, entity.text);
      double score = 0.7 * overlap + 0.3 * fuzzy;
      if (score > 0.0) {
        scored.push_back(FindHit{entity.cluster, score, entity.text});
      }
    }
  }
  std::sort(scored.begin(), scored.end(),
            [](const FindHit& a, const FindHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.cluster < b.cluster;
            });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

AskAnswer Snapshot::Ask(const std::string& attribute_keywords,
                        const std::string& entity_keywords) const {
  AskAnswer answer;
  std::vector<FindHit> hits = Find(entity_keywords, 1);
  if (hits.empty()) return answer;

  // Best mediated attribute: Jaro-Winkler plus the containment boost, same
  // scoring as the batch QueryEngine.
  std::string normalized = NormalizeAlnum(attribute_keywords);
  int best_attr = -1;
  double best_score = 0.0;
  for (size_t c = 0; c < attribute_names_.size(); ++c) {
    const std::string& name = attribute_names_[c];
    if (name.empty()) continue;
    double score = text::JaroWinklerSimilarity(normalized, name);
    if (name.find(normalized) != std::string::npos ||
        normalized.find(name) != std::string::npos) {
      score = std::max(score, 0.9);
    }
    if (score > best_score) {
      best_score = score;
      best_attr = static_cast<int>(c);
    }
  }
  if (best_attr < 0 || best_score < 0.5) return answer;

  answer.cluster = hits[0].cluster;
  answer.entity_match = hits[0].score;
  answer.entity_name = hits[0].text;
  answer.attribute = attribute_names_[static_cast<size_t>(best_attr)];
  answer.attribute_match = best_score;

  const Shard& shard =
      shards_[static_cast<size_t>(answer.cluster) % shards_.size()];
  const ServedEntity* entity = nullptr;
  for (const ServedEntity& candidate : shard.entities) {
    if (candidate.cluster == answer.cluster) {
      entity = &candidate;
      break;
    }
  }
  if (entity == nullptr) return answer;
  for (const ServedValue& cell : entity->values) {
    if (cell.attr == best_attr) {
      answer.value = cell.value;
      answer.confidence = cell.confidence;
      answer.support = cell.support;
      break;
    }
  }
  return answer;
}

std::string Snapshot::DebugString() const {
  std::string out;
  out += "snapshot shards=" + std::to_string(shards_.size()) +
         " entities=" + std::to_string(num_entities_) +
         " records=" + std::to_string(num_records_) + "\n";
  out += "attrs";
  for (const std::string& name : attribute_names_) {
    out += " ";
    out += name;
  }
  out += "\n";
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    out += "shard " + std::to_string(s) + "\n";
    for (const ServedEntity& entity : shard.entities) {
      out += " entity " + std::to_string(entity.cluster) +
             " records=" + std::to_string(entity.num_records) + " text=";
      out += entity.text;
      out += "\n";
      for (const ServedValue& cell : entity.values) {
        out += "  value attr=" + std::to_string(cell.attr) + " chosen=";
        out += cell.value;
        out += " conf=";
        AppendHexDouble(&out, cell.confidence);
        out += "\n";
        for (const ServedClaim& claim : cell.support) {
          out += "   claim ";
          out += claim.source;
          out += "=";
          out += claim.value;
          out += claim.agrees ? " agree" : " disagree";
          out += "\n";
        }
      }
    }
  }
  return out;
}

}  // namespace bdi::serve
