#ifndef BDI_DISCOVERY_SEARCH_INDEX_H_
#define BDI_DISCOVERY_SEARCH_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "bdi/model/dataset.h"

namespace bdi::discovery {

/// The "search engine" of the discovery simulation: an inverted index from
/// identifier-like tokens to the sources whose pages contain them. Source
/// discovery queries it with identifiers harvested from already-crawled
/// pages — the mechanism behind "searching head identifiers discovers tail
/// sources".
class SearchIndex {
 public:
  /// Indexes every record of `dataset` (the full hidden web, including
  /// sources the crawler has not discovered yet).
  explicit SearchIndex(const Dataset& dataset);

  /// Sources with at least one page containing `identifier` (exact token),
  /// most-hits first. Order is deterministic.
  std::vector<SourceId> Search(const std::string& identifier) const;

  size_t num_indexed_tokens() const { return index_.size(); }

 private:
  /// token -> (source, hit count), sorted by hits desc then source id.
  std::unordered_map<std::string, std::vector<std::pair<SourceId, size_t>>>
      index_;
};

}  // namespace bdi::discovery

#endif  // BDI_DISCOVERY_SEARCH_INDEX_H_
