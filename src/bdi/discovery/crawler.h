#ifndef BDI_DISCOVERY_CRAWLER_H_
#define BDI_DISCOVERY_CRAWLER_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "bdi/discovery/search_index.h"
#include "bdi/model/dataset.h"

namespace bdi::discovery {

struct DiscoveryConfig {
  /// Total pages the crawler may fetch.
  size_t page_budget = 2000;
  /// Sources whose pages seed the crawl (the information need).
  size_t num_seed_sources = 1;
  /// Identifier queries issued after each crawled source.
  size_t queries_per_source = 10;
  /// Pages sampled from a source before deciding to crawl it fully is not
  /// modeled; crawling a source costs its page count.
  uint64_t seed = 3;
};

/// One point of the discovery progress curve.
struct DiscoveryStep {
  size_t pages_crawled = 0;
  size_t sources_discovered = 0;  ///< product sources crawled so far
  size_t sources_visited = 0;     ///< including distractors
  size_t entities_covered = 0;    ///< needs ground-truth labels to compute
};

struct DiscoveryResult {
  std::vector<SourceId> crawl_order;
  std::set<SourceId> crawled;
  size_t pages_crawled = 0;
  std::vector<DiscoveryStep> curve;
};

/// "Redundancy as a friend" focused discovery: crawl the seed sources,
/// harvest the identifiers their pages publish (head identifiers surface
/// most often), query the search index with them, and prioritize candidate
/// sources by how many distinct known identifiers hit them. Sources whose
/// pages yield no identifiers (distractor sites) never generate queries
/// and are only visited if the frontier runs dry.
///
/// `entity_labels` (record -> entity, e.g. the generator's ground truth)
/// is ONLY used to fill the coverage numbers of the progress curve — the
/// crawler itself never reads it.
DiscoveryResult FocusedDiscovery(const Dataset& web, const SearchIndex& index,
                                 const std::vector<EntityId>& entity_labels,
                                 const DiscoveryConfig& config);

/// Baseline: visit sources in random order under the same page budget
/// (undirected crawling of the site frontier).
DiscoveryResult RandomDiscovery(const Dataset& web,
                                const std::vector<EntityId>& entity_labels,
                                const DiscoveryConfig& config);

/// Appends `count` distractor sources (no identifiers, blog-like pages) to
/// `web`; returns their source ids. Labels for their records are -1 (no
/// entity) and must be appended to the caller's label vector.
std::vector<SourceId> AddDistractorSources(Dataset* web, int count,
                                           int pages_per_source,
                                           uint64_t seed,
                                           std::vector<EntityId>* labels);

}  // namespace bdi::discovery

#endif  // BDI_DISCOVERY_CRAWLER_H_
