#include "bdi/discovery/search_index.h"

#include <algorithm>
#include <map>

#include "bdi/text/tokenizer.h"

namespace bdi::discovery {

SearchIndex::SearchIndex(const Dataset& dataset) {
  // token -> source -> hits
  std::unordered_map<std::string, std::map<SourceId, size_t>> hits;
  for (const Record& record : dataset.records()) {
    std::string text;
    for (const Field& field : record.fields) {
      text += field.value;
      text += ' ';
    }
    for (const std::string& token :
         text::IdentifierTokens(text, /*min_len=*/5,
                                /*require_letter=*/true)) {
      ++hits[token][record.source];
    }
  }
  index_.reserve(hits.size());
  for (auto& [token, sources] : hits) {
    std::vector<std::pair<SourceId, size_t>> posting(sources.begin(),
                                                     sources.end());
    std::sort(posting.begin(), posting.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    index_.emplace(token, std::move(posting));
  }
}

std::vector<SourceId> SearchIndex::Search(
    const std::string& identifier) const {
  std::vector<SourceId> out;
  auto it = index_.find(identifier);
  if (it == index_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [source, hits] : it->second) {
    out.push_back(source);
  }
  return out;
}

}  // namespace bdi::discovery
