#include "bdi/discovery/crawler.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "bdi/common/logging.h"
#include "bdi/common/random.h"
#include "bdi/text/tokenizer.h"

namespace bdi::discovery {

namespace {

/// Identifier tokens published by one source's pages, by frequency.
std::vector<std::pair<std::string, size_t>> HarvestIdentifiers(
    const Dataset& web, SourceId source) {
  std::map<std::string, size_t> counts;
  for (RecordIdx idx : web.source(source).records) {
    const Record& record = web.record(idx);
    std::string text;
    for (const Field& field : record.fields) {
      text += field.value;
      text += ' ';
    }
    for (const std::string& token :
         text::IdentifierTokens(text, /*min_len=*/5,
                                /*require_letter=*/true)) {
      ++counts[token];
    }
  }
  std::vector<std::pair<std::string, size_t>> out(counts.begin(),
                                                  counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

/// Shared bookkeeping for both strategies.
class Progress {
 public:
  Progress(const Dataset& web, const std::vector<EntityId>& labels)
      : web_(web), labels_(labels) {}

  /// Crawls an entire source; returns pages fetched (capped at remaining).
  /// Curve points are emitted every kStepGranularity pages so early
  /// progress inside a big head source is visible.
  size_t Crawl(SourceId source, size_t remaining_budget,
               DiscoveryResult* result) {
    static constexpr size_t kStepGranularity = 50;
    const SourceInfo& info = web_.source(source);
    size_t pages = std::min(info.records.size(), remaining_budget);
    result->crawl_order.push_back(source);
    result->crawled.insert(source);
    bool has_identifiers = false;
    auto emit = [&] {
      DiscoveryStep step;
      step.pages_crawled = result->pages_crawled;
      step.sources_visited = result->crawled.size();
      step.sources_discovered = product_sources_;
      step.entities_covered = covered_.size();
      result->curve.push_back(step);
    };
    for (size_t p = 0; p < pages; ++p) {
      RecordIdx idx = info.records[p];
      ++result->pages_crawled;
      if (static_cast<size_t>(idx) < labels_.size() &&
          labels_[idx] != kInvalidEntity) {
        covered_.insert(labels_[idx]);
        if (!has_identifiers) {
          has_identifiers = true;  // product page seen
          ++product_sources_;
        }
      }
      if (result->pages_crawled % kStepGranularity == 0) emit();
    }
    emit();
    return pages;
  }

 private:
  const Dataset& web_;
  const std::vector<EntityId>& labels_;
  std::unordered_set<EntityId> covered_;
  size_t product_sources_ = 0;
};

}  // namespace

DiscoveryResult FocusedDiscovery(const Dataset& web, const SearchIndex& index,
                                 const std::vector<EntityId>& entity_labels,
                                 const DiscoveryConfig& config) {
  BDI_CHECK(entity_labels.size() == web.num_records());
  DiscoveryResult result;
  Progress progress(web, entity_labels);

  // Candidate priority: distinct known identifiers hitting the source.
  std::unordered_map<SourceId, size_t> frontier_score;
  std::unordered_set<std::string> queried;
  size_t budget = config.page_budget;

  auto crawl_and_query = [&](SourceId source) {
    size_t pages = progress.Crawl(source, budget, &result);
    budget -= pages;
    frontier_score.erase(source);

    // Harvest the source's identifiers (head ids surface most often) and
    // query the index with the top ones not asked before.
    size_t queries = 0;
    for (const auto& [token, hits] : HarvestIdentifiers(web, source)) {
      if (queries >= config.queries_per_source) break;
      if (!queried.insert(token).second) continue;
      ++queries;
      for (SourceId hit : index.Search(token)) {
        if (result.crawled.count(hit) > 0) continue;
        ++frontier_score[hit];
      }
    }
  };

  // Seed sources: the first product sources of the web (the sample pages
  // the information need supplies).
  size_t seeded = 0;
  for (size_t s = 0; s < web.num_sources() && seeded < config.num_seed_sources;
       ++s) {
    crawl_and_query(static_cast<SourceId>(s));
    ++seeded;
  }

  while (budget > 0) {
    // Best-scored frontier source (ties: smaller id).
    SourceId best = kInvalidSource;
    size_t best_score = 0;
    for (const auto& [source, score] : frontier_score) {
      if (score > best_score ||
          (score == best_score && best != kInvalidSource && source < best)) {
        best = source;
        best_score = score;
      }
    }
    if (best == kInvalidSource) {
      // Frontier dry: fall back to the first unvisited source (undirected
      // exploration), if any.
      for (size_t s = 0; s < web.num_sources(); ++s) {
        if (result.crawled.count(static_cast<SourceId>(s)) == 0) {
          best = static_cast<SourceId>(s);
          break;
        }
      }
      if (best == kInvalidSource) break;  // web exhausted
    }
    crawl_and_query(best);
  }
  return result;
}

DiscoveryResult RandomDiscovery(const Dataset& web,
                                const std::vector<EntityId>& entity_labels,
                                const DiscoveryConfig& config) {
  BDI_CHECK(entity_labels.size() == web.num_records());
  DiscoveryResult result;
  Progress progress(web, entity_labels);
  std::vector<size_t> order(web.num_sources());
  for (size_t s = 0; s < order.size(); ++s) order[s] = s;
  Rng rng(config.seed);
  rng.Shuffle(&order);
  size_t budget = config.page_budget;
  for (size_t s : order) {
    if (budget == 0) break;
    size_t pages = progress.Crawl(static_cast<SourceId>(s), budget, &result);
    budget -= pages;
  }
  return result;
}

std::vector<SourceId> AddDistractorSources(Dataset* web, int count,
                                           int pages_per_source,
                                           uint64_t seed,
                                           std::vector<EntityId>* labels) {
  static const char* const kWords[] = {
      "review", "travel",  "recipe", "news",   "opinion", "guide",
      "story",  "journal", "diary",  "photos", "music",   "garden"};
  Rng rng(seed);
  std::vector<SourceId> added;
  for (int s = 0; s < count; ++s) {
    SourceId sid =
        web->AddSource("distractor" + std::to_string(s) + ".example.com");
    added.push_back(sid);
    for (int p = 0; p < pages_per_source; ++p) {
      std::string title, body;
      for (int w = 0; w < 4; ++w) {
        title += kWords[rng.UniformInt(0, 11)];
        title += ' ';
      }
      for (int w = 0; w < 12; ++w) {
        body += kWords[rng.UniformInt(0, 11)];
        body += ' ';
      }
      web->AddRecord(sid, {{"title", title}, {"content", body}});
      labels->push_back(kInvalidEntity);
    }
  }
  return added;
}

}  // namespace bdi::discovery
