#ifndef BDI_DATAFLOW_MAPREDUCE_H_
#define BDI_DATAFLOW_MAPREDUCE_H_

#include <cstddef>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bdi/common/executor.h"

namespace bdi::dataflow {

/// Execution options for a MapReduce run.
struct MapReduceOptions {
  /// Parallelism cap. 0 means the shared executor's full pool; 1 runs
  /// serially.
  size_t num_threads = 0;
  /// Shuffle partitions; 0 means 4 x the effective parallelism.
  size_t num_partitions = 0;
};

namespace internal {

inline size_t ResolveThreads(size_t requested) {
  if (requested > 0) return requested;
  return Executor::Get().num_threads();
}

}  // namespace internal

/// Collects (key, value) pairs emitted by one mapper into hash-partitioned
/// buckets.
template <typename K, typename V, typename KeyHash = std::hash<K>>
class Emitter {
 public:
  explicit Emitter(size_t num_partitions) : buckets_(num_partitions) {}

  void Emit(K key, V value) {
    size_t p = KeyHash()(key) % buckets_.size();
    buckets_[p].emplace_back(std::move(key), std::move(value));
  }

  std::vector<std::vector<std::pair<K, V>>>& buckets() { return buckets_; }

 private:
  std::vector<std::vector<std::pair<K, V>>> buckets_;
};

/// Shared-memory map → shuffle → reduce. This is the substitute for a
/// distributed dataflow system (see DESIGN.md): the code path — partitioned
/// mapping, hash shuffle on the key, grouped reduction — is the same one a
/// cluster engine runs, executed over a thread pool.
///
/// `map_fn(input, emitter)` may emit any number of pairs; `reduce_fn(key,
/// values)` is invoked once per distinct key with all its values and returns
/// one output. Output order is unspecified.
template <typename Input, typename K, typename V, typename Out,
          typename KeyHash = std::hash<K>, typename MapFn, typename ReduceFn>
std::vector<Out> MapReduce(const std::vector<Input>& inputs, MapFn&& map_fn,
                           ReduceFn&& reduce_fn,
                           const MapReduceOptions& options = {}) {
  size_t threads = internal::ResolveThreads(options.num_threads);
  size_t partitions =
      options.num_partitions > 0 ? options.num_partitions : 4 * threads;

  // Map phase: one emitter per map task (contiguous chunk of inputs), run
  // over the shared executor instead of a per-call pool.
  size_t num_tasks = std::min(inputs.size(), threads * 4);
  if (num_tasks == 0) num_tasks = 1;
  size_t per_task = (inputs.size() + num_tasks - 1) / num_tasks;
  std::vector<Emitter<K, V, KeyHash>> emitters(
      num_tasks, Emitter<K, V, KeyHash>(partitions));
  ParallelFor(
      num_tasks,
      [&](size_t t) {
        size_t begin = t * per_task;
        size_t end = std::min(inputs.size(), begin + per_task);
        for (size_t i = begin; i < end; ++i) {
          map_fn(inputs[i], &emitters[t]);
        }
      },
      options.num_threads);

  // Shuffle + reduce phase: each partition groups its pairs by key and
  // reduces. Partitions proceed in parallel; within a partition the
  // grouping is single-threaded, mirroring a reducer task.
  std::vector<std::vector<Out>> partition_outputs(partitions);
  auto reduce_partition = [&](size_t p) {
    std::unordered_map<K, std::vector<V>, KeyHash> groups;
    for (auto& emitter : emitters) {
      for (auto& [key, value] : emitter.buckets()[p]) {
        groups[std::move(key)].push_back(std::move(value));
      }
    }
    partition_outputs[p].reserve(groups.size());
    for (auto& [key, values] : groups) {
      partition_outputs[p].push_back(reduce_fn(key, std::move(values)));
    }
  };
  ParallelFor(partitions, reduce_partition, options.num_threads);

  std::vector<Out> outputs;
  size_t total = 0;
  for (const auto& po : partition_outputs) total += po.size();
  outputs.reserve(total);
  for (auto& po : partition_outputs) {
    for (auto& out : po) outputs.push_back(std::move(out));
  }
  return outputs;
}

/// Parallel element-wise transform preserving input order.
template <typename Input, typename Out, typename Fn>
std::vector<Out> ParallelMap(const std::vector<Input>& inputs, Fn&& fn,
                             size_t num_threads = 0) {
  std::vector<Out> outputs(inputs.size());
  ParallelFor(
      inputs.size(), [&](size_t i) { outputs[i] = fn(inputs[i]); },
      num_threads);
  return outputs;
}

}  // namespace bdi::dataflow

#endif  // BDI_DATAFLOW_MAPREDUCE_H_
