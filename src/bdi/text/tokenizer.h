#ifndef BDI_TEXT_TOKENIZER_H_
#define BDI_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace bdi::text {

/// Lowercased alphanumeric word tokens ("Canon EOS-5D" -> {"canon", "eos",
/// "5d"}). Non-alphanumeric characters are separators.
std::vector<std::string> WordTokens(std::string_view s);

/// Character q-grams of the lowercased input with `q >= 1`; inputs shorter
/// than q yield the whole (lowercased) string as a single gram. Padding is
/// not applied.
std::vector<std::string> QGrams(std::string_view s, int q);

/// Word tokens deduplicated and sorted — the token *set* used by set
/// similarities.
std::vector<std::string> TokenSet(std::string_view s);

/// Tokens that look like product/entity identifiers: alphanumeric tokens of
/// length >= min_len that contain at least one digit (e.g. "eos5dmkiv",
/// "sku12345"). This encodes the tutorial's observation that specification
/// pages publish identifiers usable as linkage keys. With `require_letter`,
/// pure digit runs (years, prices, weights) are excluded — use it when
/// mining mixed content rather than a dedicated identifier field.
std::vector<std::string> IdentifierTokens(std::string_view s,
                                          size_t min_len = 4,
                                          bool require_letter = false);

}  // namespace bdi::text

#endif  // BDI_TEXT_TOKENIZER_H_
