#include "bdi/text/interner.h"

#include <algorithm>
#include <atomic>

namespace bdi::text {

uint64_t TokenInterner::NextUid() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

TokenInterner& TokenInterner::operator=(const TokenInterner& other) {
  if (this != &other) {
    ids_ = other.ids_;
    tokens_ = other.tokens_;
    uid_ = NextUid();
  }
  return *this;
}

TokenInterner::TokenInterner(TokenInterner&& other) noexcept
    : ids_(std::move(other.ids_)),
      tokens_(std::move(other.tokens_)),
      uid_(other.uid_) {
  other.uid_ = NextUid();
}

TokenInterner& TokenInterner::operator=(TokenInterner&& other) noexcept {
  if (this != &other) {
    ids_ = std::move(other.ids_);
    tokens_ = std::move(other.tokens_);
    uid_ = other.uid_;
    other.uid_ = NextUid();
  }
  return *this;
}

TokenId TokenInterner::Intern(std::string_view token) {
  auto it = ids_.find(token);
  if (it != ids_.end()) return it->second;
  TokenId id = static_cast<TokenId>(tokens_.size());
  tokens_.emplace_back(token);
  ids_.emplace(tokens_.back(), id);
  return id;
}

TokenId TokenInterner::Lookup(std::string_view token) const {
  auto it = ids_.find(token);
  return it == ids_.end() ? kInvalidToken : it->second;
}

std::vector<TokenId> InternTokens(TokenInterner& interner,
                                  const std::vector<std::string>& tokens) {
  std::vector<TokenId> ids;
  ids.reserve(tokens.size());
  for (const std::string& token : tokens) {
    ids.push_back(interner.Intern(token));
  }
  return ids;
}

std::vector<TokenId> InternTokenSet(TokenInterner& interner,
                                    const std::vector<std::string>& tokens) {
  std::vector<TokenId> ids = InternTokens(interner, tokens);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace bdi::text
