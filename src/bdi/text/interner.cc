#include "bdi/text/interner.h"

#include <algorithm>

namespace bdi::text {

TokenId TokenInterner::Intern(std::string_view token) {
  auto it = ids_.find(token);
  if (it != ids_.end()) return it->second;
  TokenId id = static_cast<TokenId>(tokens_.size());
  tokens_.emplace_back(token);
  ids_.emplace(tokens_.back(), id);
  return id;
}

TokenId TokenInterner::Lookup(std::string_view token) const {
  auto it = ids_.find(token);
  return it == ids_.end() ? kInvalidToken : it->second;
}

std::vector<TokenId> InternTokens(TokenInterner& interner,
                                  const std::vector<std::string>& tokens) {
  std::vector<TokenId> ids;
  ids.reserve(tokens.size());
  for (const std::string& token : tokens) {
    ids.push_back(interner.Intern(token));
  }
  return ids;
}

std::vector<TokenId> InternTokenSet(TokenInterner& interner,
                                    const std::vector<std::string>& tokens) {
  std::vector<TokenId> ids = InternTokens(interner, tokens);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace bdi::text
