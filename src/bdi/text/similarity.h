#ifndef BDI_TEXT_SIMILARITY_H_
#define BDI_TEXT_SIMILARITY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace bdi::text {

/// Levenshtein edit distance (unit costs).
size_t EditDistance(std::string_view a, std::string_view b);

/// 1 - EditDistance / max(|a|, |b|); 1.0 for two empty strings.
double NormalizedEditSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity in [0, 1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler with standard prefix scaling (p = 0.1, max prefix 4).
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// |A ∩ B| / |A ∪ B| over sorted unique token vectors; 1.0 if both empty.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// 2|A ∩ B| / (|A| + |B|) over sorted unique token vectors.
double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b);

/// |A ∩ B| / min(|A|, |B|); 1.0 if both sets are empty, 0.0 if exactly one
/// is empty.
double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b);

/// Jaccard over the strings' word tokens.
double TokenJaccard(std::string_view a, std::string_view b);

/// Jaccard over character trigrams.
double TrigramJaccard(std::string_view a, std::string_view b);

/// Monge-Elkan: average over tokens of `a` of the best Jaro-Winkler match in
/// `b`. Asymmetric; callers usually take max(ME(a,b), ME(b,a)).
double MongeElkanSimilarity(std::string_view a, std::string_view b);

/// Smith-Waterman local-alignment similarity: the best-scoring local
/// alignment (match +2, mismatch -1, gap -1) normalized by the maximum
/// achievable score (2 * min(|a|, |b|)), giving [0, 1]. Robust to shared
/// substrings embedded in unrelated context ("eos 5d" inside a long
/// title). 1.0 for two empty strings.
double SmithWatermanSimilarity(std::string_view a, std::string_view b);

/// Similarity of two numbers: 1 when equal, decaying with relative
/// difference; 0 when one is not parseable as a number.
double NumericSimilarity(std::string_view a, std::string_view b);

/// Corpus-weighted cosine similarity. Add documents first, then query pairs;
/// idf weights are computed over everything added.
class TfIdfVectorizer {
 public:
  TfIdfVectorizer() = default;

  /// Registers a document's tokens for document-frequency statistics.
  void AddDocument(const std::vector<std::string>& tokens);

  /// log((1 + N) / (1 + df)) + 1; unseen tokens get the max idf.
  double Idf(const std::string& token) const;

  /// Cosine of tf-idf vectors of the two token multisets.
  double Cosine(const std::vector<std::string>& a,
                const std::vector<std::string>& b) const;

  size_t num_documents() const { return num_documents_; }

 private:
  std::unordered_map<std::string, size_t> document_frequency_;
  size_t num_documents_ = 0;
};

}  // namespace bdi::text

#endif  // BDI_TEXT_SIMILARITY_H_
