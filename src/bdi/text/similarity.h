#ifndef BDI_TEXT_SIMILARITY_H_
#define BDI_TEXT_SIMILARITY_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bdi/text/interner.h"

namespace bdi::text {

/// Grow-only memo of a pure per-token-pair kernel value, keyed by the two
/// interned token ids ((a << 32) | b) in an open-addressing table. The
/// Monge-Elkan kernels use one per kernel to skip recomputing
/// Jaro-Winkler for token pairs this scratch has already seen — a hit
/// returns exactly the bits the recompute would produce, so memo state
/// never changes results, only work. `vocabulary_uid` records which
/// TokenInterner's ids the entries are keyed by; a kernel invoked under a
/// different uid resets the table instead of misreading foreign ids.
struct TokenPairMemo {
  /// Key slots; empty slots hold ~0. Size is always a power of two.
  std::vector<uint64_t> keys;
  /// values[i] is the kernel value for keys[i].
  std::vector<double> values;
  /// Occupied slots; the table doubles at 50% load.
  size_t used = 0;
  /// TokenInterner::uid() the keys belong to (0 = unbound).
  uint64_t vocabulary_uid = 0;
};

/// Reusable working memory for the allocation-free similarity kernels.
/// Ownership rule (see DESIGN.md): the *caller* owns the scratch, creates
/// one per worker thread, and reuses it across calls — kernels only grow
/// the buffers (never shrink), so steady-state calls allocate nothing.
/// A scratch must never be shared between concurrently running kernels;
/// every kernel fully re-initializes the ranges it reads — except the
/// memo tables, which deliberately persist across calls (they cache pure
/// function values, so carrying them over changes work, not results).
struct SimilarityScratch {
  /// Jaro match flags for the two strings (uint8_t: vector<bool> proxies
  /// cost a masked read-modify-write per flag).
  std::vector<uint8_t> a_matched;
  std::vector<uint8_t> b_matched;
  /// Dynamic-program rows shared by the edit-distance kernels.
  std::vector<size_t> dp_prev;
  std::vector<size_t> dp_cur;
  /// Per-column running maxima of the token-pair similarity matrix
  /// (symmetric Monge-Elkan's second direction).
  std::vector<double> col_best;
  /// Per-token-pair Jaro-Winkler values (SymmetricMongeElkan's cells).
  /// Only the full kernel memoizes: its cells cost hundreds of
  /// nanoseconds and its pair space (prefilter survivors) stays small
  /// enough for the table to sit in cache. The bound kernel's cells are
  /// cheaper than a probe and its pair space is the whole candidate set.
  TokenPairMemo jw_memo;
};

/// Levenshtein edit distance (unit costs).
size_t EditDistance(std::string_view a, std::string_view b);

/// Scratch-buffer form of EditDistance; identical result, no per-call
/// allocation once `scratch` has warmed up.
size_t EditDistance(std::string_view a, std::string_view b,
                    SimilarityScratch& scratch);

/// 1 - EditDistance / max(|a|, |b|); 1.0 for two empty strings.
double NormalizedEditSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity in [0, 1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// Scratch-buffer form of JaroSimilarity; identical result bit for bit.
double JaroSimilarity(std::string_view a, std::string_view b,
                      SimilarityScratch& scratch);

/// Jaro-Winkler with standard prefix scaling (p = 0.1, max prefix 4).
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Scratch-buffer form of JaroWinklerSimilarity; identical result.
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             SimilarityScratch& scratch);

/// |A ∩ B| / |A ∪ B| over sorted unique token vectors; 1.0 if both empty.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// Jaccard over interned token-id sets (sorted by id, unique). Produces
/// the same value as the string form on the same token sets: intersection
/// and union sizes do not depend on which total order sorted the inputs.
/// (Distinctly named, not an overload: braced-init callers of the string
/// form would otherwise become ambiguous.)
double JaccardSimilarityIds(const std::vector<TokenId>& a,
                            const std::vector<TokenId>& b);

/// 2|A ∩ B| / (|A| + |B|) over sorted unique token vectors.
double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b);

/// |A ∩ B| / min(|A|, |B|); 1.0 if both sets are empty, 0.0 if exactly one
/// is empty.
double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b);

/// Jaccard over the strings' word tokens.
double TokenJaccard(std::string_view a, std::string_view b);

/// Jaccard over character trigrams.
double TrigramJaccard(std::string_view a, std::string_view b);

/// Monge-Elkan: average over tokens of `a` of the best Jaro-Winkler match in
/// `b`. Asymmetric; callers usually take max(ME(a,b), ME(b,a)).
double MongeElkanSimilarity(std::string_view a, std::string_view b);

/// Symmetric Monge-Elkan, max(ME(a,b), ME(b,a)), over interned word-token
/// sequences (order- and duplicate-preserving, as WordTokens emits them).
/// Both directions come from ONE traversal of the token-pair Jaro-Winkler
/// matrix — row maxima feed ME(a,b), running column maxima feed ME(b,a) —
/// and equal-id pairs short-circuit to 1.0 (Jaro-Winkler of a string with
/// itself is exactly 1.0). Bit-identical to the two-pass string form:
/// accumulation visits the same values in the same order, and Jaro-Winkler
/// is exactly symmetric (greedy band matching yields the same match and
/// transposition counts in either direction).
double SymmetricMongeElkan(const TokenInterner& interner,
                           const std::vector<TokenId>& a,
                           const std::vector<TokenId>& b,
                           SimilarityScratch& scratch);

/// Character classes a TokenSignature counts: 'a'-'z' (26), '0'-'9' (10),
/// plus one shared bucket for every other byte. Folding "other" bytes into
/// one class can only overestimate the shared-character count, which keeps
/// every bound built on the signatures sound.
inline constexpr size_t kSignatureClasses = 37;

/// Storage size of the class-count histogram: kSignatureClasses rounded up
/// so the vector paths can reduce the whole histogram with aligned-width
/// loads (32 + 8 bytes) and no scalar tail. Bytes past kSignatureClasses
/// are always zero, so they contribute nothing to any min-sum.
inline constexpr size_t kSignatureClassStorage = 40;

/// Cheap per-token summary the bounded kernels work from: length, first
/// character, and a per-class character histogram (counts saturate at 255;
/// `class_mask` has bit c set iff class c occurs). Signatures are computed
/// once per distinct token — the interner makes that cheap — and a bound
/// over two signatures costs a handful of integer operations instead of
/// the kernel's dynamic program or band scan. The histogram-intersection
/// reduction behind every signature bound is runtime-dispatched
/// (scalar / SSE2 / AVX2, see bdi::cpu) and each path produces the
/// identical integer — a pure u8 min-then-sum, so vectorizing it changes
/// instruction selection, never results.
struct TokenSignature {
  uint32_t length = 0;
  char first = '\0';
  uint64_t class_mask = 0;
  std::array<uint8_t, kSignatureClassStorage> class_counts{};
};

/// Builds the signature of `token`.
TokenSignature MakeTokenSignature(std::string_view token);

/// Upper bound on the number of Jaro character matches between two tokens:
/// min of the lengths, tightened by the shared-character multiset size
/// when neither histogram saturated (Jaro matches pair equal characters
/// injectively, so no alignment can match more than the multiset
/// intersection).
size_t JaroMatchUpperBound(const TokenSignature& x, const TokenSignature& y);

/// Upper bound on JaroWinklerSimilarity of the two tokens: the Jaro term
/// is bounded by ((m/|x| + m/|y| + 1) / 3) at m = JaroMatchUpperBound
/// (transpositions only lower the true value), and the Winkler prefix term
/// assumes the longest admissible prefix when the first characters agree
/// and zero otherwise. Guaranteed >= the true Jaro-Winkler value.
double JaroWinklerUpperBound(const TokenSignature& x,
                             const TokenSignature& y);

/// Lower bound on EditDistance between the two tokens: the length gap
/// (every unit of it costs an insertion), tightened by
/// max(|x|, |y|) - shared-character multiset size (every character of the
/// longer token not covered by the intersection costs an edit).
size_t EditDistanceLowerBound(const TokenSignature& x,
                              const TokenSignature& y);

/// Upper bound on NormalizedEditSimilarity, from EditDistanceLowerBound.
double NormalizedEditSimilarityUpperBound(const TokenSignature& x,
                                          const TokenSignature& y);

/// Upper bound on SymmetricMongeElkan over interned word sequences, using
/// only the per-token signatures (indexed by TokenId): the same
/// row-maxima / column-maxima traversal as the real kernel, with each
/// token-pair cell bounded by JaroWinklerUpperBound (1.0 exactly for
/// equal ids). Costs O(|a| * |b|) integer work — no dynamic programs, no
/// string accesses — and is guaranteed >= the true kernel value, which is
/// what lets the matcher's prefilter skip pairs whose bound cannot reach
/// the match threshold. `scratch` follows the usual caller-owned rule
/// (allocation-free once warm).
double SymmetricMongeElkanUpperBound(
    const std::vector<TokenSignature>& signatures,
    const std::vector<TokenId>& a, const std::vector<TokenId>& b,
    SimilarityScratch& scratch);

/// Smith-Waterman local-alignment similarity: the best-scoring local
/// alignment (match +2, mismatch -1, gap -1) normalized by the maximum
/// achievable score (2 * min(|a|, |b|)), giving [0, 1]. Robust to shared
/// substrings embedded in unrelated context ("eos 5d" inside a long
/// title). 1.0 for two empty strings.
double SmithWatermanSimilarity(std::string_view a, std::string_view b);

/// Similarity of two numbers: 1 when equal, decaying with relative
/// difference; 0 when one is not parseable as a number.
double NumericSimilarity(std::string_view a, std::string_view b);

/// Post-parse core of NumericSimilarity over already-parsed values: 1 when
/// equal, else 1 - |va - vb| / max(|va|, |vb|) floored at 0. Callers that
/// parse each value once (per record, not per pair) get bitwise-identical
/// results to the string form. A NaN operand yields exactly 0.0 (every
/// comparison with NaN is false, so the final max returns its 0.0 arm),
/// which lets callers encode "not numeric" as NaN.
inline double NumericSimilarityValues(double va, double vb) {
  if (va == vb) return 1.0;
  double denom = std::max(std::abs(va), std::abs(vb));
  if (denom == 0.0) return 1.0;
  double rel = std::abs(va - vb) / denom;
  return std::max(0.0, 1.0 - rel);
}

/// Corpus-weighted cosine similarity. Add documents first, then query pairs;
/// idf weights are computed over everything added.
class TfIdfVectorizer {
 public:
  TfIdfVectorizer() = default;

  /// Registers a document's tokens for document-frequency statistics.
  void AddDocument(const std::vector<std::string>& tokens);

  /// log((1 + N) / (1 + df)) + 1; unseen tokens get the max idf.
  double Idf(const std::string& token) const;

  /// Cosine of tf-idf vectors of the two token multisets.
  double Cosine(const std::vector<std::string>& a,
                const std::vector<std::string>& b) const;

  size_t num_documents() const { return num_documents_; }

 private:
  std::unordered_map<std::string, size_t> document_frequency_;
  size_t num_documents_ = 0;
};

}  // namespace bdi::text

#endif  // BDI_TEXT_SIMILARITY_H_
