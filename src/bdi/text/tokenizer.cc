#include "bdi/text/tokenizer.h"

#include <algorithm>
#include <cctype>

#include "bdi/common/string_util.h"

namespace bdi::text {

std::vector<std::string> WordTokens(std::string_view s) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : s) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc) != 0) {
      current.push_back(static_cast<char>(std::tolower(uc)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> QGrams(std::string_view s, int q) {
  std::string lowered = ToLower(s);
  std::vector<std::string> grams;
  if (q < 1) q = 1;
  size_t uq = static_cast<size_t>(q);
  if (lowered.empty()) return grams;
  if (lowered.size() <= uq) {
    grams.push_back(lowered);
    return grams;
  }
  grams.reserve(lowered.size() - uq + 1);
  for (size_t i = 0; i + uq <= lowered.size(); ++i) {
    grams.push_back(lowered.substr(i, uq));
  }
  return grams;
}

std::vector<std::string> TokenSet(std::string_view s) {
  std::vector<std::string> tokens = WordTokens(s);
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

std::vector<std::string> IdentifierTokens(std::string_view s,
                                          size_t min_len,
                                          bool require_letter) {
  std::vector<std::string> out;
  for (std::string& token : WordTokens(s)) {
    if (token.size() < min_len) continue;
    bool has_digit = false, has_letter = false;
    for (char c : token) {
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        has_digit = true;
      } else {
        has_letter = true;
      }
    }
    if (has_digit && (!require_letter || has_letter)) {
      out.push_back(std::move(token));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace bdi::text
