#include "bdi/text/similarity.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "bdi/common/cpu.h"
#include "bdi/common/string_util.h"
#include "bdi/text/tokenizer.h"

// Vector paths exist only on x86 (SSE2/AVX2) and compile out entirely in
// BDI_DISABLE_SIMD builds; cpu::ActiveSimdLevel() is kScalar then, so the
// dispatch below falls through to the portable loop.
#if !defined(BDI_DISABLE_SIMD) && (defined(__x86_64__) || defined(__i386__))
#define BDI_SIMD_X86 1
#include <immintrin.h>
#endif

namespace bdi::text {

namespace {

/// Size of the intersection of two sorted unique vectors.
size_t SortedIntersectionSize(const std::vector<std::string>& a,
                              const std::vector<std::string>& b) {
  size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    int cmp = a[i].compare(b[j]);
    if (cmp == 0) {
      ++common;
      ++i;
      ++j;
    } else if (cmp < 0) {
      ++i;
    } else {
      ++j;
    }
  }
  return common;
}

}  // namespace

size_t EditDistance(std::string_view a, std::string_view b) {
  SimilarityScratch scratch;
  return EditDistance(a, b, scratch);
}

size_t EditDistance(std::string_view a, std::string_view b,
                    SimilarityScratch& scratch) {
  if (a.size() > b.size()) std::swap(a, b);
  // Two-row dynamic program; a is the shorter string.
  std::vector<size_t>& prev = scratch.dp_prev;
  std::vector<size_t>& cur = scratch.dp_cur;
  prev.resize(a.size() + 1);
  cur.resize(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) prev[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    cur[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t substitution = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, substitution});
    }
    std::swap(prev, cur);
  }
  return prev[a.size()];
}

double NormalizedEditSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(EditDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  SimilarityScratch scratch;
  return JaroSimilarity(a, b, scratch);
}

double JaroSimilarity(std::string_view a, std::string_view b,
                      SimilarityScratch& scratch) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t match_window =
      std::max<size_t>(1, std::max(a.size(), b.size()) / 2) - 1;
  std::vector<uint8_t>& a_matched = scratch.a_matched;
  std::vector<uint8_t>& b_matched = scratch.b_matched;
  a_matched.assign(a.size(), 0);
  b_matched.assign(b.size(), 0);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > match_window ? i - match_window : 0;
    size_t hi = std::min(b.size(), i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] == 0 && a[i] == b[j]) {
        a_matched[i] = 1;
        b_matched[j] = 1;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions between the matched subsequences.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a_matched[i] == 0) continue;
    while (b_matched[j] == 0) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = static_cast<double>(matches);
  double t = static_cast<double>(transpositions) / 2.0;
  return (m / static_cast<double>(a.size()) +
          m / static_cast<double>(b.size()) + (m - t) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  SimilarityScratch scratch;
  return JaroWinklerSimilarity(a, b, scratch);
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             SimilarityScratch& scratch) {
  double jaro = JaroSimilarity(a, b, scratch);
  size_t prefix = 0;
  size_t max_prefix = std::min<size_t>({4, a.size(), b.size()});
  while (prefix < max_prefix && a[prefix] == b[prefix]) ++prefix;
  constexpr double kScaling = 0.1;
  return jaro + static_cast<double>(prefix) * kScaling * (1.0 - jaro);
}

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t common = SortedIntersectionSize(a, b);
  size_t unions = a.size() + b.size() - common;
  if (unions == 0) return 1.0;
  return static_cast<double>(common) / static_cast<double>(unions);
}

double JaccardSimilarityIds(const std::vector<TokenId>& a,
                            const std::vector<TokenId>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++common;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t unions = a.size() + b.size() - common;
  if (unions == 0) return 1.0;
  return static_cast<double>(common) / static_cast<double>(unions);
}

double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t common = SortedIntersectionSize(a, b);
  return 2.0 * static_cast<double>(common) /
         static_cast<double>(a.size() + b.size());
}

double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t common = SortedIntersectionSize(a, b);
  return static_cast<double>(common) /
         static_cast<double>(std::min(a.size(), b.size()));
}

double TokenJaccard(std::string_view a, std::string_view b) {
  return JaccardSimilarity(TokenSet(a), TokenSet(b));
}

double TrigramJaccard(std::string_view a, std::string_view b) {
  std::vector<std::string> ga = QGrams(a, 3);
  std::vector<std::string> gb = QGrams(b, 3);
  std::sort(ga.begin(), ga.end());
  ga.erase(std::unique(ga.begin(), ga.end()), ga.end());
  std::sort(gb.begin(), gb.end());
  gb.erase(std::unique(gb.begin(), gb.end()), gb.end());
  return JaccardSimilarity(ga, gb);
}

double MongeElkanSimilarity(std::string_view a, std::string_view b) {
  std::vector<std::string> ta = WordTokens(a);
  std::vector<std::string> tb = WordTokens(b);
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  double total = 0.0;
  for (const std::string& x : ta) {
    double best = 0.0;
    for (const std::string& y : tb) {
      best = std::max(best, JaroWinklerSimilarity(x, y));
    }
    total += best;
  }
  return total / static_cast<double>(ta.size());
}

namespace {

/// Empty-slot sentinel in TokenPairMemo key tables (no real key is ~0:
/// that would need both token ids to be kInvalidToken).
constexpr uint64_t kEmptyMemoKey = ~uint64_t{0};

/// Slot of `key` in an open-addressing table (linear probing): either the
/// slot holding the key or the empty slot where it belongs.
size_t MemoProbe(const std::vector<uint64_t>& keys, uint64_t key) {
  size_t mask = keys.size() - 1;
  size_t slot =
      static_cast<size_t>((key * uint64_t{0x9E3779B97F4A7C15}) >> 32) & mask;
  while (keys[slot] != kEmptyMemoKey && keys[slot] != key) {
    slot = (slot + 1) & mask;
  }
  return slot;
}

/// Binds `memo` to `vocabulary_uid`, resetting the table when the scratch
/// last served a different vocabulary (foreign ids must never be read as
/// hits) and allocating it on first use.
void MemoBind(TokenPairMemo& memo, uint64_t vocabulary_uid) {
  if (memo.vocabulary_uid == vocabulary_uid && !memo.keys.empty()) return;
  size_t size = memo.keys.empty() ? 1024 : memo.keys.size();
  memo.keys.assign(size, kEmptyMemoKey);
  memo.values.assign(size, 0.0);
  memo.used = 0;
  memo.vocabulary_uid = vocabulary_uid;
}

/// Doubles the table, rehashing every occupied slot.
void MemoGrow(TokenPairMemo& memo) {
  std::vector<uint64_t> old_keys = std::move(memo.keys);
  std::vector<double> old_values = std::move(memo.values);
  memo.keys.assign(old_keys.size() * 2, kEmptyMemoKey);
  memo.values.assign(old_values.size() * 2, 0.0);
  for (size_t i = 0; i < old_keys.size(); ++i) {
    if (old_keys[i] == kEmptyMemoKey) continue;
    size_t slot = MemoProbe(memo.keys, old_keys[i]);
    memo.keys[slot] = old_keys[i];
    memo.values[slot] = old_values[i];
  }
}

/// Inserts a freshly computed value, growing first when the table would
/// pass 50% load.
void MemoInsert(TokenPairMemo& memo, uint64_t key, double value) {
  if (memo.used * 2 >= memo.keys.size()) MemoGrow(memo);
  size_t slot = MemoProbe(memo.keys, key);
  memo.keys[slot] = key;
  memo.values[slot] = value;
  ++memo.used;
}

}  // namespace

double SymmetricMongeElkan(const TokenInterner& interner,
                           const std::vector<TokenId>& a,
                           const std::vector<TokenId>& b,
                           SimilarityScratch& scratch) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  // One traversal of the |a| x |b| Jaro-Winkler matrix. Row maxima are
  // folded immediately into total_a (ME(a,b)); column maxima accumulate in
  // scratch.col_best and sum into total_b (ME(b,a)) afterwards. Both
  // reductions visit the same values in the same order as the two
  // independent string passes, so the result is bit-identical. Cell
  // values come from the scratch's pair memo when this scratch has seen
  // the token pair before — Jaro-Winkler is pure, so a hit is the exact
  // bits the recompute would produce.
  TokenPairMemo& memo = scratch.jw_memo;
  MemoBind(memo, interner.uid());
  std::vector<double>& col_best = scratch.col_best;
  col_best.assign(b.size(), 0.0);
  double total_a = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const std::string& x = interner.token(a[i]);
    double row_best = 0.0;
    for (size_t j = 0; j < b.size(); ++j) {
      double s;
      if (a[i] == b[j]) {
        s = 1.0;
      } else {
        uint64_t key = (uint64_t{a[i]} << 32) | b[j];
        size_t slot = MemoProbe(memo.keys, key);
        if (memo.keys[slot] == key) {
          s = memo.values[slot];
        } else {
          s = JaroWinklerSimilarity(x, interner.token(b[j]), scratch);
          MemoInsert(memo, key, s);
        }
      }
      row_best = std::max(row_best, s);
      col_best[j] = std::max(col_best[j], s);
    }
    total_a += row_best;
  }
  double total_b = 0.0;
  for (size_t j = 0; j < b.size(); ++j) total_b += col_best[j];
  return std::max(total_a / static_cast<double>(a.size()),
                  total_b / static_cast<double>(b.size()));
}

namespace {

/// Class index of one byte: 'a'-'z' -> 0..25, '0'-'9' -> 26..35, else 36.
size_t CharClass(char c) {
  unsigned char uc = static_cast<unsigned char>(c);
  if (uc >= 'a' && uc <= 'z') return static_cast<size_t>(uc - 'a');
  if (uc >= '0' && uc <= '9') return 26 + static_cast<size_t>(uc - '0');
  return 36;
}

/// Histograms saturate at 255; past that the multiset intersection could
/// undercount, so bounds fall back to the pure length bound.
constexpr uint32_t kMaxExactLength = 255;

/// Portable histogram intersection: sum over the classes present in both
/// masks of min(count_x, count_y). Classes absent from either side have a
/// zero count on that side, so this equals the all-classes min-sum the
/// vector paths compute — the mask walk just skips known zeros.
size_t SharedCharSumScalar(const TokenSignature& x, const TokenSignature& y) {
  uint64_t shared = x.class_mask & y.class_mask;
  size_t common = 0;
  while (shared != 0) {
    int c = std::countr_zero(shared);
    shared &= shared - 1;
    common += std::min(x.class_counts[static_cast<size_t>(c)],
                       y.class_counts[static_cast<size_t>(c)]);
  }
  return common;
}

#if BDI_SIMD_X86

// Both vector paths compute sum_c min(x[c], y[c]) over the whole
// histogram: unsigned byte min then a sum-of-bytes reduction (psadbw
// against zero). Every operand is an exact small integer, so the result
// is identical to the scalar mask walk — not approximately, bitwise.
// Loads cover class_counts exactly: kSignatureClassStorage = 40 bytes as
// 32 + 8, with the padding bytes always zero (min contributes nothing),
// so no scalar tail remains.

size_t SharedCharSumSse2(const TokenSignature& x, const TokenSignature& y) {
  const uint8_t* xs = x.class_counts.data();
  const uint8_t* ys = y.class_counts.data();
  __m128i zero = _mm_setzero_si128();
  __m128i m0 = _mm_min_epu8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(xs)),
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(ys)));
  __m128i m1 = _mm_min_epu8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(xs + 16)),
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(ys + 16)));
  __m128i m2 = _mm_min_epu8(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(xs + 32)),
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(ys + 32)));
  __m128i sums =
      _mm_add_epi64(_mm_add_epi64(_mm_sad_epu8(m0, zero),
                                  _mm_sad_epu8(m1, zero)),
                    _mm_sad_epu8(m2, zero));
  uint64_t total =
      static_cast<uint64_t>(_mm_cvtsi128_si64(sums)) +
      static_cast<uint64_t>(
          _mm_cvtsi128_si64(_mm_unpackhi_epi64(sums, sums)));
  return static_cast<size_t>(total);
}

__attribute__((target("avx2"))) size_t SharedCharSumAvx2(
    const TokenSignature& x, const TokenSignature& y) {
  const uint8_t* xs = x.class_counts.data();
  const uint8_t* ys = y.class_counts.data();
  __m256i m = _mm256_min_epu8(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs)),
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ys)));
  __m256i sad = _mm256_sad_epu8(m, _mm256_setzero_si256());
  __m128i tail = _mm_min_epu8(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(xs + 32)),
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(ys + 32)));
  __m128i sums = _mm_add_epi64(
      _mm_add_epi64(_mm256_castsi256_si128(sad),
                    _mm256_extracti128_si256(sad, 1)),
      _mm_sad_epu8(tail, _mm_setzero_si128()));
  uint64_t total =
      static_cast<uint64_t>(_mm_cvtsi128_si64(sums)) +
      static_cast<uint64_t>(
          _mm_cvtsi128_si64(_mm_unpackhi_epi64(sums, sums)));
  return static_cast<size_t>(total);
}

#endif  // BDI_SIMD_X86

/// Shared classes below which the scalar mask walk beats any fixed-width
/// reduction: short word tokens intersect in only a handful of classes,
/// and walking those few set bits is cheaper than loading and reducing
/// the whole 40-byte histogram. Measured crossover on the micro bench
/// sits near 8 shared classes (full-name signatures are well above it,
/// word tokens well below).
constexpr int kVectorCutover = 8;

/// Runtime-dispatched shared-character multiset size. The branch on the
/// cached level predicts perfectly (it never changes mid-run outside the
/// equivalence tests), and each path returns the same exact integer —
/// including the sparse-mask scalar shortcut, which only re-orders which
/// known-zero classes get skipped.
size_t SharedCharSum(const TokenSignature& x, const TokenSignature& y) {
#if BDI_SIMD_X86
  if (std::popcount(x.class_mask & y.class_mask) >= kVectorCutover) {
    cpu::SimdLevel level = cpu::ActiveSimdLevel();
    if (level >= cpu::SimdLevel::kAvx2) return SharedCharSumAvx2(x, y);
    if (level >= cpu::SimdLevel::kSse2) return SharedCharSumSse2(x, y);
  }
#endif
  return SharedCharSumScalar(x, y);
}

/// Shared-character multiset size from the two histograms, or min length
/// when either histogram saturated.
size_t SharedCharUpperBound(const TokenSignature& x,
                            const TokenSignature& y) {
  size_t bound = std::min(x.length, y.length);
  if (x.length > kMaxExactLength || y.length > kMaxExactLength) return bound;
  return std::min(bound, SharedCharSum(x, y));
}

/// Compile-time table of IEEE quotients m / l for small m and l. The
/// signature bounds divide a match count by a token length in every cell
/// of the Monge-Elkan grid; for the word-sized operands that dominate, a
/// table load replaces the hardware divide. Entries are computed by the
/// same double division they replace (constant evaluation uses IEEE
/// round-to-nearest, like the runtime), so a lookup returns the identical
/// bits — this is a strength reduction, not an approximation.
struct QuotientTable {
  static constexpr size_t kMax = 48;
  double q[kMax][kMax] = {};
};

constexpr QuotientTable MakeQuotientTable() {
  QuotientTable table;
  for (size_t m = 0; m < QuotientTable::kMax; ++m) {
    for (size_t l = 1; l < QuotientTable::kMax; ++l) {
      table.q[m][l] = static_cast<double>(m) / static_cast<double>(l);
    }
  }
  return table;
}

constinit const QuotientTable kQuotients = MakeQuotientTable();

/// num / den as a double, via the table when both operands are small
/// (den must be nonzero). Bitwise equal to the plain division always.
inline double ExactQuotient(size_t num, size_t den) {
  if (num < QuotientTable::kMax && den < QuotientTable::kMax) {
    return kQuotients.q[num][den];
  }
  return static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

TokenSignature MakeTokenSignature(std::string_view token) {
  TokenSignature signature;
  signature.length = static_cast<uint32_t>(token.size());
  signature.first = token.empty() ? '\0' : token.front();
  for (char c : token) {
    size_t cls = CharClass(c);
    signature.class_mask |= uint64_t{1} << cls;
    if (signature.class_counts[cls] < 255) ++signature.class_counts[cls];
  }
  return signature;
}

size_t JaroMatchUpperBound(const TokenSignature& x, const TokenSignature& y) {
  return SharedCharUpperBound(x, y);
}

double JaroWinklerUpperBound(const TokenSignature& x,
                             const TokenSignature& y) {
  // Mirror the real kernel's empty-string cases exactly.
  if (x.length == 0 && y.length == 0) return 1.0;
  if (x.length == 0 || y.length == 0) return 0.0;
  size_t m = JaroMatchUpperBound(x, y);
  // No shared characters: Jaro is 0 and the Winkler prefix is empty too.
  if (m == 0) return 0.0;
  // (m/|x| + m/|y| + (m-t)/m)/3 with t >= 0, at the largest possible m
  // (the expression is increasing in m since m <= |x| and m <= |y|).
  // ExactQuotient is the same IEEE division, table-accelerated.
  double jaro_ub =
      (ExactQuotient(m, x.length) + ExactQuotient(m, y.length) + 1.0) / 3.0;
  size_t prefix_ub =
      x.first == y.first
          ? std::min<size_t>({4, x.length, y.length})
          : 0;
  constexpr double kScaling = 0.1;
  return jaro_ub +
         static_cast<double>(prefix_ub) * kScaling * (1.0 - jaro_ub);
}

size_t EditDistanceLowerBound(const TokenSignature& x,
                              const TokenSignature& y) {
  size_t longest = std::max(x.length, y.length);
  size_t gap = longest - std::min(x.length, y.length);
  return std::max(gap, longest - SharedCharUpperBound(x, y));
}

double NormalizedEditSimilarityUpperBound(const TokenSignature& x,
                                          const TokenSignature& y) {
  size_t longest = std::max(x.length, y.length);
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(EditDistanceLowerBound(x, y)) /
                   static_cast<double>(longest);
}

double SymmetricMongeElkanUpperBound(
    const std::vector<TokenSignature>& signatures,
    const std::vector<TokenId>& a, const std::vector<TokenId>& b,
    SimilarityScratch& scratch) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  // Same row/column-maxima fold as the real kernel, over per-cell upper
  // bounds. Cells are recomputed, not memoized like the real kernel's:
  // a bound cell is a few integer ops plus table lookups — cheaper than
  // a hash probe into a table too big to stay cache-resident (the bound
  // pass visits every candidate pair, so its distinct-token-pair space
  // is an order of magnitude larger than the survivors').
  double total_a = 0.0;
  std::vector<double>& col_best = scratch.col_best;
  col_best.assign(b.size(), 0.0);
  for (size_t i = 0; i < a.size(); ++i) {
    const TokenSignature& x = signatures[a[i]];
    double row_best = 0.0;
    for (size_t j = 0; j < b.size(); ++j) {
      double s =
          a[i] == b[j] ? 1.0 : JaroWinklerUpperBound(x, signatures[b[j]]);
      row_best = std::max(row_best, s);
      col_best[j] = std::max(col_best[j], s);
    }
    total_a += row_best;
  }
  double total_b = 0.0;
  for (size_t j = 0; j < b.size(); ++j) total_b += col_best[j];
  return std::max(total_a / static_cast<double>(a.size()),
                  total_b / static_cast<double>(b.size()));
}

double SmithWatermanSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  constexpr int kMatch = 2;
  constexpr int kMismatch = -1;
  constexpr int kGap = -1;
  // Two-row dynamic program over local alignment scores.
  std::vector<int> prev(b.size() + 1, 0), cur(b.size() + 1, 0);
  int best = 0;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = 0;
    for (size_t j = 1; j <= b.size(); ++j) {
      int diagonal =
          prev[j - 1] + (a[i - 1] == b[j - 1] ? kMatch : kMismatch);
      int up = prev[j] + kGap;
      int left = cur[j - 1] + kGap;
      cur[j] = std::max({0, diagonal, up, left});
      best = std::max(best, cur[j]);
    }
    std::swap(prev, cur);
  }
  int max_possible = kMatch * static_cast<int>(std::min(a.size(), b.size()));
  return static_cast<double>(best) / static_cast<double>(max_possible);
}

double NumericSimilarity(std::string_view a, std::string_view b) {
  double va = 0.0, vb = 0.0;
  if (!ParseLeadingDouble(a, &va, nullptr) ||
      !ParseLeadingDouble(b, &vb, nullptr)) {
    return 0.0;
  }
  return NumericSimilarityValues(va, vb);
}

void TfIdfVectorizer::AddDocument(const std::vector<std::string>& tokens) {
  ++num_documents_;
  std::vector<std::string> unique = tokens;
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  for (const std::string& t : unique) {
    ++document_frequency_[t];
  }
}

double TfIdfVectorizer::Idf(const std::string& token) const {
  auto it = document_frequency_.find(token);
  size_t df = it == document_frequency_.end() ? 0 : it->second;
  return std::log((1.0 + static_cast<double>(num_documents_)) /
                  (1.0 + static_cast<double>(df))) +
         1.0;
}

double TfIdfVectorizer::Cosine(const std::vector<std::string>& a,
                               const std::vector<std::string>& b) const {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  std::unordered_map<std::string, double> va, vb;
  for (const std::string& t : a) va[t] += 1.0;
  for (const std::string& t : b) vb[t] += 1.0;
  double dot = 0.0, norm_a = 0.0, norm_b = 0.0;
  // Reweight in place through the iteration reference — re-looking the
  // token up mid-iteration costs a second hash probe per entry.
  for (auto& [token, weight] : va) {
    weight *= Idf(token);
    norm_a += weight * weight;
  }
  for (auto& [token, weight] : vb) {
    weight *= Idf(token);
    norm_b += weight * weight;
  }
  for (const auto& [token, wa] : va) {
    auto it = vb.find(token);
    if (it != vb.end()) dot += wa * it->second;
  }
  if (norm_a == 0.0 || norm_b == 0.0) return 0.0;
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

}  // namespace bdi::text
