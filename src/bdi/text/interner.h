#ifndef BDI_TEXT_INTERNER_H_
#define BDI_TEXT_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace bdi::text {

/// Dense id of a distinct token within a TokenInterner.
using TokenId = uint32_t;

/// Sentinel for "not interned" (Lookup misses).
inline constexpr TokenId kInvalidToken = UINT32_MAX;

/// Interns token strings into dense u32 ids so hot loops compare and sort
/// integers instead of strings (precedent: fusion's ValueIndex for claim
/// values). Ids are assigned in first-intern order and are stable for the
/// interner's lifetime.
///
/// Thread-compatibility: `Intern` mutates and must not race with any other
/// member; the read-only accessors (`Lookup`, `token`, `size`) are safe to
/// call concurrently once interning is done. The linkage matcher follows
/// this split — it interns serially inside `Prepare()` and only reads
/// during the parallel `Extract` phase.
class TokenInterner {
 public:
  TokenInterner() = default;

  /// Copies get a fresh uid: after the copy the two interners can assign
  /// the same future id to different tokens, so they must not share a
  /// vocabulary identity. Moves transfer the uid with the vocabulary and
  /// re-identify the moved-from interner.
  TokenInterner(const TokenInterner& other)
      : ids_(other.ids_), tokens_(other.tokens_) {}
  TokenInterner& operator=(const TokenInterner& other);
  TokenInterner(TokenInterner&& other) noexcept;
  TokenInterner& operator=(TokenInterner&& other) noexcept;

  /// Returns the id of `token`, interning it first if unseen.
  TokenId Intern(std::string_view token);

  /// Id of `token`, or kInvalidToken when it was never interned.
  TokenId Lookup(std::string_view token) const;

  /// The string for an interned id (valid for the interner's lifetime).
  const std::string& token(TokenId id) const { return tokens_[id]; }

  /// Number of distinct tokens interned so far.
  size_t size() const { return tokens_.size(); }

  /// Process-unique identity of this interner's vocabulary, stable across
  /// growth (ids are append-only, so existing id -> token mappings never
  /// change under one uid). Memo caches keyed by token ids use the uid to
  /// detect that a scratch moved to a different vocabulary; uids are
  /// never reused within a process.
  uint64_t uid() const { return uid_; }

 private:
  /// Next value of the process-wide uid counter (starts at 1).
  static uint64_t NextUid();
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>()(s);
    }
  };

  /// token -> id; tokens_ is the inverse (id -> token). Both own their
  /// strings, so the interner stays safely copyable.
  std::unordered_map<std::string, TokenId, StringHash, std::equal_to<>> ids_;
  std::vector<std::string> tokens_;
  uint64_t uid_ = NextUid();
};

/// Interns every token of `tokens` in order, preserving duplicates.
std::vector<TokenId> InternTokens(TokenInterner& interner,
                                  const std::vector<std::string>& tokens);

/// Interns a sorted-unique token vector and returns the ids sorted by id.
/// Sortedness by id is what the integer set-similarity kernels require;
/// intersection and union sizes are unchanged by the reordering.
std::vector<TokenId> InternTokenSet(TokenInterner& interner,
                                    const std::vector<std::string>& tokens);

}  // namespace bdi::text

#endif  // BDI_TEXT_INTERNER_H_
