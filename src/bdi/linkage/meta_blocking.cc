#include "bdi/linkage/meta_blocking.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "bdi/common/metrics.h"

namespace bdi::linkage {

namespace {

struct PairHash {
  size_t operator()(const CandidatePair& p) const {
    return HashCombine(std::hash<int32_t>()(p.a), std::hash<int32_t>()(p.b));
  }
};

}  // namespace

std::vector<WeightedPair> BuildBlockingGraph(
    const Dataset& dataset, const std::vector<Block>& blocks,
    MetaBlockingScheme scheme, bool allow_same_source) {
  // Per-record block membership counts (needed for Jaccard).
  std::unordered_map<RecordIdx, size_t> blocks_of;
  for (const Block& block : blocks) {
    for (RecordIdx r : block.records) ++blocks_of[r];
  }

  // Accumulate per-pair statistics: co-occurrence count and ARCS weight.
  struct EdgeStats {
    size_t common = 0;
    double arcs = 0.0;
  };
  std::unordered_map<CandidatePair, EdgeStats, PairHash> edges;
  for (const Block& block : blocks) {
    size_t cardinality =
        block.records.size() * (block.records.size() - 1) / 2;
    if (cardinality == 0) continue;
    double arcs_contribution = 1.0 / static_cast<double>(cardinality);
    for (size_t i = 0; i < block.records.size(); ++i) {
      for (size_t j = i + 1; j < block.records.size(); ++j) {
        RecordIdx a = block.records[i], b = block.records[j];
        if (!allow_same_source &&
            dataset.record(a).source == dataset.record(b).source) {
          continue;
        }
        if (a > b) std::swap(a, b);
        EdgeStats& stats = edges[CandidatePair{a, b}];
        ++stats.common;
        stats.arcs += arcs_contribution;
      }
    }
  }

  std::vector<WeightedPair> graph;
  graph.reserve(edges.size());
  for (const auto& [pair, stats] : edges) {
    double weight = 0.0;
    switch (scheme) {
      case MetaBlockingScheme::kCommonBlocks:
        weight = static_cast<double>(stats.common);
        break;
      case MetaBlockingScheme::kJaccard: {
        size_t total = blocks_of[pair.a] + blocks_of[pair.b] - stats.common;
        weight = total == 0 ? 0.0
                            : static_cast<double>(stats.common) /
                                  static_cast<double>(total);
        break;
      }
      case MetaBlockingScheme::kArcs:
        weight = stats.arcs;
        break;
    }
    graph.push_back(WeightedPair{pair, weight});
  }
  std::sort(graph.begin(), graph.end(),
            [](const WeightedPair& x, const WeightedPair& y) {
              return x.pair < y.pair;
            });
  return graph;
}

std::vector<CandidatePair> MetaBlock(const Dataset& dataset,
                                     const std::vector<Block>& blocks,
                                     const MetaBlockingConfig& config) {
  std::vector<WeightedPair> graph = BuildBlockingGraph(
      dataset, blocks, config.scheme, config.allow_same_source);
  std::vector<CandidatePair> kept;
  if (graph.empty()) return kept;

  if (config.pruning == MetaBlockingPruning::kWeightEdge) {
    double mean = 0.0;
    for (const WeightedPair& wp : graph) mean += wp.weight;
    mean /= static_cast<double>(graph.size());
    for (const WeightedPair& wp : graph) {
      if (wp.weight >= mean) kept.push_back(wp.pair);
    }
  } else {
    // CNP: each node retains its top-k incident edges; an edge survives if
    // either endpoint retains it.
    std::unordered_map<RecordIdx, std::vector<std::pair<double, size_t>>>
        incident;
    for (size_t e = 0; e < graph.size(); ++e) {
      incident[graph[e].pair.a].emplace_back(graph[e].weight, e);
      incident[graph[e].pair.b].emplace_back(graph[e].weight, e);
    }
    std::vector<bool> retained(graph.size(), false);
    for (auto& [node, list] : incident) {
      size_t k = std::min(config.node_top_k, list.size());
      std::partial_sort(list.begin(), list.begin() + static_cast<long>(k),
                        list.end(),
                        [](const auto& x, const auto& y) {
                          return x.first > y.first;
                        });
      for (size_t i = 0; i < k; ++i) retained[list[i].second] = true;
    }
    for (size_t e = 0; e < graph.size(); ++e) {
      if (retained[e]) kept.push_back(graph[e].pair);
    }
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  if (metrics::Enabled()) {
    static metrics::Counter* generated_counter =
        metrics::Registry::Get().RegisterCounter(
            "bdi.linkage.meta_blocking.pairs.generated");
    static metrics::Counter* pruned_counter =
        metrics::Registry::Get().RegisterCounter(
            "bdi.linkage.meta_blocking.pairs.pruned");
    generated_counter->Add(graph.size());
    pruned_counter->Add(graph.size() - kept.size());
  }
  return kept;
}

}  // namespace bdi::linkage
