#include "bdi/linkage/meta_blocking.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "bdi/common/executor.h"
#include "bdi/common/metrics.h"

namespace bdi::linkage {

std::vector<WeightedPair> BuildBlockingGraph(
    const Dataset& dataset, const std::vector<Block>& blocks,
    MetaBlockingScheme scheme, bool allow_same_source, size_t num_threads) {
  std::vector<WeightedPair> graph;
  const size_t num_records = dataset.num_records();
  if (blocks.empty() || num_records == 0) return graph;

  // Per-record block membership counts (needed for Jaccard) — dense,
  // record indices are contiguous.
  std::vector<size_t> blocks_of(num_records, 0);
  for (const Block& block : blocks) {
    for (RecordIdx r : block.records) ++blocks_of[static_cast<size_t>(r)];
  }

  // Per-pair statistics: co-occurrence count and ARCS weight.
  struct EdgeStats {
    size_t common = 0;
    double arcs = 0.0;
  };

  // The O(Σ|block|²) edge accumulation runs in parallel over block
  // chunks, each filling per-shard partial maps (shard = contiguous range
  // of the pair's first record). The chunk count is a function of the
  // block count alone — never the thread count — so each pair's ARCS
  // partial sums group identically for every thread count; collections
  // under 2*kBlocksPerChunk blocks run as a single chunk, reproducing the
  // serial accumulation order exactly.
  constexpr size_t kBlocksPerChunk = 256;
  const size_t num_chunks =
      std::min<size_t>(64, std::max<size_t>(1, blocks.size() / kBlocksPerChunk));
  const size_t num_shards = std::min<size_t>(16, num_chunks);
  auto shard_of = [&](RecordIdx a) {
    return static_cast<size_t>(a) * num_shards / num_records;
  };
  auto pair_key = [](const CandidatePair& p) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(p.a)) << 32) |
           static_cast<uint64_t>(static_cast<uint32_t>(p.b));
  };

  std::vector<std::vector<std::unordered_map<uint64_t, EdgeStats>>> partials(
      num_chunks,
      std::vector<std::unordered_map<uint64_t, EdgeStats>>(num_shards));
  ParallelFor(
      num_chunks,
      [&](size_t c) {
        size_t chunk_begin = c * blocks.size() / num_chunks;
        size_t chunk_end = (c + 1) * blocks.size() / num_chunks;
        std::vector<std::unordered_map<uint64_t, EdgeStats>>& shard_maps =
            partials[c];
        for (size_t blk = chunk_begin; blk < chunk_end; ++blk) {
          const Block& block = blocks[blk];
          size_t cardinality =
              block.records.size() * (block.records.size() - 1) / 2;
          if (cardinality == 0) continue;
          double arcs_contribution = 1.0 / static_cast<double>(cardinality);
          for (size_t i = 0; i < block.records.size(); ++i) {
            for (size_t j = i + 1; j < block.records.size(); ++j) {
              RecordIdx a = block.records[i], b = block.records[j];
              if (!allow_same_source &&
                  dataset.record(a).source == dataset.record(b).source) {
                continue;
              }
              if (a > b) std::swap(a, b);
              EdgeStats& stats =
                  shard_maps[shard_of(a)][pair_key(CandidatePair{a, b})];
              ++stats.common;
              stats.arcs += arcs_contribution;
            }
          }
        }
      },
      num_threads);

  // Merge per shard, visiting chunks in ascending index order: each
  // pair's partials combine in the same order no matter which threads
  // produced them. Shards own contiguous first-record ranges, so the
  // sorted per-shard graphs concatenate into the globally pair-sorted
  // graph.
  std::vector<std::vector<WeightedPair>> shard_graphs(num_shards);
  ParallelFor(
      num_shards,
      [&](size_t s) {
        std::unordered_map<uint64_t, EdgeStats> merged;
        for (size_t c = 0; c < num_chunks; ++c) {
          for (const auto& [key, stats] : partials[c][s]) {
            EdgeStats& acc = merged[key];
            acc.common += stats.common;
            acc.arcs += stats.arcs;
          }
        }
        std::vector<WeightedPair>& out = shard_graphs[s];
        out.reserve(merged.size());
        for (const auto& [key, stats] : merged) {
          CandidatePair pair{
              static_cast<RecordIdx>(static_cast<uint32_t>(key >> 32)),
              static_cast<RecordIdx>(static_cast<uint32_t>(key))};
          double weight = 0.0;
          switch (scheme) {
            case MetaBlockingScheme::kCommonBlocks:
              weight = static_cast<double>(stats.common);
              break;
            case MetaBlockingScheme::kJaccard: {
              size_t total = blocks_of[static_cast<size_t>(pair.a)] +
                             blocks_of[static_cast<size_t>(pair.b)] -
                             stats.common;
              weight = total == 0 ? 0.0
                                  : static_cast<double>(stats.common) /
                                        static_cast<double>(total);
              break;
            }
            case MetaBlockingScheme::kArcs:
              weight = stats.arcs;
              break;
          }
          out.push_back(WeightedPair{pair, weight});
        }
        std::sort(out.begin(), out.end(),
                  [](const WeightedPair& x, const WeightedPair& y) {
                    return x.pair < y.pair;
                  });
      },
      num_threads);

  size_t total_edges = 0;
  for (const std::vector<WeightedPair>& sg : shard_graphs) {
    total_edges += sg.size();
  }
  graph.reserve(total_edges);
  for (std::vector<WeightedPair>& sg : shard_graphs) {
    graph.insert(graph.end(), sg.begin(), sg.end());
  }
  return graph;
}

std::vector<CandidatePair> MetaBlock(const Dataset& dataset,
                                     const std::vector<Block>& blocks,
                                     const MetaBlockingConfig& config,
                                     size_t num_threads) {
  std::vector<WeightedPair> graph =
      BuildBlockingGraph(dataset, blocks, config.scheme,
                         config.allow_same_source, num_threads);
  std::vector<CandidatePair> kept;
  if (graph.empty()) return kept;

  // The combined strategy applies both filters: an edge must clear the
  // global mean weight (WEP) and rank in an endpoint's top-k (CNP).
  const bool want_weight =
      config.pruning == MetaBlockingPruning::kWeightEdge ||
      config.pruning == MetaBlockingPruning::kWeightedCardinalityNode;
  const bool want_top_k =
      config.pruning == MetaBlockingPruning::kCardinalityNode ||
      config.pruning == MetaBlockingPruning::kWeightedCardinalityNode;

  double mean = 0.0;
  if (want_weight) {
    for (const WeightedPair& wp : graph) mean += wp.weight;
    mean /= static_cast<double>(graph.size());
  }

  // CNP: each node retains its top-k incident edges; an edge survives if
  // either endpoint retains it. Ties inside the top-k boundary break by
  // edge index (== pair-sorted graph order), keeping the retained set
  // deterministic.
  std::vector<bool> retained;
  if (want_top_k) {
    std::unordered_map<RecordIdx, std::vector<std::pair<double, size_t>>>
        incident;
    for (size_t e = 0; e < graph.size(); ++e) {
      incident[graph[e].pair.a].emplace_back(graph[e].weight, e);
      incident[graph[e].pair.b].emplace_back(graph[e].weight, e);
    }
    retained.assign(graph.size(), false);
    for (auto& [node, list] : incident) {
      size_t k = std::min(config.node_top_k, list.size());
      std::partial_sort(list.begin(), list.begin() + static_cast<long>(k),
                        list.end(),
                        [](const auto& x, const auto& y) {
                          return x.first != y.first ? x.first > y.first
                                                    : x.second < y.second;
                        });
      for (size_t i = 0; i < k; ++i) retained[list[i].second] = true;
    }
  }

  for (size_t e = 0; e < graph.size(); ++e) {
    if (want_weight && graph[e].weight < mean) continue;
    if (want_top_k && !retained[e]) continue;
    kept.push_back(graph[e].pair);
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  if (metrics::Enabled()) {
    static metrics::Counter* generated_counter =
        metrics::Registry::Get().RegisterCounter(
            "bdi.linkage.meta_blocking.pairs.generated");
    static metrics::Counter* pruned_counter =
        metrics::Registry::Get().RegisterCounter(
            "bdi.linkage.meta_blocking.pairs.pruned");
    generated_counter->Add(graph.size());
    pruned_counter->Add(graph.size() - kept.size());
  }
  return kept;
}

}  // namespace bdi::linkage
