#ifndef BDI_LINKAGE_ATTR_ROLES_H_
#define BDI_LINKAGE_ATTR_ROLES_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "bdi/model/dataset.h"
#include "bdi/model/types.h"
#include "bdi/schema/attribute_stats.h"

namespace bdi::linkage {

/// Role an attribute plays for linkage purposes.
enum class AttrRole {
  kOther = 0,
  kName,        ///< free-text display name / title
  kIdentifier,  ///< publishable entity identifier (sku / mpn / id)
};

/// Unsupervised detection of name-like and identifier-like attributes from
/// value statistics (no ground truth): identifiers are near-unique
/// single-token digit-bearing strings; names are multi-token, mostly
/// distinct, mostly non-numeric strings. This operationalizes the
/// tutorial's "products are named entities that publish identifiers"
/// opportunity without a hand-built schema.
class AttrRoles {
 public:
  static AttrRoles Detect(const schema::AttributeStatistics& stats);

  AttrRole RoleOf(const SourceAttr& sa) const;

  /// True if at least one attribute of the given role was detected.
  bool HasRole(AttrRole role) const;

 private:
  std::unordered_map<SourceAttr, AttrRole, SourceAttrHash> roles_;
  bool has_name_ = false;
  bool has_identifier_ = false;
};

/// The attribute names blocking keys on: every attribute that carries a
/// name-role or identifier-role SourceAttr for at least one source, in
/// AttrId order. Feeding this to `storage::DatasetReader::ReadProjected`
/// materializes exactly the columns the blockers key on — blocks over the
/// projected dataset are identical to blocks over the full one (pinned by
/// the storage equivalence test). Projection is only attempted when it is
/// provably block-preserving: if no roles were detected, or if any record
/// lacks a field of a detected role (blockers then fall back to ALL of
/// that record's fields), every attribute name is returned and projection
/// becomes a no-op rather than silently changing blocking.
std::vector<std::string> KeyedAttributeNames(const Dataset& dataset,
                                             const AttrRoles& roles);

}  // namespace bdi::linkage

#endif  // BDI_LINKAGE_ATTR_ROLES_H_
