#ifndef BDI_LINKAGE_ATTR_ROLES_H_
#define BDI_LINKAGE_ATTR_ROLES_H_

#include <unordered_map>

#include "bdi/model/dataset.h"
#include "bdi/model/types.h"
#include "bdi/schema/attribute_stats.h"

namespace bdi::linkage {

/// Role an attribute plays for linkage purposes.
enum class AttrRole {
  kOther = 0,
  kName,        ///< free-text display name / title
  kIdentifier,  ///< publishable entity identifier (sku / mpn / id)
};

/// Unsupervised detection of name-like and identifier-like attributes from
/// value statistics (no ground truth): identifiers are near-unique
/// single-token digit-bearing strings; names are multi-token, mostly
/// distinct, mostly non-numeric strings. This operationalizes the
/// tutorial's "products are named entities that publish identifiers"
/// opportunity without a hand-built schema.
class AttrRoles {
 public:
  static AttrRoles Detect(const schema::AttributeStatistics& stats);

  AttrRole RoleOf(const SourceAttr& sa) const;

  /// True if at least one attribute of the given role was detected.
  bool HasRole(AttrRole role) const;

 private:
  std::unordered_map<SourceAttr, AttrRole, SourceAttrHash> roles_;
  bool has_name_ = false;
  bool has_identifier_ = false;
};

}  // namespace bdi::linkage

#endif  // BDI_LINKAGE_ATTR_ROLES_H_
