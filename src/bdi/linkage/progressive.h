#ifndef BDI_LINKAGE_PROGRESSIVE_H_
#define BDI_LINKAGE_PROGRESSIVE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "bdi/common/result.h"
#include "bdi/linkage/blocking.h"
#include "bdi/linkage/matcher.h"

namespace bdi::linkage {

/// Bound-ranked comparison scheduling: the progressive (pay-as-you-go)
/// matching stage. Every candidate pair gets a cheap score upper bound
/// from the interned token evidence (the PR 4/6 cascade machinery); the
/// pairs that could clear the scorer's threshold are then compared in
/// deterministic bound-descending tiers until a comparison budget runs
/// out. Early comparisons concentrate on the highest-value pairs, so the
/// match set grows steeply at first and quality is *anytime*: stopping at
/// a fraction of the comparisons keeps most of the recall (the
/// recall-vs-comparisons curve in BENCH_linkage_quality.json). With the
/// budget unlimited, the scheduler's match set is bitwise identical to
/// the classic slab path — scheduling changes order, never scores.

/// Number of quantized scorer-bound tiers the scheduler sorts survivors
/// into. Within a tier, pairs keep candidate order — deliberately: the
/// candidate stream interleaves the blocks' entities, so a bound plateau
/// spreads its budget across distinct clusters instead of sinking into
/// one large cluster's quadratic interior (finer similarity-based
/// ordering was measured to *hurt* anytime recall for exactly that
/// reason — see DESIGN.md). Tiering is what keeps the schedule
/// reproducible: the bound is bitwise deterministic per pair, tier
/// membership depends only on its value, and tie order is candidate
/// order — so the schedule is a pure function of the candidate list,
/// never of thread count or chunk boundaries. 256 tiers over [0, 1]
/// also cap the scheduling cost at one counting sort, O(n + tiers),
/// instead of O(n log n).
inline constexpr size_t kProgressiveTiers = 256;

/// Tier index of a score upper bound: 0 holds the highest bounds
/// (>= 1.0), kProgressiveTiers - 1 the lowest (<= 0). Monotone
/// non-increasing in the bound, so ascending tier order is
/// bound-descending order.
size_t ProgressiveTierOf(double bound);

/// First budgeted scheduling round, in pairs. Matching feeds transitive
/// clustering, so a budgeted run prunes comparisons whose endpoints the
/// matches found so far already connect — but the pruning state only
/// updates *between* rounds, so a round is pure waste past the point
/// where its own matches would have pruned its later pairs. Small rounds
/// keep that waste bounded: the sweep on the E7 noisy world moved anytime
/// recall at a 50% budget from 87% of full recall (rounds up to 4096) to
/// 96% (8..64). Rounds this size run serially per round — acceptable
/// because budgeted runs are the latency-sensitive mode and the kernel
/// cost the budget limits dwarfs the round bookkeeping. Geometric growth:
/// 8, 16, 32, capped at kProgressiveRoundPairsMax.
inline constexpr size_t kProgressiveRoundPairs = 8;

/// Cap of the geometric round growth (see kProgressiveRoundPairs).
inline constexpr size_t kProgressiveRoundPairsMax = 64;

/// Resolves a LinkerConfig::comparison_budget spec against the number of
/// full-kernel comparisons the unbudgeted run would make (`num_payable`):
/// 0 means unlimited; a value in (0, 1) is a fraction of `num_payable`,
/// rounded up; a value >= 1 is an absolute comparison count, rounded
/// down. Never returns more than `num_payable`.
size_t ResolveComparisonBudget(double comparison_budget, size_t num_payable);

/// Parses a CLI `--budget` spec. Grammar: a non-negative integer is an
/// absolute comparison count ("25000"; "0" means unlimited), a percentage
/// in (0, 100] is a fraction of the comparisons the unbudgeted run would
/// make ("25%", "12.5%"; "100%" means unlimited). Anything else —
/// negative, zero percent, above 100%, trailing garbage — is an
/// InvalidArgument naming the offending spec. The returned double obeys
/// the ResolveComparisonBudget encoding.
Result<double> ParseComparisonBudget(const std::string& spec);

/// What one progressive scheduling run did (diagnostics and benches; the
/// same numbers feed the bdi.linkage.progressive.* metrics).
struct ProgressiveStats {
  /// Candidates whose score upper bound could not reach the threshold —
  /// rejected without the full kernels, exactly like the classic cascade
  /// (0 when the prefilter is off).
  size_t num_skipped = 0;
  /// Candidates that survived the bound pass and were eligible for full
  /// comparison (all candidates when the prefilter is off).
  size_t num_survivors = 0;
  /// Distinct non-empty scheduling tiers the survivors occupied (a tier
  /// is a quantized scorer-bound bucket; more occupied tiers = finer
  /// ranking).
  size_t num_tiers = 0;
  /// The resolved comparison budget (<= num_survivors).
  size_t budget = 0;
  /// Full-kernel comparisons actually executed (== budget unless there
  /// were fewer survivors than budget, or closure pruning drained the
  /// stream first).
  size_t num_scheduled = 0;
  /// Survivors pruned without cost during a budgeted run because earlier
  /// matches already connected their endpoints transitively (their
  /// comparison could not change the clustering; 0 when unbudgeted).
  size_t num_closure_pruned = 0;
  /// Survivors left uncompared because the budget ran out.
  size_t num_deferred = 0;
  /// True when the budget stopped the run before every survivor was
  /// compared (num_deferred > 0).
  bool budget_stopped = false;
  /// True when the wall-clock deadline (`budget_ms`) stopped the run
  /// before the comparison budget or the survivor stream was exhausted.
  bool deadline_stopped = false;
  /// Matches among the scheduled comparisons (score >= threshold).
  size_t num_matches = 0;
};

/// Scores `pairs[0..n)` under the progressive scheduler. Writes one score
/// per pair into `scores[0..n)` and sets `scored[i]` to 1 when that slot
/// is authoritative: prefilter-skipped pairs record their bound (below
/// threshold by construction) and scheduled pairs record their true
/// kernel score. Budget-deferred and closure-pruned pairs keep
/// `scored[i] == 0` (their score slot is untouched — the caller must not
/// read it); a closure-pruned pair's endpoints are already connected by
/// found matches, so dropping it cannot change the transitive
/// clustering. Matches are the scored slots at or above the scorer's
/// threshold; with an unlimited budget every slot is scored, nothing is
/// pruned, and the result is bitwise identical to ScoreCandidateSlab
/// over the same pairs, for every scorer, thread count, and SIMD
/// dispatch level. Under any budget the scored set — and so the match
/// set — is a subset of the scored set at every larger budget.
/// `comparison_budget` follows the ResolveComparisonBudget encoding;
/// `budget_ms` (0 = no deadline) is a wall-clock deadline measured from
/// entry and checked at every scheduling-round boundary — when it
/// expires, the remaining survivors are deferred exactly as if a smaller
/// comparison budget had cut the schedule there, so a deadline-stopped
/// match set is always *some* prefix of the deterministic schedule
/// (which comparisons ran depends on wall time, but never their scores);
/// `use_prefilter` keeps the cascade's skip rule (off = every pair is a
/// survivor, bounds are used for ordering only); `num_threads` bounds
/// the parallel bound and kernel passes (0 = shared executor pool, 1 =
/// serial) — the output is identical for every value.
ProgressiveStats ScorePairsProgressive(const FeatureExtractor& extractor,
                                       const PairScorer& scorer,
                                       const CandidatePair* pairs, size_t n,
                                       double comparison_budget,
                                       double budget_ms, bool use_prefilter,
                                       size_t num_threads, double* scores,
                                       uint8_t* scored);

}  // namespace bdi::linkage

#endif  // BDI_LINKAGE_PROGRESSIVE_H_
