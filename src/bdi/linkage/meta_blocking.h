#ifndef BDI_LINKAGE_META_BLOCKING_H_
#define BDI_LINKAGE_META_BLOCKING_H_

#include <vector>

#include "bdi/linkage/blocking.h"

namespace bdi::linkage {

/// Edge-weighting schemes over the blocking graph (Papadakis et al.).
enum class MetaBlockingScheme {
  kCommonBlocks,  ///< CBS: number of blocks two records co-occur in
  kJaccard,       ///< JS: Jaccard of the two records' block sets
  kArcs,          ///< ARCS: sum over common blocks of 1/||block||
};

/// Pruning strategies over the weighted blocking graph.
enum class MetaBlockingPruning {
  kWeightEdge,      ///< WEP: keep edges above the global mean weight
  kCardinalityNode, ///< CNP: keep each node's top-k edges
  /// WEP ∩ CNP: keep an edge only when its weight clears the global mean
  /// AND an endpoint ranks it among its top-k — cardinality- and
  /// weight-aware pruning that bounds every record's comparison fan-out
  /// while still dropping globally weak edges. Strictly a subset of
  /// either strategy alone; the natural companion of a progressive
  /// comparison budget (LinkerConfig::comparison_budget), which it
  /// shrinks the candidate set for.
  kWeightedCardinalityNode,
};

struct MetaBlockingConfig {
  MetaBlockingScheme scheme = MetaBlockingScheme::kJaccard;
  MetaBlockingPruning pruning = MetaBlockingPruning::kWeightEdge;
  /// k for CNP (per-node retained edges).
  size_t node_top_k = 8;
  bool allow_same_source = false;
};

/// A weighted candidate pair from the blocking graph.
struct WeightedPair {
  CandidatePair pair;
  double weight = 0.0;
};

/// Builds the blocking graph from `blocks`, weights every edge with the
/// chosen scheme and prunes it, returning the surviving candidate pairs.
/// Meta-blocking restructures a redundancy-heavy block collection so that
/// far fewer comparisons retain nearly all matches. `num_threads` bounds
/// the graph build (0 = shared executor pool, 1 = serial); the result is
/// identical for every thread count.
std::vector<CandidatePair> MetaBlock(const Dataset& dataset,
                                     const std::vector<Block>& blocks,
                                     const MetaBlockingConfig& config,
                                     size_t num_threads = 0);

/// Exposed for testing: the weighted graph before pruning, sorted by pair.
/// The edge accumulation parallelizes over deterministic block chunks —
/// chunk boundaries depend only on the block count, so the floating-point
/// ARCS sums (and everything else) are identical for every `num_threads`.
std::vector<WeightedPair> BuildBlockingGraph(
    const Dataset& dataset, const std::vector<Block>& blocks,
    MetaBlockingScheme scheme, bool allow_same_source,
    size_t num_threads = 0);

}  // namespace bdi::linkage

#endif  // BDI_LINKAGE_META_BLOCKING_H_
