#ifndef BDI_LINKAGE_INCREMENTAL_H_
#define BDI_LINKAGE_INCREMENTAL_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bdi/linkage/clustering.h"
#include "bdi/linkage/linkage.h"
#include "bdi/linkage/progressive.h"

namespace bdi::linkage {

/// Incremental record linkage (velocity): maintains a blocking index and
/// the matched-edge set so that newly appended records are linked by
/// comparing only against their blocking partners, instead of re-running
/// batch linkage over the whole corpus. Deletions tombstone records; the
/// cluster view is recomputed from surviving edges on demand (an O(E)
/// operation, no re-scoring).
///
/// Attribute roles are learned at construction and refreshed automatically
/// whenever arriving records introduce source attributes never seen before
/// (e.g. a newly discovered source): role statistics are then recomputed
/// over the whole corpus and the feature cache rebuilt. Updates from known
/// schemas keep the cheap fast path.
class IncrementalLinker {
 public:
  struct Config {
    ScorerKind scorer = ScorerKind::kRule;
    double threshold = 0.5;
    /// Name-token postings longer than this stop generating candidates
    /// (stop-word guard).
    size_t max_posting = 200;
    size_t id_min_token_len = 4;
    size_t min_name_token_len = 3;
    /// Comparison cascade for the refresh path, same contract as
    /// LinkerConfig::use_prefilter: the matched-edge set is identical
    /// with it on or off.
    bool use_prefilter = true;
    /// Progressive comparison budget applied to each AddNewRecords()
    /// batch (LinkerConfig::comparison_budget encoding: 0 = unlimited,
    /// (0, 1) = fraction of the batch's payable comparisons, >= 1 =
    /// absolute count). Non-zero routes the batch through the
    /// bound-ranked scheduler (progressive.h), spending the budget on
    /// the highest-bound candidate pairs first — a fixed latency budget
    /// per update batch. With it unlimited the edge set is bitwise
    /// identical to the classic path.
    double comparison_budget = 0.0;
    /// Wall-clock deadline per AddNewRecords() batch, in milliseconds
    /// (LinkerConfig::budget_ms semantics: 0 = none, positive routes the
    /// batch through the progressive scheduler and stops comparing at
    /// round boundaries once the deadline passes). The serving layer's
    /// per-batch latency bound; composable with `comparison_budget`.
    double budget_ms = 0.0;
  };

  /// `dataset` must outlive the linker and already contain the initial
  /// records; call AddNewRecords() to index them.
  IncrementalLinker(const Dataset* dataset, const Config& config);

  IncrementalLinker(const IncrementalLinker&) = delete;
  IncrementalLinker& operator=(const IncrementalLinker&) = delete;

  /// Indexes and links every record appended to the dataset since the last
  /// call (or construction). Returns the number of pair comparisons made.
  size_t AddNewRecords();

  /// Tombstones records: they stop matching and their edges are dropped
  /// from the cluster view.
  void RemoveRecords(const std::vector<RecordIdx>& records);

  /// Current record -> cluster labels (tombstoned records get singleton
  /// labels).
  EntityClusters Clusters() const;

  size_t num_indexed() const { return next_record_; }
  size_t num_edges() const { return edges_.size(); }
  size_t total_comparisons() const { return total_comparisons_; }

  /// Scheduler stats of the last AddNewRecords() batch when a
  /// comparison budget is configured (zero-initialized otherwise).
  const ProgressiveStats& last_progressive() const {
    return last_progressive_;
  }

  /// Changes the comparison budget for subsequent AddNewRecords() calls
  /// (Config::comparison_budget encoding). Budgets are a serving-time
  /// knob: a typical stream ingests its backlog unbudgeted, then caps the
  /// per-batch update latency once live.
  void set_comparison_budget(double comparison_budget) {
    config_.comparison_budget = comparison_budget;
  }

  /// Changes the wall-clock deadline for subsequent AddNewRecords() calls
  /// (Config::budget_ms semantics). Like the comparison budget, a
  /// serving-time knob.
  void set_budget_ms(double budget_ms) { config_.budget_ms = budget_ms; }

 private:
  std::vector<RecordIdx> CandidatesFor(RecordIdx idx) const;
  void IndexRecord(RecordIdx idx);
  /// Re-learns roles and rebuilds the feature cache when new records carry
  /// unseen source attributes. Returns true when a refresh happened.
  bool MaybeRefreshRoles();

  const Dataset* dataset_;
  Config config_;
  schema::AttributeStatistics stats_;
  AttrRoles roles_;
  FeatureExtractor extractor_;
  std::unique_ptr<PairScorer> scorer_;

  std::unordered_set<SourceAttr, SourceAttrHash> known_attrs_;
  std::unordered_map<std::string, std::vector<RecordIdx>> id_index_;
  std::unordered_map<std::string, std::vector<RecordIdx>> name_index_;
  std::vector<ScoredPair> edges_;
  std::unordered_set<RecordIdx> removed_;
  size_t next_record_ = 0;
  size_t total_comparisons_ = 0;
  ProgressiveStats last_progressive_;
};

}  // namespace bdi::linkage

#endif  // BDI_LINKAGE_INCREMENTAL_H_
