#include "bdi/linkage/blocking.h"

#include <algorithm>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "bdi/common/executor.h"
#include "bdi/common/metrics.h"
#include "bdi/common/string_util.h"
#include "bdi/text/tokenizer.h"

namespace bdi::linkage {

namespace {

/// Concatenated values of the record's fields with the wanted role; all
/// fields when roles are missing or the record has none with that role.
std::string RoleText(const Dataset& dataset, RecordIdx idx,
                     const AttrRoles* roles, AttrRole wanted) {
  const Record& record = dataset.record(idx);
  std::string text;
  if (roles != nullptr) {
    for (const Field& field : record.fields) {
      if (roles->RoleOf(SourceAttr{record.source, field.attr}) == wanted) {
        text += field.value;
        text += ' ';
      }
    }
    if (!text.empty()) return text;
  }
  for (const Field& field : record.fields) {
    text += field.value;
    text += ' ';
  }
  return text;
}

std::vector<Block> IndexToBlocks(
    std::unordered_map<std::string, std::vector<RecordIdx>>&& index,
    size_t max_block_size) {
  std::vector<Block> blocks;
  blocks.reserve(index.size());
  for (auto& [key, members] : index) {
    if (members.size() < 2 || members.size() > max_block_size) continue;
    blocks.push_back(Block{key, std::move(members)});
  }
  std::sort(blocks.begin(), blocks.end(),
            [](const Block& a, const Block& b) { return a.key < b.key; });
  return blocks;
}

}  // namespace

std::vector<Block> Blocker::MakeBlocksAll(const Dataset& dataset,
                                          const AttrRoles* roles) const {
  std::vector<RecordIdx> all;
  all.reserve(dataset.num_records());
  for (const Record& r : dataset.records()) all.push_back(r.idx);
  return MakeBlocks(dataset, all, roles);
}

namespace {

/// Parallel token emission + serial index building: the expensive part of
/// token-family blocking is per-record text assembly and tokenization,
/// which is embarrassingly parallel; the inverted index is then filled
/// serially in record order, so posting lists are identical to a fully
/// serial run.
std::vector<Block> TokenIndexBlocks(
    const std::vector<RecordIdx>& records, size_t max_block_size,
    size_t num_threads,
    const std::function<std::vector<std::string>(RecordIdx)>& tokenize) {
  std::vector<std::vector<std::string>> tokens(records.size());
  ParallelFor(
      records.size(), [&](size_t i) { tokens[i] = tokenize(records[i]); },
      num_threads);
  std::unordered_map<std::string, std::vector<RecordIdx>> index;
  for (size_t i = 0; i < records.size(); ++i) {
    for (std::string& token : tokens[i]) {
      index[std::move(token)].push_back(records[i]);
    }
  }
  return IndexToBlocks(std::move(index), max_block_size);
}

}  // namespace

std::vector<Block> TokenBlocker::MakeBlocks(
    const Dataset& dataset, const std::vector<RecordIdx>& records,
    const AttrRoles* roles) const {
  return TokenIndexBlocks(
      records, max_block_size_, num_threads_, [&](RecordIdx idx) {
        std::string text = RoleText(dataset, idx, roles, AttrRole::kName);
        std::vector<std::string> tokens = text::TokenSet(text);
        tokens.erase(std::remove_if(tokens.begin(), tokens.end(),
                                    [this](const std::string& t) {
                                      return t.size() < min_token_len_;
                                    }),
                     tokens.end());
        return tokens;
      });
}

std::vector<Block> IdentifierBlocker::MakeBlocks(
    const Dataset& dataset, const std::vector<RecordIdx>& records,
    const AttrRoles* roles) const {
  return TokenIndexBlocks(
      records, max_block_size_, num_threads_, [&](RecordIdx idx) {
        std::string text =
            RoleText(dataset, idx, roles, AttrRole::kIdentifier);
        return text::IdentifierTokens(text, min_len_);
      });
}

std::vector<Block> SortedNeighborhoodBlocker::MakeBlocks(
    const Dataset& dataset, const std::vector<RecordIdx>& records,
    const AttrRoles* roles) const {
  std::vector<std::pair<std::string, RecordIdx>> keyed(records.size());
  ParallelFor(
      records.size(),
      [&](size_t i) {
        std::string text =
            RoleText(dataset, records[i], roles, AttrRole::kName);
        std::vector<std::string> tokens = text::TokenSet(text);
        keyed[i] = {Join(tokens, " "), records[i]};
      },
      num_threads_);
  std::sort(keyed.begin(), keyed.end());
  std::vector<Block> blocks;
  if (keyed.size() < 2) return blocks;
  size_t window = std::max<size_t>(2, window_size_);
  for (size_t i = 0; i + 1 < keyed.size(); ++i) {
    Block block;
    block.key = "w" + std::to_string(i);
    size_t end = std::min(keyed.size(), i + window);
    for (size_t j = i; j < end; ++j) {
      block.records.push_back(keyed[j].second);
    }
    if (block.records.size() >= 2) blocks.push_back(std::move(block));
  }
  return blocks;
}

std::vector<Block> CanopyBlocker::MakeBlocks(
    const Dataset& dataset, const std::vector<RecordIdx>& records,
    const AttrRoles* roles) const {
  // Token sets (parallel) + inverted index (serial, record order).
  std::vector<std::vector<std::string>> tokens(records.size());
  ParallelFor(
      records.size(),
      [&](size_t i) {
        tokens[i] = text::TokenSet(
            RoleText(dataset, records[i], roles, AttrRole::kName));
      },
      num_threads_);
  std::unordered_map<std::string, std::vector<size_t>> inverted;
  for (size_t i = 0; i < records.size(); ++i) {
    for (const std::string& t : tokens[i]) {
      inverted[t].push_back(i);
    }
  }
  std::vector<bool> covered(records.size(), false);
  std::vector<Block> blocks;
  for (size_t seed = 0; seed < records.size(); ++seed) {
    if (covered[seed] || tokens[seed].empty()) continue;
    // Count shared tokens with records appearing in the seed's postings.
    std::unordered_map<size_t, size_t> overlap;
    for (const std::string& t : tokens[seed]) {
      for (size_t j : inverted[t]) ++overlap[j];
    }
    Block block;
    block.key = "canopy" + std::to_string(seed);
    for (const auto& [j, shared] : overlap) {
      double fraction = static_cast<double>(shared) /
                        static_cast<double>(tokens[seed].size());
      if (fraction >= t_loose_) {
        block.records.push_back(records[j]);
        covered[j] = true;
      }
      if (block.records.size() >= max_block_size_) break;
    }
    if (block.records.size() >= 2) {
      std::sort(block.records.begin(), block.records.end());
      blocks.push_back(std::move(block));
    }
  }
  return blocks;
}

std::vector<CandidatePair> BlocksToPairs(const Dataset& dataset,
                                         const std::vector<Block>& blocks,
                                         bool allow_same_source,
                                         size_t num_threads) {
  // Pair expansion runs over block chunks with chunk-local buffers; the
  // final sort + unique canonicalizes the order, so the result is
  // independent of which thread expanded which block.
  std::vector<CandidatePair> pairs;
  std::mutex pairs_mu;
  auto expand = [&](size_t begin, size_t end) {
    std::vector<CandidatePair> local;
    for (size_t blk = begin; blk < end; ++blk) {
      const Block& block = blocks[blk];
      for (size_t i = 0; i < block.records.size(); ++i) {
        for (size_t j = i + 1; j < block.records.size(); ++j) {
          RecordIdx a = block.records[i], b = block.records[j];
          if (a == b) continue;
          if (!allow_same_source &&
              dataset.record(a).source == dataset.record(b).source) {
            continue;
          }
          if (a > b) std::swap(a, b);
          local.push_back(CandidatePair{a, b});
        }
      }
    }
    std::lock_guard<std::mutex> lock(pairs_mu);
    pairs.insert(pairs.end(), local.begin(), local.end());
  };
  ParallelForRanges(blocks.size(), expand, num_threads);
  std::sort(pairs.begin(), pairs.end());
  size_t generated = pairs.size();
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  if (metrics::Enabled()) {
    static metrics::Counter* generated_counter =
        metrics::Registry::Get().RegisterCounter(
            "bdi.linkage.blocking.pairs.generated");
    static metrics::Counter* pruned_counter =
        metrics::Registry::Get().RegisterCounter(
            "bdi.linkage.blocking.pairs.pruned");
    generated_counter->Add(generated);
    pruned_counter->Add(generated - pairs.size());
  }
  return pairs;
}

BlockingQuality EvaluateBlocking(const Dataset& dataset,
                                 const std::vector<CandidatePair>& candidates,
                                 const std::vector<EntityId>& truth_labels,
                                 bool allow_same_source) {
  BlockingQuality quality;
  quality.num_candidates = candidates.size();

  // True comparable pairs per entity: all pairs minus same-source pairs
  // (unless those are allowed).
  std::unordered_map<EntityId, std::vector<RecordIdx>> by_entity;
  for (size_t i = 0; i < truth_labels.size(); ++i) {
    by_entity[truth_labels[i]].push_back(static_cast<RecordIdx>(i));
  }
  auto comparable_pairs = [&](const std::vector<RecordIdx>& members) {
    size_t n = members.size();
    size_t total = n * (n - 1) / 2;
    if (allow_same_source) return total;
    std::unordered_map<SourceId, size_t> per_source;
    for (RecordIdx r : members) ++per_source[dataset.record(r).source];
    for (const auto& [src, k] : per_source) total -= k * (k - 1) / 2;
    return total;
  };
  for (const auto& [entity, members] : by_entity) {
    quality.num_true_pairs += comparable_pairs(members);
  }

  for (const CandidatePair& pair : candidates) {
    if (truth_labels[pair.a] == truth_labels[pair.b]) {
      ++quality.num_true_covered;
    }
  }
  quality.pairs_completeness =
      quality.num_true_pairs == 0
          ? 1.0
          : static_cast<double>(quality.num_true_covered) /
                static_cast<double>(quality.num_true_pairs);

  // All comparable pairs in the corpus.
  size_t n = dataset.num_records();
  size_t total = n * (n - 1) / 2;
  if (!allow_same_source) {
    for (const SourceInfo& source : dataset.sources()) {
      size_t k = source.records.size();
      total -= k * (k - 1) / 2;
    }
  }
  quality.reduction_ratio =
      total == 0 ? 0.0
                 : 1.0 - static_cast<double>(quality.num_candidates) /
                             static_cast<double>(total);
  return quality;
}

}  // namespace bdi::linkage
