#include "bdi/linkage/blocking.h"

#include <algorithm>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "bdi/common/executor.h"
#include "bdi/common/metrics.h"
#include "bdi/common/string_util.h"
#include "bdi/text/interner.h"
#include "bdi/text/tokenizer.h"

namespace bdi::linkage {

namespace {

/// Concatenated values of the record's fields with the wanted role; all
/// fields when roles are missing or the record has none with that role.
std::string RoleText(const Dataset& dataset, RecordIdx idx,
                     const AttrRoles* roles, AttrRole wanted) {
  const Record& record = dataset.record(idx);
  std::string text;
  if (roles != nullptr) {
    for (const Field& field : record.fields) {
      if (roles->RoleOf(SourceAttr{record.source, field.attr}) == wanted) {
        text += field.value;
        text += ' ';
      }
    }
    if (!text.empty()) return text;
  }
  for (const Field& field : record.fields) {
    text += field.value;
    text += ' ';
  }
  return text;
}

}  // namespace

std::vector<Block> Blocker::MakeBlocksAll(const Dataset& dataset,
                                          const AttrRoles* roles) const {
  std::vector<RecordIdx> all;
  all.reserve(dataset.num_records());
  for (const Record& r : dataset.records()) all.push_back(r.idx);
  return MakeBlocks(dataset, all, roles);
}

namespace {

/// Parallel token emission + serial index building: the expensive part of
/// token-family blocking is per-record text assembly and tokenization,
/// which is embarrassingly parallel; the inverted index is then filled
/// serially in record order, so posting lists are identical to a fully
/// serial run. The index routes through a TokenInterner — u32 ids into a
/// dense postings table instead of string-keyed hash buckets, so the
/// per-token cost after the first sighting is one hash of the string and
/// an indexed push_back.
std::vector<Block> TokenIndexBlocks(
    const std::vector<RecordIdx>& records, size_t max_block_size,
    size_t num_threads,
    const std::function<std::vector<std::string>(RecordIdx)>& tokenize) {
  std::vector<std::vector<std::string>> tokens(records.size());
  ParallelFor(
      records.size(), [&](size_t i) { tokens[i] = tokenize(records[i]); },
      num_threads);
  text::TokenInterner interner;
  std::vector<std::vector<RecordIdx>> postings;
  for (size_t i = 0; i < records.size(); ++i) {
    for (const std::string& token : tokens[i]) {
      text::TokenId id = interner.Intern(token);
      if (id == postings.size()) postings.emplace_back();
      postings[id].push_back(records[i]);
    }
  }
  std::vector<Block> blocks;
  blocks.reserve(postings.size());
  for (text::TokenId id = 0; id < postings.size(); ++id) {
    std::vector<RecordIdx>& members = postings[id];
    if (members.size() < 2 || members.size() > max_block_size) continue;
    blocks.push_back(Block{interner.token(id), std::move(members)});
  }
  std::sort(blocks.begin(), blocks.end(),
            [](const Block& a, const Block& b) { return a.key < b.key; });
  return blocks;
}

}  // namespace

std::vector<Block> TokenBlocker::MakeBlocks(
    const Dataset& dataset, const std::vector<RecordIdx>& records,
    const AttrRoles* roles) const {
  return TokenIndexBlocks(
      records, max_block_size_, num_threads_, [&](RecordIdx idx) {
        std::string text = RoleText(dataset, idx, roles, AttrRole::kName);
        std::vector<std::string> tokens = text::TokenSet(text);
        tokens.erase(std::remove_if(tokens.begin(), tokens.end(),
                                    [this](const std::string& t) {
                                      return t.size() < min_token_len_;
                                    }),
                     tokens.end());
        return tokens;
      });
}

std::vector<Block> IdentifierBlocker::MakeBlocks(
    const Dataset& dataset, const std::vector<RecordIdx>& records,
    const AttrRoles* roles) const {
  return TokenIndexBlocks(
      records, max_block_size_, num_threads_, [&](RecordIdx idx) {
        std::string text =
            RoleText(dataset, idx, roles, AttrRole::kIdentifier);
        return text::IdentifierTokens(text, min_len_);
      });
}

std::vector<Block> SortedNeighborhoodBlocker::MakeBlocks(
    const Dataset& dataset, const std::vector<RecordIdx>& records,
    const AttrRoles* roles) const {
  std::vector<std::pair<std::string, RecordIdx>> keyed(records.size());
  ParallelFor(
      records.size(),
      [&](size_t i) {
        std::string text =
            RoleText(dataset, records[i], roles, AttrRole::kName);
        std::vector<std::string> tokens = text::TokenSet(text);
        keyed[i] = {Join(tokens, " "), records[i]};
      },
      num_threads_);
  std::sort(keyed.begin(), keyed.end());
  std::vector<Block> blocks;
  if (keyed.size() < 2) return blocks;
  size_t window = std::max<size_t>(2, window_size_);
  // Slide the window one position at a time and pair only the newly
  // entering record with the records already in the window: every
  // within-window pair {p, q} (|q - p| < window) is emitted exactly once
  // (at step i = q), where whole-window blocks would re-emit it at every
  // window covering both — up to window-1 copies for the downstream dedup
  // to discard.
  for (size_t i = 1; i < keyed.size(); ++i) {
    size_t start = i >= window - 1 ? i - (window - 1) : 0;
    for (size_t j = start; j < i; ++j) {
      Block block;
      block.key = "w" + std::to_string(j) + "_" + std::to_string(i);
      block.records = {keyed[j].second, keyed[i].second};
      blocks.push_back(std::move(block));
    }
  }
  return blocks;
}

std::vector<Block> CanopyBlocker::MakeBlocks(
    const Dataset& dataset, const std::vector<RecordIdx>& records,
    const AttrRoles* roles) const {
  // Token sets (parallel) + interned inverted index (serial, record
  // order): u32 token ids key a dense postings table of positions in
  // `records`.
  std::vector<std::vector<std::string>> tokens(records.size());
  ParallelFor(
      records.size(),
      [&](size_t i) {
        tokens[i] = text::TokenSet(
            RoleText(dataset, records[i], roles, AttrRole::kName));
      },
      num_threads_);
  text::TokenInterner interner;
  std::vector<std::vector<text::TokenId>> token_ids(records.size());
  std::vector<std::vector<size_t>> postings;
  for (size_t i = 0; i < records.size(); ++i) {
    token_ids[i].reserve(tokens[i].size());
    for (const std::string& t : tokens[i]) {
      text::TokenId id = interner.Intern(t);
      if (id == postings.size()) postings.emplace_back();
      postings[id].push_back(i);
      token_ids[i].push_back(id);
    }
  }
  std::vector<bool> covered(records.size(), false);
  // Dense overlap counters, reset via the touched list after every seed —
  // no per-seed hash map.
  std::vector<size_t> overlap(records.size(), 0);
  std::vector<size_t> touched;
  std::vector<Block> blocks;
  for (size_t seed = 0; seed < records.size(); ++seed) {
    if (covered[seed] || token_ids[seed].empty()) continue;
    // Count shared tokens with records appearing in the seed's postings.
    touched.clear();
    for (text::TokenId id : token_ids[seed]) {
      for (size_t j : postings[id]) {
        if (overlap[j]++ == 0) touched.push_back(j);
      }
    }
    // Deterministic canopy membership: visit candidates in ascending
    // position order. Hash-order traversal made block contents — and,
    // through the max_block_size_ truncation, even block *membership* —
    // depend on the map implementation's iteration order.
    std::sort(touched.begin(), touched.end());
    Block block;
    block.key = "canopy" + std::to_string(seed);
    for (size_t j : touched) {
      double fraction = static_cast<double>(overlap[j]) /
                        static_cast<double>(token_ids[seed].size());
      if (fraction >= t_loose_) {
        block.records.push_back(records[j]);
        covered[j] = true;
      }
      if (block.records.size() >= max_block_size_) break;
    }
    for (size_t j : touched) overlap[j] = 0;
    if (block.records.size() >= 2) {
      std::sort(block.records.begin(), block.records.end());
      blocks.push_back(std::move(block));
    }
  }
  return blocks;
}

std::vector<CandidatePair> BlocksToPairs(const Dataset& dataset,
                                         const std::vector<Block>& blocks,
                                         bool allow_same_source,
                                         size_t num_threads) {
  // Pair expansion shards the dedup by first record instead of funneling
  // every chunk's output through one mutex-guarded vector and a global
  // sort. Shards own contiguous ranges of `a`, so after the per-shard
  // sort + unique, concatenating shards in index order IS the globally
  // sorted, deduped result — identical for every thread count (the
  // per-shard sort canonicalizes whatever arrival order the chunk
  // scheduling produced).
  const size_t num_records = dataset.num_records();
  if (blocks.empty() || num_records == 0) return {};
  const size_t num_shards =
      num_threads == 1
          ? 1
          : std::min<size_t>(
                64, std::max<size_t>(1, (num_threads == 0
                                             ? Executor::Get().num_threads()
                                             : num_threads) *
                                            4));
  auto shard_of = [&](RecordIdx a) {
    return static_cast<size_t>(a) * num_shards / num_records;
  };
  std::vector<std::vector<CandidatePair>> shards(num_shards);
  std::vector<std::mutex> shard_mu(num_shards);
  auto expand = [&](size_t begin, size_t end) {
    std::vector<std::vector<CandidatePair>> local(num_shards);
    for (size_t blk = begin; blk < end; ++blk) {
      const Block& block = blocks[blk];
      for (size_t i = 0; i < block.records.size(); ++i) {
        for (size_t j = i + 1; j < block.records.size(); ++j) {
          RecordIdx a = block.records[i], b = block.records[j];
          if (a == b) continue;
          if (!allow_same_source &&
              dataset.record(a).source == dataset.record(b).source) {
            continue;
          }
          if (a > b) std::swap(a, b);
          local[shard_of(a)].push_back(CandidatePair{a, b});
        }
      }
    }
    for (size_t s = 0; s < num_shards; ++s) {
      if (local[s].empty()) continue;
      std::lock_guard<std::mutex> lock(shard_mu[s]);
      shards[s].insert(shards[s].end(), local[s].begin(), local[s].end());
    }
  };
  ParallelForRanges(blocks.size(), expand, num_threads);
  std::vector<size_t> pre_dedup_sizes(num_shards);
  ParallelFor(
      num_shards,
      [&](size_t s) {
        pre_dedup_sizes[s] = shards[s].size();
        std::sort(shards[s].begin(), shards[s].end());
        shards[s].erase(std::unique(shards[s].begin(), shards[s].end()),
                        shards[s].end());
      },
      num_threads);
  size_t generated = 0, total = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    generated += pre_dedup_sizes[s];
    total += shards[s].size();
  }
  std::vector<CandidatePair> pairs;
  pairs.reserve(total);
  for (size_t s = 0; s < num_shards; ++s) {
    pairs.insert(pairs.end(), shards[s].begin(), shards[s].end());
  }
  if (metrics::Enabled()) {
    static metrics::Counter* generated_counter =
        metrics::Registry::Get().RegisterCounter(
            "bdi.linkage.blocking.pairs.generated");
    static metrics::Counter* pruned_counter =
        metrics::Registry::Get().RegisterCounter(
            "bdi.linkage.blocking.pairs.pruned");
    generated_counter->Add(generated);
    pruned_counter->Add(generated - pairs.size());
  }
  return pairs;
}

BlockingQuality EvaluateBlocking(const Dataset& dataset,
                                 const std::vector<CandidatePair>& candidates,
                                 const std::vector<EntityId>& truth_labels,
                                 bool allow_same_source) {
  BlockingQuality quality;
  quality.num_candidates = candidates.size();

  // True comparable pairs per entity: all pairs minus same-source pairs
  // (unless those are allowed).
  std::unordered_map<EntityId, std::vector<RecordIdx>> by_entity;
  for (size_t i = 0; i < truth_labels.size(); ++i) {
    by_entity[truth_labels[i]].push_back(static_cast<RecordIdx>(i));
  }
  auto comparable_pairs = [&](const std::vector<RecordIdx>& members) {
    size_t n = members.size();
    size_t total = n * (n - 1) / 2;
    if (allow_same_source) return total;
    std::unordered_map<SourceId, size_t> per_source;
    for (RecordIdx r : members) ++per_source[dataset.record(r).source];
    for (const auto& [src, k] : per_source) total -= k * (k - 1) / 2;
    return total;
  };
  for (const auto& [entity, members] : by_entity) {
    quality.num_true_pairs += comparable_pairs(members);
  }

  for (const CandidatePair& pair : candidates) {
    if (truth_labels[pair.a] == truth_labels[pair.b]) {
      ++quality.num_true_covered;
    }
  }
  quality.pairs_completeness =
      quality.num_true_pairs == 0
          ? 1.0
          : static_cast<double>(quality.num_true_covered) /
                static_cast<double>(quality.num_true_pairs);

  // All comparable pairs in the corpus.
  size_t n = dataset.num_records();
  size_t total = n * (n - 1) / 2;
  if (!allow_same_source) {
    for (const SourceInfo& source : dataset.sources()) {
      size_t k = source.records.size();
      total -= k * (k - 1) / 2;
    }
  }
  quality.reduction_ratio =
      total == 0 ? 0.0
                 : 1.0 - static_cast<double>(quality.num_candidates) /
                             static_cast<double>(total);
  return quality;
}

}  // namespace bdi::linkage
