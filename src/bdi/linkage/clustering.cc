#include "bdi/linkage/clustering.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <unordered_map>

#include "bdi/common/logging.h"

namespace bdi::linkage {

namespace {

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

EntityClusters DenseLabels(const std::vector<int64_t>& raw,
                           size_t num_records) {
  EntityClusters clusters;
  clusters.label_of_record.resize(num_records);
  std::unordered_map<int64_t, EntityId> remap;
  for (size_t i = 0; i < num_records; ++i) {
    auto it = remap.emplace(raw[i], static_cast<EntityId>(remap.size()))
                  .first;
    clusters.label_of_record[i] = it->second;
  }
  clusters.num_clusters = remap.size();
  return clusters;
}

}  // namespace

EntityClusters ClusterRecords(size_t num_records,
                              const std::vector<ScoredPair>& matches,
                              ClusteringMethod method) {
  std::vector<int64_t> raw(num_records);

  if (method == ClusteringMethod::kConnectedComponents) {
    UnionFind uf(num_records);
    for (const ScoredPair& m : matches) {
      uf.Union(static_cast<size_t>(m.pair.a), static_cast<size_t>(m.pair.b));
    }
    for (size_t i = 0; i < num_records; ++i) {
      raw[i] = static_cast<int64_t>(uf.Find(i));
    }
    return DenseLabels(raw, num_records);
  }

  if (method == ClusteringMethod::kCenter) {
    // Process edges by descending score. The first time a record appears it
    // becomes either a center or a member of the other endpoint's cluster.
    std::vector<ScoredPair> sorted = matches;
    std::sort(sorted.begin(), sorted.end(),
              [](const ScoredPair& x, const ScoredPair& y) {
                if (x.score != y.score) return x.score > y.score;
                return x.pair < y.pair;
              });
    constexpr int64_t kUnassigned = -1;
    std::vector<int64_t> center(num_records, kUnassigned);
    std::vector<bool> is_center(num_records, false);
    for (const ScoredPair& m : sorted) {
      size_t a = static_cast<size_t>(m.pair.a);
      size_t b = static_cast<size_t>(m.pair.b);
      if (center[a] == kUnassigned && center[b] == kUnassigned) {
        center[a] = static_cast<int64_t>(a);
        is_center[a] = true;
        center[b] = static_cast<int64_t>(a);
      } else if (center[a] == kUnassigned) {
        // Join only through an actual center; an edge to a mere member is
        // skipped (this is what prevents chaining).
        if (is_center[b]) center[a] = center[b];
      } else if (center[b] == kUnassigned) {
        if (is_center[a]) center[b] = center[a];
      }
      // Both assigned: center clustering never merges existing clusters.
    }
    for (size_t i = 0; i < num_records; ++i) {
      raw[i] = center[i] == kUnassigned ? static_cast<int64_t>(i) +
               static_cast<int64_t>(num_records)
                                        : center[i];
    }
    return DenseLabels(raw, num_records);
  }

  // Correlation pivot: adjacency over matched pairs; scan records in index
  // order; an unassigned record becomes a pivot and absorbs its unassigned
  // neighbors.
  std::vector<std::vector<size_t>> adjacency(num_records);
  for (const ScoredPair& m : matches) {
    adjacency[static_cast<size_t>(m.pair.a)].push_back(
        static_cast<size_t>(m.pair.b));
    adjacency[static_cast<size_t>(m.pair.b)].push_back(
        static_cast<size_t>(m.pair.a));
  }
  std::fill(raw.begin(), raw.end(), -1);
  for (size_t pivot = 0; pivot < num_records; ++pivot) {
    if (raw[pivot] != -1) continue;
    raw[pivot] = static_cast<int64_t>(pivot);
    for (size_t neighbor : adjacency[pivot]) {
      if (raw[neighbor] == -1) raw[neighbor] = static_cast<int64_t>(pivot);
    }
  }
  return DenseLabels(raw, num_records);
}

LinkageQuality EvaluateClusters(const std::vector<EntityId>& predicted,
                                const std::vector<EntityId>& truth) {
  BDI_CHECK(predicted.size() == truth.size());
  LinkageQuality quality;
  auto pairs_of_counts = [](const std::unordered_map<int64_t, size_t>& m) {
    size_t total = 0;
    for (const auto& [key, k] : m) total += k * (k - 1) / 2;
    return total;
  };
  std::unordered_map<int64_t, size_t> predicted_counts, truth_counts,
      joint_counts;
  for (size_t i = 0; i < predicted.size(); ++i) {
    ++predicted_counts[predicted[i]];
    ++truth_counts[truth[i]];
    ++joint_counts[(static_cast<int64_t>(predicted[i]) << 32) ^
                   static_cast<int64_t>(truth[i])];
  }
  quality.predicted_pairs = pairs_of_counts(predicted_counts);
  quality.true_pairs = pairs_of_counts(truth_counts);
  quality.correct_pairs = pairs_of_counts(joint_counts);
  quality.precision = quality.predicted_pairs == 0
                          ? 1.0
                          : static_cast<double>(quality.correct_pairs) /
                                static_cast<double>(quality.predicted_pairs);
  quality.recall = quality.true_pairs == 0
                       ? 1.0
                       : static_cast<double>(quality.correct_pairs) /
                             static_cast<double>(quality.true_pairs);
  quality.f1 = quality.precision + quality.recall == 0.0
                   ? 0.0
                   : 2.0 * quality.precision * quality.recall /
                         (quality.precision + quality.recall);
  return quality;
}

}  // namespace bdi::linkage
