#ifndef BDI_LINKAGE_ACTIVE_H_
#define BDI_LINKAGE_ACTIVE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "bdi/linkage/matcher.h"

namespace bdi::linkage {

/// Active learning for the pairwise matcher (the humans-in-the-loop story):
/// instead of labeling a random sample of candidate pairs, repeatedly ask
/// the oracle about the pairs the current model is least certain about
/// (uncertainty sampling), retraining after each batch. Reaches a given
/// linkage quality with far fewer labels than random sampling.
struct ActiveLearningConfig {
  /// Labeled pairs requested per round.
  size_t batch_size = 20;
  size_t rounds = 10;
  /// Random pairs labeled up-front to give the first model signal.
  size_t seed_labels = 20;
  uint64_t seed = 13;
  int train_epochs = 40;
};

/// Answers 1 (match) / 0 (non-match) for a candidate pair.
using LabelOracle = std::function<int(const CandidatePair&)>;

struct ActiveLearningResult {
  LearnedScorer scorer;
  size_t labels_used = 0;
  /// Pairs labeled, in query order (diagnostics).
  std::vector<CandidatePair> queried;
};

/// Trains a LearnedScorer over `candidates` with uncertainty sampling.
/// `extractor` must cover every record referenced by the candidates.
ActiveLearningResult TrainActively(const FeatureExtractor& extractor,
                                   const std::vector<CandidatePair>& candidates,
                                   const LabelOracle& oracle,
                                   const ActiveLearningConfig& config = {});

/// Baseline: the same budget spent on uniformly random pairs.
ActiveLearningResult TrainRandomly(const FeatureExtractor& extractor,
                                   const std::vector<CandidatePair>& candidates,
                                   const LabelOracle& oracle,
                                   const ActiveLearningConfig& config = {});

}  // namespace bdi::linkage

#endif  // BDI_LINKAGE_ACTIVE_H_
