#include "bdi/linkage/linkage.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "bdi/common/executor.h"
#include "bdi/common/metrics.h"
#include "bdi/common/timer.h"
#include "bdi/common/trace.h"
#include "bdi/linkage/batch.h"
#include "bdi/linkage/progressive.h"
#include "bdi/text/similarity.h"

namespace bdi::linkage {

namespace {

metrics::Counter& BlocksCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.linkage.blocks");
  return *counter;
}

metrics::Counter& CandidatesCounter() {
  static metrics::Counter* counter = metrics::Registry::Get().RegisterCounter(
      "bdi.linkage.candidate_pairs");
  return *counter;
}

metrics::Counter& ComparisonsCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.linkage.comparisons");
  return *counter;
}

metrics::Counter& MatchesCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.linkage.matches");
  return *counter;
}

metrics::Counter& MatchChunksCounter() {
  static metrics::Counter* counter = metrics::Registry::Get().RegisterCounter(
      "bdi.linkage.matching.chunks");
  return *counter;
}

metrics::Counter& ScratchReusesCounter() {
  static metrics::Counter* counter = metrics::Registry::Get().RegisterCounter(
      "bdi.linkage.matching.scratch_reuses");
  return *counter;
}

metrics::Counter& PrefilterEvaluatedCounter() {
  static metrics::Counter* counter = metrics::Registry::Get().RegisterCounter(
      "bdi.linkage.matching.prefilter.evaluated");
  return *counter;
}

metrics::Counter& PrefilterSkippedCounter() {
  static metrics::Counter* counter = metrics::Registry::Get().RegisterCounter(
      "bdi.linkage.matching.prefilter.skipped");
  return *counter;
}

/// Gap between the prefilter's score bound and the true score, observed for
/// every candidate that survived the prefilter (both values exist only
/// there). Small gaps mean tight bounds; mass in the overflow bucket means
/// the bound is too loose to prune near the threshold.
metrics::Histogram& PrefilterBoundGapHistogram() {
  static metrics::Histogram* histogram =
      metrics::Registry::Get().RegisterHistogram(
          "bdi.linkage.matching.prefilter.bound_gap",
          {0.05, 0.1, 0.2, 0.3, 0.5, 1.0});
  return *histogram;
}

/// Pairs per scored chunk: small enough that skewed blocks still balance
/// across workers, large enough that one scratch warm-up amortizes over
/// many pairs.
constexpr size_t kMinScoreChunk = 64;

}  // namespace

Linker::Linker(const Dataset* dataset, const LinkerConfig& config,
               const schema::MediatedSchema* schema,
               const schema::ValueNormalizer* normalizer)
    : dataset_(dataset),
      config_(config),
      stats_(schema::AttributeStatistics::Compute(*dataset)),
      roles_(AttrRoles::Detect(stats_)),
      extractor_(dataset, &roles_, schema, normalizer,
                 config.num_threads) {
  switch (config_.scorer) {
    case ScorerKind::kLinear:
      scorer_ = std::make_unique<LinearScorer>();
      break;
    case ScorerKind::kRule:
      scorer_ = std::make_unique<RuleScorer>();
      break;
    case ScorerKind::kLearned:
      scorer_ = std::make_unique<LearnedScorer>();
      break;
  }
  scorer_->set_threshold(config_.threshold);
}

void Linker::SetScorer(std::unique_ptr<PairScorer> scorer) {
  scorer_ = std::move(scorer);
}

std::unique_ptr<Blocker> Linker::MakeBlocker() const {
  switch (config_.blocker) {
    case BlockerKind::kToken:
      return std::make_unique<TokenBlocker>();
    case BlockerKind::kIdentifier:
      return std::make_unique<IdentifierBlocker>();
    case BlockerKind::kSortedNeighborhood:
      return std::make_unique<SortedNeighborhoodBlocker>();
    case BlockerKind::kCanopy:
      return std::make_unique<CanopyBlocker>();
    case BlockerKind::kTokenPlusIdentifier:
      return nullptr;  // handled specially in Run()
  }
  return nullptr;
}

LinkageResult Linker::Run() {
  LinkageResult result;
  WallTimer timer;
  trace::StageSpan linkage_span("linkage");
  linkage_span.AddItems(dataset_->num_records());

  // 1. Blocking (tokenization and pair expansion honor the linker's
  // thread budget).
  std::vector<CandidatePair> candidates;
  {
    trace::StageSpan span("blocking");
    std::vector<Block> blocks;
    if (config_.blocker == BlockerKind::kTokenPlusIdentifier) {
      IdentifierBlocker id_blocker;
      id_blocker.set_num_threads(config_.num_threads);
      blocks = id_blocker.MakeBlocksAll(*dataset_, &roles_);
      TokenBlocker token_blocker;
      token_blocker.set_num_threads(config_.num_threads);
      std::vector<Block> token_blocks =
          token_blocker.MakeBlocksAll(*dataset_, &roles_);
      blocks.insert(blocks.end(),
                    std::make_move_iterator(token_blocks.begin()),
                    std::make_move_iterator(token_blocks.end()));
    } else {
      std::unique_ptr<Blocker> blocker = MakeBlocker();
      blocker->set_num_threads(config_.num_threads);
      blocks = blocker->MakeBlocksAll(*dataset_, &roles_);
    }
    BlocksCounter().Add(blocks.size());
    if (config_.use_meta_blocking) {
      candidates = MetaBlock(*dataset_, blocks, config_.meta_blocking,
                             config_.num_threads);
    } else {
      candidates = BlocksToPairs(*dataset_, blocks,
                                 config_.meta_blocking.allow_same_source,
                                 config_.num_threads);
    }
    span.AddItems(candidates.size());
    CandidatesCounter().Add(candidates.size());
  }
  result.blocking_seconds = timer.ElapsedSeconds();
  result.num_candidates = candidates.size();

  // 2. Pairwise matching: chunked scoring over the shared executor. Each
  // claimed chunk owns one SimilarityScratch reused across its pairs, so
  // the per-pair kernels never allocate; scores land in disjoint
  // per-index slots, making the result identical for every thread count.
  timer.Reset();
  {
    trace::StageSpan span("matching");
    span.AddItems(candidates.size());
    ComparisonsCounter().Add(candidates.size());
    std::vector<double> scores(candidates.size());
    const bool prefilter = config_.use_prefilter;
    const bool batch = config_.use_batch;
    const double threshold = scorer_->threshold();
    const bool metrics_on = metrics::Enabled();
    if (config_.use_progressive || config_.comparison_budget > 0.0 ||
        config_.budget_ms > 0.0) {
      // Progressive path: rank every candidate by its score upper bound
      // and spend the comparison budget on the highest-bound tiers first
      // (ScorePairsProgressive). Budget-deferred candidates stay
      // unscored; with the budget unlimited every slot is scored and the
      // match set below is bitwise identical to the classic path.
      std::vector<uint8_t> scored(candidates.size(), 0);
      ProgressiveStats stats = ScorePairsProgressive(
          extractor_, *scorer_, candidates.data(), candidates.size(),
          config_.comparison_budget, config_.budget_ms, prefilter,
          config_.num_threads, scores.data(), scored.data());
      result.num_prefiltered = stats.num_skipped;
      result.num_scheduled = stats.num_scheduled;
      result.num_deferred = stats.num_deferred;
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (scored[i] != 0 && scores[i] >= threshold) {
          result.matches.push_back(ScoredPair{candidates[i], scores[i]});
        }
      }
      MatchesCounter().Add(result.matches.size());
    } else {
      std::atomic<size_t> prefiltered{0};
      // Checked-out slabs parked between chunks: a worker claiming its next
      // chunk reuses a slab whose scratch buffers and token-pair memos are
      // already warm (scores never depend on slab state, so reuse cannot
      // change results). The pool's mutex guards only the checkout/return,
      // never the scoring.
      SlabPool slab_pool;
      ParallelForRanges(
          candidates.size(),
          [&](size_t begin, size_t end) {
            if (batch) {
              // Slab path: one structure-of-arrays slab per chunk — the
              // vectorized bound pass sweeps every lane, then the full
              // kernels run over the compacted survivors. Output slots are
              // bitwise identical to the per-pair loop below.
              SlabPool::Lease slab(slab_pool);
              size_t skipped = ScoreCandidateSlab(
                  extractor_, *scorer_, candidates.data() + begin,
                  end - begin, prefilter, *slab, scores.data() + begin);
              if (skipped > 0) {
                prefiltered.fetch_add(skipped, std::memory_order_relaxed);
              }
              if (metrics_on) {
                MatchChunksCounter().Add();
                ScratchReusesCounter().Add(end - begin - 1);
              }
              return;
            }
            text::SimilarityScratch scratch;
            size_t skipped = 0;
            for (size_t i = begin; i < end; ++i) {
              if (prefilter) {
                // Tier 1: bound the achievable score from the interned
                // evidence. A skip is sound — the bound is >= the true
                // score, and the slack absorbs floating-point grouping
                // differences — so a skipped pair can never be a match and
                // the match set stays bitwise identical to the unfiltered
                // path. The recorded score (the bound) is below threshold
                // by construction.
                double bound = scorer_->ScoreUpperBound(extractor_.ExtractBounds(
                    candidates[i].a, candidates[i].b, scratch));
                if (bound + kPrefilterSlack < threshold) {
                  scores[i] = bound;
                  ++skipped;
                  continue;
                }
                // Tier 2: the full kernel stack.
                scores[i] = scorer_->Score(extractor_.Extract(
                    candidates[i].a, candidates[i].b, scratch));
                if (metrics_on) {
                  PrefilterBoundGapHistogram().Observe(bound - scores[i]);
                }
              } else {
                scores[i] = scorer_->Score(extractor_.Extract(
                    candidates[i].a, candidates[i].b, scratch));
              }
            }
            if (skipped > 0) {
              prefiltered.fetch_add(skipped, std::memory_order_relaxed);
            }
            if (metrics_on) {
              MatchChunksCounter().Add();
              ScratchReusesCounter().Add(end - begin - 1);
              if (prefilter) {
                PrefilterEvaluatedCounter().Add(end - begin);
                PrefilterSkippedCounter().Add(skipped);
              }
            }
          },
          config_.num_threads, kMinScoreChunk);
      result.num_prefiltered = prefiltered.load(std::memory_order_relaxed);
      // Match iff score >= the scorer's own threshold:
      // PairScorer::threshold() is authoritative (no per-kind
      // re-hard-coding here).
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (scores[i] >= threshold) {
          result.matches.push_back(ScoredPair{candidates[i], scores[i]});
        }
      }
      MatchesCounter().Add(result.matches.size());
    }
  }
  result.matching_seconds = timer.ElapsedSeconds();
  result.num_matches = result.matches.size();
  // The matcher is done with the candidates; keep them for diagnostics
  // without the copy a pre-matching assignment would cost.
  last_candidates_ = std::move(candidates);

  // 3. Clustering.
  timer.Reset();
  {
    trace::StageSpan span("clustering");
    span.AddItems(result.matches.size());
    result.clusters = ClusterRecords(dataset_->num_records(),
                                     result.matches, config_.clustering);
  }
  result.clustering_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace bdi::linkage
