#include "bdi/linkage/linkage.h"

#include <algorithm>

#include "bdi/common/timer.h"
#include "bdi/dataflow/mapreduce.h"

namespace bdi::linkage {

Linker::Linker(const Dataset* dataset, const LinkerConfig& config,
               const schema::MediatedSchema* schema,
               const schema::ValueNormalizer* normalizer)
    : dataset_(dataset),
      config_(config),
      stats_(schema::AttributeStatistics::Compute(*dataset)),
      roles_(AttrRoles::Detect(stats_)),
      extractor_(dataset, &roles_, schema, normalizer) {
  switch (config_.scorer) {
    case ScorerKind::kLinear:
      scorer_ = std::make_unique<LinearScorer>();
      break;
    case ScorerKind::kRule:
      scorer_ = std::make_unique<RuleScorer>();
      break;
    case ScorerKind::kLearned:
      scorer_ = std::make_unique<LearnedScorer>();
      break;
  }
  scorer_->set_threshold(config_.threshold);
}

void Linker::SetScorer(std::unique_ptr<PairScorer> scorer) {
  scorer_ = std::move(scorer);
}

std::unique_ptr<Blocker> Linker::MakeBlocker() const {
  switch (config_.blocker) {
    case BlockerKind::kToken:
      return std::make_unique<TokenBlocker>();
    case BlockerKind::kIdentifier:
      return std::make_unique<IdentifierBlocker>();
    case BlockerKind::kSortedNeighborhood:
      return std::make_unique<SortedNeighborhoodBlocker>();
    case BlockerKind::kCanopy:
      return std::make_unique<CanopyBlocker>();
    case BlockerKind::kTokenPlusIdentifier:
      return nullptr;  // handled specially in Run()
  }
  return nullptr;
}

LinkageResult Linker::Run() {
  LinkageResult result;
  WallTimer timer;

  // 1. Blocking.
  std::vector<Block> blocks;
  if (config_.blocker == BlockerKind::kTokenPlusIdentifier) {
    blocks = IdentifierBlocker().MakeBlocksAll(*dataset_, &roles_);
    std::vector<Block> token_blocks =
        TokenBlocker().MakeBlocksAll(*dataset_, &roles_);
    blocks.insert(blocks.end(),
                  std::make_move_iterator(token_blocks.begin()),
                  std::make_move_iterator(token_blocks.end()));
  } else {
    blocks = MakeBlocker()->MakeBlocksAll(*dataset_, &roles_);
  }
  std::vector<CandidatePair> candidates;
  if (config_.use_meta_blocking) {
    candidates = MetaBlock(*dataset_, blocks, config_.meta_blocking);
  } else {
    candidates = BlocksToPairs(*dataset_, blocks,
                               config_.meta_blocking.allow_same_source);
  }
  result.blocking_seconds = timer.ElapsedSeconds();
  result.num_candidates = candidates.size();
  last_candidates_ = candidates;

  // 2. Pairwise matching (parallel over the dataflow substrate).
  timer.Reset();
  std::vector<double> scores = dataflow::ParallelMap<CandidatePair, double>(
      candidates,
      [this](const CandidatePair& pair) {
        return scorer_->Score(extractor_.Extract(pair.a, pair.b));
      },
      config_.num_threads);
  // Match iff score >= threshold (RuleScorer hard-codes 0.5 in Matches()).
  double threshold =
      config_.scorer == ScorerKind::kRule ? 0.5 : scorer_->threshold();
  std::vector<ScoredPair> matches;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (scores[i] >= threshold) {
      matches.push_back(ScoredPair{candidates[i], scores[i]});
    }
  }
  result.matching_seconds = timer.ElapsedSeconds();
  result.num_matches = matches.size();

  // 3. Clustering.
  timer.Reset();
  result.clusters =
      ClusterRecords(dataset_->num_records(), matches, config_.clustering);
  result.clustering_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace bdi::linkage
