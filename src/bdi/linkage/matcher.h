#ifndef BDI_LINKAGE_MATCHER_H_
#define BDI_LINKAGE_MATCHER_H_

#include <array>
#include <string>
#include <vector>

#include "bdi/linkage/attr_roles.h"
#include "bdi/linkage/blocking.h"
#include "bdi/model/dataset.h"
#include "bdi/schema/mediated_schema.h"
#include "bdi/schema/value_normalizer.h"
#include "bdi/text/interner.h"
#include "bdi/text/similarity.h"

namespace bdi::linkage {

/// Comparable evidence for one record pair.
struct PairFeatures {
  static constexpr size_t kCount = 5;

  /// 1.0 when an identifier-role token is shared; 0.7 when the shared
  /// identifier was merely mined from free text (weaker: "related product"
  /// mentions collide); 0 otherwise.
  double id_exact = 0.0;
  double name_similarity = 0.0;   ///< Monge-Elkan over name text
  double name_jaccard = 0.0;      ///< token Jaccard over name text
  double value_agreement = 0.0;   ///< agreeing fraction of aligned attrs
  double numeric_closeness = 0.0; ///< mean numeric similarity, aligned attrs

  std::array<double, kCount> AsArray() const {
    return {id_exact, name_similarity, name_jaccard, value_agreement,
            numeric_closeness};
  }
};

/// Computes PairFeatures with per-record caching. When a mediated schema and
/// value normalizer are supplied, value agreement is computed over aligned
/// attribute clusters with normalized values; otherwise it falls back to
/// exact raw-attribute-name alignment.
///
/// `Prepare()` must be called after the dataset grows (incremental
/// linkage); `Extract` is const and thread-safe between Prepare calls.
class FeatureExtractor {
 public:
  /// `num_threads` bounds the parallel cache build in Prepare (0 = shared
  /// executor pool, 1 = serial); the cache contents are identical.
  FeatureExtractor(const Dataset* dataset, const AttrRoles* roles,
                   const schema::MediatedSchema* schema = nullptr,
                   const schema::ValueNormalizer* normalizer = nullptr,
                   size_t num_threads = 0);

  /// Extends the cache to records appended since the last Prepare call.
  void Prepare();

  /// Discards and rebuilds the whole cache (needed when roles or schema
  /// context changed retroactively).
  void Rebuild();

  /// Allocation-free hot path: all tokenization happened in Prepare (the
  /// per-pair kernels run over interned token ids), and `scratch` is the
  /// caller-owned per-worker working memory the kernels reuse. See
  /// DESIGN.md's scratch-buffer ownership rule — caller-owned scratch is
  /// the only convention; there is deliberately no thread_local fallback.
  PairFeatures Extract(RecordIdx a, RecordIdx b,
                       text::SimilarityScratch& scratch) const;

  /// Batch form of Extract over parallel lane arrays: `out[i] =
  /// Extract(a[i], b[i], scratch)` bit for bit, in lane order, with the
  /// next lanes' record caches prefetched while the current pair's
  /// kernels run. One grow-only scratch serves the whole lane group.
  void ExtractBatch(const RecordIdx* a, const RecordIdx* b, size_t n,
                    PairFeatures* out,
                    text::SimilarityScratch& scratch) const;

  /// Cheap elementwise upper bound on Extract(a, b): id_exact and
  /// name_jaccard are computed exactly (they are integer merges over the
  /// interned sets), name_similarity is bounded via the per-token
  /// signatures (SymmetricMongeElkanUpperBound), and the aligned-value
  /// features are bounded by 1 (0 when either side has no aligned values,
  /// since no key can be shared). Guaranteed >= the true features
  /// elementwise — the comparison cascade skips the expensive kernels
  /// whenever a scorer's bound over this result cannot reach its
  /// threshold. Runs in a fraction of Extract's cost: no dynamic
  /// programs, no string accesses, no numeric parsing.
  PairFeatures ExtractBounds(RecordIdx a, RecordIdx b,
                             text::SimilarityScratch& scratch) const;

  /// Batch form of ExtractBounds: `out[i] = ExtractBounds(a[i], b[i],
  /// scratch)` bit for bit, in lane order, with lookahead prefetch of the
  /// upcoming lanes' record caches. This is the slab's vectorized bound
  /// pass — the signature reductions underneath dispatch to SSE2/AVX2
  /// when the CPU has them (see bdi::cpu), and every dispatch level
  /// produces identical bounds.
  void ExtractBoundsBatch(const RecordIdx* a, const RecordIdx* b, size_t n,
                          PairFeatures* out,
                          text::SimilarityScratch& scratch) const;

  /// Distinct tokens interned across all record caches (diagnostics).
  size_t num_interned_tokens() const { return interner_.size(); }

 private:
  /// Interned, precomputed per-record evidence. Token vectors hold dense
  /// TokenInterner ids: set-likes are sorted by id (intersection sizes are
  /// order-invariant), name_words preserves WordTokens order and
  /// duplicates for Monge-Elkan.
  struct RecordCache {
    std::vector<text::TokenId> name_tokens;  ///< token set, sorted by id
    std::vector<text::TokenId> name_words;   ///< word sequence of name text
    std::vector<text::TokenId> id_tokens;    ///< identifier set, sorted by id
    /// True when id_tokens came from detected identifier fields (strong)
    /// rather than from mining the record text (weak).
    bool ids_from_role = false;
    /// (aligned key, normalized value); key is cluster id when a schema is
    /// present, else the AttrId; sorted by key.
    std::vector<std::pair<int, std::string>> aligned_values;
    /// Leading-double parse of each aligned value (parallel to
    /// aligned_values; NaN when the value is not numeric). Parsing is a
    /// per-record property, so doing it once here keeps the per-pair
    /// numeric-closeness merge free of string parsing — the merge feeds
    /// the parsed values to NumericSimilarityValues, which is the exact
    /// post-parse math of NumericSimilarity (and maps a NaN operand to
    /// 0.0, matching the string form's unparseable case).
    std::vector<double> aligned_numbers;
  };

  /// Tokenized-but-not-yet-interned form of one record's cache. Prepare
  /// builds these in parallel (pure per-record work), then interns them
  /// serially in record order — so ids are deterministic and the interner
  /// needs no synchronization during the concurrent Extract phase.
  struct StagedCache {
    std::vector<std::string> name_tokens;
    std::vector<std::string> name_words;
    std::vector<std::string> id_tokens;
    bool ids_from_role = false;
    std::vector<std::pair<int, std::string>> aligned_values;
    /// Parsed leading doubles, parallel to aligned_values (NaN when not
    /// numeric); built here so the parse runs in the parallel stage.
    std::vector<double> aligned_numbers;
  };

  StagedCache BuildStaged(RecordIdx idx) const;

  const Dataset* dataset_;
  const AttrRoles* roles_;
  const schema::MediatedSchema* schema_;
  const schema::ValueNormalizer* normalizer_;
  size_t num_threads_ = 0;
  text::TokenInterner interner_;
  std::vector<RecordCache> cache_;
  /// Per-token bound signatures, indexed by TokenId (grown alongside the
  /// interner in Prepare; read-only, hence lock-free, during Extract).
  std::vector<text::TokenSignature> signatures_;
};

/// Margin added to a prefilter score bound before comparing it against the
/// match threshold. The bounds are mathematically >= the true score but
/// run different floating-point operations, so a pair is only skipped when
/// bound + kPrefilterSlack < threshold — keeping the cascade's match set
/// bitwise identical to the unfiltered path.
inline constexpr double kPrefilterSlack = 1e-9;

/// Match decision interface over PairFeatures.
class PairScorer {
 public:
  virtual ~PairScorer() = default;
  /// Monotone match score in [0, 1].
  virtual double Score(const PairFeatures& features) const = 0;
  virtual bool Matches(const PairFeatures& features) const {
    return Score(features) >= threshold_;
  }

  /// Upper bound on Score(f) over every feature vector f with
  /// 0 <= f <= `bounds` elementwise (all features live in [0, 1]).
  /// Implementations must never under-bound — the matcher's comparison
  /// cascade skips the expensive kernels entirely when this bound cannot
  /// reach threshold(). The same bound is the progressive scheduler's
  /// ranking key (progressive.h): candidates are compared in
  /// bound-descending tiers, so a tighter bound both prunes more pairs
  /// and front-loads more of the matches under a comparison budget. The
  /// default declines to bound (returns 1.0), which disables
  /// prefiltering — and flattens the progressive ranking to candidate
  /// order — for scorers that do not implement it.
  virtual double ScoreUpperBound(const PairFeatures& bounds) const {
    (void)bounds;
    return 1.0;
  }

  /// Batch form of Score: `out[i] = Score(features[i])` for each lane.
  /// The default delegates lane by lane; overrides must keep per-pair
  /// operation order unchanged so batch scores stay bitwise identical to
  /// single-pair scores (the equivalence gates assert this).
  virtual void ScoreBatch(const PairFeatures* features, size_t n,
                          double* out) const {
    for (size_t i = 0; i < n; ++i) out[i] = Score(features[i]);
  }

  /// Batch form of ScoreUpperBound, same lane-by-lane contract as
  /// ScoreBatch.
  virtual void ScoreUpperBoundBatch(const PairFeatures* bounds, size_t n,
                                    double* out) const {
    for (size_t i = 0; i < n; ++i) out[i] = ScoreUpperBound(bounds[i]);
  }

  virtual std::string name() const = 0;

  void set_threshold(double t) { threshold_ = t; }
  double threshold() const { return threshold_; }

 protected:
  double threshold_ = 0.5;
};

/// Fixed-weight linear combination of the features.
class LinearScorer : public PairScorer {
 public:
  LinearScorer();
  explicit LinearScorer(std::array<double, PairFeatures::kCount> weights);

  double Score(const PairFeatures& features) const override;
  /// Positive-weight part of the linear form at `bounds`: with
  /// non-negative features, w * f <= max(w, 0) * f_ub for every weight.
  double ScoreUpperBound(const PairFeatures& bounds) const override;
  std::string name() const override { return "linear"; }

 private:
  std::array<double, PairFeatures::kCount> weights_;
  /// Sum of weights_, fixed at construction — Score runs per candidate
  /// pair and must not re-reduce the weights every call.
  double total_weight_ = 0.0;
};

/// Domain rule exploiting identifiers: shared identifier => match;
/// otherwise require strong name similarity corroborated by value
/// agreement. Mirrors the tutorial's id-anchored product linkage.
/// Matching uses the inherited threshold() (0.5 by default) — callers ask
/// the scorer instead of re-hard-coding the cut.
class RuleScorer : public PairScorer {
 public:
  /// Defaults tuned for corpora where near-identical model numbers exist
  /// (the name test alone must be strict; identifiers carry the recall).
  RuleScorer(double name_threshold = 0.92, double value_threshold = 0.5);

  double Score(const PairFeatures& features) const override;
  /// Max over the rule branches reachable under `bounds`, each evaluated
  /// at the bound (every branch expression is monotone in the features,
  /// and a branch can only fire when its guards are satisfiable below the
  /// bound). Not simply Score(bounds): the rule cascade is not monotone
  /// in id_exact — a mined-id match pins the score at 0.95, below what
  /// the name branch can reach — so the max-over-branches form is what
  /// keeps the bound sound.
  double ScoreUpperBound(const PairFeatures& bounds) const override;
  std::string name() const override { return "rule"; }

 private:
  double name_threshold_;
  double value_threshold_;
};

/// Logistic-regression scorer trained from labeled pairs (stands in for the
/// active-learning / crowdsourced training loop).
class LearnedScorer : public PairScorer {
 public:
  LearnedScorer();

  /// SGD logistic regression; labels are 0/1.
  void Train(const std::vector<PairFeatures>& features,
             const std::vector<int>& labels, int epochs = 30,
             double learning_rate = 0.5);

  double Score(const PairFeatures& features) const override;
  /// Sigmoid of the positive-weight part of the logit: trained weights
  /// may be negative, and those terms only lower the score of a
  /// non-negative feature.
  double ScoreUpperBound(const PairFeatures& bounds) const override;
  std::string name() const override { return "learned"; }

  const std::array<double, PairFeatures::kCount>& weights() const {
    return weights_;
  }
  double bias() const { return bias_; }

 private:
  std::array<double, PairFeatures::kCount> weights_{};
  double bias_ = 0.0;
};

}  // namespace bdi::linkage

#endif  // BDI_LINKAGE_MATCHER_H_
