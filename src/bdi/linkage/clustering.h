#ifndef BDI_LINKAGE_CLUSTERING_H_
#define BDI_LINKAGE_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "bdi/linkage/blocking.h"
#include "bdi/model/types.h"

namespace bdi::linkage {

/// A matched pair with its score, input to the clustering step.
struct ScoredPair {
  CandidatePair pair;
  double score = 0.0;
};

/// Record -> entity-cluster assignment.
struct EntityClusters {
  std::vector<EntityId> label_of_record;
  size_t num_clusters = 0;
};

enum class ClusteringMethod {
  /// Transitive closure over all matched pairs.
  kConnectedComponents,
  /// Greedy center clustering on descending score: strongest records become
  /// centers; others attach to a center they match.
  kCenter,
  /// Greedy correlation-clustering pivot: scan records, pivot absorbs its
  /// unassigned matched neighbors.
  kCorrelationPivot,
};

/// Clusters `num_records` records given the matched pairs. Unmatched
/// records become singletons. Labels are dense in [0, num_clusters).
EntityClusters ClusterRecords(size_t num_records,
                              const std::vector<ScoredPair>& matches,
                              ClusteringMethod method);

/// Pairwise linkage quality against ground-truth labels, computed in
/// O(n + clusters) via contingency counting (usable at 10^5 records).
struct LinkageQuality {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  size_t predicted_pairs = 0;
  size_t true_pairs = 0;
  size_t correct_pairs = 0;
};

LinkageQuality EvaluateClusters(const std::vector<EntityId>& predicted,
                                const std::vector<EntityId>& truth);

}  // namespace bdi::linkage

#endif  // BDI_LINKAGE_CLUSTERING_H_
