#include "bdi/linkage/attr_roles.h"

#include <cctype>

#include "bdi/text/tokenizer.h"

namespace bdi::linkage {

namespace {

struct ValueShape {
  double avg_tokens = 0.0;
  double single_token_fraction = 0.0;
  double digit_bearing_fraction = 0.0;  // tokens containing a digit
  double avg_length = 0.0;
  double space_fraction = 0.0;  // values containing whitespace
};

ValueShape ShapeOf(const schema::AttrProfile& profile) {
  ValueShape shape;
  if (profile.sample_values.empty()) return shape;
  size_t token_total = 0, single = 0, digit_bearing = 0, length_total = 0,
         with_space = 0;
  for (const std::string& value : profile.sample_values) {
    std::vector<std::string> tokens = text::WordTokens(value);
    token_total += tokens.size();
    if (tokens.size() == 1) ++single;
    if (value.find(' ') != std::string::npos) ++with_space;
    bool has_digit = false;
    for (char c : value) {
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        has_digit = true;
        break;
      }
    }
    if (has_digit) ++digit_bearing;
    length_total += value.size();
  }
  double n = static_cast<double>(profile.sample_values.size());
  shape.avg_tokens = static_cast<double>(token_total) / n;
  shape.single_token_fraction = static_cast<double>(single) / n;
  shape.digit_bearing_fraction = static_cast<double>(digit_bearing) / n;
  shape.avg_length = static_cast<double>(length_total) / n;
  shape.space_fraction = static_cast<double>(with_space) / n;
  return shape;
}

}  // namespace

AttrRoles AttrRoles::Detect(const schema::AttributeStatistics& stats) {
  AttrRoles roles;
  for (const schema::AttrProfile& profile : stats.profiles()) {
    if (profile.num_values < 2) continue;
    double distinct_ratio =
        static_cast<double>(profile.num_distinct) /
        static_cast<double>(profile.num_values);
    ValueShape shape = ShapeOf(profile);

    // Identifier: nearly unique, single-token, digit-bearing, short-ish,
    // and not a plain number column (those have short all-digit values with
    // lots of repeats handled by distinct_ratio anyway).
    if (distinct_ratio > 0.85 && shape.single_token_fraction > 0.85 &&
        shape.digit_bearing_fraction > 0.8 && shape.avg_length >= 4 &&
        shape.avg_length <= 24 && profile.numeric_fraction < 0.5) {
      roles.roles_[profile.id] = AttrRole::kIdentifier;
      roles.has_identifier_ = true;
      continue;
    }
    // Name: multi-token *whitespace-separated* text, mostly distinct, not
    // numeric. The whitespace requirement keeps categorical codes like
    // "color_v3" (which word-tokenize into two tokens) out of the name
    // role even on small samples.
    if (shape.avg_tokens >= 2.0 && shape.space_fraction >= 0.5 &&
        distinct_ratio > 0.6 && profile.numeric_fraction < 0.3) {
      roles.roles_[profile.id] = AttrRole::kName;
      roles.has_name_ = true;
    }
  }
  return roles;
}

AttrRole AttrRoles::RoleOf(const SourceAttr& sa) const {
  auto it = roles_.find(sa);
  return it == roles_.end() ? AttrRole::kOther : it->second;
}

bool AttrRoles::HasRole(AttrRole role) const {
  if (role == AttrRole::kName) return has_name_;
  if (role == AttrRole::kIdentifier) return has_identifier_;
  return true;
}

std::vector<std::string> KeyedAttributeNames(const Dataset& dataset,
                                             const AttrRoles& roles) {
  std::vector<char> keyed(dataset.num_attrs(), 0);
  bool any = false;
  for (const SourceAttr& sa : dataset.AllSourceAttrs()) {
    const AttrRole role = roles.RoleOf(sa);
    if (role == AttrRole::kName || role == AttrRole::kIdentifier) {
      keyed[static_cast<size_t>(sa.attr)] = 1;
      any = true;
    }
  }
  // Blockers fall back per record and per role: a record with no
  // name-role (identifier-role) field is blocked on ALL of its fields.
  // Dropping columns would change that fallback text, so projection is
  // only sound when every record carries a field of every detected role —
  // otherwise key on everything.
  const bool need_name = roles.HasRole(AttrRole::kName);
  const bool need_identifier = roles.HasRole(AttrRole::kIdentifier);
  for (const Record& record : dataset.records()) {
    if (!any) break;
    bool has_name = !need_name;
    bool has_identifier = !need_identifier;
    for (const Field& field : record.fields) {
      const AttrRole role =
          roles.RoleOf(SourceAttr{record.source, field.attr});
      if (role == AttrRole::kName) has_name = true;
      if (role == AttrRole::kIdentifier) has_identifier = true;
    }
    if (!has_name || !has_identifier) {
      any = false;  // some record would fall back: keep every column
    }
  }
  std::vector<std::string> names;
  names.reserve(dataset.num_attrs());
  for (size_t a = 0; a < dataset.num_attrs(); ++a) {
    if (!any || keyed[a] != 0) {
      names.push_back(dataset.attr_name(static_cast<AttrId>(a)));
    }
  }
  return names;
}

}  // namespace bdi::linkage
