#ifndef BDI_LINKAGE_TEMPORAL_H_
#define BDI_LINKAGE_TEMPORAL_H_

#include <vector>

#include "bdi/linkage/clustering.h"
#include "bdi/linkage/linkage.h"

namespace bdi::linkage {

/// Temporal record linkage (Li, Dong, Maurino, Srivastava, VLDB'11 shape):
/// records carry observation times and entities *evolve* — names pick up
/// revisions, values drift — so a static matcher over-splits: a 2010 page
/// and a 2014 page of the same product no longer clear the match
/// threshold.
///
/// The temporal matcher applies **disagreement decay**: the evidence
/// requirement relaxes with the time gap between two records, because the
/// probability that the entity legitimately changed grows with elapsed
/// time. Identifier equality stays decisive at any gap; chains through
/// intermediate observations connect distant snapshots transitively.
struct TemporalLinkConfig {
  /// The scorer threshold at zero time gap.
  double base_threshold = 0.92;
  /// The threshold never relaxes below this (guards against merging
  /// distinct entities across long gaps).
  double min_threshold = 0.88;
  /// Same-source floor: a site's own page history carries continuity
  /// evidence (page identity), so rebrands that gut the name similarity
  /// can still link through the site that renamed them.
  double same_source_min_threshold = 0.72;
  /// Gap (in snapshot units) at which half of the total relaxation has
  /// been granted.
  double drift_half_life = 3.0;
  /// Corroboration requirement (shared aligned values), also relaxed with
  /// the gap since values drift too.
  double base_value_threshold = 0.5;
  double min_value_threshold = 0.2;
  /// Match same-source records across time (a site's own page history).
  bool allow_same_source = true;
  size_t num_threads = 0;
};

/// Effective name threshold at time gap `dt`.
double TemporalThreshold(double base, double floor, double half_life,
                         double dt);

struct TemporalLinkageResult {
  EntityClusters clusters;
  size_t num_candidates = 0;
  size_t num_matches = 0;
  /// Matches that required the temporal relaxation (below the static
  /// threshold but above the decayed one).
  size_t relaxed_matches = 0;
};

/// Links a timestamped corpus. `record_time[idx]` is the observation time
/// of record idx (same length as dataset records).
TemporalLinkageResult LinkTemporal(const Dataset& dataset,
                                   const std::vector<double>& record_time,
                                   const TemporalLinkConfig& config = {});

}  // namespace bdi::linkage

#endif  // BDI_LINKAGE_TEMPORAL_H_
