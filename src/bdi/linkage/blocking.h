#ifndef BDI_LINKAGE_BLOCKING_H_
#define BDI_LINKAGE_BLOCKING_H_

#include <memory>
#include <string>
#include <vector>

#include "bdi/linkage/attr_roles.h"
#include "bdi/model/dataset.h"

namespace bdi::linkage {

/// A blocking key and the records sharing it.
struct Block {
  std::string key;
  std::vector<RecordIdx> records;
};

/// An unordered candidate record pair (a < b by construction).
struct CandidatePair {
  RecordIdx a = kInvalidRecord;
  RecordIdx b = kInvalidRecord;

  friend bool operator==(const CandidatePair& x, const CandidatePair& y) {
    return x.a == y.a && x.b == y.b;
  }
  friend bool operator<(const CandidatePair& x, const CandidatePair& y) {
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  }
};

/// Strategy interface: partitions (possibly overlappingly) the records into
/// blocks whose members are candidate matches.
class Blocker {
 public:
  virtual ~Blocker() = default;

  /// Blocks for the subset `records` of the dataset. `roles` may be null
  /// (schema-agnostic blockers then use all values).
  virtual std::vector<Block> MakeBlocks(
      const Dataset& dataset, const std::vector<RecordIdx>& records,
      const AttrRoles* roles) const = 0;

  virtual std::string name() const = 0;

  /// Convenience: blocks over the whole dataset.
  std::vector<Block> MakeBlocksAll(const Dataset& dataset,
                                   const AttrRoles* roles) const;

  /// Parallelism of the per-record tokenization phase: 0 = shared executor
  /// pool, 1 = serial. Blocks are identical either way (the index build is
  /// always serial in record order).
  void set_num_threads(size_t n) { num_threads_ = n; }
  size_t num_threads() const { return num_threads_; }

 protected:
  size_t num_threads_ = 0;
};

/// Token blocking: one block per word token of the record's name-like
/// fields (all fields when roles are unavailable). Oversized blocks
/// (stop-word tokens) are dropped.
class TokenBlocker : public Blocker {
 public:
  explicit TokenBlocker(size_t min_token_len = 3,
                        size_t max_block_size = 200)
      : min_token_len_(min_token_len), max_block_size_(max_block_size) {}

  std::vector<Block> MakeBlocks(const Dataset& dataset,
                                const std::vector<RecordIdx>& records,
                                const AttrRoles* roles) const override;
  std::string name() const override { return "token"; }

 private:
  size_t min_token_len_;
  size_t max_block_size_;
};

/// Identifier blocking: blocks on identifier-like tokens (digit-bearing
/// alphanumerics) drawn from identifier-role fields, falling back to all
/// fields. The high-precision strategy the tutorial's product-id
/// opportunity enables.
class IdentifierBlocker : public Blocker {
 public:
  explicit IdentifierBlocker(size_t min_len = 5, size_t max_block_size = 100)
      : min_len_(min_len), max_block_size_(max_block_size) {}

  std::vector<Block> MakeBlocks(const Dataset& dataset,
                                const std::vector<RecordIdx>& records,
                                const AttrRoles* roles) const override;
  std::string name() const override { return "identifier"; }

 private:
  size_t min_len_;
  size_t max_block_size_;
};

/// Sorted neighborhood: records sorted by a normalized key (sorted name
/// tokens); every window of `window_size` consecutive records forms a
/// block.
class SortedNeighborhoodBlocker : public Blocker {
 public:
  explicit SortedNeighborhoodBlocker(size_t window_size = 8)
      : window_size_(window_size) {}

  std::vector<Block> MakeBlocks(const Dataset& dataset,
                                const std::vector<RecordIdx>& records,
                                const AttrRoles* roles) const override;
  std::string name() const override { return "sorted-neighborhood"; }

 private:
  size_t window_size_;
};

/// Canopy clustering with a cheap token-overlap distance: greedily picks
/// seed records and groups every record sharing >= `t_loose` fraction of
/// the seed's tokens into its canopy (overlapping allowed).
class CanopyBlocker : public Blocker {
 public:
  explicit CanopyBlocker(double t_loose = 0.4, size_t max_block_size = 400)
      : t_loose_(t_loose), max_block_size_(max_block_size) {}

  std::vector<Block> MakeBlocks(const Dataset& dataset,
                                const std::vector<RecordIdx>& records,
                                const AttrRoles* roles) const override;
  std::string name() const override { return "canopy"; }

 private:
  double t_loose_;
  size_t max_block_size_;
};

/// Expands blocks to deduplicated candidate pairs. Same-source pairs are
/// skipped unless `allow_same_source` (pages within one source are assumed
/// distinct entities — local homogeneity). `num_threads` bounds the chunk
/// expansion (0 = shared executor pool, 1 = serial). Dedup is sharded by
/// the pair's first record — each shard owns a contiguous `a`-range, is
/// sort+unique'd independently, and the shards concatenate into the
/// globally sorted result — so the output is identical for every thread
/// count with no global sort or single hot mutex.
std::vector<CandidatePair> BlocksToPairs(const Dataset& dataset,
                                         const std::vector<Block>& blocks,
                                         bool allow_same_source = false,
                                         size_t num_threads = 0);

/// Blocking quality vs. ground-truth record->entity labels:
/// pairs completeness (recall of true pairs) and reduction ratio
/// (1 - candidates / comparable pairs).
struct BlockingQuality {
  double pairs_completeness = 0.0;
  double reduction_ratio = 0.0;
  size_t num_candidates = 0;
  size_t num_true_pairs = 0;
  size_t num_true_covered = 0;
};

BlockingQuality EvaluateBlocking(const Dataset& dataset,
                                 const std::vector<CandidatePair>& candidates,
                                 const std::vector<EntityId>& truth_labels,
                                 bool allow_same_source = false);

}  // namespace bdi::linkage

#endif  // BDI_LINKAGE_BLOCKING_H_
