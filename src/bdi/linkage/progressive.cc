#include "bdi/linkage/progressive.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "bdi/common/executor.h"
#include "bdi/common/metrics.h"
#include "bdi/common/timer.h"
#include "bdi/linkage/batch.h"

namespace bdi::linkage {

namespace {

metrics::Counter& TiersCounter() {
  static metrics::Counter* counter = metrics::Registry::Get().RegisterCounter(
      "bdi.linkage.progressive.tiers");
  return *counter;
}

metrics::Counter& BudgetSpentCounter() {
  static metrics::Counter* counter = metrics::Registry::Get().RegisterCounter(
      "bdi.linkage.progressive.budget_spent");
  return *counter;
}

metrics::Counter& BudgetStoppedCounter() {
  static metrics::Counter* counter = metrics::Registry::Get().RegisterCounter(
      "bdi.linkage.progressive.budget_stopped");
  return *counter;
}

metrics::Counter& DeadlineStoppedCounter() {
  static metrics::Counter* counter = metrics::Registry::Get().RegisterCounter(
      "bdi.linkage.progressive.deadline_stopped");
  return *counter;
}

metrics::Counter& MatchesFoundCounter() {
  static metrics::Counter* counter = metrics::Registry::Get().RegisterCounter(
      "bdi.linkage.progressive.matches_found");
  return *counter;
}

metrics::Counter& ClosurePrunedCounter() {
  static metrics::Counter* counter = metrics::Registry::Get().RegisterCounter(
      "bdi.linkage.progressive.closure_pruned");
  return *counter;
}

/// Matches vs comparisons: for every match the scheduler finds, the
/// fraction of the scheduled comparison stream already spent when it
/// surfaced. Mass near zero means the bound ranking front-loads the
/// matches (good anytime behavior); mass near 1.0 means matches arrive
/// late and a budget would cost recall.
metrics::Histogram& MatchPositionHistogram() {
  static metrics::Histogram* histogram =
      metrics::Registry::Get().RegisterHistogram(
          "bdi.linkage.progressive.match_position",
          {0.05, 0.1, 0.25, 0.5, 0.75, 0.9});
  return *histogram;
}

// Shared with the classic cascade (linkage.cc / batch.cc): same names
// register the same instruments, so every matching path feeds one
// prefilter surface.

metrics::Counter& PrefilterEvaluatedCounter() {
  static metrics::Counter* counter = metrics::Registry::Get().RegisterCounter(
      "bdi.linkage.matching.prefilter.evaluated");
  return *counter;
}

metrics::Counter& PrefilterSkippedCounter() {
  static metrics::Counter* counter = metrics::Registry::Get().RegisterCounter(
      "bdi.linkage.matching.prefilter.skipped");
  return *counter;
}

metrics::Histogram& PrefilterBoundGapHistogram() {
  static metrics::Histogram* histogram =
      metrics::Registry::Get().RegisterHistogram(
          "bdi.linkage.matching.prefilter.bound_gap",
          {0.05, 0.1, 0.2, 0.3, 0.5, 1.0});
  return *histogram;
}

/// Same chunk floor as the classic matching loop (linkage.cc): small
/// enough to balance skewed blocks, large enough to amortize slab warm-up.
constexpr size_t kMinScoreChunk = 64;

}  // namespace

size_t ProgressiveTierOf(double bound) {
  if (!(bound < 1.0)) return 0;  // >= 1.0 and NaN land in the top tier
  if (bound <= 0.0) return kProgressiveTiers - 1;
  size_t tier = static_cast<size_t>((1.0 - bound) *
                                    static_cast<double>(kProgressiveTiers));
  return std::min(tier, kProgressiveTiers - 1);
}

size_t ResolveComparisonBudget(double comparison_budget, size_t num_payable) {
  if (comparison_budget <= 0.0) return num_payable;
  if (comparison_budget < 1.0) {
    double scaled =
        std::ceil(comparison_budget * static_cast<double>(num_payable));
    return std::min(num_payable, static_cast<size_t>(scaled));
  }
  if (comparison_budget >= static_cast<double>(num_payable)) {
    return num_payable;
  }
  return static_cast<size_t>(comparison_budget);
}

Result<double> ParseComparisonBudget(const std::string& spec) {
  auto invalid = [&spec](const char* why) {
    return Status::InvalidArgument("--budget '" + spec + "': " + why +
                                   " (expected a comparison count or a "
                                   "percentage like '25%')");
  };
  if (spec.empty()) return invalid("empty spec");
  bool percent = spec.back() == '%';
  std::string number = percent ? spec.substr(0, spec.size() - 1) : spec;
  if (number.empty()) return invalid("missing number");
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(number.c_str(), &end);
  if (end != number.c_str() + number.size() || errno == ERANGE ||
      !std::isfinite(value)) {
    return invalid("not a number");
  }
  if (percent) {
    if (value <= 0.0 || value > 100.0) {
      return invalid("percentage must be in (0, 100]");
    }
    if (value == 100.0) return 0.0;  // 100% spends everything: unlimited
    return value / 100.0;
  }
  if (value < 0.0) return invalid("count must be non-negative");
  if (value != std::floor(value)) {
    return invalid("absolute count must be an integer");
  }
  return value;  // 0 = unlimited, >= 1 = absolute count
}

ProgressiveStats ScorePairsProgressive(const FeatureExtractor& extractor,
                                       const PairScorer& scorer,
                                       const CandidatePair* pairs, size_t n,
                                       double comparison_budget,
                                       double budget_ms, bool use_prefilter,
                                       size_t num_threads, double* scores,
                                       uint8_t* scored) {
  // The deadline clock starts at entry so the bound pass and scheduling
  // count against it — a serving batch's latency budget covers the whole
  // call, not just the kernel rounds.
  WallTimer deadline_timer;
  ProgressiveStats stats;
  if (n == 0) return stats;
  const double threshold = scorer.threshold();
  const bool metrics_on = metrics::Enabled();
  SlabPool slab_pool;

  // Pass 1 (parallel): cheap score upper bounds for every candidate. Each
  // is a pure per-pair value written to its own slot, so chunking cannot
  // affect the result.
  std::vector<double> bounds(n);
  ParallelForRanges(
      n,
      [&](size_t begin, size_t end) {
        SlabPool::Lease slab(slab_pool);
        BoundCandidateSlab(extractor, scorer, pairs + begin, end - begin,
                           *slab, bounds.data() + begin);
      },
      num_threads, kMinScoreChunk);

  // Pass 2 (serial, O(n + tiers)): deterministic schedule. Survivors are
  // counting-sorted into quantized bound tiers, and within a tier keep
  // candidate order. Candidate order interleaves the blocks' entities, so
  // within a bound plateau the budget spreads across distinct clusters
  // instead of sinking into one large cluster's quadratic interior — the
  // spread that makes the pairwise recall curve steep (finishing a
  // k-record entity earns C(k,2) truth pairs; the redundant interior is
  // reclaimed by closure pruning below, not by comparison order). The
  // schedule is a pure function of per-pair values, hence identical for
  // every thread count, and a budget always cuts a *prefix* of it — which
  // is what makes the match set at budget B a subset of the match set at
  // any larger budget.
  auto bucket_of = [&](size_t i) { return ProgressiveTierOf(bounds[i]); };
  std::vector<uint32_t> bucket_counts(kProgressiveTiers, 0);
  for (size_t i = 0; i < n; ++i) {
    if (use_prefilter && bounds[i] + kPrefilterSlack < threshold) {
      // The cascade's skip rule: the bound is sound, so this pair can
      // never match; record the bound (below threshold by construction).
      scores[i] = bounds[i];
      scored[i] = 1;
      ++stats.num_skipped;
    } else {
      ++bucket_counts[bucket_of(i)];
    }
  }
  stats.num_survivors = n - stats.num_skipped;
  std::vector<size_t> bucket_offsets(kProgressiveTiers, 0);
  size_t offset = 0;
  for (size_t t = 0; t < kProgressiveTiers; ++t) {
    bucket_offsets[t] = offset;
    offset += bucket_counts[t];
    if (bucket_counts[t] > 0) ++stats.num_tiers;
  }
  std::vector<uint32_t> schedule(stats.num_survivors);
  for (size_t i = 0; i < n; ++i) {
    if (use_prefilter && bounds[i] + kPrefilterSlack < threshold) continue;
    schedule[bucket_offsets[bucket_of(i)]++] = static_cast<uint32_t>(i);
  }

  stats.budget = ResolveComparisonBudget(comparison_budget,
                                         stats.num_survivors);

  // Helper shared by both pass-3 shapes: full kernels over
  // schedule[begin..end), gathered into slab staging and scattered back
  // to the pairs' original slots. Every score is the same bits the
  // classic slab path produces for that pair.
  auto score_range = [&](size_t begin, size_t end) {
    SlabPool::Lease slab(slab_pool);
    size_t m = end - begin;
    slab->gather.resize(std::max(slab->gather.size(), m));
    slab->gather_scores.resize(std::max(slab->gather_scores.size(), m));
    for (size_t k = 0; k < m; ++k) {
      slab->gather[k] = pairs[schedule[begin + k]];
    }
    ScoreCandidateSlab(extractor, scorer, slab->gather.data(), m,
                       /*use_prefilter=*/false, *slab,
                       slab->gather_scores.data());
    for (size_t k = 0; k < m; ++k) {
      size_t lane = schedule[begin + k];
      scores[lane] = slab->gather_scores[k];
      scored[lane] = 1;
    }
  };

  if (stats.budget >= stats.num_survivors && budget_ms <= 0.0) {
    // Pass 3, unbudgeted: every survivor gets its full kernels, one
    // parallel sweep. Order is irrelevant to the output — all slots are
    // scored — so this is bitwise identical to the classic path.
    ParallelForRanges(stats.num_survivors, score_range, num_threads,
                      kMinScoreChunk);
    stats.num_scheduled = stats.num_survivors;
  } else {
    // Pass 3, budgeted: rounds of full kernels in schedule order with
    // online transitive-closure pruning. Matching feeds transitive
    // clustering, so once two records are connected by found matches,
    // comparing them again buys nothing — and the bound ranking
    // front-loads exactly those dense intra-entity plateaus. After each
    // round the found matches update a union-find, and already-connected
    // pairs are pruned from the stream without spending budget, so the
    // budget flows to comparisons that can still merge clusters.
    // Determinism: per-pair scores are thread-count-independent, so the
    // union-find state after each round — and hence every round's
    // composition — is too. A smaller budget truncates the final round's
    // prefix and stops, so its scored set stays a subset of any larger
    // budget's.
    RecordIdx max_record = 0;
    for (size_t k = 0; k < stats.num_survivors; ++k) {
      const CandidatePair& p = pairs[schedule[k]];
      max_record = std::max({max_record, p.a, p.b});
    }
    std::vector<uint32_t> parent(static_cast<size_t>(max_record) + 1);
    for (size_t r = 0; r < parent.size(); ++r) {
      parent[r] = static_cast<uint32_t>(r);
    }
    auto find = [&](uint32_t r) {
      while (parent[r] != r) {
        parent[r] = parent[parent[r]];
        r = parent[r];
      }
      return r;
    };
    std::vector<uint32_t> round;
    size_t cursor = 0;
    size_t spent = 0;
    size_t round_pairs = kProgressiveRoundPairs;
    while (spent < stats.budget && cursor < stats.num_survivors) {
      // Wall-clock deadline, checked at round boundaries only: a round in
      // flight always completes, so the scored set is a whole-round prefix
      // of the deterministic schedule.
      if (budget_ms > 0.0 && deadline_timer.ElapsedMillis() >= budget_ms) {
        stats.deadline_stopped = true;
        break;
      }
      round.clear();
      size_t round_limit = std::min(round_pairs, stats.budget - spent);
      round_pairs = std::min(round_pairs * 2, kProgressiveRoundPairsMax);
      while (round.size() < round_limit && cursor < stats.num_survivors) {
        uint32_t lane = schedule[cursor++];
        uint32_t ra = find(static_cast<uint32_t>(pairs[lane].a));
        uint32_t rb = find(static_cast<uint32_t>(pairs[lane].b));
        if (ra == rb) {
          ++stats.num_closure_pruned;
          continue;
        }
        round.push_back(lane);
      }
      if (round.empty()) break;
      // Compact the round back into the schedule prefix so score_range
      // sees a contiguous range; positions before `spent` are already
      // scored and never revisited.
      std::copy(round.begin(), round.end(), schedule.begin() + spent);
      size_t round_begin = spent;
      size_t round_end = spent + round.size();
      ParallelForRanges(
          round.size(),
          [&](size_t begin, size_t end) {
            score_range(round_begin + begin, round_begin + end);
          },
          num_threads, kMinScoreChunk);
      for (size_t k = round_begin; k < round_end; ++k) {
        uint32_t lane = schedule[k];
        if (scores[lane] >= threshold) {
          uint32_t ra = find(static_cast<uint32_t>(pairs[lane].a));
          uint32_t rb = find(static_cast<uint32_t>(pairs[lane].b));
          if (ra != rb) parent[ra] = rb;
        }
      }
      spent = round_end;
    }
    stats.num_scheduled = spent;
  }
  stats.num_deferred =
      stats.num_survivors - stats.num_scheduled - stats.num_closure_pruned;
  stats.budget_stopped = stats.num_deferred > 0 && !stats.deadline_stopped;

  // Pass 4 (serial): anytime accounting — where in the comparison stream
  // the matches surfaced.
  for (size_t k = 0; k < stats.num_scheduled; ++k) {
    size_t lane = schedule[k];
    if (scores[lane] >= threshold) {
      ++stats.num_matches;
      if (metrics_on) {
        MatchPositionHistogram().Observe(
            static_cast<double>(k + 1) /
            static_cast<double>(stats.num_scheduled));
      }
    }
    if (metrics_on && use_prefilter) {
      PrefilterBoundGapHistogram().Observe(bounds[lane] - scores[lane]);
    }
  }

  if (metrics_on) {
    TiersCounter().Add(stats.num_tiers);
    BudgetSpentCounter().Add(stats.num_scheduled);
    if (stats.budget_stopped) BudgetStoppedCounter().Add();
    if (stats.deadline_stopped) DeadlineStoppedCounter().Add();
    MatchesFoundCounter().Add(stats.num_matches);
    ClosurePrunedCounter().Add(stats.num_closure_pruned);
    if (use_prefilter) {
      PrefilterEvaluatedCounter().Add(n);
      PrefilterSkippedCounter().Add(stats.num_skipped);
    }
  }
  return stats;
}

}  // namespace bdi::linkage
