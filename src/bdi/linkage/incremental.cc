#include "bdi/linkage/incremental.h"

#include <algorithm>

#include "bdi/common/logging.h"
#include "bdi/linkage/batch.h"
#include "bdi/text/tokenizer.h"

namespace bdi::linkage {

namespace {

std::unique_ptr<PairScorer> MakeScorer(ScorerKind kind, double threshold) {
  std::unique_ptr<PairScorer> scorer;
  switch (kind) {
    case ScorerKind::kLinear:
      scorer = std::make_unique<LinearScorer>();
      break;
    case ScorerKind::kRule:
      scorer = std::make_unique<RuleScorer>();
      break;
    case ScorerKind::kLearned:
      scorer = std::make_unique<LearnedScorer>();
      break;
  }
  scorer->set_threshold(threshold);
  return scorer;
}

}  // namespace

IncrementalLinker::IncrementalLinker(const Dataset* dataset,
                                     const Config& config)
    : dataset_(dataset),
      config_(config),
      stats_(schema::AttributeStatistics::Compute(*dataset)),
      roles_(AttrRoles::Detect(stats_)),
      extractor_(dataset, &roles_),
      scorer_(MakeScorer(config.scorer, config.threshold)) {
  BDI_CHECK(dataset_->num_records() > 0)
      << "IncrementalLinker needs an initial corpus to learn roles from";
  for (const Record& record : dataset_->records()) {
    for (const Field& field : record.fields) {
      known_attrs_.insert(SourceAttr{record.source, field.attr});
    }
  }
}

bool IncrementalLinker::MaybeRefreshRoles() {
  bool unseen = false;
  for (size_t r = next_record_; r < dataset_->num_records(); ++r) {
    const Record& record = dataset_->record(static_cast<RecordIdx>(r));
    for (const Field& field : record.fields) {
      if (known_attrs_.insert(SourceAttr{record.source, field.attr})
              .second) {
        unseen = true;
      }
    }
  }
  if (!unseen) return false;
  // New source attributes: role statistics must be re-learned over the
  // whole corpus, and the cached per-record features refreshed.
  stats_ = schema::AttributeStatistics::Compute(*dataset_);
  roles_ = AttrRoles::Detect(stats_);
  extractor_.Rebuild();
  return true;
}

std::vector<RecordIdx> IncrementalLinker::CandidatesFor(RecordIdx idx) const {
  const Record& record = dataset_->record(idx);
  std::vector<RecordIdx> candidates;
  auto harvest = [&](const std::unordered_map<std::string,
                                              std::vector<RecordIdx>>& index,
                     const std::vector<std::string>& keys,
                     size_t max_posting) {
    for (const std::string& key : keys) {
      auto it = index.find(key);
      if (it == index.end()) continue;
      if (it->second.size() > max_posting) continue;
      for (RecordIdx other : it->second) {
        if (other == idx || removed_.count(other) > 0) continue;
        if (dataset_->record(other).source == record.source) continue;
        candidates.push_back(other);
      }
    }
  };

  std::string all_text;
  for (const Field& field : record.fields) {
    all_text += field.value;
    all_text += ' ';
  }
  harvest(id_index_,
          text::IdentifierTokens(all_text, config_.id_min_token_len),
          /*max_posting=*/SIZE_MAX);
  std::vector<std::string> name_tokens;
  for (const std::string& token : text::TokenSet(all_text)) {
    if (token.size() >= config_.min_name_token_len) {
      name_tokens.push_back(token);
    }
  }
  harvest(name_index_, name_tokens, config_.max_posting);

  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

void IncrementalLinker::IndexRecord(RecordIdx idx) {
  const Record& record = dataset_->record(idx);
  std::string all_text;
  for (const Field& field : record.fields) {
    all_text += field.value;
    all_text += ' ';
  }
  for (const std::string& token :
       text::IdentifierTokens(all_text, config_.id_min_token_len)) {
    id_index_[token].push_back(idx);
  }
  for (const std::string& token : text::TokenSet(all_text)) {
    if (token.size() < config_.min_name_token_len) continue;
    std::vector<RecordIdx>& posting = name_index_[token];
    // Oversized postings are dead weight; stop growing well past the cap.
    if (posting.size() <= 4 * config_.max_posting) posting.push_back(idx);
  }
}

size_t IncrementalLinker::AddNewRecords() {
  MaybeRefreshRoles();
  extractor_.Prepare();
  const double threshold = scorer_->threshold();
  // Candidate generation first, scoring second: each new record harvests
  // its blocking partners and is then indexed, so later arrivals in the
  // same batch see it — the exact candidate sets and pair order the old
  // score-as-you-go loop produced, but accumulated into one batch. That
  // batch view is what lets a comparison budget rank pairs *across* the
  // whole update instead of record by record.
  std::vector<CandidatePair> pairs;
  for (; next_record_ < dataset_->num_records(); ++next_record_) {
    RecordIdx idx = static_cast<RecordIdx>(next_record_);
    for (RecordIdx other : CandidatesFor(idx)) {
      // Lane order (other, idx) mirrors the historical Extract argument
      // order, keeping scores bitwise stable across the refactor.
      pairs.push_back(CandidatePair{other, idx});
    }
    IndexRecord(idx);
  }
  size_t comparisons = pairs.size();
  std::vector<double> scores(pairs.size());
  std::vector<uint8_t> scored;
  if (config_.comparison_budget > 0.0 || config_.budget_ms > 0.0) {
    // Budgeted batch: bound-ranked scheduling across the whole update,
    // serial (the incremental path is the serving layer's latency-bound
    // call; its batches are small and the caller owns threading).
    scored.assign(pairs.size(), 0);
    last_progressive_ = ScorePairsProgressive(
        extractor_, *scorer_, pairs.data(), pairs.size(),
        config_.comparison_budget, config_.budget_ms, config_.use_prefilter,
        /*num_threads=*/1, scores.data(), scored.data());
  } else {
    // One grow-only slab serves the whole batch — the same comparison
    // cascade and batch kernels as Linker::Run. A lane whose bound cannot
    // reach the threshold records that bound (below threshold by
    // construction) and can never become an edge, leaving the edge set
    // identical to the unfiltered path. Scoring the accumulated batch in
    // one call produces the same bits as the old per-record calls: every
    // lane's kernel result is grouping-independent.
    CandidateSlab slab;
    ScoreCandidateSlab(extractor_, *scorer_, pairs.data(), pairs.size(),
                       config_.use_prefilter, slab, scores.data());
  }
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (!scored.empty() && scored[i] == 0) continue;  // budget-deferred
    if (scores[i] >= threshold) {
      CandidatePair pair{std::min(pairs[i].a, pairs[i].b),
                         std::max(pairs[i].a, pairs[i].b)};
      edges_.push_back(ScoredPair{pair, scores[i]});
    }
  }
  total_comparisons_ += comparisons;
  return comparisons;
}

void IncrementalLinker::RemoveRecords(const std::vector<RecordIdx>& records) {
  removed_.insert(records.begin(), records.end());
}

EntityClusters IncrementalLinker::Clusters() const {
  std::vector<ScoredPair> live_edges;
  live_edges.reserve(edges_.size());
  for (const ScoredPair& edge : edges_) {
    if (removed_.count(edge.pair.a) > 0 || removed_.count(edge.pair.b) > 0) {
      continue;
    }
    live_edges.push_back(edge);
  }
  return ClusterRecords(next_record_, live_edges,
                        ClusteringMethod::kConnectedComponents);
}

}  // namespace bdi::linkage
